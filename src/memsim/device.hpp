#pragma once

#include <cstdint>
#include <string>

/// Device timing/energy descriptors consumed by the generic controller.
///
/// Every memory architecture in the study — the DDR3/DDR4 DRAMs (2D and
/// 3D), EPCM-MM, COSMOS and COMET — is expressed as one DeviceModel:
/// channel/bank topology, per-operation occupancies and latencies, a
/// row-buffer model for DRAMs, refresh blocking, photonic-specific
/// region-switch penalties (GST subarray switches), and an energy model
/// split into per-bit dynamic energy and always-on background power
/// (laser + SOA + interface for photonic parts, PHY + refresh for DRAM).
namespace comet::memsim {

struct DeviceTiming {
  /// Independent channels (address-interleaved).
  int channels = 1;
  int banks_per_channel = 8;     ///< Concurrent banks within a channel.
  std::uint32_t line_bytes = 64; ///< Data returned per line access.

  /// True for COMET/COSMOS-style MDM interleaving: one line access
  /// occupies *all* banks of the channel simultaneously (the line is
  /// striped across them); false for DRAM-style one-bank-per-line.
  bool line_striped_across_banks = false;

  /// How many sequential device accesses one line requires (1 normally;
  /// >1 for the corrected COSMOS, whose 32-column subarrays deliver only
  /// a fraction of a line per access — Section IV.B).
  int accesses_per_line = 1;

  std::uint64_t read_occupancy_ps = 0;   ///< Bank busy time per read access.
  std::uint64_t write_occupancy_ps = 0;  ///< Bank busy time per write access.
  std::uint64_t burst_ps = 0;            ///< Channel bus busy per access.
  /// Fixed pipeline latency (no occupancy).
  std::uint64_t interface_ps = 0;

  /// Extra bank occupancy *after* the data beat, not on the latency path:
  /// COSMOS's destructive subtractive read must restore the erased row
  /// (read tail), and COMET's erase-before-write resets the next target
  /// cells behind the returned acknowledgement (write tail).
  std::uint64_t read_tail_ps = 0;
  std::uint64_t write_tail_ps = 0;

  // --- DRAM row-buffer model (ignored when has_row_buffer is false).
  bool has_row_buffer = false;
  std::uint64_t row_size_bytes = 8192;
  std::uint64_t row_hit_saving_ps = 0;   ///< Occupancy saved on a row hit.

  // --- Refresh blocking (DRAM): every interval, each bank stalls for
  // --- the given duration. Zero interval disables refresh.
  std::uint64_t refresh_interval_ps = 0;
  std::uint64_t refresh_duration_ps = 0;

  // --- Photonic region switching: crossing from one region (subarray
  // --- group behind a GST switch) to another costs a switch transition.
  std::uint64_t region_size_bytes = 0;   ///< 0 disables the model.
  std::uint64_t region_switch_ps = 0;

  /// Maximum outstanding requests the controller overlaps per channel
  /// (memory-level parallelism it can exploit).
  int queue_depth = 8;
};

struct DeviceEnergy {
  double read_pj_per_bit = 0.0;
  double write_pj_per_bit = 0.0;
  double background_power_w = 0.0;  ///< Always-on while the app runs.

  /// Activity-gated background power [W]: burned only while banks are
  /// busy. This models the paper's future-work dynamic laser power
  /// management ([43] in §IV.C): a run-time policy that idles the laser
  /// and SOAs between accesses. Zero for conventional devices.
  double gateable_background_power_w = 0.0;
};

/// A complete architecture model handed to MemorySystem.
struct DeviceModel {
  std::string name;
  DeviceTiming timing;
  DeviceEnergy energy;
  std::uint64_t capacity_bytes = 0;

  /// Total system capacity sanity bound; throws std::invalid_argument on
  /// inconsistent topology values.
  void validate() const;
};

}  // namespace comet::memsim
