#include "memsim/system.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "prof/profiler.hpp"
#include "telemetry/telemetry.hpp"
#include "util/ring.hpp"

namespace comet::memsim {
namespace {

struct BankState {
  std::uint64_t free_ps = 0;
  std::uint64_t open_row = ~0ull;
  std::uint64_t current_region = ~0ull;
};

/// Per-channel statistics lane. Every per-request accumulation is
/// channel-local; finish_slice() merges the lanes in channel order.
/// This is what the sharded engine's bit-identity rests on: a session
/// fed only channel k's requests populates exactly this lane (its other
/// lanes stay empty, and empty-side RunningStats merges are exact), so
/// merging shard slices in channel order performs the same reduction,
/// operand for operand, as the serial session's own lane merge.
struct LaneTotals {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes = 0;
  std::uint64_t first_arrival = 0;
  std::uint64_t last_completion = 0;
  util::RunningStats read_latency_ns;
  util::RunningStats write_latency_ns;
  util::RunningStats queue_delay_ns;
  double dynamic_energy_pj = 0.0;
  double total_bank_busy_ns = 0.0;
  /// Per-tenant accumulation follows the same lane discipline: indexed
  /// tenant-1, grown on demand, and only ever touched for tagged
  /// requests — untagged runs never allocate. merge_slice() reduces the
  /// vectors element-wise, so sharded tenant stats stay bit-identical.
  std::vector<TenantBreakdown> tenants;
};

struct ChannelState {
  std::vector<BankState> banks;
  util::RingQueue<std::uint64_t> inflight_completions;
  std::uint64_t prev_issue = 0;
  LaneTotals totals;
};

/// Controller address hash (NVMain-style bank/channel interleaving):
/// spreads hot lines over channels and banks so that Zipf-skewed streams
/// do not serialize on one bank. Applied identically to every device.
std::uint64_t mix_line_index(std::uint64_t line) {
  std::uint64_t x = line;
  x ^= x >> 13;
  x *= 0x9e3779b97f4a7c15ULL;
  x ^= x >> 29;
  return x;
}

/// Pushes `t` past any refresh window it falls into.
std::uint64_t avoid_refresh(std::uint64_t t, const DeviceTiming& timing) {
  if (timing.refresh_interval_ps == 0) return t;
  const std::uint64_t phase = t % timing.refresh_interval_ps;
  if (phase < timing.refresh_duration_ps) {
    return t - phase + timing.refresh_duration_ps;
  }
  return t;
}

}  // namespace

void check_arrival_order(std::uint64_t index, std::uint64_t prev_ps,
                         std::uint64_t arrival_ps) {
  if (arrival_ps >= prev_ps) return;
  std::ostringstream msg;
  msg << "unsorted trace: request at index " << index << " arrives at "
      << arrival_ps << " ps, before the previous request's " << prev_ps
      << " ps";
  throw std::invalid_argument(msg.str());
}

void require_sorted_by_arrival(const std::vector<Request>& requests) {
  for (std::size_t i = 1; i < requests.size(); ++i) {
    check_arrival_order(i, requests[i - 1].arrival_ps, requests[i].arrival_ps);
  }
}

RequestPlacement place_request(const DeviceTiming& timing,
                               const Request& request) {
  const std::uint64_t line_index =
      mix_line_index(request.address / timing.line_bytes);
  RequestPlacement placement;
  placement.channel = static_cast<int>(
      line_index % static_cast<std::uint64_t>(timing.channels));
  placement.bank = static_cast<int>(
      (line_index / static_cast<std::uint64_t>(timing.channels)) %
      static_cast<std::uint64_t>(timing.banks_per_channel));
  placement.row = request.address / timing.row_size_bytes;
  placement.region = timing.region_size_bytes
                         ? request.address / timing.region_size_bytes
                         : 0;
  return placement;
}

void merge_slice(ReplaySlice& into, const ReplaySlice& from) {
  SimStats& a = into.stats;
  const SimStats& b = from.stats;
  if (a.device_name.empty()) a.device_name = b.device_name;
  if (a.workload_name.empty()) a.workload_name = b.workload_name;

  if (from.fed > 0) {
    into.first_arrival_ps =
        into.fed > 0 ? std::min(into.first_arrival_ps, from.first_arrival_ps)
                     : from.first_arrival_ps;
    into.last_completion_ps =
        std::max(into.last_completion_ps, from.last_completion_ps);
  }
  into.fed += from.fed;

  a.reads += b.reads;
  a.writes += b.writes;
  a.bytes_transferred += b.bytes_transferred;
  a.read_latency_ns.merge(b.read_latency_ns);
  a.write_latency_ns.merge(b.write_latency_ns);
  a.queue_delay_ns.merge(b.queue_delay_ns);
  a.dynamic_energy_pj += b.dynamic_energy_pj;
  a.total_bank_busy_ns += b.total_bank_busy_ns;
  // span_ps / background_energy_pj stay untouched: they are derived
  // from the merged window by finalize_slice, never merged.

  a.hybrid = a.hybrid || b.hybrid;
  a.cache_hits += b.cache_hits;
  a.cache_misses += b.cache_misses;
  a.cache_fills += b.cache_fills;
  a.writebacks += b.writebacks;
  a.dram_tier_energy_pj += b.dram_tier_energy_pj;
  a.backend_tier_energy_pj += b.backend_tier_energy_pj;

  a.scheduled = a.scheduled || b.scheduled;
  if (a.sched_policy.empty()) a.sched_policy = b.sched_policy;
  a.sched_queue_delay_ns.merge(b.sched_queue_delay_ns);
  a.service_latency_ns.merge(b.service_latency_ns);
  a.read_queue_occupancy.merge(b.read_queue_occupancy);
  a.write_queue_occupancy.merge(b.write_queue_occupancy);
  a.write_drains += b.write_drains;
  a.drained_writes += b.drained_writes;
  a.drain_stalls += b.drain_stalls;
  a.admit_stalls += b.admit_stalls;

  // Element-wise tenant merge. A lane that never saw tenant k carries
  // an empty breakdown at k-1 (or a shorter vector), and empty-side
  // RunningStats merges are exact — the same argument as the channel
  // lanes themselves.
  if (a.tenants.size() < b.tenants.size()) a.tenants.resize(b.tenants.size());
  for (std::size_t i = 0; i < b.tenants.size(); ++i) {
    TenantBreakdown& ta = a.tenants[i];
    const TenantBreakdown& tb = b.tenants[i];
    if (ta.name.empty()) ta.name = tb.name;
    ta.reads += tb.reads;
    ta.writes += tb.writes;
    ta.bytes_transferred += tb.bytes_transferred;
    ta.latency_ns.merge(tb.latency_ns);
    if (ta.alone_avg_latency_ns == 0.0) {
      ta.alone_avg_latency_ns = tb.alone_avg_latency_ns;
    }
    if (ta.slowdown == 0.0) ta.slowdown = tb.slowdown;
  }
  // max_slowdown / fairness_index stay untouched: derived from the
  // merged breakdowns by the multi-tenant runner, never merged.
}

SimStats finalize_slice(ReplaySlice slice, const DeviceModel& model) {
  SimStats stats = std::move(slice.stats);
  if (slice.fed == 0) return stats;
  stats.span_ps = slice.last_completion_ps - slice.first_arrival_ps;
  // W * ps = 1e-12 J = 1 pJ per (W * ps): power[W] x time[ps] -> pJ.
  stats.background_energy_pj =
      model.energy.background_power_w * static_cast<double>(stats.span_ps);
  // Activity-gated power (dynamic laser management, [43]): charged only
  // for the fraction of time banks are actually busy.
  const int total_banks =
      model.timing.channels * model.timing.banks_per_channel;
  stats.background_energy_pj += model.energy.gateable_background_power_w *
                                static_cast<double>(stats.span_ps) *
                                stats.bank_utilization(total_banks);
  return stats;
}

struct ReplaySession::Impl {
  const MemorySystem& system;
  telemetry::Recorder* const telemetry;  ///< Null on untraced runs.
  SimStats stats;  ///< Carries only the names until finish_slice().
  std::vector<ChannelState> channels;
  std::uint64_t fed = 0;
  std::uint64_t first_arrival = 0;
  std::uint64_t prev_arrival = 0;
  bool finished = false;

  Impl(const MemorySystem& sys, std::string workload_name,
       telemetry::Recorder* recorder)
      : system(sys), telemetry(recorder) {
    const DeviceTiming& t = sys.model_.timing;
    stats.device_name = sys.model_.name;
    stats.workload_name = std::move(workload_name);
    channels.resize(static_cast<std::size_t>(t.channels));
    for (auto& ch : channels) {
      ch.banks.resize(static_cast<std::size_t>(t.banks_per_channel));
      ch.inflight_completions.reserve(
          static_cast<std::size_t>(t.queue_depth));
    }
  }

  FeedResult feed(const Request& req, std::uint64_t issue_ps,
                  bool check_issue_order) {
    const DeviceModel& model = system.model_;
    const DeviceTiming& t = model.timing;

    if (fed == 0) {
      first_arrival = req.arrival_ps;
    } else {
      // A scheduled (reordered) stream can deliver an earlier arrival
      // late; the span is still anchored at the true first arrival. On
      // a sorted stream this is exactly the legacy "first fed" rule.
      first_arrival = std::min(first_arrival, req.arrival_ps);
    }
    prev_arrival = req.arrival_ps;
    ++fed;

    const RequestPlacement placement = place_request(t, req);
    auto& ch = channels[static_cast<std::size_t>(placement.channel)];

    // Issue order is a per-channel contract (see feed_issued): replay
    // state is channel-local, and a controller with independent
    // per-channel issue clocks may interleave channels arbitrarily.
    if (check_issue_order && (ch.totals.reads | ch.totals.writes) != 0 &&
        issue_ps < ch.prev_issue) {
      throw std::logic_error(
          "ReplaySession: scheduler issued requests out of order");
    }
    ch.prev_issue = issue_ps;

    // One request may need several device accesses: large requests span
    // lines, and narrow-subarray architectures (corrected COSMOS) need
    // several accesses per line.
    const std::uint64_t lines_needed =
        (req.size_bytes + t.line_bytes - 1) / t.line_bytes;
    const std::uint64_t accesses =
        lines_needed * static_cast<std::uint64_t>(t.accesses_per_line);

    std::uint64_t earliest = issue_ps;
    // Bounded outstanding window: with queue_depth requests in flight,
    // service waits for the oldest to complete.
    if (ch.inflight_completions.size() >=
        static_cast<std::size_t>(t.queue_depth)) {
      earliest = std::max(earliest, ch.inflight_completions.front());
      ch.inflight_completions.pop_front();
    }

    // Resolve the serving bank set.
    const auto bank_index = static_cast<std::size_t>(placement.bank);
    const std::uint64_t row = placement.row;
    const std::uint64_t region = placement.region;

    std::uint64_t bank_free = 0;
    if (t.line_striped_across_banks) {
      for (const auto& bank : ch.banks) {
        bank_free = std::max(bank_free, bank.free_ps);
      }
    } else {
      bank_free = ch.banks[bank_index].free_ps;
    }

    std::uint64_t start = std::max(earliest, bank_free);
    start = avoid_refresh(start, t);

    // Per-access occupancy, adjusted by the row buffer / region switch.
    std::uint64_t per_access = req.op == Op::kRead ? t.read_occupancy_ps
                                                   : t.write_occupancy_ps;
    BankState& lead_bank =
        t.line_striped_across_banks ? ch.banks.front() : ch.banks[bank_index];
    if (t.has_row_buffer && lead_bank.open_row == row &&
        per_access > t.row_hit_saving_ps) {
      per_access -= t.row_hit_saving_ps;
    }
    std::uint64_t occupancy = per_access * accesses;
    if (t.region_size_bytes && lead_bank.current_region != region) {
      occupancy += t.region_switch_ps;
    }

    const std::uint64_t busy_until = start + occupancy;
    // Data beats pipeline on the channel link (WDM/MDM links and DDR
    // buses are provisioned to match the banks' burst bandwidth), so the
    // burst contributes latency but never blocks another bank's access.
    const std::uint64_t transfer_end = busy_until + t.burst_ps * accesses;
    const std::uint64_t completion = transfer_end + t.interface_ps;
    // Off-latency-path restore/erase work keeps the bank busy longer.
    const std::uint64_t tail =
        (req.op == Op::kRead ? t.read_tail_ps : t.write_tail_ps) * accesses;
    const std::uint64_t bank_busy_until =
        std::max(transfer_end, busy_until + tail);

    // Commit state.
    if (t.line_striped_across_banks) {
      for (auto& bank : ch.banks) {
        bank.free_ps = bank_busy_until;
        bank.open_row = row;
        bank.current_region = region;
      }
    } else {
      auto& bank = ch.banks[bank_index];
      bank.free_ps = bank_busy_until;
      bank.open_row = row;
      bank.current_region = region;
    }
    ch.inflight_completions.push_back(completion);

    // Statistics (all channel-local: see LaneTotals).
    LaneTotals& lane = ch.totals;
    const double latency_ns =
        static_cast<double>(completion - req.arrival_ps) * 1e-3;
    const double queue_ns =
        static_cast<double>(start - req.arrival_ps) * 1e-3;
    const double bits = static_cast<double>(req.size_bytes) * 8.0;
    if ((lane.reads | lane.writes) == 0) {
      lane.first_arrival = req.arrival_ps;
    } else {
      lane.first_arrival = std::min(lane.first_arrival, req.arrival_ps);
    }
    lane.queue_delay_ns.add(queue_ns);
    lane.total_bank_busy_ns +=
        static_cast<double>(bank_busy_until - start) * 1e-3 *
        (t.line_striped_across_banks ? t.banks_per_channel : 1);
    if (req.op == Op::kRead) {
      ++lane.reads;
      lane.read_latency_ns.add(latency_ns);
      lane.dynamic_energy_pj += bits * model.energy.read_pj_per_bit;
    } else {
      ++lane.writes;
      lane.write_latency_ns.add(latency_ns);
      lane.dynamic_energy_pj += bits * model.energy.write_pj_per_bit;
    }
    lane.bytes += req.size_bytes;
    lane.last_completion = std::max(lane.last_completion, completion);
    if (req.tenant != 0) {
      if (lane.tenants.size() < req.tenant) lane.tenants.resize(req.tenant);
      TenantBreakdown& tenant = lane.tenants[req.tenant - 1u];
      if (req.op == Op::kRead) {
        ++tenant.reads;
      } else {
        ++tenant.writes;
      }
      tenant.bytes_transferred += req.size_bytes;
      tenant.latency_ns.add(latency_ns);
    }
    if (telemetry) {
      telemetry->record_request(
          placement.channel,
          telemetry::RequestEvent{.id = req.id,
                                  .arrival_ps = req.arrival_ps,
                                  .issue_ps = issue_ps,
                                  .start_ps = start,
                                  .completion_ps = completion,
                                  .bank_busy_until_ps = bank_busy_until,
                                  .size_bytes = req.size_bytes,
                                  .bank = static_cast<std::uint16_t>(
                                      placement.bank),
                                  .tenant = req.tenant,
                                  .op = req.op});
    }
    return FeedResult{start, completion, bank_busy_until};
  }

  ReplaySlice finish_slice() {
    finished = true;
    ReplaySlice merged;
    merged.stats = std::move(stats);
    for (const auto& ch : channels) {
      ReplaySlice lane;
      lane.fed = ch.totals.reads + ch.totals.writes;
      lane.first_arrival_ps = ch.totals.first_arrival;
      lane.last_completion_ps = ch.totals.last_completion;
      lane.stats.reads = ch.totals.reads;
      lane.stats.writes = ch.totals.writes;
      lane.stats.bytes_transferred = ch.totals.bytes;
      lane.stats.read_latency_ns = ch.totals.read_latency_ns;
      lane.stats.write_latency_ns = ch.totals.write_latency_ns;
      lane.stats.queue_delay_ns = ch.totals.queue_delay_ns;
      lane.stats.dynamic_energy_pj = ch.totals.dynamic_energy_pj;
      lane.stats.total_bank_busy_ns = ch.totals.total_bank_busy_ns;
      lane.stats.tenants = ch.totals.tenants;
      merge_slice(merged, lane);
    }
    return merged;
  }
};

ReplaySession::ReplaySession(const MemorySystem& system,
                             std::string workload_name,
                             telemetry::Recorder* telemetry)
    : impl_(std::make_unique<Impl>(system, std::move(workload_name),
                                   telemetry)) {}

ReplaySession::ReplaySession(ReplaySession&&) noexcept = default;
ReplaySession& ReplaySession::operator=(ReplaySession&&) noexcept = default;
ReplaySession::~ReplaySession() = default;

FeedResult ReplaySession::feed(const Request& request) {
  if (impl_->finished) {
    throw std::logic_error("ReplaySession: feed() after finish()");
  }
  if (impl_->fed > 0) {
    check_arrival_order(impl_->fed, impl_->prev_arrival, request.arrival_ps);
  }
  // A sorted stream is per-channel sorted a fortiori; skip the check.
  return impl_->feed(request, request.arrival_ps, false);
}

FeedResult ReplaySession::feed_issued(const Request& request,
                                      std::uint64_t issue_ps) {
  if (impl_->finished) {
    throw std::logic_error("ReplaySession: feed_issued() after finish()");
  }
  // Violations here are scheduler bugs, not malformed input traces.
  if (issue_ps < request.arrival_ps) {
    throw std::logic_error(
        "ReplaySession: request issued before its arrival");
  }
  return impl_->feed(request, issue_ps, true);
}

std::uint64_t ReplaySession::fed() const { return impl_->fed; }

std::uint64_t ReplaySession::first_arrival_ps() const {
  return impl_->first_arrival;
}

SimStats ReplaySession::finish() {
  if (impl_->finished) {
    throw std::logic_error("ReplaySession: finish() called twice");
  }
  return finalize_slice(impl_->finish_slice(), impl_->system.model_);
}

ReplaySlice ReplaySession::finish_slice() {
  if (impl_->finished) {
    throw std::logic_error("ReplaySession: finish() called twice");
  }
  return impl_->finish_slice();
}

MemorySystem::MemorySystem(DeviceModel model) : model_(std::move(model)) {
  model_.validate();
}

SimStats MemorySystem::run(RequestSource& source,
                           const std::string& workload_name) const {
  telemetry::Recorder* recorder = nullptr;
  if (telemetry::Collector* collector = telemetry()) {
    recorder = collector->add_stage("", model_.timing.channels,
                                    model_.timing.banks_per_channel,
                                    collector->spec().trace_limit);
  }
  ReplaySession session(*this, workload_name, recorder);
  Request block[kFeedBlockRequests];
  prof::Profiler* const profiler = this->profiler();
  using ProfClock = std::chrono::steady_clock;
  double pull_s = 0.0;
  double feed_s = 0.0;
  std::uint64_t batches = 0;
  for (;;) {
    ProfClock::time_point t0;
    if (profiler) t0 = ProfClock::now();
    const std::size_t pulled = source.next_batch(block, kFeedBlockRequests);
    if (pulled == 0) break;
    if (profiler) {
      pull_s += std::chrono::duration<double>(ProfClock::now() - t0).count();
      ++batches;
      t0 = ProfClock::now();
    }
    for (std::size_t i = 0; i < pulled; ++i) session.feed(block[i]);
    if (profiler) {
      feed_s += std::chrono::duration<double>(ProfClock::now() - t0).count();
      profiler->add_progress(pulled);
    }
  }
  if (profiler && batches > 0) {
    profiler->record_stage("source_pull", pull_s, batches);
    profiler->record_stage("engine_feed", feed_s, batches);
  }
  return session.finish();
}

}  // namespace comet::memsim
