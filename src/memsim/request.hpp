#pragma once

#include <cstdint>

/// Memory request record shared by traces, controllers and devices.
/// The simulator's native clock tick is 1 ps (see util/units.hpp) so that
/// photonic (ns) and DRAM (sub-ns) events share one integer timeline.
namespace comet::memsim {

enum class Op : std::uint8_t { kRead, kWrite };

struct Request {
  std::uint64_t id = 0;
  std::uint64_t arrival_ps = 0;  ///< When the request reaches the controller.
  Op op = Op::kRead;
  std::uint64_t address = 0;     ///< Physical byte address.
  std::uint32_t size_bytes = 64; ///< Cache-line size of the request.
  /// Originating tenant stream, 1-based; 0 marks a single-stream run
  /// (no per-tenant accounting anywhere downstream).
  std::uint16_t tenant = 0;
};

}  // namespace comet::memsim
