#pragma once

#include <string>
#include <vector>

#include "memsim/request.hpp"

/// Synthetic SPEC-like memory trace generators.
///
/// We do not ship SPEC traces (proprietary inputs); instead each profile
/// reproduces the *memory behaviour class* of a SPEC CPU workload as seen
/// at the last-level cache: read/write mix, spatial locality, hot-set
/// skew and request intensity. Fig. 9's architecture ordering depends on
/// exactly these axes, not on instruction-level content (see DESIGN.md,
/// substitutions table).
namespace comet::memsim {

/// Spatial pattern of the address stream.
enum class Pattern {
  kStreaming,     ///< Sequential lines, occasional stream restarts.
  kStrided,       ///< Fixed stride larger than a line.
  kRandom,        ///< Uniform over the working set.
  kPointerChase,  ///< Serially dependent, Zipf-hot random lines.
  kMixed,         ///< Alternating streaming bursts and random lines.
};

struct WorkloadProfile {
  std::string name;
  Pattern pattern = Pattern::kRandom;
  double read_fraction = 0.7;        ///< P(access is a read).
  double locality = 0.5;             ///< P(stay within the current 4 KB row).
  double zipf_exponent = 0.0;        ///< Hot-set skew for random patterns.
  std::uint64_t working_set_bytes = 1ull << 30;
  double avg_interarrival_ns = 8.0;  ///< Mean time between LLC misses.
  std::uint32_t stride_bytes = 256;  ///< For kStrided.
};

/// The eight SPEC-like profiles used by the Fig. 9 bench (classes follow
/// the well-known SPEC CPU memory characterization literature).
std::vector<WorkloadProfile> spec_like_profiles();

/// Returns the profile with the given name; throws std::invalid_argument
/// if absent.
WorkloadProfile profile_by_name(const std::string& name);

/// Deterministic trace synthesis from a profile.
class TraceGenerator {
 public:
  TraceGenerator(WorkloadProfile profile, std::uint64_t seed);

  /// Generates `count` requests with the given line size.
  std::vector<Request> generate(std::size_t count,
                                std::uint32_t line_bytes) const;

  const WorkloadProfile& profile() const { return profile_; }

 private:
  WorkloadProfile profile_;
  std::uint64_t seed_;
};

}  // namespace comet::memsim
