#pragma once

#include <string>
#include <vector>

#include "memsim/source.hpp"
#include "util/rng.hpp"

/// Synthetic SPEC-like memory trace generators.
///
/// We do not ship SPEC traces (proprietary inputs); instead each profile
/// reproduces the *memory behaviour class* of a SPEC CPU workload as seen
/// at the last-level cache: read/write mix, spatial locality, hot-set
/// skew and request intensity. Fig. 9's architecture ordering depends on
/// exactly these axes, not on instruction-level content (see DESIGN.md,
/// substitutions table).
namespace comet::memsim {

/// Spatial pattern of the address stream.
enum class Pattern {
  kStreaming,     ///< Sequential lines, occasional stream restarts.
  kStrided,       ///< Fixed stride larger than a line.
  kRandom,        ///< Uniform over the working set.
  kPointerChase,  ///< Serially dependent, Zipf-hot random lines.
  kMixed,         ///< Alternating streaming bursts and random lines.
};

struct WorkloadProfile {
  std::string name;
  Pattern pattern = Pattern::kRandom;
  double read_fraction = 0.7;        ///< P(access is a read).
  double locality = 0.5;             ///< P(stay within the current 4 KB row).
  double zipf_exponent = 0.0;        ///< Hot-set skew for random patterns.
  std::uint64_t working_set_bytes = 1ull << 30;
  double avg_interarrival_ns = 8.0;  ///< Mean time between LLC misses.
  std::uint32_t stride_bytes = 256;  ///< For kStrided.
};

/// The eight SPEC-like profiles used by the Fig. 9 bench (classes follow
/// the well-known SPEC CPU memory characterization literature).
std::vector<WorkloadProfile> spec_like_profiles();

/// Returns the profile with the given name; throws std::invalid_argument
/// if absent.
WorkloadProfile profile_by_name(const std::string& name);

/// Lazy one-request-at-a-time synthesis: the streaming form of
/// TraceGenerator::generate, holding only the RNG and a few words of
/// pattern state — O(1) memory for arbitrarily long runs. The emitted
/// sequence is bit-identical to the materialized vector for the same
/// (profile, seed, count, line_bytes); generate() is implemented on top
/// of this class. Arrivals are non-decreasing by construction, so the
/// stream satisfies the engines' sorted-by-arrival contract.
class GeneratorSource final : public RequestSource {
 public:
  /// Throws std::invalid_argument on an invalid profile or a
  /// non-power-of-two line size.
  GeneratorSource(WorkloadProfile profile, std::uint64_t seed,
                  std::size_t count, std::uint32_t line_bytes);

  std::optional<Request> next() override;

  /// Block synthesis: emits the same sequence as repeated next() calls
  /// (the class is final, so the loop devirtualizes) without the
  /// per-request virtual dispatch.
  std::size_t next_batch(Request* out, std::size_t max) override;

  /// Requests not yet emitted.
  std::size_t remaining() const { return count_ - emitted_; }

 private:
  WorkloadProfile profile_;
  util::Rng rng_;
  std::size_t count_;
  std::size_t emitted_ = 0;
  std::uint32_t line_bytes_;
  std::uint64_t lines_;
  std::uint64_t lines_per_row_;
  double clock_ps_ = 0.0;
  std::uint64_t current_line_ = 0;
  std::uint64_t stream_pos_;
  bool in_burst_ = false;
  int burst_left_ = 0;
};

/// Deterministic trace synthesis from a profile.
class TraceGenerator {
 public:
  TraceGenerator(WorkloadProfile profile, std::uint64_t seed);

  /// Generates `count` requests with the given line size (materialized;
  /// drains a GeneratorSource, so it is bit-identical to streaming).
  std::vector<Request> generate(std::size_t count,
                                std::uint32_t line_bytes) const;

  /// The lazy equivalent: a fresh source that synthesizes the same
  /// `count` requests on demand.
  GeneratorSource stream(std::size_t count, std::uint32_t line_bytes) const;

  const WorkloadProfile& profile() const { return profile_; }

 private:
  WorkloadProfile profile_;
  std::uint64_t seed_;
};

}  // namespace comet::memsim
