#pragma once

#include <string>
#include <vector>

#include "memsim/source.hpp"
#include "memsim/stats.hpp"

namespace comet::telemetry {
class Collector;
}

namespace comet::prof {
class Profiler;
}

/// The polymorphic replay-engine seam.
///
/// Every architecture in the study — a flat MemorySystem, a hybrid
/// TieredSystem, and any future backend — replays a RequestSource behind
/// this one interface, so drivers, sweeps and benches hold a
/// std::unique_ptr<Engine> and never branch on the concrete type.
/// Engines are const and stateless across runs: all replay state lives
/// on the stack of each run() call, so one Engine may serve concurrent
/// sweep workers with bit-identical results.
namespace comet::memsim {

class Engine {
 public:
  virtual ~Engine() = default;

  /// Attaches a telemetry collector the next run() records into: each
  /// run registers its stage(s) and streams request events / scheduler
  /// marks through the collector's recorders. Null (the default)
  /// disables telemetry at the cost of one pointer test per request.
  /// The collector must outlive every run() and is written by one run
  /// at a time — attach a separate Collector per concurrent job.
  void attach_telemetry(telemetry::Collector* collector) {
    telemetry_ = collector;
  }

  /// The attached collector, or nullptr (run() implementations and
  /// tests read this; sweeps attach per-job collectors).
  telemetry::Collector* telemetry() const { return telemetry_; }

  /// Attaches a host-side profiler the next run() reports into: stage
  /// wall timings, LanePool utilization/stall counters, and the live
  /// progress counter the heartbeat polls. Null (the default) disables
  /// profiling at the cost of one pointer test per request block;
  /// simulated statistics are bit-identical either way. Same lifetime
  /// and sharing rules as attach_telemetry: one profiler per concurrent
  /// job, outliving every run().
  void attach_profiler(prof::Profiler* profiler) { profiler_ = profiler; }

  /// The attached profiler, or nullptr.
  prof::Profiler* profiler() const { return profiler_; }

  /// Replays the stream (which must yield requests sorted by arrival
  /// time; throws std::invalid_argument naming the offending index
  /// otherwise) and returns aggregate statistics. The source is drained
  /// incrementally — O(1) memory regardless of stream length.
  virtual SimStats run(RequestSource& source,
                       const std::string& workload_name = "") const = 0;

  /// Materialized-vector adapter: wraps `requests` in a VectorSource and
  /// replays it, bit-identical to the streaming path.
  SimStats run(const std::vector<Request>& requests,
               const std::string& workload_name = "") const;

 private:
  telemetry::Collector* telemetry_ = nullptr;
  prof::Profiler* profiler_ = nullptr;
};

}  // namespace comet::memsim
