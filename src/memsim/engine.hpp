#pragma once

#include <string>
#include <vector>

#include "memsim/source.hpp"
#include "memsim/stats.hpp"

/// The polymorphic replay-engine seam.
///
/// Every architecture in the study — a flat MemorySystem, a hybrid
/// TieredSystem, and any future backend — replays a RequestSource behind
/// this one interface, so drivers, sweeps and benches hold a
/// std::unique_ptr<Engine> and never branch on the concrete type.
/// Engines are const and stateless across runs: all replay state lives
/// on the stack of each run() call, so one Engine may serve concurrent
/// sweep workers with bit-identical results.
namespace comet::memsim {

class Engine {
 public:
  virtual ~Engine() = default;

  /// Replays the stream (which must yield requests sorted by arrival
  /// time; throws std::invalid_argument naming the offending index
  /// otherwise) and returns aggregate statistics. The source is drained
  /// incrementally — O(1) memory regardless of stream length.
  virtual SimStats run(RequestSource& source,
                       const std::string& workload_name = "") const = 0;

  /// Materialized-vector adapter: wraps `requests` in a VectorSource and
  /// replays it, bit-identical to the streaming path.
  SimStats run(const std::vector<Request>& requests,
               const std::string& workload_name = "") const;
};

}  // namespace comet::memsim
