#include "memsim/device.hpp"

#include <stdexcept>

namespace comet::memsim {

void DeviceModel::validate() const {
  if (name.empty()) throw std::invalid_argument("DeviceModel: empty name");
  if (timing.channels < 1 || timing.banks_per_channel < 1) {
    throw std::invalid_argument("DeviceModel: bad topology");
  }
  if (timing.line_bytes == 0 ||
      (timing.line_bytes & (timing.line_bytes - 1)) != 0) {
    throw std::invalid_argument("DeviceModel: line size must be 2^k");
  }
  if (timing.accesses_per_line < 1) {
    throw std::invalid_argument("DeviceModel: accesses_per_line < 1");
  }
  if (timing.queue_depth < 1) {
    throw std::invalid_argument("DeviceModel: queue_depth < 1");
  }
  if (timing.has_row_buffer && timing.row_size_bytes == 0) {
    throw std::invalid_argument("DeviceModel: row buffer without row size");
  }
  if (timing.refresh_interval_ps != 0 &&
      timing.refresh_duration_ps >= timing.refresh_interval_ps) {
    throw std::invalid_argument("DeviceModel: refresh duration >= interval");
  }
  if (capacity_bytes == 0) {
    throw std::invalid_argument("DeviceModel: zero capacity");
  }
}

}  // namespace comet::memsim
