#include "memsim/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace comet::memsim {

std::vector<Request> read_trace(std::istream& in, const TraceConfig& config) {
  if (config.cpu_clock_ghz <= 0.0) {
    throw std::invalid_argument("read_trace: bad cpu clock");
  }
  const double ps_per_cycle = 1e3 / config.cpu_clock_ghz;
  std::vector<Request> requests;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t cycle = 0;
    std::string op;
    std::string addr;
    if (!(ls >> cycle >> op >> addr)) {
      throw std::runtime_error("read_trace: malformed line " +
                               std::to_string(line_no));
    }
    Request req;
    req.id = requests.size();
    req.arrival_ps =
        static_cast<std::uint64_t>(static_cast<double>(cycle) * ps_per_cycle);
    if (op == "R" || op == "r") {
      req.op = Op::kRead;
    } else if (op == "W" || op == "w") {
      req.op = Op::kWrite;
    } else {
      throw std::runtime_error("read_trace: bad op on line " +
                               std::to_string(line_no));
    }
    req.address = std::stoull(addr, nullptr, 16);
    req.size_bytes = config.line_bytes;
    requests.push_back(req);
  }
  return requests;
}

void write_trace(std::ostream& out, const std::vector<Request>& requests,
                 const TraceConfig& config) {
  const double cycles_per_ps = config.cpu_clock_ghz / 1e3;
  for (const auto& req : requests) {
    const auto cycle = static_cast<std::uint64_t>(
        static_cast<double>(req.arrival_ps) * cycles_per_ps);
    out << cycle << ' ' << (req.op == Op::kRead ? 'R' : 'W') << " 0x"
        << std::hex << req.address << std::dec << '\n';
  }
}

}  // namespace comet::memsim
