#include "memsim/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace comet::memsim {

namespace {

struct TraceRecord {
  std::uint64_t cycle = 0;
  Op op = Op::kRead;
  std::uint64_t address = 0;
};

[[noreturn]] void parse_error(const std::string& context,
                              std::uint64_t line_no, const std::string& line,
                              const std::string& reason) {
  std::ostringstream msg;
  msg << context << ": malformed line " << line_no << ": '" << line << "' ("
      << reason << ")";
  throw std::runtime_error(msg.str());
}

/// Parses one record line (never a comment/blank — callers skip those).
/// Trailing fields beyond the address (NVMain data payload, thread id)
/// are ignored.
TraceRecord parse_record(const std::string& context, std::uint64_t line_no,
                         const std::string& line) {
  std::istringstream ls(line);
  TraceRecord rec;
  std::string op;
  std::string addr;
  if (!(ls >> rec.cycle >> op >> addr)) {
    parse_error(context, line_no, line,
                "expected '<cycle> <R|W> <hex address>'");
  }
  if (op == "R" || op == "r") {
    rec.op = Op::kRead;
  } else if (op == "W" || op == "w") {
    rec.op = Op::kWrite;
  } else {
    parse_error(context, line_no, line, "bad op '" + op + "'");
  }
  try {
    std::size_t consumed = 0;
    rec.address = std::stoull(addr, &consumed, 16);
    if (consumed != addr.size()) throw std::invalid_argument(addr);
  } catch (const std::exception&) {
    parse_error(context, line_no, line, "bad hex address '" + addr + "'");
  }
  return rec;
}

/// The cycle-count analogue of check_arrival_order, with the trace
/// line's position and text in place of the request index.
void check_cycle_order(const std::string& context, std::uint64_t line_no,
                       const std::string& line, std::uint64_t prev_cycle,
                       std::uint64_t cycle) {
  if (cycle >= prev_cycle) return;
  std::ostringstream msg;
  msg << context << ": non-monotonic cycle at line " << line_no << ": '"
      << line << "' arrives at cycle " << cycle
      << ", before the previous record's " << prev_cycle;
  throw std::runtime_error(msg.str());
}

void validate_config(const TraceConfig& config) {
  if (config.cpu_clock_ghz <= 0.0) {
    throw std::invalid_argument("read_trace: bad cpu clock");
  }
  if (config.line_bytes == 0) {
    throw std::invalid_argument("read_trace: bad line size");
  }
}

}  // namespace

TraceFileSource::TraceFileSource(const std::string& path,
                                 const TraceConfig& config)
    : owned_(path),
      in_(&owned_),
      config_(config),
      ps_per_cycle_(1e3 / config.cpu_clock_ghz),
      name_(path) {
  validate_config(config_);
  if (!owned_) {
    throw std::runtime_error("cannot open trace file '" + path + "'");
  }
}

TraceFileSource::TraceFileSource(std::istream& in, const TraceConfig& config,
                                 std::string name)
    : in_(&in),
      config_(config),
      ps_per_cycle_(1e3 / config.cpu_clock_ghz),
      name_(std::move(name)) {
  validate_config(config_);
}

std::optional<Request> TraceFileSource::next() {
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_no_;
    if (line.empty() || line[0] == '#') continue;
    const TraceRecord rec = parse_record(name_, line_no_, line);
    if (emitted_ > 0) {
      check_cycle_order(name_, line_no_, line, prev_cycle_, rec.cycle);
    }
    prev_cycle_ = rec.cycle;
    Request req;
    req.id = emitted_++;
    req.arrival_ps = static_cast<std::uint64_t>(
        static_cast<double>(rec.cycle) * ps_per_cycle_);
    req.op = rec.op;
    req.address = rec.address;
    req.size_bytes = config_.line_bytes;
    return req;
  }
  // Distinguish clean EOF from an I/O error (unreadable path, disk
  // fault mid-file): the latter must fail loudly, never replay as a
  // silently truncated trace.
  if (in_->bad()) {
    throw std::runtime_error(name_ + ": read error after line " +
                             std::to_string(line_no_));
  }
  return std::nullopt;
}

std::size_t TraceFileSource::next_batch(Request* out, std::size_t max) {
  std::size_t filled = 0;
  while (filled < max) {
    const auto request = next();  // Devirtualized: the class is final.
    if (!request) break;
    out[filled++] = *request;
  }
  return filled;
}

std::vector<Request> read_trace(std::istream& in, const TraceConfig& config) {
  TraceFileSource source(in, config, "read_trace");
  std::vector<Request> requests;
  while (auto req = source.next()) requests.push_back(*req);
  return requests;
}

void write_trace(std::ostream& out, RequestSource& source,
                 const TraceConfig& config) {
  const double cycles_per_ps = config.cpu_clock_ghz / 1e3;
  while (const auto req = source.next()) {
    const auto cycle = static_cast<std::uint64_t>(
        static_cast<double>(req->arrival_ps) * cycles_per_ps);
    out << cycle << ' ' << (req->op == Op::kRead ? 'R' : 'W') << " 0x"
        << std::hex << req->address << std::dec << '\n';
  }
}

void write_trace(std::ostream& out, const std::vector<Request>& requests,
                 const TraceConfig& config) {
  VectorSource source(requests);
  write_trace(out, source, config);
}

}  // namespace comet::memsim
