#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "memsim/request.hpp"

/// NVMain-style text traces.
///
/// The paper evaluates with "memory traces from the SPEC benchmark suite"
/// replayed through a modified NVMain 2.0. We support NVMain's simple
/// text format, one access per line:
///
///     <cycle> <R|W> <hex address>
///
/// Cycles are converted to picoseconds with a configurable CPU clock
/// (NVMain traces are recorded in CPU cycles).
namespace comet::memsim {

struct TraceConfig {
  double cpu_clock_ghz = 2.0;     ///< Trace cycle -> time conversion.
  std::uint32_t line_bytes = 64;  ///< Request size attached to records.
};

/// Parses a trace stream. Throws std::runtime_error on malformed lines.
std::vector<Request> read_trace(std::istream& in, const TraceConfig& config);

/// Serializes requests back to the text format (cycles re-derived from
/// arrival times with the same clock).
void write_trace(std::ostream& out, const std::vector<Request>& requests,
                 const TraceConfig& config);

}  // namespace comet::memsim
