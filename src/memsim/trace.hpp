#pragma once

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "memsim/request.hpp"
#include "memsim/source.hpp"

/// NVMain-style text traces.
///
/// The paper evaluates with "memory traces from the SPEC benchmark suite"
/// replayed through a modified NVMain 2.0. We support NVMain's simple
/// text format, one access per line (trailing fields — data payload,
/// thread id — are ignored, '#' starts a comment):
///
///     <cycle> <R|W> <hex address>
///
/// Cycles are converted to picoseconds with a configurable CPU clock
/// (NVMain traces are recorded in CPU cycles).
///
/// Diagnostics: every parse error is a std::runtime_error naming the
/// 1-based line number and the offending line text; records whose cycle
/// count goes backwards are rejected in the same style (mirroring
/// require_sorted_by_arrival), so a broken trace fails loudly at its
/// first bad line rather than deep inside a replay.
namespace comet::memsim {

struct TraceConfig {
  double cpu_clock_ghz = 2.0;     ///< Trace cycle -> time conversion.
  std::uint32_t line_bytes = 64;  ///< Request size attached to records.
};

/// Parses a trace stream into a materialized vector. Throws
/// std::runtime_error (see the diagnostics note above) on malformed
/// lines or non-monotonic cycle counts.
std::vector<Request> read_trace(std::istream& in, const TraceConfig& config);

/// Streaming trace reader: pulls one record per next() call — O(1)
/// memory however long the file — and enforces the sorted-by-arrival
/// contract incrementally as records are pulled, with the same
/// line-numbered diagnostics as read_trace. read_trace is implemented on
/// top of this class, so both paths accept exactly the same inputs.
class TraceFileSource final : public RequestSource {
 public:
  /// Opens `path`; throws std::runtime_error naming the path when the
  /// file cannot be opened.
  TraceFileSource(const std::string& path, const TraceConfig& config);

  /// Streams from a caller-owned stream (which must outlive the source);
  /// `name` labels diagnostics.
  TraceFileSource(std::istream& in, const TraceConfig& config,
                  std::string name = "trace");

  // in_ may point at owned_; default copy/move would leave it dangling
  // at the old object.
  TraceFileSource(const TraceFileSource&) = delete;
  TraceFileSource& operator=(const TraceFileSource&) = delete;

  std::optional<Request> next() override;

  /// Block form of next(): parses up to `max` records (the class is
  /// final, so the loop devirtualizes), same sequence and diagnostics.
  std::size_t next_batch(Request* out, std::size_t max) override;

  /// 1-based number of the last line consumed (0 before the first).
  std::uint64_t line_number() const { return line_no_; }

 private:
  std::ifstream owned_;
  std::istream* in_;
  TraceConfig config_;
  double ps_per_cycle_;
  std::string name_;
  std::uint64_t line_no_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t prev_cycle_ = 0;
};

/// Serializes a request stream to the text format (cycles re-derived
/// from arrival times with the same clock), draining the source.
void write_trace(std::ostream& out, RequestSource& source,
                 const TraceConfig& config);

/// Materialized-vector convenience overload.
void write_trace(std::ostream& out, const std::vector<Request>& requests,
                 const TraceConfig& config);

}  // namespace comet::memsim
