#include "memsim/stats.hpp"

namespace comet::memsim {

double SimStats::bandwidth_gbps() const {
  if (span_ps == 0) return 0.0;
  const double seconds = static_cast<double>(span_ps) * 1e-12;
  return static_cast<double>(bytes_transferred) / seconds / 1e9;
}

double SimStats::epb_pj_per_bit() const {
  if (bytes_transferred == 0) return 0.0;
  const double bits = static_cast<double>(bytes_transferred) * 8.0;
  return (dynamic_energy_pj + background_energy_pj) / bits;
}

double SimStats::avg_latency_ns() const {
  const auto n = read_latency_ns.count() + write_latency_ns.count();
  if (n == 0) return 0.0;
  return (read_latency_ns.sum() + write_latency_ns.sum()) /
         static_cast<double>(n);
}

double SimStats::bank_utilization(int total_banks) const {
  if (span_ps == 0 || total_banks <= 0) return 0.0;
  const double span_ns = static_cast<double>(span_ps) * 1e-3;
  return total_bank_busy_ns / (span_ns * total_banks);
}

double SimStats::hit_rate() const {
  const std::uint64_t accesses = cache_hits + cache_misses;
  if (accesses == 0) return 0.0;
  return static_cast<double>(cache_hits) / static_cast<double>(accesses);
}

double SimStats::bw_per_epb() const {
  const double epb = epb_pj_per_bit();
  if (epb == 0.0) return 0.0;
  return bandwidth_gbps() / epb;
}

}  // namespace comet::memsim
