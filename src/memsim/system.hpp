#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "memsim/device.hpp"
#include "memsim/engine.hpp"
#include "memsim/request.hpp"
#include "memsim/stats.hpp"

namespace comet::telemetry {
class Recorder;
}

/// Trace-replay engine (the NVMain-2.0 substitute).
///
/// One generic controller serves every architecture in the study, driven
/// entirely by the DeviceModel descriptor: requests are interleaved over
/// channels by line address, queued FCFS per channel with a bounded
/// outstanding window (the controller's exploitable memory-level
/// parallelism), scheduled onto banks honouring occupancy, row-buffer
/// hits, refresh blocking and photonic region-switch penalties, and
/// charged per-bit dynamic energy plus always-on background power.
///
/// Streaming contract: replay is incremental. MemorySystem::run pulls
/// one Request at a time from a RequestSource and feeds it to a
/// ReplaySession, which keeps only O(channels x banks) scheduler state —
/// never the trace itself — so arbitrarily long streams (multi-million-
/// request NVMain traces, lazy generator sources) replay in constant
/// memory. The stream must arrive sorted by arrival_ps: each feed
/// verifies monotonicity against its predecessor and throws
/// std::invalid_argument naming the offending (0-based) index and both
/// out-of-order timestamps. Results are bit-identical whether a trace is
/// streamed or materialized first: the vector entry point is a thin
/// VectorSource adapter over the same session.
namespace comet::memsim {

/// Throws std::invalid_argument naming the offending index and the two
/// out-of-order timestamps if `requests` is not sorted by arrival time.
/// Shared by MemorySystem and hybrid::TieredSystem, whose replay engines
/// both rely on the sorted-stream contract.
void require_sorted_by_arrival(const std::vector<Request>& requests);

/// Incremental form of the same check: throws the identical diagnostic
/// for request `index` arriving at `arrival_ps` before `prev_ps`.
void check_arrival_order(std::uint64_t index, std::uint64_t prev_ps,
                         std::uint64_t arrival_ps);

/// Where the controller address hash places one request: the serving
/// channel, the bank within it (the lead bank for striped devices,
/// which occupy every bank of the channel), and the row / photonic
/// region the first line falls into. Single source of truth shared by
/// the replay engine and the sched::Controller front-end, so queue
/// arbitration and bank timing always agree on the mapping.
struct RequestPlacement {
  int channel = 0;
  int bank = 0;
  std::uint64_t row = 0;
  std::uint64_t region = 0;
};

RequestPlacement place_request(const DeviceTiming& timing,
                               const Request& request);

/// Per-request scheduling feedback returned by ReplaySession::feed /
/// feed_issued: when service began (post bank-busy / window / refresh
/// arbitration), when the data returned, and how long the serving
/// bank(s) stay busy (including off-latency-path restore/erase tails).
/// The sched::Controller mirrors bank state from this.
struct FeedResult {
  std::uint64_t start_ps = 0;
  std::uint64_t completion_ps = 0;
  std::uint64_t bank_busy_until_ps = 0;
};

/// A partial replay result: the statistics of some subset of a run's
/// requests, before span-dependent finalization. Sessions accumulate
/// every per-request statistic in per-channel lanes and merge the lanes
/// in channel order (see finish_slice), so a slice covering only one
/// channel's traffic is bit-identical to that channel's lane inside a
/// full serial replay — the property the sharded engine's merge relies
/// on. span_ps and background_energy_pj stay zero until finalize_slice
/// derives them from the merged arrival/completion window.
struct ReplaySlice {
  SimStats stats;
  std::uint64_t fed = 0;               ///< Requests covered by the slice.
  std::uint64_t first_arrival_ps = 0;  ///< Meaningful only when fed > 0.
  std::uint64_t last_completion_ps = 0;
};

/// Merges `from` into `into`: integer counters add, energy/busy-time
/// sums add, latency/queue/sched RunningStats merge (exact when either
/// side is empty — the case the bit-identity guarantee rests on), the
/// arrival/completion window widens, and names/flags fill in when
/// `into` lacks them. Merging slices in channel order reproduces the
/// serial reduction bit for bit.
void merge_slice(ReplaySlice& into, const ReplaySlice& from);

/// Closes a merged slice into final statistics: derives span_ps from
/// the arrival/completion window and charges span-proportional
/// background energy (always-on plus activity-gated) for `model`.
/// Identical, expression for expression, to what a serial
/// ReplaySession::finish computes.
SimStats finalize_slice(ReplaySlice slice, const DeviceModel& model);

class MemorySystem;

/// Push-mode incremental replay against one MemorySystem: feed()
/// schedules one request at a time (verifying the sorted-stream
/// contract), finish() closes the run and returns the aggregate
/// statistics. This is the primitive composite engines build on —
/// hybrid::TieredSystem streams its derived per-tier traffic into two
/// concurrent sessions without materializing either sub-stream, and
/// memsim::ShardedEngine runs one session per channel lane and merges
/// their finish_slice() results. The MemorySystem must outlive the
/// session.
class ReplaySession {
 public:
  /// `telemetry`, when non-null, receives one RequestEvent per fed
  /// request in the recorder lane of the serving channel (the
  /// near-zero-cost observability hook: untraced sessions pay one null
  /// test per request). The recorder must outlive the session and span
  /// at least this system's channels/banks.
  ReplaySession(const MemorySystem& system, std::string workload_name,
                telemetry::Recorder* telemetry = nullptr);
  ReplaySession(ReplaySession&&) noexcept;
  ReplaySession& operator=(ReplaySession&&) noexcept;
  ~ReplaySession();

  /// Schedules one request. Throws std::invalid_argument if it arrives
  /// before its predecessor, std::logic_error after finish().
  FeedResult feed(const Request& request);

  /// Scheduled-controller entry point: schedules `request` as if it
  /// were handed to the device at `issue_ps` (>= its arrival time),
  /// while all latency/queue-delay statistics stay anchored at the
  /// original arrival. A sched::Controller reorders its transaction
  /// queues and feeds in issue order; the stream must be sorted by
  /// issue_ps *within each channel* (replay state is channel-local, so
  /// only per-channel order matters; a controller with independent
  /// per-channel issue clocks may interleave channels arbitrarily).
  /// Violations (issue before arrival, non-monotonic issue times on a
  /// channel) are controller bugs and throw std::logic_error. With
  /// issue_ps == arrival_ps on a sorted stream this is exactly feed(),
  /// bit for bit.
  FeedResult feed_issued(const Request& request, std::uint64_t issue_ps);

  /// Number of requests fed so far.
  std::uint64_t fed() const;

  /// Arrival time of the first fed request (0 before any feed).
  std::uint64_t first_arrival_ps() const;

  /// Closes the run: charges span-proportional background energy and
  /// returns the statistics. May be called once; throws std::logic_error
  /// on a second call. Equivalent to finalize_slice(finish_slice()).
  SimStats finish();

  /// Closes the run without finalizing: returns the per-channel lanes
  /// merged in channel order, ready for merge_slice with other shards'
  /// slices (then finalize_slice once). Same once-only contract as
  /// finish().
  ReplaySlice finish_slice();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class MemorySystem final : public Engine {
 public:
  explicit MemorySystem(DeviceModel model);

  const DeviceModel& model() const { return model_; }

  using Engine::run;

  /// Streams the source through a ReplaySession (see the header comment
  /// for the streaming contract).
  SimStats run(RequestSource& source,
               const std::string& workload_name = "") const override;

 private:
  friend class ReplaySession;
  DeviceModel model_;
};

}  // namespace comet::memsim
