#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memsim/device.hpp"
#include "memsim/request.hpp"
#include "memsim/stats.hpp"

/// Trace-replay engine (the NVMain-2.0 substitute).
///
/// One generic controller serves every architecture in the study, driven
/// entirely by the DeviceModel descriptor: requests are interleaved over
/// channels by line address, queued FCFS per channel with a bounded
/// outstanding window (the controller's exploitable memory-level
/// parallelism), scheduled onto banks honouring occupancy, row-buffer
/// hits, refresh blocking and photonic region-switch penalties, and
/// charged per-bit dynamic energy plus always-on background power.
namespace comet::memsim {

/// Throws std::invalid_argument naming the offending index and the two
/// out-of-order timestamps if `requests` is not sorted by arrival time.
/// Shared by MemorySystem and hybrid::TieredSystem, whose replay engines
/// both rely on the sorted-stream contract.
void require_sorted_by_arrival(const std::vector<Request>& requests);

class MemorySystem {
 public:
  explicit MemorySystem(DeviceModel model);

  const DeviceModel& model() const { return model_; }

  /// Replays the request stream (must be sorted by arrival time) and
  /// returns aggregate statistics. Throws std::invalid_argument on an
  /// unsorted stream.
  SimStats run(const std::vector<Request>& requests,
               const std::string& workload_name = "") const;

 private:
  DeviceModel model_;
};

}  // namespace comet::memsim
