#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "memsim/engine.hpp"
#include "memsim/system.hpp"

/// Sharded per-channel parallel replay.
///
/// The controller address hash makes every channel an island: placement,
/// bank timing, the outstanding window and all per-request statistics
/// are channel-local, and the serial engines already accumulate their
/// statistics in per-channel lanes merged in channel order (see
/// ReplaySlice). Sharding exploits that: partition the incoming stream
/// by serving channel, run one full replay pipeline per channel lane on
/// a small worker pool, and merge the lanes' finish_slice() results in
/// channel order — the exact reduction the serial path performs, so the
/// result is bit-identical to a serial run for any thread count. That
/// bit-identity is a hard test gate (tests/test_sharded.cpp), not a
/// best-effort property.
///
/// Threading model: the caller's thread is the producer — it pulls the
/// source in blocks (sources are single-pass and stay single-threaded),
/// routes each request to its lane, and hands ~kFeedBlockRequests-sized
/// blocks to the lane's worker over a bounded queue. Lanes map to
/// workers round-robin (lane % workers); each lane is only ever touched
/// by one worker, so lanes need no locking of their own. With
/// threads <= 1 the pool degenerates to inline feeding on the caller's
/// thread — zero threading overhead, same code path as the tests'
/// reference runs.
namespace comet::prof {
class Profiler;
struct PoolProfile;
}

namespace comet::memsim {

/// Resolves a --run-threads request: 0 means one thread per hardware
/// thread (at least 1), any positive value is taken as-is. Throws
/// std::invalid_argument on negative values.
int resolve_run_threads(int requested);

/// One shard lane: a full replay pipeline (session, or a scheduler
/// front-end over one) that consumes exactly one channel's subsequence
/// of the run's stream. feed() is called in stream order by the lane's
/// single worker; finish_slice() is called once, after every feed, from
/// the merging thread.
class ShardLane {
 public:
  virtual ~ShardLane() = default;
  virtual void feed(const Request& request) = 0;
  virtual ReplaySlice finish_slice() = 0;
};

/// Plain ReplaySession lane — the shard unit of an unscheduled flat
/// device. The optional telemetry recorder is shared by every lane of
/// a stage: each lane only writes the recorder lane of the channel it
/// serves, so the sharing is race-free and the recorded telemetry is
/// byte-identical to a serial session's (see telemetry.hpp).
class SessionLane final : public ShardLane {
 public:
  SessionLane(const MemorySystem& system, std::string workload_name,
              telemetry::Recorder* telemetry = nullptr)
      : session_(system, std::move(workload_name), telemetry) {}

  void feed(const Request& request) override { session_.feed(request); }
  ReplaySlice finish_slice() override { return session_.finish_slice(); }

 private:
  ReplaySession session_;
};

/// Runs N lanes on up to `threads` worker threads (bounded block queues,
/// block recycling through a free list; see the header comment for the
/// threading model). A lane exception is captured and rethrown on the
/// caller's thread — from feed() as soon as it is noticed, else from
/// finish(); the lowest-numbered worker's error wins when several fail.
class LanePool {
 public:
  /// Takes ownership of the lanes. threads <= 1 selects inline mode.
  /// A non-null `profile` collects host-side wall-clock counters (lane
  /// busy time, queue stalls, block recycling); the pool sizes its lane
  /// and worker vectors before any worker spawns, and publishes every
  /// counter by the time finish() returns. Null costs one pointer test
  /// per block; the simulated results are bit-identical either way.
  LanePool(std::vector<std::unique_ptr<ShardLane>> lanes, int threads,
           prof::PoolProfile* profile = nullptr);
  ~LanePool();

  LanePool(const LanePool&) = delete;
  LanePool& operator=(const LanePool&) = delete;

  /// Routes one request to `lane` (producer thread only).
  void feed(std::size_t lane, const Request& request);

  /// Flushes, joins the workers and returns every lane's slice in lane
  /// order. May be called once.
  std::vector<ReplaySlice> finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Shared driver loop for sharded engines: streams `source` through one
/// lane per device channel (routing by the same place_request hash the
/// replay uses), enforcing the global sorted-by-arrival contract with
/// serial-identical diagnostics, then merges the slices in channel
/// order and finalizes against `system`'s model.
/// A non-null `profiler` receives a pool profile plus "source_pull" /
/// "engine_feed" / "shard_merge" stage timings and live progress ticks.
SimStats run_sharded(const MemorySystem& system,
                     std::vector<std::unique_ptr<ShardLane>> lanes,
                     int threads, RequestSource& source,
                     prof::Profiler* profiler = nullptr);

/// Engine adapter: a flat MemorySystem replayed across per-channel
/// worker threads — the parallel twin of MemorySystem itself, returning
/// bit-identical statistics. Const and stateless across runs like every
/// Engine; each run() builds its lanes and pool on the stack.
class ShardedEngine final : public Engine {
 public:
  /// Validates the model; `run_threads` as in resolve_run_threads.
  ShardedEngine(DeviceModel model, int run_threads);

  const MemorySystem& system() const { return system_; }
  int run_threads() const { return run_threads_; }

  using Engine::run;

  SimStats run(RequestSource& source,
               const std::string& workload_name = "") const override;

 private:
  MemorySystem system_;
  int run_threads_;
};

}  // namespace comet::memsim
