#include "memsim/trace_gen.hpp"

#include <algorithm>
#include <stdexcept>

namespace comet::memsim {

namespace {

void validate_profile(const WorkloadProfile& profile) {
  if (profile.read_fraction < 0.0 || profile.read_fraction > 1.0 ||
      profile.locality < 0.0 || profile.locality > 1.0 ||
      profile.working_set_bytes == 0 || profile.avg_interarrival_ns <= 0) {
    throw std::invalid_argument("TraceGenerator: invalid profile");
  }
}

constexpr std::uint64_t kRowBytes = 4096;
// Hot set for Zipf patterns: 4096 hot lines spread over the set.
constexpr std::uint64_t kHotLines = 4096;

}  // namespace

std::vector<WorkloadProfile> spec_like_profiles() {
  // Classes follow the standard SPEC CPU memory characterizations:
  // lbm/libquantum stream, mcf/omnetpp pointer-chase with hot sets,
  // gcc/xalancbmk mixed, milc/leslie3d strided scientific kernels.
  return {
      WorkloadProfile{.name = "mcf_like",
                      .pattern = Pattern::kPointerChase,
                      .read_fraction = 0.92,
                      .locality = 0.1,
                      .zipf_exponent = 0.9,
                      .working_set_bytes = 2ull << 30,
                      .avg_interarrival_ns = 4.0},
      WorkloadProfile{.name = "lbm_like",
                      .pattern = Pattern::kStreaming,
                      .read_fraction = 0.55,
                      .locality = 0.9,
                      .zipf_exponent = 0.0,
                      .working_set_bytes = 1ull << 30,
                      .avg_interarrival_ns = 3.0},
      WorkloadProfile{.name = "gcc_like",
                      .pattern = Pattern::kMixed,
                      .read_fraction = 0.75,
                      .locality = 0.55,
                      .zipf_exponent = 0.6,
                      .working_set_bytes = 512ull << 20,
                      .avg_interarrival_ns = 10.0},
      WorkloadProfile{.name = "milc_like",
                      .pattern = Pattern::kStrided,
                      .read_fraction = 0.7,
                      .locality = 0.35,
                      .zipf_exponent = 0.0,
                      .working_set_bytes = 1ull << 30,
                      .avg_interarrival_ns = 5.0,
                      .stride_bytes = 512},
      WorkloadProfile{.name = "omnetpp_like",
                      .pattern = Pattern::kPointerChase,
                      .read_fraction = 0.8,
                      .locality = 0.2,
                      .zipf_exponent = 1.1,
                      .working_set_bytes = 256ull << 20,
                      .avg_interarrival_ns = 8.0},
      WorkloadProfile{.name = "xalancbmk_like",
                      .pattern = Pattern::kMixed,
                      .read_fraction = 0.85,
                      .locality = 0.45,
                      .zipf_exponent = 0.8,
                      .working_set_bytes = 512ull << 20,
                      .avg_interarrival_ns = 6.0},
      WorkloadProfile{.name = "leslie3d_like",
                      .pattern = Pattern::kStrided,
                      .read_fraction = 0.65,
                      .locality = 0.5,
                      .zipf_exponent = 0.0,
                      .working_set_bytes = 2ull << 30,
                      .avg_interarrival_ns = 4.0,
                      .stride_bytes = 1024},
      WorkloadProfile{.name = "libquantum_like",
                      .pattern = Pattern::kStreaming,
                      .read_fraction = 0.78,
                      .locality = 0.95,
                      .zipf_exponent = 0.0,
                      .working_set_bytes = 128ull << 20,
                      .avg_interarrival_ns = 2.5},
  };
}

WorkloadProfile profile_by_name(const std::string& name) {
  for (auto& p : spec_like_profiles()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("profile_by_name: unknown profile " + name);
}

GeneratorSource::GeneratorSource(WorkloadProfile profile, std::uint64_t seed,
                                 std::size_t count, std::uint32_t line_bytes)
    : profile_(std::move(profile)),
      rng_(seed),
      count_(count),
      line_bytes_(line_bytes) {
  validate_profile(profile_);
  if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0) {
    throw std::invalid_argument("TraceGenerator: line size must be 2^k");
  }
  if (line_bytes > kRowBytes) {
    throw std::invalid_argument(
        "TraceGenerator: line size must not exceed the " +
        std::to_string(kRowBytes) + " B row");
  }
  lines_ = profile_.working_set_bytes / line_bytes_;
  if (lines_ == 0) {
    throw std::invalid_argument(
        "TraceGenerator: working set smaller than one line");
  }
  lines_per_row_ = kRowBytes / line_bytes_;
  stream_pos_ = rng_.next_below(lines_);
}

std::optional<Request> GeneratorSource::next() {
  if (emitted_ >= count_) return std::nullopt;

  clock_ps_ += rng_.next_exponential(profile_.avg_interarrival_ns * 1e3);

  std::uint64_t line = 0;
  switch (profile_.pattern) {
    case Pattern::kStreaming: {
      if (rng_.next_bool(1.0 - profile_.locality)) {
        stream_pos_ = rng_.next_below(lines_);  // stream restart
      } else {
        stream_pos_ = (stream_pos_ + 1) % lines_;
      }
      line = stream_pos_;
      break;
    }
    case Pattern::kStrided: {
      const std::uint64_t stride_lines =
          std::max<std::uint64_t>(1, profile_.stride_bytes / line_bytes_);
      if (rng_.next_bool(1.0 - profile_.locality)) {
        stream_pos_ = rng_.next_below(lines_);
      } else {
        stream_pos_ = (stream_pos_ + stride_lines) % lines_;
      }
      line = stream_pos_;
      break;
    }
    case Pattern::kRandom: {
      line = rng_.next_below(lines_);
      break;
    }
    case Pattern::kPointerChase: {
      if (rng_.next_bool(profile_.locality)) {
        // Stay within the current row (short dependent run).
        const std::uint64_t row = current_line_ / lines_per_row_;
        line = row * lines_per_row_ + rng_.next_below(lines_per_row_);
      } else {
        // Jump to a Zipf-hot line scattered over the working set.
        const std::uint64_t hot = rng_.next_zipf(
            std::min(kHotLines, lines_), profile_.zipf_exponent);
        line = (hot * 2654435761ull) % lines_;
      }
      break;
    }
    case Pattern::kMixed: {
      if (!in_burst_ && rng_.next_bool(0.25)) {
        in_burst_ = true;
        burst_left_ = static_cast<int>(4 + rng_.next_below(12));
        stream_pos_ = rng_.next_below(lines_);
      }
      if (in_burst_) {
        stream_pos_ = (stream_pos_ + 1) % lines_;
        line = stream_pos_;
        if (--burst_left_ <= 0) in_burst_ = false;
      } else if (rng_.next_bool(profile_.zipf_exponent > 0 ? 0.5 : 0.0)) {
        const std::uint64_t hot = rng_.next_zipf(
            std::min(kHotLines, lines_), profile_.zipf_exponent);
        line = (hot * 2654435761ull) % lines_;
      } else {
        line = rng_.next_below(lines_);
      }
      break;
    }
  }
  current_line_ = line;

  Request req;
  req.id = emitted_++;
  req.arrival_ps = static_cast<std::uint64_t>(clock_ps_);
  req.op = rng_.next_bool(profile_.read_fraction) ? Op::kRead : Op::kWrite;
  req.address = line * line_bytes_;
  req.size_bytes = line_bytes_;
  return req;
}

std::size_t GeneratorSource::next_batch(Request* out, std::size_t max) {
  std::size_t filled = 0;
  while (filled < max) {
    const auto request = next();  // Devirtualized: the class is final.
    if (!request) break;
    out[filled++] = *request;
  }
  return filled;
}

TraceGenerator::TraceGenerator(WorkloadProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)), seed_(seed) {
  validate_profile(profile_);
}

std::vector<Request> TraceGenerator::generate(
    std::size_t count, std::uint32_t line_bytes) const {
  GeneratorSource source = stream(count, line_bytes);
  std::vector<Request> requests;
  requests.reserve(count);
  while (auto req = source.next()) requests.push_back(*req);
  return requests;
}

GeneratorSource TraceGenerator::stream(std::size_t count,
                                       std::uint32_t line_bytes) const {
  return GeneratorSource(profile_, seed_, count, line_bytes);
}

}  // namespace comet::memsim
