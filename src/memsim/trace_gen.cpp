#include "memsim/trace_gen.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace comet::memsim {

std::vector<WorkloadProfile> spec_like_profiles() {
  // Classes follow the standard SPEC CPU memory characterizations:
  // lbm/libquantum stream, mcf/omnetpp pointer-chase with hot sets,
  // gcc/xalancbmk mixed, milc/leslie3d strided scientific kernels.
  return {
      WorkloadProfile{.name = "mcf_like",
                      .pattern = Pattern::kPointerChase,
                      .read_fraction = 0.92,
                      .locality = 0.1,
                      .zipf_exponent = 0.9,
                      .working_set_bytes = 2ull << 30,
                      .avg_interarrival_ns = 4.0},
      WorkloadProfile{.name = "lbm_like",
                      .pattern = Pattern::kStreaming,
                      .read_fraction = 0.55,
                      .locality = 0.9,
                      .zipf_exponent = 0.0,
                      .working_set_bytes = 1ull << 30,
                      .avg_interarrival_ns = 3.0},
      WorkloadProfile{.name = "gcc_like",
                      .pattern = Pattern::kMixed,
                      .read_fraction = 0.75,
                      .locality = 0.55,
                      .zipf_exponent = 0.6,
                      .working_set_bytes = 512ull << 20,
                      .avg_interarrival_ns = 10.0},
      WorkloadProfile{.name = "milc_like",
                      .pattern = Pattern::kStrided,
                      .read_fraction = 0.7,
                      .locality = 0.35,
                      .zipf_exponent = 0.0,
                      .working_set_bytes = 1ull << 30,
                      .avg_interarrival_ns = 5.0,
                      .stride_bytes = 512},
      WorkloadProfile{.name = "omnetpp_like",
                      .pattern = Pattern::kPointerChase,
                      .read_fraction = 0.8,
                      .locality = 0.2,
                      .zipf_exponent = 1.1,
                      .working_set_bytes = 256ull << 20,
                      .avg_interarrival_ns = 8.0},
      WorkloadProfile{.name = "xalancbmk_like",
                      .pattern = Pattern::kMixed,
                      .read_fraction = 0.85,
                      .locality = 0.45,
                      .zipf_exponent = 0.8,
                      .working_set_bytes = 512ull << 20,
                      .avg_interarrival_ns = 6.0},
      WorkloadProfile{.name = "leslie3d_like",
                      .pattern = Pattern::kStrided,
                      .read_fraction = 0.65,
                      .locality = 0.5,
                      .zipf_exponent = 0.0,
                      .working_set_bytes = 2ull << 30,
                      .avg_interarrival_ns = 4.0,
                      .stride_bytes = 1024},
      WorkloadProfile{.name = "libquantum_like",
                      .pattern = Pattern::kStreaming,
                      .read_fraction = 0.78,
                      .locality = 0.95,
                      .zipf_exponent = 0.0,
                      .working_set_bytes = 128ull << 20,
                      .avg_interarrival_ns = 2.5},
  };
}

WorkloadProfile profile_by_name(const std::string& name) {
  for (auto& p : spec_like_profiles()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("profile_by_name: unknown profile " + name);
}

TraceGenerator::TraceGenerator(WorkloadProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)), seed_(seed) {
  if (profile_.read_fraction < 0.0 || profile_.read_fraction > 1.0 ||
      profile_.locality < 0.0 || profile_.locality > 1.0 ||
      profile_.working_set_bytes == 0 || profile_.avg_interarrival_ns <= 0) {
    throw std::invalid_argument("TraceGenerator: invalid profile");
  }
}

std::vector<Request> TraceGenerator::generate(
    std::size_t count, std::uint32_t line_bytes) const {
  if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0) {
    throw std::invalid_argument("TraceGenerator: line size must be 2^k");
  }
  util::Rng rng(seed_);
  std::vector<Request> requests;
  requests.reserve(count);

  const std::uint64_t lines = profile_.working_set_bytes / line_bytes;
  constexpr std::uint64_t kRowBytes = 4096;
  const std::uint64_t lines_per_row = kRowBytes / line_bytes;
  // Hot set for Zipf patterns: 4096 hot lines spread over the set.
  constexpr std::uint64_t kHotLines = 4096;

  double clock_ps = 0.0;
  std::uint64_t current_line = 0;
  std::uint64_t stream_pos = rng.next_below(lines);
  bool in_burst = false;
  int burst_left = 0;

  for (std::size_t i = 0; i < count; ++i) {
    clock_ps += rng.next_exponential(profile_.avg_interarrival_ns * 1e3);

    std::uint64_t line = 0;
    switch (profile_.pattern) {
      case Pattern::kStreaming: {
        if (rng.next_bool(1.0 - profile_.locality)) {
          stream_pos = rng.next_below(lines);  // stream restart
        } else {
          stream_pos = (stream_pos + 1) % lines;
        }
        line = stream_pos;
        break;
      }
      case Pattern::kStrided: {
        const std::uint64_t stride_lines =
            std::max<std::uint64_t>(1, profile_.stride_bytes / line_bytes);
        if (rng.next_bool(1.0 - profile_.locality)) {
          stream_pos = rng.next_below(lines);
        } else {
          stream_pos = (stream_pos + stride_lines) % lines;
        }
        line = stream_pos;
        break;
      }
      case Pattern::kRandom: {
        line = rng.next_below(lines);
        break;
      }
      case Pattern::kPointerChase: {
        if (rng.next_bool(profile_.locality)) {
          // Stay within the current row (short dependent run).
          const std::uint64_t row = current_line / lines_per_row;
          line = row * lines_per_row + rng.next_below(lines_per_row);
        } else {
          // Jump to a Zipf-hot line scattered over the working set.
          const std::uint64_t hot = rng.next_zipf(
              std::min(kHotLines, lines), profile_.zipf_exponent);
          line = (hot * 2654435761ull) % lines;
        }
        break;
      }
      case Pattern::kMixed: {
        if (!in_burst && rng.next_bool(0.25)) {
          in_burst = true;
          burst_left = static_cast<int>(4 + rng.next_below(12));
          stream_pos = rng.next_below(lines);
        }
        if (in_burst) {
          stream_pos = (stream_pos + 1) % lines;
          line = stream_pos;
          if (--burst_left <= 0) in_burst = false;
        } else if (rng.next_bool(profile_.zipf_exponent > 0 ? 0.5 : 0.0)) {
          const std::uint64_t hot = rng.next_zipf(
              std::min(kHotLines, lines), profile_.zipf_exponent);
          line = (hot * 2654435761ull) % lines;
        } else {
          line = rng.next_below(lines);
        }
        break;
      }
    }
    current_line = line;

    Request req;
    req.id = i;
    req.arrival_ps = static_cast<std::uint64_t>(clock_ps);
    req.op = rng.next_bool(profile_.read_fraction) ? Op::kRead : Op::kWrite;
    req.address = line * line_bytes;
    req.size_bytes = line_bytes;
    requests.push_back(req);
  }
  return requests;
}

}  // namespace comet::memsim
