#include "memsim/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "prof/profiler.hpp"
#include "telemetry/telemetry.hpp"
#include "util/ring.hpp"

namespace comet::memsim {

namespace {

using ProfClock = std::chrono::steady_clock;

double seconds_since(ProfClock::time_point start) {
  return std::chrono::duration<double>(ProfClock::now() - start).count();
}

}  // namespace

int resolve_run_threads(int requested) {
  if (requested < 0) {
    throw std::invalid_argument(
        "run_threads must be >= 0 (0 = one per hardware thread)");
  }
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

/// Blocks a worker may hold queued before the producer blocks on it:
/// enough to ride out scheduling jitter, small enough that a slow lane
/// backpressures the producer instead of buffering the whole stream.
constexpr std::size_t kMaxQueuedBlocksPerWorker = 4;

}  // namespace

struct LanePool::Impl {
  struct Block {
    std::size_t lane = 0;
    std::vector<Request> requests;
  };

  struct Worker {
    std::thread thread;
    std::mutex mutex;
    std::condition_variable can_push;  ///< Producer waits: queue full.
    std::condition_variable can_pull;  ///< Worker waits: queue empty.
    util::RingQueue<std::unique_ptr<Block>> queue{kMaxQueuedBlocksPerWorker};
    bool done = false;
    bool failed = false;
    std::exception_ptr error;
    /// This worker's profile slot, or null. Written only by this worker
    /// thread; the join in shutdown() publishes it to the reader.
    prof::WorkerProfile* wprof = nullptr;
  };

  std::vector<std::unique_ptr<ShardLane>> lanes;
  /// One block per lane being filled by the producer (worker mode only).
  std::vector<std::unique_ptr<Block>> pending;
  std::vector<std::unique_ptr<Worker>> workers;  ///< Empty = inline mode.
  std::mutex free_mutex;
  std::vector<std::unique_ptr<Block>> free_blocks;
  /// Host profile, or null. Producer-side counters (push_*, block
  /// accounting, high water) are producer-thread-only; each lane/worker
  /// slot belongs to the worker owning that lane (lane % workers).
  prof::PoolProfile* profile = nullptr;
  ProfClock::time_point profile_start;

  Impl(std::vector<std::unique_ptr<ShardLane>> lanes_in, int threads,
       prof::PoolProfile* profile_in)
      : lanes(std::move(lanes_in)), profile(profile_in) {
    if (lanes.empty()) {
      throw std::invalid_argument("LanePool: at least one lane required");
    }
    if (profile) {
      profile->lanes.resize(lanes.size());
      profile->threads = threads <= 1 ? 0 : static_cast<int>(std::min(
                             static_cast<std::size_t>(threads), lanes.size()));
      profile_start = ProfClock::now();
    }
    if (threads <= 1) return;  // Inline mode: feed on the caller's thread.
    const std::size_t worker_count =
        std::min(static_cast<std::size_t>(threads), lanes.size());
    pending.resize(lanes.size());
    workers.reserve(worker_count);
    if (profile) profile->workers.resize(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i) {
      workers.push_back(std::make_unique<Worker>());
      if (profile) workers.back()->wprof = &profile->workers[i];
    }
    // Spawn only once every Worker is at its final address.
    for (auto& worker : workers) {
      Worker& w = *worker;
      w.thread = std::thread([this, &w] { worker_loop(w); });
    }
  }

  ~Impl() { shutdown(); }

  Worker& worker_for(std::size_t lane) {
    return *workers[lane % workers.size()];
  }

  std::unique_ptr<Block> acquire_block(std::size_t lane) {
    std::unique_ptr<Block> block;
    {
      std::lock_guard<std::mutex> lock(free_mutex);
      if (!free_blocks.empty()) {
        block = std::move(free_blocks.back());
        free_blocks.pop_back();
      }
    }
    if (profile) {
      if (block) {
        ++profile->blocks_recycled;
      } else {
        ++profile->blocks_allocated;
      }
    }
    if (!block) {
      block = std::make_unique<Block>();
      block->requests.reserve(kFeedBlockRequests);
    }
    block->lane = lane;
    return block;
  }

  void recycle(std::unique_ptr<Block> block) {
    block->requests.clear();  // Keeps the capacity.
    std::lock_guard<std::mutex> lock(free_mutex);
    free_blocks.push_back(std::move(block));
  }

  void worker_loop(Worker& w) {
    for (;;) {
      std::unique_ptr<Block> block;
      bool failed = false;
      {
        std::unique_lock<std::mutex> lock(w.mutex);
        if (w.wprof && !w.done && w.queue.empty()) {
          // Only a wait that actually blocks is counted as idle time —
          // the common full-queue path stays untimed.
          const ProfClock::time_point wait_start = ProfClock::now();
          w.can_pull.wait(lock, [&] { return w.done || !w.queue.empty(); });
          ++w.wprof->pop_waits;
          w.wprof->idle_s += seconds_since(wait_start);
        } else {
          w.can_pull.wait(lock, [&] { return w.done || !w.queue.empty(); });
        }
        if (w.queue.empty()) return;  // done, and fully drained.
        block = std::move(w.queue.front());
        w.queue.pop_front();
        failed = w.failed;
      }
      w.can_push.notify_one();
      // After a failure the worker keeps draining (and discarding) its
      // queue so the producer never deadlocks on a full one.
      if (!failed) {
        try {
          ShardLane& lane = *lanes[block->lane];
          if (w.wprof) {
            const ProfClock::time_point feed_start = ProfClock::now();
            for (const Request& req : block->requests) lane.feed(req);
            const double busy = seconds_since(feed_start);
            w.wprof->busy_s += busy;
            prof::LaneProfile& lprof = profile->lanes[block->lane];
            lprof.busy_s += busy;
            ++lprof.blocks;
            lprof.requests += block->requests.size();
          } else {
            for (const Request& req : block->requests) lane.feed(req);
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(w.mutex);
          w.failed = true;
          w.error = std::current_exception();
        }
      }
      recycle(std::move(block));
    }
  }

  void push_block(std::unique_ptr<Block> block) {
    Worker& w = worker_for(block->lane);
    {
      std::unique_lock<std::mutex> lock(w.mutex);
      if (profile && w.queue.size() >= kMaxQueuedBlocksPerWorker) {
        // The producer is about to stall on a full queue: the signature
        // of a lane that cannot keep up with the stream.
        const ProfClock::time_point wait_start = ProfClock::now();
        w.can_push.wait(
            lock, [&] { return w.queue.size() < kMaxQueuedBlocksPerWorker; });
        ++profile->push_stalls;
        profile->push_wait_s += seconds_since(wait_start);
      } else {
        w.can_push.wait(
            lock, [&] { return w.queue.size() < kMaxQueuedBlocksPerWorker; });
      }
      if (w.failed) {
        const std::exception_ptr error = w.error;
        lock.unlock();
        shutdown();
        std::rethrow_exception(error);
      }
      w.queue.push_back(std::move(block));
      if (profile) {
        ++profile->blocks_pushed;
        profile->queue_high_water =
            std::max(profile->queue_high_water, w.queue.size());
      }
    }
    w.can_pull.notify_one();
  }

  void feed(std::size_t lane, const Request& req) {
    if (workers.empty()) {
      lanes[lane]->feed(req);
      return;
    }
    auto& slot = pending[lane];
    if (!slot) slot = acquire_block(lane);
    slot->requests.push_back(req);
    if (slot->requests.size() >= kFeedBlockRequests) {
      push_block(std::move(slot));
    }
  }

  /// Signals done and joins. Workers drain their queues first, so after
  /// a clean flush this is a barrier on all fed work. Idempotent.
  void shutdown() {
    for (auto& worker : workers) {
      {
        std::lock_guard<std::mutex> lock(worker->mutex);
        worker->done = true;
      }
      worker->can_pull.notify_one();
    }
    for (auto& worker : workers) {
      if (worker->thread.joinable()) worker->thread.join();
    }
  }

  std::vector<ReplaySlice> finish() {
    if (!workers.empty()) {
      for (auto& slot : pending) {
        if (slot && !slot->requests.empty()) push_block(std::move(slot));
      }
      shutdown();
      for (const auto& worker : workers) {
        if (worker->failed) std::rethrow_exception(worker->error);
      }
    }
    if (profile) profile->wall_s = seconds_since(profile_start);
    std::vector<ReplaySlice> slices;
    slices.reserve(lanes.size());
    for (auto& lane : lanes) slices.push_back(lane->finish_slice());
    return slices;
  }
};

LanePool::LanePool(std::vector<std::unique_ptr<ShardLane>> lanes, int threads,
                   prof::PoolProfile* profile)
    : impl_(std::make_unique<Impl>(std::move(lanes), threads, profile)) {}

LanePool::~LanePool() = default;

void LanePool::feed(std::size_t lane, const Request& request) {
  impl_->feed(lane, request);
}

std::vector<ReplaySlice> LanePool::finish() { return impl_->finish(); }

SimStats run_sharded(const MemorySystem& system,
                     std::vector<std::unique_ptr<ShardLane>> lanes,
                     int threads, RequestSource& source,
                     prof::Profiler* profiler) {
  const DeviceTiming& timing = system.model().timing;
  if (lanes.size() != static_cast<std::size_t>(timing.channels)) {
    throw std::invalid_argument("run_sharded: one lane per channel required");
  }
  prof::PoolProfile* pool_profile =
      profiler ? profiler->add_pool("") : nullptr;
  LanePool pool(std::move(lanes), threads, pool_profile);
  Request block[kFeedBlockRequests];
  std::uint64_t fed = 0;
  std::uint64_t prev_arrival = 0;
  // Stage wall time is accumulated locally per batch and recorded once:
  // two clock reads per 1024-request block when profiling, nothing when
  // not.
  double pull_s = 0.0;
  double feed_s = 0.0;
  std::uint64_t batches = 0;
  for (;;) {
    ProfClock::time_point t0;
    if (profiler) t0 = ProfClock::now();
    const std::size_t pulled = source.next_batch(block, kFeedBlockRequests);
    if (profiler && pulled > 0) pull_s += seconds_since(t0);
    if (pulled == 0) break;
    ++batches;
    if (profiler) t0 = ProfClock::now();
    for (std::size_t i = 0; i < pulled; ++i) {
      const Request& req = block[i];
      // The global sorted-stream contract, with serial-identical
      // diagnostics; lanes re-check their own subsequences a fortiori.
      if (fed > 0) check_arrival_order(fed, prev_arrival, req.arrival_ps);
      prev_arrival = req.arrival_ps;
      ++fed;
      pool.feed(static_cast<std::size_t>(place_request(timing, req).channel),
                req);
    }
    if (profiler) {
      feed_s += seconds_since(t0);
      profiler->add_progress(pulled);
    }
  }
  if (profiler && batches > 0) {
    profiler->record_stage("source_pull", pull_s, batches);
    profiler->record_stage("engine_feed", feed_s, batches);
  }
  prof::StageTimer merge_timer(profiler, "shard_merge");
  std::vector<ReplaySlice> slices = pool.finish();
  ReplaySlice total;
  for (const ReplaySlice& slice : slices) merge_slice(total, slice);
  return finalize_slice(std::move(total), system.model());
}

ShardedEngine::ShardedEngine(DeviceModel model, int run_threads)
    : system_(std::move(model)),
      run_threads_(resolve_run_threads(run_threads)) {}

SimStats ShardedEngine::run(RequestSource& source,
                            const std::string& workload_name) const {
  telemetry::Recorder* recorder = nullptr;
  if (telemetry::Collector* collector = telemetry()) {
    recorder = collector->add_stage("", system_.model().timing.channels,
                                    system_.model().timing.banks_per_channel,
                                    collector->spec().trace_limit);
  }
  std::vector<std::unique_ptr<ShardLane>> lanes;
  const int channels = system_.model().timing.channels;
  lanes.reserve(static_cast<std::size_t>(channels));
  for (int c = 0; c < channels; ++c) {
    lanes.push_back(
        std::make_unique<SessionLane>(system_, workload_name, recorder));
  }
  return run_sharded(system_, std::move(lanes), run_threads_, source,
                     profiler());
}

}  // namespace comet::memsim
