#include "memsim/sharded.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "telemetry/telemetry.hpp"
#include "util/ring.hpp"

namespace comet::memsim {

int resolve_run_threads(int requested) {
  if (requested < 0) {
    throw std::invalid_argument(
        "run_threads must be >= 0 (0 = one per hardware thread)");
  }
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

/// Blocks a worker may hold queued before the producer blocks on it:
/// enough to ride out scheduling jitter, small enough that a slow lane
/// backpressures the producer instead of buffering the whole stream.
constexpr std::size_t kMaxQueuedBlocksPerWorker = 4;

}  // namespace

struct LanePool::Impl {
  struct Block {
    std::size_t lane = 0;
    std::vector<Request> requests;
  };

  struct Worker {
    std::thread thread;
    std::mutex mutex;
    std::condition_variable can_push;  ///< Producer waits: queue full.
    std::condition_variable can_pull;  ///< Worker waits: queue empty.
    util::RingQueue<std::unique_ptr<Block>> queue{kMaxQueuedBlocksPerWorker};
    bool done = false;
    bool failed = false;
    std::exception_ptr error;
  };

  std::vector<std::unique_ptr<ShardLane>> lanes;
  /// One block per lane being filled by the producer (worker mode only).
  std::vector<std::unique_ptr<Block>> pending;
  std::vector<std::unique_ptr<Worker>> workers;  ///< Empty = inline mode.
  std::mutex free_mutex;
  std::vector<std::unique_ptr<Block>> free_blocks;

  Impl(std::vector<std::unique_ptr<ShardLane>> lanes_in, int threads)
      : lanes(std::move(lanes_in)) {
    if (lanes.empty()) {
      throw std::invalid_argument("LanePool: at least one lane required");
    }
    if (threads <= 1) return;  // Inline mode: feed on the caller's thread.
    const std::size_t worker_count =
        std::min(static_cast<std::size_t>(threads), lanes.size());
    pending.resize(lanes.size());
    workers.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i) {
      workers.push_back(std::make_unique<Worker>());
    }
    // Spawn only once every Worker is at its final address.
    for (auto& worker : workers) {
      Worker& w = *worker;
      w.thread = std::thread([this, &w] { worker_loop(w); });
    }
  }

  ~Impl() { shutdown(); }

  Worker& worker_for(std::size_t lane) {
    return *workers[lane % workers.size()];
  }

  std::unique_ptr<Block> acquire_block(std::size_t lane) {
    std::unique_ptr<Block> block;
    {
      std::lock_guard<std::mutex> lock(free_mutex);
      if (!free_blocks.empty()) {
        block = std::move(free_blocks.back());
        free_blocks.pop_back();
      }
    }
    if (!block) {
      block = std::make_unique<Block>();
      block->requests.reserve(kFeedBlockRequests);
    }
    block->lane = lane;
    return block;
  }

  void recycle(std::unique_ptr<Block> block) {
    block->requests.clear();  // Keeps the capacity.
    std::lock_guard<std::mutex> lock(free_mutex);
    free_blocks.push_back(std::move(block));
  }

  void worker_loop(Worker& w) {
    for (;;) {
      std::unique_ptr<Block> block;
      bool failed = false;
      {
        std::unique_lock<std::mutex> lock(w.mutex);
        w.can_pull.wait(lock, [&] { return w.done || !w.queue.empty(); });
        if (w.queue.empty()) return;  // done, and fully drained.
        block = std::move(w.queue.front());
        w.queue.pop_front();
        failed = w.failed;
      }
      w.can_push.notify_one();
      // After a failure the worker keeps draining (and discarding) its
      // queue so the producer never deadlocks on a full one.
      if (!failed) {
        try {
          ShardLane& lane = *lanes[block->lane];
          for (const Request& req : block->requests) lane.feed(req);
        } catch (...) {
          std::lock_guard<std::mutex> lock(w.mutex);
          w.failed = true;
          w.error = std::current_exception();
        }
      }
      recycle(std::move(block));
    }
  }

  void push_block(std::unique_ptr<Block> block) {
    Worker& w = worker_for(block->lane);
    {
      std::unique_lock<std::mutex> lock(w.mutex);
      w.can_push.wait(
          lock, [&] { return w.queue.size() < kMaxQueuedBlocksPerWorker; });
      if (w.failed) {
        const std::exception_ptr error = w.error;
        lock.unlock();
        shutdown();
        std::rethrow_exception(error);
      }
      w.queue.push_back(std::move(block));
    }
    w.can_pull.notify_one();
  }

  void feed(std::size_t lane, const Request& req) {
    if (workers.empty()) {
      lanes[lane]->feed(req);
      return;
    }
    auto& slot = pending[lane];
    if (!slot) slot = acquire_block(lane);
    slot->requests.push_back(req);
    if (slot->requests.size() >= kFeedBlockRequests) {
      push_block(std::move(slot));
    }
  }

  /// Signals done and joins. Workers drain their queues first, so after
  /// a clean flush this is a barrier on all fed work. Idempotent.
  void shutdown() {
    for (auto& worker : workers) {
      {
        std::lock_guard<std::mutex> lock(worker->mutex);
        worker->done = true;
      }
      worker->can_pull.notify_one();
    }
    for (auto& worker : workers) {
      if (worker->thread.joinable()) worker->thread.join();
    }
  }

  std::vector<ReplaySlice> finish() {
    if (!workers.empty()) {
      for (auto& slot : pending) {
        if (slot && !slot->requests.empty()) push_block(std::move(slot));
      }
      shutdown();
      for (const auto& worker : workers) {
        if (worker->failed) std::rethrow_exception(worker->error);
      }
    }
    std::vector<ReplaySlice> slices;
    slices.reserve(lanes.size());
    for (auto& lane : lanes) slices.push_back(lane->finish_slice());
    return slices;
  }
};

LanePool::LanePool(std::vector<std::unique_ptr<ShardLane>> lanes, int threads)
    : impl_(std::make_unique<Impl>(std::move(lanes), threads)) {}

LanePool::~LanePool() = default;

void LanePool::feed(std::size_t lane, const Request& request) {
  impl_->feed(lane, request);
}

std::vector<ReplaySlice> LanePool::finish() { return impl_->finish(); }

SimStats run_sharded(const MemorySystem& system,
                     std::vector<std::unique_ptr<ShardLane>> lanes,
                     int threads, RequestSource& source) {
  const DeviceTiming& timing = system.model().timing;
  if (lanes.size() != static_cast<std::size_t>(timing.channels)) {
    throw std::invalid_argument("run_sharded: one lane per channel required");
  }
  LanePool pool(std::move(lanes), threads);
  Request block[kFeedBlockRequests];
  std::uint64_t fed = 0;
  std::uint64_t prev_arrival = 0;
  for (;;) {
    const std::size_t pulled = source.next_batch(block, kFeedBlockRequests);
    if (pulled == 0) break;
    for (std::size_t i = 0; i < pulled; ++i) {
      const Request& req = block[i];
      // The global sorted-stream contract, with serial-identical
      // diagnostics; lanes re-check their own subsequences a fortiori.
      if (fed > 0) check_arrival_order(fed, prev_arrival, req.arrival_ps);
      prev_arrival = req.arrival_ps;
      ++fed;
      pool.feed(static_cast<std::size_t>(place_request(timing, req).channel),
                req);
    }
  }
  std::vector<ReplaySlice> slices = pool.finish();
  ReplaySlice total;
  for (const ReplaySlice& slice : slices) merge_slice(total, slice);
  return finalize_slice(std::move(total), system.model());
}

ShardedEngine::ShardedEngine(DeviceModel model, int run_threads)
    : system_(std::move(model)),
      run_threads_(resolve_run_threads(run_threads)) {}

SimStats ShardedEngine::run(RequestSource& source,
                            const std::string& workload_name) const {
  telemetry::Recorder* recorder = nullptr;
  if (telemetry::Collector* collector = telemetry()) {
    recorder = collector->add_stage("", system_.model().timing.channels,
                                    system_.model().timing.banks_per_channel,
                                    collector->spec().trace_limit);
  }
  std::vector<std::unique_ptr<ShardLane>> lanes;
  const int channels = system_.model().timing.channels;
  lanes.reserve(static_cast<std::size_t>(channels));
  for (int c = 0; c < channels; ++c) {
    lanes.push_back(
        std::make_unique<SessionLane>(system_, workload_name, recorder));
  }
  return run_sharded(system_, std::move(lanes), run_threads_, source);
}

}  // namespace comet::memsim
