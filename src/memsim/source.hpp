#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <vector>

#include "memsim/request.hpp"

/// Pull-based request streams.
///
/// A RequestSource yields one Request per next() call until exhaustion,
/// so replay engines never need the whole trace in memory: a lazy
/// generator source or an on-disk trace reader replays arbitrarily long
/// streams in O(1) space, while VectorSource adapts the existing
/// materialized-vector call sites. Sources are single-pass: once next()
/// returns nullopt the stream is drained for good.
///
/// Requests must be yielded in non-decreasing arrival_ps order (the
/// sorted-stream contract); engines verify this incrementally as they
/// pull and throw std::invalid_argument naming the offending index.
namespace comet::memsim {

/// Block size the replay engines use when pulling through next_batch().
inline constexpr std::size_t kFeedBlockRequests = 1024;

class RequestSource {
 public:
  virtual ~RequestSource() = default;

  /// The next request, or std::nullopt once the stream is exhausted.
  virtual std::optional<Request> next() = 0;

  /// Fills `out[0 .. max)` with the next requests of the stream and
  /// returns how many were written; 0 means the stream is exhausted
  /// (never before). The replay engines pull through this entry point
  /// in ~1024-request blocks, so the per-request virtual dispatch (and
  /// the optional<Request> round trip) of next() amortizes away on the
  /// hot path. The default loops next(); concrete sources override it
  /// with a direct block fill. Equivalence with repeated next() calls
  /// is part of the contract (enforced per implementation in
  /// tests/test_source.cpp), so callers may mix both freely.
  virtual std::size_t next_batch(Request* out, std::size_t max) {
    std::size_t filled = 0;
    while (filled < max) {
      const auto request = next();
      if (!request) break;
      out[filled++] = *request;
    }
    return filled;
  }
};

/// Adapts a materialized vector (borrowed or owned) to the streaming
/// interface.
///
/// Lifetime contract: the lvalue constructor BORROWS — it stores only
/// a pointer to the caller's vector, which must stay alive and
/// unmodified until the source is drained or destroyed, whichever
/// comes last. Mutating the vector mid-stream (push_back may
/// reallocate) or letting it die first leaves the source reading
/// freed memory. The rvalue constructor OWNS: it moves the vector in
/// and has no external lifetime dependency — prefer it whenever the
/// caller is done with the data. Callers that aggregate borrowed
/// sources (e.g. tenant::MultiSource, which holds RequestSource
/// pointers per tenant stream) inherit the same obligation
/// transitively: every borrowed vector must outlive the whole
/// aggregate's drain. tests/test_tenant.cpp exercises MultiSource
/// over both flavors.
class VectorSource final : public RequestSource {
 public:
  explicit VectorSource(const std::vector<Request>& requests)
      : requests_(&requests) {}
  explicit VectorSource(std::vector<Request>&& requests)
      : owned_(std::move(requests)), requests_(&owned_) {}

  // requests_ may point into owned_; default copy/move would leave it
  // dangling at the old object.
  VectorSource(const VectorSource&) = delete;
  VectorSource& operator=(const VectorSource&) = delete;

  std::optional<Request> next() override {
    if (pos_ >= requests_->size()) return std::nullopt;
    return (*requests_)[pos_++];
  }

  std::size_t next_batch(Request* out, std::size_t max) override {
    const std::size_t available = requests_->size() - pos_;
    const std::size_t take = max < available ? max : available;
    std::copy_n(requests_->data() + pos_, take, out);
    pos_ += take;
    return take;
  }

 private:
  std::vector<Request> owned_;
  const std::vector<Request>* requests_;
  std::size_t pos_ = 0;
};

}  // namespace comet::memsim
