#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hpp"

/// Aggregate results of one trace replay against one architecture.
namespace comet::memsim {

/// Per-tenant slice of a multi-stream run, indexed tenant-1 in
/// SimStats::tenants. Latency percentiles come from the same
/// RunningStats machinery as the run-wide stats, so tenant breakdowns
/// merge exactly across sharded lanes.
struct TenantBreakdown {
  std::string name;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_transferred = 0;
  util::RunningStats latency_ns;  ///< End-to-end, reads and writes.

  /// Mean end-to-end latency of the same tenant stream replayed alone
  /// on a fresh engine (0 until the baseline pass fills it in).
  double alone_avg_latency_ns = 0.0;
  /// Shared-run mean latency / run-alone mean latency; >= 1 when
  /// contention hurts, 0 for a tenant that issued no requests.
  double slowdown = 0.0;

  std::uint64_t requests() const { return reads + writes; }
  double avg_latency_ns() const {
    return latency_ns.count() == 0
               ? 0.0
               : latency_ns.sum() / static_cast<double>(latency_ns.count());
  }
};

struct SimStats {
  std::string device_name;
  std::string workload_name;

  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_transferred = 0;
  std::uint64_t span_ps = 0;  ///< First arrival to last completion.

  util::RunningStats read_latency_ns;
  util::RunningStats write_latency_ns;
  util::RunningStats queue_delay_ns;

  double dynamic_energy_pj = 0.0;
  double background_energy_pj = 0.0;

  /// Total bank-busy time accumulated across all banks [ns]; divide by
  /// span x bank count for average bank utilization.
  double total_bank_busy_ns = 0.0;

  // --- Hybrid-tier breakdown, populated only by hybrid::TieredSystem
  // --- (all zero for flat devices). Counts are per cache-line access;
  // --- tier energies are dynamic + background of each tier's replay.
  bool hybrid = false;  ///< A DRAM cache tier filtered this stream.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_fills = 0;
  std::uint64_t writebacks = 0;
  double dram_tier_energy_pj = 0.0;
  double backend_tier_energy_pj = 0.0;

  // --- Scheduler breakdown, populated only when a sched::Controller
  // --- front-end drove the replay (the backend replay, for hybrid
  // --- runs; all zero/empty otherwise). The end-to-end latency stats
  // --- above always include this queueing time; these fields split it
  // --- out: queue wait (arrival -> issue) vs device service
  // --- (issue -> completion), plus the transaction-queue occupancies
  // --- each arriving request observed and the write-drain /
  // --- backpressure event counts.
  bool scheduled = false;
  std::string sched_policy;  ///< "fcfs" | "frfcfs" | "read-first".
  util::RunningStats sched_queue_delay_ns;  ///< Controller-queue wait.
  util::RunningStats service_latency_ns;    ///< Issue to completion.
  util::RunningStats read_queue_occupancy;  ///< Waiting reads at admit.
  util::RunningStats write_queue_occupancy;
  std::uint64_t write_drains = 0;    ///< Drain episodes entered.
  std::uint64_t drained_writes = 0;  ///< Writes issued while draining.
  std::uint64_t drain_stalls = 0;    ///< Drained writes with reads waiting.
  std::uint64_t admit_stalls = 0;    ///< Admissions delayed by a full queue.

  // --- Multi-tenant breakdown, populated only when the stream carried
  // --- tenant-tagged requests (tenant::MultiSource runs; empty
  // --- otherwise). Indexed tenant-1; the fairness summary fields are
  // --- derived by tenant::run_multi_tenant once the run-alone
  // --- baselines exist.
  std::vector<TenantBreakdown> tenants;
  double max_slowdown = 0.0;     ///< Worst per-tenant slowdown.
  double fairness_index = 0.0;   ///< Jain's index over tenant slowdowns.

  /// True once a multi-tenant front-end tagged this run's stream.
  bool is_multi_tenant() const { return !tenants.empty(); }

  /// True once a scheduler front-end queued this run's stream.
  bool is_scheduled() const { return scheduled; }

  /// True once a DRAM cache tier has filtered this run's stream (even
  /// an empty one).
  bool is_hybrid() const { return hybrid; }

  /// DRAM-tier hit fraction in [0, 1]; 0 when no cache tier was involved.
  double hit_rate() const;

  /// Average bank utilization in [0, 1] given the total bank count.
  double bank_utilization(int total_banks) const;

  /// Achieved bandwidth [GB/s].
  double bandwidth_gbps() const;

  /// Total energy per transferred bit [pJ/bit].
  double epb_pj_per_bit() const;

  /// Mean latency across reads and writes [ns].
  double avg_latency_ns() const;

  /// Fig. 9c metric: bandwidth per unit energy-per-bit
  /// [(GB/s) / (pJ/bit)].
  double bw_per_epb() const;
};

}  // namespace comet::memsim
