#pragma once

#include <cstdint>
#include <string>

#include "util/stats.hpp"

/// Aggregate results of one trace replay against one architecture.
namespace comet::memsim {

struct SimStats {
  std::string device_name;
  std::string workload_name;

  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_transferred = 0;
  std::uint64_t span_ps = 0;  ///< First arrival to last completion.

  util::RunningStats read_latency_ns;
  util::RunningStats write_latency_ns;
  util::RunningStats queue_delay_ns;

  double dynamic_energy_pj = 0.0;
  double background_energy_pj = 0.0;

  /// Total bank-busy time accumulated across all banks [ns]; divide by
  /// span x bank count for average bank utilization.
  double total_bank_busy_ns = 0.0;

  /// Average bank utilization in [0, 1] given the total bank count.
  double bank_utilization(int total_banks) const;

  /// Achieved bandwidth [GB/s].
  double bandwidth_gbps() const;

  /// Total energy per transferred bit [pJ/bit].
  double epb_pj_per_bit() const;

  /// Mean latency across reads and writes [ns].
  double avg_latency_ns() const;

  /// Fig. 9c metric: bandwidth per unit energy-per-bit
  /// [(GB/s) / (pJ/bit)].
  double bw_per_epb() const;
};

}  // namespace comet::memsim
