#include "memsim/engine.hpp"

namespace comet::memsim {

SimStats Engine::run(const std::vector<Request>& requests,
                     const std::string& workload_name) const {
  VectorSource source(requests);
  return run(source, workload_name);
}

}  // namespace comet::memsim
