#include "prof/heartbeat.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "prof/profiler.hpp"

namespace comet::prof {
namespace {

std::string format_count(std::uint64_t n) {
  char buffer[32];
  if (n >= 10'000'000) {
    std::snprintf(buffer, sizeof buffer, "%.1fM",
                  static_cast<double>(n) / 1e6);
  } else if (n >= 10'000) {
    std::snprintf(buffer, sizeof buffer, "%.1fk",
                  static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buffer, sizeof buffer, "%llu",
                  static_cast<unsigned long long>(n));
  }
  return buffer;
}

std::string format_rate(double per_s) {
  char buffer[32];
  if (per_s >= 1e6) {
    std::snprintf(buffer, sizeof buffer, "%.2fM", per_s / 1e6);
  } else if (per_s >= 1e3) {
    std::snprintf(buffer, sizeof buffer, "%.1fk", per_s / 1e3);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.0f", per_s);
  }
  return buffer;
}

std::string format_eta(double seconds) {
  char buffer[32];
  if (seconds >= 3600.0) {
    std::snprintf(buffer, sizeof buffer, "%.1fh", seconds / 3600.0);
  } else if (seconds >= 60.0) {
    std::snprintf(buffer, sizeof buffer, "%.1fm", seconds / 60.0);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.1fs", seconds);
  }
  return buffer;
}

}  // namespace

struct Heartbeat::Impl {
  explicit Impl(std::ostream& stream) : out(stream) {}

  std::ostream& out;
  std::vector<const Profiler*> profilers;
  std::uint64_t total = 0;

  std::mutex mutex;
  std::condition_variable wake;
  bool stopping = false;
  std::thread thread;

  std::chrono::steady_clock::time_point started;
  std::chrono::steady_clock::time_point last_tick;
  std::uint64_t last_done = 0;
  std::size_t last_width = 0;

  std::uint64_t done() const {
    std::uint64_t sum = 0;
    for (const Profiler* profiler : profilers) {
      if (profiler) sum += profiler->progress();
    }
    return sum;
  }

  void print_line(bool final) {
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t completed = done();
    const double elapsed =
        std::chrono::duration<double>(now - started).count();
    const double tick =
        std::chrono::duration<double>(now - last_tick).count();

    const double avg_rate =
        elapsed > 0.0 ? static_cast<double>(completed) / elapsed : 0.0;
    const double inst_rate =
        tick > 0.0 ? static_cast<double>(completed - last_done) / tick
                   : avg_rate;
    last_tick = now;
    last_done = completed;

    std::string line = "[comet] ";
    line += format_count(completed);
    if (total > 0) {
      line += '/';
      line += format_count(total);
      char pct[16];
      std::snprintf(pct, sizeof pct, " (%.1f%%)",
                    100.0 * static_cast<double>(completed) /
                        static_cast<double>(total));
      line += pct;
    }
    line += " req  ";
    line += format_rate(inst_rate);
    line += " req/s (avg ";
    line += format_rate(avg_rate);
    line += ")";
    if (total > 0 && avg_rate > 0.0 && completed < total) {
      line += "  ETA ";
      line += format_eta(static_cast<double>(total - completed) / avg_rate);
    }
    char rss[32];
    std::snprintf(rss, sizeof rss, "  RSS %.0f MiB",
                  static_cast<double>(current_rss_bytes()) / (1024.0 * 1024.0));
    line += rss;

    // Pad over the previous line's tail before the carriage return so a
    // shrinking line leaves no stale characters.
    std::string padded = line;
    if (padded.size() < last_width) {
      padded.append(last_width - padded.size(), ' ');
    }
    last_width = line.size();
    out << '\r' << padded;
    if (final) out << '\n';
    out.flush();
  }

  void run(std::uint64_t interval_ms) {
    std::unique_lock<std::mutex> lock(mutex);
    while (!stopping) {
      wake.wait_for(lock, std::chrono::milliseconds(interval_ms),
                    [this] { return stopping; });
      if (stopping) break;
      print_line(false);
    }
  }
};

Heartbeat::Heartbeat(std::ostream& out, std::uint64_t interval_ms,
                     std::vector<const Profiler*> profilers,
                     std::uint64_t total_requests)
    : impl_(std::make_unique<Impl>(out)) {
  impl_->profilers = std::move(profilers);
  impl_->total = total_requests;
  impl_->started = std::chrono::steady_clock::now();
  impl_->last_tick = impl_->started;
  impl_->thread =
      std::thread([impl = impl_.get(), interval_ms] { impl->run(interval_ms); });
}

Heartbeat::~Heartbeat() { stop(); }

void Heartbeat::stop() {
  if (!impl_ || !impl_->thread.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->wake.notify_all();
  impl_->thread.join();
  impl_->print_line(true);
}

}  // namespace comet::prof
