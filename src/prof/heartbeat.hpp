#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

namespace comet::prof {

class Profiler;

/// Live progress heartbeat: a background thread that periodically
/// rewrites a single status line on the given stream (the driver passes
/// stderr) while a sweep runs:
///
///   [comet] 1.2M/5.0M req (24.0%)  8.31M req/s (avg 7.9M)  ETA 0.5s  RSS 212 MiB
///
/// Progress is summed over the profilers' atomic counters, so it is
/// safe under threaded sweeps and sharded (--run-threads) replay; the
/// replay loops bump those counters once per 1024-request block.
/// `total_requests` sizes the percentage and ETA — pass 0 when the
/// total is unknown (e.g. trace replay), which prints counts without
/// ETA. stop() (or destruction) ends the thread and completes the line
/// with a newline so subsequent output starts clean.
class Heartbeat {
 public:
  /// Starts the heartbeat thread. `interval_ms` must be > 0; the
  /// profilers must outlive this object.
  Heartbeat(std::ostream& out, std::uint64_t interval_ms,
            std::vector<const Profiler*> profilers,
            std::uint64_t total_requests);
  ~Heartbeat();

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  /// Prints the final progress line and joins the thread (idempotent).
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace comet::prof
