#include "prof/profiler.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace comet::prof {

void ProfSpec::validate() const {
  // Nothing to check today beyond what the types enforce; kept so the
  // config layer can call spec.validate() uniformly with [telemetry].
}

double PoolProfile::utilization() const {
  if (workers.empty() || wall_s <= 0.0) return 0.0;
  double busy = 0.0;
  for (const WorkerProfile& worker : workers) busy += worker.busy_s;
  const double utilization =
      busy / (wall_s * static_cast<double>(workers.size()));
  return utilization > 1.0 ? 1.0 : utilization;
}

Profiler::Profiler(ProfSpec spec) : spec_(std::move(spec)) {}

void Profiler::record_stage(const std::string& name, double wall_s,
                            std::uint64_t calls) {
  const std::lock_guard<std::mutex> lock(mutex_);
  StageStats& stage = stages_[name];
  stage.calls += calls;
  stage.wall_s += wall_s;
}

PoolProfile* Profiler::add_pool(std::string stage) {
  auto profile = std::make_unique<PoolProfile>();
  profile->stage = std::move(stage);
  const std::lock_guard<std::mutex> lock(mutex_);
  pools_.push_back(std::move(profile));
  return pools_.back().get();
}

void Profiler::set_run_totals(double wall_s, std::uint64_t requests) {
  wall_s_ = wall_s;
  run_requests_ = requests;
}

double Profiler::requests_per_second() const {
  if (wall_s_ <= 0.0 || run_requests_ == 0) return 0.0;
  return static_cast<double>(run_requests_) / wall_s_;
}

namespace {

/// Reads one "Vm...:  <n> kB" line from /proc/self/status.
std::uint64_t proc_status_kib(const char* key) {
  std::ifstream status("/proc/self/status");
  if (!status) return 0;
  std::string line;
  const std::string prefix = std::string(key) + ":";
  while (std::getline(status, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    std::istringstream fields(line.substr(prefix.size()));
    std::uint64_t kib = 0;
    fields >> kib;
    return kib;
  }
  return 0;
}

}  // namespace

std::uint64_t current_rss_bytes() { return proc_status_kib("VmRSS") * 1024; }

std::uint64_t peak_rss_bytes() { return proc_status_kib("VmHWM") * 1024; }

}  // namespace comet::prof
