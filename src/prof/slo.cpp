#include "prof/slo.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace comet::prof {
namespace {

const std::vector<std::string> kMetrics = {
    "avg_latency_ns",
    "avg_queue_delay_ns",
    "avg_read_ns",
    "avg_write_ns",
    "bandwidth_gbps",
    "energy_pj_per_bit",
    "fairness_index",
    "hit_rate",
    "max_slowdown",
    "p50_read_ns",
    "p50_write_ns",
    "p95_read_ns",
    "p95_write_ns",
    "p99_read_ns",
    "p99_write_ns",
    "requests_per_s",
    "wall_s",
};

[[noreturn]] void bad(const std::string& predicate, const std::string& why) {
  throw std::invalid_argument("bad SLO predicate '" + predicate + "': " + why);
}

std::string strip(const std::string& s) {
  std::size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  std::size_t end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

SloPredicate parse_predicate(const std::string& text) {
  // Two-character operators first so "<=" is not read as "<" + "=2500".
  struct OpToken {
    const char* token;
    SloPredicate::Op op;
  };
  static const OpToken kOps[] = {
      {"<=", SloPredicate::Op::kLe}, {">=", SloPredicate::Op::kGe},
      {"==", SloPredicate::Op::kEq}, {"<", SloPredicate::Op::kLt},
      {">", SloPredicate::Op::kGt},
  };

  for (const OpToken& candidate : kOps) {
    const std::size_t pos = text.find(candidate.token);
    if (pos == std::string::npos) continue;

    SloPredicate predicate;
    predicate.op = candidate.op;
    predicate.metric = strip(text.substr(0, pos));
    const std::string rhs =
        strip(text.substr(pos + std::string(candidate.token).size()));

    if (predicate.metric.empty()) bad(text, "missing metric name");
    if (!known_slo_metric(predicate.metric)) {
      bad(text, "unknown metric '" + predicate.metric + "'");
    }
    if (rhs.empty()) bad(text, "missing threshold");

    const char* begin = rhs.c_str();
    char* end = nullptr;
    predicate.threshold = std::strtod(begin, &end);
    if (end != begin + rhs.size()) {
      bad(text, "invalid threshold '" + rhs + "'");
    }
    if (!std::isfinite(predicate.threshold)) {
      bad(text, "threshold must be finite");
    }
    return predicate;
  }
  bad(text, "expected metric OP threshold with OP in {<=, >=, <, >, ==}");
}

}  // namespace

bool SloPredicate::holds(double value) const {
  switch (op) {
    case Op::kLe:
      return value <= threshold;
    case Op::kGe:
      return value >= threshold;
    case Op::kLt:
      return value < threshold;
    case Op::kGt:
      return value > threshold;
    case Op::kEq:
      return value == threshold;
  }
  return false;
}

std::string SloPredicate::to_string() const {
  const char* token = "<=";
  switch (op) {
    case Op::kLe:
      token = "<=";
      break;
    case Op::kGe:
      token = ">=";
      break;
    case Op::kLt:
      token = "<";
      break;
    case Op::kGt:
      token = ">";
      break;
    case Op::kEq:
      token = "==";
      break;
  }
  // Shortest decimal form that parses back to exactly `threshold`, so
  // predicates survive the --dump-config round trip unchanged. Integral
  // thresholds print as plain integers ("2500", not "2.5e+03").
  char buffer[64];
  if (threshold == std::floor(threshold) && std::fabs(threshold) < 1e15) {
    std::snprintf(buffer, sizeof buffer, "%.0f", threshold);
  } else {
    for (int precision = 1; precision <= 17; ++precision) {
      std::snprintf(buffer, sizeof buffer, "%.*g", precision, threshold);
      if (std::strtod(buffer, nullptr) == threshold) break;
    }
  }
  return metric + token + buffer;
}

std::vector<SloPredicate> parse_slo(const std::string& text) {
  std::vector<SloPredicate> predicates;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    const std::string piece = strip(text.substr(begin, end - begin));
    if (!piece.empty()) {
      predicates.push_back(parse_predicate(piece));
    } else if (end < text.size() || begin > 0) {
      // "a<=1,,b>=2" or a trailing/leading comma: reject rather than
      // silently dropping a predicate the user thought was active.
      if (!strip(text).empty()) bad(text, "empty predicate in list");
    }
    begin = end + 1;
  }
  return predicates;
}

std::string slo_to_string(const std::vector<SloPredicate>& predicates) {
  std::string out;
  for (const SloPredicate& predicate : predicates) {
    if (!out.empty()) out += ",";
    out += predicate.to_string();
  }
  return out;
}

bool known_slo_metric(const std::string& name) {
  for (const std::string& metric : kMetrics) {
    if (metric == name) return true;
  }
  return false;
}

const std::vector<std::string>& known_slo_metrics() { return kMetrics; }

}  // namespace comet::prof
