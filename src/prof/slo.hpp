#pragma once

#include <string>
#include <vector>

/// SLO health-gate predicates: the `--assert-slo` / `[slo]` grammar.
///
/// An assertion list is a comma-separated conjunction of predicates,
/// each `metric OP threshold`:
///
///   p99_read_ns<=2500,requests_per_s>=5e6,max_slowdown<=3.0
///
/// Metrics name run statistics (simulated latencies/bandwidth, host
/// throughput, fairness); the registry of valid names lives here so
/// that option parsing can reject typos at startup (exit 2), while the
/// driver owns the mapping from name to value — some metrics only
/// apply to hybrid or multi-tenant runs and are skipped elsewhere.
/// Thresholds accept sign, decimals, and scientific notation.
namespace comet::prof {

struct SloPredicate {
  enum class Op { kLe, kGe, kLt, kGt, kEq };

  std::string metric;
  Op op = Op::kLe;
  double threshold = 0.0;

  /// True when `value OP threshold` holds.
  bool holds(double value) const;

  /// The predicate back in source form, e.g. "p99_read_ns<=2500".
  std::string to_string() const;
};

/// Parses a comma-separated predicate list. Throws std::invalid_argument
/// naming the offending predicate on any malformed expression, unknown
/// metric, or non-finite threshold. An empty/blank string yields {}.
std::vector<SloPredicate> parse_slo(const std::string& text);

/// Re-serializes a predicate list to the parse_slo grammar
/// (round-trips: parse_slo(slo_to_string(p)) == p).
std::string slo_to_string(const std::vector<SloPredicate>& predicates);

/// True if `name` is a metric the driver can evaluate.
bool known_slo_metric(const std::string& name);

/// All valid metric names (sorted); tests iterate this to keep the
/// registry and the driver's evaluator from drifting apart.
const std::vector<std::string>& known_slo_metrics();

}  // namespace comet::prof
