#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "prof/slo.hpp"

/// Host-side run profiling: the wall-clock twin of src/telemetry.
///
/// Telemetry observes *simulated* time — request lifecycles on the
/// device's own clock. This layer observes the *simulator*: how long
/// each replay stage took on the host, how busy the LanePool workers
/// were, where the producer stalled on a full block queue, and how much
/// memory the process touched. None of it ever feeds back into the
/// replay, so simulated statistics are bit-identical with profiling on
/// or off — the same contract the telemetry seam keeps, enforced by the
/// same kind of tests.
///
/// Threading model (mirrors telemetry::Collector): one Profiler per
/// sweep job, created on the driver thread before any worker starts.
/// Stage timings are accumulated under a mutex (a handful of calls per
/// run, never per request); pool profiles are registered on the
/// producer thread before lane workers spawn, their per-lane and
/// per-worker slots are each written by exactly one thread, and the
/// LanePool join publishes them before any read. The only fields read
/// *during* a run are the atomic progress counters the heartbeat polls.
namespace comet::prof {

/// What a run should observe; the [profile] + [slo] config sections and
/// the --profile/--progress/--assert-slo flags both build one of these.
struct ProfSpec {
  /// Record the host profile (stage timers, pool counters, RSS) and
  /// report it as the JSON `host` object and the console table.
  bool profile = false;

  /// Heartbeat interval of the live stderr progress line [ms];
  /// 0 disables the heartbeat.
  std::uint64_t progress_ms = 0;

  /// Health assertions evaluated per record after the run; any
  /// violation makes the driver exit 3. Empty = no gating.
  std::vector<SloPredicate> slo;

  bool profiling() const { return profile; }
  bool heartbeat() const { return progress_ms > 0; }
  bool gating() const { return !slo.empty(); }
  bool enabled() const { return profiling() || heartbeat() || gating(); }

  /// Throws std::invalid_argument on an inconsistent spec (currently:
  /// a heartbeat interval that would truncate to never firing).
  void validate() const;
};

/// Accumulated wall time of one named replay stage (source pull, engine
/// feed, shard merge, baseline replays, ...).
struct StageStats {
  std::uint64_t calls = 0;
  double wall_s = 0.0;
};

/// One shard lane's share of a pool's work, written only by the worker
/// that owns the lane (lanes map to workers statically).
struct LaneProfile {
  double busy_s = 0.0;  ///< Wall time inside this lane's feed() calls.
  std::uint64_t blocks = 0;
  std::uint64_t requests = 0;
};

/// One pool worker's time split, written only by that worker thread.
struct WorkerProfile {
  double busy_s = 0.0;       ///< Executing blocks (all of its lanes).
  double idle_s = 0.0;       ///< Blocked on an empty queue.
  std::uint64_t pop_waits = 0;  ///< Times the queue ran dry.
};

/// Wall-clock counters of one LanePool run. Producer-side fields
/// (push_*, queue_high_water, block accounting) are written by the
/// producer thread only; lanes/workers by their owning worker. In
/// inline mode (threads <= 1) only the block accounting is kept —
/// per-request timing on the caller's thread would cost on the hot
/// path, and "worker utilization" has no meaning without workers.
struct PoolProfile {
  std::string stage;   ///< "" for flat pools, "tiers" for hybrid.
  int threads = 0;     ///< Worker count; 0 = inline mode.
  double wall_s = 0.0; ///< Pool construction to finish().

  std::vector<LaneProfile> lanes;
  std::vector<WorkerProfile> workers;

  std::uint64_t blocks_pushed = 0;
  std::uint64_t blocks_allocated = 0;  ///< Fresh heap blocks.
  std::uint64_t blocks_recycled = 0;   ///< Served from the free list.
  std::uint64_t push_stalls = 0;  ///< Producer waits on a full queue.
  double push_wait_s = 0.0;
  std::size_t queue_high_water = 0;  ///< Deepest queue ever observed.

  /// Mean worker busy fraction in [0, 1]; 0 for inline pools.
  double utilization() const;
};

/// Per-run (per sweep job) host-profiling root: engines write stage
/// timings and pool profiles through the same nullable seam as
/// telemetry (Engine::attach_profiler), the heartbeat polls the atomic
/// progress counters while the run executes, and the driver reads the
/// aggregate back afterwards.
class Profiler {
 public:
  explicit Profiler(ProfSpec spec);

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  const ProfSpec& spec() const { return spec_; }

  /// Adds `wall_s` seconds (over `calls` timed intervals) to the named
  /// stage. Thread-safe; called a handful of times per run, never per
  /// request.
  void record_stage(const std::string& name, double wall_s,
                    std::uint64_t calls = 1);

  /// Registers one LanePool's profile and returns it, owned by the
  /// Profiler; the pool sizes the lane/worker vectors itself before its
  /// workers spawn. Thread-safe; called on the pool's producer thread.
  PoolProfile* add_pool(std::string stage);

  /// Live progress: requests pulled from the source so far, bumped once
  /// per block (not per request) by the replay loops and read by the
  /// heartbeat thread.
  void add_progress(std::uint64_t requests) {
    progress_.fetch_add(requests, std::memory_order_relaxed);
  }
  std::uint64_t progress() const {
    return progress_.load(std::memory_order_relaxed);
  }

  /// Whole-job wall time and served request count, set once by the
  /// sweep worker when the job finishes.
  void set_run_totals(double wall_s, std::uint64_t requests);
  double wall_seconds() const { return wall_s_; }
  std::uint64_t run_requests() const { return run_requests_; }

  /// Served requests per host second; 0 on a zero-time or zero-request
  /// run (degenerate runs must not divide by zero).
  double requests_per_second() const;

  // --- Read-back (driver thread, after the run joined).
  const std::map<std::string, StageStats>& stages() const { return stages_; }
  const std::vector<std::unique_ptr<PoolProfile>>& pools() const {
    return pools_;
  }

 private:
  ProfSpec spec_;
  std::mutex mutex_;  ///< Guards stages_ and pools_ registration.
  std::map<std::string, StageStats> stages_;
  std::vector<std::unique_ptr<PoolProfile>> pools_;
  std::atomic<std::uint64_t> progress_{0};
  double wall_s_ = 0.0;
  std::uint64_t run_requests_ = 0;
};

/// Scoped stage timer: measures construction to destruction (or stop())
/// on the steady clock and records into the profiler. A null profiler
/// makes every operation a no-op, so call sites need no branching.
class StageTimer {
 public:
  StageTimer(Profiler* profiler, const char* stage)
      : profiler_(profiler), stage_(stage) {
    if (profiler_) start_ = std::chrono::steady_clock::now();
  }
  ~StageTimer() { stop(); }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Records the elapsed time now (idempotent).
  void stop() {
    if (!profiler_) return;
    const auto elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_);
    profiler_->record_stage(stage_, elapsed.count());
    profiler_ = nullptr;
  }

 private:
  Profiler* profiler_;
  const char* stage_;
  std::chrono::steady_clock::time_point start_;
};

/// Current and peak resident set size of this process [bytes], read
/// from /proc/self/status (VmRSS / VmHWM); 0 where that is unavailable.
std::uint64_t current_rss_bytes();
std::uint64_t peak_rss_bytes();

}  // namespace comet::prof
