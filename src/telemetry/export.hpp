#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

/// Export formats for collected telemetry: the Chrome trace-event JSON
/// the tentpole promises (loadable in Perfetto / chrome://tracing) and
/// the timeline CSV of the epoch sampler.
namespace comet::telemetry {

/// One traced run to export; `label` prefixes the process names so a
/// multi-job sweep stays readable in one trace file ("comet/gcc_like
/// channel 3"). A null collector is skipped.
struct TraceRun {
  std::string label;
  const Collector* collector = nullptr;
};

/// Writes one Chrome trace-event document covering every run:
///
///   - one process (pid) per (run, stage, channel), named from the run
///     label, the stage name and the channel index;
///   - one thread (tid) per bank carrying "X" complete events (ts =
///     service start, dur = bank-busy time) named "read"/"write", with
///     the full lifecycle in args;
///   - a "channel" thread per process carrying async "queued" spans
///     (arrival → issue, only when the scheduler actually held the
///     request) and instant drain/admit-stall markers;
///   - when any lane hit its event cap, one global "trace-truncated"
///     instant record with the dropped-event count.
///
/// Timestamps are microseconds (the trace-event convention) at 1 ps
/// resolution; within every (pid, tid) track the "X" events are
/// monotonically ordered — scripts/validate_trace.py checks both.
void write_chrome_trace(std::ostream& os, const std::vector<TraceRun>& runs);

/// Writes every run's merged timeline as one CSV (header + one row per
/// run × epoch, runs in order, epochs ascending). Columns match the
/// JSON report's `timeline` objects, prefixed by the run label.
void write_timeline_csv(std::ostream& os, const std::vector<TraceRun>& runs);

}  // namespace comet::telemetry
