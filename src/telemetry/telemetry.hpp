#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

// Leaf POD vocabulary header (Op, Request): includes nothing, links
// nothing, so the link DAG stays telemetry <- memsim.
#include "memsim/request.hpp"  // comet-lint: allow(layering)
#include "util/stats.hpp"

/// Run-scoped observability: per-request lifecycle events for Chrome
/// trace-event export and an epoch sampler turning a replay into a
/// time-series (bandwidth, queue occupancy, drain activity, interval
/// percentiles).
///
/// The recording model mirrors the engines' own lane discipline: one
/// Recorder per engine *stage* (a flat replay is one stage; a hybrid
/// run has a "dram" and a "backend" stage), holding one Lane per
/// channel. Every record lands in the lane of the serving channel, and
/// both the serial engines and the sharded per-channel workers only
/// ever touch the lane of the channel they serve — so lanes need no
/// locking (the LanePool join publishes them), and a traced sharded run
/// produces byte-identical telemetry to the serial run. Reading a
/// Recorder back (timeline(), the trace writer) always walks stages in
/// creation order and lanes in channel order, keeping every export
/// deterministic.
///
/// Cost discipline: engines hold a `telemetry::Collector*` that is
/// nullptr on untraced runs, so the hot replay path pays one
/// pointer-null branch per request and nothing else — the perf lane's
/// 15% gate keeps that honest.
namespace comet::telemetry {

/// What a run should record; the [telemetry] config section and the
/// --trace-out/--trace-limit/--metrics-interval/--metrics-csv flags
/// both build one of these.
struct TelemetrySpec {
  std::string trace_path;  ///< Non-empty: write Chrome trace JSON here.

  /// Cap on recorded request events per job, split over stages and
  /// channels (0 = unlimited). Requests past a lane's share are counted
  /// but not stored, and the trace carries an explicit truncation
  /// record.
  std::uint64_t trace_limit = 1'000'000;

  /// Epoch length of the metrics time-series; 0 disables sampling.
  std::uint64_t metrics_interval_ps = 0;

  std::string metrics_csv;  ///< Non-empty: also write the timeline CSV.

  bool tracing() const { return !trace_path.empty(); }
  bool sampling() const { return metrics_interval_ps > 0; }
  bool enabled() const { return tracing() || sampling(); }

  /// Throws std::invalid_argument on a CSV path without a sampling
  /// interval (there would be no timeline to write).
  void validate() const;
};

/// One request's full lifecycle, as the replay back-end resolved it:
/// arrival at the controller, issue to the device (== arrival for
/// unscheduled replay), service start after bank arbitration, data
/// completion, and how long the serving bank stays busy.
struct RequestEvent {
  std::uint64_t id = 0;
  std::uint64_t arrival_ps = 0;
  std::uint64_t issue_ps = 0;
  std::uint64_t start_ps = 0;
  std::uint64_t completion_ps = 0;
  std::uint64_t bank_busy_until_ps = 0;
  std::uint32_t size_bytes = 0;
  std::uint16_t bank = 0;
  std::uint16_t tenant = 0;  ///< 1-based tenant stream; 0 = untagged.
  memsim::Op op = memsim::Op::kRead;
};

/// Channel-level scheduler markers (instant events in the trace).
enum class MarkKind : std::uint8_t {
  kAdmitStall,  ///< An arrival found its bounded queue full.
  kDrainBegin,  ///< Write-drain hysteresis entered drain mode.
  kDrainEnd,    ///< Occupancy fell to the low watermark; drain over.
};

struct Mark {
  MarkKind kind = MarkKind::kAdmitStall;
  std::uint64_t at_ps = 0;
};

/// One epoch's accumulators for one channel. Requests are binned by
/// *completion* epoch — every served request lands in exactly one bin,
/// so the timeline's reads+writes always sum to the run's totals —
/// while queue-occupancy samples and scheduler markers bin at the
/// instant they were observed.
struct EpochAccum {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes = 0;
  double bank_busy_ns = 0.0;
  util::RunningStats latency_ns;  ///< Arrival-to-completion.
  util::RunningStats read_queue_occupancy;
  util::RunningStats write_queue_occupancy;
  std::uint64_t write_drains = 0;
  std::uint64_t drained_writes = 0;
  std::uint64_t admit_stalls = 0;

  void merge(const EpochAccum& other);
};

/// One channel's recordings inside one stage. Touched by exactly one
/// thread (the channel's lane worker, or the serial engine).
struct LaneTelemetry {
  std::vector<RequestEvent> events;
  std::vector<Mark> marks;
  std::uint64_t event_cap = 0;  ///< 0 = unlimited.
  std::uint64_t dropped_events = 0;
  std::uint64_t dropped_marks = 0;
  std::vector<std::uint64_t> bank_requests;  ///< Heatmap: per-bank totals.
  std::map<std::uint64_t, EpochAccum> epochs;
};

/// One merged point of the run's metrics time-series (all stages and
/// channels of one epoch folded together, stage order then channel
/// order — the deterministic reduction).
struct TimelinePoint {
  std::uint64_t epoch = 0;  ///< Absolute index: time_ps / interval_ps.
  std::uint64_t start_ps = 0;
  std::uint64_t end_ps = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes = 0;
  double bandwidth_gbps = 0.0;
  double avg_latency_ns = 0.0;
  double p50_latency_ns = 0.0;
  double p95_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  double avg_read_queue_occupancy = 0.0;
  double avg_write_queue_occupancy = 0.0;
  std::uint64_t write_drains = 0;
  std::uint64_t drained_writes = 0;
  std::uint64_t admit_stalls = 0;
  double bank_busy_ns = 0.0;
  /// Requests completed per channel this epoch, stages concatenated in
  /// creation order, channels in channel order within each stage.
  std::vector<std::uint64_t> channel_requests;
};

class Collector;

/// The recording surface one engine stage writes through. Channel-
/// partitioned and lock-free (see the file comment); all record_*
/// methods are O(1).
class Recorder {
 public:
  const std::string& stage() const { return name_; }
  int channels() const { return static_cast<int>(lanes_.size()); }
  int banks() const { return banks_; }

  void record_request(int channel, const RequestEvent& event);
  void record_queue_sample(int channel, std::uint64_t at_ps,
                           std::size_t reads_waiting,
                           std::size_t writes_waiting);
  void record_mark(int channel, MarkKind kind, std::uint64_t at_ps);
  void record_drained_write(int channel, std::uint64_t at_ps);

  const LaneTelemetry& lane(int channel) const {
    return lanes_[static_cast<std::size_t>(channel)];
  }
  std::uint64_t recorded_events() const;
  std::uint64_t dropped_events() const;  ///< Events + marks dropped.

 private:
  friend class Collector;
  Recorder(const TelemetrySpec& spec, std::string name, int channels,
           int banks, std::uint64_t event_budget);

  std::string name_;
  int banks_ = 0;
  bool trace_ = false;
  bool sample_ = false;
  std::uint64_t interval_ps_ = 0;
  std::vector<LaneTelemetry> lanes_;
};

/// Per-run (per sweep job) telemetry root: engines register their
/// stages at run() time and the driver reads the merged results back
/// after the run. Stage registration happens on the caller's thread
/// before any lane worker starts; reads happen after the run joins —
/// so the Collector itself needs no synchronization either.
class Collector {
 public:
  /// Validates the spec.
  explicit Collector(TelemetrySpec spec);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  const TelemetrySpec& spec() const { return spec_; }

  /// Registers one engine stage and returns its recording surface
  /// (owned by the Collector, valid for its lifetime). `event_budget`
  /// is this stage's share of the spec's trace_limit (0 = unlimited),
  /// spread over the channels so the per-lane caps sum to it exactly.
  Recorder* add_stage(std::string name, int channels, int banks,
                      std::uint64_t event_budget);

  const std::vector<std::unique_ptr<Recorder>>& stages() const {
    return stages_;
  }

  /// Sum of channel counts over all stages (the width of every
  /// TimelinePoint::channel_requests vector).
  int total_channels() const;

  std::uint64_t recorded_events() const;
  std::uint64_t dropped_events() const;
  bool truncated() const { return dropped_events() > 0; }

  /// The merged metrics time-series, ascending by epoch; only epochs
  /// with at least one recording appear (the series is sparse over
  /// fully idle stretches). Empty when sampling was disabled.
  std::vector<TimelinePoint> timeline() const;

 private:
  TelemetrySpec spec_;
  std::vector<std::unique_ptr<Recorder>> stages_;
};

}  // namespace comet::telemetry
