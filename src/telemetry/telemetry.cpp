#include "telemetry/telemetry.hpp"

#include <stdexcept>
#include <utility>

namespace comet::telemetry {

void TelemetrySpec::validate() const {
  if (!metrics_csv.empty() && metrics_interval_ps == 0) {
    throw std::invalid_argument(
        "telemetry: metrics_csv requires a metrics interval (there is no "
        "timeline to write without one)");
  }
}

void EpochAccum::merge(const EpochAccum& other) {
  reads += other.reads;
  writes += other.writes;
  bytes += other.bytes;
  bank_busy_ns += other.bank_busy_ns;
  latency_ns.merge(other.latency_ns);
  read_queue_occupancy.merge(other.read_queue_occupancy);
  write_queue_occupancy.merge(other.write_queue_occupancy);
  write_drains += other.write_drains;
  drained_writes += other.drained_writes;
  admit_stalls += other.admit_stalls;
}

Recorder::Recorder(const TelemetrySpec& spec, std::string name, int channels,
                   int banks, std::uint64_t event_budget)
    : name_(std::move(name)),
      banks_(banks),
      trace_(spec.tracing()),
      sample_(spec.sampling()),
      interval_ps_(spec.metrics_interval_ps) {
  if (channels <= 0 || banks <= 0) {
    throw std::invalid_argument(
        "telemetry::Recorder: channels and banks must be >= 1");
  }
  lanes_.resize(static_cast<std::size_t>(channels));
  // Spread the stage budget over the lanes so the per-lane caps sum to
  // it exactly (the first budget % channels lanes take the remainder).
  const auto n = static_cast<std::uint64_t>(channels);
  for (std::size_t c = 0; c < lanes_.size(); ++c) {
    LaneTelemetry& lane = lanes_[c];
    lane.bank_requests.assign(static_cast<std::size_t>(banks), 0);
    if (trace_ && event_budget > 0) {
      lane.event_cap = event_budget / n + (c < event_budget % n ? 1 : 0);
    }
  }
}

void Recorder::record_request(int channel, const RequestEvent& event) {
  LaneTelemetry& lane = lanes_[static_cast<std::size_t>(channel)];
  lane.bank_requests[event.bank] += 1;
  if (trace_) {
    if (lane.event_cap == 0 || lane.events.size() < lane.event_cap) {
      lane.events.push_back(event);
    } else {
      ++lane.dropped_events;
    }
  }
  if (sample_) {
    EpochAccum& epoch = lane.epochs[event.completion_ps / interval_ps_];
    if (event.op == memsim::Op::kRead) {
      ++epoch.reads;
    } else {
      ++epoch.writes;
    }
    epoch.bytes += event.size_bytes;
    epoch.bank_busy_ns +=
        static_cast<double>(event.bank_busy_until_ps - event.start_ps) * 1e-3;
    epoch.latency_ns.add(
        static_cast<double>(event.completion_ps - event.arrival_ps) * 1e-3);
  }
}

void Recorder::record_queue_sample(int channel, std::uint64_t at_ps,
                                   std::size_t reads_waiting,
                                   std::size_t writes_waiting) {
  if (!sample_) return;
  LaneTelemetry& lane = lanes_[static_cast<std::size_t>(channel)];
  EpochAccum& epoch = lane.epochs[at_ps / interval_ps_];
  epoch.read_queue_occupancy.add(static_cast<double>(reads_waiting));
  epoch.write_queue_occupancy.add(static_cast<double>(writes_waiting));
}

void Recorder::record_mark(int channel, MarkKind kind, std::uint64_t at_ps) {
  LaneTelemetry& lane = lanes_[static_cast<std::size_t>(channel)];
  if (trace_) {
    if (lane.event_cap == 0 || lane.marks.size() < lane.event_cap) {
      lane.marks.push_back(Mark{kind, at_ps});
    } else {
      ++lane.dropped_marks;
    }
  }
  if (sample_) {
    EpochAccum& epoch = lane.epochs[at_ps / interval_ps_];
    if (kind == MarkKind::kAdmitStall) ++epoch.admit_stalls;
    if (kind == MarkKind::kDrainBegin) ++epoch.write_drains;
  }
}

void Recorder::record_drained_write(int channel, std::uint64_t at_ps) {
  if (!sample_) return;
  LaneTelemetry& lane = lanes_[static_cast<std::size_t>(channel)];
  ++lane.epochs[at_ps / interval_ps_].drained_writes;
}

std::uint64_t Recorder::recorded_events() const {
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane.events.size();
  return total;
}

std::uint64_t Recorder::dropped_events() const {
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) {
    total += lane.dropped_events + lane.dropped_marks;
  }
  return total;
}

Collector::Collector(TelemetrySpec spec) : spec_(std::move(spec)) {
  spec_.validate();
}

Collector::~Collector() = default;

Recorder* Collector::add_stage(std::string name, int channels, int banks,
                               std::uint64_t event_budget) {
  stages_.push_back(std::unique_ptr<Recorder>(
      new Recorder(spec_, std::move(name), channels, banks, event_budget)));
  return stages_.back().get();
}

int Collector::total_channels() const {
  int total = 0;
  for (const auto& stage : stages_) total += stage->channels();
  return total;
}

std::uint64_t Collector::recorded_events() const {
  std::uint64_t total = 0;
  for (const auto& stage : stages_) total += stage->recorded_events();
  return total;
}

std::uint64_t Collector::dropped_events() const {
  std::uint64_t total = 0;
  for (const auto& stage : stages_) total += stage->dropped_events();
  return total;
}

std::vector<TimelinePoint> Collector::timeline() const {
  std::vector<TimelinePoint> points;
  if (!spec_.sampling()) return points;
  const std::uint64_t interval = spec_.metrics_interval_ps;
  const auto width = static_cast<std::size_t>(total_channels());

  // Fold every lane's epoch map into one ordered series, stages in
  // creation order and channels in channel order — the exact reduction
  // whatever thread count produced the lanes.
  std::map<std::uint64_t, EpochAccum> merged;
  std::map<std::uint64_t, std::vector<std::uint64_t>> per_channel;
  std::size_t channel_base = 0;
  for (const auto& stage : stages_) {
    for (int c = 0; c < stage->channels(); ++c) {
      for (const auto& [epoch, accum] : stage->lane(c).epochs) {
        merged[epoch].merge(accum);
        auto& row = per_channel[epoch];
        if (row.empty()) row.assign(width, 0);
        row[channel_base + static_cast<std::size_t>(c)] +=
            accum.reads + accum.writes;
      }
    }
    channel_base += static_cast<std::size_t>(stage->channels());
  }

  points.reserve(merged.size());
  for (const auto& [epoch, accum] : merged) {
    TimelinePoint point;
    point.epoch = epoch;
    point.start_ps = epoch * interval;
    point.end_ps = point.start_ps + interval;
    point.reads = accum.reads;
    point.writes = accum.writes;
    point.bytes = accum.bytes;
    // bytes / interval: B/ps scaled to GB/s (1 B/ps = 1000 GB/s).
    point.bandwidth_gbps = static_cast<double>(accum.bytes) * 1000.0 /
                           static_cast<double>(interval);
    point.avg_latency_ns = accum.latency_ns.mean();
    point.p50_latency_ns = accum.latency_ns.p50();
    point.p95_latency_ns = accum.latency_ns.p95();
    point.p99_latency_ns = accum.latency_ns.p99();
    point.avg_read_queue_occupancy = accum.read_queue_occupancy.mean();
    point.avg_write_queue_occupancy = accum.write_queue_occupancy.mean();
    point.write_drains = accum.write_drains;
    point.drained_writes = accum.drained_writes;
    point.admit_stalls = accum.admit_stalls;
    point.bank_busy_ns = accum.bank_busy_ns;
    point.channel_requests = per_channel.at(epoch);
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace comet::telemetry
