#include "telemetry/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <string>

namespace comet::telemetry {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Trace-event timestamps are microseconds; our clock is picoseconds.
/// Six fractional digits keep the full 1 ps resolution.
std::string ts_us(std::uint64_t ps) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%06" PRIu64, ps / 1'000'000,
                ps % 1'000'000);
  return buf;
}

const char* mark_name(MarkKind kind) {
  switch (kind) {
    case MarkKind::kAdmitStall: return "admit-stall";
    case MarkKind::kDrainBegin: return "drain-begin";
    case MarkKind::kDrainEnd: return "drain-end";
  }
  return "mark";
}

/// Comma-separated event stream: tracks whether a separator is due.
class EventSink {
 public:
  explicit EventSink(std::ostream& os) : os_(os) {}
  std::ostream& next() {
    os_ << (first_ ? "\n    " : ",\n    ");
    first_ = false;
    return os_;
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<TraceRun>& runs) {
  os << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [";
  EventSink sink(os);

  int pid = 0;
  std::uint64_t dropped_total = 0;
  std::uint64_t last_ts_ps = 0;
  for (const TraceRun& run : runs) {
    if (!run.collector) continue;
    for (const auto& stage : run.collector->stages()) {
      for (int c = 0; c < stage->channels(); ++c) {
        ++pid;
        const LaneTelemetry& lane = stage->lane(c);
        dropped_total += lane.dropped_events + lane.dropped_marks;

        std::string process = json_escape(run.label);
        if (!stage->stage().empty()) process += " " + stage->stage();
        process += " channel " + std::to_string(c);
        sink.next() << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
                    << pid << ", \"args\": {\"name\": \"" << process
                    << "\"}}";
        const int channel_tid = stage->banks();
        sink.next() << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": "
                    << pid << ", \"tid\": " << channel_tid
                    << ", \"args\": {\"name\": \"channel\"}}";
        for (int b = 0; b < stage->banks(); ++b) {
          if (lane.bank_requests[static_cast<std::size_t>(b)] == 0) continue;
          sink.next() << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": "
                      << pid << ", \"tid\": " << b
                      << ", \"args\": {\"name\": \"bank " << b << "\"}}";
        }

        for (const RequestEvent& ev : lane.events) {
          last_ts_ps = std::max(last_ts_ps, ev.completion_ps);
          // Queued span: only when the scheduler actually held it.
          if (ev.issue_ps > ev.arrival_ps) {
            sink.next() << "{\"name\": \"queued\", \"cat\": \"queue\", "
                        << "\"ph\": \"b\", \"id\": " << ev.id
                        << ", \"ts\": " << ts_us(ev.arrival_ps)
                        << ", \"pid\": " << pid << ", \"tid\": " << channel_tid
                        << "}";
            sink.next() << "{\"name\": \"queued\", \"cat\": \"queue\", "
                        << "\"ph\": \"e\", \"id\": " << ev.id
                        << ", \"ts\": " << ts_us(ev.issue_ps)
                        << ", \"pid\": " << pid << ", \"tid\": " << channel_tid
                        << "}";
          }
          sink.next() << "{\"name\": \""
                      << (ev.op == memsim::Op::kRead ? "read" : "write")
                      << "\", \"cat\": \"request\", \"ph\": \"X\", \"ts\": "
                      << ts_us(ev.start_ps) << ", \"dur\": "
                      << ts_us(ev.bank_busy_until_ps - ev.start_ps)
                      << ", \"pid\": " << pid << ", \"tid\": " << ev.bank
                      << ", \"args\": {\"id\": " << ev.id
                      << ", \"bytes\": " << ev.size_bytes;
          if (ev.tenant != 0) os << ", \"tenant\": " << ev.tenant;
          os << ", \"arrival_ns\": " << fmt_double(
                    static_cast<double>(ev.arrival_ps) * 1e-3)
             << ", \"issue_ns\": " << fmt_double(
                    static_cast<double>(ev.issue_ps) * 1e-3)
             << ", \"completion_ns\": " << fmt_double(
                    static_cast<double>(ev.completion_ps) * 1e-3)
             << ", \"queue_delay_ns\": " << fmt_double(
                    static_cast<double>(ev.start_ps - ev.arrival_ps) * 1e-3)
             << "}}";
          // Multi-tenant runs additionally get one async track per
          // tenant (per channel): the request's whole arrival →
          // completion lifetime, so Perfetto shows each tenant's
          // occupancy and interference side by side. Async b/e pairs —
          // not X events — because per-tenant lifetimes overlap and
          // the tid-ts monotonicity contract is for duration events.
          if (ev.tenant != 0) {
            const char* op = ev.op == memsim::Op::kRead ? "read" : "write";
            sink.next() << "{\"name\": \"t" << ev.tenant << " " << op
                        << "\", \"cat\": \"tenant\", \"ph\": \"b\", \"id\": "
                        << ev.id << ", \"ts\": " << ts_us(ev.arrival_ps)
                        << ", \"pid\": " << pid << ", \"tid\": " << channel_tid
                        << ", \"args\": {\"tenant\": " << ev.tenant << "}}";
            sink.next() << "{\"name\": \"t" << ev.tenant << " " << op
                        << "\", \"cat\": \"tenant\", \"ph\": \"e\", \"id\": "
                        << ev.id << ", \"ts\": " << ts_us(ev.completion_ps)
                        << ", \"pid\": " << pid << ", \"tid\": " << channel_tid
                        << "}";
          }
        }
        for (const Mark& mark : lane.marks) {
          last_ts_ps = std::max(last_ts_ps, mark.at_ps);
          sink.next() << "{\"name\": \"" << mark_name(mark.kind)
                      << "\", \"cat\": \"sched\", \"ph\": \"i\", \"s\": \"p\""
                      << ", \"ts\": " << ts_us(mark.at_ps)
                      << ", \"pid\": " << pid << ", \"tid\": " << channel_tid
                      << "}";
        }
      }
    }
  }

  if (dropped_total > 0) {
    // The explicit truncation record the --trace-limit contract
    // promises: a capped trace says so inside the trace itself.
    sink.next() << "{\"name\": \"trace-truncated\", \"cat\": \"telemetry\", "
                << "\"ph\": \"i\", \"s\": \"g\", \"ts\": " << ts_us(last_ts_ps)
                << ", \"pid\": 1, \"tid\": 0, \"args\": {\"dropped_events\": "
                << dropped_total << "}}";
  }
  os << "\n  ]\n}\n";
}

void write_timeline_csv(std::ostream& os, const std::vector<TraceRun>& runs) {
  os << "run,epoch,start_ns,end_ns,reads,writes,bytes,bandwidth_gbps,"
        "avg_latency_ns,p50_latency_ns,p95_latency_ns,p99_latency_ns,"
        "avg_read_queue_occupancy,avg_write_queue_occupancy,write_drains,"
        "drained_writes,admit_stalls,bank_busy_ns\n";
  for (const TraceRun& run : runs) {
    if (!run.collector) continue;
    for (const TimelinePoint& p : run.collector->timeline()) {
      os << run.label << ',' << p.epoch << ',' << p.start_ps / 1000 << ','
         << p.end_ps / 1000 << ',' << p.reads << ',' << p.writes << ','
         << p.bytes << ',' << fmt_double(p.bandwidth_gbps) << ','
         << fmt_double(p.avg_latency_ns) << ',' << fmt_double(p.p50_latency_ns)
         << ',' << fmt_double(p.p95_latency_ns) << ','
         << fmt_double(p.p99_latency_ns) << ','
         << fmt_double(p.avg_read_queue_occupancy) << ','
         << fmt_double(p.avg_write_queue_occupancy) << ',' << p.write_drains
         << ',' << p.drained_writes << ',' << p.admit_stalls << ','
         << fmt_double(p.bank_busy_ns) << '\n';
    }
  }
}

}  // namespace comet::telemetry
