#pragma once

/// Crystallization kinetics for PCM programming.
///
/// Crystal growth speed in GST-class materials is strongly non-monotonic
/// in temperature: negligible below the crystallization onset T_g, peaking
/// a few hundred kelvin above it, and collapsing again as the melt point
/// T_l is approached. We model the growth *rate* with a Gaussian peak in
/// temperature (the standard compact fit to measured GST growth-velocity
/// data) and evolve the crystalline fraction X with
/// Johnson–Mehl–Avrami–Kolmogorov (JMAK) kinetics:
///
///   X(t) = 1 - exp(-(k t)^n)           (constant temperature)
///   dX/dt = n k [-ln(1-X)]^((n-1)/n) (1-X)   (incremental form)
///
/// The incremental form is path-consistent and is what the transient pulse
/// simulator integrates while the lumped cell temperature evolves.
namespace comet::materials {

class CrystallizationKinetics {
 public:
  struct Params {
    double peak_rate_per_s;     ///< k at the optimum growth temperature.
    double peak_temperature_k;  ///< Temperature of maximum growth rate.
    double width_k;             ///< Gaussian width of the rate peak.
    double avrami_exponent;     ///< JMAK n (2 = 2-D growth in a thin film).
    double onset_temperature_k; ///< T_g: no growth below this.
    double melt_temperature_k;  ///< T_l: no growth at/above this (melt).
  };

  explicit CrystallizationKinetics(const Params& params);

  /// JMAK rate constant k(T) [1/s]; zero outside (onset, melt).
  double rate(double temp_k) const;

  /// Closed-form time [s] to grow from X=0 to `target` at constant
  /// temperature. Returns +inf if the rate at temp_k is zero.
  double time_to_fraction(double target, double temp_k) const;

  /// One explicit-Euler step of the incremental JMAK ODE. Returns the new
  /// crystalline fraction, clamped to [0, 1).
  double step(double x, double temp_k, double dt_s) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace comet::materials
