#include "materials/mlc_levels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace comet::materials {

double invert_transmission(const TransmissionOfFraction& transmission,
                           double target, double lo, double hi) {
  double t_lo = transmission(lo);  // brightest
  double t_hi = transmission(hi);  // darkest
  if (!(t_lo > t_hi)) {
    throw std::invalid_argument(
        "invert_transmission: curve must be strictly decreasing");
  }
  target = std::clamp(target, t_hi, t_lo);
  for (int i = 0; i < 80; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double t_mid = transmission(mid);
    if (t_mid > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

MlcLevelTable MlcLevelTable::build(int bits, ProgrammingMode mode,
                                   const PcmThermalModel& thermal,
                                   const TransmissionOfFraction& transmission,
                                   double deepest_fraction) {
  if (bits < 1 || bits > 5) {
    throw std::invalid_argument("MlcLevelTable: bits must be in [1, 5]");
  }
  if (deepest_fraction <= 0.0 || deepest_fraction > 1.0) {
    throw std::invalid_argument("MlcLevelTable: bad deepest_fraction");
  }
  MlcLevelTable table;
  table.bits_ = bits;
  table.mode_ = mode;

  const int n_levels = 1 << bits;
  const double t_bright = transmission(0.0);
  const double t_dark = transmission(deepest_fraction);
  table.spacing_ = (t_bright - t_dark) / static_cast<double>(n_levels - 1);

  table.levels_.reserve(static_cast<std::size_t>(n_levels));
  for (int i = 0; i < n_levels; ++i) {
    const double t_target =
        t_bright - table.spacing_ * static_cast<double>(i);
    const double fraction =
        i == 0 ? 0.0
               : invert_transmission(transmission, t_target, 0.0,
                                     deepest_fraction);
    MlcLevel level{};
    level.index = i;
    level.transmission = t_target;
    level.crystalline_fraction = fraction;
    if (mode == ProgrammingMode::kAmorphousReset) {
      // Reset state is amorphous: level 0 is free, deeper levels grow
      // crystal at the 1 mW write power.
      level.write_latency_ns = thermal.crystallization_latency_ns(fraction);
      level.write_energy_pj = thermal.crystallization_energy_pj(fraction);
    } else {
      // Reset state is crystalline (X = deepest usable): level i melts a
      // growing share of the cell. The brightest level melts the most.
      const double melt = 1.0 - fraction / deepest_fraction;
      level.write_latency_ns = thermal.amorphization_latency_ns(melt);
      level.write_energy_pj = thermal.amorphization_energy_pj(melt);
    }
    table.levels_.push_back(level);
  }

  if (mode == ProgrammingMode::kAmorphousReset) {
    const auto reset = thermal.full_amorphization_reset();
    table.reset_ = ResetPulse{thermal.amorphous_reset_latency_ns(),
                              reset.energy_pj};
  } else {
    const auto reset = thermal.full_crystallization_reset();
    table.reset_ = ResetPulse{thermal.crystalline_reset_latency_ns(),
                              reset.energy_pj};
  }
  // In crystalline-reset mode the cells sit at the deepest fraction after
  // reset, so level indexing runs dark-to-bright; we keep bright-to-dark
  // indexing in both modes for a uniform architecture view (the memory
  // controller remaps level codes, not the device model).
  return table;
}

double MlcLevelTable::loss_tolerance_db() const {
  // A uniform ladder of 2^b levels confuses neighbours once the readout
  // has lost one level spacing relative to full scale: tolerance
  // = -10 log10(1 - 1/2^b). Paper: 3.01 dB (b=1), 1.2 dB (b=2),
  // 0.26 dB (b=4).
  const double relative_spacing = 1.0 / static_cast<double>(1 << bits_);
  return -util::ratio_to_db(1.0 - relative_spacing);
}

double MlcLevelTable::max_write_latency_ns() const {
  double max_ns = 0.0;
  for (const auto& level : levels_) {
    max_ns = std::max(max_ns, level.write_latency_ns);
  }
  return max_ns;
}

int MlcLevelTable::classify(double measured_transmission) const {
  int best = 0;
  double best_dist = std::abs(levels_[0].transmission - measured_transmission);
  for (const auto& level : levels_) {
    const double dist =
        std::abs(level.transmission - measured_transmission);
    if (dist < best_dist) {
      best_dist = dist;
      best = level.index;
    }
  }
  return best;
}

}  // namespace comet::materials
