#include "materials/crystallization.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace comet::materials {

CrystallizationKinetics::CrystallizationKinetics(const Params& params)
    : params_(params) {
  if (params.peak_rate_per_s <= 0.0 || params.width_k <= 0.0 ||
      params.avrami_exponent < 1.0 ||
      params.onset_temperature_k >= params.melt_temperature_k) {
    throw std::invalid_argument("CrystallizationKinetics: invalid params");
  }
}

double CrystallizationKinetics::rate(double temp_k) const {
  if (temp_k <= params_.onset_temperature_k ||
      temp_k >= params_.melt_temperature_k) {
    return 0.0;
  }
  const double z = (temp_k - params_.peak_temperature_k) / params_.width_k;
  return params_.peak_rate_per_s * std::exp(-z * z);
}

double CrystallizationKinetics::time_to_fraction(double target,
                                                 double temp_k) const {
  if (target <= 0.0) return 0.0;
  if (target >= 1.0) target = 1.0 - 1e-12;
  const double k = rate(temp_k);
  if (k <= 0.0) return std::numeric_limits<double>::infinity();
  return std::pow(-std::log(1.0 - target), 1.0 / params_.avrami_exponent) / k;
}

double CrystallizationKinetics::step(double x, double temp_k,
                                     double dt_s) const {
  const double k = rate(temp_k);
  if (k <= 0.0) return x;
  const double n = params_.avrami_exponent;
  // Seed slightly above zero so the ODE can leave the X=0 fixed point of
  // the (n-1)/n power law; physically this is the nucleation background.
  const double x_eff = x < 1e-9 ? 1e-9 : x;
  const double drive = std::pow(-std::log(1.0 - x_eff), (n - 1.0) / n);
  double next = x_eff + n * k * drive * (1.0 - x_eff) * dt_s;
  if (next < 0.0) next = 0.0;
  if (next > 1.0 - 1e-12) next = 1.0 - 1e-12;
  return next;
}

}  // namespace comet::materials
