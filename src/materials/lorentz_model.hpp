#pragma once

#include <complex>

/// Lorentz-oscillator dielectric model for phase-change materials.
///
/// The paper models the refractive index and extinction coefficient of
/// GST / GSST / Sb2Se3 in both phases "using the Lorenz model [27]"
/// (Wang et al., npj Comput. Mater. 2021). We implement the same
/// single-resonance Lorentz dielectric function
///
///     eps(w) = eps_inf + S * w0^2 / (w0^2 - w^2 - i*gamma*w)
///
/// and fit (S, gamma) per material state so that the complex refractive
/// index at 1550 nm matches published ellipsometry values. The resonance
/// frequency w0 sits in the visible/near-IR where these chalcogenides
/// absorb, which gives the gentle normal dispersion across the C-band
/// that Fig. 3 of the paper shows.
namespace comet::materials {

class LorentzOscillator {
 public:
  /// Direct construction from model parameters (angular frequencies in
  /// rad/s, strength dimensionless).
  LorentzOscillator(double eps_inf, double strength, double omega0,
                    double gamma);

  /// Fits (strength, gamma) so that the complex index at `lambda_nm`
  /// equals n + i*kappa, with the resonance placed at `resonance_nm`.
  /// Requires n^2 - kappa^2 > eps_inf and resonance_nm < lambda_nm.
  /// Throws std::invalid_argument otherwise.
  static LorentzOscillator fit(double n, double kappa, double lambda_nm,
                               double resonance_nm, double eps_inf = 1.0);

  /// Complex relative permittivity at angular frequency w [rad/s].
  std::complex<double> permittivity(double omega) const;

  /// Complex refractive index n + i*kappa at a vacuum wavelength [nm].
  std::complex<double> complex_index(double lambda_nm) const;

  /// Real refractive index at a vacuum wavelength [nm].
  double n(double lambda_nm) const { return complex_index(lambda_nm).real(); }

  /// Extinction coefficient at a vacuum wavelength [nm].
  double kappa(double lambda_nm) const {
    return complex_index(lambda_nm).imag();
  }

  double eps_inf() const { return eps_inf_; }
  double strength() const { return strength_; }
  double omega0() const { return omega0_; }
  double gamma() const { return gamma_; }

 private:
  double eps_inf_;
  double strength_;
  double omega0_;
  double gamma_;
};

/// Angular frequency [rad/s] of a vacuum wavelength [nm].
double omega_of_wavelength_nm(double lambda_nm);

}  // namespace comet::materials
