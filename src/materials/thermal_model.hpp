#pragma once

#include "materials/crystallization.hpp"
#include "materials/pcm_material.hpp"

/// Lumped transient thermal model of a GST-on-waveguide cell.
///
/// The paper obtains programming latency/energy from Ansys Lumerical HEAT
/// by defining "a local uniform heat source in the Si waveguide to mimic
/// the power of the optical mode". We substitute a lumped thermal-RC
/// equivalent of that setup: the write pulse power P heats one thermal
/// mass C_th coupled to the substrate through a resistance R_th,
///
///     dT/dt = (P - (T - T_amb)/R_th) / C_th,
///
/// which has the closed-form rise T(t) = T_amb + P R (1 - e^{-t/tau}).
/// Melting is modelled with a two-zone front: the molten volume fraction
/// grows linearly from 0 at T_l to 1 at T_l + melt_spread (a quenched
/// molten region amorphizes because tau is in the nanosecond range, far
/// below GST's critical quench time).
///
/// GstThermalCalibration::calibrated() fixes (R_th, C_th, melt_spread,
/// pulse powers, hold times, kinetics) so that the model lands on the
/// paper's published device results:
///   * 1 mW write pulses sit in the crystallization window (Table I);
///   * amorphizing reset: 5 mW, ~56 ns, ~280 pJ (case study 2);
///   * crystallizing reset: melt preamble + growth, ~210 ns, ~880 pJ
///     (case study 1 / Table II erase);
///   * slowest MLC write <= ~170 ns (Table II max write).
namespace comet::materials {

/// Lumped thermal RC stage with closed-form step response.
struct ThermalRC {
  double heat_capacity_j_per_k;
  double thermal_resistance_k_per_w;
  double ambient_k;

  double tau_s() const {
    return heat_capacity_j_per_k * thermal_resistance_k_per_w;
  }

  /// Steady-state temperature under constant power [W].
  double steady_state_k(double power_w) const {
    return ambient_k + power_w * thermal_resistance_k_per_w;
  }

  /// Temperature after heating for t_s from start temperature t0_k.
  double temperature_at(double power_w, double t_s, double t0_k) const;

  /// Time to reach target_k from ambient under constant power; +inf if the
  /// steady state never reaches it.
  double time_to_temperature(double power_w, double target_k) const;
};

/// Result of applying one rectangular optical pulse.
struct PulseResult {
  double final_fraction;  ///< Crystalline fraction after the pulse.
  double peak_temp_k;     ///< Maximum lumped temperature reached.
  double melt_fraction;   ///< Fraction of the cell that was molten.
  double energy_pj;       ///< Electrical/optical pulse energy consumed.
};

/// Fixed constants for the calibrated GST cell.
struct GstThermalCalibration {
  ThermalRC rc;
  CrystallizationKinetics::Params kinetics;
  double melt_spread_k;        ///< Two-zone melt front width.
  double write_power_mw;       ///< Table I: max power at GST cell (1 mW).
  double erase_growth_power_mw;///< Below-melt anneal power for erase.
  double reset_power_mw;       ///< Amorphizing (melt) pulse power (5 mW).
  double reset_hold_ns;        ///< Hold after full melt before quench.
  double erase_melt_preamble_ns; ///< Homogenizing melt stage of erase.

  /// The calibration used throughout the repository (GST).
  static GstThermalCalibration calibrated();
};

/// Transient programming model of one GST cell.
class PcmThermalModel {
 public:
  explicit PcmThermalModel(const GstThermalCalibration& cal);

  const GstThermalCalibration& calibration() const { return cal_; }
  const CrystallizationKinetics& kinetics() const { return kinetics_; }

  /// Integrates temperature + JMAK over one rectangular pulse.
  /// `x0` is the starting crystalline fraction.
  PulseResult apply_pulse(double power_mw, double duration_ns, double x0,
                          double dt_ns = 0.05) const;

  /// Latency [ns] of a crystallizing write from X=0 to `target_fraction`
  /// at the calibrated 1 mW write power: thermal rise to the growth
  /// window plus closed-form JMAK time at the steady-state temperature.
  double crystallization_latency_ns(double target_fraction) const;

  /// Energy [pJ] of that crystallizing write.
  double crystallization_energy_pj(double target_fraction) const;

  /// Latency [ns] of a partial-amorphization write that melts the given
  /// volume fraction at the calibrated 5 mW reset power.
  double amorphization_latency_ns(double target_melt_fraction) const;

  /// Energy [pJ] of that partial-amorphization write.
  double amorphization_energy_pj(double target_melt_fraction) const;

  /// Full amorphizing reset (case study 2): pulse power, duration, energy.
  PulseResult full_amorphization_reset() const;

  /// Full crystallizing reset (case study 1): melt preamble + growth
  /// anneal. Returns the aggregate duration/energy in the PulseResult
  /// (duration retrievable via crystalline_reset_latency_ns()).
  PulseResult full_crystallization_reset() const;

  double crystalline_reset_latency_ns() const;
  double amorphous_reset_latency_ns() const;

 private:
  GstThermalCalibration cal_;
  CrystallizationKinetics kinetics_;
};

}  // namespace comet::materials
