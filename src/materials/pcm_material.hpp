#pragma once

#include <complex>
#include <string_view>

#include "materials/lorentz_model.hpp"

/// Database of the three phase-change material candidates the paper
/// compares in Section III.A / Fig. 3: Ge2Sb2Te5 (GST), Ge2Sb2Se4Te
/// (GSST) and Sb2Se3. Optical anchor values (n, kappa at 1550 nm per
/// phase) follow the integrated-photonics PCM literature (Wuttig 2017;
/// Rios 2015; Zhang/Delaney for GSST and Sb2Se3); thermal constants are
/// standard GST-class values. The paper's conclusion — GST has the
/// highest C-band index contrast *and* the highest extinction contrast,
/// making it the pick for OPCM cells — must emerge from these numbers.
namespace comet::materials {

/// The two stable phases of a PCM.
enum class Phase { kAmorphous, kCrystalline };

/// PCM candidates evaluated in the paper.
enum class Pcm { kGst, kGsst, kSb2Se3 };

/// Returns a human-readable name ("GST", "GSST", "Sb2Se3").
std::string_view to_string(Pcm pcm);
std::string_view to_string(Phase phase);

/// Thermal constants for the lumped transient model.
struct ThermalProperties {
  double melting_point_k;          ///< T_l: full amorphization threshold.
  double crystallization_point_k;  ///< T_g: onset of crystal growth.
  double density_kg_m3;
  double specific_heat_j_kg_k;
  double activation_energy_ev;     ///< Arrhenius E_a for crystal growth.
};

/// One PCM candidate: Lorentz models for both phases plus thermal data.
class PcmMaterial {
 public:
  /// Access the built-in database entry for a candidate.
  static const PcmMaterial& get(Pcm pcm);

  PcmMaterial(Pcm id, LorentzOscillator amorphous,
              LorentzOscillator crystalline, ThermalProperties thermal);

  Pcm id() const { return id_; }
  std::string_view name() const { return to_string(id_); }
  const ThermalProperties& thermal() const { return thermal_; }
  const LorentzOscillator& oscillator(Phase phase) const;

  /// Complex refractive index of a pure phase at a wavelength [nm].
  std::complex<double> complex_index(Phase phase, double lambda_nm) const;

  /// Real index n of a pure phase.
  double n(Phase phase, double lambda_nm) const;

  /// Extinction coefficient kappa of a pure phase.
  double kappa(Phase phase, double lambda_nm) const;

  /// n(crystalline) - n(amorphous): the key MLC design metric (Fig. 3).
  double index_contrast(double lambda_nm) const;

  /// kappa(crystalline) - kappa(amorphous).
  double kappa_contrast(double lambda_nm) const;

 private:
  Pcm id_;
  LorentzOscillator amorphous_;
  LorentzOscillator crystalline_;
  ThermalProperties thermal_;
};

}  // namespace comet::materials
