#include "materials/effective_medium.hpp"

#include <stdexcept>

namespace comet::materials {

std::complex<double> lorentz_lorenz_mix(std::complex<double> eps_amorphous,
                                        std::complex<double> eps_crystalline,
                                        double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("lorentz_lorenz_mix: fraction outside [0,1]");
  }
  const auto ll = [](std::complex<double> eps) {
    return (eps - 1.0) / (eps + 2.0);
  };
  const std::complex<double> f =
      fraction * ll(eps_crystalline) + (1.0 - fraction) * ll(eps_amorphous);
  // Invert (eps-1)/(eps+2) = f  =>  eps = (1 + 2f) / (1 - f).
  return (1.0 + 2.0 * f) / (1.0 - f);
}

std::complex<double> effective_index(const PcmMaterial& material,
                                     double lambda_nm, double fraction) {
  const auto idx_a = material.complex_index(Phase::kAmorphous, lambda_nm);
  const auto idx_c = material.complex_index(Phase::kCrystalline, lambda_nm);
  const auto eps = lorentz_lorenz_mix(idx_a * idx_a, idx_c * idx_c, fraction);
  return std::sqrt(eps);
}

}  // namespace comet::materials
