#include "materials/lorentz_model.hpp"

#include <cmath>
#include <stdexcept>

#include "util/constants.hpp"

namespace comet::materials {

double omega_of_wavelength_nm(double lambda_nm) {
  return 2.0 * util::kPi * util::kSpeedOfLight / (lambda_nm * 1e-9);
}

LorentzOscillator::LorentzOscillator(double eps_inf, double strength,
                                     double omega0, double gamma)
    : eps_inf_(eps_inf), strength_(strength), omega0_(omega0), gamma_(gamma) {
  if (eps_inf < 1.0 || strength < 0.0 || omega0 <= 0.0 || gamma < 0.0) {
    throw std::invalid_argument("LorentzOscillator: invalid parameters");
  }
}

LorentzOscillator LorentzOscillator::fit(double n, double kappa,
                                         double lambda_nm,
                                         double resonance_nm,
                                         double eps_inf) {
  if (!(resonance_nm < lambda_nm)) {
    throw std::invalid_argument(
        "LorentzOscillator::fit: resonance must be blue of the fit point");
  }
  if (kappa < 0.0) {
    throw std::invalid_argument("LorentzOscillator::fit: kappa must be >= 0");
  }
  const std::complex<double> index{n, kappa};
  const std::complex<double> eps_target = index * index;
  const double a = eps_target.real() - eps_inf;
  const double b = eps_target.imag();
  if (!(a > 0.0)) {
    throw std::invalid_argument(
        "LorentzOscillator::fit: need n^2 - kappa^2 > eps_inf");
  }
  const double omega = omega_of_wavelength_nm(lambda_nm);
  const double omega0 = omega_of_wavelength_nm(resonance_nm);
  const double d = omega0 * omega0 - omega * omega;  // > 0 by precondition
  const double gamma = d * b / (a * omega);
  const double strength =
      a * (d * d + gamma * gamma * omega * omega) / (omega0 * omega0 * d);
  return LorentzOscillator(eps_inf, strength, omega0, gamma);
}

std::complex<double> LorentzOscillator::permittivity(double omega) const {
  const std::complex<double> denom{omega0_ * omega0_ - omega * omega,
                                   -gamma_ * omega};
  return eps_inf_ + strength_ * omega0_ * omega0_ / denom;
}

std::complex<double> LorentzOscillator::complex_index(double lambda_nm) const {
  const std::complex<double> eps = permittivity(
      omega_of_wavelength_nm(lambda_nm));
  // Principal square root: Re >= 0, and Im >= 0 for Im(eps) >= 0, which is
  // the physically absorbing branch under the exp(-i w t) convention.
  return std::sqrt(eps);
}

}  // namespace comet::materials
