#pragma once

#include <functional>
#include <vector>

#include "materials/thermal_model.hpp"

/// Multi-level-cell programming table (paper Section III.B / Fig. 6).
///
/// The paper programs a 4-bit GST cell to 16 "distinctive and equally
/// spaced transmission levels (with 6% spacing between transmission
/// levels)" and reports, per level, the crystalline fraction, the
/// programming latency and the readout transmission. This module builds
/// that table for any bit density b: the level transmissions are spaced
/// uniformly between the cell's amorphous (brightest) and deepest usable
/// crystalline (darkest) transmission, each level's crystalline fraction
/// is found by inverting the cell's transmission-vs-fraction curve, and
/// latency/energy come from the calibrated thermal model for the two
/// programming case studies of the paper:
///
///  * kAmorphousReset  (case 2): reset melts the cell (280 pJ); writes
///    partially *crystallize* at 1 mW (slow levels up to ~170 ns).
///  * kCrystallineReset (case 1): reset recrystallizes the cell (880 pJ);
///    writes partially *amorphize* at 5 mW (fast, tens of ns).
namespace comet::materials {

/// Which state the reset pulse leaves the cell in (paper case studies).
enum class ProgrammingMode { kCrystallineReset, kAmorphousReset };

/// One programmable level of the MLC.
struct MlcLevel {
  int index;                   ///< 0 = reset state.
  double transmission;         ///< Target readout transmission (0..1).
  double crystalline_fraction; ///< X programmed into the cell.
  double write_latency_ns;     ///< Programming pulse duration.
  double write_energy_pj;      ///< Programming pulse energy.
};

/// Reset pulse summary for the selected programming mode.
struct ResetPulse {
  double latency_ns;
  double energy_pj;
};

/// Maps a crystalline fraction in [0,1] to a readout transmission (0..1];
/// must be continuous and strictly decreasing. Provided by the photonic
/// GST cell model (photonics/gst_cell.hpp); materials stays optics-free.
using TransmissionOfFraction = std::function<double(double)>;

class MlcLevelTable {
 public:
  /// Builds the table for `bits` in [1, 5] (paper: GST supports up to
  /// 5 bits/cell [17]; COMET evaluates b in {1, 2, 4}).
  /// `deepest_fraction` bounds the most crystalline usable level.
  static MlcLevelTable build(int bits, ProgrammingMode mode,
                             const PcmThermalModel& thermal,
                             const TransmissionOfFraction& transmission,
                             double deepest_fraction = 0.95);

  int bits() const { return bits_; }
  ProgrammingMode mode() const { return mode_; }
  const std::vector<MlcLevel>& levels() const { return levels_; }
  const ResetPulse& reset() const { return reset_; }

  /// Absolute transmission spacing between adjacent levels (paper: 6% for
  /// b = 4).
  double level_spacing() const { return spacing_; }

  /// Worst-case readout loss [dB] the signal can absorb before one level
  /// is confused with the next (paper: 3.01 / 1.2 / 0.26 dB for b=1/2/4).
  double loss_tolerance_db() const;

  /// Slowest write across levels — the architecture's max write time.
  double max_write_latency_ns() const;

  /// Nearest-level classification of a measured transmission; this is the
  /// readout decision the electrical interface makes.
  int classify(double measured_transmission) const;

 private:
  MlcLevelTable() = default;

  int bits_ = 0;
  ProgrammingMode mode_ = ProgrammingMode::kAmorphousReset;
  double spacing_ = 0.0;
  std::vector<MlcLevel> levels_;
  ResetPulse reset_{};
};

/// Inverts a strictly decreasing transmission curve by bisection on
/// fraction in [0, 1]. Exposed for testing.
double invert_transmission(const TransmissionOfFraction& transmission,
                           double target, double lo = 0.0, double hi = 1.0);

}  // namespace comet::materials
