#include "materials/pcm_material.hpp"

#include <stdexcept>

#include "util/constants.hpp"

namespace comet::materials {
namespace {

// Optical anchors at 1550 nm, (n, kappa), with the Lorentz resonance
// placed where each material's interband absorption lives. Values match
// the ranges reported for sputtered films in the integrated-photonic PCM
// literature; the paper's Fig. 3 trends (GST with both the largest
// Delta-n and the largest Delta-kappa over the C-band) follow from them.
PcmMaterial make_gst() {
  return PcmMaterial(
      Pcm::kGst,
      LorentzOscillator::fit(3.94, 0.013, util::kCBandCentreNm, 730.0),
      LorentzOscillator::fit(6.51, 1.10, util::kCBandCentreNm, 1000.0),
      ThermalProperties{
          .melting_point_k = 873.0,
          .crystallization_point_k = 423.0,
          .density_kg_m3 = 6150.0,
          .specific_heat_j_kg_k = 218.0,
          .activation_energy_ev = 2.2,
      });
}

PcmMaterial make_gsst() {
  return PcmMaterial(
      Pcm::kGsst,
      LorentzOscillator::fit(3.33, 0.0004, util::kCBandCentreNm, 680.0),
      LorentzOscillator::fit(5.08, 0.35, util::kCBandCentreNm, 950.0),
      ThermalProperties{
          .melting_point_k = 900.0,
          .crystallization_point_k = 523.0,
          .density_kg_m3 = 5900.0,
          .specific_heat_j_kg_k = 212.0,
          .activation_energy_ev = 2.3,
      });
}

PcmMaterial make_sb2se3() {
  return PcmMaterial(
      Pcm::kSb2Se3,
      LorentzOscillator::fit(3.28, 0.0001, util::kCBandCentreNm, 585.0),
      LorentzOscillator::fit(4.05, 0.011, util::kCBandCentreNm, 775.0),
      ThermalProperties{
          .melting_point_k = 885.0,
          .crystallization_point_k = 473.0,
          .density_kg_m3 = 5810.0,
          .specific_heat_j_kg_k = 231.0,
          .activation_energy_ev = 1.9,
      });
}

}  // namespace

std::string_view to_string(Pcm pcm) {
  switch (pcm) {
    case Pcm::kGst:
      return "GST";
    case Pcm::kGsst:
      return "GSST";
    case Pcm::kSb2Se3:
      return "Sb2Se3";
  }
  throw std::invalid_argument("to_string: unknown Pcm");
}

std::string_view to_string(Phase phase) {
  switch (phase) {
    case Phase::kAmorphous:
      return "amorphous";
    case Phase::kCrystalline:
      return "crystalline";
  }
  throw std::invalid_argument("to_string: unknown Phase");
}

const PcmMaterial& PcmMaterial::get(Pcm pcm) {
  static const PcmMaterial gst = make_gst();
  static const PcmMaterial gsst = make_gsst();
  static const PcmMaterial sb2se3 = make_sb2se3();
  switch (pcm) {
    case Pcm::kGst:
      return gst;
    case Pcm::kGsst:
      return gsst;
    case Pcm::kSb2Se3:
      return sb2se3;
  }
  throw std::invalid_argument("PcmMaterial::get: unknown Pcm");
}

PcmMaterial::PcmMaterial(Pcm id, LorentzOscillator amorphous,
                         LorentzOscillator crystalline,
                         ThermalProperties thermal)
    : id_(id),
      amorphous_(amorphous),
      crystalline_(crystalline),
      thermal_(thermal) {
  if (thermal_.melting_point_k <= thermal_.crystallization_point_k) {
    throw std::invalid_argument("PcmMaterial: T_melt must exceed T_cryst");
  }
}

const LorentzOscillator& PcmMaterial::oscillator(Phase phase) const {
  return phase == Phase::kAmorphous ? amorphous_ : crystalline_;
}

std::complex<double> PcmMaterial::complex_index(Phase phase,
                                                double lambda_nm) const {
  return oscillator(phase).complex_index(lambda_nm);
}

double PcmMaterial::n(Phase phase, double lambda_nm) const {
  return complex_index(phase, lambda_nm).real();
}

double PcmMaterial::kappa(Phase phase, double lambda_nm) const {
  return complex_index(phase, lambda_nm).imag();
}

double PcmMaterial::index_contrast(double lambda_nm) const {
  return n(Phase::kCrystalline, lambda_nm) - n(Phase::kAmorphous, lambda_nm);
}

double PcmMaterial::kappa_contrast(double lambda_nm) const {
  return kappa(Phase::kCrystalline, lambda_nm) -
         kappa(Phase::kAmorphous, lambda_nm);
}

}  // namespace comet::materials
