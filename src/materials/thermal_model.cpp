#include "materials/thermal_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace comet::materials {

double ThermalRC::temperature_at(double power_w, double t_s,
                                 double t0_k) const {
  const double t_ss = steady_state_k(power_w);
  return t_ss + (t0_k - t_ss) * std::exp(-t_s / tau_s());
}

double ThermalRC::time_to_temperature(double power_w, double target_k) const {
  const double t_ss = steady_state_k(power_w);
  if (target_k <= ambient_k) return 0.0;
  if (target_k >= t_ss) return std::numeric_limits<double>::infinity();
  const double frac = (target_k - ambient_k) / (t_ss - ambient_k);
  return -tau_s() * std::log(1.0 - frac);
}

GstThermalCalibration GstThermalCalibration::calibrated() {
  const auto& gst = PcmMaterial::get(Pcm::kGst).thermal();
  return GstThermalCalibration{
      // tau = R*C = 12 ns: nanosecond-scale quench, far below GST's
      // critical amorphization quench time, so molten regions freeze
      // amorphous. R chosen so 1 mW sits in the growth window and 5 mW
      // melts the full cell (see header).
      .rc = ThermalRC{.heat_capacity_j_per_k = 8.45e-14,
                      .thermal_resistance_k_per_w = 1.42e5,
                      .ambient_k = 300.0},
      .kinetics =
          CrystallizationKinetics::Params{
              .peak_rate_per_s = 6.43e7,
              .peak_temperature_k = 650.0,
              .width_k = 160.0,
              .avrami_exponent = 2.0,
              .onset_temperature_k = gst.crystallization_point_k,
              .melt_temperature_k = gst.melting_point_k,
          },
      .melt_spread_k = 120.0,
      .write_power_mw = 1.0,
      .erase_growth_power_mw = 3.94,
      .reset_power_mw = 5.0,
      .reset_hold_ns = 11.0,
      .erase_melt_preamble_ns = 25.0,
  };
}

PcmThermalModel::PcmThermalModel(const GstThermalCalibration& cal)
    : cal_(cal), kinetics_(cal.kinetics) {
  // The write power must land strictly inside the growth window and the
  // reset power must be able to melt the full cell; otherwise the
  // calibration cannot program the cell at all.
  const double t_write = cal_.rc.steady_state_k(cal_.write_power_mw * 1e-3);
  if (t_write <= cal_.kinetics.onset_temperature_k ||
      t_write >= cal_.kinetics.melt_temperature_k) {
    throw std::invalid_argument(
        "PcmThermalModel: write power outside crystallization window");
  }
  const double t_reset = cal_.rc.steady_state_k(cal_.reset_power_mw * 1e-3);
  if (t_reset < cal_.kinetics.melt_temperature_k + cal_.melt_spread_k) {
    throw std::invalid_argument(
        "PcmThermalModel: reset power cannot melt the full cell");
  }
}

PulseResult PcmThermalModel::apply_pulse(double power_mw, double duration_ns,
                                         double x0, double dt_ns) const {
  if (x0 < 0.0 || x0 > 1.0) {
    throw std::invalid_argument("apply_pulse: x0 outside [0,1]");
  }
  const double power_w = power_mw * 1e-3;
  const double t_melt = cal_.kinetics.melt_temperature_k;
  double temp = cal_.rc.ambient_k;
  double x = x0;
  double melt_prev = 0.0;
  double melt_peak = 0.0;
  double peak_temp = temp;
  const auto steps = static_cast<std::size_t>(duration_ns / dt_ns);
  const double dt_s = dt_ns * 1e-9;
  for (std::size_t i = 0; i < steps; ++i) {
    const double dtemp =
        (power_w - (temp - cal_.rc.ambient_k) /
                       cal_.rc.thermal_resistance_k_per_w) /
        cal_.rc.heat_capacity_j_per_k;
    temp += dtemp * dt_s;
    peak_temp = std::max(peak_temp, temp);
    const double melt_cur =
        std::clamp((temp - t_melt) / cal_.melt_spread_k, 0.0, 1.0);
    if (melt_cur > melt_prev) {
      // A newly molten shell destroys its share of the crystalline volume;
      // the quench is ns-scale so it re-freezes amorphous.
      x *= (1.0 - melt_cur) / (1.0 - melt_prev + 1e-12);
      melt_prev = melt_cur;
    }
    melt_peak = std::max(melt_peak, melt_cur);
    x = kinetics_.step(x, temp, dt_s);
  }
  return PulseResult{.final_fraction = std::clamp(x, 0.0, 1.0),
                     .peak_temp_k = peak_temp,
                     .melt_fraction = melt_peak,
                     .energy_pj = power_mw * duration_ns};
}

double PcmThermalModel::crystallization_latency_ns(
    double target_fraction) const {
  if (target_fraction <= 1e-9) return 0.0;
  const double power_w = cal_.write_power_mw * 1e-3;
  const double t_rise_s = cal_.rc.time_to_temperature(
      power_w, cal_.kinetics.onset_temperature_k);
  const double t_ss = cal_.rc.steady_state_k(power_w);
  const double t_kin_s = kinetics_.time_to_fraction(target_fraction, t_ss);
  return (t_rise_s + t_kin_s) * 1e9;
}

double PcmThermalModel::crystallization_energy_pj(
    double target_fraction) const {
  return cal_.write_power_mw * crystallization_latency_ns(target_fraction);
}

double PcmThermalModel::amorphization_latency_ns(
    double target_melt_fraction) const {
  if (target_melt_fraction <= 0.0) return 0.0;
  const double m = std::min(target_melt_fraction, 1.0);
  const double power_w = cal_.reset_power_mw * 1e-3;
  const double target_k =
      cal_.kinetics.melt_temperature_k + m * cal_.melt_spread_k;
  return cal_.rc.time_to_temperature(power_w, target_k) * 1e9;
}

double PcmThermalModel::amorphization_energy_pj(
    double target_melt_fraction) const {
  return cal_.reset_power_mw * amorphization_latency_ns(target_melt_fraction);
}

PulseResult PcmThermalModel::full_amorphization_reset() const {
  const double duration_ns = amorphous_reset_latency_ns();
  const double power_w = cal_.reset_power_mw * 1e-3;
  return PulseResult{
      .final_fraction = 0.0,
      .peak_temp_k = cal_.rc.temperature_at(power_w, duration_ns * 1e-9,
                                            cal_.rc.ambient_k),
      .melt_fraction = 1.0,
      .energy_pj = cal_.reset_power_mw * duration_ns};
}

PulseResult PcmThermalModel::full_crystallization_reset() const {
  const double growth_temp =
      cal_.rc.steady_state_k(cal_.erase_growth_power_mw * 1e-3);
  const double growth_ns =
      kinetics_.time_to_fraction(0.99, growth_temp) * 1e9;
  const double energy_pj =
      cal_.reset_power_mw * cal_.erase_melt_preamble_ns +
      cal_.erase_growth_power_mw * growth_ns;
  return PulseResult{.final_fraction = 0.99,
                     .peak_temp_k = cal_.kinetics.melt_temperature_k +
                                    cal_.melt_spread_k,
                     .melt_fraction = 1.0,
                     .energy_pj = energy_pj};
}

double PcmThermalModel::crystalline_reset_latency_ns() const {
  const double growth_temp =
      cal_.rc.steady_state_k(cal_.erase_growth_power_mw * 1e-3);
  return cal_.erase_melt_preamble_ns +
         kinetics_.time_to_fraction(0.99, growth_temp) * 1e9;
}

double PcmThermalModel::amorphous_reset_latency_ns() const {
  return amorphization_latency_ns(1.0) + cal_.reset_hold_ns;
}

}  // namespace comet::materials
