#pragma once

#include <complex>

#include "materials/pcm_material.hpp"

/// Effective-medium model for partially crystallized PCM.
///
/// Intermediate states of an OPCM multi-level cell are a nano-composite of
/// crystalline grains in an amorphous matrix. Following the scheme the
/// paper adopts from Wang et al. [27], the effective complex permittivity
/// at crystalline volume fraction p is given by the Lorentz–Lorenz
/// relation
///
///   (eps_eff - 1)/(eps_eff + 2) =
///        p * (eps_c - 1)/(eps_c + 2) + (1-p) * (eps_a - 1)/(eps_a + 2)
///
/// which interpolates smoothly and physically between the two phases.
namespace comet::materials {

/// Mixes two complex permittivities at crystalline fraction p in [0, 1].
/// Throws std::invalid_argument if p is outside [0, 1].
std::complex<double> lorentz_lorenz_mix(std::complex<double> eps_amorphous,
                                        std::complex<double> eps_crystalline,
                                        double fraction);

/// Effective complex refractive index of a material at a crystalline
/// fraction p in [0, 1] and wavelength [nm].
std::complex<double> effective_index(const PcmMaterial& material,
                                     double lambda_nm, double fraction);

}  // namespace comet::materials
