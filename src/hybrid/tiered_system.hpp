#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <optional>

#include "hybrid/dram_cache.hpp"
#include "memsim/device.hpp"
#include "memsim/engine.hpp"
#include "memsim/request.hpp"
#include "memsim/source.hpp"
#include "memsim/stats.hpp"
#include "sched/controller.hpp"

/// Hybrid tiered-memory subsystem: a DRAM cache in front of an OPCM /
/// EPCM / COSMOS main-memory backend (the HybridSim-style architecture
/// question posed by the data-content-aware PCM literature).
///
/// The TieredSystem is cycle-approximate by composition: the DramCache
/// tag model splits the demand stream into a DRAM-tier stream (hits and
/// fills) and a backend stream (demand misses, write-allocate fetches,
/// dirty-eviction writebacks), each derived request inheriting the
/// arrival time of the demand request that caused it — so both
/// sub-streams stay sorted. The split is fully streaming: demand
/// requests are pulled one at a time and the derived traffic is fed
/// straight into two concurrent memsim::ReplaySessions, so neither the
/// demand trace nor either sub-stream is ever materialized (O(1) memory,
/// like the flat engine).
namespace comet::hybrid {

/// One hybrid design point: a DRAM cache tier fronting a backend.
struct TieredConfig {
  std::string name;            ///< Registry token, e.g. "hybrid-comet".
  DramCacheConfig cache;
  memsim::DeviceModel dram;    ///< The cache-tier device (DRAM-class).
  memsim::DeviceModel backend; ///< The main-memory device behind it.

  /// Validates all three components; additionally rejects an empty name
  /// and a cache at least as large as the backend (that is not a cache).
  void validate() const;
};

/// Per-tier view of one tiered replay. `combined` is what the driver
/// reports: demand-stream reads/writes/bytes, merged latency
/// distributions, summed energy, and the cache hit/writeback breakdown
/// in the SimStats hybrid fields.
struct TieredStats {
  memsim::SimStats combined;
  memsim::SimStats dram;     ///< DRAM-tier replay (hits + fills).
  memsim::SimStats backend;  ///< Backend replay (misses + writebacks).
};

/// The DRAM-cache tier device: HBM-class (3D DDR4) timing with the
/// capacity — and the capacity-proportional share of background power —
/// scaled down to the cache size, plus a fixed tag/controller floor.
memsim::DeviceModel dram_cache_tier_model(std::uint64_t capacity_bytes);

/// Builds a full hybrid design point around an existing backend model.
/// `cache` defaults apply where fields are left at their defaults.
TieredConfig make_tiered_config(const std::string& name,
                                memsim::DeviceModel backend,
                                const DramCacheConfig& cache);

class TieredSystem final : public memsim::Engine {
 public:
  explicit TieredSystem(TieredConfig config);  ///< Validates the config.

  /// With a backend controller: the miss/fetch/writeback stream the
  /// cache filter derives is routed through a sched::Controller (its
  /// transaction queues and policy) in front of the backend replay,
  /// instead of straight into it — the tier where OPCM's asymmetric
  /// write latency actually bites. The DRAM tier stays direct. The
  /// combined stats then carry the scheduler breakdown of the backend.
  /// Validates both configs.
  ///
  /// `run_threads` (as in memsim::resolve_run_threads) shards the two
  /// tier replays into per-channel lanes on a worker pool: the cache
  /// filter stays on the caller's thread (its tag state is global), the
  /// derived per-tier traffic fans out by serving channel. Results are
  /// bit-identical for any thread count.
  TieredSystem(TieredConfig config,
               std::optional<sched::ControllerConfig> backend_controller,
               int run_threads = 1);

  const TieredConfig& config() const { return config_; }
  const std::optional<sched::ControllerConfig>& backend_controller() const {
    return backend_controller_;
  }
  int run_threads() const { return run_threads_; }

  /// Streams the demand source (which must yield requests sorted by
  /// arrival time; throws std::invalid_argument naming the offending
  /// index otherwise) through the cache filter and both tiers. Const and
  /// deterministic: the cache state lives on the stack of each call, so
  /// concurrent sweeps over the same TieredSystem are bit-identical to
  /// serial ones.
  TieredStats run_tiered(memsim::RequestSource& source,
                         const std::string& workload_name = "") const;

  /// Materialized-vector adapter for run_tiered.
  TieredStats run_tiered(const std::vector<memsim::Request>& requests,
                         const std::string& workload_name = "") const;

  using Engine::run;

  /// Engine entry point: the combined view only (what SweepJob records).
  memsim::SimStats run(memsim::RequestSource& source,
                       const std::string& workload_name = "") const override;

 private:
  TieredConfig config_;
  std::optional<sched::ControllerConfig> backend_controller_;
  int run_threads_ = 1;
};

}  // namespace comet::hybrid
