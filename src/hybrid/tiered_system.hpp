#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hybrid/dram_cache.hpp"
#include "memsim/device.hpp"
#include "memsim/request.hpp"
#include "memsim/stats.hpp"

/// Hybrid tiered-memory subsystem: a DRAM cache in front of an OPCM /
/// EPCM / COSMOS main-memory backend (the HybridSim-style architecture
/// question posed by the data-content-aware PCM literature).
///
/// The TieredSystem is cycle-approximate by composition: the DramCache
/// tag model splits the demand stream into a DRAM-tier stream (hits and
/// fills) and a backend stream (demand misses, write-allocate fetches,
/// dirty-eviction writebacks), each derived request inheriting the
/// arrival time of the demand request that caused it — so both
/// sub-streams stay sorted and the generic MemorySystem replay engine
/// serves each tier under its own DeviceModel.
namespace comet::hybrid {

/// One hybrid design point: a DRAM cache tier fronting a backend.
struct TieredConfig {
  std::string name;            ///< Registry token, e.g. "hybrid-comet".
  DramCacheConfig cache;
  memsim::DeviceModel dram;    ///< The cache-tier device (DRAM-class).
  memsim::DeviceModel backend; ///< The main-memory device behind it.

  /// Validates all three components; additionally rejects an empty name
  /// and a cache at least as large as the backend (that is not a cache).
  void validate() const;
};

/// Per-tier view of one tiered replay. `combined` is what the driver
/// reports: demand-stream reads/writes/bytes, merged latency
/// distributions, summed energy, and the cache hit/writeback breakdown
/// in the SimStats hybrid fields.
struct TieredStats {
  memsim::SimStats combined;
  memsim::SimStats dram;     ///< DRAM-tier replay (hits + fills).
  memsim::SimStats backend;  ///< Backend replay (misses + writebacks).
};

/// The DRAM-cache tier device: HBM-class (3D DDR4) timing with the
/// capacity — and the capacity-proportional share of background power —
/// scaled down to the cache size, plus a fixed tag/controller floor.
memsim::DeviceModel dram_cache_tier_model(std::uint64_t capacity_bytes);

/// Builds a full hybrid design point around an existing backend model.
/// `cache` defaults apply where fields are left at their defaults.
TieredConfig make_tiered_config(const std::string& name,
                                memsim::DeviceModel backend,
                                const DramCacheConfig& cache);

class TieredSystem {
 public:
  explicit TieredSystem(TieredConfig config);  ///< Validates the config.

  const TieredConfig& config() const { return config_; }

  /// Replays the demand stream (must be sorted by arrival time; throws
  /// std::invalid_argument naming the offending index otherwise) through
  /// the cache filter and both tiers. Const and deterministic: the cache
  /// state lives on the stack of each call, so concurrent sweeps over
  /// the same TieredSystem are bit-identical to serial ones.
  TieredStats run_tiered(const std::vector<memsim::Request>& requests,
                         const std::string& workload_name = "") const;

  /// Convenience: the combined view only (what SweepJob records).
  memsim::SimStats run(const std::vector<memsim::Request>& requests,
                       const std::string& workload_name = "") const;

 private:
  TieredConfig config_;
};

}  // namespace comet::hybrid
