#include "hybrid/tiered_system.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <utility>

#include "memsim/sharded.hpp"
#include "memsim/system.hpp"
#include "prof/profiler.hpp"
#include "telemetry/telemetry.hpp"
#include "util/units.hpp"

namespace comet::hybrid {

void TieredConfig::validate() const {
  if (name.empty()) throw std::invalid_argument("TieredConfig: empty name");
  cache.validate();
  dram.validate();
  backend.validate();
  if (cache.capacity_bytes >= backend.capacity_bytes) {
    throw std::invalid_argument(
        "TieredConfig: cache capacity must be smaller than the backend");
  }
}

memsim::DeviceModel dram_cache_tier_model(std::uint64_t capacity_bytes) {
  // HBM-class stacked DRAM with a streaming cache controller: 256 B
  // burst granularity (a 2 KB fill is eight back-to-back beats in one
  // row, not 32 closed-page row cycles) and a deeper MSHR window than
  // the conservative main-memory controllers the paper evaluates.
  memsim::DeviceModel model;
  model.name = "DRAM-cache";
  model.capacity_bytes = capacity_bytes;

  auto& t = model.timing;
  t.channels = 4;
  t.banks_per_channel = 16;
  t.line_bytes = 256;
  t.read_occupancy_ps = util::ns_to_ps(15.0);
  t.write_occupancy_ps = util::ns_to_ps(15.0);
  t.burst_ps = util::ns_to_ps(4.0);  // 256 B at ~64 GB/s per channel
  t.interface_ps = util::ns_to_ps(6.0);
  t.has_row_buffer = true;
  t.row_size_bytes = 8192;
  t.row_hit_saving_ps = util::ns_to_ps(10.0);
  t.refresh_interval_ps = util::ns_to_ps(7800.0);
  t.refresh_duration_ps = util::ns_to_ps(350.0);
  t.queue_depth = 16;

  auto& e = model.energy;
  e.read_pj_per_bit = 4.0;
  e.write_pj_per_bit = 5.0;
  // Refresh/peripheral background power scales with the retained array
  // size (0.35 W for a full 8 GB HBM-class stack); the tag-match and
  // controller logic is a fixed floor.
  constexpr double kControllerFloorW = 0.05;
  constexpr double kFullStackPowerW = 0.35;
  constexpr double kFullStackBytes = 8ull << 30;
  e.background_power_w =
      kControllerFloorW +
      kFullStackPowerW * static_cast<double>(capacity_bytes) / kFullStackBytes;
  return model;
}

TieredConfig make_tiered_config(const std::string& name,
                                memsim::DeviceModel backend,
                                const DramCacheConfig& cache) {
  TieredConfig config;
  config.name = name;
  config.cache = cache;
  config.dram = dram_cache_tier_model(cache.capacity_bytes);
  config.backend = std::move(backend);
  config.validate();
  return config;
}

TieredSystem::TieredSystem(TieredConfig config)
    : TieredSystem(std::move(config), std::nullopt) {}

TieredSystem::TieredSystem(
    TieredConfig config,
    std::optional<sched::ControllerConfig> backend_controller,
    int run_threads)
    : config_(std::move(config)),
      backend_controller_(std::move(backend_controller)),
      run_threads_(memsim::resolve_run_threads(run_threads)) {
  config_.validate();
  if (backend_controller_) backend_controller_->validate();
}

namespace {

/// Both tier replays behind one LanePool: DRAM-tier channel lanes first
/// ([0, D)), backend channel lanes after ([D, D+B)); the backend lanes
/// carry the controller front-end when one is configured. With
/// run_threads <= 1 the pool feeds inline on the caller's thread — the
/// serial path and the sharded path are the same code, differing only
/// in where lanes execute, which is what the bit-identity tests pin.
class TierStage {
 public:
  TierStage(const memsim::MemorySystem& dram,
            const memsim::MemorySystem& backend,
            const std::optional<sched::ControllerConfig>& controller,
            const std::string& workload_name, int threads,
            telemetry::Recorder* dram_telemetry,
            telemetry::Recorder* backend_telemetry,
            prof::Profiler* profiler)
      : dram_(dram),
        backend_(backend),
        dram_lanes_(static_cast<std::size_t>(dram.model().timing.channels)),
        pool_(make_lanes(dram, backend, controller, workload_name,
                         dram_telemetry, backend_telemetry),
              threads, profiler ? profiler->add_pool("tiers") : nullptr) {}

  void feed_dram(const memsim::Request& request) {
    pool_.feed(
        static_cast<std::size_t>(
            memsim::place_request(dram_.model().timing, request).channel),
        request);
  }

  void feed_backend(const memsim::Request& request) {
    pool_.feed(dram_lanes_ +
                   static_cast<std::size_t>(
                       memsim::place_request(backend_.model().timing, request)
                           .channel),
               request);
  }

  /// Joins the pool and merges each tier's lane slices in channel order
  /// — the serial sessions' own reduction, so per-tier results are
  /// bit-identical to unsharded replays of the same sub-streams.
  void finish(memsim::ReplaySlice& dram_slice,
              memsim::ReplaySlice& backend_slice) {
    const std::vector<memsim::ReplaySlice> slices = pool_.finish();
    for (std::size_t i = 0; i < dram_lanes_; ++i) {
      memsim::merge_slice(dram_slice, slices[i]);
    }
    for (std::size_t i = dram_lanes_; i < slices.size(); ++i) {
      memsim::merge_slice(backend_slice, slices[i]);
    }
  }

 private:
  static std::vector<std::unique_ptr<memsim::ShardLane>> make_lanes(
      const memsim::MemorySystem& dram, const memsim::MemorySystem& backend,
      const std::optional<sched::ControllerConfig>& controller,
      const std::string& workload_name, telemetry::Recorder* dram_telemetry,
      telemetry::Recorder* backend_telemetry) {
    std::vector<std::unique_ptr<memsim::ShardLane>> lanes;
    const int dram_channels = dram.model().timing.channels;
    const int backend_channels = backend.model().timing.channels;
    lanes.reserve(static_cast<std::size_t>(dram_channels + backend_channels));
    for (int c = 0; c < dram_channels; ++c) {
      lanes.push_back(std::make_unique<memsim::SessionLane>(
          dram, workload_name, dram_telemetry));
    }
    for (int c = 0; c < backend_channels; ++c) {
      if (controller) {
        lanes.push_back(std::make_unique<sched::ControllerLane>(
            backend, *controller, workload_name, backend_telemetry));
      } else {
        lanes.push_back(std::make_unique<memsim::SessionLane>(
            backend, workload_name, backend_telemetry));
      }
    }
    return lanes;
  }

  const memsim::MemorySystem& dram_;
  const memsim::MemorySystem& backend_;
  std::size_t dram_lanes_;
  memsim::LanePool pool_;
};

}  // namespace

TieredStats TieredSystem::run_tiered(memsim::RequestSource& source,
                                     const std::string& workload_name) const {
  using memsim::Op;
  using memsim::Request;

  TieredStats stats;
  stats.combined.device_name = config_.name;
  stats.combined.workload_name = workload_name;
  stats.combined.hybrid = true;

  // Filter the demand stream through the cache tag model, feeding the
  // derived traffic straight into one incremental replay lane per tier
  // channel (TierStage). Derived requests reuse the demand arrival time
  // and are fed in demand order, so both sub-streams inherit the
  // sorted-stream contract. The tag state is global across channels, so
  // the filter itself stays on this thread whatever run_threads says.
  DramCache cache(config_.cache);
  const std::uint32_t line_bytes = config_.cache.line_bytes;
  const memsim::MemorySystem dram_system(config_.dram);
  const memsim::MemorySystem backend_system(config_.backend);
  // Per-tier telemetry stages: the event budget splits evenly between
  // the tiers (0 = unlimited splits to unlimited on both).
  telemetry::Recorder* dram_recorder = nullptr;
  telemetry::Recorder* backend_recorder = nullptr;
  if (telemetry::Collector* collector = telemetry()) {
    const std::uint64_t limit = collector->spec().trace_limit;
    dram_recorder = collector->add_stage(
        "dram", config_.dram.timing.channels,
        config_.dram.timing.banks_per_channel, limit / 2);
    backend_recorder = collector->add_stage(
        "backend", config_.backend.timing.channels,
        config_.backend.timing.banks_per_channel, limit - limit / 2);
  }
  prof::Profiler* const profiler = this->profiler();
  TierStage tiers(dram_system, backend_system, backend_controller_,
                  workload_name, run_threads_, dram_recorder,
                  backend_recorder, profiler);
  // Derived-request ids live in their own (top-bit) namespace, above any
  // realistic demand id space, for traceability.
  std::uint64_t next_id = 1ull << 63;

  auto& c = stats.combined;
  std::uint64_t demand_index = 0;
  std::uint64_t demand_start = 0;
  std::uint64_t prev_arrival = 0;
  const auto process_demand = [&](const Request& req) {
    if (demand_index == 0) {
      demand_start = req.arrival_ps;
    } else {
      memsim::check_arrival_order(demand_index, prev_arrival, req.arrival_ps);
    }
    prev_arrival = req.arrival_ps;
    ++demand_index;

    const bool is_write = req.op == Op::kWrite;
    if (is_write) {
      ++c.writes;
    } else {
      ++c.reads;
    }
    c.bytes_transferred += req.size_bytes;

    // One demand request may straddle several (coarse) cache lines.
    const std::uint64_t demand_end =
        req.address + std::max<std::uint64_t>(req.size_bytes, 1);
    const std::uint64_t first_line = req.address / line_bytes;
    const std::uint64_t last_line = (demand_end - 1) / line_bytes;
    for (std::uint64_t line = first_line; line <= last_line; ++line) {
      const std::uint64_t line_address = line * line_bytes;
      const auto outcome = cache.access(line_address, is_write);

      const auto emit_dram = [&](Op op, std::uint64_t address,
                                 std::uint32_t size, std::uint64_t id) {
        tiers.feed_dram(Request{.id = id,
                                .arrival_ps = req.arrival_ps,
                                .op = op,
                                .address = address,
                                .size_bytes = size});
      };
      const auto emit_backend = [&](Op op, std::uint64_t address,
                                    std::uint32_t size, std::uint64_t id) {
        tiers.feed_backend(Request{.id = id,
                                   .arrival_ps = req.arrival_ps,
                                   .op = op,
                                   .address = address,
                                   .size_bytes = size});
      };
      // The demand bytes falling inside this cache line; fills, fetches
      // and writebacks always move the whole (coarse) line.
      const std::uint32_t portion = static_cast<std::uint32_t>(
          std::min(demand_end, line_address + line_bytes) -
          std::max(req.address, line_address));

      if (outcome.hit) {
        ++c.cache_hits;
        emit_dram(req.op, std::max(req.address, line_address), portion,
                  req.id);
        continue;
      }
      ++c.cache_misses;
      if (outcome.fill) {
        ++c.cache_fills;
        // The backend supplies the line (the latency path of a read
        // miss; the fetch-on-write of a write-allocate miss) and the
        // DRAM tier absorbs the fill. Installing the fetched line is an
        // array *write* whatever the demand op was. A demand write that
        // covers the whole line needs no fetch — every fetched byte
        // would be overwritten.
        if (!(is_write && portion == line_bytes)) {
          emit_backend(Op::kRead, line_address, line_bytes, req.id);
        }
        emit_dram(Op::kWrite, line_address, line_bytes, next_id++);
      } else {
        // Write-no-allocate miss: the demand write goes straight down.
        emit_backend(Op::kWrite, std::max(req.address, line_address), portion,
                     req.id);
      }
      if (outcome.writeback) {
        ++c.writebacks;
        emit_backend(Op::kWrite, outcome.writeback_address, line_bytes,
                     next_id++);
      }
    }
  };

  Request block[memsim::kFeedBlockRequests];
  using ProfClock = std::chrono::steady_clock;
  double pull_s = 0.0;
  double feed_s = 0.0;
  std::uint64_t batches = 0;
  for (;;) {
    ProfClock::time_point t0;
    if (profiler) t0 = ProfClock::now();
    const std::size_t pulled =
        source.next_batch(block, memsim::kFeedBlockRequests);
    if (pulled == 0) break;
    if (profiler) {
      pull_s += std::chrono::duration<double>(ProfClock::now() - t0).count();
      ++batches;
      t0 = ProfClock::now();
    }
    for (std::size_t i = 0; i < pulled; ++i) process_demand(block[i]);
    if (profiler) {
      feed_s += std::chrono::duration<double>(ProfClock::now() - t0).count();
      profiler->add_progress(pulled);
    }
  }
  if (profiler && batches > 0) {
    profiler->record_stage("source_pull", pull_s, batches);
    profiler->record_stage("engine_feed", feed_s, batches);
  }

  prof::StageTimer merge_timer(profiler, "shard_merge");
  memsim::ReplaySlice dram_slice;
  memsim::ReplaySlice backend_slice;
  tiers.finish(dram_slice, backend_slice);
  const std::uint64_t dram_first = dram_slice.first_arrival_ps;
  const std::uint64_t backend_first = backend_slice.first_arrival_ps;
  const bool dram_served = dram_slice.fed > 0;
  const bool backend_served = backend_slice.fed > 0;
  stats.dram = memsim::finalize_slice(std::move(dram_slice), config_.dram);
  stats.backend =
      memsim::finalize_slice(std::move(backend_slice), config_.backend);
  merge_timer.stop();

  // The demand wall-clock: first demand arrival to the last completion
  // of either tier. Each tier's span is anchored at its own sub-stream's
  // first arrival, so recover the absolute last-completion instants.
  std::uint64_t last_completion = demand_start;
  if (dram_served) {
    last_completion =
        std::max(last_completion, dram_first + stats.dram.span_ps);
  }
  if (backend_served) {
    last_completion =
        std::max(last_completion, backend_first + stats.backend.span_ps);
  }

  // Both tiers are powered for the whole run, but each replay charged
  // its always-on background power over its own (possibly much shorter,
  // possibly empty) sub-stream span only — top it up over the idle
  // remainder. Activity-gated power stays off while idle by definition.
  const std::uint64_t combined_span = last_completion - demand_start;
  const auto top_up = [combined_span](memsim::SimStats& tier,
                                      const memsim::DeviceModel& model) {
    tier.background_energy_pj +=
        model.energy.background_power_w *
        static_cast<double>(combined_span - tier.span_ps);
  };
  top_up(stats.dram, config_.dram);
  top_up(stats.backend, config_.backend);

  // Merge the tier replays into the combined demand-level view. Latency
  // distributions include the carry traffic (fills, fetches,
  // writebacks) each tier served; bytes_transferred counts demand bytes
  // only, so bandwidth and EPB are per *demand* byte/bit while energy
  // honestly includes the tier-maintenance traffic.
  c.span_ps = combined_span;
  c.read_latency_ns = stats.dram.read_latency_ns;
  c.read_latency_ns.merge(stats.backend.read_latency_ns);
  c.write_latency_ns = stats.dram.write_latency_ns;
  c.write_latency_ns.merge(stats.backend.write_latency_ns);
  c.queue_delay_ns = stats.dram.queue_delay_ns;
  c.queue_delay_ns.merge(stats.backend.queue_delay_ns);
  c.dynamic_energy_pj =
      stats.dram.dynamic_energy_pj + stats.backend.dynamic_energy_pj;
  c.background_energy_pj =
      stats.dram.background_energy_pj + stats.backend.background_energy_pj;
  c.total_bank_busy_ns =
      stats.dram.total_bank_busy_ns + stats.backend.total_bank_busy_ns;
  c.dram_tier_energy_pj =
      stats.dram.dynamic_energy_pj + stats.dram.background_energy_pj;
  c.backend_tier_energy_pj =
      stats.backend.dynamic_energy_pj + stats.backend.background_energy_pj;
  // A scheduled backend's controller breakdown surfaces on the combined
  // view (the DRAM tier is always direct, so there is only one).
  if (stats.backend.is_scheduled()) {
    c.scheduled = true;
    c.sched_policy = stats.backend.sched_policy;
    c.sched_queue_delay_ns = stats.backend.sched_queue_delay_ns;
    c.service_latency_ns = stats.backend.service_latency_ns;
    c.read_queue_occupancy = stats.backend.read_queue_occupancy;
    c.write_queue_occupancy = stats.backend.write_queue_occupancy;
    c.write_drains = stats.backend.write_drains;
    c.drained_writes = stats.backend.drained_writes;
    c.drain_stalls = stats.backend.drain_stalls;
    c.admit_stalls = stats.backend.admit_stalls;
  }
  return stats;
}

TieredStats TieredSystem::run_tiered(
    const std::vector<memsim::Request>& requests,
    const std::string& workload_name) const {
  memsim::VectorSource source(requests);
  return run_tiered(source, workload_name);
}

memsim::SimStats TieredSystem::run(memsim::RequestSource& source,
                                   const std::string& workload_name) const {
  return run_tiered(source, workload_name).combined;
}

}  // namespace comet::hybrid
