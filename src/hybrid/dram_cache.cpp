#include "hybrid/dram_cache.hpp"

#include <sstream>
#include <stdexcept>

namespace comet::hybrid {

std::uint64_t DramCacheConfig::sets() const {
  const std::uint64_t set_bytes =
      static_cast<std::uint64_t>(line_bytes) * static_cast<std::uint64_t>(ways);
  return set_bytes ? capacity_bytes / set_bytes : 0;
}

void DramCacheConfig::validate() const {
  if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0) {
    throw std::invalid_argument("DramCacheConfig: line size must be 2^k");
  }
  if (ways < 1) {
    throw std::invalid_argument("DramCacheConfig: ways < 1");
  }
  if (capacity_bytes < line_bytes) {
    std::ostringstream msg;
    msg << "DramCacheConfig: capacity (" << capacity_bytes
        << " B) smaller than one line (" << line_bytes << " B)";
    throw std::invalid_argument(msg.str());
  }
  const std::uint64_t set_bytes =
      static_cast<std::uint64_t>(line_bytes) * static_cast<std::uint64_t>(ways);
  if (capacity_bytes < set_bytes || capacity_bytes % set_bytes != 0) {
    throw std::invalid_argument(
        "DramCacheConfig: capacity must be a positive multiple of "
        "line_bytes * ways");
  }
}

DramCache::DramCache(DramCacheConfig config) : config_(config) {
  config_.validate();
  sets_ = config_.sets();
  lines_.resize(sets_ * static_cast<std::uint64_t>(config_.ways));
}

DramCache::Access DramCache::access(std::uint64_t address, bool is_write) {
  ++tick_;
  const std::uint64_t line_index = address / config_.line_bytes;
  const std::uint64_t set = line_index % sets_;
  const std::uint64_t tag = line_index / sets_;
  Line* const ways = &lines_[set * static_cast<std::uint64_t>(config_.ways)];

  for (int w = 0; w < config_.ways; ++w) {
    Line& line = ways[w];
    if (line.valid && line.tag == tag) {
      line.last_use = tick_;
      line.dirty = line.dirty || is_write;
      return Access{.hit = true};
    }
  }

  Access result;
  if (is_write && !config_.write_allocate) return result;  // bypass

  // Victim: the first invalid way, otherwise the least-recently used.
  Line* victim = &ways[0];
  for (int w = 1; w < config_.ways && victim->valid; ++w) {
    Line& line = ways[w];
    if (!line.valid || line.last_use < victim->last_use) victim = &line;
  }

  result.fill = true;
  if (victim->valid && victim->dirty) {
    result.writeback = true;
    result.writeback_address =
        (victim->tag * sets_ + set) * config_.line_bytes;
  }
  victim->tag = tag;
  victim->valid = true;
  // A write-allocated line is born dirty; a read fill is clean.
  victim->dirty = is_write;
  victim->last_use = tick_;
  return result;
}

}  // namespace comet::hybrid
