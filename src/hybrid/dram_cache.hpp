#pragma once

#include <cstdint>
#include <vector>

/// Functional set-associative DRAM cache model for the hybrid tier.
///
/// The cache tracks tags only (no data): the hybrid TieredSystem uses it
/// to split a request stream into DRAM-tier hits/fills and backend
/// misses/writebacks, and the two MemorySystem replays then charge the
/// timing and energy. Replacement is true LRU per set; writes are
/// write-back (a dirty victim is surfaced as a writeback address), and a
/// knob selects write-allocate vs. write-no-allocate on write misses.
namespace comet::hybrid {

struct DramCacheConfig {
  std::uint64_t capacity_bytes = 64ull << 20;  ///< Data capacity.
  int ways = 8;                                ///< Associativity.

  /// Cache-line (fill granularity) size. DRAM caches fetch coarse lines
  /// to convert the backend's spatial locality into tier hits — 2 KB is
  /// the page-based design point (covers every trace_gen stride), far
  /// larger than the 64–128 B demand-request lines.
  std::uint32_t line_bytes = 2048;

  /// Write-miss policy: true fetches the line from the backend and
  /// installs it dirty (write-allocate), false forwards the write to the
  /// backend untouched (write-no-allocate).
  bool write_allocate = true;

  /// Number of sets implied by capacity / (line_bytes * ways).
  std::uint64_t sets() const;

  /// Throws std::invalid_argument on a non-power-of-two line size, a
  /// capacity smaller than one line, non-positive associativity, or a
  /// capacity that does not divide evenly into sets.
  void validate() const;
};

class DramCache {
 public:
  explicit DramCache(DramCacheConfig config);  ///< Validates the config.

  /// Outcome of one line-granular access.
  struct Access {
    bool hit = false;        ///< Line was present (LRU refreshed).
    bool fill = false;       ///< Line was installed on a miss.
    bool writeback = false;  ///< The fill evicted a dirty line.
    std::uint64_t writeback_address = 0;  ///< Victim line address.
  };

  /// Looks up (and on a miss, per policy, installs) the line containing
  /// `address`. Writes mark the line dirty; write misses under
  /// write-no-allocate bypass the cache entirely (no fill).
  Access access(std::uint64_t address, bool is_write);

  const DramCacheConfig& config() const { return config_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
    bool dirty = false;
  };

  DramCacheConfig config_;
  std::uint64_t sets_;
  std::uint64_t tick_ = 0;         ///< LRU clock (one per access).
  std::vector<Line> lines_;        ///< sets_ x ways, row-major by set.
};

}  // namespace comet::hybrid
