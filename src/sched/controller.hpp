#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "memsim/device.hpp"
#include "memsim/engine.hpp"
#include "memsim/request.hpp"
#include "memsim/sharded.hpp"
#include "memsim/stats.hpp"
#include "memsim/system.hpp"

/// Event-driven memory-controller front-end: per-channel transaction
/// queues (a bounded read queue and a bounded write queue) with
/// pluggable scheduling policies, layered on top of the existing
/// DeviceModel bank timing (the ReplaySession back-end).
///
/// The paper's controller hides OPCM's asymmetric read/write latencies
/// by reordering around busy banks and deferring writes (cf. PCMCsim's
/// uCMDEngine/queue pipeline); the arrival-order replay the engine used
/// until now models none of that. This layer does:
///
///   - `fcfs`: in-order immediate handoff — every request is issued to
///     the device the instant it arrives, exactly the legacy
///     arrival-order replay. With unbounded queues this is bit-identical
///     to running without a controller (the regression anchor).
///   - `frfcfs`: first-ready FCFS — a transaction issues when its
///     target bank frees, oldest-first among ready candidates but
///     preferring open-row hits (DRAM row buffer) and open-region hits
///     (photonic GST region, whose switch penalty behaves like a row
///     miss). Batching same-row/-region traffic is where the reorder
///     gain comes from.
///   - `read-first`: reads always issue ahead of writes (reads are
///     latency-critical; OPCM writes are several times slower), with
///     write-drain hysteresis: when the write queue reaches the high
///     watermark the channel enters drain mode and issues writes —
///     stalling reads — until occupancy falls to the low watermark.
///   - `token-budget`: FR-FCFS arbitration restricted to tenants with
///     scheduling tokens left. Every tenant stream starts each epoch
///     with `tenant_tokens` tokens per channel; an issue consumes one,
///     and when no queued candidate has tokens left the channel refills
///     every bucket and starts the next epoch. A heavy tenant thus gets
///     at most `tenant_tokens` issues per epoch before lighter tenants
///     catch up — per-stream bandwidth reservation in the small.
///   - `frfcfs-cap`: FR-FCFS with a per-tenant starvation cap. Each
///     time a channel issues for one tenant while another has work
///     queued, the waiting tenant's starvation counter ticks; at
///     `starvation_cap` its transactions outrank every un-starved
///     candidate (row hits included) until one issues. Bounds the
///     tail-latency a locality-heavy neighbour can inflict.
///
/// The fairness policies act on Request::tenant (tenant::MultiSource
/// tags streams; untagged runs are one implicit tenant 0, for which
/// both reduce to frfcfs arbitration with identical results).
///
/// Queue bounds model finite controller SRAM: an arrival that finds its
/// queue full waits (an admit stall) until the scheduler issues enough
/// queued transactions to free a slot. fcfs never holds transactions,
/// so its queues never fill and the bounds only bind for the reordering
/// policies. Reordering policies scan at most the 256 oldest entries
/// per queue (a real controller's finite CAM window), so even unbounded
/// queues schedule in O(1) amortized work per transaction.
///
/// Everything is deterministic and single-threaded per run; Controller
/// instances live on the stack of each Engine::run call, so sweeps stay
/// bit-identical for any thread count.
namespace comet::sched {

enum class Policy : std::uint8_t {
  kFcfs,
  kFrFcfs,
  kReadFirst,
  kTokenBudget,
  kFrFcfsCap,
};

/// "fcfs" | "frfcfs" | "read-first" | "token-budget" | "frfcfs-cap".
const char* policy_name(Policy policy);

/// Throws std::invalid_argument naming the valid set on unknown names.
Policy policy_from_name(const std::string& name);

/// One documentable scheduling policy: its CLI/TOML token, a one-line
/// behavioural summary, and the ControllerConfig knobs that bind for
/// it. What `comet_sim --list-policies` prints.
struct PolicyInfo {
  Policy policy;
  const char* name;
  const char* summary;
  const char* knobs;
};

/// Every policy the build knows, in token order. The single source of
/// truth for CLI discovery; adding a Policy enumerator without a row
/// here fails the driver tests.
const std::vector<PolicyInfo>& known_policies();

struct ControllerConfig {
  Policy policy = Policy::kFcfs;

  /// Transaction-queue bounds per channel; 0 = unbounded.
  int read_queue_depth = 32;
  int write_queue_depth = 32;

  /// Write-drain hysteresis (read-first policy): enter drain mode at
  /// `write queue occupancy >= high`, leave at `occupancy <= low`.
  /// Equal watermarks are legal (each episode drains one write).
  int drain_high_watermark = 28;
  int drain_low_watermark = 12;

  /// token-budget policy: issues each tenant may make per channel per
  /// refill epoch (see the policy summary above).
  int tenant_tokens = 64;

  /// frfcfs-cap policy: cross-tenant issues a queued tenant tolerates
  /// on a channel before its transactions outrank un-starved ones.
  int starvation_cap = 16;

  /// Throws std::invalid_argument on negative depths, watermarks
  /// outside [0 <= low <= high], high < 1, a high watermark the
  /// bounded write queue can never reach, or fairness knobs < 1.
  void validate() const;

  /// Config with the drain watermarks re-derived from the write-queue
  /// depth (high = 7/8, low = 3/8 of a bounded depth; the defaults for
  /// an unbounded one) — what the CLI and TOML layers use when only
  /// depths are given.
  static ControllerConfig with_depths(Policy policy, int read_queue_depth,
                                      int write_queue_depth);
};

/// Push-mode scheduled replay against one MemorySystem — the
/// ReplaySession of the scheduler world, and the stage composite
/// engines route streams through (hybrid::TieredSystem feeds its
/// backend miss stream here). feed() admits demand requests in arrival
/// order; the controller queues, reorders and issues them into an
/// internal ReplaySession (in issue order, via feed_issued), and
/// finish() drains every queue and returns the statistics with the
/// scheduler breakdown filled in. The MemorySystem must outlive the
/// controller.
class Controller {
 public:
  /// Validates the config. `telemetry`, when non-null, receives one
  /// RequestEvent per issued request plus the scheduler-side signal:
  /// queue-occupancy samples at every admit, admit-stall and
  /// drain-begin/-end marks, and drained-write ticks — all in the
  /// recorder lane of the serving channel, so a shared recorder stays
  /// race-free across per-channel lanes (see telemetry.hpp). The
  /// recorder must outlive the controller.
  Controller(const memsim::MemorySystem& system, ControllerConfig config,
             std::string workload_name,
             telemetry::Recorder* telemetry = nullptr);
  Controller(Controller&&) noexcept;
  Controller& operator=(Controller&&) noexcept;
  ~Controller();

  /// Admits one demand request. Throws std::invalid_argument if it
  /// arrives before its predecessor, std::logic_error after finish().
  void feed(const memsim::Request& request);

  /// Number of demand requests admitted so far.
  std::uint64_t fed() const;

  /// Arrival time of the first admitted request (0 before any feed).
  std::uint64_t first_arrival_ps() const;

  /// Drains every queue, closes the run and returns the statistics.
  /// May be called once; throws std::logic_error on a second call.
  /// Equivalent to memsim::finalize_slice(finish_slice()).
  memsim::SimStats finish();

  /// Closes the run without finalizing: the session's slice with the
  /// scheduler breakdown merged in (per-channel accumulators, channel
  /// order — the same reduction a sharded merge performs). Same
  /// once-only contract as finish().
  memsim::ReplaySlice finish_slice();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Shard-lane adapter over a Controller, for sharded scheduled replay:
/// one full controller per channel lane, fed only that channel's
/// subsequence. Scheduling decisions, issue clocks and every scheduler
/// statistic are channel-local, so the lane reproduces the serial
/// controller's per-channel behaviour decision for decision.
class ControllerLane final : public memsim::ShardLane {
 public:
  ControllerLane(const memsim::MemorySystem& system, ControllerConfig config,
                 std::string workload_name,
                 telemetry::Recorder* telemetry = nullptr)
      : controller_(system, config, std::move(workload_name), telemetry) {}

  void feed(const memsim::Request& request) override {
    controller_.feed(request);
  }
  memsim::ReplaySlice finish_slice() override {
    return controller_.finish_slice();
  }

 private:
  Controller controller_;
};

/// Engine adapter: a flat MemorySystem behind a Controller front-end.
/// Const and stateless across runs like every Engine — the controller
/// lives on the stack of each run() call. With run_threads > 1 the run
/// shards into per-channel ControllerLanes on a worker pool instead of
/// one serial controller, with bit-identical results (the test gate in
/// tests/test_sharded.cpp covers every policy).
class ScheduledSystem final : public memsim::Engine {
 public:
  /// Validates both the model and the controller config; `run_threads`
  /// as in memsim::resolve_run_threads.
  ScheduledSystem(memsim::DeviceModel model, ControllerConfig config,
                  int run_threads = 1);

  const memsim::MemorySystem& system() const { return system_; }
  const ControllerConfig& config() const { return config_; }
  int run_threads() const { return run_threads_; }

  using Engine::run;

  memsim::SimStats run(memsim::RequestSource& source,
                       const std::string& workload_name = "") const override;

 private:
  memsim::MemorySystem system_;
  ControllerConfig config_;
  int run_threads_ = 1;
};

}  // namespace comet::sched
