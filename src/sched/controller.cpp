#include "sched/controller.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "prof/profiler.hpp"
#include "telemetry/telemetry.hpp"
#include "util/ring.hpp"

namespace comet::sched {

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kFcfs: return "fcfs";
    case Policy::kFrFcfs: return "frfcfs";
    case Policy::kReadFirst: return "read-first";
    case Policy::kTokenBudget: return "token-budget";
    case Policy::kFrFcfsCap: return "frfcfs-cap";
  }
  return "fcfs";
}

Policy policy_from_name(const std::string& name) {
  if (name == "fcfs") return Policy::kFcfs;
  if (name == "frfcfs") return Policy::kFrFcfs;
  if (name == "read-first") return Policy::kReadFirst;
  if (name == "token-budget") return Policy::kTokenBudget;
  if (name == "frfcfs-cap") return Policy::kFrFcfsCap;
  throw std::invalid_argument(
      "unknown scheduling policy '" + name +
      "'; expected fcfs, frfcfs, read-first, token-budget or frfcfs-cap");
}

const std::vector<PolicyInfo>& known_policies() {
  static const std::vector<PolicyInfo> policies = {
      {Policy::kFcfs, "fcfs",
       "in-order immediate handoff (the legacy arrival-order replay)",
       "read-queue-depth, write-queue-depth (never fill: fcfs holds "
       "nothing)"},
      {Policy::kFrFcfs, "frfcfs",
       "first-ready FCFS: oldest ready transaction first, preferring "
       "open-row / open-region hits",
       "read-queue-depth, write-queue-depth"},
      {Policy::kReadFirst, "read-first",
       "reads issue ahead of writes, with write-drain hysteresis",
       "read-queue-depth, write-queue-depth, drain-high-watermark, "
       "drain-low-watermark"},
      {Policy::kTokenBudget, "token-budget",
       "FR-FCFS limited to tenants with scheduling tokens left; buckets "
       "refill when every queued tenant is spent",
       "read-queue-depth, write-queue-depth, tenant-tokens"},
      {Policy::kFrFcfsCap, "frfcfs-cap",
       "FR-FCFS with a per-tenant starvation cap: tenants passed over "
       "too often outrank row hits until they issue",
       "read-queue-depth, write-queue-depth, starvation-cap"},
  };
  return policies;
}

void ControllerConfig::validate() const {
  if (read_queue_depth < 0 || write_queue_depth < 0) {
    throw std::invalid_argument(
        "ControllerConfig: queue depths must be >= 0 (0 = unbounded)");
  }
  if (drain_high_watermark < 1) {
    throw std::invalid_argument(
        "ControllerConfig: drain_high_watermark must be >= 1");
  }
  if (drain_low_watermark < 0 ||
      drain_low_watermark > drain_high_watermark) {
    throw std::invalid_argument(
        "ControllerConfig: need 0 <= drain_low_watermark <= "
        "drain_high_watermark");
  }
  if (write_queue_depth > 0 && drain_high_watermark > write_queue_depth) {
    throw std::invalid_argument(
        "ControllerConfig: drain_high_watermark " +
        std::to_string(drain_high_watermark) + " exceeds write_queue_depth " +
        std::to_string(write_queue_depth) +
        "; the write queue can never fill that far");
  }
  if (tenant_tokens < 1) {
    throw std::invalid_argument(
        "ControllerConfig: tenant_tokens must be >= 1");
  }
  if (starvation_cap < 1) {
    throw std::invalid_argument(
        "ControllerConfig: starvation_cap must be >= 1");
  }
}

ControllerConfig ControllerConfig::with_depths(Policy policy,
                                               int read_queue_depth,
                                               int write_queue_depth) {
  ControllerConfig config;
  config.policy = policy;
  config.read_queue_depth = read_queue_depth;
  config.write_queue_depth = write_queue_depth;
  if (write_queue_depth > 0) {
    config.drain_high_watermark = std::max(1, write_queue_depth * 7 / 8);
    config.drain_low_watermark = write_queue_depth * 3 / 8;
  }
  config.validate();
  return config;
}

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

/// Policies consider at most this many of the oldest entries per queue
/// — the finite scheduler window of a real controller's CAM. It only
/// binds for unbounded (depth-0) queues deeper than any built-in
/// configuration, and keeps each issue decision O(window) instead of
/// O(queued), so saturating unbounded runs stay linear overall.
constexpr std::size_t kScanWindow = 256;

struct QueuedTx {
  std::uint64_t seq = 0;
  memsim::Request request;
  std::uint64_t admit_ps = 0;  ///< When it entered the transaction queue.
  memsim::RequestPlacement placement;
};

}  // namespace

struct Controller::Impl {
  const memsim::MemorySystem& system;
  const ControllerConfig config;
  telemetry::Recorder* const telemetry;  ///< Null = no observability cost.
  memsim::ReplaySession session;

  struct Pick {
    bool valid = false;
    bool from_writes = false;
    std::size_t index = 0;
    std::uint64_t issue_ps = 0;
    /// Starvation boost (frfcfs-cap): 0 = the candidate's tenant hit
    /// its cap and outranks everything un-starved. Policies that do
    /// not rank tenants leave every pick at 0, so the comparison below
    /// degenerates to the legacy order bit for bit.
    int tenant_rank = 0;
    int hit_rank = 1;  ///< 0 = open-row/-region hit (preferred).
    std::uint64_t seq = 0;

    bool beats(const Pick& other) const {
      if (!other.valid) return true;
      if (tenant_rank != other.tenant_rank) {
        return tenant_rank < other.tenant_rank;
      }
      if (issue_ps != other.issue_ps) return issue_ps < other.issue_ps;
      if (hit_rank != other.hit_rank) return hit_rank < other.hit_rank;
      return seq < other.seq;
    }
  };

  struct Channel {
    int index = 0;  ///< The channel's own number (telemetry lane).
    util::RingQueue<QueuedTx> reads;
    util::RingQueue<QueuedTx> writes;
    // Admission overflow: arrivals that found their (bounded) queue
    // full wait here, entering FIFO when an issue frees a slot.
    util::RingQueue<QueuedTx> stalled_reads;
    util::RingQueue<QueuedTx> stalled_writes;
    // Bank-state mirror rebuilt from feed feedback, so arbitration and
    // the device timing always agree on busy windows and open
    // rows/regions.
    std::vector<std::uint64_t> bank_free;
    std::vector<std::uint64_t> open_row;
    std::vector<std::uint64_t> open_region;
    bool draining = false;
    // Fairness-policy state, indexed by Request::tenant (0, the
    // untagged stream, included) and grown on demand — untagged legacy
    // runs under legacy policies never allocate. Strictly channel-local
    // like every other scheduling input, so sharded runs reproduce the
    // serial decisions exactly.
    std::vector<int> tokens;  ///< token-budget: issues left this epoch.
    std::vector<std::uint64_t> starved;  ///< frfcfs-cap: passes endured.
    std::vector<std::uint64_t> queued_per_tenant;  ///< frfcfs-cap.
    // A channel's pick depends only on its own queues/mirror/drain
    // state, so it stays valid until this channel issues or admits —
    // advance_until then rescans only the touched channel.
    Pick cached_pick;
    bool pick_dirty = true;
    /// The channel's issue clock: only ever moves forward. A deferred
    /// transaction (a write held behind reads, say) whose bank has long
    /// been idle still issues when the scheduler turns to it, not
    /// retroactively. Per channel — not global — because a channel's
    /// scheduling depends on nothing outside the channel; this is what
    /// lets a sharded run drive each channel on its own worker and
    /// still match the serial controller decision for decision. The
    /// session's issue-sorted contract is per-channel to match.
    std::uint64_t last_issue = 0;
    // Per-channel scheduler statistics, merged in channel order at
    // finish — the same lane discipline as the replay session itself
    // (see memsim::ReplaySlice), and for the same reason.
    util::RunningStats queue_delay_ns;
    util::RunningStats service_ns;
    util::RunningStats read_occupancy;
    util::RunningStats write_occupancy;
    std::uint64_t write_drains = 0;
    std::uint64_t drained_writes = 0;
    std::uint64_t drain_stalls = 0;
    std::uint64_t admit_stalls = 0;
  };
  std::vector<Channel> channels;

  std::uint64_t next_seq = 0;
  std::uint64_t admitted = 0;
  std::uint64_t first_arrival = 0;
  std::uint64_t prev_arrival = 0;
  bool finished = false;

  Impl(const memsim::MemorySystem& sys, const ControllerConfig& cfg,
       std::string workload_name, telemetry::Recorder* recorder)
      : system(sys),
        config(cfg),
        telemetry(recorder),
        session(sys, std::move(workload_name), recorder) {
    const auto& t = sys.model().timing;
    channels.resize(static_cast<std::size_t>(t.channels));
    for (std::size_t c = 0; c < channels.size(); ++c) {
      auto& ch = channels[c];
      ch.index = static_cast<int>(c);
      const auto banks = static_cast<std::size_t>(t.banks_per_channel);
      ch.bank_free.assign(banks, 0);
      ch.open_row.assign(banks, ~0ull);
      ch.open_region.assign(banks, ~0ull);
      if (config.read_queue_depth > 0) {
        ch.reads.reserve(static_cast<std::size_t>(config.read_queue_depth));
      }
      if (config.write_queue_depth > 0) {
        ch.writes.reserve(static_cast<std::size_t>(config.write_queue_depth));
      }
    }
  }

  /// Earliest instant `tx` could start on its target bank(s) — striped
  /// devices occupy every bank of the channel, so all must be free.
  std::uint64_t ready_time(const Channel& ch, const QueuedTx& tx) const {
    const auto& t = system.model().timing;
    std::uint64_t bank_free = 0;
    if (t.line_striped_across_banks) {
      for (const auto free_ps : ch.bank_free) {
        bank_free = std::max(bank_free, free_ps);
      }
    } else {
      bank_free = ch.bank_free[static_cast<std::size_t>(tx.placement.bank)];
    }
    return std::max(tx.admit_ps, bank_free);
  }

  /// FR-FCFS preference: the open DRAM row, or the currently selected
  /// photonic GST region (whose switch penalty behaves like a row miss).
  bool open_hit(const Channel& ch, const QueuedTx& tx) const {
    const auto& t = system.model().timing;
    const auto lead = static_cast<std::size_t>(
        t.line_striped_across_banks ? 0 : tx.placement.bank);
    if (t.has_row_buffer && ch.open_row[lead] == tx.placement.row) {
      return true;
    }
    if (t.region_size_bytes && ch.open_region[lead] == tx.placement.region) {
      return true;
    }
    return false;
  }

  /// The transaction this channel's policy would issue next (and when),
  /// or an invalid pick when nothing is queued. fcfs never holds
  /// transactions, so its channels never have picks. Non-const because
  /// token-budget refills the channel's buckets when every queued
  /// tenant is spent (channel-local, so still deterministic).
  Pick next_issue(Channel& ch) {
    Pick best;
    // use_tokens skips candidates whose tenant bucket is empty (a
    // tenant the channel has not seen yet has an untouched full
    // bucket); use_starvation boosts candidates whose tenant endured
    // starvation_cap cross-tenant issues (see Pick::tenant_rank).
    const auto consider = [&](const util::RingQueue<QueuedTx>& q,
                              bool from_writes, bool prefer_hits,
                              bool use_tokens = false,
                              bool use_starvation = false) {
      const std::size_t window = std::min(q.size(), kScanWindow);
      for (std::size_t i = 0; i < window; ++i) {
        const QueuedTx& tx = q[i];
        const std::size_t tenant = tx.request.tenant;
        if (use_tokens && tenant < ch.tokens.size() &&
            ch.tokens[tenant] <= 0) {
          continue;
        }
        Pick p;
        p.valid = true;
        p.from_writes = from_writes;
        p.index = i;
        p.issue_ps = ready_time(ch, tx);
        p.hit_rank = prefer_hits && open_hit(ch, tx) ? 0 : 1;
        if (use_starvation) {
          p.tenant_rank =
              tenant < ch.starved.size() &&
                      ch.starved[tenant] >=
                          static_cast<std::uint64_t>(config.starvation_cap)
                  ? 0
                  : 1;
        }
        p.seq = tx.seq;
        if (p.beats(best)) best = p;
      }
    };
    switch (config.policy) {
      case Policy::kFcfs:
        break;
      case Policy::kFrFcfs:
        consider(ch.reads, /*from_writes=*/false, /*prefer_hits=*/true);
        consider(ch.writes, /*from_writes=*/true, /*prefer_hits=*/true);
        break;
      case Policy::kReadFirst: {
        // Strict read priority: writes issue only while draining or
        // when no read is pending (opportunistic background writes).
        const bool writes_first = ch.draining || ch.reads.empty();
        const auto& preferred = writes_first ? ch.writes : ch.reads;
        if (!preferred.empty()) {
          consider(preferred, writes_first, /*prefer_hits=*/false);
        } else {
          consider(writes_first ? ch.reads : ch.writes, !writes_first,
                   /*prefer_hits=*/false);
        }
        break;
      }
      case Policy::kTokenBudget:
        consider(ch.reads, /*from_writes=*/false, /*prefer_hits=*/true,
                 /*use_tokens=*/true);
        consider(ch.writes, /*from_writes=*/true, /*prefer_hits=*/true,
                 /*use_tokens=*/true);
        if (!best.valid && !(ch.reads.empty() && ch.writes.empty())) {
          // Every in-window candidate is out of tokens: refill the
          // buckets and open the next epoch. The rescan is guaranteed
          // a pick, so a non-empty channel never deadlocks.
          std::fill(ch.tokens.begin(), ch.tokens.end(),
                    config.tenant_tokens);
          consider(ch.reads, /*from_writes=*/false, /*prefer_hits=*/true,
                   /*use_tokens=*/true);
          consider(ch.writes, /*from_writes=*/true, /*prefer_hits=*/true,
                   /*use_tokens=*/true);
        }
        break;
      case Policy::kFrFcfsCap:
        consider(ch.reads, /*from_writes=*/false, /*prefer_hits=*/true,
                 /*use_tokens=*/false, /*use_starvation=*/true);
        consider(ch.writes, /*from_writes=*/true, /*prefer_hits=*/true,
                 /*use_tokens=*/false, /*use_starvation=*/true);
        break;
    }
    return best;
  }

  void update_drain(Channel& ch, std::uint64_t at_ps) {
    if (config.policy != Policy::kReadFirst) return;
    if (!ch.draining) {
      if (static_cast<int>(ch.writes.size()) >= config.drain_high_watermark) {
        ch.draining = true;
        ++ch.write_drains;
        if (telemetry) {
          telemetry->record_mark(ch.index, telemetry::MarkKind::kDrainBegin,
                                 at_ps);
        }
      }
    } else if (static_cast<int>(ch.writes.size()) <=
               config.drain_low_watermark) {
      ch.draining = false;
      if (telemetry) {
        telemetry->record_mark(ch.index, telemetry::MarkKind::kDrainEnd,
                               at_ps);
      }
    }
  }

  /// frfcfs-cap bookkeeping: a transaction of `tenant` became
  /// schedulable on `ch` (stalled arrivals count only once admitted —
  /// starvation boosts are pointless while nothing can be picked).
  void note_queued(Channel& ch, std::size_t tenant) {
    if (ch.queued_per_tenant.size() <= tenant) {
      ch.queued_per_tenant.resize(tenant + 1, 0);
      ch.starved.resize(tenant + 1, 0);
    }
    ++ch.queued_per_tenant[tenant];
  }

  /// Moves stalled arrivals into the queue a just-freed slot belongs
  /// to; they entered the controller at `at_ps` (the freeing issue).
  void admit_overflow(Channel& ch, bool from_writes, std::uint64_t at_ps) {
    auto& stalled = from_writes ? ch.stalled_writes : ch.stalled_reads;
    auto& q = from_writes ? ch.writes : ch.reads;
    const int depth =
        from_writes ? config.write_queue_depth : config.read_queue_depth;
    while (!stalled.empty() &&
           (depth == 0 || static_cast<int>(q.size()) < depth)) {
      QueuedTx tx = std::move(stalled.front());
      stalled.pop_front();
      tx.admit_ps = std::max(tx.request.arrival_ps, at_ps);
      if (config.policy == Policy::kFrFcfsCap) {
        note_queued(ch, tx.request.tenant);
      }
      q.push_back(std::move(tx));
    }
  }

  void issue(Channel& ch, bool from_writes, std::size_t index,
             std::uint64_t ready_ps) {
    auto& q = from_writes ? ch.writes : ch.reads;
    const QueuedTx tx = std::move(q[index]);
    q.erase_at(index);

    const std::size_t tenant = tx.request.tenant;
    if (config.policy == Policy::kTokenBudget) {
      if (ch.tokens.size() <= tenant) {
        ch.tokens.resize(tenant + 1, config.tenant_tokens);
      }
      --ch.tokens[tenant];
    } else if (config.policy == Policy::kFrFcfsCap) {
      // The issuer's patience resets; every other tenant still holding
      // schedulable work on this channel was passed over once more.
      --ch.queued_per_tenant[tenant];
      ch.starved[tenant] = 0;
      for (std::size_t t = 0; t < ch.queued_per_tenant.size(); ++t) {
        if (t != tenant && ch.queued_per_tenant[t] > 0) ++ch.starved[t];
      }
    }

    const std::uint64_t issue_ps = std::max(ready_ps, ch.last_issue);
    ch.last_issue = issue_ps;
    const memsim::FeedResult result = session.feed_issued(tx.request, issue_ps);
    ch.queue_delay_ns.add(
        static_cast<double>(issue_ps - tx.request.arrival_ps) * 1e-3);
    ch.service_ns.add(
        static_cast<double>(result.completion_ps - issue_ps) * 1e-3);

    // Mirror commit — the same rule the replay engine applies.
    const auto& t = system.model().timing;
    if (t.line_striped_across_banks) {
      for (std::size_t b = 0; b < ch.bank_free.size(); ++b) {
        ch.bank_free[b] = result.bank_busy_until_ps;
        ch.open_row[b] = tx.placement.row;
        ch.open_region[b] = tx.placement.region;
      }
    } else {
      const auto b = static_cast<std::size_t>(tx.placement.bank);
      ch.bank_free[b] = result.bank_busy_until_ps;
      ch.open_row[b] = tx.placement.row;
      ch.open_region[b] = tx.placement.region;
    }

    if (from_writes && ch.draining) {
      ++ch.drained_writes;
      if (telemetry) telemetry->record_drained_write(ch.index, issue_ps);
      if (!ch.reads.empty()) ++ch.drain_stalls;
    }
    admit_overflow(ch, from_writes, issue_ps);
    update_drain(ch, issue_ps);
    ch.pick_dirty = true;
  }

  const Pick& channel_pick(Channel& ch) {
    if (ch.pick_dirty) {
      ch.cached_pick = next_issue(ch);
      ch.pick_dirty = false;
    }
    return ch.cached_pick;
  }

  /// Issues, globally in (time, age) order, every transaction whose
  /// issue instant is <= limit. Channel state is channel-local, so the
  /// per-channel issue subsequence (and every statistic) is the same
  /// however arrivals on *other* channels interleave the calls — the
  /// invariant the sharded engine's bit-identity rests on. Per-channel
  /// issue instants only move forward (bank mirrors monotonically
  /// advance, overflow admits at the freeing issue), so the session's
  /// per-channel issue-sorted contract holds.
  void advance_until(std::uint64_t limit) {
    for (;;) {
      Pick best;
      std::size_t best_channel = 0;
      for (std::size_t c = 0; c < channels.size(); ++c) {
        const Pick& p = channel_pick(channels[c]);
        if (p.valid && p.beats(best)) {
          best = p;
          best_channel = c;
        }
      }
      if (!best.valid || best.issue_ps > limit) return;
      issue(channels[best_channel], best.from_writes, best.index,
            best.issue_ps);
    }
  }

  void feed(const memsim::Request& req) {
    if (admitted == 0) {
      first_arrival = req.arrival_ps;
    } else {
      memsim::check_arrival_order(admitted, prev_arrival, req.arrival_ps);
    }
    prev_arrival = req.arrival_ps;
    ++admitted;

    // Bring the controller up to this arrival instant.
    advance_until(req.arrival_ps);

    const auto& t = system.model().timing;
    QueuedTx tx;
    tx.seq = next_seq++;
    tx.request = req;
    tx.admit_ps = req.arrival_ps;
    tx.placement = memsim::place_request(t, req);

    auto& ch = channels[static_cast<std::size_t>(tx.placement.channel)];
    const bool is_write = req.op == memsim::Op::kWrite;
    // The queue state each arrival observes (before joining it).
    ch.read_occupancy.add(static_cast<double>(ch.reads.size()));
    ch.write_occupancy.add(static_cast<double>(ch.writes.size()));
    if (telemetry) {
      telemetry->record_queue_sample(ch.index, req.arrival_ps,
                                     ch.reads.size(), ch.writes.size());
    }

    auto& q = is_write ? ch.writes : ch.reads;
    if (config.policy == Policy::kFcfs) {
      // In-order immediate handoff: the device's own outstanding window
      // does all buffering — exactly the legacy arrival-order replay,
      // so unbounded-queue fcfs is bit-identical to no controller.
      q.push_back(std::move(tx));
      issue(ch, is_write, q.size() - 1, req.arrival_ps);
      return;
    }

    auto& stalled = is_write ? ch.stalled_writes : ch.stalled_reads;
    const int depth =
        is_write ? config.write_queue_depth : config.read_queue_depth;
    if (depth > 0 &&
        (static_cast<int>(q.size()) >= depth || !stalled.empty())) {
      ++ch.admit_stalls;
      if (telemetry) {
        telemetry->record_mark(ch.index, telemetry::MarkKind::kAdmitStall,
                               req.arrival_ps);
      }
      stalled.push_back(std::move(tx));
    } else {
      if (config.policy == Policy::kFrFcfsCap) {
        note_queued(ch, tx.request.tenant);
      }
      q.push_back(std::move(tx));
      update_drain(ch, req.arrival_ps);
      ch.pick_dirty = true;
    }
  }

  memsim::ReplaySlice finish_slice() {
    finished = true;
    advance_until(kNever);  // Drain every queue, stalled arrivals included.
    memsim::ReplaySlice slice = session.finish_slice();
    slice.stats.scheduled = true;
    slice.stats.sched_policy = policy_name(config.policy);
    // Channel-ordered lane merge, mirroring the session's own: a shard
    // that saw only channel k's traffic produces exactly channel k's
    // accumulators, so merging shard slices in channel order is the
    // same reduction.
    for (const auto& ch : channels) {
      memsim::ReplaySlice lane;
      lane.stats.sched_queue_delay_ns = ch.queue_delay_ns;
      lane.stats.service_latency_ns = ch.service_ns;
      lane.stats.read_queue_occupancy = ch.read_occupancy;
      lane.stats.write_queue_occupancy = ch.write_occupancy;
      lane.stats.write_drains = ch.write_drains;
      lane.stats.drained_writes = ch.drained_writes;
      lane.stats.drain_stalls = ch.drain_stalls;
      lane.stats.admit_stalls = ch.admit_stalls;
      memsim::merge_slice(slice, lane);
    }
    return slice;
  }
};

Controller::Controller(const memsim::MemorySystem& system,
                       ControllerConfig config, std::string workload_name,
                       telemetry::Recorder* telemetry) {
  config.validate();
  impl_ = std::make_unique<Impl>(system, config, std::move(workload_name),
                                 telemetry);
}

Controller::Controller(Controller&&) noexcept = default;
Controller& Controller::operator=(Controller&&) noexcept = default;
Controller::~Controller() = default;

void Controller::feed(const memsim::Request& request) {
  if (impl_->finished) {
    throw std::logic_error("sched::Controller: feed() after finish()");
  }
  impl_->feed(request);
}

std::uint64_t Controller::fed() const { return impl_->admitted; }

std::uint64_t Controller::first_arrival_ps() const {
  return impl_->first_arrival;
}

memsim::SimStats Controller::finish() {
  if (impl_->finished) {
    throw std::logic_error("sched::Controller: finish() called twice");
  }
  return memsim::finalize_slice(impl_->finish_slice(),
                                impl_->system.model());
}

memsim::ReplaySlice Controller::finish_slice() {
  if (impl_->finished) {
    throw std::logic_error("sched::Controller: finish() called twice");
  }
  return impl_->finish_slice();
}

ScheduledSystem::ScheduledSystem(memsim::DeviceModel model,
                                 ControllerConfig config, int run_threads)
    : system_(std::move(model)),
      config_(config),
      run_threads_(memsim::resolve_run_threads(run_threads)) {
  config_.validate();
}

memsim::SimStats ScheduledSystem::run(memsim::RequestSource& source,
                                      const std::string& workload_name) const {
  telemetry::Recorder* recorder = nullptr;
  if (telemetry::Collector* collector = telemetry()) {
    recorder = collector->add_stage("", system_.model().timing.channels,
                                    system_.model().timing.banks_per_channel,
                                    collector->spec().trace_limit);
  }
  if (run_threads_ > 1) {
    std::vector<std::unique_ptr<memsim::ShardLane>> lanes;
    const int channels = system_.model().timing.channels;
    lanes.reserve(static_cast<std::size_t>(channels));
    for (int c = 0; c < channels; ++c) {
      lanes.push_back(std::make_unique<ControllerLane>(
          system_, config_, workload_name, recorder));
    }
    return memsim::run_sharded(system_, std::move(lanes), run_threads_,
                               source, profiler());
  }
  Controller controller(system_, config_, workload_name, recorder);
  memsim::Request block[memsim::kFeedBlockRequests];
  prof::Profiler* const profiler = this->profiler();
  using ProfClock = std::chrono::steady_clock;
  double pull_s = 0.0;
  double feed_s = 0.0;
  std::uint64_t batches = 0;
  for (;;) {
    ProfClock::time_point t0;
    if (profiler) t0 = ProfClock::now();
    const std::size_t pulled =
        source.next_batch(block, memsim::kFeedBlockRequests);
    if (pulled == 0) break;
    if (profiler) {
      pull_s += std::chrono::duration<double>(ProfClock::now() - t0).count();
      ++batches;
      t0 = ProfClock::now();
    }
    for (std::size_t i = 0; i < pulled; ++i) controller.feed(block[i]);
    if (profiler) {
      feed_s += std::chrono::duration<double>(ProfClock::now() - t0).count();
      profiler->add_progress(pulled);
    }
  }
  if (profiler && batches > 0) {
    profiler->record_stage("source_pull", pull_s, batches);
    profiler->record_stage("engine_feed", feed_s, batches);
  }
  return controller.finish();
}

}  // namespace comet::sched
