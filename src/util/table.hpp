#pragma once

#include <ostream>
#include <string>
#include <vector>

/// Aligned-console-table and CSV emission for the bench harnesses. Every
/// bench prints the rows/series of the paper figure it regenerates through
/// this class so output formats stay uniform.
namespace comet::util {

class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; cells are pre-formatted strings. Row width must match
  /// the header count (throws std::invalid_argument otherwise).
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);

  /// Scientific notation, for power/energy spans of many decades.
  static std::string sci(double v, int precision = 2);

  /// Renders with aligned columns and a header underline.
  void print(std::ostream& os) const;

  /// Renders as CSV (RFC-4180-ish; cells containing commas are quoted).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace comet::util
