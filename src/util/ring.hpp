#pragma once

#include <cstddef>
#include <utility>
#include <vector>

/// Allocation-free FIFO/indexable queue used on the replay hot path.
namespace comet::util {

/// Circular buffer with deque semantics (push_back / pop_front / random
/// access from the front) over one contiguous power-of-two allocation.
/// The replay engine and the sched::Controller previously used
/// std::deque here, paying a node allocation every few dozen
/// transactions; a ring touches the allocator only when it outgrows its
/// capacity, which a preallocating caller (reserve(queue_depth)) never
/// does. erase_at() exists for the controller's scheduling window: it
/// shifts the elements *in front of* the victim back by one slot, so
/// removing inside the first kScanWindow entries moves at most that
/// many elements regardless of queue length.
template <typename T>
class RingQueue {
 public:
  RingQueue() = default;
  explicit RingQueue(std::size_t capacity) { reserve(capacity); }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buffer_.size(); }

  /// Grows the allocation to hold at least `wanted` elements (rounded
  /// up to a power of two); never shrinks.
  void reserve(std::size_t wanted) {
    if (wanted <= buffer_.size()) return;
    std::size_t grown = buffer_.empty() ? 8 : buffer_.size();
    while (grown < wanted) grown *= 2;
    std::vector<T> next(grown);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buffer_[mask(head_ + i)]);
    }
    buffer_ = std::move(next);
    head_ = 0;
  }

  void push_back(T value) {
    if (size_ == buffer_.size()) reserve(size_ + 1);
    buffer_[mask(head_ + size_)] = std::move(value);
    ++size_;
  }

  T& front() { return buffer_[head_]; }
  const T& front() const { return buffer_[head_]; }

  void pop_front() {
    head_ = mask(head_ + 1);
    --size_;
  }

  /// i-th element counted from the front (0 = front()).
  T& operator[](std::size_t i) { return buffer_[mask(head_ + i)]; }
  const T& operator[](std::size_t i) const { return buffer_[mask(head_ + i)]; }

  /// Removes the i-th element from the front by shifting the i elements
  /// ahead of it back one slot — O(i), independent of size().
  void erase_at(std::size_t i) {
    for (std::size_t j = i; j > 0; --j) {
      buffer_[mask(head_ + j)] = std::move(buffer_[mask(head_ + j - 1)]);
    }
    pop_front();
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::size_t mask(std::size_t i) const { return i & (buffer_.size() - 1); }

  std::vector<T> buffer_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace comet::util
