#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace comet::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto& cell = row[c];
      if (c) os << ',';
      if (cell.find(',') != std::string::npos ||
          cell.find('"') != std::string::npos) {
        os << '"';
        for (const char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace comet::util
