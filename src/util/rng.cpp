#include "util/rng.hpp"

#include <cmath>

namespace comet::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : state_) s = splitmix64(seed);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling, biased < 2^-64.
#ifdef __SIZEOF_INT128__
  __extension__ typedef unsigned __int128 u128;
  return static_cast<std::uint64_t>((static_cast<u128>(next_u64()) * bound) >>
                                    64);
#else
  // Portable 64x64 -> high-64 multiply; identical result to the u128 path.
  const std::uint64_t x = next_u64();
  const std::uint64_t x_lo = x & 0xffffffffULL, x_hi = x >> 32;
  const std::uint64_t b_lo = bound & 0xffffffffULL, b_hi = bound >> 32;
  const std::uint64_t mid = x_hi * b_lo + ((x_lo * b_lo) >> 32);
  const std::uint64_t mid2 = x_lo * b_hi + (mid & 0xffffffffULL);
  return x_hi * b_hi + (mid >> 32) + (mid2 >> 32);
#endif
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_gaussian() {
  double u1 = next_double();
  const double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(2.0 * 3.14159265358979323846 * u2);
}

double Rng::next_exponential(double mean) {
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::uint64_t Rng::next_zipf(std::uint64_t n, double s) {
  if (n <= 1) return 0;
  // Rejection-inversion sampling (Hörmann & Derflinger) is overkill for the
  // small ranks trace generators use; inverse-CDF over a harmonic prefix is
  // exact and fast enough since n here is the hot-set size (<= a few 1000).
  if (s <= 0.0) return next_below(n);
  // The k^-s weights (and their left-to-right harmonic sum) depend only
  // on (n, s), which trace generators hold fixed across millions of
  // draws — memoize them. The subtraction scan below performs exactly
  // the same floating-point operations in the same order as computing
  // the powers inline, so cached and uncached sampling are bit-identical;
  // only the ~2n std::pow calls per draw disappear.
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_weights_.resize(n);
    zipf_h_ = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) {
      zipf_weights_[k - 1] = std::pow(double(k), -s);
      zipf_h_ += zipf_weights_[k - 1];
    }
    zipf_n_ = n;
    zipf_s_ = s;
  }
  double u = next_double() * zipf_h_;
  for (std::uint64_t k = 1; k <= n; ++k) {
    u -= zipf_weights_[k - 1];
    if (u <= 0.0) return k - 1;
  }
  return n - 1;
}

}  // namespace comet::util
