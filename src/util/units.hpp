#pragma once

#include <cmath>

#include "util/constants.hpp"

/// Unit conversion helpers. The photonic literature mixes dB, dBm, mW, nm
/// and crystalline fractions freely; every conversion in the codebase goes
/// through these functions so the conventions live in one place.
namespace comet::util {

/// Convert a linear power *ratio* (gain > 1, loss < 1) to decibels.
inline double ratio_to_db(double ratio) { return 10.0 * std::log10(ratio); }

/// Convert decibels to a linear power ratio.
inline double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

/// Convert absolute power in milliwatts to dBm.
inline double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

/// Convert dBm to absolute power in milliwatts.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

/// Convert watts to dBm.
inline double w_to_dbm(double w) { return mw_to_dbm(w * 1e3); }

/// Convert dBm to watts.
inline double dbm_to_w(double dbm) { return dbm_to_mw(dbm) * 1e-3; }

/// Transmission (0..1] expressed as a positive insertion loss in dB.
inline double transmission_to_loss_db(double t) { return -ratio_to_db(t); }

/// Positive insertion loss in dB expressed as a transmission factor (0..1].
inline double loss_db_to_transmission(double db) { return db_to_ratio(-db); }

/// Wavelength [nm] to optical frequency [Hz].
inline double wavelength_nm_to_hz(double nm) {
  return kSpeedOfLight / (nm * 1e-9);
}

/// Optical frequency [Hz] to wavelength [nm].
inline double hz_to_wavelength_nm(double hz) {
  return kSpeedOfLight / hz * 1e9;
}

/// Photon energy [J] at a wavelength [nm].
inline double photon_energy_j(double nm) {
  return kPlanck * wavelength_nm_to_hz(nm);
}

// --- Time helpers. The memory simulator's native tick is 1 ps so that
// --- photonic (ns) and DRAM (sub-ns) events share one integer timeline.
inline constexpr double kPsPerNs = 1e3;
inline constexpr double kPsPerUs = 1e6;
inline constexpr double kPsPerMs = 1e9;
inline constexpr double kPsPerS = 1e12;

inline constexpr std::uint64_t ns_to_ps(double ns) {
  return static_cast<std::uint64_t>(ns * kPsPerNs + 0.5);
}
inline constexpr double ps_to_ns(std::uint64_t ps) {
  return static_cast<double>(ps) / kPsPerNs;
}
inline constexpr double ps_to_s(std::uint64_t ps) {
  return static_cast<double>(ps) / kPsPerS;
}

/// Energy [pJ] from power [mW] over a duration [ns]: mW * ns == pJ.
inline double energy_pj(double power_mw, double duration_ns) {
  return power_mw * duration_ns;
}

/// Energy-per-bit [pJ/bit] from power [W] and a bit rate [bit/s].
inline double epb_pj_per_bit(double power_w, double bits_per_s) {
  return power_w / bits_per_s * 1e12;
}

}  // namespace comet::util
