#pragma once

#include <cstdint>
#include <limits>
#include <vector>

/// Streaming statistics used by the memory simulator and the benches.
namespace comet::util {

/// Welford-style running mean/variance plus min/max, and a fixed-size
/// log2-bucketed histogram (HDR-histogram style: 8 sub-buckets per
/// octave over [2^-20, 2^40)) for approximate percentiles — O(1) memory
/// regardless of sample count, and exactly mergeable.
class RunningStats {
 public:
  void add(double x);

  /// Folds another accumulator into this one (Chan's parallel Welford
  /// combination plus an element-wise histogram sum), as if every
  /// sample of `other` had been add()ed here.
  void merge(const RunningStats& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Population variance; 0 for n < 2.
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Value below which fraction `p` (0..1) of the samples fall, read
  /// from the log-bucketed histogram: accurate to the bucket width
  /// (2^(1/8), i.e. within ~±4.5% of the exact sample) and clamped to
  /// [min(), max()], so constant streams report exact percentiles.
  /// Samples ≤ 0 (or below 2^-20) collapse into one underflow bucket
  /// represented by min(). Returns 0 on an empty accumulator.
  double percentile(double p) const;

  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::vector<std::uint64_t> histogram_;  ///< Allocated on first add().
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
/// Used for request-latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// Value below which the given fraction (0..1) of samples fall,
  /// linearly interpolated within the bucket.
  double percentile(double p) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace comet::util
