#pragma once

#include <cstdint>
#include <vector>

/// Deterministic random number generation. Every stochastic component in
/// the repository (trace generators, corruption models, property tests)
/// draws from this generator with an explicit seed so that all experiments
/// are exactly reproducible across runs and platforms.
namespace comet::util {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, and with a
/// stable cross-platform output sequence (unlike std::mt19937 distribution
/// adapters, whose output is implementation-defined).
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// True with probability p (clamped to [0, 1]).
  bool next_bool(double p);

  /// Standard normal deviate (Box–Muller; consumes two uniforms).
  double next_gaussian();

  /// Exponential deviate with the given mean (> 0).
  double next_exponential(double mean);

  /// Zipf-distributed integer in [0, n) with exponent s >= 0.
  /// Used by trace generators for hot-row/pointer-chase behaviour.
  std::uint64_t next_zipf(std::uint64_t n, double s);

 private:
  std::uint64_t state_[4];

  // next_zipf memoizes the k^-s weight table for the last (n, s) pair;
  // sampling itself is unchanged (and bit-identical), the cache only
  // avoids recomputing ~2n std::pow calls per draw.
  std::uint64_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  double zipf_h_ = 0.0;
  std::vector<double> zipf_weights_;
};

}  // namespace comet::util
