#include "util/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace comet::util {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (!(hi > lo) || buckets == 0) {
    throw std::invalid_argument("Histogram: bad range or bucket count");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto i = static_cast<std::size_t>((x - lo_) / width);
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return bucket_lo(i + 1);
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return lo_;
  if (p <= 0.0) return lo_;
  if (p >= 1.0) return hi_;
  const double target = p * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * (bucket_hi(i) - bucket_lo(i));
    }
    cum = next;
  }
  return hi_;
}

}  // namespace comet::util
