#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace comet::util {

namespace {

// Percentile histogram geometry: log2 buckets with kSubBuckets per
// octave spanning [2^kMinExponent, 2^kMaxExponent), plus one underflow
// bucket at index 0 for samples below the range (including <= 0).
// Values above the range clamp into the last bucket; percentile()
// clamps its answer to [min, max] anyway.
constexpr int kSubBuckets = 8;
constexpr int kMinExponent = -20;  // ~1e-6
constexpr int kMaxExponent = 40;   // ~1e12
constexpr std::size_t kHistogramBuckets =
    static_cast<std::size_t>((kMaxExponent - kMinExponent) * kSubBuckets) + 1;

std::size_t histogram_bucket(double x) {
  if (!(x >= std::ldexp(1.0, kMinExponent))) return 0;  // underflow, <=0, NaN
  const double pos = (std::log2(x) - kMinExponent) *
                     static_cast<double>(kSubBuckets);
  const auto index = static_cast<std::size_t>(pos) + 1;
  return index < kHistogramBuckets ? index : kHistogramBuckets - 1;
}

/// Geometric midpoint of a bucket (its representative value).
double histogram_bucket_value(std::size_t index) {
  if (index == 0) return 0.0;  // caller clamps to min()
  const double lo_exponent =
      kMinExponent + static_cast<double>(index - 1) / kSubBuckets;
  return std::exp2(lo_exponent + 0.5 / kSubBuckets);
}

}  // namespace

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
  if (histogram_.empty()) histogram_.assign(kHistogramBuckets, 0);
  ++histogram_[histogram_bucket(x)];
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  for (std::size_t i = 0; i < other.histogram_.size(); ++i) {
    histogram_[i] += other.histogram_[i];
  }
}

double RunningStats::percentile(double p) const {
  if (n_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 1.0) return max_;
  auto target = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(n_)));
  if (target == 0) target = 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < histogram_.size(); ++i) {
    cum += histogram_[i];
    if (cum >= target) {
      const double value = histogram_bucket_value(i);
      return std::min(std::max(value, min_), max_);
    }
  }
  return max_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (!(hi > lo) || buckets == 0) {
    throw std::invalid_argument("Histogram: bad range or bucket count");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto i = static_cast<std::size_t>((x - lo_) / width);
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return bucket_lo(i + 1);
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return lo_;
  if (p <= 0.0) return lo_;
  if (p >= 1.0) return hi_;
  const double target = p * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * (bucket_hi(i) - bucket_lo(i));
    }
    cum = next;
  }
  return hi_;
}

}  // namespace comet::util
