#pragma once

/// Physical constants and fixed conversion factors used across the COMET
/// material, photonic and architectural models. All values are in SI units
/// unless the name says otherwise.
namespace comet::util {

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 2.99792458e8;

/// Planck constant [J*s].
inline constexpr double kPlanck = 6.62607015e-34;

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// Vacuum permittivity [F/m].
inline constexpr double kVacuumPermittivity = 8.8541878128e-12;

/// pi, to double precision.
inline constexpr double kPi = 3.14159265358979323846;

/// Ambient (chip) temperature assumed by the thermal models [K].
inline constexpr double kAmbientTemperatureK = 300.0;

/// Optical C-band boundaries used throughout the paper [m].
inline constexpr double kCBandLoNm = 1530.0;
inline constexpr double kCBandHiNm = 1565.0;

/// Centre wavelength used for single-wavelength device studies [nm].
inline constexpr double kCBandCentreNm = 1550.0;

}  // namespace comet::util
