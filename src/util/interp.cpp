#include "util/interp.hpp"

#include <algorithm>
#include <stdexcept>

namespace comet::util {

LinearTable::LinearTable(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  if (x_.size() != y_.size()) {
    throw std::invalid_argument("LinearTable: size mismatch");
  }
  if (x_.size() < 2) {
    throw std::invalid_argument("LinearTable: need at least two points");
  }
  for (std::size_t i = 1; i < x_.size(); ++i) {
    if (!(x_[i] > x_[i - 1])) {
      throw std::invalid_argument("LinearTable: x must be strictly increasing");
    }
  }
}

double LinearTable::operator()(double x) const {
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t i = static_cast<std::size_t>(it - x_.begin());
  return lerp(x_[i - 1], y_[i - 1], x_[i], y_[i], x);
}

double LinearTable::inverse(double y_level) const {
  for (std::size_t i = 1; i < x_.size(); ++i) {
    const double ylo = y_[i - 1];
    const double yhi = y_[i];
    if ((ylo <= y_level && y_level <= yhi) ||
        (yhi <= y_level && y_level <= ylo)) {
      if (yhi == ylo) return x_[i - 1];
      return lerp(ylo, x_[i - 1], yhi, x_[i], y_level);
    }
  }
  return x_.back();
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n < 2) throw std::invalid_argument("linspace: need n >= 2");
  std::vector<double> v(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = lo + step * static_cast<double>(i);
  }
  v.back() = hi;
  return v;
}

}  // namespace comet::util
