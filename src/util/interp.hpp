#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

/// Small numeric helpers: linear interpolation over tabulated data and a
/// fixed-step RK4 integrator. These back the material dispersion tables and
/// the transient thermal model.
namespace comet::util {

/// A strictly-increasing (x, y) table with linear interpolation and flat
/// extrapolation beyond the ends. Throws std::invalid_argument on
/// construction if x is not strictly increasing or sizes mismatch.
class LinearTable {
 public:
  LinearTable(std::vector<double> x, std::vector<double> y);

  /// Interpolated value at x (clamped to the table range).
  double operator()(double x) const;

  /// First x whose y crosses the given level going upward, or the last x if
  /// never crossed. Requires a (weakly) monotone table for a meaningful
  /// answer; used to invert latency/temperature curves.
  double inverse(double y_level) const;

  std::size_t size() const { return x_.size(); }
  std::span<const double> xs() const { return x_; }
  std::span<const double> ys() const { return y_; }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
};

/// Scalar linear interpolation between two points.
inline double lerp(double x0, double y0, double x1, double y1, double x) {
  if (x1 == x0) return y0;
  return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
}

/// Classic fixed-step RK4 for dy/dt = f(t, y). Returns y(t0 + n*dt).
/// `f` is any callable double(double t, double y).
template <typename F>
double rk4(F&& f, double y0, double t0, double dt, std::size_t steps) {
  double y = y0;
  double t = t0;
  for (std::size_t i = 0; i < steps; ++i) {
    const double k1 = f(t, y);
    const double k2 = f(t + dt / 2, y + dt / 2 * k1);
    const double k3 = f(t + dt / 2, y + dt / 2 * k2);
    const double k4 = f(t + dt, y + dt * k3);
    y += dt / 6 * (k1 + 2 * k2 + 2 * k3 + k4);
    t += dt;
  }
  return y;
}

/// Evenly spaced grid of n points covering [lo, hi] inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

}  // namespace comet::util
