#include "core/comet_memory.hpp"

#include <stdexcept>

#include "materials/pcm_material.hpp"
#include "util/units.hpp"

namespace comet::core {
namespace {

materials::MlcLevelTable build_table(const CometConfig& config,
                                     const photonics::GstCell& optics,
                                     const materials::PcmThermalModel& thermal,
                                     materials::ProgrammingMode mode) {
  return materials::MlcLevelTable::build(config.bits_per_cell, mode, thermal,
                                         optics.transmission_curve());
}

}  // namespace

CometMemory::CometMemory(const CometConfig& config,
                         materials::ProgrammingMode mode)
    : config_(config),
      cell_optics_(materials::PcmMaterial::get(materials::Pcm::kGst),
                   photonics::GstCellGeometry::paper()),
      thermal_(materials::GstThermalCalibration::calibrated()),
      table_(build_table(config, cell_optics_, thermal_, mode)),
      lut_(config, photonics::LossParameters::paper()),
      mapper_(config) {
  config_.validate();
  const int total_banks = config_.channels * config_.banks;
  banks_.reserve(static_cast<std::size_t>(total_banks));
  for (int i = 0; i < total_banks; ++i) {
    banks_.push_back(std::make_unique<Bank>(
        config_, &table_, &lut_, photonics::LossParameters::paper()));
  }
}

Bank& CometMemory::bank(int channel, int bank_index) {
  if (channel < 0 || channel >= config_.channels || bank_index < 0 ||
      bank_index >= config_.banks) {
    throw std::out_of_range("CometMemory::bank: out of range");
  }
  return *banks_[static_cast<std::size_t>(channel) * config_.banks +
                 static_cast<std::size_t>(bank_index)];
}

std::vector<int> CometMemory::pack_levels(std::span<const std::uint8_t> bytes,
                                          int bits_per_cell) {
  if (bits_per_cell != 1 && bits_per_cell != 2 && bits_per_cell != 4) {
    throw std::invalid_argument("pack_levels: bits must divide 8");
  }
  const int cells_per_byte = 8 / bits_per_cell;
  const int mask = (1 << bits_per_cell) - 1;
  std::vector<int> levels;
  levels.reserve(bytes.size() * static_cast<std::size_t>(cells_per_byte));
  for (const std::uint8_t byte : bytes) {
    for (int c = 0; c < cells_per_byte; ++c) {
      levels.push_back((byte >> (c * bits_per_cell)) & mask);
    }
  }
  return levels;
}

void CometMemory::unpack_levels(std::span<const int> levels,
                                int bits_per_cell,
                                std::span<std::uint8_t> out) {
  if (bits_per_cell != 1 && bits_per_cell != 2 && bits_per_cell != 4) {
    throw std::invalid_argument("unpack_levels: bits must divide 8");
  }
  const int cells_per_byte = 8 / bits_per_cell;
  if (levels.size() != out.size() * static_cast<std::size_t>(cells_per_byte)) {
    throw std::invalid_argument("unpack_levels: size mismatch");
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    int byte = 0;
    for (int c = 0; c < cells_per_byte; ++c) {
      byte |= levels[i * cells_per_byte + static_cast<std::size_t>(c)]
              << (c * bits_per_cell);
    }
    out[i] = static_cast<std::uint8_t>(byte);
  }
}

LineAccessResult CometMemory::write_line(std::uint64_t address,
                                         std::span<const std::uint8_t> data) {
  if (data.size() != config_.line_bytes()) {
    throw std::invalid_argument("write_line: data must be one line");
  }
  if (address % config_.line_bytes() != 0) {
    throw std::invalid_argument("write_line: unaligned address");
  }
  const FlatAddress flat = mapper_.decode(address);
  const MappedAddress mapped = mapper_.map(flat);
  const auto levels = pack_levels(data, config_.bits_per_cell);
  auto& target = bank(flat.channel, flat.bank);
  const auto row = target.write_row(mapped.subarray_id,
                                    static_cast<int>(mapped.subarray_row),
                                    levels);
  return LineAccessResult{
      .latency_ns = row.latency_ns + config_.interface_ns +
                    config_.burst_ns * config_.burst_length,
      .energy_pj = row.energy_pj,
      .correct = true};
}

LineAccessResult CometMemory::read_line(std::uint64_t address,
                                        std::span<std::uint8_t> out) {
  if (out.size() != config_.line_bytes()) {
    throw std::invalid_argument("read_line: out must be one line");
  }
  if (address % config_.line_bytes() != 0) {
    throw std::invalid_argument("read_line: unaligned address");
  }
  const FlatAddress flat = mapper_.decode(address);
  const MappedAddress mapped = mapper_.map(flat);
  auto& target = bank(flat.channel, flat.bank);
  const auto row = target.read_row(mapped.subarray_id,
                                   static_cast<int>(mapped.subarray_row));
  unpack_levels(row.levels, config_.bits_per_cell, out);
  return LineAccessResult{
      .latency_ns = row.latency_ns + config_.interface_ns +
                    config_.burst_ns * config_.burst_length,
      .energy_pj = row.energy_pj,
      .correct = row.correct};
}

memsim::DeviceModel CometMemory::device_model(
    const CometConfig& config, const photonics::LossParameters& losses,
    bool serialize_subarray_switch, bool serialize_erase) {
  config.validate();
  memsim::DeviceModel model;
  model.name = "COMET-" + std::to_string(config.bits_per_cell) + "b";
  model.capacity_bytes = config.capacity_bytes();

  auto& t = model.timing;
  t.channels = config.channels;
  t.banks_per_channel = config.banks;
  t.line_bytes = static_cast<std::uint32_t>(config.line_bytes());
  // Every bank owns an MDM mode of the link: banks serve whole lines
  // independently (Section III.C's MDM-parallel bank access).
  t.line_striped_across_banks = false;
  t.accesses_per_line = 1;
  t.read_occupancy_ps =
      util::ns_to_ps(config.mr_tuning_ns + config.read_ns);
  t.write_occupancy_ps =
      util::ns_to_ps(config.mr_tuning_ns + config.max_write_ns);
  // Erase-before-write is hidden by DyPhase-style background pre-resets
  // of invalidated rows ([19], cited by the paper): the controller keeps
  // a pool of erased rows, so the 210 ns erase stays off both the
  // latency path and the steady-state bank occupancy. The ablation bench
  // re-serializes it to quantify the assumption.
  t.write_tail_ps = serialize_erase ? util::ns_to_ps(config.erase_ns) : 0;
  t.burst_ps = util::ns_to_ps(config.burst_ns * config.burst_length);
  t.interface_ps = util::ns_to_ps(config.interface_ns);
  t.has_row_buffer = false;
  t.refresh_interval_ps = 0;  // non-volatile: the headline DRAM win
  // One subarray spans M_r rows; with line-per-row filling and
  // channel/bank interleave the subarray region covers:
  t.region_size_bytes = static_cast<std::uint64_t>(config.rows_per_subarray) *
                        config.line_bytes() * config.channels * config.banks;
  t.region_switch_ps = serialize_subarray_switch
                           ? util::ns_to_ps(config.gst_switch_ns)
                           : 0;
  t.queue_depth = 128;

  // Dynamic energy from the device physics (calibrated level table).
  const CometMemory reference(config);
  const auto& levels = reference.level_table().levels();
  double mean_write_pj = 0.0;
  for (const auto& level : levels) mean_write_pj += level.write_energy_pj;
  mean_write_pj /= static_cast<double>(levels.size());
  const double reset_pj = reference.level_table().reset().energy_pj;
  const double line_bits = static_cast<double>(config.line_bytes()) * 8.0;
  const double cells_per_line = line_bits / config.bits_per_cell;

  auto& e = model.energy;
  // Read pulse: 1 mW per wavelength for the read duration.
  e.read_pj_per_bit =
      cells_per_line * losses.max_power_at_cell_mw * config.read_ns /
      line_bits;
  e.write_pj_per_bit = cells_per_line * (reset_pj + mean_write_pj) / line_bits;
  e.background_power_w = CometPowerModel(config, losses).breakdown().total_w();
  return model;
}

}  // namespace comet::core
