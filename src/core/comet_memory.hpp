#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/address_mapping.hpp"
#include "core/bank.hpp"
#include "core/comet_config.hpp"
#include "core/power_model.hpp"
#include "memsim/device.hpp"
#include "photonics/gst_cell.hpp"

/// The COMET main memory (paper Fig. 5e): the full functional stack from
/// byte addresses down to GST crystalline fractions, plus the timing/
/// energy descriptor used by the trace-driven simulator.
///
/// The functional model is end-to-end honest: a cache line is packed
/// into b-bit levels, programmed into real OPCM cells through the
/// calibrated thermal model, and read back through the row-loss /
/// LUT-gain / classification chain — so data-integrity studies (drift,
/// crosstalk injection) exercise the same machinery the paper's
/// reliability arguments rest on.
namespace comet::core {

/// Latency/energy/integrity summary of one line access.
struct LineAccessResult {
  double latency_ns = 0.0;
  double energy_pj = 0.0;
  bool correct = true;  ///< Read only: data classified without error.
};

class CometMemory {
 public:
  explicit CometMemory(
      const CometConfig& config = CometConfig::comet_4b(),
      materials::ProgrammingMode mode =
          materials::ProgrammingMode::kAmorphousReset);

  const CometConfig& config() const { return config_; }
  const materials::MlcLevelTable& level_table() const { return table_; }
  const GainLut& gain_lut() const { return lut_; }

  /// Writes one cache line; `data` must be exactly line_bytes() long and
  /// `address` line-aligned.
  LineAccessResult write_line(std::uint64_t address,
                              std::span<const std::uint8_t> data);

  /// Reads one cache line back through the interface decision chain.
  LineAccessResult read_line(std::uint64_t address,
                             std::span<std::uint8_t> out);

  /// Packs bytes into b-bit level codes (b in {1, 2, 4} divides 8).
  static std::vector<int> pack_levels(std::span<const std::uint8_t> bytes,
                                      int bits_per_cell);

  /// Inverse of pack_levels().
  static void unpack_levels(std::span<const int> levels, int bits_per_cell,
                            std::span<std::uint8_t> out);

  /// Direct bank access for fault injection (channel-major indexing).
  Bank& bank(int channel, int bank_index);

  /// Timing/energy descriptor for the trace-driven simulator.
  /// `serialize_subarray_switch` charges the 100 ns GST steering on every
  /// subarray change instead of hiding it under the 105 ns interface
  /// pipeline (the default, speculative-steering assumption).
  /// `serialize_erase` keeps the 210 ns pre-write erase on the bank
  /// instead of hiding it behind DyPhase-style background pre-resets
  /// ([19]). The ablation bench sweeps both assumptions.
  static memsim::DeviceModel device_model(
      const CometConfig& config,
      const photonics::LossParameters& losses,
      bool serialize_subarray_switch = false,
      bool serialize_erase = false);

 private:
  CometConfig config_;
  photonics::GstCell cell_optics_;
  materials::PcmThermalModel thermal_;
  materials::MlcLevelTable table_;
  GainLut lut_;
  AddressMapper mapper_;
  std::vector<std::unique_ptr<Bank>> banks_;  // channels x banks
};

}  // namespace comet::core
