#include "core/power_model.hpp"

#include <stdexcept>

#include "photonics/laser.hpp"
#include "photonics/waveguide.hpp"
#include "util/units.hpp"

namespace comet::core {

double PowerBreakdown::total_w() const {
  double total = 0.0;
  for (const auto& c : components) total += c.watts;
  return total;
}

double PowerBreakdown::component_w(const std::string& name) const {
  for (const auto& c : components) {
    if (c.name == name) return c.watts;
  }
  throw std::invalid_argument("PowerBreakdown: unknown component " + name);
}

CometPowerModel::CometPowerModel(const CometConfig& config,
                                 const photonics::LossParameters& losses)
    : config_(config), losses_(losses) {
  config_.validate();
}

photonics::LossBudget CometPowerModel::launch_path_budget() const {
  photonics::LossBudget budget;
  budget.add("fiber coupler", losses_.coupling_loss_db);
  budget.add("GST subarray switch", losses_.gst_switch_loss_db);
  // ~2 cm of on-chip routing from the coupler to the farthest bank.
  budget.add("waveguide propagation", losses_.propagation_loss_db_per_cm,
             2.0);
  budget.add("waveguide bends", losses_.bending_loss_db_per_90deg, 8.0);
  // The accessed row's EO-tuned MR drops the wavelength into the cell.
  budget.add("EO MR drop", losses_.eo_mr_drop_loss_db);
  // Highest-order MDM mode of the B-degree link.
  const photonics::MdmLink link(config_.banks);
  budget.add("MDM worst mode", link.worst_mode_excess_loss_db());
  // Design margin.
  budget.add("margin", 1.0);
  return budget;
}

double CometPowerModel::laser_power_w() const {
  const photonics::Laser laser(losses_.laser_wall_plug_efficiency,
                               config_.wavelengths());
  return laser.electrical_power_w(losses_.max_power_at_cell_mw,
                                  launch_path_budget().total_db());
}

double CometPowerModel::soa_power_w() const {
  return static_cast<double>(config_.active_soas()) *
         losses_.intra_subarray_soa_power_mw * 1e-3;
}

double CometPowerModel::eo_tuning_power_w() const {
  // 1 nm worst-case resonance shift per tuned MR.
  constexpr double kShiftNm = 1.0;
  return static_cast<double>(config_.tuned_mrs_per_access()) *
         losses_.eo_tuning_power_uw_per_nm * 1e-6 * kShiftNm;
}

double CometPowerModel::interface_power_w() const {
  // Per-wavelength modulator driver + receiver (TIA) at the electrical
  // interface, plus the fixed controller-side electronics (LUT lookups
  // are explicitly excluded by the paper as controller-side overhead).
  constexpr double kPerWavelengthMw = 10.0;
  constexpr double kControllerW = 0.5;
  return config_.wavelengths() * kPerWavelengthMw * 1e-3 + kControllerW;
}

PowerBreakdown CometPowerModel::breakdown() const {
  PowerBreakdown stack;
  stack.label = "COMET-" + std::to_string(config_.bits_per_cell) + "b";
  stack.components = {
      {"laser", laser_power_w()},
      {"soa", soa_power_w()},
      {"eo_tuning", eo_tuning_power_w()},
      {"interface", interface_power_w()},
  };
  return stack;
}

}  // namespace comet::core
