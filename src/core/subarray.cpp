#include "core/subarray.hpp"

#include <algorithm>
#include <stdexcept>

namespace comet::core {

Subarray::Subarray(const CometConfig& config,
                   const materials::MlcLevelTable* table, const GainLut* lut)
    : config_(config), table_(table), lut_(lut) {
  if (table_ == nullptr || lut_ == nullptr) {
    throw std::invalid_argument("Subarray: null table or LUT");
  }
  cells_.reserve(static_cast<std::size_t>(rows()) * cols());
  for (int i = 0; i < rows() * cols(); ++i) {
    cells_.emplace_back(table_);
  }
}

OpcmCell& Subarray::cell(int row, int col) {
  if (row < 0 || row >= rows() || col < 0 || col >= cols()) {
    throw std::out_of_range("Subarray::cell: out of range");
  }
  return cells_[static_cast<std::size_t>(row) * cols() +
                static_cast<std::size_t>(col)];
}

const OpcmCell& Subarray::cell(int row, int col) const {
  return const_cast<Subarray*>(this)->cell(row, col);
}

RowOpResult Subarray::write_row(int row, std::span<const int> levels) {
  if (static_cast<int>(levels.size()) != cols()) {
    throw std::invalid_argument("Subarray::write_row: need M_c levels");
  }
  RowOpResult result;
  result.latency_ns = config_.mr_tuning_ns;
  double slowest = 0.0;
  for (int col = 0; col < cols(); ++col) {
    const auto op = cell(row, col).program(levels[static_cast<size_t>(col)]);
    slowest = std::max(slowest, op.latency_ns);
    result.energy_pj += op.energy_pj;
  }
  // Columns program in parallel on their own wavelengths; the row is
  // held open for the slowest level.
  result.latency_ns += slowest;
  return result;
}

RowOpResult Subarray::read_row(int row) const {
  RowOpResult result;
  result.latency_ns = config_.mr_tuning_ns + config_.read_ns;
  result.levels.reserve(static_cast<std::size_t>(cols()));
  const double loss_db = lut_->row_loss_db(row);
  const double gain_db = lut_->gain_db_for_row(row);
  for (int col = 0; col < cols(); ++col) {
    const auto& c = cell(row, col);
    const int seen = c.read(loss_db, gain_db);
    result.levels.push_back(seen);
    if (seen != c.stored_level()) result.correct = false;
  }
  // Read pulse energy: 1 mW per wavelength for the read duration.
  result.energy_pj += cols() * 1.0 /*mW*/ * config_.read_ns;
  return result;
}

}  // namespace comet::core
