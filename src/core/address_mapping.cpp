#include "core/address_mapping.hpp"

#include <stdexcept>

namespace comet::core {

AddressMapper::AddressMapper(const CometConfig& config) : config_(config) {
  config_.validate();
}

MappedAddress AddressMapper::map(const FlatAddress& flat) const {
  const auto mr = static_cast<std::uint64_t>(config_.rows_per_subarray);
  const auto mc = static_cast<std::uint64_t>(config_.cols_per_subarray);
  const auto grid = static_cast<std::uint64_t>(config_.subarray_grid_dim());

  if (flat.row >= config_.rows_per_bank()) {
    throw std::out_of_range("AddressMapper::map: row out of range");
  }
  const std::uint64_t id1 = flat.row / mr;    // eq. (2)
  const std::uint64_t id2 = flat.column / mc; // eq. (3)

  MappedAddress m;
  m.channel = flat.channel;
  m.bank = flat.bank;
  m.subarray_id = id2 * grid + id1;           // eq. (4)
  m.subarray_row = flat.row % mr;             // eq. (5)
  m.subarray_col = flat.column % mc;          // eq. (6)
  return m;
}

FlatAddress AddressMapper::unmap(const MappedAddress& mapped) const {
  const auto mr = static_cast<std::uint64_t>(config_.rows_per_subarray);

  // COMET fixes S_c = 1 (M_c = N_c, Section III.E), so ID2 of eq. (3) is
  // structurally zero and eq. (4) degenerates to SubarrayID = ID1; the
  // inverse therefore recovers ID1 directly. (The paper's grid form of
  // eq. (4) is not invertible for ID1 >= sqrt(S_r) otherwise.)
  const std::uint64_t id1 = mapped.subarray_id;

  FlatAddress flat;
  flat.channel = mapped.channel;
  flat.bank = mapped.bank;
  flat.row = id1 * mr + mapped.subarray_row;
  flat.column = mapped.subarray_col;
  return flat;
}

FlatAddress AddressMapper::decode(std::uint64_t byte_address) const {
  const std::uint64_t line = config_.line_bytes();
  const auto channels = static_cast<std::uint64_t>(config_.channels);
  const auto banks = static_cast<std::uint64_t>(config_.banks);
  const auto mc = static_cast<std::uint64_t>(config_.cols_per_subarray);
  const auto bits = static_cast<std::uint64_t>(config_.bits_per_cell);

  const std::uint64_t line_index = byte_address / line;
  FlatAddress flat;
  flat.channel = static_cast<int>(line_index % channels);
  const std::uint64_t in_channel = line_index / channels;
  flat.bank = static_cast<int>(in_channel % banks);
  const std::uint64_t in_bank = in_channel / banks;

  // One row stores M_c cells x b bits; lines fill a row before moving on.
  const std::uint64_t row_bits = mc * bits;
  const std::uint64_t lines_per_row = row_bits / (line * 8) == 0
                                          ? 1
                                          : row_bits / (line * 8);
  flat.row = in_bank / lines_per_row;
  const std::uint64_t line_in_row = in_bank % lines_per_row;
  flat.column = line_in_row * (line * 8 / bits) % mc;
  return flat;
}

std::uint64_t AddressMapper::encode(const FlatAddress& flat) const {
  const std::uint64_t line = config_.line_bytes();
  const auto channels = static_cast<std::uint64_t>(config_.channels);
  const auto banks = static_cast<std::uint64_t>(config_.banks);
  const auto mc = static_cast<std::uint64_t>(config_.cols_per_subarray);
  const auto bits = static_cast<std::uint64_t>(config_.bits_per_cell);

  const std::uint64_t row_bits = mc * bits;
  const std::uint64_t lines_per_row =
      row_bits / (line * 8) == 0 ? 1 : row_bits / (line * 8);
  const std::uint64_t cells_per_line = line * 8 / bits;
  const std::uint64_t line_in_row =
      (flat.column % mc) / (cells_per_line == 0 ? 1 : cells_per_line);

  const std::uint64_t in_bank = flat.row * lines_per_row + line_in_row;
  const std::uint64_t in_channel =
      in_bank * banks + static_cast<std::uint64_t>(flat.bank);
  const std::uint64_t line_index =
      in_channel * channels + static_cast<std::uint64_t>(flat.channel);
  return line_index * line;
}

}  // namespace comet::core
