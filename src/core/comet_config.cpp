#include "core/comet_config.hpp"

#include <cmath>
#include <stdexcept>

namespace comet::core {

CometConfig CometConfig::comet_1b() {
  CometConfig c;
  c.cols_per_subarray = 1024;
  c.bits_per_cell = 1;
  return c;
}

CometConfig CometConfig::comet_2b() {
  CometConfig c;
  c.cols_per_subarray = 512;
  c.bits_per_cell = 2;
  return c;
}

CometConfig CometConfig::comet_4b() { return CometConfig{}; }

std::uint64_t CometConfig::rows_per_bank() const {
  return static_cast<std::uint64_t>(subarrays) * rows_per_subarray;
}

std::uint64_t CometConfig::cells_per_bank() const {
  return rows_per_bank() * static_cast<std::uint64_t>(cols_per_subarray);
}

std::uint64_t CometConfig::bits_per_chip() const {
  return static_cast<std::uint64_t>(banks) * cells_per_bank() *
         static_cast<std::uint64_t>(bits_per_cell);
}

std::uint64_t CometConfig::capacity_bytes() const {
  return bits_per_chip() / 8 * static_cast<std::uint64_t>(channels);
}

std::uint64_t CometConfig::line_bytes() const {
  return static_cast<std::uint64_t>(bus_width_bits) * burst_length / 8;
}

std::uint64_t CometConfig::active_soas() const {
  return static_cast<std::uint64_t>(banks) * rows_per_subarray *
         cols_per_subarray / static_cast<std::uint64_t>(rows_per_soa);
}

std::uint64_t CometConfig::tuned_mrs_per_access() const {
  return static_cast<std::uint64_t>(banks) * 2 *
         static_cast<std::uint64_t>(cols_per_subarray);
}

int CometConfig::subarray_grid_dim() const {
  return static_cast<int>(std::lround(std::sqrt(double(subarrays))));
}

void CometConfig::validate() const {
  if (banks < 1 || subarrays < 1 || rows_per_subarray < 1 ||
      cols_per_subarray < 1 || channels < 1) {
    throw std::invalid_argument("CometConfig: non-positive geometry");
  }
  if (bits_per_cell < 1 || bits_per_cell > 5) {
    throw std::invalid_argument("CometConfig: bits_per_cell outside [1,5]");
  }
  const int dim = subarray_grid_dim();
  if (dim * dim != subarrays) {
    throw std::invalid_argument("CometConfig: S_r must be a perfect square");
  }
  if (rows_per_soa < 1) {
    throw std::invalid_argument("CometConfig: rows_per_soa < 1");
  }
  if (bus_width_bits < 8 || burst_length < 1) {
    throw std::invalid_argument("CometConfig: bad bus shape");
  }
}

}  // namespace comet::core
