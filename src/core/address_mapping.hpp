#pragma once

#include <cstdint>

#include "core/comet_config.hpp"

/// COMET address mapping (paper Section III.F, equations 1–6).
///
/// The memory controller's flat {Channel, Row, Bank, Column} view is
/// mapped onto {Channel, SubarrayID, SubarrayROW, Bank, SubarrayCOL}:
///
///   ID1          = int(RowID / M_r)                       (2)
///   ID2          = int(ColumnID / M_c)                    (3)
///   SubarrayID   = ID2 * sqrt(S_r) + ID1                  (4)
///   SubarrayROW  = RowID mod M_r                          (5)
///   SubarrayCOL  = ColumnID mod M_c                       (6)
///
/// With S_c = 1 (M_c = N_c) ID2 is always 0 in the shipped configs, but
/// the mapping is implemented in full generality so subarray-column
/// splits can be explored.
namespace comet::core {

/// Controller-side flat coordinates.
struct FlatAddress {
  int channel = 0;
  int bank = 0;
  std::uint64_t row = 0;     ///< RowID in [0, N_r).
  std::uint64_t column = 0;  ///< ColumnID in [0, N_c).
};

/// Device-side physical coordinates.
struct MappedAddress {
  int channel = 0;
  int bank = 0;
  std::uint64_t subarray_id = 0;
  std::uint64_t subarray_row = 0;
  std::uint64_t subarray_col = 0;
};

class AddressMapper {
 public:
  explicit AddressMapper(const CometConfig& config);

  /// Equations (2)–(6).
  MappedAddress map(const FlatAddress& flat) const;

  /// Inverse of map(); map(unmap(m)) == m for valid coordinates.
  FlatAddress unmap(const MappedAddress& mapped) const;

  /// Decodes a physical byte address into flat coordinates: cache lines
  /// interleave over channels, then banks; within a bank the address
  /// fills columns before rows (a row of M_c cells holds M_c * b bits).
  FlatAddress decode(std::uint64_t byte_address) const;

  /// Inverse of decode() back to a byte address.
  std::uint64_t encode(const FlatAddress& flat) const;

  const CometConfig& config() const { return config_; }

 private:
  CometConfig config_;
};

}  // namespace comet::core
