#include "core/bank.hpp"

#include <stdexcept>

namespace comet::core {

Bank::Bank(const CometConfig& config, const materials::MlcLevelTable* table,
           const GainLut* lut, const photonics::LossParameters& losses)
    : config_(config), table_(table), lut_(lut), switch_(losses) {}

Subarray& Bank::subarray(std::uint64_t subarray_id) {
  if (subarray_id >= static_cast<std::uint64_t>(config_.subarrays)) {
    throw std::out_of_range("Bank: subarray id out of range");
  }
  auto it = subarrays_.find(subarray_id);
  if (it == subarrays_.end()) {
    it = subarrays_
             .emplace(subarray_id,
                      std::make_unique<Subarray>(config_, table_, lut_))
             .first;
  }
  return *it->second;
}

double Bank::steer_to(std::uint64_t subarray_id) {
  if (coupled_ == static_cast<std::int64_t>(subarray_id)) return 0.0;
  coupled_ = static_cast<std::int64_t>(subarray_id);
  // Decouple the old subarray's switch and couple the new one; the two
  // GST transitions overlap, so one transition latency is charged.
  return photonics::GstSwitch::transition_latency_ns();
}

RowOpResult Bank::write_row(std::uint64_t subarray_id, int row,
                            std::span<const int> levels) {
  const double steer_ns = steer_to(subarray_id);
  auto result = subarray(subarray_id).write_row(row, levels);
  result.latency_ns += steer_ns;
  result.energy_pj += steer_ns > 0.0 ? switch_.transition_energy_pj() : 0.0;
  return result;
}

RowOpResult Bank::read_row(std::uint64_t subarray_id, int row) {
  const double steer_ns = steer_to(subarray_id);
  auto result = subarray(subarray_id).read_row(row);
  result.latency_ns += steer_ns;
  result.energy_pj += steer_ns > 0.0 ? switch_.transition_energy_pj() : 0.0;
  return result;
}

}  // namespace comet::core
