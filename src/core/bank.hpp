#pragma once

#include <memory>
#include <span>
#include <unordered_map>

#include "core/subarray.hpp"
#include "photonics/gst_switch.hpp"

/// One COMET bank (paper Fig. 5d): S_r subarrays behind GST waveguide
/// switches that steer the bank's wavelength set to exactly one subarray
/// at a time. Steering to a *different* subarray costs the 100 ns GST
/// transition; repeated accesses to the currently-coupled subarray do
/// not. Subarray cell storage is allocated lazily — an 8 GB bank holds
/// millions of cells, and functional studies touch only a few subarrays.
namespace comet::core {

class Bank {
 public:
  Bank(const CometConfig& config, const materials::MlcLevelTable* table,
       const GainLut* lut, const photonics::LossParameters& losses);

  /// Programs a full row of a subarray. Latency includes any GST switch
  /// steering transition.
  RowOpResult write_row(std::uint64_t subarray_id, int row,
                        std::span<const int> levels);

  /// Reads a full row of a subarray.
  RowOpResult read_row(std::uint64_t subarray_id, int row);

  /// Subarray currently coupled to the wavelengths (-1 before first use).
  std::int64_t coupled_subarray() const { return coupled_; }

  /// Number of subarrays materialized so far.
  std::size_t materialized_subarrays() const { return subarrays_.size(); }

  /// Direct subarray access for fault injection (materializes it).
  Subarray& subarray(std::uint64_t subarray_id);

 private:
  double steer_to(std::uint64_t subarray_id);

  CometConfig config_;
  const materials::MlcLevelTable* table_;
  const GainLut* lut_;
  photonics::GstSwitch switch_;
  std::int64_t coupled_ = -1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Subarray>> subarrays_;
};

}  // namespace comet::core
