#include "core/opcm_cell.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/units.hpp"

namespace comet::core {

OpcmCell::OpcmCell(const materials::MlcLevelTable* table) : table_(table) {
  if (table_ == nullptr) {
    throw std::invalid_argument("OpcmCell: null level table");
  }
  // Reset state: level 0 in amorphous-reset mode has fraction 0; in
  // crystalline-reset mode, levels()[0] still records its fraction.
  fraction_ = table_->levels().front().crystalline_fraction;
}

CellOpResult OpcmCell::program(int level) {
  const auto& levels = table_->levels();
  if (level < 0 || level >= static_cast<int>(levels.size())) {
    throw std::out_of_range("OpcmCell::program: level out of range");
  }
  const auto& target = levels[static_cast<std::size_t>(level)];
  level_ = level;
  fraction_ = target.crystalline_fraction;
  return CellOpResult{
      .latency_ns = table_->reset().latency_ns + target.write_latency_ns,
      .energy_pj = table_->reset().energy_pj + target.write_energy_pj,
  };
}

double OpcmCell::transmission() const {
  // Drift moves the fraction off the programmed point; interpolate the
  // transmission between the surrounding level entries.
  const auto& levels = table_->levels();
  const auto& nominal = levels[static_cast<std::size_t>(level_)];
  if (fraction_ == nominal.crystalline_fraction) return nominal.transmission;
  // Piecewise-linear over the table's (fraction, transmission) pairs.
  for (std::size_t i = 1; i < levels.size(); ++i) {
    if (fraction_ <= levels[i].crystalline_fraction) {
      const auto& lo = levels[i - 1];
      const auto& hi = levels[i];
      const double span = hi.crystalline_fraction - lo.crystalline_fraction;
      if (span <= 0.0) return lo.transmission;
      const double w = (fraction_ - lo.crystalline_fraction) / span;
      return lo.transmission + w * (hi.transmission - lo.transmission);
    }
  }
  return levels.back().transmission;
}

int OpcmCell::read(double loss_db, double gain_db) const {
  const double net_db = gain_db - loss_db;
  const double seen =
      transmission() * util::db_to_ratio(net_db);
  return table_->classify(seen);
}

void OpcmCell::drift(double delta_fraction) {
  fraction_ = std::clamp(fraction_ + delta_fraction, 0.0, 1.0);
}

}  // namespace comet::core
