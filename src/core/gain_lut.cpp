#include "core/gain_lut.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace comet::core {

GainLut::GainLut(const CometConfig& config,
                 const photonics::LossParameters& losses)
    : config_(config), losses_(losses) {
  config_.validate();
  const double relative_spacing =
      1.0 / static_cast<double>(1 << config_.bits_per_cell);
  tolerance_db_ = -util::ratio_to_db(1.0 - relative_spacing);
  rows_per_step_ = tolerance_db_ / losses_.eo_mr_through_loss_db;

  // Entries cover one SOA span (46 rows); the trim repeats every span.
  const int span = config_.rows_per_soa;
  int entries = static_cast<int>(std::floor(span / rows_per_step_));
  if (entries < 1) entries = 1;
  if (entries > span) entries = span;

  // Each entry's gain is the mean loss of the rows it serves: centred
  // compensation halves the worst-case residual relative to end-of-step
  // compensation, which is what keeps the residual inside the b-bit
  // tolerance for every shipped configuration.
  gains_db_.resize(static_cast<std::size_t>(entries));
  const double step_rows = static_cast<double>(span) / entries;
  std::vector<double> sums(static_cast<std::size_t>(entries), 0.0);
  std::vector<int> counts(static_cast<std::size_t>(entries), 0);
  for (int r = 0; r < span; ++r) {
    int e = static_cast<int>(r / step_rows);
    if (e >= entries) e = entries - 1;
    sums[static_cast<std::size_t>(e)] +=
        r * losses_.eo_mr_through_loss_db;
    ++counts[static_cast<std::size_t>(e)];
  }
  for (int e = 0; e < entries; ++e) {
    const auto i = static_cast<std::size_t>(e);
    gains_db_[i] = counts[i] > 0 ? sums[i] / counts[i] : 0.0;
  }
}

double GainLut::row_loss_db(int row) const {
  if (row < 0 || row >= config_.rows_per_subarray) {
    throw std::out_of_range("GainLut: row out of range");
  }
  return static_cast<double>(row % config_.rows_per_soa) *
         losses_.eo_mr_through_loss_db;
}

int GainLut::entry_for_row(int row) const {
  if (row < 0 || row >= config_.rows_per_subarray) {
    throw std::out_of_range("GainLut: row out of range");
  }
  const int in_span = row % config_.rows_per_soa;
  const double step_rows =
      static_cast<double>(config_.rows_per_soa) / entries();
  int entry = static_cast<int>(in_span / step_rows);
  if (entry >= entries()) entry = entries() - 1;
  return entry;
}

double GainLut::gain_db_for_row(int row) const {
  return gains_db_[static_cast<std::size_t>(entry_for_row(row))];
}

}  // namespace comet::core
