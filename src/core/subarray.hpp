#pragma once

#include <span>
#include <vector>

#include "core/comet_config.hpp"
#include "core/gain_lut.hpp"
#include "core/opcm_cell.hpp"
#include "materials/mlc_levels.hpp"

/// One M_r x M_c OPCM subarray (paper Fig. 5c).
///
/// A row access EO-tunes the row's MRs (2 ns), then all M_c column
/// wavelengths operate on the row's cells in parallel: a write programs
/// every cell simultaneously (row latency = slowest level in the row),
/// a read launches the read pulse and classifies each column's
/// transmission at the interface after the row's accumulated MR through
/// loss and the LUT trim gain. Intra-subarray SOA stages every 46 rows
/// keep the residual loss within the level-spacing tolerance.
namespace comet::core {

/// Result of one row operation.
struct RowOpResult {
  double latency_ns = 0.0;
  double energy_pj = 0.0;
  std::vector<int> levels;  ///< Read only: classified levels per column.
  bool correct = true;      ///< Read only: matched the stored levels.
};

class Subarray {
 public:
  Subarray(const CometConfig& config,
           const materials::MlcLevelTable* table, const GainLut* lut);

  int rows() const { return config_.rows_per_subarray; }
  int cols() const { return config_.cols_per_subarray; }

  /// Programs a full row; `levels` must have M_c entries.
  RowOpResult write_row(int row, std::span<const int> levels);

  /// Reads a full row through the loss/gain chain.
  RowOpResult read_row(int row) const;

  /// Direct cell access for fault-injection studies.
  OpcmCell& cell(int row, int col);
  const OpcmCell& cell(int row, int col) const;

 private:
  CometConfig config_;
  const materials::MlcLevelTable* table_;
  const GainLut* lut_;
  std::vector<OpcmCell> cells_;  // row-major M_r x M_c
};

}  // namespace comet::core
