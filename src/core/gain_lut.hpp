#pragma once

#include <vector>

#include "core/comet_config.hpp"
#include "photonics/losses.hpp"

/// Row-loss-aware SOA gain look-up table (paper Sections III.C & IV.A).
///
/// A readout launched from subarray row r passes the EO-tuned access MRs
/// of every row between r and the subarray edge, each adding 0.33 dB of
/// through loss. Intra-subarray SOA stages reset the level every 46 rows;
/// *within* a 46-row span the interface SOA must apply a row-dependent
/// trim gain. Because a b-bit readout only tolerates
/// -10*log10(1 - 2^-b) dB of error (3.01 / 1.2 / 0.26 dB for b=1/2/4),
/// the trim must be refreshed every floor(tolerance / 0.33) rows — which
/// yields the paper's LUT sizes: 5 entries (b=1), 12 (b=2), 46 (b=4).
namespace comet::core {

class GainLut {
 public:
  GainLut(const CometConfig& config,
          const photonics::LossParameters& losses);

  /// Residual loss [dB] accumulated by a signal from row `row` to the
  /// nearest downstream SOA stage.
  double row_loss_db(int row) const;

  /// Trim gain [dB] the interface applies for the given row (quantized
  /// to the LUT entries).
  double gain_db_for_row(int row) const;

  /// LUT entry index used for the given row (the paper's
  /// ceil((rowID % 46) / step) selector).
  int entry_for_row(int row) const;

  /// Number of distinct LUT entries (paper: 5 / 12 / 46 for b=1/2/4).
  int entries() const { return static_cast<int>(gains_db_.size()); }

  /// Rows between gain refreshes = floor(tolerance / MR through loss).
  double rows_per_step() const { return rows_per_step_; }

  /// The b-bit readout loss tolerance [dB].
  double tolerance_db() const { return tolerance_db_; }

  const std::vector<double>& gains_db() const { return gains_db_; }

 private:
  CometConfig config_;
  photonics::LossParameters losses_;
  double tolerance_db_;
  double rows_per_step_;
  std::vector<double> gains_db_;
};

}  // namespace comet::core
