#pragma once

#include <string>
#include <vector>

#include "core/comet_config.hpp"
#include "photonics/losses.hpp"

/// COMET operating-power model (paper Section III.E, Figs. 7 & 8).
///
/// Four stacks make up the chip power at any instant of operation:
///
///  * laser      — off-chip comb laser: the per-wavelength optical power
///                 needed at the GST cells (Table I: 1 mW) multiplied
///                 back through the worst-case launch path loss and the
///                 20 % wall-plug efficiency, for all N_c wavelengths;
///  * SOA        — intra-subarray gain stages; only the accessed
///                 subarray's stages are enabled:
///                 (B x M_r x M_c / 46) x 1.4 mW;
///  * EO tuning  — carrier injection on the accessed row's MRs:
///                 B x 2 x M_c x P_EO;
///  * interface  — per-wavelength modulator/driver/receiver power plus
///                 the controller-side electronics.
///
/// The b = {1, 2, 4} sweep reproduces Fig. 7: halving M_c with rising b
/// cuts both the WDM degree (laser, interface) and the active-SOA count,
/// which is why COMET-4b is the chosen design point.
namespace comet::core {

/// One named component of a power stack [W].
struct PowerComponent {
  std::string name;
  double watts;
};

/// A named power stack (one bar of Fig. 7 / Fig. 8).
struct PowerBreakdown {
  std::string label;
  std::vector<PowerComponent> components;

  double total_w() const;
  double component_w(const std::string& name) const;
};

class CometPowerModel {
 public:
  CometPowerModel(const CometConfig& config,
                  const photonics::LossParameters& losses);

  /// Itemized worst-case laser-to-cell launch path loss [dB]. SOA spans
  /// inside the subarray are self-compensated (15.2 dB gain vs 46 x 0.33
  /// dB of row loss), so the budget carries only the uncompensated part.
  photonics::LossBudget launch_path_budget() const;

  double laser_power_w() const;
  double soa_power_w() const;
  double eo_tuning_power_w() const;
  double interface_power_w() const;

  /// The full stack (one Fig. 7 bar).
  PowerBreakdown breakdown() const;

  const CometConfig& config() const { return config_; }

 private:
  CometConfig config_;
  photonics::LossParameters losses_;
};

}  // namespace comet::core
