#pragma once

#include "materials/mlc_levels.hpp"

/// One OPCM multi-level cell (paper Fig. 5b): a GST element whose
/// crystalline fraction encodes b bits as one of 2^b transmission levels.
/// The cell is behavioural — programming uses the calibrated level table
/// (latency/energy per level) and readout classifies the stored
/// transmission after the caller-supplied path loss and trim gain, which
/// is exactly the decision the electrical interface makes.
namespace comet::core {

/// Latency/energy of one cell operation.
struct CellOpResult {
  double latency_ns = 0.0;
  double energy_pj = 0.0;
};

class OpcmCell {
 public:
  /// The cell references (not owns) a level table shared by its subarray.
  explicit OpcmCell(const materials::MlcLevelTable* table);

  /// Programs the cell to a level: reset pulse followed by the level's
  /// write pulse. Throws std::out_of_range for an invalid level.
  CellOpResult program(int level);

  /// Stored level index (reset state = 0 until programmed).
  int stored_level() const { return level_; }

  /// Crystalline fraction currently in the cell.
  double fraction() const { return fraction_; }

  /// Readout transmission of the stored state.
  double transmission() const;

  /// Classifies the stored level as seen through `loss_db` of path loss
  /// compensated by `gain_db` of SOA trim: the interface's decision.
  int read(double loss_db = 0.0, double gain_db = 0.0) const;

  /// Injects crystalline-fraction drift (thermo-optic crosstalk, ageing);
  /// clamped to [0, 1]. Used by corruption studies and fault injection.
  void drift(double delta_fraction);

 private:
  const materials::MlcLevelTable* table_;
  int level_ = 0;
  double fraction_ = 0.0;
};

}  // namespace comet::core
