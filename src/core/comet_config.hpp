#pragma once

#include <cstdint>

/// COMET architecture configuration (paper Sections III.C–III.F, IV.A,
/// Table II).
///
/// A COMET chip is B MDM-parallel banks of N_r x N_c OPCM cells at b
/// bits/cell. Each bank is split into S_r subarrays of M_r x M_c cells
/// (S_c = 1, i.e. M_c = N_c: the SOA-based loss mitigation lets a row
/// span the full column count). The paper's 8 GB evaluation point is
/// (B x S_r x M_r x M_c x b) = (4 x 4096 x 512 x 256 x 4).
///
/// Note on capacity: that geometry yields 8.59 Gbit ~ 1.07 GB per chip;
/// the paper nonetheless calls the system 8 GB. We model the stated
/// geometry per chip and reach 8 GB with 8 channels (see DESIGN.md,
/// "known paper inconsistencies").
namespace comet::core {

struct CometConfig {
  // --- Geometry.
  int banks = 4;              ///< B = MDM degree.
  int subarrays = 4096;       ///< S_r per bank (S_c = 1).
  int rows_per_subarray = 512;   ///< M_r.
  int cols_per_subarray = 256;   ///< M_c = N_c = WDM degree.
  int bits_per_cell = 4;      ///< b.
  int channels = 8;           ///< System channels (chips).

  // --- Table II timing [ns].
  double read_ns = 10.0;
  double max_write_ns = 170.0;
  double erase_ns = 210.0;
  double burst_ns = 1.0;
  double interface_ns = 105.0;
  double mr_tuning_ns = 2.0;       ///< EO row-access tuning [36].
  double gst_switch_ns = 100.0;    ///< Subarray steering switch [39].

  // --- Table II link shape.
  int bus_width_bits = 256;
  int burst_length = 4;

  // --- Loss-management layout (Section III.E).
  int rows_per_soa = 46;      ///< SOA stage every 46 rows (0.33 dB/row).

  /// The three Fig. 7 design points. Reducing M_c (= N_c) as b grows
  /// keeps the cache-line capacity and bandwidth constant while cutting
  /// WDM degree and SOA power (Section IV.A).
  static CometConfig comet_1b();
  static CometConfig comet_2b();
  static CometConfig comet_4b();

  // --- Derived quantities.
  std::uint64_t rows_per_bank() const;        ///< N_r = S_r * M_r.
  std::uint64_t cells_per_bank() const;       ///< N_r * N_c.
  std::uint64_t bits_per_chip() const;        ///< B * N_r * N_c * b.
  std::uint64_t capacity_bytes() const;       ///< All channels.
  int wavelengths() const { return cols_per_subarray; }
  std::uint64_t line_bytes() const;           ///< Bus width x burst length.

  /// SOAs energized during one access: (B * M_r * M_c) / 46 (Sec. III.E).
  std::uint64_t active_soas() const;

  /// MRs tuned during one access: B * 2 * M_c (Section III.E).
  std::uint64_t tuned_mrs_per_access() const;

  /// sqrt(S_r): the subarrays are laid out as a square for addressing.
  int subarray_grid_dim() const;

  /// Throws std::invalid_argument on inconsistent geometry (S_r must be a
  /// perfect square; b in [1,5]; everything positive).
  void validate() const;
};

}  // namespace comet::core
