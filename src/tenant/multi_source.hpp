#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "config/tenant_spec.hpp"
#include "memsim/request.hpp"
#include "memsim/source.hpp"
#include "util/rng.hpp"

/// Multi-tenant front-end: N independent tenant streams interleaved
/// into the one sorted demand stream every engine already consumes.
///
/// Each tenant stream is an ordinary RequestSource (a trace_gen
/// generator, a trace file, anything) wrapped in a PacedSource that
/// re-times it with an open-loop arrival model, tags every request with
/// the tenant id and maps its addresses into the tenant's slice of the
/// shared space. A MultiSource then merges the wrapped streams by
/// arrival time. Because the merged output is just a sorted, tagged
/// request stream, it composes with flat, tiered, scheduled and sharded
/// engines unchanged — the tags flow through Request::tenant into
/// per-tenant SimStats lanes and telemetry tracks.
///
/// Everything is deterministic: each tenant draws from its own
/// util::Rng seeded from (run seed, tenant index), so adding a tenant
/// never perturbs another's stream, and a tenant replayed alone (the
/// slowdown baseline) sees bit-identical requests to its share of the
/// merged run.
namespace comet::tenant {

/// Maps a tenant-private address into the partitioned shared space:
/// the 1-based tenant id lands above bit 40, giving every tenant a
/// disjoint 1 TiB slab.
std::uint64_t map_partition(std::uint16_t tenant, std::uint64_t address);

/// Maps a tenant-private address line-interleaved over the shared
/// space: line k of tenant t (1-based, of `count`) becomes shared line
/// k * count + (t - 1). Neighbouring tenants' lines alternate, so
/// streams collide in row buffers and GST regions — the adversarial
/// mapping.
std::uint64_t map_interleave(std::uint16_t tenant, std::uint16_t count,
                             std::uint64_t address,
                             std::uint32_t line_bytes);

/// Wraps one tenant's inner stream: re-times arrivals with an open-loop
/// model, tags requests with the tenant id and applies the address
/// mapping. With mean_interarrival_ns > 0 arrivals are re-drawn —
/// burstiness 0 gives exponential (Poisson) gaps; burstiness b in
/// (0, 1) compresses gaps inside bursts by (1 - b) and separates
/// bursts with compensating idle gaps, keeping the average rate. With
/// mean_interarrival_ns == 0 the inner stream's own arrival times pass
/// through untouched (trace tenants keeping native timing).
class PacedSource final : public memsim::RequestSource {
 public:
  /// `tenant` is 1-based; `tenant_count` sizes the interleave stride.
  /// Takes ownership of the inner stream.
  PacedSource(std::unique_ptr<memsim::RequestSource> inner,
              std::uint16_t tenant, std::uint16_t tenant_count,
              config::TenantMapping mapping, double mean_interarrival_ns,
              double burstiness, std::uint64_t seed,
              std::uint32_t line_bytes);

  std::optional<memsim::Request> next() override;

 private:
  std::unique_ptr<memsim::RequestSource> inner_;
  std::uint16_t tenant_;
  std::uint16_t tenant_count_;
  config::TenantMapping mapping_;
  double mean_ps_;  ///< 0 = keep the inner stream's arrival times.
  double burstiness_;
  std::uint32_t line_bytes_;
  util::Rng rng_;
  double clock_ps_ = 0.0;
  int burst_left_ = 0;
};

/// K-way merge of tenant streams by arrival time (ties broken by
/// source order), re-stamping globally sequential request ids so
/// telemetry ids stay unique across tenants. Inputs must each satisfy
/// the sorted-by-arrival contract; the merged output then does too.
///
/// Mirrors VectorSource's borrowing convention: the pointer
/// constructor borrows — every source must outlive the MultiSource —
/// while the unique_ptr constructor owns. Sources are single-pass, so
/// a MultiSource (like any source) is good for one run.
class MultiSource final : public memsim::RequestSource {
 public:
  /// Borrows; the pointed-to sources must outlive this object.
  explicit MultiSource(std::vector<memsim::RequestSource*> sources);
  /// Takes ownership.
  explicit MultiSource(
      std::vector<std::unique_ptr<memsim::RequestSource>> sources);

  // sources_ may point into owned_; default copy/move would leave it
  // dangling at the old object.
  MultiSource(const MultiSource&) = delete;
  MultiSource& operator=(const MultiSource&) = delete;

  std::optional<memsim::Request> next() override;

 private:
  std::vector<std::unique_ptr<memsim::RequestSource>> owned_;
  std::vector<memsim::RequestSource*> sources_;
  std::vector<std::optional<memsim::Request>> heads_;
  std::uint64_t next_id_ = 0;
  bool primed_ = false;
};

}  // namespace comet::tenant
