#include "tenant/fairness.hpp"

#include <algorithm>

namespace comet::tenant {

double jain_index(const std::vector<double>& values) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

void apply_fairness(memsim::SimStats& stats) {
  std::vector<double> slowdowns;
  slowdowns.reserve(stats.tenants.size());
  for (auto& tenant : stats.tenants) {
    if (tenant.requests() == 0 || tenant.alone_avg_latency_ns <= 0.0) {
      tenant.slowdown = 0.0;
      continue;
    }
    tenant.slowdown = tenant.avg_latency_ns() / tenant.alone_avg_latency_ns;
    slowdowns.push_back(tenant.slowdown);
  }
  stats.max_slowdown =
      slowdowns.empty()
          ? 0.0
          : *std::max_element(slowdowns.begin(), slowdowns.end());
  stats.fairness_index = jain_index(slowdowns);
}

}  // namespace comet::tenant
