#pragma once

#include <vector>

#include "memsim/stats.hpp"

/// Fairness arithmetic over per-tenant breakdowns. Pure functions —
/// the run orchestration that produces their inputs is in runner.hpp.
namespace comet::tenant {

/// Jain's fairness index (sum x)^2 / (n * sum x^2) over the given
/// allocations: 1.0 when perfectly equal, 1/n when one tenant takes
/// everything. An empty or all-zero vector is vacuously fair (1.0).
double jain_index(const std::vector<double>& values);

/// Fills the derived fairness fields of a multi-tenant result whose
/// breakdowns already carry run-alone baselines: per-tenant slowdown
/// (shared mean latency / alone mean latency; 0 for a tenant that
/// issued no requests, or whose baseline recorded none), max_slowdown
/// and fairness_index (Jain's, over the slowdowns of tenants that
/// issued requests — zero-request tenants are excluded rather than
/// counted as infinitely fair). No-op on a run without tenants.
void apply_fairness(memsim::SimStats& stats);

}  // namespace comet::tenant
