#include "tenant/runner.hpp"

#include <stdexcept>
#include <utility>

#include "memsim/trace.hpp"
#include "memsim/trace_gen.hpp"
#include "prof/profiler.hpp"
#include "tenant/fairness.hpp"
#include "tenant/multi_source.hpp"

namespace comet::tenant {
namespace {

/// Per-tenant seed split (SplitMix64 increment): `salt` separates the
/// generator's stream from the pacer's so re-timing never correlates
/// with the addresses being timed.
std::uint64_t tenant_seed(std::uint64_t seed, std::size_t index,
                          std::uint64_t salt) {
  return seed + 0x9e3779b97f4a7c15ULL * (2 * index + 1 + salt);
}

}  // namespace

std::unique_ptr<memsim::RequestSource> make_tenant_stream(
    const MultiTenantJob& job, std::size_t index) {
  if (index >= job.tenants.size()) {
    throw std::invalid_argument("make_tenant_stream: no such tenant");
  }
  const config::TenantSpec& spec = job.tenants[index];
  spec.validate();
  const auto tenant_id = static_cast<std::uint16_t>(index + 1);
  const auto tenant_count = static_cast<std::uint16_t>(job.tenants.size());

  std::unique_ptr<memsim::RequestSource> inner;
  double mean_interarrival_ns = spec.interarrival_ns;
  if (!spec.trace_file.empty()) {
    // Trace tenants keep their native arrival times unless the spec
    // overrides the rate (mean 0 disables the pacer's re-timing).
    memsim::TraceConfig trace_config;
    trace_config.cpu_clock_ghz = job.cpu_ghz;
    trace_config.line_bytes = job.line_bytes;
    inner = std::make_unique<memsim::TraceFileSource>(spec.trace_file,
                                                      trace_config);
  } else {
    const std::uint64_t requests =
        spec.requests != 0 ? spec.requests : job.default_requests;
    // Generator arrivals are always re-drawn by the pacer (that is the
    // open-loop model), so the effective rate falls back to the
    // profile's own when the spec does not override it.
    if (mean_interarrival_ns <= 0.0) {
      mean_interarrival_ns = spec.profile.avg_interarrival_ns;
    }
    inner = std::make_unique<memsim::GeneratorSource>(
        memsim::TraceGenerator(spec.profile,
                               tenant_seed(job.seed, index, /*salt=*/0))
            .stream(requests, job.line_bytes));
  }
  return std::make_unique<PacedSource>(
      std::move(inner), tenant_id, tenant_count, job.mapping,
      mean_interarrival_ns, spec.burstiness,
      tenant_seed(job.seed, index, /*salt=*/1), job.line_bytes);
}

std::unique_ptr<memsim::RequestSource> make_multi_stream(
    const MultiTenantJob& job) {
  config::validate_tenants(job.tenants);
  std::vector<std::unique_ptr<memsim::RequestSource>> streams;
  streams.reserve(job.tenants.size());
  for (std::size_t i = 0; i < job.tenants.size(); ++i) {
    streams.push_back(make_tenant_stream(job, i));
  }
  return std::make_unique<MultiSource>(std::move(streams));
}

std::string multi_workload_name(const MultiTenantJob& job) {
  std::string name;
  for (const auto& tenant : job.tenants) {
    if (!name.empty()) name += '+';
    name += tenant.name;
  }
  return name;
}

memsim::SimStats run_multi_tenant(memsim::Engine& engine,
                                  const MultiTenantJob& job) {
  config::validate_tenants(job.tenants);
  if (job.tenants.empty()) {
    throw std::invalid_argument("run_multi_tenant: no tenants");
  }

  const auto multi = make_multi_stream(job);
  memsim::SimStats stats = engine.run(*multi, multi_workload_name(job));

  // A tenant whose stream produced no requests never reached a lane;
  // make the breakdown dense before naming it.
  if (stats.tenants.size() < job.tenants.size()) {
    stats.tenants.resize(job.tenants.size());
  }
  for (std::size_t i = 0; i < job.tenants.size(); ++i) {
    stats.tenants[i].name = job.tenants[i].name;
  }

  // Run-alone baselines: the identical sub-stream on the identical
  // engine (controller, thread count and all), telemetry detached so
  // the shared run's trace stays the run's trace. The profiler stays
  // attached — baseline replays are host work worth seeing (they
  // roughly double a multi-tenant run's wall time), so they keep
  // ticking the progress counter and land in a stage of their own.
  telemetry::Collector* const collector = engine.telemetry();
  engine.attach_telemetry(nullptr);
  prof::StageTimer baseline_timer(engine.profiler(), "baseline_replays");
  for (std::size_t i = 0; i < job.tenants.size(); ++i) {
    const auto alone = make_tenant_stream(job, i);
    const memsim::SimStats alone_stats =
        engine.run(*alone, job.tenants[i].name);
    stats.tenants[i].alone_avg_latency_ns = alone_stats.avg_latency_ns();
  }
  baseline_timer.stop();
  engine.attach_telemetry(collector);

  apply_fairness(stats);
  return stats;
}

}  // namespace comet::tenant
