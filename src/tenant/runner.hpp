#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "config/tenant_spec.hpp"
#include "memsim/engine.hpp"
#include "memsim/source.hpp"
#include "memsim/stats.hpp"

/// Multi-tenant run orchestration: the shared interleaved run plus the
/// per-tenant run-alone baselines that turn raw per-tenant latency
/// into slowdown and fairness numbers.
namespace comet::tenant {

/// Everything a multi-tenant run needs beyond the engine itself.
struct MultiTenantJob {
  std::vector<config::TenantSpec> tenants;
  config::TenantMapping mapping = config::TenantMapping::kPartition;
  /// Per-tenant request count for specs that leave theirs at 0.
  std::uint64_t default_requests = 20000;
  std::uint64_t seed = 42;
  std::uint32_t line_bytes = 128;
  /// Cycle clock for trace-file tenants (NVMain traces are in cycles).
  double cpu_ghz = 2.0;
};

/// Builds tenant `index`'s paced, tagged, address-mapped stream — the
/// exact sub-stream the merged run interleaves, so replaying it alone
/// reproduces the tenant's share of the shared run request for
/// request. Deterministic in (job.seed, index) only: adding or
/// reordering *other* tenants never perturbs this stream.
std::unique_ptr<memsim::RequestSource> make_tenant_stream(
    const MultiTenantJob& job, std::size_t index);

/// The merged multi-tenant demand stream (owning MultiSource over
/// every tenant's make_tenant_stream).
std::unique_ptr<memsim::RequestSource> make_multi_stream(
    const MultiTenantJob& job);

/// "a+b+c" — the workload label of the shared run.
std::string multi_workload_name(const MultiTenantJob& job);

/// Runs the interleaved stream through `engine` (recording into
/// whatever telemetry collector is attached), then replays every
/// tenant's identical sub-stream alone — same engine, same controller
/// and thread count, telemetry detached — to fill the run-alone
/// baselines, per-tenant slowdown, max_slowdown and Jain's index.
/// Throws std::invalid_argument on an invalid tenant list.
memsim::SimStats run_multi_tenant(memsim::Engine& engine,
                                  const MultiTenantJob& job);

}  // namespace comet::tenant
