#include "tenant/multi_source.hpp"

#include <stdexcept>
#include <utility>

namespace comet::tenant {
namespace {

/// Partition slab width: 1 TiB per tenant, far above any working set
/// the generators address, so slabs never overlap.
constexpr unsigned kPartitionShift = 40;

/// Mean burst length (requests) of the on/off arrival modulation.
/// Lengths are drawn uniformly in [1, 2 * kMeanBurstRequests - 1], so
/// this is the expectation.
constexpr std::uint64_t kMeanBurstRequests = 16;

}  // namespace

std::uint64_t map_partition(std::uint16_t tenant, std::uint64_t address) {
  const std::uint64_t slab_mask = (1ull << kPartitionShift) - 1;
  return (static_cast<std::uint64_t>(tenant) << kPartitionShift) |
         (address & slab_mask);
}

std::uint64_t map_interleave(std::uint16_t tenant, std::uint16_t count,
                             std::uint64_t address,
                             std::uint32_t line_bytes) {
  const std::uint64_t line = address / line_bytes;
  const std::uint64_t offset = address % line_bytes;
  const std::uint64_t shared_line =
      line * count + (static_cast<std::uint64_t>(tenant) - 1);
  return shared_line * line_bytes + offset;
}

PacedSource::PacedSource(std::unique_ptr<memsim::RequestSource> inner,
                         std::uint16_t tenant, std::uint16_t tenant_count,
                         config::TenantMapping mapping,
                         double mean_interarrival_ns, double burstiness,
                         std::uint64_t seed, std::uint32_t line_bytes)
    : inner_(std::move(inner)),
      tenant_(tenant),
      tenant_count_(tenant_count),
      mapping_(mapping),
      mean_ps_(mean_interarrival_ns * 1e3),
      burstiness_(burstiness),
      line_bytes_(line_bytes),
      rng_(seed) {
  if (tenant_ == 0) {
    throw std::invalid_argument("PacedSource: tenant ids are 1-based");
  }
  if (tenant_count_ < tenant_) {
    throw std::invalid_argument(
        "PacedSource: tenant id exceeds the tenant count");
  }
}

std::optional<memsim::Request> PacedSource::next() {
  auto pulled = inner_->next();
  if (!pulled) return std::nullopt;
  memsim::Request req = *pulled;
  if (mean_ps_ > 0.0) {
    double gap_ps;
    if (burstiness_ <= 0.0) {
      gap_ps = rng_.next_exponential(mean_ps_);
    } else if (burst_left_ > 0) {
      --burst_left_;
      gap_ps = rng_.next_exponential(mean_ps_ * (1.0 - burstiness_));
    } else {
      // Between bursts: draw the next burst's length, charge the idle
      // gap that keeps the long-run rate at 1/mean despite the
      // compressed in-burst spacing, and emit the burst's first
      // request.
      const std::uint64_t burst =
          1 + rng_.next_below(2 * kMeanBurstRequests - 1);
      gap_ps = rng_.next_exponential(mean_ps_ * burstiness_ *
                                     static_cast<double>(burst));
      burst_left_ = static_cast<int>(burst) - 1;
      gap_ps += rng_.next_exponential(mean_ps_ * (1.0 - burstiness_));
    }
    clock_ps_ += gap_ps;
    req.arrival_ps = static_cast<std::uint64_t>(clock_ps_);
  }
  req.tenant = tenant_;
  req.address = mapping_ == config::TenantMapping::kPartition
                    ? map_partition(tenant_, req.address)
                    : map_interleave(tenant_, tenant_count_, req.address,
                                     line_bytes_);
  return req;
}

MultiSource::MultiSource(std::vector<memsim::RequestSource*> sources)
    : sources_(std::move(sources)) {
  if (sources_.empty()) {
    throw std::invalid_argument("MultiSource: need at least one source");
  }
  heads_.resize(sources_.size());
}

MultiSource::MultiSource(
    std::vector<std::unique_ptr<memsim::RequestSource>> sources)
    : owned_(std::move(sources)) {
  sources_.reserve(owned_.size());
  for (const auto& source : owned_) sources_.push_back(source.get());
  if (sources_.empty()) {
    throw std::invalid_argument("MultiSource: need at least one source");
  }
  heads_.resize(sources_.size());
}

std::optional<memsim::Request> MultiSource::next() {
  if (!primed_) {
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      heads_[i] = sources_[i]->next();
    }
    primed_ = true;
  }
  std::size_t best = sources_.size();
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    if (!heads_[i]) continue;
    if (best == sources_.size() ||
        heads_[i]->arrival_ps < heads_[best]->arrival_ps) {
      best = i;
    }
  }
  if (best == sources_.size()) return std::nullopt;
  memsim::Request req = *heads_[best];
  heads_[best] = sources_[best]->next();
  req.id = next_id_++;
  return req;
}

}  // namespace comet::tenant
