#pragma once

#include "core/power_model.hpp"
#include "cosmos/cosmos_config.hpp"
#include "memsim/device.hpp"
#include "photonics/losses.hpp"

/// Corrected-COSMOS system models: the Fig. 8 power stack and the
/// trace-simulator device descriptor.
namespace comet::cosmos {

/// COSMOS operating-power model (the left bar of Fig. 8).
///
/// The dominant term is the laser: write pulses must arrive at the cells
/// at the corrected 5 mW through the lossy crossbar (worst-case cell
/// traversals, 16-degree MDM excess, residual splitter stages), so the
/// per-wavelength launch power is two orders of magnitude above COMET's.
/// Six SOA arrays per subarray and the interface electronics complete
/// the stack. COMET's stack lands at ~26 % of this total (paper,
/// conclusions).
class CosmosPowerModel {
 public:
  CosmosPowerModel(const CosmosConfig& config,
                   const photonics::LossParameters& losses);

  photonics::LossBudget launch_path_budget() const;

  double laser_power_w() const;
  double soa_power_w() const;
  double interface_power_w() const;

  core::PowerBreakdown breakdown() const;

 private:
  CosmosConfig config_;
  photonics::LossParameters losses_;
};

/// Trace-simulator descriptor for the corrected COSMOS.
///
/// Reads are subtractive and destructive: the access itself is
/// read(25 ns) + row reset(250 ns) + read(25 ns) on the latency path,
/// followed by a posted restore write that keeps the bank occupied
/// (partially coalesced by the controller's write buffer; the shipped
/// value assumes ~45 % coalescing of the 1.6 us restore).
memsim::DeviceModel cosmos_device_model(
    const CosmosConfig& config, const photonics::LossParameters& losses);

}  // namespace comet::cosmos
