#include "cosmos/cosmos_config.hpp"

#include <stdexcept>

namespace comet::cosmos {

CosmosConfig CosmosConfig::paper() { return CosmosConfig{}; }

std::uint64_t CosmosConfig::line_bytes() const {
  return static_cast<std::uint64_t>(bus_width_bits) * burst_length / 8;
}

std::uint64_t CosmosConfig::bits_per_chip() const {
  return static_cast<std::uint64_t>(banks) * rows * cols * bits_per_cell;
}

std::uint64_t CosmosConfig::capacity_bytes() const {
  return bits_per_chip() / 8 * channels;
}

int CosmosConfig::wavelengths() const {
  return 2 * subarray_cols;  // row-access + column-access combs
}

int CosmosConfig::active_soas() const {
  return soa_arrays_per_subarray * subarray_cols * banks;
}

void CosmosConfig::validate() const {
  if (banks < 1 || rows == 0 || cols == 0 || channels < 1) {
    throw std::invalid_argument("CosmosConfig: non-positive geometry");
  }
  if (bits_per_cell != 2) {
    throw std::invalid_argument(
        "CosmosConfig: corrected COSMOS is 2 bits/cell");
  }
  if (subarray_rows < 1 || subarray_cols < 1) {
    throw std::invalid_argument("CosmosConfig: bad subarray shape");
  }
}

}  // namespace comet::cosmos
