#include "cosmos/cosmos_memory.hpp"

#include "photonics/laser.hpp"
#include "photonics/waveguide.hpp"
#include "util/units.hpp"

namespace comet::cosmos {

CosmosPowerModel::CosmosPowerModel(const CosmosConfig& config,
                                   const photonics::LossParameters& losses)
    : config_(config), losses_(losses) {
  config_.validate();
}

photonics::LossBudget CosmosPowerModel::launch_path_budget() const {
  photonics::LossBudget budget;
  budget.add("fiber coupler", losses_.coupling_loss_db);
  // Worst-case traversal of the 32-cell subarray row: each crossing
  // contributes scattering + amorphous-cell insertion loss.
  budget.add("crossbar crossings", 0.3, config_.subarray_cols);
  // 16-degree MDM: the paper calls lossless 16-mode links "extremely
  // challenging"; the highest-order mode pays accordingly.
  const photonics::MdmLink link(config_.banks, 0.15);
  budget.add("MDM worst mode", link.worst_mode_excess_loss_db());
  // PCM subarray switch (granted to COSMOS by the paper's correction).
  budget.add("PCM subarray switch", losses_.gst_switch_loss_db);
  // Residual splitter stages that the PCM switches do not remove.
  budget.add("residual splitters", 3.0);
  budget.add("margin", 1.0);
  return budget;
}

double CosmosPowerModel::laser_power_w() const {
  const photonics::Laser laser(losses_.laser_wall_plug_efficiency,
                               config_.wavelengths());
  return laser.electrical_power_w(config_.cell_power_mw,
                                  launch_path_budget().total_db());
}

double CosmosPowerModel::soa_power_w() const {
  return config_.active_soas() * losses_.intra_subarray_soa_power_mw * 1e-3;
}

double CosmosPowerModel::interface_power_w() const {
  // Same per-wavelength interface electronics as COMET, plus the
  // subtract-and-correct readout logic.
  constexpr double kPerWavelengthMw = 10.0;
  constexpr double kControllerW = 0.5;
  constexpr double kSubtractLogicW = 1.5;
  return config_.wavelengths() * kPerWavelengthMw * 1e-3 + kControllerW +
         kSubtractLogicW;
}

core::PowerBreakdown CosmosPowerModel::breakdown() const {
  core::PowerBreakdown stack;
  stack.label = "COSMOS";
  stack.components = {
      {"laser", laser_power_w()},
      {"soa", soa_power_w()},
      {"eo_tuning", 0.0},  // COSMOS has no MR access control
      {"interface", interface_power_w()},
  };
  return stack;
}

memsim::DeviceModel cosmos_device_model(
    const CosmosConfig& config, const photonics::LossParameters& losses) {
  config.validate();
  memsim::DeviceModel model;
  model.name = "COSMOS";
  model.capacity_bytes = config.capacity_bytes();

  auto& t = model.timing;
  t.channels = config.channels;
  t.banks_per_channel = config.banks;
  t.line_bytes = static_cast<std::uint32_t>(config.line_bytes());
  t.line_striped_across_banks = false;
  t.accesses_per_line = 1;
  // Subtractive read on the latency path: read + row reset + read.
  t.read_occupancy_ps =
      util::ns_to_ps(config.read_ns + config.erase_ns + config.read_ns);
  // Posted destructive-read restore: the subtractive read erases the row,
  // so the full 1.6 us rewrite occupies the bank behind the returned data.
  t.read_tail_ps = util::ns_to_ps(config.write_ns);
  t.write_occupancy_ps = util::ns_to_ps(config.write_ns);
  t.write_tail_ps = 0;
  t.burst_ps = util::ns_to_ps(config.burst_ns * config.burst_length);
  t.interface_ps = util::ns_to_ps(config.interface_ns);
  t.has_row_buffer = false;
  t.refresh_interval_ps = 0;
  // The granted PCM subarray-row switches cost 100 ns on every region
  // change (COSMOS has no spare interface stage to hide them behind).
  t.region_size_bytes = static_cast<std::uint64_t>(config.subarray_rows) *
                        config.line_bytes() * config.channels * config.banks;
  t.region_switch_ps = util::ns_to_ps(config.pcm_switch_ns);
  t.queue_depth = 128;

  auto& e = model.energy;
  // Two read passes at read power across the wavelength comb, plus the
  // destructive-read restore write at the corrected 5 mW cell power.
  const double line_bits = static_cast<double>(config.line_bytes()) * 8.0;
  const double read_passes_pj =
      2.0 * config.read_ns * 1.0 /*mW*/ * config.wavelengths();
  const double restore_pj = config.write_ns * config.cell_power_mw *
                            config.subarray_cols;
  e.read_pj_per_bit = (read_passes_pj + restore_pj) / line_bits;
  const double write_pj = config.write_ns * config.cell_power_mw *
                          config.subarray_cols;
  e.write_pj_per_bit = write_pj / line_bits;
  e.background_power_w =
      CosmosPowerModel(config, losses).breakdown().total_w();
  return model;
}

}  // namespace comet::cosmos
