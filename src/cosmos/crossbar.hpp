#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "photonics/crosstalk.hpp"

/// Functional COSMOS crossbar array (paper Figs. 1 & 2).
///
/// OPCM cells sit on bare waveguide crossings with *no* access-control
/// isolation, so every write couples ~ -18 dB of its pulse energy into
/// the row-adjacent cells and thermo-optically drifts their crystalline
/// fraction. This class is the vehicle for the Fig. 2 corruption study:
/// store data, perform writes, watch neighbours walk off their levels.
///
/// Cells store a crystalline fraction in [0, 1]; level l of L maps to
/// fraction l / (L - 1), and readout classifies by nearest level after
/// accumulated drift. The original (4-bit, uniform-level) and corrected
/// (2-bit, 9 %-spaced) COSMOS variants differ only in L.
namespace comet::cosmos {

class Crossbar {
 public:
  /// `rows` x `cols` crossbar with 2^bits levels. Crosstalk parameters
  /// default to the paper's calibration.
  Crossbar(int rows, int cols, int bits_per_cell,
           photonics::CrosstalkModel::Params crosstalk =
               photonics::CrosstalkModel::paper());

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int levels() const { return levels_; }

  /// Deposits a level without any crosstalk side effects — the "ideal"
  /// initial state of a stored dataset (Fig. 2's original image).
  void set_state(int row, int col, int level);

  /// Writes a level into a cell with a pulse of `write_energy_pj`
  /// (default: the 750 pJ GST transition of [17]). The pulse drifts both
  /// row-neighbours' cells in the same column.
  void write(int row, int col, int level, double write_energy_pj = 750.0);

  /// Writes a whole row (one level per column).
  void write_row(int row, std::span<const int> levels,
                 double write_energy_pj = 750.0);

  /// Classified readout of one cell.
  int read(int row, int col) const;

  /// Raw crystalline fraction of one cell.
  double fraction(int row, int col) const;

  /// Fraction of cells (over the whole array) whose classified level no
  /// longer matches what was last written — the Fig. 2 corruption metric.
  double corrupted_fraction() const;

  /// Mean absolute level error across the array (drift severity).
  double mean_level_error() const;

 private:
  double level_to_fraction(int level) const;
  std::size_t index(int row, int col) const;

  int rows_;
  int cols_;
  int levels_;
  photonics::CrosstalkModel crosstalk_;
  std::vector<double> fractions_;
  std::vector<int> written_;
};

}  // namespace comet::cosmos
