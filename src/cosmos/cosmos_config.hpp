#pragma once

#include <array>
#include <cstdint>

/// COSMOS baseline configuration (paper Section IV.B, Table II).
///
/// COSMOS [20] is the only other published photonic main memory. The
/// paper *corrects* its design assumptions before comparing:
///
///  * energy: the GST cells of [17] need 5 mW pulses (250–750 pJ), not
///    the 0.5 mW COSMOS assumed; timing is stretched accordingly
///    (write 1.6 us, erase 250 ns, read 25 ns — Table II);
///  * bit density: the ~8 % thermo-optic crosstalk shift forces the
///    level count down from 16 (4 bits) to 4 asymmetric levels at 9 %
///    spacing (0.99 / 0.90 / 0.81 / 0.72), i.e. 2 bits/cell, giving the
///    (16 x 16384 x 16384 x 2) geometry with 512 x 32 subarrays;
///  * reads stay subtractive (read all – reset row – read all), which
///    leaves a destructive restore on the bank after every read.
namespace comet::cosmos {

struct CosmosConfig {
  // --- Geometry (corrected).
  int banks = 16;                 ///< B = MDM degree 16.
  std::uint64_t rows = 16384;     ///< N_r.
  std::uint64_t cols = 16384;     ///< N_c.
  int bits_per_cell = 2;          ///< Corrected from 4.
  int subarray_rows = 32;         ///< M_r.
  int subarray_cols = 32;         ///< M_c.
  int channels = 8;               ///< System channels (8 GB total).

  // --- Table II timing [ns].
  double read_ns = 25.0;
  double write_ns = 1600.0;
  double erase_ns = 250.0;
  double burst_ns = 1.0;
  int burst_length = 8;
  int bus_width_bits = 128;
  double interface_ns = 105.0;
  double pcm_switch_ns = 100.0;   ///< Subarray-row access switch (added).

  // --- Corrected asymmetric transmission levels (Section IV.B).
  std::array<double, 4> levels{0.99, 0.90, 0.81, 0.72};

  // --- Loss/energy corrections.
  double cell_power_mw = 5.0;     ///< Corrected write pulse power.
  double worst_level_loss_db = 1.4;  ///< From transmission level 0.72.
  int soa_arrays_per_subarray = 6;   ///< Row+column loss compensation.

  static CosmosConfig paper();

  std::uint64_t line_bytes() const;       ///< Bus width x burst length / 8.
  std::uint64_t bits_per_chip() const;    ///< B x N_r x N_c x b.
  std::uint64_t capacity_bytes() const;
  int wavelengths() const;                ///< Row + column access combs.

  /// SOAs energized for one subarray access.
  int active_soas() const;

  void validate() const;
};

}  // namespace comet::cosmos
