#include "cosmos/crossbar.hpp"

#include <cmath>
#include <stdexcept>

namespace comet::cosmos {

Crossbar::Crossbar(int rows, int cols, int bits_per_cell,
                   photonics::CrosstalkModel::Params crosstalk)
    : rows_(rows),
      cols_(cols),
      levels_(1 << bits_per_cell),
      crosstalk_(crosstalk),
      fractions_(static_cast<std::size_t>(rows) * cols, 0.0),
      written_(static_cast<std::size_t>(rows) * cols, 0) {
  if (rows < 1 || cols < 1 || bits_per_cell < 1 || bits_per_cell > 5) {
    throw std::invalid_argument("Crossbar: bad shape");
  }
}

std::size_t Crossbar::index(int row, int col) const {
  if (row < 0 || row >= rows_ || col < 0 || col >= cols_) {
    throw std::out_of_range("Crossbar: cell out of range");
  }
  return static_cast<std::size_t>(row) * cols_ + static_cast<std::size_t>(col);
}

double Crossbar::level_to_fraction(int level) const {
  return static_cast<double>(level) / static_cast<double>(levels_ - 1);
}

void Crossbar::set_state(int row, int col, int level) {
  if (level < 0 || level >= levels_) {
    throw std::out_of_range("Crossbar: level out of range");
  }
  fractions_[index(row, col)] = level_to_fraction(level);
  written_[index(row, col)] = level;
}

void Crossbar::write(int row, int col, int level, double write_energy_pj) {
  if (level < 0 || level >= levels_) {
    throw std::out_of_range("Crossbar: level out of range");
  }
  fractions_[index(row, col)] = level_to_fraction(level);
  written_[index(row, col)] = level;
  // Thermo-optic crosstalk: the write pulse leaks into the row-adjacent
  // cells of the same column and heats them towards crystallization.
  const double shift = crosstalk_.fraction_shift(write_energy_pj);
  for (const int neighbour : {row - 1, row + 1}) {
    if (neighbour < 0 || neighbour >= rows_) continue;
    auto& f = fractions_[index(neighbour, col)];
    f = std::min(1.0, f + shift);
  }
}

void Crossbar::write_row(int row, std::span<const int> levels,
                         double write_energy_pj) {
  if (static_cast<int>(levels.size()) != cols_) {
    throw std::invalid_argument("Crossbar::write_row: need cols levels");
  }
  for (int col = 0; col < cols_; ++col) {
    write(row, col, levels[static_cast<std::size_t>(col)], write_energy_pj);
  }
}

int Crossbar::read(int row, int col) const {
  const double f = fractions_[index(row, col)];
  const double scaled = f * static_cast<double>(levels_ - 1);
  int level = static_cast<int>(std::lround(scaled));
  if (level < 0) level = 0;
  if (level >= levels_) level = levels_ - 1;
  return level;
}

double Crossbar::fraction(int row, int col) const {
  return fractions_[index(row, col)];
}

double Crossbar::mean_level_error() const {
  double sum = 0.0;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      sum += std::abs(read(r, c) - written_[index(r, c)]);
    }
  }
  return sum / static_cast<double>(fractions_.size());
}

double Crossbar::corrupted_fraction() const {
  std::size_t corrupted = 0;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      if (read(r, c) != written_[index(r, c)]) ++corrupted;
    }
  }
  return static_cast<double>(corrupted) /
         static_cast<double>(fractions_.size());
}

}  // namespace comet::cosmos
