#include "config/device_spec.hpp"

#include <stdexcept>

#include "memsim/sharded.hpp"
#include "memsim/system.hpp"

namespace comet::config {

DeviceSpec::DeviceSpec(memsim::DeviceModel model)
    : name(model.name), flat(std::move(model)) {}

DeviceSpec::DeviceSpec(hybrid::TieredConfig config)
    : name(config.name), tiered(std::move(config)) {}

int DeviceSpec::channels() const {
  // .value() so a default-constructed (never-assigned) spec throws
  // std::bad_optional_access instead of silently reading garbage.
  return is_hybrid() ? tiered->backend.timing.channels
                     : flat.value().timing.channels;
}

std::unique_ptr<memsim::Engine> DeviceSpec::make_engine() const {
  return make_engine(std::nullopt);
}

std::unique_ptr<memsim::Engine> DeviceSpec::make_engine(
    const std::optional<sched::ControllerConfig>& controller) const {
  return make_engine(controller, 1);
}

std::unique_ptr<memsim::Engine> DeviceSpec::make_engine(
    const std::optional<sched::ControllerConfig>& controller,
    int run_threads) const {
  const int threads = memsim::resolve_run_threads(run_threads);
  if (tiered) {
    return std::make_unique<hybrid::TieredSystem>(*tiered, controller,
                                                  threads);
  }
  if (flat) {
    if (controller) {
      return std::make_unique<sched::ScheduledSystem>(*flat, *controller,
                                                      threads);
    }
    if (threads > 1) {
      return std::make_unique<memsim::ShardedEngine>(*flat, threads);
    }
    return std::make_unique<memsim::MemorySystem>(*flat);
  }
  throw std::logic_error(
      "DeviceSpec::make_engine: empty spec '" + name +
      "' (default-constructed; neither flat nor tiered is engaged — build "
      "specs through make_device_spec/resolve_device_specs)");
}

void DeviceSpec::set_channels(int channels) {
  if (tiered) {
    // The override targets the main-memory part: for hybrid devices
    // that is the backend behind the cache tier.
    tiered->backend.timing.channels = channels;
    tiered->validate();
    return;
  }
  if (flat) {
    flat->timing.channels = channels;
    flat->validate();
    return;
  }
  throw std::logic_error(
      "DeviceSpec::set_channels: empty spec '" + name +
      "' (neither flat nor tiered is engaged)");
}

}  // namespace comet::config
