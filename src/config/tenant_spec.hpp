#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memsim/trace_gen.hpp"

/// Tenant stream descriptions — the data side of the multi-tenant
/// front-end. The specs live in the config layer (alongside the
/// [tenant.NAME] TOML sections and --tenants CLI syntax that produce
/// them) so that src/tenant, which consumes them, can depend on config
/// without a cycle; the merging/pacing machinery itself is in
/// tenant/multi_source.hpp.
namespace comet::config {

/// How tenant address spaces share the device.
enum class TenantMapping : std::uint8_t {
  /// Disjoint static slabs: tenant id placed above address bit 40, so
  /// every tenant owns a private 1 TiB region (no sharing, no
  /// interference through row buffers or GST regions).
  kPartition,
  /// Line-granular round-robin: tenant streams interleave over one
  /// shared space, line by line — maximal contention, the adversarial
  /// fairness scenario.
  kInterleave,
};

/// "partition" | "interleave".
const char* tenant_mapping_name(TenantMapping mapping);

/// Throws std::invalid_argument naming the valid set on unknown names.
TenantMapping tenant_mapping_from_name(const std::string& name);

/// One named tenant stream of a multi-tenant run — a [tenant.NAME]
/// TOML section, or one entry of the CLI's --tenants list.
struct TenantSpec {
  std::string name;
  /// Synthetic workload class (ignored when trace_file is set).
  memsim::WorkloadProfile profile;
  /// NVMain trace replayed for this tenant instead of a generator.
  std::string trace_file;
  /// Mean arrival gap override [ns]; 0 keeps the profile's own rate
  /// (or, for a trace tenant, the trace's native arrival times).
  double interarrival_ns = 0.0;
  /// Open-loop burst intensity in [0, 1): 0 is a pure Poisson stream,
  /// larger values compress arrivals into bursts separated by
  /// compensating idle gaps at the same average rate.
  double burstiness = 0.0;
  /// Per-tenant request count; 0 inherits the run's --requests.
  std::uint64_t requests = 0;

  /// Throws std::invalid_argument on an empty or non-bare-key name
  /// (names become [tenant.NAME] headers: letters, digits, '_', '-'),
  /// a spec naming neither a workload nor a trace file, burstiness
  /// outside [0, 1), or a negative interarrival override.
  void validate() const;
};

/// Validates every spec plus the cross-tenant rule that names are
/// unique. Throws std::invalid_argument naming the offender.
void validate_tenants(const std::vector<TenantSpec>& tenants);

}  // namespace comet::config
