#include "config/experiment.hpp"

#include <climits>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace comet::config {

void ExperimentSpec::validate() const {
  if (name.empty()) {
    throw std::invalid_argument("experiment: empty name");
  }
  if (device_tokens.empty() && devices.empty()) {
    throw std::invalid_argument("experiment '" + name +
                                "' defines no devices");
  }
  for (const auto& spec : devices) {
    if (!spec.flat && !spec.tiered) {
      throw std::invalid_argument("experiment '" + name +
                                  "' contains an empty device spec");
    }
  }
  if (!tenants.empty()) {
    validate_tenants(tenants);
    if (!trace_file.empty()) {
      throw std::invalid_argument(
          "experiment '" + name +
          "' sets trace_file and [tenant] streams; a trace tenant's file "
          "belongs on its own spec");
    }
    if (!workload_names.empty() || !workloads.empty()) {
      throw std::invalid_argument(
          "experiment '" + name +
          "' sets workloads and [tenant] streams; the tenant specs define "
          "the demand of a multi-tenant run");
    }
  } else if (trace_file.empty()) {
    if (workload_names.empty() && workloads.empty()) {
      throw std::invalid_argument("experiment '" + name +
                                  "' defines no workloads and no trace_file");
    }
  } else if (!workload_names.empty() || !workloads.empty()) {
    throw std::invalid_argument(
        "experiment '" + name +
        "' sets trace_file and workloads; a trace replay has exactly one "
        "request stream");
  } else if (requests.size() > 1 || seeds.size() > 1) {
    // requests/seed are ignored during replay, so an axis would just run
    // the identical trace N times and misread as a real sweep.
    throw std::invalid_argument(
        "experiment '" + name +
        "' sets trace_file and a requests/seed axis; replay ignores both, "
        "so the axis would only duplicate identical runs");
  }
  if (requests.empty() || seeds.empty() || channels.empty()) {
    throw std::invalid_argument("experiment '" + name +
                                "' has an empty requests/seeds/channels axis");
  }
  for (const auto count : requests) {
    if (count == 0) {
      throw std::invalid_argument("experiment '" + name +
                                  "': requests values must be >= 1");
    }
  }
  for (const auto count : channels) {
    if (count < 0) {
      throw std::invalid_argument("experiment '" + name +
                                  "': channels values must be >= 0");
    }
  }
  if (line_bytes == 0) {
    throw std::invalid_argument("experiment '" + name +
                                "': line_bytes must be >= 1");
  }
  if (!(cpu_ghz > 0.0) || !std::isfinite(cpu_ghz)) {
    throw std::invalid_argument("experiment '" + name +
                                "': cpu_ghz must be a positive number");
  }
  if (run_threads.empty()) {
    throw std::invalid_argument("experiment '" + name +
                                "' has an empty run_threads axis");
  }
  for (const auto threads : run_threads) {
    if (threads < 0) {
      throw std::invalid_argument("experiment '" + name +
                                  "': run_threads values must be >= 0");
    }
  }
  if (!policies.empty()) controller.validate();
  telemetry.validate();
  profile.validate();
}

ExperimentBuilder& ExperimentBuilder::name(std::string value) {
  spec_.name = std::move(value);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::device(std::string token) {
  spec_.device_tokens.push_back(std::move(token));
  return *this;
}

ExperimentBuilder& ExperimentBuilder::device(DeviceSpec spec) {
  spec_.devices.push_back(std::move(spec));
  return *this;
}

ExperimentBuilder& ExperimentBuilder::workload(std::string profile_name) {
  spec_.workload_names.push_back(std::move(profile_name));
  return *this;
}

ExperimentBuilder& ExperimentBuilder::workload(
    memsim::WorkloadProfile profile) {
  spec_.workloads.push_back(std::move(profile));
  return *this;
}

ExperimentBuilder& ExperimentBuilder::requests(
    std::vector<std::uint64_t> values) {
  spec_.requests = std::move(values);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::seeds(std::vector<std::uint64_t> values) {
  spec_.seeds = std::move(values);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::channels(std::vector<int> values) {
  spec_.channels = std::move(values);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::schedule(
    std::vector<sched::Policy> policies) {
  spec_.policies = std::move(policies);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::controller_config(
    sched::ControllerConfig config) {
  spec_.controller = config;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::run_threads(std::vector<int> values) {
  spec_.run_threads = std::move(values);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::telemetry(
    comet::telemetry::TelemetrySpec spec) {
  spec_.telemetry = std::move(spec);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::profile(comet::prof::ProfSpec spec) {
  spec_.profile = std::move(spec);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::tenant(TenantSpec spec) {
  spec_.tenants.push_back(std::move(spec));
  return *this;
}

ExperimentBuilder& ExperimentBuilder::tenant_mapping(TenantMapping mapping) {
  spec_.tenant_mapping = mapping;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::line_bytes(std::uint32_t value) {
  spec_.line_bytes = value;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::trace(std::string path, double cpu_ghz) {
  spec_.trace_file = std::move(path);
  spec_.cpu_ghz = cpu_ghz;
  return *this;
}

ExperimentSpec ExperimentBuilder::build() const {
  spec_.validate();
  return spec_;
}

ExperimentSpec parse_experiment(const toml::Document& doc,
                                const DeviceResolver& resolver) {
  ExperimentSpec spec;
  spec.source = doc.source;

  TableReader root(doc.root, doc.source, "experiment file");
  std::uint64_t anchor_line = 0;

  if (const toml::Table* experiment = root.child("experiment")) {
    anchor_line = experiment->line;
    TableReader reader(*experiment, doc.source, "[experiment]");
    if (auto v = reader.get_string("name")) spec.name = *v;
    if (auto v = reader.get_string_list("devices")) spec.device_tokens = *v;
    if (auto v = reader.get_string_list("workloads")) spec.workload_names = *v;
    if (auto v = reader.get_u64_list("requests", 1, SIZE_MAX)) {
      spec.requests = *v;
    }
    if (auto v = reader.get_u64_list("seed")) spec.seeds = *v;
    if (auto v = reader.get_u64_list("channels", 0, INT_MAX)) {
      spec.channels.clear();
      for (const auto c : *v) spec.channels.push_back(int(c));
    }
    if (auto v = reader.get_u64("line_bytes", 1, UINT32_MAX)) {
      spec.line_bytes = std::uint32_t(*v);
    }
    if (auto v = reader.get_string("trace_file")) spec.trace_file = *v;
    if (auto v = reader.get_double("cpu_ghz", 1e-6, 1e6)) spec.cpu_ghz = *v;
    reader.finish();
  }

  if (const toml::Table* controller = root.child("controller")) {
    parse_controller_section(*controller, doc.source, spec.policies,
                             spec.controller, spec.run_threads);
  }

  if (const toml::Table* telemetry = root.child("telemetry")) {
    parse_telemetry_section(*telemetry, doc.source, spec.telemetry);
  }

  if (const toml::Table* profile = root.child("profile")) {
    parse_profile_section(*profile, doc.source, spec.profile);
  }

  if (const toml::Table* slo = root.child("slo")) {
    parse_slo_section(*slo, doc.source, spec.profile);
  }

  if (const toml::Table* tenant = root.child("tenant")) {
    parse_tenant_section(*tenant, doc.source, spec.tenants,
                         spec.tenant_mapping);
  }

  if (const auto* devices = root.array_of_tables("device")) {
    for (const auto& table : *devices) {
      spec.devices.push_back(parse_device(table, doc.source, resolver));
    }
  }
  if (const auto* workloads = root.array_of_tables("workload")) {
    for (const auto& table : *workloads) {
      spec.workloads.push_back(parse_workload(table, doc.source));
    }
  }
  root.finish();

  try {
    spec.validate();
  } catch (const std::exception& e) {
    throw toml::ParseError(doc.source, anchor_line, e.what());
  }
  return spec;
}

ExperimentSpec parse_experiment_file(const std::string& path,
                                     const DeviceResolver& resolver) {
  return parse_experiment(toml::parse_file(path), resolver);
}

namespace {

template <typename T, typename Format>
void write_axis(std::ostream& os, const char* key, const std::vector<T>& axis,
                Format&& format) {
  os << key << " = ";
  if (axis.size() == 1) {
    os << format(axis.front()) << "\n";
    return;
  }
  os << "[";
  for (std::size_t i = 0; i < axis.size(); ++i) {
    os << (i ? ", " : "") << format(axis[i]);
  }
  os << "]\n";
}

std::string format_integer(std::uint64_t v) { return std::to_string(v); }

void write_string_list(std::ostream& os, const char* key,
                       const std::vector<std::string>& values) {
  os << key << " = [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    os << (i ? ", " : "") << toml::format_string(values[i]);
  }
  os << "]\n";
}

}  // namespace

void write_experiment(std::ostream& os, const ExperimentSpec& spec) {
  os << "# comet_sim experiment specification\n"
     << "[experiment]\n"
     << "name = " << toml::format_string(spec.name) << "\n";
  if (!spec.device_tokens.empty()) {
    write_string_list(os, "devices", spec.device_tokens);
  }
  if (!spec.workload_names.empty()) {
    write_string_list(os, "workloads", spec.workload_names);
  }
  write_axis(os, "requests", spec.requests, format_integer);
  write_axis(os, "seed", spec.seeds, format_integer);
  write_axis(os, "channels", spec.channels,
             [](int v) { return std::to_string(v); });
  os << "line_bytes = " << spec.line_bytes << "\n";
  if (!spec.trace_file.empty()) {
    os << "trace_file = " << toml::format_string(spec.trace_file) << "\n"
       << "cpu_ghz = " << toml::format_float(spec.cpu_ghz) << "\n";
  }
  const bool sharded = spec.run_threads != std::vector<int>{1};
  if (!spec.policies.empty() || sharded) {
    os << "\n[controller]\n";
    if (!spec.policies.empty()) {
      write_axis(os, "policy", spec.policies, [](sched::Policy policy) {
        return toml::format_string(sched::policy_name(policy));
      });
      os << "read_queue_depth = " << spec.controller.read_queue_depth << "\n"
         << "write_queue_depth = " << spec.controller.write_queue_depth << "\n"
         << "drain_high_watermark = " << spec.controller.drain_high_watermark
         << "\n"
         << "drain_low_watermark = " << spec.controller.drain_low_watermark
         << "\n"
         << "tenant_tokens = " << spec.controller.tenant_tokens << "\n"
         << "starvation_cap = " << spec.controller.starvation_cap << "\n";
    }
    if (sharded) {
      write_axis(os, "run_threads", spec.run_threads,
                 [](int v) { return std::to_string(v); });
    }
  }
  if (spec.telemetry.enabled()) {
    os << "\n[telemetry]\n";
    if (spec.telemetry.tracing()) {
      os << "trace_out = " << toml::format_string(spec.telemetry.trace_path)
         << "\n"
         << "trace_limit = " << spec.telemetry.trace_limit << "\n";
    }
    if (spec.telemetry.sampling()) {
      os << "metrics_interval_ns = "
         << spec.telemetry.metrics_interval_ps / 1000 << "\n";
      if (!spec.telemetry.metrics_csv.empty()) {
        os << "metrics_csv = "
           << toml::format_string(spec.telemetry.metrics_csv) << "\n";
      }
    }
  }
  if (spec.profile.profiling() || spec.profile.heartbeat()) {
    os << "\n[profile]\n";
    if (spec.profile.profiling()) os << "enabled = true\n";
    if (spec.profile.heartbeat()) {
      os << "progress_ms = " << spec.profile.progress_ms << "\n";
    }
  }
  if (spec.profile.gating()) {
    os << "\n[slo]\n"
       << "assert = "
       << toml::format_string(prof::slo_to_string(spec.profile.slo)) << "\n";
  }
  if (!spec.tenants.empty()) {
    os << "\n[tenant]\n"
       << "mapping = "
       << toml::format_string(tenant_mapping_name(spec.tenant_mapping))
       << "\n";
    // parse_tenant_section returns streams in name order; specs built
    // by parse already round-trip, programmatic ones re-load sorted.
    for (const auto& tenant : spec.tenants) {
      os << "\n[tenant." << tenant.name << "]\n";
      if (!tenant.trace_file.empty()) {
        os << "trace_file = " << toml::format_string(tenant.trace_file)
           << "\n";
      } else {
        os << "workload = " << toml::format_string(tenant.profile.name)
           << "\n";
      }
      if (tenant.interarrival_ns > 0.0) {
        os << "interarrival_ns = " << toml::format_float(tenant.interarrival_ns)
           << "\n";
      }
      if (tenant.burstiness > 0.0) {
        os << "burstiness = " << toml::format_float(tenant.burstiness) << "\n";
      }
      if (tenant.requests != 0) {
        os << "requests = " << tenant.requests << "\n";
      }
    }
  }
  for (const auto& device : spec.devices) {
    os << "\n[[device]]\n";
    write_device_spec_body(os, device, "device");
  }
  for (const auto& workload : spec.workloads) {
    os << "\n[[workload]]\n";
    write_workload_body(os, workload);
  }
}

std::string experiment_to_toml(const ExperimentSpec& spec) {
  std::ostringstream os;
  write_experiment(os, spec);
  return os.str();
}

}  // namespace comet::config
