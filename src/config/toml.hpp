#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

/// Minimal TOML-subset reader/writer for the declarative experiment API.
///
/// Supported surface (everything comet config documents need, nothing
/// more): `#` comments, `[section.path]` tables, `[[section.path]]`
/// arrays of tables, and `key = value` pairs with string, integer,
/// float, boolean and single-line array values. Dates, inline tables,
/// dotted keys and multi-line strings are rejected with a diagnostic.
///
/// Diagnostics follow the TraceFileSource style: every error — at parse
/// time or later, when a schema reader rejects a key — is a ParseError
/// carrying the source label and 1-based line number, formatted as
/// `file.toml:12: message`. Each parsed Value and Table remembers the
/// line it came from so semantic errors stay anchored to the document.
namespace comet::config::toml {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& source, std::uint64_t line,
             const std::string& message)
      : std::runtime_error(format(source, line, message)),
        source_(source),
        line_(line) {}

  const std::string& source() const { return source_; }
  std::uint64_t line() const { return line_; }

 private:
  static std::string format(const std::string& source, std::uint64_t line,
                            const std::string& message) {
    std::string out = source;
    if (line) {
      out += ':';
      out += std::to_string(line);
    }
    out += ": ";
    out += message;
    return out;
  }

  std::string source_;
  std::uint64_t line_;
};

struct Value {
  enum class Type { kString, kInteger, kFloat, kBoolean, kArray };

  Type type = Type::kString;
  std::string str;               ///< kString.
  std::int64_t integer = 0;      ///< kInteger.
  double number = 0.0;           ///< kFloat (and kInteger, widened).
  bool boolean = false;          ///< kBoolean.
  std::vector<Value> array;      ///< kArray.
  std::uint64_t line = 0;        ///< 1-based source line.

  /// Human name of the type for "expected X, got Y" diagnostics.
  const char* type_name() const;
};

/// One table: scalar entries, named sub-tables, and arrays of tables
/// (from `[[name]]` headers). Keys are unique across all three maps.
struct Table {
  std::map<std::string, Value> values;
  std::map<std::string, Table> children;
  std::map<std::string, std::vector<Table>> arrays;
  std::uint64_t line = 0;  ///< Header line (0 for the root / implicit).
  bool defined = false;    ///< An explicit `[header]` opened this table.

  bool empty() const {
    return values.empty() && children.empty() && arrays.empty();
  }
};

struct Document {
  Table root;
  std::string source;  ///< Diagnostics label: file path or caller name.
};

/// Parses a whole stream. Throws ParseError on the first malformed line.
Document parse(std::istream& in, const std::string& source);

/// In-memory convenience wrapper around parse().
Document parse_string(const std::string& text, const std::string& source);

/// Opens and parses `path`; throws ParseError (line 0) when the file
/// cannot be opened or read.
Document parse_file(const std::string& path);

// --- Writer helpers (the serialization side lives in serialize.cpp;
// --- these keep value formatting in one place so documents round-trip).

/// Shortest decimal form that parses back to exactly `v`, always
/// containing a '.' or exponent so the value re-parses as a float.
std::string format_float(double v);

/// TOML string literal: double-quoted with \\ \" \n \r \t escapes.
std::string format_string(const std::string& s);

/// `true` / `false`.
std::string format_boolean(bool b);

}  // namespace comet::config::toml
