#include "config/tenant_spec.hpp"

#include <set>
#include <stdexcept>

namespace comet::config {

const char* tenant_mapping_name(TenantMapping mapping) {
  switch (mapping) {
    case TenantMapping::kPartition: return "partition";
    case TenantMapping::kInterleave: return "interleave";
  }
  return "partition";
}

TenantMapping tenant_mapping_from_name(const std::string& name) {
  if (name == "partition") return TenantMapping::kPartition;
  if (name == "interleave") return TenantMapping::kInterleave;
  throw std::invalid_argument("unknown tenant mapping '" + name +
                              "'; expected partition or interleave");
}

void TenantSpec::validate() const {
  if (name.empty()) {
    throw std::invalid_argument("TenantSpec: tenant name must be non-empty");
  }
  // Names become [tenant.NAME] section headers and CLI list entries, so
  // they must stay bare keys in both grammars.
  for (const char c : name) {
    const bool bare = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!bare) {
      throw std::invalid_argument(
          "tenant '" + name +
          "': names may use letters, digits, '_' and '-' only");
    }
  }
  if (trace_file.empty() && profile.name.empty()) {
    throw std::invalid_argument("tenant '" + name +
                                "': needs a workload profile or a "
                                "trace file");
  }
  if (interarrival_ns < 0.0) {
    throw std::invalid_argument("tenant '" + name +
                                "': interarrival_ns must be >= 0");
  }
  if (burstiness < 0.0 || burstiness >= 1.0) {
    throw std::invalid_argument("tenant '" + name +
                                "': burstiness must be in [0, 1)");
  }
}

void validate_tenants(const std::vector<TenantSpec>& tenants) {
  std::set<std::string> names;
  for (const auto& tenant : tenants) {
    tenant.validate();
    if (!names.insert(tenant.name).second) {
      throw std::invalid_argument("duplicate tenant name '" + tenant.name +
                                  "'");
    }
  }
}

}  // namespace comet::config
