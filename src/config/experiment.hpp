#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "config/device_spec.hpp"
#include "config/serialize.hpp"
#include "memsim/trace_gen.hpp"

/// The declarative experiment API: one document (or one builder chain)
/// describes a full comet_sim run — devices, workloads, request counts,
/// seeds, channel overrides and trace files — and expands into the
/// sweep matrix without touching C++.
///
/// Document shape (`--config`):
///
///     [experiment]
///     name = "fig9"
///     devices = ["comet", "hybrid-comet"]   # registry tokens / all
///     workloads = ["gcc_like", "lbm_like"]  # profile names / all
///     requests = 20000                      # scalar or array (axis)
///     seed = [1, 2, 3]                      # scalar or array (axis)
///     channels = [8, 16]                    # scalar or array (axis);
///                                           # 0 keeps the device default
///     line_bytes = 128
///
///     [[device]]                            # inline device definitions
///     base = "comet"                        # (appended after tokens)
///     name = "comet-16ch"
///     [device.timing]
///     channels = 16
///
///     [[workload]]                          # inline workload profiles
///     name = "scan"
///     pattern = "streaming"
///
///     [controller]                          # scheduled replay (optional)
///     policy = ["fcfs", "frfcfs"]           # scalar or array (axis)
///     read_queue_depth = 32                 # 0 = unbounded
///     write_queue_depth = 32
///     drain_high_watermark = 28
///     drain_low_watermark = 12
///     run_threads = [1, 8]                  # scalar or array (axis);
///                                           # 0 = hardware threads
///
///     [telemetry]                           # observability (optional)
///     trace_out = "run.trace.json"          # Chrome trace-event JSON
///     trace_limit = 1000000                 # event cap (0 = unlimited)
///     metrics_interval_ns = 1000000         # epoch metrics time-series
///     metrics_csv = "timeline.csv"          # also dump the timeline
///
///     [profile]                             # host observability (optional)
///     enabled = true                        # stage/lane wall profiling
///     progress_ms = 500                     # live stderr heartbeat
///
///     [slo]                                 # run health gates (optional)
///     assert = "p99_read_ns<=2500"          # violation -> exit 3
///
///     [tenant]                              # multi-tenant run (optional)
///     mapping = "partition"                 # or "interleave"
///     [tenant.web]                          # one section per stream
///     workload = "gcc_like"                 # built-in profile name
///     interarrival_ns = 50.0                # rate override (0 = profile's)
///     burstiness = 0.5                      # open-loop burst knob [0, 1)
///     [tenant.batch]
///     trace_file = "batch.nvt"              # trace tenant
///
/// A `[controller]` holding only `run_threads` shards the direct replay
/// without engaging scheduling (results are bit-identical for any
/// thread count either way, so the axis measures wall-clock only).
///
/// The matrix expands devices × channels × policies × run_threads ×
/// workloads × requests × seeds in that nesting order, devices ordered
/// tokens-first then inline definitions (same for workloads).
namespace comet::config {

struct ExperimentSpec {
  std::string name = "experiment";

  /// Registry tokens (including `all` / `hybrid-all`), expanded before
  /// the inline `devices` below. The config layer cannot resolve these
  /// itself — the driver's registry does (resolve_experiment).
  std::vector<std::string> device_tokens;
  std::vector<DeviceSpec> devices;  ///< Inline / resolved definitions.

  /// Built-in profile names (including `all`), expanded before the
  /// inline `workloads`.
  std::vector<std::string> workload_names;
  std::vector<memsim::WorkloadProfile> workloads;

  // --- Sweep axes. Single-element vectors reproduce the CLI flags; a
  // --- longer vector multiplies the matrix.
  std::vector<std::uint64_t> requests = {20000};
  std::vector<std::uint64_t> seeds = {42};
  std::vector<int> channels = {0};  ///< 0 keeps each device's topology.

  /// Scheduling-policy axis: empty = legacy direct replay (no
  /// controller stage). Otherwise one matrix cell per policy, every
  /// cell sharing `controller`'s queue depths and drain watermarks.
  std::vector<sched::Policy> policies;
  sched::ControllerConfig controller;

  /// Sharded-replay axis: per-channel replay worker threads per run
  /// (memsim::resolve_run_threads semantics — 0 = one per hardware
  /// thread). Orthogonal to the scheduling axis; results are
  /// bit-identical across values.
  std::vector<int> run_threads = {1};

  /// Observability: request tracing and/or epoch metrics, applied to
  /// every matrix cell (each cell records into its own Collector).
  /// Default-constructed = disabled; never affects the replay results.
  comet::telemetry::TelemetrySpec telemetry;

  /// Host-side observability: run profiling, the live progress
  /// heartbeat and SLO health gates ([profile] / [slo] sections, the
  /// --profile/--progress/--assert-slo flags). Applied to every matrix
  /// cell (each cell profiles into its own Profiler); never affects
  /// the replay results.
  comet::prof::ProfSpec profile;

  /// Multi-tenant front-end: non-empty turns every matrix cell into an
  /// interleaved run of these streams (plus per-tenant run-alone
  /// baselines). The tenant specs then define the demand — workloads
  /// and trace_file must stay empty. List order fixes the 1-based
  /// tenant ids; parse_experiment orders streams by name.
  std::vector<TenantSpec> tenants;
  TenantMapping tenant_mapping = TenantMapping::kPartition;

  std::uint32_t line_bytes = 128;
  std::string trace_file;  ///< Non-empty: replay instead of synthesis.
  double cpu_ghz = 2.0;

  /// Provenance label: the config file path, or "" for CLI/programmatic
  /// specs. Carried into the JSON report's config_file field.
  std::string source;

  /// Throws std::invalid_argument on an inconsistent spec: no devices,
  /// no demand (workloads, trace file or tenants), workloads alongside
  /// a trace file, workloads or a trace file alongside tenants, empty
  /// axes, or an empty inline device.
  void validate() const;
};

/// Fluent construction of an ExperimentSpec — the programmatic face of
/// the same API the config files use.
///
///     auto spec = ExperimentBuilder()
///                     .name("ablation")
///                     .device("comet")
///                     .workload("gcc_like")
///                     .channels({4, 8, 16})
///                     .requests({10000})
///                     .build();
class ExperimentBuilder {
 public:
  ExperimentBuilder& name(std::string value);
  ExperimentBuilder& device(std::string token);
  ExperimentBuilder& device(DeviceSpec spec);
  ExperimentBuilder& workload(std::string profile_name);
  ExperimentBuilder& workload(memsim::WorkloadProfile profile);
  ExperimentBuilder& requests(std::vector<std::uint64_t> values);
  ExperimentBuilder& seeds(std::vector<std::uint64_t> values);
  ExperimentBuilder& channels(std::vector<int> values);

  /// Engages the scheduler stage: one matrix cell per policy.
  ExperimentBuilder& schedule(std::vector<sched::Policy> policies);

  /// Queue depths / drain watermarks shared by every policy cell (the
  /// config's own `policy` field is overwritten per cell).
  ExperimentBuilder& controller_config(sched::ControllerConfig config);

  /// Sharded-replay thread axis (0 = hardware threads).
  ExperimentBuilder& run_threads(std::vector<int> values);

  /// Observability spec applied to every cell (see ExperimentSpec).
  ExperimentBuilder& telemetry(comet::telemetry::TelemetrySpec spec);

  /// Host-side observability spec applied to every cell.
  ExperimentBuilder& profile(comet::prof::ProfSpec spec);

  /// Appends one tenant stream (engages the multi-tenant front-end).
  ExperimentBuilder& tenant(TenantSpec spec);
  ExperimentBuilder& tenant_mapping(TenantMapping mapping);
  ExperimentBuilder& line_bytes(std::uint32_t value);
  ExperimentBuilder& trace(std::string path, double cpu_ghz = 2.0);

  /// Validates and returns the spec (throws std::invalid_argument).
  ExperimentSpec build() const;

 private:
  ExperimentSpec spec_;
};

/// Parses a whole experiment document. `resolver` resolves `base`
/// references inside inline [[device]] tables (registry tokens in the
/// `devices` list are left for resolve_experiment / the driver). Throws
/// toml::ParseError with source:line diagnostics.
ExperimentSpec parse_experiment(const toml::Document& doc,
                                const DeviceResolver& resolver);

ExperimentSpec parse_experiment_file(const std::string& path,
                                     const DeviceResolver& resolver);

/// Serializes a spec as a parse_experiment-compatible document. Inline
/// devices/workloads are written in full; token lists are written
/// symbolically — resolve first (driver::resolve_experiment) for a
/// registry-independent dump.
void write_experiment(std::ostream& os, const ExperimentSpec& spec);

std::string experiment_to_toml(const ExperimentSpec& spec);

}  // namespace comet::config
