#include "config/toml.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace comet::config::toml {

namespace {

bool is_bare_key_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

std::string trim(const std::string& s) {
  std::size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  std::size_t end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

/// Drops a trailing `# comment`, respecting quoted strings.
std::string strip_comment(const std::string& line) {
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // Skip the escaped character.
      } else if (c == '"') {
        in_string = false;
      }
    } else if (c == '"') {
      in_string = true;
    } else if (c == '#') {
      return line.substr(0, i);
    }
  }
  return line;
}

/// Stateful value scanner over one line's `= ...` tail.
class ValueParser {
 public:
  ValueParser(const std::string& text, const std::string& source,
              std::uint64_t line)
      : text_(text), source_(source), line_(line) {}

  Value parse() {
    Value value = parse_one();
    skip_spaces();
    if (pos_ != text_.size()) {
      fail("unexpected trailing text '" + text_.substr(pos_) + "' after value");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(source_, line_, message);
  }

  void skip_spaces() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  Value parse_one() {
    skip_spaces();
    if (pos_ >= text_.size()) fail("missing value after '='");
    Value value;
    value.line = line_;
    const char c = text_[pos_];
    if (c == '"') return parse_string(std::move(value));
    if (c == '[') return parse_array(std::move(value));
    if (c == '\'') fail("literal (single-quoted) strings are not supported");
    if (c == '{') fail("inline tables are not supported");
    return parse_scalar(std::move(value));
  }

  Value parse_string(Value value) {
    value.type = Value::Type::kString;
    ++pos_;  // Opening quote.
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return value;
      if (c != '\\') {
        value.str += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': value.str += '"'; break;
        case '\\': value.str += '\\'; break;
        case 'n': value.str += '\n'; break;
        case 'r': value.str += '\r'; break;
        case 't': value.str += '\t'; break;
        default:
          fail(std::string("unsupported string escape '\\") + esc + "'");
      }
    }
    fail("unterminated string");
  }

  Value parse_array(Value value) {
    value.type = Value::Type::kArray;
    ++pos_;  // Opening bracket.
    skip_spaces();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.array.push_back(parse_one());
      skip_spaces();
      if (pos_ >= text_.size()) {
        fail("unterminated array (arrays are single-line)");
      }
      const char c = text_[pos_++];
      if (c == ']') return value;
      if (c != ',') {
        fail(std::string("expected ',' or ']' in array, got '") + c + "'");
      }
      skip_spaces();
      if (pos_ < text_.size() && text_[pos_] == ']') {  // Trailing comma.
        ++pos_;
        return value;
      }
    }
  }

  Value parse_scalar(Value value) {
    std::size_t end = pos_;
    while (end < text_.size() && text_[end] != ',' && text_[end] != ']' &&
           text_[end] != ' ' && text_[end] != '\t') {
      ++end;
    }
    const std::string token = text_.substr(pos_, end - pos_);
    pos_ = end;
    if (token == "true" || token == "false") {
      value.type = Value::Type::kBoolean;
      value.boolean = token == "true";
      return value;
    }

    // Underscore digit separators are allowed anywhere a digit pair is;
    // normalize them away before numeric parsing.
    std::string digits;
    digits.reserve(token.size());
    for (std::size_t i = 0; i < token.size(); ++i) {
      if (token[i] != '_') {
        digits += token[i];
        continue;
      }
      const bool digit_before =
          i > 0 && std::isdigit(static_cast<unsigned char>(token[i - 1]));
      const bool digit_after =
          i + 1 < token.size() &&
          std::isdigit(static_cast<unsigned char>(token[i + 1]));
      if (!digit_before || !digit_after) {
        fail("misplaced '_' separator in number '" + token + "'");
      }
    }
    if (digits.empty()) fail("missing value");

    const bool looks_float = digits.find_first_of(".eE") != std::string::npos;
    errno = 0;
    char* parse_end = nullptr;
    if (!looks_float) {
      const long long parsed = std::strtoll(digits.c_str(), &parse_end, 10);
      if (errno == 0 && parse_end == digits.c_str() + digits.size()) {
        value.type = Value::Type::kInteger;
        value.integer = parsed;
        value.number = static_cast<double>(parsed);
        return value;
      }
      fail("unrecognized value '" + token +
           "' (expected a string, integer, float, boolean or array)");
    }
    const double parsed = std::strtod(digits.c_str(), &parse_end);
    if (errno != 0 || parse_end != digits.c_str() + digits.size() ||
        !std::isfinite(parsed)) {
      fail("unrecognized value '" + token +
           "' (expected a string, integer, float, boolean or array)");
    }
    value.type = Value::Type::kFloat;
    value.number = parsed;
    return value;
  }

  const std::string& text_;
  const std::string& source_;
  std::uint64_t line_;
  std::size_t pos_ = 0;
};

/// Splits a `[a.b.c]` header path and validates each component.
std::vector<std::string> split_header_path(const std::string& path,
                                           const std::string& source,
                                           std::uint64_t line) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream is(path);
  while (std::getline(is, part, '.')) parts.push_back(trim(part));
  if (!path.empty() && path.back() == '.') parts.push_back("");
  for (const auto& p : parts) {
    if (p.empty()) {
      throw ParseError(source, line,
                       "empty component in section name [" + path + "]");
    }
    for (const char c : p) {
      if (!is_bare_key_char(c)) {
        throw ParseError(source, line,
                         "invalid character '" + std::string(1, c) +
                             "' in section name [" + path + "]");
      }
    }
  }
  if (parts.empty()) {
    throw ParseError(source, line, "empty section name");
  }
  return parts;
}

/// Walks a header path from the root, descending into the *last*
/// element of any array-of-tables on the way (TOML's rule for
/// `[[device]]` followed by `[device.timing]`).
Table* descend(Table* table, const std::vector<std::string>& parts,
               std::size_t count, const std::string& source,
               std::uint64_t line) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::string& name = parts[i];
    if (table->values.count(name)) {
      throw ParseError(source, line,
                       "'" + name + "' is already a key, not a section");
    }
    if (auto it = table->arrays.find(name); it != table->arrays.end()) {
      table = &it->second.back();
    } else {
      table = &table->children[name];
    }
  }
  return table;
}

}  // namespace

const char* Value::type_name() const {
  switch (type) {
    case Type::kString: return "string";
    case Type::kInteger: return "integer";
    case Type::kFloat: return "float";
    case Type::kBoolean: return "boolean";
    case Type::kArray: return "array";
  }
  return "value";
}

Document parse(std::istream& in, const std::string& source) {
  Document doc;
  doc.source = source;
  Table* current = &doc.root;

  std::string raw;
  std::uint64_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    const std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;

    if (line.front() == '[') {
      const bool is_array = line.size() > 1 && line[1] == '[';
      const std::string closer = is_array ? "]]" : "]";
      const std::size_t open = is_array ? 2 : 1;
      if (line.size() < open + closer.size() ||
          line.compare(line.size() - closer.size(), closer.size(), closer) !=
              0) {
        throw ParseError(source, line_no,
                         "malformed section header '" + line + "'");
      }
      const std::string path =
          trim(line.substr(open, line.size() - open - closer.size()));
      const auto parts = split_header_path(path, source, line_no);
      Table* parent =
          descend(&doc.root, parts, parts.size() - 1, source, line_no);
      const std::string& leaf = parts.back();
      if (parent->values.count(leaf)) {
        throw ParseError(source, line_no,
                         "'" + leaf + "' is already a key, not a section");
      }
      if (is_array) {
        if (parent->children.count(leaf)) {
          throw ParseError(source, line_no,
                           "[[" + path + "]] conflicts with the [" + path +
                               "] table defined earlier");
        }
        auto& array = parent->arrays[leaf];
        array.emplace_back();
        array.back().line = line_no;
        array.back().defined = true;
        current = &array.back();
      } else {
        if (parent->arrays.count(leaf)) {
          throw ParseError(source, line_no,
                           "[" + path + "] conflicts with the [[" + path +
                               "]] array defined earlier");
        }
        Table& table = parent->children[leaf];
        if (table.defined) {
          throw ParseError(source, line_no,
                           "duplicate section [" + path + "]");
        }
        table.defined = true;
        table.line = line_no;
        current = &table;
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw ParseError(source, line_no,
                       "expected 'key = value' or a [section], got '" + line +
                           "'");
    }
    const std::string key = trim(line.substr(0, eq));
    if (key.empty()) {
      throw ParseError(source, line_no, "missing key before '='");
    }
    for (const char c : key) {
      if (!is_bare_key_char(c)) {
        throw ParseError(source, line_no,
                         "invalid character '" + std::string(1, c) +
                             "' in key '" + key +
                             "' (dotted/quoted keys are not supported)");
      }
    }
    if (current->values.count(key) || current->children.count(key) ||
        current->arrays.count(key)) {
      throw ParseError(source, line_no, "duplicate key '" + key + "'");
    }
    current->values[key] =
        ValueParser(line.substr(eq + 1), source, line_no).parse();
  }
  return doc;
}

Document parse_string(const std::string& text, const std::string& source) {
  std::istringstream is(text);
  return parse(is, source);
}

Document parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    throw ParseError(path, 0, "cannot open config file");
  }
  in.peek();  // A directory opens but cannot be read; force the failure.
  if (in.bad()) {
    throw ParseError(path, 0, "cannot read config file");
  }
  in.clear();
  in.seekg(0);
  return parse(in, path);
}

std::string format_float(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  std::string shortest = buf;
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[40];
    std::snprintf(candidate, sizeof candidate, "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == v) {
      shortest = candidate;
      break;
    }
  }
  // Keep the float-ness visible so the value re-parses as a float.
  if (shortest.find_first_of(".eE") == std::string::npos) shortest += ".0";
  return shortest;
}

std::string format_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

std::string format_boolean(bool b) { return b ? "true" : "false"; }

}  // namespace comet::config::toml
