#include "config/serialize.hpp"

#include <climits>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace comet::config {

namespace {

/// Re-anchors std::invalid_argument from struct validate() calls to the
/// document location that produced the struct.
template <typename Fn>
void validated(const TableReader& reader, std::uint64_t line, Fn&& fn) {
  try {
    fn();
  } catch (const toml::ParseError&) {
    throw;
  } catch (const std::exception& e) {
    throw toml::ParseError(reader.source(), line, e.what());
  }
}

}  // namespace

TableReader::TableReader(const toml::Table& table, std::string source,
                         std::string section)
    : table_(table), source_(std::move(source)), section_(std::move(section)) {}

bool TableReader::has(const std::string& key) const {
  return table_.values.count(key) || table_.children.count(key) ||
         table_.arrays.count(key);
}

std::uint64_t TableReader::key_line(const std::string& key) const {
  if (auto it = table_.values.find(key); it != table_.values.end()) {
    return it->second.line;
  }
  if (auto it = table_.children.find(key); it != table_.children.end()) {
    return it->second.line;
  }
  if (auto it = table_.arrays.find(key);
      it != table_.arrays.end() && !it->second.empty()) {
    return it->second.front().line;
  }
  return 0;
}

void TableReader::fail(const std::string& message) const {
  throw toml::ParseError(source_, table_.line,
                         section_ + ": " + message);
}

void TableReader::fail_at(std::uint64_t line,
                          const std::string& message) const {
  throw toml::ParseError(source_, line, section_ + ": " + message);
}

const toml::Value* TableReader::find_value(const std::string& key,
                                           toml::Value::Type expected) {
  const auto it = table_.values.find(key);
  if (it == table_.values.end()) {
    if (table_.children.count(key) || table_.arrays.count(key)) {
      fail_at(key_line(key), "'" + key + "' must be a value, not a section");
    }
    return nullptr;
  }
  consumed_.insert(key);
  const toml::Value& value = it->second;
  const bool numeric_ok = expected == toml::Value::Type::kFloat &&
                          value.type == toml::Value::Type::kInteger;
  if (value.type != expected && !numeric_ok) {
    toml::Value expected_probe;
    expected_probe.type = expected;
    fail_at(value.line, "'" + key + "' expects " + expected_probe.type_name() +
                            ", got " + value.type_name());
  }
  return &value;
}

std::optional<std::string> TableReader::get_string(const std::string& key) {
  const toml::Value* v = find_value(key, toml::Value::Type::kString);
  if (!v) return std::nullopt;
  return v->str;
}

std::optional<bool> TableReader::get_bool(const std::string& key) {
  const toml::Value* v = find_value(key, toml::Value::Type::kBoolean);
  if (!v) return std::nullopt;
  return v->boolean;
}

std::optional<std::int64_t> TableReader::get_int(const std::string& key,
                                                 std::int64_t min,
                                                 std::int64_t max) {
  const toml::Value* v = find_value(key, toml::Value::Type::kInteger);
  if (!v) return std::nullopt;
  if (v->integer < min || v->integer > max) {
    fail_at(v->line, "'" + key + "' must be between " + std::to_string(min) +
                         " and " + std::to_string(max) + ", got " +
                         std::to_string(v->integer));
  }
  return v->integer;
}

std::optional<std::uint64_t> TableReader::get_u64(const std::string& key,
                                                  std::uint64_t min,
                                                  std::uint64_t max) {
  const toml::Value* v = find_value(key, toml::Value::Type::kInteger);
  if (!v) return std::nullopt;
  if (v->integer < 0) {
    fail_at(v->line, "'" + key + "' must be non-negative, got " +
                         std::to_string(v->integer));
  }
  const auto parsed = static_cast<std::uint64_t>(v->integer);
  if (parsed < min || parsed > max) {
    fail_at(v->line, "'" + key + "' must be between " + std::to_string(min) +
                         " and " + std::to_string(max) + ", got " +
                         std::to_string(parsed));
  }
  return parsed;
}

std::optional<double> TableReader::get_double(const std::string& key,
                                              double min, double max) {
  const toml::Value* v = find_value(key, toml::Value::Type::kFloat);
  if (!v) return std::nullopt;
  if (!std::isfinite(v->number) || v->number < min || v->number > max) {
    std::ostringstream msg;
    msg << "'" << key << "' must be between " << min << " and " << max
        << ", got " << v->number;
    fail_at(v->line, msg.str());
  }
  return v->number;
}

std::optional<std::vector<std::uint64_t>> TableReader::get_u64_list(
    const std::string& key, std::uint64_t min, std::uint64_t max) {
  const auto it = table_.values.find(key);
  if (it == table_.values.end()) {
    if (has(key)) fail_at(key_line(key), "'" + key + "' must be a value");
    return std::nullopt;
  }
  consumed_.insert(key);
  const toml::Value& value = it->second;
  const auto check = [&](const toml::Value& v) -> std::uint64_t {
    if (v.type != toml::Value::Type::kInteger) {
      fail_at(v.line, "'" + key + "' expects an integer or an array of "
                          "integers, got " + std::string(v.type_name()));
    }
    if (v.integer < 0 || static_cast<std::uint64_t>(v.integer) < min ||
        static_cast<std::uint64_t>(v.integer) > max) {
      fail_at(v.line, "'" + key + "' values must be between " +
                          std::to_string(min) + " and " + std::to_string(max) +
                          ", got " + std::to_string(v.integer));
    }
    return static_cast<std::uint64_t>(v.integer);
  };
  std::vector<std::uint64_t> out;
  if (value.type == toml::Value::Type::kArray) {
    if (value.array.empty()) {
      fail_at(value.line, "'" + key + "' must not be an empty array");
    }
    for (const auto& element : value.array) out.push_back(check(element));
  } else {
    out.push_back(check(value));
  }
  return out;
}

std::optional<std::vector<std::string>> TableReader::get_string_list(
    const std::string& key) {
  const auto it = table_.values.find(key);
  if (it == table_.values.end()) {
    if (has(key)) fail_at(key_line(key), "'" + key + "' must be a value");
    return std::nullopt;
  }
  consumed_.insert(key);
  const toml::Value& value = it->second;
  const auto check = [&](const toml::Value& v) -> const std::string& {
    if (v.type != toml::Value::Type::kString) {
      fail_at(v.line, "'" + key + "' expects a string or an array of "
                          "strings, got " + std::string(v.type_name()));
    }
    return v.str;
  };
  std::vector<std::string> out;
  if (value.type == toml::Value::Type::kArray) {
    for (const auto& element : value.array) out.push_back(check(element));
  } else {
    out.push_back(check(value));
  }
  return out;
}

const toml::Table* TableReader::child(const std::string& key) {
  const auto it = table_.children.find(key);
  if (it == table_.children.end()) {
    if (table_.values.count(key) || table_.arrays.count(key)) {
      fail_at(key_line(key), "'" + key + "' must be a [" + key + "] table");
    }
    return nullptr;
  }
  consumed_.insert(key);
  return &it->second;
}

const std::vector<toml::Table>* TableReader::array_of_tables(
    const std::string& key) {
  const auto it = table_.arrays.find(key);
  if (it == table_.arrays.end()) {
    if (table_.values.count(key) || table_.children.count(key)) {
      fail_at(key_line(key),
              "'" + key + "' must be a [[" + key + "]] array of tables");
    }
    return nullptr;
  }
  consumed_.insert(key);
  return &it->second;
}

void TableReader::finish() {
  std::string unknown;
  std::uint64_t best_line = 0;
  const auto consider = [&](const std::string& key, std::uint64_t line) {
    if (consumed_.count(key)) return;
    if (!unknown.empty() && line >= best_line) return;
    unknown = key;
    best_line = line;
  };
  for (const auto& [key, value] : table_.values) consider(key, value.line);
  for (const auto& [key, child_table] : table_.children) {
    consider(key, child_table.line);
  }
  for (const auto& [key, tables] : table_.arrays) {
    consider(key, tables.empty() ? table_.line : tables.front().line);
  }
  if (!unknown.empty()) {
    fail_at(best_line, "unknown key '" + unknown + "'");
  }
}

const char* pattern_name(memsim::Pattern pattern) {
  switch (pattern) {
    case memsim::Pattern::kStreaming: return "streaming";
    case memsim::Pattern::kStrided: return "strided";
    case memsim::Pattern::kRandom: return "random";
    case memsim::Pattern::kPointerChase: return "pointer_chase";
    case memsim::Pattern::kMixed: return "mixed";
  }
  return "random";
}

memsim::Pattern pattern_from_name(const std::string& name) {
  if (name == "streaming") return memsim::Pattern::kStreaming;
  if (name == "strided") return memsim::Pattern::kStrided;
  if (name == "random") return memsim::Pattern::kRandom;
  if (name == "pointer_chase") return memsim::Pattern::kPointerChase;
  if (name == "mixed") return memsim::Pattern::kMixed;
  throw std::invalid_argument(
      "unknown pattern '" + name +
      "'; expected streaming, strided, random, pointer_chase or mixed");
}

// --- Writers -------------------------------------------------------------

namespace {

const char* kWriteAllocate = "write-allocate";
const char* kWriteNoAllocate = "write-no-allocate";

void write_cache_body(std::ostream& os, const hybrid::DramCacheConfig& cache) {
  os << "capacity_bytes = " << cache.capacity_bytes << "\n"
     << "ways = " << cache.ways << "\n"
     << "line_bytes = " << cache.line_bytes << "\n"
     << "policy = "
     << toml::format_string(cache.write_allocate ? kWriteAllocate
                                                 : kWriteNoAllocate)
     << "\n";
}

}  // namespace

void write_device_model_body(std::ostream& os, const memsim::DeviceModel& model,
                             const std::string& prefix) {
  os << "name = " << toml::format_string(model.name) << "\n"
     << "capacity_bytes = " << model.capacity_bytes << "\n";

  const auto& t = model.timing;
  os << "\n[" << prefix << ".timing]\n"
     << "channels = " << t.channels << "\n"
     << "banks_per_channel = " << t.banks_per_channel << "\n"
     << "line_bytes = " << t.line_bytes << "\n"
     << "line_striped_across_banks = "
     << toml::format_boolean(t.line_striped_across_banks) << "\n"
     << "accesses_per_line = " << t.accesses_per_line << "\n"
     << "read_occupancy_ps = " << t.read_occupancy_ps << "\n"
     << "write_occupancy_ps = " << t.write_occupancy_ps << "\n"
     << "burst_ps = " << t.burst_ps << "\n"
     << "interface_ps = " << t.interface_ps << "\n"
     << "read_tail_ps = " << t.read_tail_ps << "\n"
     << "write_tail_ps = " << t.write_tail_ps << "\n"
     << "has_row_buffer = " << toml::format_boolean(t.has_row_buffer) << "\n"
     << "row_size_bytes = " << t.row_size_bytes << "\n"
     << "row_hit_saving_ps = " << t.row_hit_saving_ps << "\n"
     << "refresh_interval_ps = " << t.refresh_interval_ps << "\n"
     << "refresh_duration_ps = " << t.refresh_duration_ps << "\n"
     << "region_size_bytes = " << t.region_size_bytes << "\n"
     << "region_switch_ps = " << t.region_switch_ps << "\n"
     << "queue_depth = " << t.queue_depth << "\n";

  const auto& e = model.energy;
  os << "\n[" << prefix << ".energy]\n"
     << "read_pj_per_bit = " << toml::format_float(e.read_pj_per_bit) << "\n"
     << "write_pj_per_bit = " << toml::format_float(e.write_pj_per_bit) << "\n"
     << "background_power_w = " << toml::format_float(e.background_power_w)
     << "\n"
     << "gateable_background_power_w = "
     << toml::format_float(e.gateable_background_power_w) << "\n";
}

void write_device_spec_body(std::ostream& os, const DeviceSpec& spec,
                            const std::string& prefix) {
  if (spec.flat) {
    os << "kind = \"flat\"\n";
    write_device_model_body(os, *spec.flat, prefix);
    return;
  }
  if (!spec.tiered) {
    throw std::logic_error(
        "write_device_spec_body: empty spec '" + spec.name +
        "' (neither flat nor tiered is engaged)");
  }
  const auto& tiered = *spec.tiered;
  os << "kind = \"hybrid\"\n"
     << "name = " << toml::format_string(tiered.name) << "\n";
  os << "\n[" << prefix << ".cache]\n";
  write_cache_body(os, tiered.cache);
  os << "\n[" << prefix << ".dram]\n";
  write_device_model_body(os, tiered.dram, prefix + ".dram");
  os << "\n[" << prefix << ".backend]\n";
  write_device_model_body(os, tiered.backend, prefix + ".backend");
}

void write_workload_body(std::ostream& os,
                         const memsim::WorkloadProfile& profile) {
  os << "name = " << toml::format_string(profile.name) << "\n"
     << "pattern = " << toml::format_string(pattern_name(profile.pattern))
     << "\n"
     << "read_fraction = " << toml::format_float(profile.read_fraction) << "\n"
     << "locality = " << toml::format_float(profile.locality) << "\n"
     << "zipf_exponent = " << toml::format_float(profile.zipf_exponent) << "\n"
     << "working_set_bytes = " << profile.working_set_bytes << "\n"
     << "avg_interarrival_ns = "
     << toml::format_float(profile.avg_interarrival_ns) << "\n"
     << "stride_bytes = " << profile.stride_bytes << "\n";
}

std::string device_spec_to_toml(const DeviceSpec& spec) {
  std::ostringstream os;
  os << "[device]\n";
  write_device_spec_body(os, spec, "device");
  return os.str();
}

std::string workload_to_toml(const memsim::WorkloadProfile& profile) {
  std::ostringstream os;
  os << "[workload]\n";
  write_workload_body(os, profile);
  return os.str();
}

// --- Readers -------------------------------------------------------------

namespace {

/// Applies `capacity_bytes` / `capacity_gb` plus the [timing] and
/// [energy] sub-tables of `reader`'s table onto `model`. `include_name`
/// is false when the table's `name` key belongs to an enclosing hybrid,
/// not to this model.
void apply_model_keys(TableReader& reader, memsim::DeviceModel& model,
                      bool include_name) {
  if (include_name) {
    if (auto name = reader.get_string("name")) model.name = *name;
  }
  const bool has_bytes = reader.has("capacity_bytes");
  if (auto v = reader.get_u64("capacity_bytes", 1)) model.capacity_bytes = *v;
  if (auto v = reader.get_u64("capacity_gb", 1, 1ull << 33)) {
    if (has_bytes) {
      reader.fail_at(reader.key_line("capacity_gb"),
                     "'capacity_gb' and 'capacity_bytes' are mutually "
                     "exclusive");
    }
    model.capacity_bytes = *v << 30;
  }

  if (const toml::Table* timing = reader.child("timing")) {
    TableReader t(*timing, reader.source(), reader.section() + ".timing");
    auto& m = model.timing;
    if (auto v = t.get_int("channels", 1, INT_MAX)) m.channels = int(*v);
    if (auto v = t.get_int("banks_per_channel", 1, INT_MAX)) {
      m.banks_per_channel = int(*v);
    }
    if (auto v = t.get_u64("line_bytes", 1, UINT32_MAX)) {
      m.line_bytes = std::uint32_t(*v);
    }
    if (auto v = t.get_bool("line_striped_across_banks")) {
      m.line_striped_across_banks = *v;
    }
    if (auto v = t.get_int("accesses_per_line", 1, INT_MAX)) {
      m.accesses_per_line = int(*v);
    }
    if (auto v = t.get_u64("read_occupancy_ps")) m.read_occupancy_ps = *v;
    if (auto v = t.get_u64("write_occupancy_ps")) m.write_occupancy_ps = *v;
    if (auto v = t.get_u64("burst_ps")) m.burst_ps = *v;
    if (auto v = t.get_u64("interface_ps")) m.interface_ps = *v;
    if (auto v = t.get_u64("read_tail_ps")) m.read_tail_ps = *v;
    if (auto v = t.get_u64("write_tail_ps")) m.write_tail_ps = *v;
    if (auto v = t.get_bool("has_row_buffer")) m.has_row_buffer = *v;
    if (auto v = t.get_u64("row_size_bytes")) m.row_size_bytes = *v;
    if (auto v = t.get_u64("row_hit_saving_ps")) m.row_hit_saving_ps = *v;
    if (auto v = t.get_u64("refresh_interval_ps")) m.refresh_interval_ps = *v;
    if (auto v = t.get_u64("refresh_duration_ps")) m.refresh_duration_ps = *v;
    if (auto v = t.get_u64("region_size_bytes")) m.region_size_bytes = *v;
    if (auto v = t.get_u64("region_switch_ps")) m.region_switch_ps = *v;
    if (auto v = t.get_int("queue_depth", 1, INT_MAX)) {
      m.queue_depth = int(*v);
    }
    t.finish();
  }

  if (const toml::Table* energy = reader.child("energy")) {
    TableReader e(*energy, reader.source(), reader.section() + ".energy");
    auto& m = model.energy;
    if (auto v = e.get_double("read_pj_per_bit", 0.0, 1e9)) {
      m.read_pj_per_bit = *v;
    }
    if (auto v = e.get_double("write_pj_per_bit", 0.0, 1e9)) {
      m.write_pj_per_bit = *v;
    }
    if (auto v = e.get_double("background_power_w", 0.0, 1e6)) {
      m.background_power_w = *v;
    }
    if (auto v = e.get_double("gateable_background_power_w", 0.0, 1e6)) {
      m.gateable_background_power_w = *v;
    }
    e.finish();
  }
}

/// Resolves a base token, re-anchoring resolver errors (unknown token,
/// etc.) to the `base` key's line.
DeviceSpec resolve_base(TableReader& reader, const DeviceResolver& resolver,
                        const std::string& base) {
  if (!resolver) {
    reader.fail_at(reader.key_line("base"),
                   "'base' references are not available here (no device "
                   "registry to resolve '" + base + "')");
  }
  try {
    return resolver(base);
  } catch (const toml::ParseError&) {
    throw;
  } catch (const std::exception& e) {
    reader.fail_at(reader.key_line("base"), e.what());
  }
}

/// Parses a [..backend] table: a flat model, optionally starting from a
/// flat `base` token or from `inherited` (the enclosing hybrid base's
/// backend).
memsim::DeviceModel parse_backend(const toml::Table& table,
                                  const std::string& source,
                                  const std::string& section,
                                  const DeviceResolver& resolver,
                                  const memsim::DeviceModel* inherited) {
  TableReader reader(table, source, section);
  memsim::DeviceModel model;
  if (auto base = reader.get_string("base")) {
    const DeviceSpec spec = resolve_base(reader, resolver, *base);
    if (!spec.flat) {
      reader.fail_at(reader.key_line("base"),
                     "backend base '" + *base +
                         "' must be a flat device, not a hybrid one");
    }
    model = *spec.flat;
  } else if (inherited) {
    model = *inherited;
  }
  apply_model_keys(reader, model, /*include_name=*/true);
  reader.finish();
  return model;
}

void apply_cache_keys(const toml::Table& table, const std::string& source,
                      const std::string& section,
                      hybrid::DramCacheConfig& cache, bool& capacity_set) {
  TableReader reader(table, source, section);
  const bool has_bytes = reader.has("capacity_bytes");
  if (auto v = reader.get_u64("capacity_bytes", 1)) {
    cache.capacity_bytes = *v;
    capacity_set = true;
  }
  if (auto v = reader.get_u64("capacity_mb", 1, 1ull << 30)) {
    if (has_bytes) {
      reader.fail_at(reader.key_line("capacity_mb"),
                     "'capacity_mb' and 'capacity_bytes' are mutually "
                     "exclusive");
    }
    cache.capacity_bytes = *v << 20;
    capacity_set = true;
  }
  if (auto v = reader.get_int("ways", 1, INT_MAX)) cache.ways = int(*v);
  if (auto v = reader.get_u64("line_bytes", 1, UINT32_MAX)) {
    cache.line_bytes = std::uint32_t(*v);
  }
  if (auto policy = reader.get_string("policy")) {
    if (*policy == kWriteAllocate) {
      cache.write_allocate = true;
    } else if (*policy == kWriteNoAllocate) {
      cache.write_allocate = false;
    } else {
      reader.fail_at(reader.key_line("policy"),
                     "unknown cache policy '" + *policy + "'; expected " +
                         kWriteAllocate + " or " + kWriteNoAllocate);
    }
  }
  reader.finish();
}

}  // namespace

DeviceSpec parse_device(const toml::Table& table, const std::string& source,
                        const DeviceResolver& resolver) {
  TableReader reader(table, source, "[device]");

  DeviceSpec base_spec;
  const auto base = reader.get_string("base");
  if (base) base_spec = resolve_base(reader, resolver, *base);

  const auto kind = reader.get_string("kind");
  if (kind && *kind != "flat" && *kind != "hybrid") {
    reader.fail_at(reader.key_line("kind"),
                   "'kind' must be \"flat\" or \"hybrid\", got \"" + *kind +
                       "\"");
  }

  const toml::Table* cache_table = reader.child("cache");
  const toml::Table* dram_table = reader.child("dram");
  const toml::Table* backend_table = reader.child("backend");

  const bool base_hybrid = base_spec.is_hybrid();
  const bool want_hybrid = base_hybrid || cache_table || dram_table ||
                           backend_table || (kind && *kind == "hybrid");
  if (kind && *kind == "flat" && want_hybrid) {
    reader.fail_at(reader.key_line("kind"),
                   "kind = \"flat\" contradicts the hybrid sections/base of "
                   "this device");
  }

  const auto name = reader.get_string("name");
  if (!base && !name) {
    reader.fail("'name' is required when no 'base' is given");
  }

  if (!want_hybrid) {
    memsim::DeviceModel model =
        base ? *base_spec.flat : memsim::DeviceModel{};
    apply_model_keys(reader, model, /*include_name=*/true);
    reader.finish();
    DeviceSpec spec;
    validated(reader, table.line, [&] {
      model.validate();
      spec = DeviceSpec(std::move(model));
    });
    return spec;
  }

  // --- Hybrid: assemble cache + dram tier + backend.
  hybrid::TieredConfig config;
  bool cache_capacity_set = false;

  if (base_hybrid) {
    config = *base_spec.tiered;
    // Backend fields of a hybrid base belong under [..backend]; loose
    // top-level model keys would be ambiguous between the tiers.
    for (const char* key : {"capacity_bytes", "capacity_gb"}) {
      if (reader.has(key)) {
        reader.fail_at(reader.key_line(key),
                       std::string("'") + key +
                           "' on a hybrid device is ambiguous; set it under "
                           "[..backend] or [..dram]");
      }
    }
    for (const char* key : {"timing", "energy"}) {
      if (reader.has(key)) {
        reader.fail_at(reader.key_line(key),
                       std::string("[..") + key +
                           "] on a hybrid device is ambiguous; configure "
                           "[..backend] or [..dram] instead");
      }
    }
  } else if (base) {
    // A flat base promoted to a hybrid: the flat model is the backend,
    // and top-level model keys configure it directly.
    if (backend_table) {
      reader.fail_at(backend_table->line,
                     "base '" + *base +
                         "' is flat and already provides the backend; "
                         "override its fields at the top level instead of "
                         "[..backend]");
    }
    config.backend = *base_spec.flat;
    apply_model_keys(reader, config.backend, /*include_name=*/false);
  } else {
    if (!backend_table) {
      reader.fail(
          "a hybrid device needs a [..backend] section (or a hybrid 'base')");
    }
  }

  if (backend_table) {
    config.backend = parse_backend(
        *backend_table, source, reader.section() + ".backend", resolver,
        base_hybrid ? &base_spec.tiered->backend : nullptr);
  }

  if (cache_table) {
    apply_cache_keys(*cache_table, source, reader.section() + ".cache",
                     config.cache, cache_capacity_set);
  }

  // The DRAM tier is derived from the cache capacity (HBM-class model
  // scaled to size) unless the document pins it down explicitly.
  const bool rebuild_dram = !base_hybrid || cache_capacity_set;
  if (rebuild_dram) {
    config.dram = hybrid::dram_cache_tier_model(config.cache.capacity_bytes);
  }
  if (dram_table) {
    TableReader d(*dram_table, source, reader.section() + ".dram");
    apply_model_keys(d, config.dram, /*include_name=*/true);
    d.finish();
  }

  config.name = name ? *name : base_spec.name;
  reader.finish();
  DeviceSpec spec;
  validated(reader, table.line, [&] {
    config.validate();
    spec = DeviceSpec(std::move(config));
  });
  return spec;
}

DeviceSpec parse_device_file(const std::string& path,
                             const DeviceResolver& resolver) {
  const toml::Document doc = toml::parse_file(path);
  TableReader root(doc.root, doc.source, "device file");
  const toml::Table* device = root.child("device");
  if (!device) {
    root.fail("expected a [device] section");
  }
  root.finish();
  return parse_device(*device, doc.source, resolver);
}

memsim::WorkloadProfile parse_workload(const toml::Table& table,
                                       const std::string& source) {
  TableReader reader(table, source, "[workload]");
  memsim::WorkloadProfile profile;
  if (auto name = reader.get_string("name")) {
    profile.name = *name;
  } else {
    reader.fail("'name' is required");
  }
  if (auto pattern = reader.get_string("pattern")) {
    try {
      profile.pattern = pattern_from_name(*pattern);
    } catch (const std::exception& e) {
      reader.fail_at(reader.key_line("pattern"), e.what());
    }
  }
  if (auto v = reader.get_double("read_fraction", 0.0, 1.0)) {
    profile.read_fraction = *v;
  }
  if (auto v = reader.get_double("locality", 0.0, 1.0)) profile.locality = *v;
  if (auto v = reader.get_double("zipf_exponent", 0.0, 16.0)) {
    profile.zipf_exponent = *v;
  }
  if (auto v = reader.get_u64("working_set_bytes", 1)) {
    profile.working_set_bytes = *v;
  }
  if (auto v = reader.get_double("avg_interarrival_ns", 1e-6, 1e12)) {
    profile.avg_interarrival_ns = *v;
  }
  if (auto v = reader.get_u64("stride_bytes", 1, UINT32_MAX)) {
    profile.stride_bytes = std::uint32_t(*v);
  }
  reader.finish();
  return profile;
}

void parse_controller_section(const toml::Table& table,
                              const std::string& source,
                              std::vector<sched::Policy>& policies,
                              sched::ControllerConfig& config,
                              std::vector<int>& run_threads) {
  TableReader reader(table, source, "[controller]");
  if (auto threads = reader.get_u64_list("run_threads", 0, INT_MAX)) {
    if (threads->empty()) {
      reader.fail_at(reader.key_line("run_threads"),
                     "'run_threads' must list at least one thread count");
    }
    run_threads.clear();
    for (const auto t : *threads) run_threads.push_back(int(t));
  }
  // A section that only shards (run_threads alone) does not engage the
  // scheduler: the replay stays direct. Any scheduling key does.
  const bool scheduling =
      reader.has("policy") || reader.has("read_queue_depth") ||
      reader.has("write_queue_depth") || reader.has("drain_high_watermark") ||
      reader.has("drain_low_watermark") || reader.has("tenant_tokens") ||
      reader.has("starvation_cap");
  policies.clear();
  if (!scheduling) {
    reader.finish();
    return;
  }
  if (auto names = reader.get_string_list("policy")) {
    if (names->empty()) {
      reader.fail_at(reader.key_line("policy"),
                     "'policy' must name at least one scheduling policy");
    }
    for (const auto& name : *names) {
      try {
        policies.push_back(sched::policy_from_name(name));
      } catch (const std::exception& e) {
        reader.fail_at(reader.key_line("policy"), e.what());
      }
    }
  } else {
    policies.push_back(sched::Policy::kFcfs);
  }
  config.policy = policies.front();

  const bool depth_given = reader.has("write_queue_depth");
  if (auto v = reader.get_int("read_queue_depth", 0, INT_MAX)) {
    config.read_queue_depth = int(*v);
  }
  if (auto v = reader.get_int("write_queue_depth", 0, INT_MAX)) {
    config.write_queue_depth = int(*v);
  }
  // A document that bounds the write queue wants watermarks scaled to
  // that bound, not left at the depth-32 defaults; explicit watermark
  // keys below then override the derived values — the same semantics
  // as the --write-q/--drain-* CLI flags.
  if (depth_given) {
    const auto derived = sched::ControllerConfig::with_depths(
        config.policy, config.read_queue_depth, config.write_queue_depth);
    config.drain_high_watermark = derived.drain_high_watermark;
    config.drain_low_watermark = derived.drain_low_watermark;
  }
  if (auto v = reader.get_int("drain_high_watermark", 1, INT_MAX)) {
    config.drain_high_watermark = int(*v);
  }
  if (auto v = reader.get_int("drain_low_watermark", 0, INT_MAX)) {
    config.drain_low_watermark = int(*v);
  }
  if (auto v = reader.get_int("tenant_tokens", 1, INT_MAX)) {
    config.tenant_tokens = int(*v);
  }
  if (auto v = reader.get_int("starvation_cap", 1, INT_MAX)) {
    config.starvation_cap = int(*v);
  }
  reader.finish();
  validated(reader, table.line, [&] { config.validate(); });
}

void parse_telemetry_section(const toml::Table& table,
                             const std::string& source,
                             telemetry::TelemetrySpec& spec) {
  TableReader reader(table, source, "[telemetry]");
  if (auto v = reader.get_string("trace_out")) spec.trace_path = *v;
  if (auto v = reader.get_u64("trace_limit")) {
    if (spec.trace_path.empty()) {
      reader.fail_at(reader.key_line("trace_limit"),
                     "'trace_limit' requires 'trace_out'; there is no event "
                     "budget to cap without a trace");
    }
    spec.trace_limit = *v;
  }
  // Documents speak nanoseconds (like every other latency knob); the
  // spec stores picoseconds like the replay clock.
  if (auto v = reader.get_u64("metrics_interval_ns", 1, UINT64_MAX / 1000)) {
    spec.metrics_interval_ps = *v * 1000;
  }
  if (auto v = reader.get_string("metrics_csv")) spec.metrics_csv = *v;
  reader.finish();
  validated(reader, table.line, [&] { spec.validate(); });
}

void parse_profile_section(const toml::Table& table, const std::string& source,
                           prof::ProfSpec& spec) {
  TableReader reader(table, source, "[profile]");
  if (auto v = reader.get_bool("enabled")) spec.profile = *v;
  if (auto v = reader.get_u64("progress_ms", 1)) spec.progress_ms = *v;
  reader.finish();
  validated(reader, table.line, [&] { spec.validate(); });
}

void parse_slo_section(const toml::Table& table, const std::string& source,
                       prof::ProfSpec& spec) {
  TableReader reader(table, source, "[slo]");
  if (auto lists = reader.get_string_list("assert")) {
    for (const std::string& text : lists.value()) {
      try {
        std::vector<prof::SloPredicate> parsed = prof::parse_slo(text);
        spec.slo.insert(spec.slo.end(), parsed.begin(), parsed.end());
      } catch (const std::exception& e) {
        reader.fail_at(reader.key_line("assert"), e.what());
      }
    }
  }
  reader.finish();
  validated(reader, table.line, [&] { spec.validate(); });
}

void parse_tenant_section(const toml::Table& table, const std::string& source,
                          std::vector<TenantSpec>& tenants,
                          TenantMapping& mapping) {
  TableReader reader(table, source, "[tenant]");
  if (auto name = reader.get_string("mapping")) {
    try {
      mapping = tenant_mapping_from_name(*name);
    } catch (const std::exception& e) {
      reader.fail_at(reader.key_line("mapping"), e.what());
    }
  }
  tenants.clear();
  // toml::Table keeps sub-sections name-sorted, so stream order — and
  // with it the 1-based tenant ids and per-tenant seed splits — is the
  // sorted name order regardless of document layout.
  for (const auto& [name, child] : table.children) {
    (void)reader.child(name);  // Mark consumed for reader.finish().
    TableReader t(child, source, "[tenant." + name + "]");
    TenantSpec spec;
    spec.name = name;
    if (auto workload = t.get_string("workload")) {
      try {
        spec.profile = memsim::profile_by_name(*workload);
      } catch (const std::exception& e) {
        t.fail_at(t.key_line("workload"), e.what());
      }
    }
    if (auto v = t.get_string("trace_file")) spec.trace_file = *v;
    if (auto v = t.get_double("interarrival_ns", 0.0, 1e12)) {
      spec.interarrival_ns = *v;
    }
    if (auto v = t.get_double("burstiness", 0.0, 1.0)) spec.burstiness = *v;
    if (auto v = t.get_u64("requests", 1)) spec.requests = *v;
    t.finish();
    validated(t, child.line, [&] { spec.validate(); });
    tenants.push_back(std::move(spec));
  }
  if (tenants.empty()) {
    reader.fail("a [tenant] section needs at least one [tenant.NAME] stream");
  }
  reader.finish();
  validated(reader, table.line, [&] { validate_tenants(tenants); });
}

}  // namespace comet::config
