#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "config/device_spec.hpp"
#include "config/tenant_spec.hpp"
#include "config/toml.hpp"
#include "memsim/trace_gen.hpp"
#include "prof/profiler.hpp"
#include "telemetry/telemetry.hpp"

/// Two-way serialization between the simulator's configuration structs
/// (memsim::DeviceModel, hybrid::TieredConfig, memsim::WorkloadProfile,
/// DeviceSpec) and the TOML-subset documents of the declarative
/// experiment API.
///
/// Reading is schema-checked: unknown keys, wrong value types and
/// out-of-range values all raise toml::ParseError anchored to the
/// offending line. Writing emits every field with round-trip precision,
/// so `parse(write(x)) == x` for any valid spec — the invariant behind
/// `--dump-config`.
namespace comet::config {

/// Maps a `base = "<token>"` reference to a resolved built-in spec. The
/// driver registry supplies one (registry_resolver()); pass an empty
/// function where base references must be rejected. Expected to throw
/// std::invalid_argument on unknown tokens.
using DeviceResolver = std::function<DeviceSpec(const std::string& token)>;

/// Schema-checking view over one parsed table: typed getters with range
/// checks, consumed-key tracking, and a finish() pass that rejects any
/// key the schema never asked for — with the key's own line number.
/// Getters are idempotent (reading a key twice is fine) and return
/// nullopt for absent keys, so callers layer "present ⇒ override"
/// semantics on top.
class TableReader {
 public:
  /// `section` names the table in diagnostics, e.g. "[device.timing]".
  TableReader(const toml::Table& table, std::string source,
              std::string section);

  const std::string& source() const { return source_; }
  const std::string& section() const { return section_; }

  bool has(const std::string& key) const;

  /// Line of `key` (0 when absent) — for anchoring follow-on errors.
  std::uint64_t key_line(const std::string& key) const;

  std::optional<std::string> get_string(const std::string& key);
  std::optional<bool> get_bool(const std::string& key);
  std::optional<std::int64_t> get_int(const std::string& key,
                                      std::int64_t min, std::int64_t max);
  std::optional<std::uint64_t> get_u64(const std::string& key,
                                       std::uint64_t min = 0,
                                       std::uint64_t max = UINT64_MAX);
  std::optional<double> get_double(const std::string& key, double min,
                                   double max);

  /// Scalar-or-array readers for sweep axes: a single value yields a
  /// one-element vector. Every element is range-checked.
  std::optional<std::vector<std::uint64_t>> get_u64_list(
      const std::string& key, std::uint64_t min = 0,
      std::uint64_t max = UINT64_MAX);
  std::optional<std::vector<std::string>> get_string_list(
      const std::string& key);

  /// Named sub-table, or nullptr when absent. Fails when the key is a
  /// scalar or an array of tables.
  const toml::Table* child(const std::string& key);

  /// `[[key]]` tables, or nullptr when absent.
  const std::vector<toml::Table>* array_of_tables(const std::string& key);

  /// Rejects every key the schema never consumed, naming the first (by
  /// line) unknown key and this section.
  void finish();

  [[noreturn]] void fail(const std::string& message) const;
  [[noreturn]] void fail_at(std::uint64_t line,
                            const std::string& message) const;

 private:
  const toml::Value* find_value(const std::string& key,
                                toml::Value::Type expected);

  const toml::Table& table_;
  std::string source_;
  std::string section_;
  std::set<std::string> consumed_;
};

// --- Pattern names ("streaming", "strided", "random", "pointer_chase",
// --- "mixed") used by workload documents.

const char* pattern_name(memsim::Pattern pattern);

/// Throws std::invalid_argument naming the valid set on unknown names.
memsim::Pattern pattern_from_name(const std::string& name);

// --- Writers. The *_body forms assume the caller has just emitted the
// --- section header (`[prefix]` or `[[prefix]]`) and write the keys
// --- plus any `[prefix.*]` sub-sections; `prefix` is the header path.

void write_device_model_body(std::ostream& os, const memsim::DeviceModel& model,
                             const std::string& prefix);

/// Flat specs: `kind = "flat"` + the model body. Hybrid specs: `kind =
/// "hybrid"` plus [prefix.cache], [prefix.dram] and [prefix.backend].
/// Throws std::logic_error on an empty spec.
void write_device_spec_body(std::ostream& os, const DeviceSpec& spec,
                            const std::string& prefix);

void write_workload_body(std::ostream& os,
                         const memsim::WorkloadProfile& profile);

/// Standalone `[device]` document for one spec — the `--device-file`
/// input format.
std::string device_spec_to_toml(const DeviceSpec& spec);

std::string workload_to_toml(const memsim::WorkloadProfile& profile);

// --- Readers.

/// Parses one device table (the contents of a `[device]` section or a
/// `[[device]]` element) into a resolved spec. Semantics:
///   - `base = "<token>"` starts from the resolver's spec for that
///     token; all other keys are overrides on top of it.
///   - a flat base (or no base) plus a [cache] section *promotes* the
///     device to a hybrid: the flat model becomes the backend.
///   - hybrid tables take [cache] / [backend] / [dram] sections; the
///     DRAM tier is re-derived from the cache capacity unless [dram] is
///     given explicitly.
/// Throws toml::ParseError with source:line on any schema violation and
/// on model validation failures.
DeviceSpec parse_device(const toml::Table& table, const std::string& source,
                        const DeviceResolver& resolver);

/// Parses a file containing exactly one `[device]` section.
DeviceSpec parse_device_file(const std::string& path,
                             const DeviceResolver& resolver);

/// Parses one workload table; `name` is required, everything else
/// defaults to the WorkloadProfile defaults.
memsim::WorkloadProfile parse_workload(const toml::Table& table,
                                       const std::string& source);

/// Parses a `[controller]` table into the policy axis, the config
/// template and the `run_threads` sharding axis (scalar or array;
/// 0 = one worker per hardware thread). A section holding *only*
/// `run_threads` does not engage scheduling — `policies` stays empty
/// and the replay stays direct, just sharded. Any scheduling key
/// (policy, a queue depth, a watermark) engages it, with `policy`
/// defaulting to `{fcfs}` when absent. When only `write_queue_depth`
/// is given, the drain watermarks are re-derived from it (7/8 and 3/8
/// of a bounded depth) instead of keeping the depth-32 defaults.
/// Schema violations and inconsistent watermarks raise
/// toml::ParseError anchored to the offending line.
void parse_controller_section(const toml::Table& table,
                              const std::string& source,
                              std::vector<sched::Policy>& policies,
                              sched::ControllerConfig& config,
                              std::vector<int>& run_threads);

/// Parses a `[telemetry]` table: `trace_out` (path), `trace_limit`
/// (recorded-event cap, requires trace_out), `metrics_interval_ns`
/// (epoch length of the metrics time-series) and `metrics_csv` (path,
/// requires an interval). Keys override the spec's defaults in place.
/// Schema violations and inconsistent combinations raise
/// toml::ParseError anchored to the offending line.
void parse_telemetry_section(const toml::Table& table,
                             const std::string& source,
                             telemetry::TelemetrySpec& spec);

/// Parses a `[tenant]` table into the multi-tenant stream list: an
/// optional `mapping = "partition" | "interleave"` scalar plus one
/// `[tenant.NAME]` sub-section per stream (keys: `workload` — a
/// built-in profile name —, `trace_file`, `interarrival_ns`,
/// `burstiness`, `requests`). Streams are ordered by name (the TOML
/// subset does not preserve section order), which fixes the 1-based
/// tenant ids and per-tenant seeds deterministically. At least one
/// stream is required; schema violations, unknown profiles and
/// cross-tenant inconsistencies raise toml::ParseError anchored to the
/// offending line.
void parse_tenant_section(const toml::Table& table, const std::string& source,
                          std::vector<TenantSpec>& tenants,
                          TenantMapping& mapping);

/// Parses a `[profile]` table into the host-side observability spec:
/// `enabled` (record the host profile — the `--profile` flag) and
/// `progress_ms` (live heartbeat interval, >= 1 — `--progress=N`).
/// Keys override the spec's defaults in place. Schema violations raise
/// toml::ParseError anchored to the offending line.
void parse_profile_section(const toml::Table& table, const std::string& source,
                           prof::ProfSpec& spec);

/// Parses an `[slo]` table: `assert` — one predicate list string or an
/// array of them (the `--assert-slo` grammar, see prof/slo.hpp),
/// concatenated into the spec's gate set. Malformed predicates and
/// unknown metrics raise toml::ParseError anchored to the offending
/// line.
void parse_slo_section(const toml::Table& table, const std::string& source,
                       prof::ProfSpec& spec);

}  // namespace comet::config
