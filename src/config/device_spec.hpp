#pragma once

#include <memory>
#include <optional>
#include <string>

#include "hybrid/tiered_system.hpp"
#include "memsim/device.hpp"
#include "memsim/engine.hpp"
#include "sched/controller.hpp"

/// The resolved-architecture type shared by the registry, the config
/// files and the sweep engine.
///
/// DeviceSpec started life inside the driver's registry; it now lives in
/// the config layer so that declarative documents (`--config`,
/// `--device-file`) and the built-in registry tokens resolve to the same
/// struct and flow through one code path. comet::driver aliases it, so
/// registry call sites are unchanged.
namespace comet::config {

/// One resolved device: either a flat memsim::DeviceModel or a hybrid
/// hybrid::TieredConfig, under one display name. A resolved spec always
/// has exactly one of the two optionals engaged; call sites never read
/// them directly — make_engine() hands back the polymorphic
/// memsim::Engine that replays this architecture, and set_channels()
/// applies the one override that reaches inside a model. (A
/// default-constructed spec has *neither* optional engaged; every
/// accessor below fails loudly on one rather than dereferencing an
/// empty optional.)
struct DeviceSpec {
  std::string name;
  std::optional<memsim::DeviceModel> flat;     ///< Engaged for flat devices.
  std::optional<hybrid::TieredConfig> tiered;  ///< Engaged for hybrid ones.

  DeviceSpec() = default;
  explicit DeviceSpec(memsim::DeviceModel model);
  explicit DeviceSpec(hybrid::TieredConfig config);

  bool is_hybrid() const { return tiered.has_value(); }

  /// Channel count of the (backend) main-memory device.
  int channels() const;

  /// Instantiates the replay engine for this architecture: a
  /// memsim::MemorySystem for flat specs, a hybrid::TieredSystem for
  /// hybrid ones. Throws std::logic_error on a default-constructed spec
  /// with neither alternative engaged.
  std::unique_ptr<memsim::Engine> make_engine() const;

  /// Scheduled variant: with a controller config, flat specs replay
  /// behind a sched::ScheduledSystem front-end and hybrid specs route
  /// their backend miss stream through the controller; nullopt is the
  /// plain make_engine() above.
  std::unique_ptr<memsim::Engine> make_engine(
      const std::optional<sched::ControllerConfig>& controller) const;

  /// Sharded variant: with run_threads > 1 (0 = one per hardware
  /// thread, memsim::resolve_run_threads), replay shards into
  /// per-channel lanes on a worker pool — memsim::ShardedEngine for a
  /// plain flat spec, the sharded modes of ScheduledSystem /
  /// TieredSystem otherwise — with results bit-identical to
  /// run_threads == 1 for every combination.
  std::unique_ptr<memsim::Engine> make_engine(
      const std::optional<sched::ControllerConfig>& controller,
      int run_threads) const;

  /// Applies a channel-count override to the main-memory part (the
  /// backend behind the cache tier for hybrid specs) and re-validates
  /// the adjusted model. Throws std::logic_error on an empty spec.
  void set_channels(int channels);
};

}  // namespace comet::config
