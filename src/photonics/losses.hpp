#pragma once

#include <string>
#include <vector>

/// Optical loss and power parameters (paper Table I) and an itemized
/// loss-budget accumulator used by the laser-power models.
namespace comet::photonics {

/// The loss/power constants of Table I. All losses are positive dB.
struct LossParameters {
  double coupling_loss_db;          ///< Fiber-to-chip coupler [33].
  double mr_drop_loss_db;           ///< Passive MR drop [34].
  double mr_through_loss_db;        ///< Passive MR through [35].
  /// EO-tuned (carrier-injected) MR drop [36].
  double eo_mr_drop_loss_db;
  double eo_mr_through_loss_db;     ///< EO-tuned MR through [36].
  double propagation_loss_db_per_cm;///< Strip waveguide [37].
  double bending_loss_db_per_90deg; ///< [38].
  double gst_switch_loss_db;        ///< Amorphous GST coupler switch [39].
  double soa_gain_db;               ///< Max SOA gain (Table I: 20 dB).
  double intra_subarray_soa_gain_db;///< In-array SOA stage gain [29]: 15.2 dB.
  double laser_wall_plug_efficiency;///< 0.2 (20 %).

  double eo_tuning_power_uw_per_nm; ///< P_EO [25]: 4 uW/nm.
  double max_power_at_cell_mw;      ///< Table I: 1 mW.
  double intra_subarray_soa_power_mw;///< [29]: 1.4 mW for 0 dBm out.

  /// The exact values of Table I.
  static LossParameters paper();
};

/// Itemized accumulation of a signal path's losses, so benches can print
/// where the dB go. Gains are negative contributions.
class LossBudget {
 public:
  /// Adds `count` instances of an item of `db_each` (positive = loss).
  void add(std::string name, double db_each, double count = 1.0);

  /// Total path loss [dB]; gains subtract.
  double total_db() const;

  struct Item {
    std::string name;
    double db_each;
    double count;
    double total_db() const { return db_each * count; }
  };
  const std::vector<Item>& items() const { return items_; }

 private:
  std::vector<Item> items_;
};

}  // namespace comet::photonics
