#include "photonics/laser.hpp"

#include <stdexcept>

#include "util/units.hpp"

namespace comet::photonics {

Laser::Laser(double wall_plug_efficiency, int num_wavelengths)
    : efficiency_(wall_plug_efficiency), num_wavelengths_(num_wavelengths) {
  if (efficiency_ <= 0.0 || efficiency_ > 1.0 || num_wavelengths_ <= 0) {
    throw std::invalid_argument("Laser: invalid parameters");
  }
}

double Laser::optical_power_per_wavelength_mw(double required_at_target_mw,
                                              double path_loss_db) const {
  if (required_at_target_mw < 0.0 || path_loss_db < 0.0) {
    throw std::invalid_argument("Laser: negative power or loss");
  }
  return required_at_target_mw * util::db_to_ratio(path_loss_db);
}

double Laser::electrical_power_w(double required_at_target_mw,
                                 double path_loss_db) const {
  const double optical_mw = optical_power_per_wavelength_mw(
      required_at_target_mw, path_loss_db);
  return optical_mw * 1e-3 * num_wavelengths_ / efficiency_;
}

}  // namespace comet::photonics
