#pragma once

/// Readout photodetector / level-discrimination model.
///
/// The electrical interface demodulates readout wavelengths with an MR
/// bank and photodetectors. For an MLC readout to succeed, the power gap
/// between adjacent transmission levels at the detector must exceed the
/// detector's resolvable power step; this model turns a detector
/// sensitivity floor and dynamic range into a maximum tolerable path
/// loss for a given bit density — the quantity the paper's gain-LUT
/// design (Section IV.A) is built around.
namespace comet::photonics {

class Photodetector {
 public:
  struct Params {
    double sensitivity_dbm;   ///< Minimum detectable average power.
    double resolution_mw;     ///< Smallest resolvable power step.
    double responsivity_a_w;  ///< Photocurrent per optical watt.
  };

  /// A typical integrated Ge-on-Si receiver for on-chip readout.
  static Params typical();

  explicit Photodetector(const Params& params);

  const Params& params() const { return params_; }

  /// True if `power_mw` is detectable at all.
  bool detectable(double power_mw) const;

  /// True if two adjacent level powers [mW] can be told apart.
  bool distinguishable(double level_a_mw, double level_b_mw) const;

  /// Maximum path loss [dB] a readout at `launch_power_mw` with the given
  /// adjacent-level transmission gap can tolerate before levels merge.
  double max_tolerable_loss_db(double launch_power_mw,
                               double level_gap_transmission) const;

 private:
  Params params_;
};

}  // namespace comet::photonics
