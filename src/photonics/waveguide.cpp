#include "photonics/waveguide.hpp"

#include <stdexcept>

namespace comet::photonics {

WaveguidePath::WaveguidePath(const LossParameters& losses) : losses_(losses) {}

double WaveguidePath::path_loss_db(double length_cm, int bends_90deg) const {
  if (length_cm < 0.0 || bends_90deg < 0) {
    throw std::invalid_argument("WaveguidePath: negative path");
  }
  return length_cm * losses_.propagation_loss_db_per_cm +
         bends_90deg * losses_.bending_loss_db_per_90deg;
}

MdmLink::MdmLink(int degree, double per_mode_excess_db)
    : degree_(degree), per_mode_excess_db_(per_mode_excess_db) {
  if (degree < 1 || per_mode_excess_db < 0.0) {
    throw std::invalid_argument("MdmLink: invalid parameters");
  }
}

double MdmLink::mode_excess_loss_db(int mode) const {
  if (mode < 0 || mode >= degree_) {
    throw std::invalid_argument("MdmLink: mode out of range");
  }
  return mode * per_mode_excess_db_;
}

double MdmLink::worst_mode_excess_loss_db() const {
  return mode_excess_loss_db(degree_ - 1);
}

double MdmLink::required_width_nm() const {
  constexpr double kSingleModeWidthNm = 480.0;
  return kSingleModeWidthNm * (1.0 + 0.5 * (degree_ - 1));
}

}  // namespace comet::photonics
