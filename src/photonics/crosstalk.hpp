#pragma once

/// Crossbar write-crosstalk and thermo-optic corruption model (paper
/// Section II.B, Figs. 1b & 2).
///
/// In the COSMOS crossbar, a write pulse on one row couples ~ -18 dB of
/// its energy into the adjacent rows' cells. That stray energy heats the
/// neighbouring GST through the thermo-optic effect and shifts its
/// crystalline fraction: the paper quantifies an ~8 % refractive-index /
/// crystalline-fraction shift per adjacent 750 pJ write — enough to walk
/// a 4-bit cell (6 % level spacing) into the next level after a single
/// neighbouring write. COMET's MR-gated cells are immune by isolation.
namespace comet::photonics {

class CrosstalkModel {
 public:
  struct Params {
    /// Row-to-adjacent-row coupling (negative dB).
    double coupling_db;
    /// Crystalline-fraction drift per coupled pJ.
    double fraction_shift_per_pj;
  };

  /// Calibrated to the paper: -17.75 dB coupling so a 750 pJ write leaks
  /// ~12.6 pJ, and 8 % fraction shift for those 12.6 pJ.
  static Params paper();

  explicit CrosstalkModel(const Params& params);

  const Params& params() const { return params_; }

  /// Energy [pJ] coupled into one adjacent cell by a write of the given
  /// energy [pJ].
  double coupled_energy_pj(double write_energy_pj) const;

  /// Crystalline-fraction drift caused in an adjacent cell by one write
  /// of the given energy. Always towards crystallization (heating).
  double fraction_shift(double write_energy_pj) const;

  /// Number of adjacent writes before a cell with the given level spacing
  /// (in fraction units) is misread, i.e. drift exceeds half a level.
  int writes_to_corruption(double write_energy_pj,
                           double level_spacing_fraction) const;

 private:
  Params params_;
};

}  // namespace comet::photonics
