#include "photonics/wavelength_grid.hpp"

#include <stdexcept>

#include "util/constants.hpp"
#include "util/units.hpp"

namespace comet::photonics {

WavelengthGrid::WavelengthGrid(int channels, double lo_nm, double hi_nm) {
  if (channels < 1 || !(hi_nm > lo_nm)) {
    throw std::invalid_argument("WavelengthGrid: invalid plan");
  }
  grid_.reserve(static_cast<std::size_t>(channels));
  if (channels == 1) {
    grid_.push_back(0.5 * (lo_nm + hi_nm));
    return;
  }
  const double step = (hi_nm - lo_nm) / (channels - 1);
  for (int i = 0; i < channels; ++i) {
    grid_.push_back(lo_nm + step * i);
  }
}

double WavelengthGrid::channel_nm(int i) const {
  if (i < 0 || i >= channels()) {
    throw std::out_of_range("WavelengthGrid: channel index");
  }
  return grid_[static_cast<std::size_t>(i)];
}

double WavelengthGrid::spacing_nm() const {
  if (grid_.size() < 2) return 0.0;
  return grid_[1] - grid_[0];
}

double WavelengthGrid::spacing_ghz() const {
  if (grid_.size() < 2) return 0.0;
  const double centre_nm = 0.5 * (grid_.front() + grid_.back());
  const double f_lo = util::wavelength_nm_to_hz(centre_nm + spacing_nm() / 2);
  const double f_hi = util::wavelength_nm_to_hz(centre_nm - spacing_nm() / 2);
  return (f_hi - f_lo) * 1e-9;
}

}  // namespace comet::photonics
