#include "photonics/gst_cell.hpp"

#include <cmath>
#include <stdexcept>

#include "materials/effective_medium.hpp"
#include "util/constants.hpp"
#include "util/units.hpp"

namespace comet::photonics {
namespace {

// Confinement model constants, calibrated against the paper's cell
// endpoints (see header): the evanescent interaction saturates over a
// ~10 nm decay length above the core, topping out near 35 % for thick
// films, and varies only weakly (a few percent) with width around the
// 480 nm single-mode point.
constexpr double kGammaMax = 0.35;
constexpr double kThicknessDecayNm = 10.0;
constexpr double kWidthSensitivity = 0.05;
constexpr double kNominalWidthNm = 480.0;

// Effective index of the bare 480x220 nm silicon strip mode and of bulk
// silicon, used for the index-mismatch facet reflection.
constexpr double kBareEffectiveIndex = 2.4;
constexpr double kSiliconIndex = 3.48;

}  // namespace

GstCellGeometry GstCellGeometry::paper() {
  return GstCellGeometry{.width_nm = 480.0, .thickness_nm = 20.0,
                         .length_um = 2.0};
}

GstCell::GstCell(const materials::PcmMaterial& material,
                 GstCellGeometry geometry)
    : material_(material), geometry_(geometry) {
  if (geometry.width_nm <= 0.0 || geometry.thickness_nm < 0.0 ||
      geometry.length_um <= 0.0) {
    throw std::invalid_argument("GstCell: invalid geometry");
  }
}

double GstCell::confinement() const {
  const double thickness_term =
      1.0 - std::exp(-geometry_.thickness_nm / kThicknessDecayNm);
  const double width_term =
      1.0 + kWidthSensitivity *
                (geometry_.width_nm - kNominalWidthNm) / kNominalWidthNm;
  const double gamma = kGammaMax * thickness_term * width_term;
  return gamma < 0.0 ? 0.0 : (gamma > 1.0 ? 1.0 : gamma);
}

double GstCell::absorption(double fraction, double lambda_nm) const {
  const auto index =
      materials::effective_index(material_, lambda_nm, fraction);
  const double alpha_per_um = 4.0 * util::kPi * index.imag() *
                              confinement() / (lambda_nm * 1e-3);
  return 1.0 - std::exp(-alpha_per_um * geometry_.length_um);
}

double GstCell::facet_reflection(double fraction, double lambda_nm) const {
  // First-order perturbation: the film pulls the waveguide's effective
  // index up by Gamma * (n_pcm - n_si); the reflection at each facet is
  // the Fresnel step between the bare and film-loaded sections.
  const auto index =
      materials::effective_index(material_, lambda_nm, fraction);
  const double n_loaded =
      kBareEffectiveIndex + confinement() * (index.real() - kSiliconIndex);
  const double r = (n_loaded - kBareEffectiveIndex) /
                   (n_loaded + kBareEffectiveIndex);
  return r * r;
}

double GstCell::transmission(double fraction, double lambda_nm) const {
  const double pass = 1.0 - absorption(fraction, lambda_nm);
  const double r = facet_reflection(fraction, lambda_nm);
  return (1.0 - r) * (1.0 - r) * pass;
}

double GstCell::amorphous_insertion_loss_db(double lambda_nm) const {
  return util::transmission_to_loss_db(transmission(0.0, lambda_nm));
}

double GstCell::crystalline_extinction_db(double lambda_nm) const {
  return util::transmission_to_loss_db(transmission(1.0, lambda_nm));
}

double GstCell::transmission_contrast(double lambda_nm) const {
  return transmission(0.0, lambda_nm) - transmission(1.0, lambda_nm);
}

double GstCell::absorption_contrast(double lambda_nm) const {
  return absorption(1.0, lambda_nm) - absorption(0.0, lambda_nm);
}

materials::TransmissionOfFraction GstCell::transmission_curve(
    double lambda_nm) const {
  return [this, lambda_nm](double fraction) {
    return transmission(fraction, lambda_nm);
  };
}

}  // namespace comet::photonics
