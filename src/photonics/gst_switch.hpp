#pragma once

#include "photonics/losses.hpp"

/// Electrically controlled GST waveguide switch (paper Section III.C,
/// Fig. 5d inset; device from ReSiPI [39]).
///
/// COMET inserts a GST element at each subarray's waveguide coupler:
/// crystalline GST spoils the coupling (subarray deselected), amorphous
/// GST lets the wavelengths couple in (selected). This replaces power-
/// hungry optical splitters: instead of dividing the laser power over all
/// S_r subarrays, the full power is steered to the one being accessed,
/// at the cost of 0.2 dB insertion loss and a 100 ns switching delay.
namespace comet::photonics {

class GstSwitch {
 public:
  /// Switch states mirror the PCM phase.
  enum class State { kCoupling /*amorphous*/, kBlocking /*crystalline*/ };

  explicit GstSwitch(const LossParameters& losses);

  State state() const { return state_; }

  /// Moves the switch; returns the time the transition takes [ns]
  /// (0 when already in the requested state, 100 ns otherwise [39]).
  double set_state(State next);

  /// Insertion loss for light passing a *coupling* switch [dB].
  double coupling_loss_db() const;

  /// Isolation of a *blocking* switch [dB] (crystalline GST extinction;
  /// light into a deselected subarray is suppressed by this much).
  double blocking_isolation_db() const;

  /// Electrical energy of one phase transition [pJ]. ReSiPI-class
  /// switches report nJ-scale transitions; the value only matters for
  /// the (rare) subarray-steering events, not per-access energy.
  double transition_energy_pj() const;

  /// Transition latency [ns] (paper: 100 ns).
  static double transition_latency_ns() { return 100.0; }

 private:
  LossParameters losses_;
  State state_ = State::kBlocking;
};

}  // namespace comet::photonics
