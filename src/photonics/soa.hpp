#pragma once

/// Semiconductor optical amplifier (SOA) model.
///
/// COMET places SOA stages inside subarrays (every 46 rows, Section
/// III.E) and at the electrical interface to keep readout levels above
/// the discrimination floor. The intra-subarray stages follow Lin et al.
/// [29]: 15.2 dB gain, 1.4 mW electrical power for 0 dBm (1 mW) output.
namespace comet::photonics {

class Soa {
 public:
  struct Params {
    double gain_db;                ///< Small-signal gain.
    double max_output_mw;          ///< Output saturation power.
    double electrical_power_mw;    ///< Bias power when enabled.
    double noise_figure_db;        ///< ASE noise figure (typ. 7 dB).
  };

  /// Intra-subarray stage per [29] / Table I.
  static Params intra_subarray();

  /// Interface-level gain-tuning stage (Table I: up to 20 dB).
  static Params interface_stage();

  explicit Soa(const Params& params);

  const Params& params() const { return params_; }

  /// Amplifies an input optical power [mW], clipping at saturation.
  double amplify_mw(double input_mw) const;

  /// Gain actually applied to the given input after saturation [dB].
  double effective_gain_db(double input_mw) const;

  /// Electrical power drawn while enabled [mW] (0 when gated off; COMET
  /// only enables SOAs in the subarray being accessed).
  double power_when_enabled_mw() const { return params_.electrical_power_mw; }

 private:
  Params params_;
};

}  // namespace comet::photonics
