#pragma once

#include "photonics/losses.hpp"

/// Microring resonator (MR) access-control model.
///
/// COMET gates every GST cell with an add-drop microring (6 um radius,
/// design from Poon et al. [36]). Tuning the ring into resonance routes
/// the column wavelength through the cell; off resonance the light passes
/// by on the bus. The paper's key circuit-level decision is *electro-
/// optic* (carrier-injection) tuning with ~2 ns latency instead of
/// thermo-optic tuning with us-scale latency, at the price of higher
/// drop/through losses (Table I: 1.6/0.33 dB EO vs 0.5/0.02 dB passive).
namespace comet::photonics {

/// The two tuning mechanisms compared in Section II.B.
enum class TuningMechanism { kElectroOptic, kThermal };

class Microring {
 public:
  struct Design {
    double radius_um;            ///< 6 um per [36].
    double q_factor;             ///< Loaded Q; sets the linewidth.
    double resonance_nm;         ///< Nominal resonance wavelength.
    double tuning_range_nm;      ///< Max resonance shift the tuner covers.
    TuningMechanism mechanism;
  };

  /// The COMET access-MR design: EO tuned, 6 um radius.
  static Design comet_access_design(double resonance_nm);

  Microring(const Design& design, const LossParameters& losses);

  const Design& design() const { return design_; }

  /// Resonance linewidth (FWHM) [nm] from the loaded Q.
  double linewidth_nm() const;

  /// Free spectral range [nm] approximated from the ring circumference
  /// and a group index of 4.2 (silicon strip waveguide near 1550 nm).
  double fsr_nm() const;

  /// Lorentzian drop-port power transmission at wavelength `lambda_nm`
  /// when the ring resonance sits at `resonance_nm` (excludes the fixed
  /// drop insertion loss, which `drop_loss_db` reports).
  double drop_transfer(double lambda_nm, double resonance_nm) const;

  /// Tuning latency [ns]: ~2 ns for EO carrier injection [36],
  /// ~microseconds for thermo-optic heaters [24].
  double tuning_latency_ns() const;

  /// Electrical tuning power [W] for a resonance shift [nm]:
  /// P_EO = 4 uW/nm for EO [25]; thermo-optic heaters burn ~ mW-scale
  /// power per nm of shift.
  double tuning_power_w(double shift_nm) const;

  /// Insertion losses seen by a signal when the ring is actively tuned
  /// (in-resonance, drop path) or idle (through path) [dB].
  double drop_loss_db() const;
  double through_loss_db() const;

 private:
  Design design_;
  LossParameters losses_;
};

}  // namespace comet::photonics
