#pragma once

#include "photonics/losses.hpp"

/// Off-chip comb laser model.
///
/// COMET assumes an off-chip laser supplying the N_c column wavelengths
/// (Section III.C). The electrical power the laser burns is the optical
/// power demanded at the GST cells, multiplied back up through the path
/// losses and divided by the wall-plug efficiency (Table I: 20 %).
namespace comet::photonics {

class Laser {
 public:
  Laser(double wall_plug_efficiency, int num_wavelengths);

  int num_wavelengths() const { return num_wavelengths_; }
  double wall_plug_efficiency() const { return efficiency_; }

  /// Optical power the laser must emit per wavelength [mW] so that
  /// `required_at_target_mw` arrives after `path_loss_db` of loss.
  double optical_power_per_wavelength_mw(double required_at_target_mw,
                                         double path_loss_db) const;

  /// Total electrical (wall-plug) power [W] across all wavelengths.
  double electrical_power_w(double required_at_target_mw,
                            double path_loss_db) const;

 private:
  double efficiency_;
  int num_wavelengths_;
};

}  // namespace comet::photonics
