#include "photonics/gst_switch.hpp"

namespace comet::photonics {

GstSwitch::GstSwitch(const LossParameters& losses) : losses_(losses) {}

double GstSwitch::set_state(State next) {
  if (next == state_) return 0.0;
  state_ = next;
  return transition_latency_ns();
}

double GstSwitch::coupling_loss_db() const {
  return losses_.gst_switch_loss_db;
}

double GstSwitch::blocking_isolation_db() const {
  // Crystalline GST on the coupler: same extinction class as the memory
  // cell's crystalline state (~20+ dB).
  return 21.8;
}

double GstSwitch::transition_energy_pj() const {
  // Switch GST volume is a few times the memory cell's; scale the cell's
  // 880 pJ crystallizing reset accordingly.
  return 2000.0;
}

}  // namespace comet::photonics
