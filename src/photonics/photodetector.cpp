#include "photonics/photodetector.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace comet::photonics {

Photodetector::Params Photodetector::typical() {
  return Params{
      .sensitivity_dbm = -20.0,
      .resolution_mw = 0.002,
      .responsivity_a_w = 1.0,
  };
}

Photodetector::Photodetector(const Params& params) : params_(params) {
  if (params.resolution_mw <= 0.0 || params.responsivity_a_w <= 0.0) {
    throw std::invalid_argument("Photodetector: invalid parameters");
  }
}

bool Photodetector::detectable(double power_mw) const {
  return power_mw >= util::dbm_to_mw(params_.sensitivity_dbm);
}

bool Photodetector::distinguishable(double level_a_mw,
                                    double level_b_mw) const {
  return std::abs(level_a_mw - level_b_mw) >= params_.resolution_mw;
}

double Photodetector::max_tolerable_loss_db(
    double launch_power_mw, double level_gap_transmission) const {
  if (launch_power_mw <= 0.0 || level_gap_transmission <= 0.0) {
    throw std::invalid_argument("Photodetector: invalid readout setup");
  }
  // The level gap at the detector is launch * gap * 10^{-loss/10}; it must
  // stay above the resolvable step.
  const double gap_at_launch_mw = launch_power_mw * level_gap_transmission;
  if (gap_at_launch_mw <= params_.resolution_mw) return 0.0;
  return util::ratio_to_db(gap_at_launch_mw / params_.resolution_mw);
}

}  // namespace comet::photonics
