#include "photonics/microring.hpp"

#include <cmath>
#include <stdexcept>

#include "util/constants.hpp"

namespace comet::photonics {
namespace {
// Group index of a 480x220 nm silicon strip waveguide near 1550 nm.
constexpr double kGroupIndex = 4.2;
// Thermo-optic tuning figures for a doped-heater silicon MR (Pintus [24]):
// microsecond-scale settling, ~ 1 mW/nm of shift.
constexpr double kThermalLatencyNs = 4000.0;
constexpr double kThermalPowerMwPerNm = 1.0;
// EO carrier-injection switching latency demonstrated in [36].
constexpr double kEoLatencyNs = 2.0;
}  // namespace

Microring::Design Microring::comet_access_design(double resonance_nm) {
  return Design{
      .radius_um = 6.0,
      .q_factor = 8000.0,
      .resonance_nm = resonance_nm,
      .tuning_range_nm = 1.0,
      .mechanism = TuningMechanism::kElectroOptic,
  };
}

Microring::Microring(const Design& design, const LossParameters& losses)
    : design_(design), losses_(losses) {
  if (design.radius_um <= 0.0 || design.q_factor <= 0.0 ||
      design.resonance_nm <= 0.0) {
    throw std::invalid_argument("Microring: invalid design");
  }
}

double Microring::linewidth_nm() const {
  return design_.resonance_nm / design_.q_factor;
}

double Microring::fsr_nm() const {
  const double circumference_m = 2.0 * util::kPi * design_.radius_um * 1e-6;
  const double lambda_m = design_.resonance_nm * 1e-9;
  return lambda_m * lambda_m / (kGroupIndex * circumference_m) * 1e9;
}

double Microring::drop_transfer(double lambda_nm, double resonance_nm) const {
  const double delta = 2.0 * (lambda_nm - resonance_nm) / linewidth_nm();
  return 1.0 / (1.0 + delta * delta);
}

double Microring::tuning_latency_ns() const {
  return design_.mechanism == TuningMechanism::kElectroOptic
             ? kEoLatencyNs
             : kThermalLatencyNs;
}

double Microring::tuning_power_w(double shift_nm) const {
  shift_nm = std::abs(shift_nm);
  if (design_.mechanism == TuningMechanism::kElectroOptic) {
    return losses_.eo_tuning_power_uw_per_nm * 1e-6 * shift_nm;
  }
  return kThermalPowerMwPerNm * 1e-3 * shift_nm;
}

double Microring::drop_loss_db() const {
  return design_.mechanism == TuningMechanism::kElectroOptic
             ? losses_.eo_mr_drop_loss_db
             : losses_.mr_drop_loss_db;
}

double Microring::through_loss_db() const {
  return design_.mechanism == TuningMechanism::kElectroOptic
             ? losses_.eo_mr_through_loss_db
             : losses_.mr_through_loss_db;
}

}  // namespace comet::photonics
