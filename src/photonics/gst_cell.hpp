#pragma once

#include <functional>

#include "materials/mlc_levels.hpp"
#include "materials/pcm_material.hpp"

/// GST-on-SOI memory-cell optics (paper Section III.B, Figs. 4 & 5a).
///
/// The paper obtains cell transmission from Ansys Lumerical FDTD. We
/// substitute the standard analytic hybrid-waveguide absorption model:
/// a PCM film of thickness t on a 480x220 nm silicon strip interacts
/// with the guided mode through a confinement factor Gamma(t, w); the
/// power transmission of a cell of length L at wavelength lambda is
///
///   T = (1 - R(X))^2 * exp(-4*pi*kappa_eff(X) * Gamma * L / lambda)
///
/// where kappa_eff comes from the Lorentz–Lorenz effective medium at
/// crystalline fraction X and R(X) is the facet reflection caused by the
/// effective-index step between the bare and PCM-loaded waveguide (the
/// "optical-refractive-index mismatch" contribution the paper separates
/// from pure absorption).
///
/// Gamma saturates with film thickness (fields decay away from the core)
/// and is nearly flat in width — exactly the Fig. 4 observation that
/// thickness dominates and width is negligible. The model is calibrated
/// so the paper's published cell numbers hold for the selected geometry
/// (480 nm x 20 nm x 2 um): ~0.24 dB amorphous insertion loss, ~21.8 dB
/// crystalline extinction, ~95 % transmission/absorption contrast, 16
/// levels at ~6 % spacing.
namespace comet::photonics {

/// Cell geometry knobs explored in Fig. 4.
struct GstCellGeometry {
  double width_nm;      ///< PCM width (= waveguide width), 480 nm nominal.
  double thickness_nm;  ///< PCM film thickness, 20 nm nominal.
  double length_um;     ///< Cell length along the waveguide, 2 um nominal.

  /// The geometry the paper selects (stars in Fig. 4).
  static GstCellGeometry paper();
};

class GstCell {
 public:
  /// Cell over a given PCM material (COMET uses GST).
  GstCell(const materials::PcmMaterial& material, GstCellGeometry geometry);

  const GstCellGeometry& geometry() const { return geometry_; }
  const materials::PcmMaterial& material() const { return material_; }

  /// Mode-film confinement factor Gamma for this geometry (0..1).
  double confinement() const;

  /// Power transmission at crystalline fraction X in [0,1].
  double transmission(double fraction,
                      double lambda_nm = 1550.0) const;

  /// Fraction of incident power absorbed in the film (excludes the facet
  /// reflection term): A = 1 - exp(-alpha L).
  double absorption(double fraction, double lambda_nm = 1550.0) const;

  /// Facet power reflection from the effective-index step at fraction X.
  double facet_reflection(double fraction, double lambda_nm = 1550.0) const;

  /// Insertion loss [dB] of the amorphous (brightest) state.
  double amorphous_insertion_loss_db(double lambda_nm = 1550.0) const;

  /// Extinction [dB] of the fully crystalline state.
  double crystalline_extinction_db(double lambda_nm = 1550.0) const;

  /// Fig. 4 y-axes: contrast between fully crystalline and fully
  /// amorphous states, as a fraction of full scale.
  double transmission_contrast(double lambda_nm = 1550.0) const;
  double absorption_contrast(double lambda_nm = 1550.0) const;

  /// Transmission-vs-fraction closure for the MLC level builder.
  materials::TransmissionOfFraction transmission_curve(
      double lambda_nm = 1550.0) const;

 private:
  const materials::PcmMaterial& material_;
  GstCellGeometry geometry_;
};

}  // namespace comet::photonics
