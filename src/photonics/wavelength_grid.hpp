#pragma once

#include <vector>

/// WDM channel plan. COMET assigns one C-band wavelength per subarray
/// column (N_c wavelengths per bank); this class lays the channels out
/// evenly over [1530, 1565] nm and answers spacing/occupancy questions.
namespace comet::photonics {

class WavelengthGrid {
 public:
  /// Evenly spaced `channels` across [lo_nm, hi_nm] inclusive.
  WavelengthGrid(int channels, double lo_nm = 1530.0, double hi_nm = 1565.0);

  int channels() const { return static_cast<int>(grid_.size()); }
  double channel_nm(int i) const;
  double spacing_nm() const;
  const std::vector<double>& all() const { return grid_; }

  /// Channel spacing expressed in GHz at the band centre; dense WDM
  /// feasibility checks compare this against modulator linewidths.
  double spacing_ghz() const;

 private:
  std::vector<double> grid_;
};

}  // namespace comet::photonics
