#include "photonics/soa.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/units.hpp"

namespace comet::photonics {

Soa::Params Soa::intra_subarray() {
  return Params{
      .gain_db = 15.2,
      .max_output_mw = 5.0,
      .electrical_power_mw = 1.4,
      .noise_figure_db = 7.0,
  };
}

Soa::Params Soa::interface_stage() {
  return Params{
      .gain_db = 20.0,
      .max_output_mw = 10.0,
      .electrical_power_mw = 2.8,
      .noise_figure_db = 7.0,
  };
}

Soa::Soa(const Params& params) : params_(params) {
  if (params.gain_db < 0.0 || params.max_output_mw <= 0.0 ||
      params.electrical_power_mw < 0.0) {
    throw std::invalid_argument("Soa: invalid parameters");
  }
}

double Soa::amplify_mw(double input_mw) const {
  if (input_mw < 0.0) throw std::invalid_argument("Soa: negative input");
  const double amplified = input_mw * util::db_to_ratio(params_.gain_db);
  return std::min(amplified, params_.max_output_mw);
}

double Soa::effective_gain_db(double input_mw) const {
  if (input_mw <= 0.0) return 0.0;
  return util::ratio_to_db(amplify_mw(input_mw) / input_mw);
}

}  // namespace comet::photonics
