#pragma once

#include "photonics/losses.hpp"

/// Waveguide routing-loss and mode-division-multiplexing (MDM) models.
///
/// COMET interleaves cache lines across B banks over a hybrid WDM+MDM
/// link. Section III.C explains the MDM-degree tradeoff: higher-order
/// modes confine less, leak more, and need wider waveguides, so COMET
/// caps the degree at 4 (achievable on chip "without notable losses or
/// area overhead" [28]).
namespace comet::photonics {

/// Straight + bent routing path loss.
class WaveguidePath {
 public:
  explicit WaveguidePath(const LossParameters& losses);

  /// Loss of a path with the given straight length [cm] and 90-degree
  /// bend count.
  double path_loss_db(double length_cm, int bends_90deg) const;

 private:
  LossParameters losses_;
};

/// MDM link with per-mode excess loss.
class MdmLink {
 public:
  /// `degree` modes; mode m (0-based) suffers m * per_mode_excess_db of
  /// extra loss relative to the fundamental, reflecting its weaker
  /// confinement. The paper treats degree 4 as essentially loss-free and
  /// calls 16-degree "extremely challenging"; the default excess models
  /// that knee.
  MdmLink(int degree, double per_mode_excess_db = 0.05);

  int degree() const { return degree_; }

  /// Excess loss of mode m in [0, degree) [dB].
  double mode_excess_loss_db(int mode) const;

  /// Worst-case (highest-order mode) excess loss [dB].
  double worst_mode_excess_loss_db() const;

  /// Required waveguide width [nm]: each extra mode adds roughly half a
  /// fundamental width (480 nm single-mode strip baseline).
  double required_width_nm() const;

 private:
  int degree_;
  double per_mode_excess_db_;
};

}  // namespace comet::photonics
