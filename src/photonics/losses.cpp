#include "photonics/losses.hpp"

namespace comet::photonics {

LossParameters LossParameters::paper() {
  return LossParameters{
      .coupling_loss_db = 1.0,
      .mr_drop_loss_db = 0.5,
      .mr_through_loss_db = 0.02,
      .eo_mr_drop_loss_db = 1.6,
      .eo_mr_through_loss_db = 0.33,
      .propagation_loss_db_per_cm = 0.1,
      .bending_loss_db_per_90deg = 0.01,
      .gst_switch_loss_db = 0.2,
      .soa_gain_db = 20.0,
      .intra_subarray_soa_gain_db = 15.2,
      .laser_wall_plug_efficiency = 0.2,
      .eo_tuning_power_uw_per_nm = 4.0,
      .max_power_at_cell_mw = 1.0,
      .intra_subarray_soa_power_mw = 1.4,
  };
}

void LossBudget::add(std::string name, double db_each, double count) {
  items_.push_back(Item{std::move(name), db_each, count});
}

double LossBudget::total_db() const {
  double total = 0.0;
  for (const auto& item : items_) total += item.total_db();
  return total;
}

}  // namespace comet::photonics
