#include "photonics/crosstalk.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace comet::photonics {

CrosstalkModel::Params CrosstalkModel::paper() {
  return Params{
      .coupling_db = -17.75,
      // 12.6 pJ coupled -> 8 % shift (Section II.B).
      .fraction_shift_per_pj = 0.08 / 12.6,
  };
}

CrosstalkModel::CrosstalkModel(const Params& params) : params_(params) {
  if (params.coupling_db >= 0.0 || params.fraction_shift_per_pj < 0.0) {
    throw std::invalid_argument("CrosstalkModel: invalid parameters");
  }
}

double CrosstalkModel::coupled_energy_pj(double write_energy_pj) const {
  if (write_energy_pj < 0.0) {
    throw std::invalid_argument("CrosstalkModel: negative energy");
  }
  return write_energy_pj * util::db_to_ratio(params_.coupling_db);
}

double CrosstalkModel::fraction_shift(double write_energy_pj) const {
  return coupled_energy_pj(write_energy_pj) * params_.fraction_shift_per_pj;
}

int CrosstalkModel::writes_to_corruption(
    double write_energy_pj, double level_spacing_fraction) const {
  const double per_write = fraction_shift(write_energy_pj);
  if (per_write <= 0.0) return -1;  // never corrupts
  return static_cast<int>(
      std::ceil(0.5 * level_spacing_fraction / per_write));
}

}  // namespace comet::photonics
