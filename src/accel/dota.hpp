#pragma once

#include "accel/transformer.hpp"
#include "memsim/device.hpp"
#include "memsim/system.hpp"

/// DOTA: a dynamically-operated photonic tensor core transformer
/// accelerator (paper Section IV.D, Fig. 10).
///
/// The case study quantifies how the main memory choice changes the
/// accelerator's energy-per-bit of data movement. Three mechanisms are
/// modelled:
///
///  1. Memory energy: the memory's background power amortized over the
///     achieved streaming bandwidth (measured by replaying a streaming
///     weight/activation trace through the trace simulator), plus its
///     dynamic per-bit energy.
///  2. Electro-optic conversion: an *electronic* memory feeding the
///     photonic core pays a DAC + modulator-driver conversion on every
///     bit; photonic memories (COMET, COSMOS) inject light directly.
///  3. Utilization: DOTA's dynamic operation keeps the photonic core
///     busier on larger models, so the demanded streaming bandwidth
///     (compute rate / arithmetic intensity) grows from DeiT-T to
///     DeiT-B; memories that cannot keep up stretch execution and burn
///     background power over more time per bit.
namespace comet::accel {

struct DotaConfig {
  /// Photonic tensor cores run at tens of TOPS (the point of optical
  /// compute); 20 TOPS keeps DeiT-B's streaming demand in the tens of
  /// GB/s, which is where the memory choice starts to matter.
  double peak_tops = 20.0;
  double utilization_tiny = 0.35;    ///< Core utilization on DeiT-T.
  double utilization_base = 0.80;    ///< Core utilization on DeiT-B.
  /// High-speed DAC + modulator driver feeding the photonic core from an
  /// electronic memory (tens of pJ/bit at >= 8-bit resolution).
  double eo_conversion_pj_per_bit = 85.0;
  double accel_overhead_pj_per_bit = 10.0; ///< Buffers/NoC/control.

  static DotaConfig paper();
};

/// Per-(memory, model) case-study result.
struct DotaResult {
  std::string memory_name;
  std::string model_name;
  double demanded_bw_gbps = 0.0;   ///< Compute-rate / intensity.
  double achieved_bw_gbps = 0.0;   ///< Streaming bandwidth of the memory.
  double effective_bw_gbps = 0.0;  ///< min(demanded, achieved).
  double memory_epb = 0.0;         ///< Background + dynamic [pJ/bit].
  double conversion_epb = 0.0;     ///< E/O conversion [pJ/bit].
  double overhead_epb = 0.0;       ///< Accelerator-side movement overhead.
  double total_epb() const {
    return memory_epb + conversion_epb + overhead_epb;
  }
};

class DotaSystem {
 public:
  /// `memory_is_photonic` controls the conversion term (mechanism 2).
  DotaSystem(const DotaConfig& config, memsim::DeviceModel memory,
             bool memory_is_photonic);

  /// Evaluates one inference workload. Streaming bandwidth is measured
  /// with a deterministic synthetic weight-stream trace (seeded).
  DotaResult evaluate(const TransformerModel& model) const;

  /// Measured streaming bandwidth of the attached memory [GB/s].
  double streaming_bandwidth_gbps() const { return streaming_bw_gbps_; }

 private:
  DotaConfig config_;
  memsim::MemorySystem memory_;
  bool photonic_;
  double streaming_bw_gbps_;
};

}  // namespace comet::accel
