#include "accel/dota.hpp"

#include <algorithm>

#include "memsim/trace_gen.hpp"

namespace comet::accel {

DotaConfig DotaConfig::paper() { return DotaConfig{}; }

namespace {

/// Weight streaming is long sequential reads with periodic activation
/// read/write bursts: a high-locality, read-heavy stream.
double measure_streaming_bw(const memsim::MemorySystem& memory) {
  memsim::WorkloadProfile profile;
  profile.name = "dota_weight_stream";
  profile.pattern = memsim::Pattern::kStreaming;
  profile.read_fraction = 0.9;
  profile.locality = 0.98;
  profile.working_set_bytes = 256ull << 20;
  profile.avg_interarrival_ns = 0.5;  // saturating
  const memsim::TraceGenerator gen(profile, /*seed=*/0xD07A);
  const auto trace = gen.generate(60000, 128);
  return memory.run(trace, profile.name).bandwidth_gbps();
}

}  // namespace

DotaSystem::DotaSystem(const DotaConfig& config, memsim::DeviceModel memory,
                       bool memory_is_photonic)
    : config_(config),
      memory_(std::move(memory)),
      photonic_(memory_is_photonic),
      streaming_bw_gbps_(measure_streaming_bw(memory_)) {}

DotaResult DotaSystem::evaluate(const TransformerModel& model) const {
  DotaResult result;
  result.memory_name = memory_.model().name;
  result.model_name = model.name;

  const bool is_base = model.hidden >= 512;
  const double utilization =
      is_base ? config_.utilization_base : config_.utilization_tiny;
  const double macs_per_s = config_.peak_tops * 1e12 / 2.0 * utilization;
  result.demanded_bw_gbps =
      macs_per_s / model.arithmetic_intensity() / 1e9;
  result.achieved_bw_gbps = streaming_bw_gbps_;
  result.effective_bw_gbps =
      std::min(result.demanded_bw_gbps, result.achieved_bw_gbps);

  // Memory energy per bit: background power over the effective stream
  // rate, plus the read-dominated dynamic energy.
  const auto& energy = memory_.model().energy;
  const double bits_per_s = result.effective_bw_gbps * 8e9;
  result.memory_epb =
      energy.background_power_w / bits_per_s * 1e12 +
      0.9 * energy.read_pj_per_bit + 0.1 * energy.write_pj_per_bit;

  // Photonic memories feed the photonic tensor core directly; an
  // electronic memory pays the DAC + modulator-driver conversion.
  result.conversion_epb =
      photonic_ ? 0.0 : config_.eo_conversion_pj_per_bit;
  result.overhead_epb = config_.accel_overhead_pj_per_bit;
  return result;
}

}  // namespace comet::accel
