#include "accel/transformer.hpp"

namespace comet::accel {

TransformerModel TransformerModel::deit_tiny() {
  return TransformerModel{.name = "DeiT-T", .hidden = 192, .heads = 3};
}

TransformerModel TransformerModel::deit_base() {
  return TransformerModel{.name = "DeiT-B", .hidden = 768, .heads = 12};
}

std::uint64_t TransformerModel::parameters() const {
  const auto d = static_cast<std::uint64_t>(hidden);
  // Per layer: QKV + output projection (4 d^2) + MLP (2 * mlp_ratio d^2).
  const std::uint64_t per_layer = 4 * d * d + 2 * mlp_ratio * d * d;
  // Patch embedding: 16x16x3 -> d.
  const std::uint64_t patch_embed = 16ull * 16 * 3 * d;
  return layers * per_layer + patch_embed;
}

std::uint64_t TransformerModel::macs_per_inference() const {
  const auto d = static_cast<std::uint64_t>(hidden);
  const auto n = static_cast<std::uint64_t>(seq_len);
  // GEMMs: every weight is used once per token.
  const std::uint64_t gemm = parameters() * n;
  // Attention score and value products: 2 * n^2 * d per layer.
  const std::uint64_t attention = 2ull * layers * n * n * d;
  return gemm + attention;
}

std::uint64_t TransformerModel::weight_traffic_bytes() const {
  return parameters() * static_cast<std::uint64_t>(bytes_per_value);
}

std::uint64_t TransformerModel::activation_traffic_bytes() const {
  const auto d = static_cast<std::uint64_t>(hidden);
  const auto n = static_cast<std::uint64_t>(seq_len);
  // Layer inputs/outputs spill to memory between layers (DOTA's on-chip
  // buffering holds one layer's working set, not the residual stream).
  return 2ull * layers * n * d * bytes_per_value;
}

std::uint64_t TransformerModel::total_traffic_bytes() const {
  return weight_traffic_bytes() + activation_traffic_bytes();
}

double TransformerModel::arithmetic_intensity() const {
  return static_cast<double>(macs_per_inference()) /
         static_cast<double>(total_traffic_bytes());
}

}  // namespace comet::accel
