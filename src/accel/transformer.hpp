#pragma once

#include <cstdint>
#include <string>

/// Vision-transformer workload models for the DOTA case study (paper
/// Section IV.D, Fig. 10). DeiT-T and DeiT-B follow the standard ViT
/// arithmetic: 12 encoder layers of hidden size d with 4d MLPs over a
/// 197-token sequence (224x224 image, 16x16 patches, +1 class token).
namespace comet::accel {

struct TransformerModel {
  std::string name;
  int layers = 12;
  int hidden = 192;        ///< Embedding dimension d.
  int heads = 3;
  int mlp_ratio = 4;
  int seq_len = 197;
  int bytes_per_value = 2; ///< fp16 weights/activations.

  static TransformerModel deit_tiny();  ///< d=192, ~5.5 M params.
  static TransformerModel deit_base();  ///< d=768, ~86 M params.

  /// Encoder parameter count: per layer 4 d^2 (attention) + 2*4 d^2
  /// (MLP) = 12 d^2, plus the patch embedding.
  std::uint64_t parameters() const;

  /// MACs per single-image inference (GEMMs + attention products).
  std::uint64_t macs_per_inference() const;

  /// Weight bytes streamed from main memory per inference (no on-chip
  /// weight residency — DOTA streams weights into the photonic core).
  std::uint64_t weight_traffic_bytes() const;

  /// Activation bytes exchanged with main memory per inference.
  std::uint64_t activation_traffic_bytes() const;

  /// Total main-memory traffic per inference.
  std::uint64_t total_traffic_bytes() const;

  /// MACs per traffic byte — the arithmetic intensity that sets the
  /// bandwidth demand at a given compute rate.
  double arithmetic_intensity() const;
};

}  // namespace comet::accel
