#pragma once

#include "memsim/device.hpp"

/// Electronic DRAM baselines of the paper's Fig. 9: 2D and 3D-stacked
/// DDR3-1600 and DDR4-2400 systems, 8 GB each.
///
/// Timing follows the JEDEC speed grades (tRC-class row cycles, burst
/// times from the pin rate); the controller is the conservative in-order
/// NVMain-style configuration the paper evaluates (closed-page-leaning
/// policy with a small exploitable-MLP window — DDR4's bank groups give
/// it a slightly deeper window than DDR3). 3D variants model TSV
/// stacking as extra independent channels, shorter interface latency and
/// substantially lower per-bit I/O energy (HBM-class), which is exactly
/// how the paper's 3D bars relate to its 2D bars (≈2.1× DDR3, ≈1.4×
/// DDR4 bandwidth, with far better EPB).
namespace comet::dram {

/// Knobs shared by the four DRAM variants; exposed for ablation benches.
struct DramConfig {
  int channels;
  int banks_per_channel;
  std::uint64_t row_cycle_ns;     ///< Bank occupancy of one closed-page access.
  std::uint64_t row_hit_saving_ns;///< Occupancy saved when the row is open.
  double burst_ns;                ///< 64 B on the data bus.
  std::uint64_t interface_ns;     ///< Controller + PHY latency.
  int queue_depth;                ///< Exploitable MLP window.
  double read_pj_per_bit;
  double write_pj_per_bit;
  double background_power_w;      ///< Refresh + PHY + peripheral.
};

DramConfig ddr3_2d_config();
DramConfig ddr3_3d_config();
DramConfig ddr4_2d_config();
DramConfig ddr4_3d_config();

/// Builds the full 8 GB DeviceModel from a config.
memsim::DeviceModel make_dram(const DramConfig& config,
                              const std::string& name);

/// The four baselines by name.
memsim::DeviceModel ddr3_2d();
memsim::DeviceModel ddr3_3d();
memsim::DeviceModel ddr4_2d();
memsim::DeviceModel ddr4_3d();

}  // namespace comet::dram
