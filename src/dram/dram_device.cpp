#include "dram/dram_device.hpp"

#include "util/units.hpp"

namespace comet::dram {
namespace {

constexpr std::uint64_t kCapacityBytes = 8ull << 30;  // 8 GB system.

memsim::DeviceModel from_config(const DramConfig& c, const std::string& name) {
  memsim::DeviceModel model;
  model.name = name;
  model.capacity_bytes = kCapacityBytes;

  auto& t = model.timing;
  t.channels = c.channels;
  t.banks_per_channel = c.banks_per_channel;
  t.line_bytes = 64;  // 64-bit bus x BL8.
  t.line_striped_across_banks = false;
  t.accesses_per_line = 1;
  t.read_occupancy_ps = util::ns_to_ps(double(c.row_cycle_ns));
  t.write_occupancy_ps = util::ns_to_ps(double(c.row_cycle_ns));
  t.burst_ps = util::ns_to_ps(c.burst_ns);
  t.interface_ps = util::ns_to_ps(double(c.interface_ns));
  t.has_row_buffer = true;
  t.row_size_bytes = 8192;
  t.row_hit_saving_ps = util::ns_to_ps(double(c.row_hit_saving_ns));
  // JEDEC refresh: tREFI = 7.8 us, tRFC for 8 Gb class devices.
  t.refresh_interval_ps = util::ns_to_ps(7800.0);
  t.refresh_duration_ps = util::ns_to_ps(350.0);
  t.queue_depth = c.queue_depth;

  auto& e = model.energy;
  e.read_pj_per_bit = c.read_pj_per_bit;
  e.write_pj_per_bit = c.write_pj_per_bit;
  e.background_power_w = c.background_power_w;
  return model;
}

}  // namespace

DramConfig ddr3_2d_config() {
  return DramConfig{
      .channels = 1,
      .banks_per_channel = 8,
      .row_cycle_ns = 49,        // tRC(DDR3-1600) ~ 48.75 ns
      .row_hit_saving_ns = 30,   // skip ACT+PRE on an open row
      .burst_ns = 5.0,           // 64 B at 12.8 GB/s
      .interface_ns = 15,
      .queue_depth = 1,          // in-order baseline controller
      .read_pj_per_bit = 18.0,
      .write_pj_per_bit = 22.0,
      .background_power_w = 4.0, // 8 GB of active-idle DIMM ranks + refresh
  };
}

DramConfig ddr3_3d_config() {
  auto c = ddr3_2d_config();
  c.channels = 2;               // stacked dies expose a second channel
  c.row_cycle_ns = 44;          // shorter global wires in-stack
  c.burst_ns = 2.5;             // wide TSV bus
  c.interface_ns = 8;
  c.read_pj_per_bit = 6.0;      // no off-chip I/O
  c.write_pj_per_bit = 8.0;
  c.background_power_w = 0.4;
  return c;
}

DramConfig ddr4_2d_config() {
  return DramConfig{
      .channels = 1,
      .banks_per_channel = 16,
      .row_cycle_ns = 46,        // tRC(DDR4-2400)
      .row_hit_saving_ns = 30,
      .burst_ns = 3.3,           // 64 B at 19.2 GB/s
      .interface_ns = 12,
      .queue_depth = 2,          // bank groups: one extra in-flight access
      .read_pj_per_bit = 12.0,
      .write_pj_per_bit = 15.0,
      .background_power_w = 3.0, // lower-voltage DDR4 DIMMs
  };
}

DramConfig ddr4_3d_config() {
  auto c = ddr4_2d_config();
  c.channels = 2;
  c.row_cycle_ns = 42;
  c.burst_ns = 1.7;
  c.interface_ns = 6;
  // The latency-optimized TSV interface of the stack runs a plain
  // in-order scheduler (as the paper's 3D configurations do).
  c.queue_depth = 1;
  c.read_pj_per_bit = 4.0;
  c.write_pj_per_bit = 5.0;
  c.background_power_w = 0.35;
  return c;
}

memsim::DeviceModel make_dram(const DramConfig& config,
                              const std::string& name) {
  return from_config(config, name);
}

memsim::DeviceModel ddr3_2d() {
  return from_config(ddr3_2d_config(), "2D_DDR3");
}
memsim::DeviceModel ddr3_3d() {
  return from_config(ddr3_3d_config(), "3D_DDR3");
}
memsim::DeviceModel ddr4_2d() {
  return from_config(ddr4_2d_config(), "2D_DDR4");
}
memsim::DeviceModel ddr4_3d() {
  return from_config(ddr4_3d_config(), "3D_DDR4");
}

}  // namespace comet::dram
