#pragma once

#include "memsim/device.hpp"

/// EPCM-MM: the electrically controlled phase-change main memory
/// baseline ([24] in the paper's comparison set).
///
/// Electrical PCM reads are DRAM-class (sensing a resistive cell through
/// an access transistor); writes are the slow, energy-hungry part
/// (current-pulse SET/RESET with asymmetric latency, the classic EPCM
/// weakness the paper cites: "asymmetric and high write latencies").
/// There is no refresh — the cell is non-volatile — which is why the
/// paper's Fig. 9b shows EPCM-MM among the best EPB bars despite its
/// modest bandwidth.
namespace comet::dram {

struct EpcmConfig {
  int channels;
  int banks_per_channel;
  std::uint64_t read_ns;         ///< Array read (sense) time.
  std::uint64_t write_ns;        ///< SET/RESET programming pulse.
  double burst_ns;
  std::uint64_t interface_ns;
  int queue_depth;
  double read_pj_per_bit;
  double write_pj_per_bit;
  double background_power_w;     ///< No refresh: standby only.
};

EpcmConfig epcm_mm_config();

memsim::DeviceModel make_epcm(const EpcmConfig& config,
                              const std::string& name);

/// The paper's EPCM-MM baseline (8 GB).
memsim::DeviceModel epcm_mm();

}  // namespace comet::dram
