#include "dram/epcm.hpp"

#include "util/units.hpp"

namespace comet::dram {

EpcmConfig epcm_mm_config() {
  return EpcmConfig{
      .channels = 2,
      .banks_per_channel = 16,
      .read_ns = 50,             // PCM array sensing
      .write_ns = 160,           // SET-dominated programming
      .burst_ns = 5.0,
      .interface_ns = 15,
      .queue_depth = 2,
      .read_pj_per_bit = 2.5,    // resistive sensing is cheap
      .write_pj_per_bit = 35.0,  // programming current is not
      .background_power_w = 0.25,// non-volatile: no refresh power
  };
}

memsim::DeviceModel make_epcm(const EpcmConfig& c, const std::string& name) {
  memsim::DeviceModel model;
  model.name = name;
  model.capacity_bytes = 8ull << 30;

  auto& t = model.timing;
  t.channels = c.channels;
  t.banks_per_channel = c.banks_per_channel;
  t.line_bytes = 64;
  t.read_occupancy_ps = util::ns_to_ps(double(c.read_ns));
  t.write_occupancy_ps = util::ns_to_ps(double(c.write_ns));
  t.burst_ps = util::ns_to_ps(c.burst_ns);
  t.interface_ps = util::ns_to_ps(double(c.interface_ns));
  // PCM row buffers exist in some proposals; the paper's EPCM-MM baseline
  // is modelled closed-page like its photonic counterparts.
  t.has_row_buffer = false;
  t.refresh_interval_ps = 0;  // non-volatile
  t.queue_depth = c.queue_depth;

  auto& e = model.energy;
  e.read_pj_per_bit = c.read_pj_per_bit;
  e.write_pj_per_bit = c.write_pj_per_bit;
  e.background_power_w = c.background_power_w;
  return model;
}

memsim::DeviceModel epcm_mm() { return make_epcm(epcm_mm_config(), "EPCM-MM"); }

}  // namespace comet::dram
