#include "driver/options.hpp"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "config/experiment.hpp"
#include "config/serialize.hpp"
#include "driver/registry.hpp"
#include "memsim/trace_gen.hpp"

namespace comet::driver {

namespace {

std::uint64_t parse_u64(const std::string& flag, const std::string& value,
                        std::uint64_t max = UINT64_MAX) {
  std::uint64_t parsed = 0;
  try {
    // Digits only: stoull would skip whitespace and accept '-'/'+' signs
    // (wrapping negatives to huge values), so screen the characters first.
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument(value);
    }
    parsed = std::stoull(value);
  } catch (const std::exception&) {
    throw std::invalid_argument(
        flag + " expects a non-negative integer, got '" + value + "'");
  }
  if (parsed > max) {
    throw std::invalid_argument(flag + " value " + value +
                                " exceeds the maximum of " +
                                std::to_string(max));
  }
  return parsed;
}

double parse_positive_double(const std::string& flag,
                             const std::string& value) {
  // Plain decimal only: no signs, exponents, hex floats, inf/nan or
  // locale surprises — the same strictness as parse_u64.
  if (value.empty() ||
      value.find_first_not_of("0123456789.") != std::string::npos ||
      value.find('.') != value.rfind('.')) {
    throw std::invalid_argument(flag + " expects a positive decimal number, "
                                "got '" + value + "'");
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (errno != 0 || end != value.c_str() + value.size() ||
      !std::isfinite(parsed) || parsed <= 0.0) {
    throw std::invalid_argument(flag + " expects a positive decimal number, "
                                "got '" + value + "'");
  }
  return parsed;
}

/// True when `path` names an openable, readable file. peek() forces a
/// first read, catching paths that open but cannot be read (e.g. a
/// directory, which fopen happily opens on glibc); an empty regular
/// file only sets eofbit and stays valid.
bool file_readable(const std::string& path) {
  std::ifstream probe(path);
  probe.peek();
  return probe.is_open() && !probe.bad();
}

}  // namespace

Options parse_args(const std::vector<std::string>& args) {
  Options opt;
  // First matrix-defining flag seen, for the --config conflict
  // diagnostic: a config file owns the whole matrix.
  std::string matrix_flag;
  const auto matrix = [&](const std::string& flag) {
    if (matrix_flag.empty()) matrix_flag = flag;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--help" || flag == "-h") {
      opt.help = true;
      return opt;
    }
    if (flag == "--csv") {
      opt.csv = true;
      continue;
    }
    if (flag == "--list-devices") {
      opt.list_devices = true;
      continue;
    }
    if (flag == "--list-workloads") {
      opt.list_workloads = true;
      continue;
    }
    if (flag == "--list-policies") {
      opt.list_policies = true;
      continue;
    }
    if (flag == "--profile") {
      opt.profile = true;
      matrix(flag);
      continue;
    }
    // --progress takes an optional =ms value (there is no way to make a
    // space-separated value optional), defaulting to two ticks a second.
    if (flag == "--progress") {
      opt.progress_ms = 500;
      matrix(flag);
      continue;
    }
    if (flag.rfind("--progress=", 0) == 0) {
      opt.progress_ms =
          parse_u64("--progress", flag.substr(std::string("--progress=").size()));
      if (opt.progress_ms == 0) {
        throw std::invalid_argument(
            "--progress interval must be >= 1 (milliseconds between updates)");
      }
      matrix("--progress");
      continue;
    }
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument(flag + " requires a value");
      }
      return args[++i];
    };
    if (flag == "--device") {
      opt.device = next();
      opt.device_given = true;
      matrix(flag);
    } else if (flag == "--workload") {
      opt.workload = next();
      opt.workload_given = true;
      matrix(flag);
    } else if (flag == "--channels") {
      opt.channels = static_cast<int>(parse_u64(flag, next(), INT_MAX));
      if (opt.channels <= 0) {
        throw std::invalid_argument("--channels must be >= 1");
      }
      matrix(flag);
    } else if (flag == "--requests") {
      opt.requests =
          static_cast<std::size_t>(parse_u64(flag, next(), SIZE_MAX));
      if (opt.requests == 0) {
        throw std::invalid_argument("--requests must be >= 1");
      }
      matrix(flag);
    } else if (flag == "--threads") {
      opt.threads = static_cast<int>(parse_u64(flag, next(), INT_MAX));
    } else if (flag == "--run-threads") {
      opt.run_threads = static_cast<int>(parse_u64(flag, next(), INT_MAX));
      matrix(flag);
    } else if (flag == "--seed") {
      opt.seed = parse_u64(flag, next());
      matrix(flag);
    } else if (flag == "--line-bytes") {
      opt.line_bytes =
          static_cast<std::uint32_t>(parse_u64(flag, next(), UINT32_MAX));
      if (opt.line_bytes == 0) {
        throw std::invalid_argument("--line-bytes must be >= 1");
      }
      matrix(flag);
    } else if (flag == "--cache-mb") {
      // Bounded so the capacity in bytes fits comfortably in 64 bits.
      opt.cache_mb = parse_u64(flag, next(), 1ull << 30);
      if (*opt.cache_mb == 0) {
        throw std::invalid_argument("--cache-mb must be >= 1");
      }
      matrix(flag);
    } else if (flag == "--cache-ways") {
      opt.cache_ways = static_cast<int>(parse_u64(flag, next(), INT_MAX));
      if (*opt.cache_ways == 0) {
        throw std::invalid_argument("--cache-ways must be >= 1");
      }
      matrix(flag);
    } else if (flag == "--cache-policy") {
      opt.cache_policy = next();
      (void)parse_cache_policy(*opt.cache_policy);
      matrix(flag);
    } else if (flag == "--schedule") {
      opt.schedule = next();
      (void)sched::policy_from_name(opt.schedule);
      matrix(flag);
    } else if (flag == "--read-q") {
      opt.read_q = static_cast<int>(parse_u64(flag, next(), INT_MAX));
      matrix(flag);
    } else if (flag == "--write-q") {
      opt.write_q = static_cast<int>(parse_u64(flag, next(), INT_MAX));
      matrix(flag);
    } else if (flag == "--drain-high") {
      opt.drain_high = static_cast<int>(parse_u64(flag, next(), INT_MAX));
      matrix(flag);
    } else if (flag == "--drain-low") {
      opt.drain_low = static_cast<int>(parse_u64(flag, next(), INT_MAX));
      matrix(flag);
    } else if (flag == "--config") {
      opt.config = next();
      if (opt.config.empty()) {
        throw std::invalid_argument("--config requires a non-empty path");
      }
    } else if (flag == "--device-file") {
      const std::string& path = next();
      if (path.empty()) {
        throw std::invalid_argument("--device-file requires a non-empty path");
      }
      opt.device_files.push_back(path);
      matrix(flag);
    } else if (flag == "--dump-config") {
      opt.dump_config = next();
      if (opt.dump_config.empty()) {
        throw std::invalid_argument("--dump-config requires a non-empty path");
      }
    } else if (flag == "--trace-file") {
      opt.trace_file = next();
      if (opt.trace_file.empty()) {
        throw std::invalid_argument("--trace-file requires a non-empty path");
      }
      matrix(flag);
    } else if (flag == "--cpu-ghz") {
      opt.cpu_ghz = parse_positive_double(flag, next());
      matrix(flag);
    } else if (flag == "--dump-trace") {
      opt.dump_trace = next();
      if (opt.dump_trace.empty()) {
        throw std::invalid_argument("--dump-trace requires a non-empty path");
      }
      matrix(flag);
    } else if (flag == "--tenants") {
      opt.tenants = next();
      if (opt.tenants.empty()) {
        throw std::invalid_argument("--tenants requires a non-empty list");
      }
      matrix(flag);
    } else if (flag == "--tenant-mapping") {
      opt.tenant_mapping = next();
      (void)config::tenant_mapping_from_name(opt.tenant_mapping);
      matrix(flag);
    } else if (flag == "--tenant-tokens") {
      opt.tenant_tokens = static_cast<int>(parse_u64(flag, next(), INT_MAX));
      if (*opt.tenant_tokens == 0) {
        throw std::invalid_argument("--tenant-tokens must be >= 1");
      }
      matrix(flag);
    } else if (flag == "--starvation-cap") {
      opt.starvation_cap = static_cast<int>(parse_u64(flag, next(), INT_MAX));
      if (*opt.starvation_cap == 0) {
        throw std::invalid_argument("--starvation-cap must be >= 1");
      }
      matrix(flag);
    } else if (flag == "--trace-out") {
      opt.trace_out = next();
      if (opt.trace_out.empty()) {
        throw std::invalid_argument("--trace-out requires a non-empty path");
      }
      matrix(flag);
    } else if (flag == "--trace-limit") {
      opt.trace_limit = parse_u64(flag, next());
      matrix(flag);
    } else if (flag == "--metrics-interval") {
      opt.metrics_interval_ns = parse_u64(flag, next(), UINT64_MAX / 1000);
      if (*opt.metrics_interval_ns == 0) {
        throw std::invalid_argument(
            "--metrics-interval must be >= 1 (nanoseconds per epoch)");
      }
      matrix(flag);
    } else if (flag == "--metrics-csv") {
      opt.metrics_csv = next();
      if (opt.metrics_csv.empty()) {
        throw std::invalid_argument("--metrics-csv requires a non-empty path");
      }
      matrix(flag);
    } else if (flag == "--assert-slo") {
      opt.assert_slo = next();
      if (opt.assert_slo.empty()) {
        throw std::invalid_argument(
            "--assert-slo requires a predicate list, e.g. "
            "\"p99_read_ns<=2500,requests_per_s>=5e6\"");
      }
      matrix(flag);
    } else if (flag == "--json") {
      opt.json_path = next();
      if (opt.json_path.empty()) {
        throw std::invalid_argument("--json requires a non-empty path");
      }
    } else {
      throw std::invalid_argument("unknown flag '" + flag +
                                  "' (see --help)");
    }
  }

  // Validate names, files and flag combinations eagerly so a typo, an
  // inconsistent cache geometry or a malformed config document fails
  // with exit 2 before any simulation runs. `all` is flat-only, so
  // cache overrides cannot invalidate it.
  if (!opt.config.empty() && !matrix_flag.empty()) {
    throw std::invalid_argument(
        "--config cannot be combined with " + matrix_flag +
        " (the config file defines the whole experiment)");
  }
  if (!opt.config.empty()) {
    // Parse and schema-check the document now, including the pieces the
    // schema alone cannot settle: registry tokens, profile names and the
    // trace file must all resolve so every typo is an exit-2 parse
    // failure, exactly like its CLI-flag equivalent. The sweep re-reads
    // the file later — config documents are small, and re-parsing keeps
    // Options a plain value struct.
    const auto spec =
        config::parse_experiment_file(opt.config, registry_resolver());
    try {
      for (const auto& token : spec.device_tokens) {
        (void)resolve_device_specs(token);
      }
      for (const auto& name : spec.workload_names) {
        if (name != "all") (void)memsim::profile_by_name(name);
      }
    } catch (const std::exception& e) {
      throw std::invalid_argument(opt.config + ": " + e.what());
    }
    if (!spec.trace_file.empty() && !file_readable(spec.trace_file)) {
      throw std::invalid_argument(opt.config + ": trace_file: cannot open '" +
                                  spec.trace_file + "'");
    }
  }
  for (const auto& path : opt.device_files) {
    (void)config::parse_device_file(path, registry_resolver());
  }
  if (opt.tenants.empty()) {
    if (!opt.tenant_mapping.empty()) {
      throw std::invalid_argument(
          "--tenant-mapping requires --tenants (there are no streams to map)");
    }
  } else {
    if (opt.workload_given) {
      throw std::invalid_argument(
          "--tenants and --workload cannot be combined (the tenant list "
          "defines the demand; give each tenant its own workload)");
    }
    if (!opt.trace_file.empty()) {
      throw std::invalid_argument(
          "--tenants and --trace-file cannot be combined (use the "
          "name=@trace-file tenant form instead)");
    }
    if (!opt.dump_trace.empty()) {
      throw std::invalid_argument(
          "--tenants and --dump-trace cannot be combined (a trace file holds "
          "one request stream)");
    }
    // Parse the list now so malformed entries, unknown profiles,
    // duplicate names and unreadable trace tenants all exit 2.
    for (const auto& tenant : tenants_from_options(opt)) {
      if (!tenant.trace_file.empty() && !file_readable(tenant.trace_file)) {
        throw std::invalid_argument("--tenants: tenant '" + tenant.name +
                                    "': cannot open '" + tenant.trace_file +
                                    "'");
      }
    }
  }
  if (!opt.trace_file.empty() && !opt.dump_trace.empty()) {
    throw std::invalid_argument(
        "--trace-file and --dump-trace cannot be combined (one replays a "
        "trace, the other writes one)");
  }
  if (!opt.dump_trace.empty() && !opt.dump_config.empty()) {
    throw std::invalid_argument(
        "--dump-trace and --dump-config cannot be combined");
  }
  if (!opt.trace_file.empty() && !file_readable(opt.trace_file)) {
    // Fail a bad path at parse time (exit 2), not deep inside a sweep.
    throw std::invalid_argument("--trace-file: cannot open '" +
                                opt.trace_file + "'");
  }
  if (!opt.dump_trace.empty() && opt.workload == "all") {
    throw std::invalid_argument(
        "--dump-trace requires a single --workload (a trace file holds one "
        "request stream, not a matrix)");
  }
  if (opt.device != "all") {
    (void)resolve_device_specs(
        opt.device, HybridOverrides{.cache_mb = opt.cache_mb,
                                    .cache_ways = opt.cache_ways,
                                    .cache_policy = opt.cache_policy});
  }
  if (opt.workload != "all") (void)memsim::profile_by_name(opt.workload);
  // Inconsistent scheduler flags (depths/watermarks without --schedule,
  // watermarks the bounded queue can never reach) also exit 2 here.
  (void)scheduler_from_options(opt);
  // Same for the telemetry flags (--trace-limit without --trace-out,
  // --metrics-csv without --metrics-interval).
  (void)telemetry_from_options(opt);
  // And the host-observability flags: a malformed or unknown-metric
  // --assert-slo expression exits 2 before any simulation.
  (void)prof_from_options(opt);
  return opt;
}

std::optional<sched::ControllerConfig> scheduler_from_options(
    const Options& options) {
  if (options.schedule.empty()) {
    if (options.read_q || options.write_q || options.drain_high ||
        options.drain_low) {
      throw std::invalid_argument(
          "--read-q/--write-q/--drain-high/--drain-low require --schedule");
    }
    if (options.tenant_tokens || options.starvation_cap) {
      throw std::invalid_argument(
          "--tenant-tokens/--starvation-cap require --schedule");
    }
    return std::nullopt;
  }
  auto config = sched::ControllerConfig::with_depths(
      sched::policy_from_name(options.schedule), options.read_q.value_or(32),
      options.write_q.value_or(32));
  // Only read-first drains writes; accepting watermarks for the other
  // policies would silently ignore them (the --cache-* precedent).
  if (config.policy != sched::Policy::kReadFirst &&
      (options.drain_high || options.drain_low)) {
    throw std::invalid_argument(
        "--drain-high/--drain-low apply to --schedule read-first only "
        "(the " + options.schedule + " policy never drains writes)");
  }
  if (options.drain_high) config.drain_high_watermark = *options.drain_high;
  if (options.drain_low) config.drain_low_watermark = *options.drain_low;
  // The fairness knobs refine their own policy only, for the same
  // reason: every other policy would silently ignore them.
  if (options.tenant_tokens && config.policy != sched::Policy::kTokenBudget) {
    throw std::invalid_argument(
        "--tenant-tokens applies to --schedule token-budget only (the " +
        options.schedule + " policy keeps no token buckets)");
  }
  if (options.starvation_cap && config.policy != sched::Policy::kFrFcfsCap) {
    throw std::invalid_argument(
        "--starvation-cap applies to --schedule frfcfs-cap only (the " +
        options.schedule + " policy keeps no starvation counters)");
  }
  if (options.tenant_tokens) config.tenant_tokens = *options.tenant_tokens;
  if (options.starvation_cap) config.starvation_cap = *options.starvation_cap;
  config.validate();
  return config;
}

std::vector<config::TenantSpec> tenants_from_options(const Options& options) {
  std::vector<config::TenantSpec> tenants;
  if (options.tenants.empty()) return tenants;
  const char* const shape =
      "--tenants entries look like name=workload[:interarrival_ns"
      "[:burstiness]] or name=@trace-file";
  // Decimal fields: the parse_positive_double grammar, zero included
  // (a zero rate/burstiness just keeps the spec's default meaning).
  const auto parse_decimal = [&](const std::string& what,
                                 const std::string& value) {
    if (value.empty() ||
        value.find_first_not_of("0123456789.") != std::string::npos ||
        value.find('.') != value.rfind('.')) {
      throw std::invalid_argument("--tenants: " + what +
                                  " expects a non-negative decimal number, "
                                  "got '" + value + "'");
    }
    return std::strtod(value.c_str(), nullptr);
  };
  std::stringstream list(options.tenants);
  std::string entry;
  while (std::getline(list, entry, ',')) {
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
      throw std::invalid_argument(std::string(shape) + "; got '" + entry +
                                  "'");
    }
    config::TenantSpec spec;
    spec.name = entry.substr(0, eq);
    const std::string body = entry.substr(eq + 1);
    if (body.front() == '@') {
      if (body.size() == 1) {
        throw std::invalid_argument("--tenants: tenant '" + spec.name +
                                    "': '@' needs a trace-file path");
      }
      spec.trace_file = body.substr(1);
    } else {
      std::vector<std::string> parts;
      std::stringstream fields(body);
      std::string part;
      while (std::getline(fields, part, ':')) parts.push_back(part);
      if (parts.empty() || parts.size() > 3) {
        throw std::invalid_argument(std::string(shape) + "; got '" + entry +
                                    "'");
      }
      try {
        spec.profile = memsim::profile_by_name(parts[0]);
      } catch (const std::exception& e) {
        throw std::invalid_argument("--tenants: tenant '" + spec.name +
                                    "': " + e.what());
      }
      if (parts.size() > 1) {
        spec.interarrival_ns = parse_decimal("interarrival_ns", parts[1]);
      }
      if (parts.size() > 2) {
        spec.burstiness = parse_decimal("burstiness", parts[2]);
      }
    }
    tenants.push_back(std::move(spec));
  }
  // Name order — the same deterministic stream ordering the [tenant]
  // config sections get, so ids and seeds never depend on list order.
  std::sort(tenants.begin(), tenants.end(),
            [](const config::TenantSpec& a, const config::TenantSpec& b) {
              return a.name < b.name;
            });
  try {
    config::validate_tenants(tenants);
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("--tenants: ") + e.what());
  }
  return tenants;
}

telemetry::TelemetrySpec telemetry_from_options(const Options& options) {
  telemetry::TelemetrySpec spec;
  spec.trace_path = options.trace_out;
  if (options.trace_limit) {
    if (options.trace_out.empty()) {
      throw std::invalid_argument(
          "--trace-limit requires --trace-out (there is no event budget to "
          "cap without a trace)");
    }
    spec.trace_limit = *options.trace_limit;
  }
  if (options.metrics_interval_ns) {
    spec.metrics_interval_ps = *options.metrics_interval_ns * 1000;
  }
  if (!options.metrics_csv.empty()) {
    if (!options.metrics_interval_ns) {
      throw std::invalid_argument(
          "--metrics-csv requires --metrics-interval (there is no timeline "
          "to write without an epoch length)");
    }
    spec.metrics_csv = options.metrics_csv;
  }
  spec.validate();
  return spec;
}

prof::ProfSpec prof_from_options(const Options& options) {
  prof::ProfSpec spec;
  spec.profile = options.profile;
  spec.progress_ms = options.progress_ms;
  if (!options.assert_slo.empty()) {
    try {
      spec.slo = prof::parse_slo(options.assert_slo);
    } catch (const std::exception& e) {
      throw std::invalid_argument(std::string("--assert-slo: ") + e.what());
    }
  }
  spec.validate();
  return spec;
}

std::string usage() {
  std::ostringstream os;
  os << "comet_sim — trace-driven sweep driver for the COMET memory study\n"
     << "\n"
     << "Usage: comet_sim [options]\n"
     << "  --device <name|all>    architecture to simulate (default: all)\n"
     << "                         one of: all";
  for (const auto& name : known_devices()) os << ", " << name;
  os << ",\n                         hybrid-all";
  for (const auto& name : known_hybrid_devices()) os << ", " << name;
  os << "\n"
     << "  --workload <name|all>  SPEC-like profile (default: all)\n"
     << "                         one of: all";
  for (const auto& profile : memsim::spec_like_profiles()) {
    os << ", " << profile.name;
  }
  os << "\n"
     << "  --config <path>        run the experiment described by a TOML\n"
     << "                         spec (devices, workloads, sweep axes);\n"
     << "                         conflicts with the matrix flags above\n"
     << "  --device-file <path>   add a device defined in a [device] TOML\n"
     << "                         file to the sweep (repeatable)\n"
     << "  --dump-config <path>   write the fully resolved experiment spec\n"
     << "                         (config analogue of --dump-trace) and exit\n"
     << "  --channels N           override the device channel count\n"
     << "  --requests N           requests per run (default: 20000)\n"
     << "  --threads N            sweep worker threads (default: hardware)\n"
     << "  --run-threads N        per-channel replay worker threads inside\n"
     << "                         each run (default: 1 = serial; 0 =\n"
     << "                         hardware threads); results are\n"
     << "                         bit-identical for any value\n"
     << "  --seed N               trace RNG seed (default: 42)\n"
     << "  --line-bytes N         request line size (default: 128)\n"
     << "  --cache-mb N           hybrid devices: DRAM cache capacity [MiB]\n"
     << "  --cache-ways N         hybrid devices: cache associativity\n"
     << "  --cache-policy <p>     hybrid devices: write-allocate (default)\n"
     << "                         or write-no-allocate\n"
     << "  --schedule <policy>    engage the memory-controller scheduler:\n"
     << "                         fcfs (in-order), frfcfs (open-row reuse),\n"
     << "                         read-first (write-drain watermarks),\n"
     << "                         token-budget or frfcfs-cap (fairness-aware\n"
     << "                         FR-FCFS variants; see --list-policies)\n"
     << "  --read-q N             scheduler read-queue depth per channel\n"
     << "                         (default: 32; 0 = unbounded)\n"
     << "  --write-q N            scheduler write-queue depth per channel\n"
     << "                         (default: 32; 0 = unbounded)\n"
     << "  --drain-high N         write-drain high watermark, read-first\n"
     << "                         only (default: 7/8 of the write-queue\n"
     << "                         depth)\n"
     << "  --drain-low N          write-drain low watermark, read-first\n"
     << "                         only (default: 3/8 of the write-queue\n"
     << "                         depth)\n"
     << "  --tenants <list>       multi-tenant run: comma-separated streams\n"
     << "                         name=workload[:interarrival_ns[:burst]]\n"
     << "                         or name=@trace-file, merged into one\n"
     << "                         interleaved run with per-tenant latency,\n"
     << "                         slowdown-vs-alone and Jain fairness stats\n"
     << "  --tenant-mapping <m>   tenant address spaces: partition (default,\n"
     << "                         disjoint 1 TiB slabs) or interleave\n"
     << "                         (line-granular sharing, maximal contention)\n"
     << "  --tenant-tokens N      token-budget policy: per-tenant scheduling\n"
     << "                         tokens per refill (default: 64)\n"
     << "  --starvation-cap N     frfcfs-cap policy: times a queued tenant\n"
     << "                         may be passed over before it outranks row\n"
     << "                         hits (default: 16)\n"
     << "  --trace-file <path>    replay an on-disk NVMain trace (streamed,\n"
     << "                         O(1) memory) instead of a synthetic\n"
     << "                         workload; ignores --workload/--requests\n"
     << "  --cpu-ghz X            CPU clock for trace cycle->time\n"
     << "                         conversion (default: 2.0)\n"
     << "  --dump-trace <path>    write the synthesized trace for a single\n"
     << "                         --workload to <path> and exit\n"
     << "  --trace-out <path>     write a Chrome trace-event JSON of every\n"
     << "                         request's lifecycle (open in Perfetto:\n"
     << "                         one track per channel and bank)\n"
     << "  --trace-limit N        cap on recorded trace events per run\n"
     << "                         (default: 1000000; 0 = unlimited); the\n"
     << "                         trace records what was dropped\n"
     << "  --metrics-interval N   sample an epoch metrics time-series every\n"
     << "                         N ns (bandwidth, queue occupancy, drain\n"
     << "                         activity, latency percentiles) into the\n"
     << "                         --json report's timeline array\n"
     << "  --metrics-csv <path>   also write the timeline as CSV\n"
     << "  --profile              record a host-side run profile (stage wall\n"
     << "                         times, lane utilization, queue stalls,\n"
     << "                         peak RSS) into each record's JSON host\n"
     << "                         object and a console table; never changes\n"
     << "                         the simulated results\n"
     << "  --progress[=ms]        live heartbeat on stderr while the sweep\n"
     << "                         runs: completed/total requests, req/s,\n"
     << "                         ETA, RSS (default period: 500 ms)\n"
     << "  --assert-slo <list>    comma-separated run health gates over\n"
     << "                         the report metrics, e.g.\n"
     << "                         \"p99_read_ns<=2500,requests_per_s>=5e6\";\n"
     << "                         any violated predicate exits 3\n"
     << "  --json <path>          also write machine-readable JSON\n"
     << "  --csv                  print CSV instead of aligned tables\n"
     << "  --list-devices         print every device token and exit\n"
     << "  --list-workloads       print every workload name and exit\n"
     << "  --list-policies        print every scheduling policy (token,\n"
     << "                         behaviour, knobs) and exit\n"
     << "  --help                 this text\n";
  return os.str();
}

}  // namespace comet::driver
