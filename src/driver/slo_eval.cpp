#include "driver/slo_eval.hpp"

namespace comet::driver {
namespace {

struct Metric {
  bool applicable = false;
  double value = 0.0;
};

Metric lookup(const std::string& name, const memsim::SimStats& stats,
              double wall_s) {
  const auto yes = [](double value) { return Metric{true, value}; };

  // Simulated-time metrics: defined for every record (empty stats
  // yield their natural zeros — RunningStats guards its own divisions).
  if (name == "avg_latency_ns") return yes(stats.avg_latency_ns());
  if (name == "avg_read_ns") return yes(stats.read_latency_ns.mean());
  if (name == "avg_write_ns") return yes(stats.write_latency_ns.mean());
  if (name == "avg_queue_delay_ns") return yes(stats.queue_delay_ns.mean());
  if (name == "p50_read_ns") return yes(stats.read_latency_ns.p50());
  if (name == "p95_read_ns") return yes(stats.read_latency_ns.p95());
  if (name == "p99_read_ns") return yes(stats.read_latency_ns.p99());
  if (name == "p50_write_ns") return yes(stats.write_latency_ns.p50());
  if (name == "p95_write_ns") return yes(stats.write_latency_ns.p95());
  if (name == "p99_write_ns") return yes(stats.write_latency_ns.p99());
  if (name == "bandwidth_gbps") return yes(stats.bandwidth_gbps());
  if (name == "energy_pj_per_bit") return yes(stats.epb_pj_per_bit());

  // Mode-dependent metrics: skipped (never violating) where the record
  // has no such concept, so one gate set serves a mixed sweep.
  if (name == "hit_rate") {
    return Metric{stats.is_hybrid(), stats.is_hybrid() ? stats.hit_rate() : 0.0};
  }
  if (name == "max_slowdown") {
    return Metric{stats.is_multi_tenant(), stats.max_slowdown};
  }
  if (name == "fairness_index") {
    return Metric{stats.is_multi_tenant(), stats.fairness_index};
  }

  // Host-side metrics: need the per-job wall clock, which exists
  // whenever a Profiler was attached (--profile/--progress/--assert-slo
  // all attach one).
  if (name == "wall_s") return Metric{wall_s > 0.0, wall_s};
  if (name == "requests_per_s") {
    const auto requests = static_cast<double>(stats.reads + stats.writes);
    return Metric{wall_s > 0.0, wall_s > 0.0 ? requests / wall_s : 0.0};
  }
  // Unreachable for predicates built by prof::parse_slo (the grammar
  // validates names against prof::known_slo_metrics; a registry/eval
  // drift is caught by tests iterating that list).
  return Metric{false, 0.0};
}

}  // namespace

std::vector<SloOutcome> evaluate_slo(
    const std::vector<prof::SloPredicate>& predicates,
    const memsim::SimStats& stats, double wall_s) {
  std::vector<SloOutcome> outcomes;
  outcomes.reserve(predicates.size());
  for (const prof::SloPredicate& predicate : predicates) {
    SloOutcome outcome;
    outcome.predicate = predicate;
    const Metric metric = lookup(predicate.metric, stats, wall_s);
    outcome.applicable = metric.applicable;
    outcome.value = metric.value;
    outcome.pass = !metric.applicable || predicate.holds(metric.value);
    outcomes.push_back(outcome);
  }
  return outcomes;
}

bool slo_violated(const std::vector<SloOutcome>& outcomes) {
  for (const SloOutcome& outcome : outcomes) {
    if (!outcome.pass) return true;
  }
  return false;
}

}  // namespace comet::driver
