#pragma once

#include <ostream>
#include <vector>

#include "driver/slo_eval.hpp"
#include "driver/sweep.hpp"
#include "memsim/stats.hpp"

/// Human tables and machine-readable JSON for comet_sim sweep results.
namespace comet::driver {

/// Per-run table (one row per device × workload) followed by a per-device
/// summary averaged over workloads — the Fig. 9 presentation. `csv`
/// switches both tables to CSV.
void print_report(std::ostream& os, const std::vector<SweepJob>& jobs,
                  const std::vector<memsim::SimStats>& results, bool csv);

/// "Host profile" tables for the --profile runs: per-record wall time,
/// throughput, pool utilization and queue pressure, followed by the
/// per-stage wall-time breakdown. Prints nothing when no record was
/// profiled (`profilers` null, or no entry with spec().profiling()).
/// `profilers`, when given, must be indexed like `jobs`.
void print_host_profile(
    std::ostream& os, const std::vector<SweepJob>& jobs,
    const std::vector<std::unique_ptr<prof::Profiler>>* profilers, bool csv);

/// BENCH_fig9.json-style record: `{"bench": "comet_sim_sweep",
/// "results": [{device, workload, channels, requests, seed,
/// experiment, config_file, avg_read_latency_ns, ..., bandwidth_gbps,
/// energy_pj_per_bit}, ...]}`. The experiment/config_file pair is the
/// run's config provenance (`"cli"` / `""` for flag-driven runs).
/// Numbers are emitted with round-trip precision.
///
/// Telemetry provenance rides along in every record: trace_out /
/// trace_limit / metrics_interval_ns / metrics_csv (null when the
/// corresponding feature is disabled), plus — when `collectors`
/// supplies a Collector for the record — a "telemetry" object (per-
/// stage recorded/dropped counts and the per-bank request heatmap) and
/// the "timeline" array of epoch metrics (null without sampling). A
/// `jq 'del(.results[].telemetry, .results[].timeline, ...)'` therefore
/// diffs a traced run against an untraced one field for field.
/// `collectors`, when given, must be indexed like `jobs` (null entries
/// = telemetry disabled for that job).
///
/// Host observability rides along the same way: a "host" object (whole-
/// job wall time, host throughput, peak RSS, stage timings and LanePool
/// profiles) on records whose job had --profile and a Profiler in
/// `profilers`, and an "slo" object (overall pass plus one check per
/// predicate, skipped checks marked inapplicable) on records with an
/// entry in `slo` — both null otherwise, preserving the jq del() diff
/// contract. `profilers` and `slo`, when given, must be indexed like
/// `jobs` (an empty predicate list in `slo` means "no gating" for that
/// record).
void write_json(
    std::ostream& os, const std::vector<SweepJob>& jobs,
    const std::vector<memsim::SimStats>& results,
    const std::vector<std::unique_ptr<telemetry::Collector>>* collectors =
        nullptr,
    const std::vector<std::unique_ptr<prof::Profiler>>* profilers = nullptr,
    const std::vector<std::vector<SloOutcome>>* slo = nullptr);

}  // namespace comet::driver
