#pragma once

#include <ostream>
#include <vector>

#include "driver/sweep.hpp"
#include "memsim/stats.hpp"

/// Human tables and machine-readable JSON for comet_sim sweep results.
namespace comet::driver {

/// Per-run table (one row per device × workload) followed by a per-device
/// summary averaged over workloads — the Fig. 9 presentation. `csv`
/// switches both tables to CSV.
void print_report(std::ostream& os, const std::vector<SweepJob>& jobs,
                  const std::vector<memsim::SimStats>& results, bool csv);

/// BENCH_fig9.json-style record: `{"bench": "comet_sim_sweep",
/// "results": [{device, workload, channels, requests, seed,
/// experiment, config_file, avg_read_latency_ns, ..., bandwidth_gbps,
/// energy_pj_per_bit}, ...]}`. The experiment/config_file pair is the
/// run's config provenance (`"cli"` / `""` for flag-driven runs).
/// Numbers are emitted with round-trip precision.
///
/// Telemetry provenance rides along in every record: trace_out /
/// trace_limit / metrics_interval_ns / metrics_csv (null when the
/// corresponding feature is disabled), plus — when `collectors`
/// supplies a Collector for the record — a "telemetry" object (per-
/// stage recorded/dropped counts and the per-bank request heatmap) and
/// the "timeline" array of epoch metrics (null without sampling). A
/// `jq 'del(.results[].telemetry, .results[].timeline, ...)'` therefore
/// diffs a traced run against an untraced one field for field.
/// `collectors`, when given, must be indexed like `jobs` (null entries
/// = telemetry disabled for that job).
void write_json(
    std::ostream& os, const std::vector<SweepJob>& jobs,
    const std::vector<memsim::SimStats>& results,
    const std::vector<std::unique_ptr<telemetry::Collector>>* collectors =
        nullptr);

}  // namespace comet::driver
