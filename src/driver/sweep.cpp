#include "driver/sweep.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "driver/registry.hpp"
#include "memsim/trace.hpp"
#include "tenant/runner.hpp"

namespace comet::driver {

namespace {

/// Display label for a trace-file run: the file's basename.
std::string trace_display_name(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

config::ExperimentSpec experiment_from_options(const Options& options) {
  if (!options.config.empty()) {
    return config::parse_experiment_file(options.config, registry_resolver());
  }

  config::ExperimentBuilder builder;
  builder.name("cli");

  // Registry tokens resolve here (with the cache overrides) so the spec
  // is already inline; --device-file definitions follow. The default
  // `--device all` steps aside when only files define the matrix.
  const HybridOverrides overrides{.cache_mb = options.cache_mb,
                                  .cache_ways = options.cache_ways,
                                  .cache_policy = options.cache_policy};
  if (options.device_given || options.device_files.empty()) {
    for (auto& spec : resolve_device_specs(options.device, overrides)) {
      builder.device(std::move(spec));
    }
  }
  for (const auto& path : options.device_files) {
    builder.device(apply_hybrid_overrides(
        config::parse_device_file(path, registry_resolver()), overrides));
  }

  const auto tenants = tenants_from_options(options);
  if (!tenants.empty()) {
    for (auto tenant : tenants) builder.tenant(std::move(tenant));
    builder.tenant_mapping(config::tenant_mapping_from_name(
        options.tenant_mapping.empty() ? "partition" : options.tenant_mapping));
  } else if (!options.trace_file.empty()) {
    builder.trace(options.trace_file, options.cpu_ghz);
  } else if (options.workload == "all") {
    for (auto& profile : memsim::spec_like_profiles()) {
      builder.workload(std::move(profile));
    }
  } else {
    builder.workload(memsim::profile_by_name(options.workload));
  }

  if (const auto controller = scheduler_from_options(options)) {
    builder.schedule({controller->policy});
    builder.controller_config(*controller);
  }
  builder.telemetry(telemetry_from_options(options));
  builder.profile(prof_from_options(options));

  builder.requests({options.requests})
      .seeds({options.seed})
      .channels({options.channels})
      .run_threads({options.run_threads})
      .line_bytes(options.line_bytes);
  return builder.build();
}

config::ExperimentSpec resolve_experiment(config::ExperimentSpec spec) {
  std::vector<DeviceSpec> devices;
  for (const auto& token : spec.device_tokens) {
    for (auto& resolved : resolve_device_specs(token)) {
      devices.push_back(std::move(resolved));
    }
  }
  for (auto& inline_device : spec.devices) {
    devices.push_back(std::move(inline_device));
  }
  spec.devices = std::move(devices);
  spec.device_tokens.clear();

  std::vector<memsim::WorkloadProfile> workloads;
  for (const auto& name : spec.workload_names) {
    if (name == "all") {
      for (auto& profile : memsim::spec_like_profiles()) {
        workloads.push_back(std::move(profile));
      }
    } else {
      workloads.push_back(memsim::profile_by_name(name));
    }
  }
  for (auto& inline_workload : spec.workloads) {
    workloads.push_back(std::move(inline_workload));
  }
  spec.workloads = std::move(workloads);
  spec.workload_names.clear();
  return spec;
}

std::vector<SweepJob> build_matrix(const config::ExperimentSpec& spec) {
  const config::ExperimentSpec resolved = resolve_experiment(spec);
  resolved.validate();

  std::vector<memsim::WorkloadProfile> profiles;
  if (!resolved.tenants.empty()) {
    // Multi-tenant run: one pseudo-workload labelled "a+b+..." (the
    // same label run_multi_tenant stamps on the shared run); the
    // tenant specs carry the actual demand.
    memsim::WorkloadProfile pseudo;
    for (const auto& tenant : resolved.tenants) {
      if (!pseudo.name.empty()) pseudo.name += '+';
      pseudo.name += tenant.name;
    }
    profiles.push_back(std::move(pseudo));
  } else if (!resolved.trace_file.empty()) {
    // On-disk replay: one pseudo-workload per trace file, labelled with
    // its basename; the profile is never used for synthesis.
    memsim::WorkloadProfile pseudo;
    pseudo.name = trace_display_name(resolved.trace_file);
    profiles.push_back(std::move(pseudo));
  } else {
    profiles = resolved.workloads;
  }

  // The scheduler axis: no [controller] section runs the legacy direct
  // replay (one cell, no controller); otherwise one cell per policy.
  std::vector<std::optional<sched::ControllerConfig>> controllers;
  if (resolved.policies.empty()) {
    controllers.push_back(std::nullopt);
  } else {
    for (const auto policy : resolved.policies) {
      sched::ControllerConfig controller = resolved.controller;
      controller.policy = policy;
      controllers.emplace_back(controller);
    }
  }

  std::vector<SweepJob> jobs;
  jobs.reserve(resolved.devices.size() * resolved.channels.size() *
               controllers.size() * resolved.run_threads.size() *
               profiles.size() * resolved.requests.size() *
               resolved.seeds.size());
  for (const auto& device : resolved.devices) {
    for (const int channels : resolved.channels) {
      DeviceSpec configured = device;
      if (channels > 0) configured.set_channels(channels);
      for (const auto& controller : controllers) {
        for (const int run_threads : resolved.run_threads) {
          for (const auto& profile : profiles) {
            for (const auto requests : resolved.requests) {
              for (const auto seed : resolved.seeds) {
                SweepJob job;
                job.device = configured;
                job.profile = profile;
                job.requests = static_cast<std::size_t>(requests);
                job.seed = seed;
                job.line_bytes = resolved.line_bytes;
                job.trace_path = resolved.trace_file;
                job.cpu_ghz = resolved.cpu_ghz;
                job.controller = controller;
                job.run_threads = run_threads;
                job.telemetry = resolved.telemetry;
                job.profile_spec = resolved.profile;
                job.tenants = resolved.tenants;
                job.tenant_mapping = resolved.tenant_mapping;
                job.experiment = resolved.name;
                job.config_file = resolved.source;
                jobs.push_back(std::move(job));
              }
            }
          }
        }
      }
    }
  }
  return jobs;
}

std::vector<SweepJob> build_matrix(const Options& options) {
  return build_matrix(experiment_from_options(options));
}

memsim::SimStats run_job(const SweepJob& job, telemetry::Collector* collector,
                         prof::Profiler* profiler) {
  const auto engine = job.device.make_engine(job.controller, job.run_threads);
  if (collector) engine->attach_telemetry(collector);
  if (profiler) engine->attach_profiler(profiler);
  const auto started = std::chrono::steady_clock::now();
  const auto finish = [&](memsim::SimStats stats) {
    if (profiler) {
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      profiler->set_run_totals(wall_s, stats.reads + stats.writes);
    }
    return stats;
  };
  if (!job.tenants.empty()) {
    tenant::MultiTenantJob multi;
    multi.tenants = job.tenants;
    multi.mapping = job.tenant_mapping;
    multi.default_requests = job.requests;
    multi.seed = job.seed;
    multi.line_bytes = job.line_bytes;
    multi.cpu_ghz = job.cpu_ghz;
    return finish(tenant::run_multi_tenant(*engine, multi));
  }
  if (!job.trace_path.empty()) {
    memsim::TraceFileSource source(
        job.trace_path, memsim::TraceConfig{.cpu_clock_ghz = job.cpu_ghz,
                                            .line_bytes = job.line_bytes});
    return finish(engine->run(source, job.profile.name));
  }
  auto source = memsim::TraceGenerator(job.profile, job.seed)
                    .stream(job.requests, job.line_bytes);
  return finish(engine->run(source, job.profile.name));
}

std::vector<std::unique_ptr<prof::Profiler>> make_profilers(
    const std::vector<SweepJob>& jobs) {
  std::vector<std::unique_ptr<prof::Profiler>> profilers(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].profile_spec.enabled()) {
      profilers[i] = std::make_unique<prof::Profiler>(jobs[i].profile_spec);
    }
  }
  return profilers;
}

std::uint64_t estimate_sweep_requests(const std::vector<SweepJob>& jobs) {
  std::uint64_t total = 0;
  for (const SweepJob& job : jobs) {
    if (!job.tenants.empty()) {
      // Merged run plus one baseline replay per tenant: 2x each stream.
      for (const auto& tenant : job.tenants) {
        const std::uint64_t requests =
            tenant.trace_file.empty()
                ? (tenant.requests > 0 ? tenant.requests : job.requests)
                : 0;  // Trace tenants: length unknown until EOF.
        total += 2 * requests;
      }
    } else if (job.trace_path.empty()) {
      total += job.requests;
    }
  }
  return total;
}

std::vector<memsim::SimStats> run_sweep(
    const std::vector<SweepJob>& jobs, int threads,
    std::vector<std::unique_ptr<telemetry::Collector>>* collectors,
    std::vector<std::unique_ptr<prof::Profiler>>* profilers) {
  std::vector<memsim::SimStats> results(jobs.size());
  if (collectors) {
    // One collector per telemetry-enabled job, created before any
    // worker starts so the pool only ever reads the vector.
    collectors->clear();
    collectors->resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].telemetry.enabled()) {
        (*collectors)[i] =
            std::make_unique<telemetry::Collector>(jobs[i].telemetry);
      }
    }
  }
  const auto job_collector = [&](std::size_t i) -> telemetry::Collector* {
    return collectors ? (*collectors)[i].get() : nullptr;
  };
  const auto job_profiler = [&](std::size_t i) -> prof::Profiler* {
    return profilers ? (*profilers)[i].get() : nullptr;
  };
  if (jobs.empty()) return results;

  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (threads > static_cast<int>(jobs.size())) {
    threads = static_cast<int>(jobs.size());
  }

  if (threads == 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      results[i] = run_job(jobs[i], job_collector(i), job_profiler(i));
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        results[i] = run_job(jobs[i], job_collector(i), job_profiler(i));
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Drain the queue so peers stop picking up new work.
        next.store(jobs.size(), std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace comet::driver
