#include "driver/sweep.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "driver/registry.hpp"
#include "memsim/trace.hpp"

namespace comet::driver {

namespace {

/// Display label for a trace-file run: the file's basename.
std::string trace_display_name(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

std::vector<SweepJob> build_matrix(const Options& options) {
  const HybridOverrides overrides{.cache_mb = options.cache_mb,
                                  .cache_ways = options.cache_ways,
                                  .cache_policy = options.cache_policy};
  auto devices = resolve_device_specs(options.device, overrides);

  std::vector<memsim::WorkloadProfile> profiles;
  if (!options.trace_file.empty()) {
    // On-disk replay: one pseudo-workload per trace file, labelled with
    // its basename; the profile is never used for synthesis.
    memsim::WorkloadProfile pseudo;
    pseudo.name = trace_display_name(options.trace_file);
    profiles.push_back(std::move(pseudo));
  } else if (options.workload == "all") {
    profiles = memsim::spec_like_profiles();
  } else {
    profiles.push_back(memsim::profile_by_name(options.workload));
  }

  std::vector<SweepJob> jobs;
  jobs.reserve(devices.size() * profiles.size());
  for (auto& device : devices) {
    if (options.channels > 0) device.set_channels(options.channels);
    for (const auto& profile : profiles) {
      SweepJob job;
      job.device = device;
      job.profile = profile;
      job.requests = options.requests;
      job.seed = options.seed;
      job.line_bytes = options.line_bytes;
      job.trace_path = options.trace_file;
      job.cpu_ghz = options.cpu_ghz;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

memsim::SimStats run_job(const SweepJob& job) {
  const auto engine = job.device.make_engine();
  if (!job.trace_path.empty()) {
    memsim::TraceFileSource source(
        job.trace_path, memsim::TraceConfig{.cpu_clock_ghz = job.cpu_ghz,
                                            .line_bytes = job.line_bytes});
    return engine->run(source, job.profile.name);
  }
  auto source = memsim::TraceGenerator(job.profile, job.seed)
                    .stream(job.requests, job.line_bytes);
  return engine->run(source, job.profile.name);
}

std::vector<memsim::SimStats> run_sweep(const std::vector<SweepJob>& jobs,
                                        int threads) {
  std::vector<memsim::SimStats> results(jobs.size());
  if (jobs.empty()) return results;

  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (threads > static_cast<int>(jobs.size())) {
    threads = static_cast<int>(jobs.size());
  }

  if (threads == 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) results[i] = run_job(jobs[i]);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        results[i] = run_job(jobs[i]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Drain the queue so peers stop picking up new work.
        next.store(jobs.size(), std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace comet::driver
