#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "config/tenant_spec.hpp"
#include "prof/profiler.hpp"
#include "sched/controller.hpp"
#include "telemetry/telemetry.hpp"

/// comet_sim command-line parsing, separated from main() so the parser is
/// unit-testable (tests/test_driver.cpp) and reusable from scripts.
namespace comet::driver {

struct Options {
  std::string device = "all";    ///< Token or `all` (see registry.hpp).
  std::string workload = "all";  ///< Profile name or `all`.
  int channels = 0;              ///< 0 keeps each device's paper topology.
  std::size_t requests = 20000;  ///< Requests per (device, workload) run.
  int threads = 0;               ///< Sweep workers; 0 = hardware threads.
  int run_threads = 1;           ///< Per-channel replay workers inside
                                 ///< each run; 0 = hardware threads.
                                 ///< Bit-identical results for any value.
  std::uint64_t seed = 42;       ///< Trace-generator seed.
  std::uint32_t line_bytes = 128;
  std::string json_path;         ///< Non-empty: write machine-readable JSON.
  bool csv = false;              ///< Emit CSV instead of aligned tables.
  bool help = false;             ///< --help was requested.
  bool list_devices = false;     ///< Print device tokens and exit 0.
  bool list_workloads = false;   ///< Print workload names and exit 0.
  bool list_policies = false;    ///< Print scheduler policies and exit 0.

  // --- Declarative experiment API (--config / --device-file /
  // --- --dump-config). A config file defines the whole sweep matrix,
  // --- so it conflicts with every matrix flag above; --device-file adds
  // --- inline device definitions to the CLI-built matrix instead (and
  // --- replaces the default `--device all` unless --device is given
  // --- explicitly). Files are parsed at option-parse time: a bad path
  // --- or a schema error exits 2 with a file:line diagnostic.
  std::string config;            ///< Non-empty: experiment spec file.
  std::vector<std::string> device_files;  ///< Inline [device] spec files.
  std::string dump_config;       ///< Non-empty: write the fully resolved
                                 ///< experiment spec here and exit.
  bool device_given = false;     ///< --device appeared explicitly.
  bool workload_given = false;   ///< --workload appeared explicitly.

  // --- On-disk NVMain trace replay (--trace-file): replaces synthetic
  // --- workloads with a streamed trace file; --workload/--requests/
  // --- --seed are then ignored. The file must be openable at parse
  // --- time, so a bad path exits 2 before any simulation runs.
  std::string trace_file;        ///< Non-empty: replay this trace file.
  double cpu_ghz = 2.0;          ///< Trace cycle -> time conversion clock.
  std::string dump_trace;        ///< Non-empty: write the synthesized
                                 ///< trace here and exit (needs a single
                                 ///< --workload; no simulation runs).

  // --- Hybrid DRAM-cache overrides (apply to hybrid-* devices only).
  // --- Disengaged means "keep each variant's default" — explicit, so a
  // --- 0 can never be conflated with "unset".
  std::optional<std::uint64_t> cache_mb;   ///< Cache tier capacity [MiB].
  std::optional<int> cache_ways;           ///< Cache associativity.
  std::optional<std::string> cache_policy; ///< write-allocate |
                                           ///< write-no-allocate.

  // --- Memory-controller scheduling (--schedule engages the sched::
  // --- Controller front-end; empty = legacy direct replay). The queue
  // --- and watermark flags refine it and are rejected without
  // --- --schedule. Unset depth flags default to 32; unset watermarks
  // --- are derived from the write-queue depth.
  std::string schedule;          ///< fcfs | frfcfs | read-first.
  std::optional<int> read_q;     ///< Read-queue depth (0 = unbounded).
  std::optional<int> write_q;    ///< Write-queue depth (0 = unbounded).
  std::optional<int> drain_high; ///< Write-drain high watermark.
  std::optional<int> drain_low;  ///< Write-drain low watermark.

  // --- Multi-tenant front-end (--tenants engages it; see src/tenant):
  // --- named streams merged into one run with per-tenant fairness
  // --- stats. The tenant specs then define the demand, so --tenants
  // --- conflicts with an explicit --workload and with --trace-file
  // --- (trace tenants use the name=@path form instead). The fairness
  // --- scheduling knobs refine their matching --schedule policy and
  // --- are rejected otherwise (the --drain-* precedent).
  std::string tenants;           ///< "name=workload[:ns[:burst]],..." /
                                 ///< "name=@trace-file"; empty = off.
  std::string tenant_mapping;    ///< partition | interleave ("" = partition).
  std::optional<int> tenant_tokens;   ///< token-budget: refill size.
  std::optional<int> starvation_cap;  ///< frfcfs-cap: pass-over bound.

  // --- Telemetry (--trace-out engages request tracing,
  // --- --metrics-interval the epoch metrics time-series; both apply to
  // --- every matrix cell and never change the replay results). The
  // --- refining flags are rejected without their enabling flag.
  std::string trace_out;         ///< Non-empty: write Chrome trace JSON.
  std::optional<std::uint64_t> trace_limit;  ///< Event cap (0 = unlimited).
  std::optional<std::uint64_t> metrics_interval_ns;  ///< Epoch length.
  std::string metrics_csv;       ///< Non-empty: also dump timeline CSV.

  // --- Host-side observability (src/prof): --profile records stage /
  // --- LanePool wall-clock profiles into each record's JSON `host`
  // --- object, --progress[=ms] runs the live stderr heartbeat, and
  // --- --assert-slo gates the run's health (violation = exit 3). None
  // --- of them changes the replay results.
  bool profile = false;          ///< --profile: record host profiles.
  std::uint64_t progress_ms = 0; ///< --progress heartbeat period; 0 = off.
  std::string assert_slo;        ///< --assert-slo predicate list ("" = off).
};

/// The controller config the --schedule/--read-q/--write-q/--drain-*
/// flags describe, or nullopt without --schedule. Throws
/// std::invalid_argument on queue/watermark flags without --schedule or
/// an inconsistent watermark combination (parse_args calls this, so bad
/// combinations exit 2 before any simulation).
std::optional<sched::ControllerConfig> scheduler_from_options(
    const Options& options);

/// The telemetry spec the --trace-out/--trace-limit/--metrics-interval/
/// --metrics-csv flags describe (disabled when none is given). Throws
/// std::invalid_argument on --trace-limit without --trace-out or
/// --metrics-csv without --metrics-interval (parse_args calls this, so
/// bad combinations exit 2 before any simulation).
telemetry::TelemetrySpec telemetry_from_options(const Options& options);

/// The host-observability spec the --profile/--progress/--assert-slo
/// flags describe (disabled when none is given). Throws
/// std::invalid_argument on a malformed --assert-slo expression or an
/// unknown SLO metric (parse_args calls this, so bad predicates exit 2
/// before any simulation).
prof::ProfSpec prof_from_options(const Options& options);

/// The tenant streams the --tenants list describes (empty without the
/// flag). Entries are `name=workload[:interarrival_ns[:burstiness]]`
/// or `name=@trace-file`, comma-separated; streams are returned in
/// name order — the same deterministic ordering contract as the
/// [tenant] config sections. Throws std::invalid_argument on malformed
/// entries, unknown profiles and duplicate names (parse_args calls
/// this, so bad lists exit 2 before any simulation).
std::vector<config::TenantSpec> tenants_from_options(const Options& options);

/// Parses argv-style arguments (excluding argv[0]). Throws
/// std::invalid_argument on unknown flags, missing values, malformed
/// numbers, unknown `--device` / `--workload` names (validated against
/// the registry and the SPEC-like profile set at parse time), and
/// conflicting flag combinations; config/device files are parsed and
/// schema-checked here too (config::toml::ParseError, a
/// std::runtime_error, carries the file:line diagnostic).
Options parse_args(const std::vector<std::string>& args);

/// The --help text.
std::string usage();

}  // namespace comet::driver
