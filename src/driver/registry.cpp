#include "driver/registry.hpp"

#include <sstream>
#include <stdexcept>

#include "core/comet_config.hpp"
#include "core/comet_memory.hpp"
#include "cosmos/cosmos_config.hpp"
#include "cosmos/cosmos_memory.hpp"
#include "dram/dram_device.hpp"
#include "dram/epcm.hpp"
#include "photonics/losses.hpp"

namespace comet::driver {

namespace {

/// The built-in hybrid design points, expressed in the exact document
/// format `--config` and `--device-file` accept: a DRAM cache tier
/// ([device.cache]) promoted in front of a flat backend (`base`). The
/// registry is just a parsed config document — user files and built-in
/// tokens flow through config::parse_device alike. Order here is the
/// expansion order of `hybrid-all`.
constexpr char kBuiltinHybridSpecs[] = R"(
[[device]]
name = "hybrid-comet"
base = "comet"
[device.cache]
capacity_mb = 64

[[device]]
name = "hybrid-comet-small"
base = "comet"
[device.cache]
capacity_mb = 16

[[device]]
name = "hybrid-comet-large"
base = "comet"
[device.cache]
capacity_mb = 256

[[device]]
name = "hybrid-epcm"
base = "epcm"
[device.cache]
capacity_mb = 64

[[device]]
name = "hybrid-cosmos"
base = "cosmos"
[device.cache]
capacity_mb = 64
)";

std::invalid_argument unknown_token(const std::string& token,
                                    bool include_hybrid) {
  std::ostringstream msg;
  msg << "unknown device '" << token << "'; expected one of: all";
  for (const auto& name : known_devices()) msg << ", " << name;
  if (include_hybrid) {
    msg << ", hybrid-all";
    for (const auto& name : known_hybrid_devices()) msg << ", " << name;
  }
  return std::invalid_argument(msg.str());
}

/// The flat factories, or nullopt for anything else (including hybrid
/// tokens) so each caller can raise the error naming its own valid set.
std::optional<memsim::DeviceModel> try_make_device(const std::string& token) {
  if (token == "ddr3") return dram::ddr3_2d();
  if (token == "ddr3_3d") return dram::ddr3_3d();
  if (token == "ddr4") return dram::ddr4_2d();
  // The 3D-stacked DDR4 baseline is the HBM-class part (see
  // dram/dram_device.hpp); `hbm` is an alias users expect.
  if (token == "ddr4_3d" || token == "hbm") return dram::ddr4_3d();
  if (token == "epcm") return dram::epcm_mm();
  if (token == "cosmos") {
    return cosmos::cosmos_device_model(cosmos::CosmosConfig::paper(),
                                       photonics::LossParameters::paper());
  }
  if (token == "comet") {
    return core::CometMemory::device_model(core::CometConfig::comet_4b(),
                                           photonics::LossParameters::paper());
  }
  return std::nullopt;
}

/// Parsed-once view of the built-in hybrid document.
const std::vector<config::toml::Table>& builtin_hybrid_tables() {
  static const config::toml::Document doc =
      config::toml::parse_string(kBuiltinHybridSpecs, "<registry>");
  return doc.root.arrays.at("device");
}

const std::string& hybrid_table_name(const config::toml::Table& table) {
  return table.values.at("name").str;
}

/// Base resolver for the built-in hybrid specs: flat tokens only (the
/// built-ins never reference each other).
DeviceSpec resolve_flat_base(const std::string& token) {
  if (auto model = try_make_device(token)) {
    return DeviceSpec(*std::move(model));
  }
  throw unknown_token(token, /*include_hybrid=*/false);
}

}  // namespace

std::vector<std::string> known_devices() {
  return {"ddr3", "ddr3_3d", "ddr4", "ddr4_3d", "hbm",
          "epcm", "cosmos", "comet"};
}

std::vector<std::string> known_hybrid_devices() {
  std::vector<std::string> tokens;
  for (const auto& table : builtin_hybrid_tables()) {
    tokens.push_back(hybrid_table_name(table));
  }
  return tokens;
}

memsim::DeviceModel make_device(const std::string& token) {
  if (auto model = try_make_device(token)) return *std::move(model);
  throw unknown_token(token, /*include_hybrid=*/false);
}

bool parse_cache_policy(const std::string& policy) {
  if (policy == "write-allocate") return true;
  if (policy == "write-no-allocate") return false;
  throw std::invalid_argument("unknown cache policy '" + policy +
                              "'; expected write-allocate or "
                              "write-no-allocate");
}

DeviceSpec make_device_spec(const std::string& token,
                            const HybridOverrides& overrides) {
  if (auto model = try_make_device(token)) {
    return DeviceSpec(*std::move(model));
  }
  for (const auto& table : builtin_hybrid_tables()) {
    if (hybrid_table_name(table) != token) continue;
    return apply_hybrid_overrides(
        config::parse_device(table, "<registry>", resolve_flat_base),
        overrides);
  }
  throw unknown_token(token, /*include_hybrid=*/true);
}

DeviceSpec apply_hybrid_overrides(DeviceSpec spec,
                                  const HybridOverrides& overrides) {
  if (!spec.is_hybrid() || !overrides.any()) return spec;
  // The DRAM tier model is re-derived from the adjusted cache capacity
  // (make_tiered_config), like any declarative cache change.
  hybrid::DramCacheConfig cache = spec.tiered->cache;
  if (overrides.cache_mb) cache.capacity_bytes = *overrides.cache_mb << 20;
  if (overrides.cache_ways) cache.ways = *overrides.cache_ways;
  if (overrides.cache_policy) {
    cache.write_allocate = parse_cache_policy(*overrides.cache_policy);
  }
  return DeviceSpec(hybrid::make_tiered_config(
      spec.name, std::move(spec.tiered->backend), cache));
}

std::vector<DeviceSpec> resolve_device_specs(const std::string& spec,
                                             const HybridOverrides& overrides) {
  std::vector<DeviceSpec> specs;
  if (spec == "all") {
    for (const auto& token : known_devices()) {
      if (token == "hbm") continue;  // Alias of ddr4_3d, not an 8th device.
      specs.push_back(make_device_spec(token, overrides));
    }
  } else if (spec == "hybrid-all") {
    for (const auto& token : known_hybrid_devices()) {
      specs.push_back(make_device_spec(token, overrides));
    }
  } else {
    specs.push_back(make_device_spec(spec, overrides));
  }
  return specs;
}

config::DeviceResolver registry_resolver() {
  return [](const std::string& token) { return make_device_spec(token); };
}

}  // namespace comet::driver
