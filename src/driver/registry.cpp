#include "driver/registry.hpp"

#include <sstream>
#include <stdexcept>

#include "core/comet_config.hpp"
#include "core/comet_memory.hpp"
#include "cosmos/cosmos_config.hpp"
#include "cosmos/cosmos_memory.hpp"
#include "dram/dram_device.hpp"
#include "dram/epcm.hpp"
#include "memsim/system.hpp"
#include "photonics/losses.hpp"

namespace comet::driver {

namespace {

/// Backend token and default cache capacity for each hybrid variant.
struct HybridVariant {
  const char* token;
  const char* backend;
  std::uint64_t cache_mb;
};

constexpr HybridVariant kHybridVariants[] = {
    {"hybrid-comet", "comet", 64},
    {"hybrid-comet-small", "comet", 16},
    {"hybrid-comet-large", "comet", 256},
    {"hybrid-epcm", "epcm", 64},
    {"hybrid-cosmos", "cosmos", 64},
};

std::invalid_argument unknown_token(const std::string& token,
                                    bool include_hybrid) {
  std::ostringstream msg;
  msg << "unknown device '" << token << "'; expected one of: all";
  for (const auto& name : known_devices()) msg << ", " << name;
  if (include_hybrid) {
    msg << ", hybrid-all";
    for (const auto& name : known_hybrid_devices()) msg << ", " << name;
  }
  return std::invalid_argument(msg.str());
}

/// The flat factories, or nullopt for anything else (including hybrid
/// tokens) so each caller can raise the error naming its own valid set.
std::optional<memsim::DeviceModel> try_make_device(const std::string& token) {
  if (token == "ddr3") return dram::ddr3_2d();
  if (token == "ddr3_3d") return dram::ddr3_3d();
  if (token == "ddr4") return dram::ddr4_2d();
  // The 3D-stacked DDR4 baseline is the HBM-class part (see
  // dram/dram_device.hpp); `hbm` is an alias users expect.
  if (token == "ddr4_3d" || token == "hbm") return dram::ddr4_3d();
  if (token == "epcm") return dram::epcm_mm();
  if (token == "cosmos") {
    return cosmos::cosmos_device_model(cosmos::CosmosConfig::paper(),
                                       photonics::LossParameters::paper());
  }
  if (token == "comet") {
    return core::CometMemory::device_model(core::CometConfig::comet_4b(),
                                           photonics::LossParameters::paper());
  }
  return std::nullopt;
}

}  // namespace

DeviceSpec::DeviceSpec(memsim::DeviceModel model)
    : name(model.name), flat(std::move(model)) {}

DeviceSpec::DeviceSpec(hybrid::TieredConfig config)
    : name(config.name), tiered(std::move(config)) {}

int DeviceSpec::channels() const {
  // .value() so a default-constructed (never-assigned) spec throws
  // std::bad_optional_access instead of silently reading garbage.
  return is_hybrid() ? tiered->backend.timing.channels
                     : flat.value().timing.channels;
}

std::unique_ptr<memsim::Engine> DeviceSpec::make_engine() const {
  if (tiered) return std::make_unique<hybrid::TieredSystem>(*tiered);
  if (flat) return std::make_unique<memsim::MemorySystem>(*flat);
  throw std::logic_error(
      "DeviceSpec::make_engine: empty spec '" + name +
      "' (default-constructed; neither flat nor tiered is engaged — build "
      "specs through make_device_spec/resolve_device_specs)");
}

void DeviceSpec::set_channels(int channels) {
  if (tiered) {
    // The override targets the main-memory part: for hybrid devices
    // that is the backend behind the cache tier.
    tiered->backend.timing.channels = channels;
    tiered->validate();
    return;
  }
  if (flat) {
    flat->timing.channels = channels;
    flat->validate();
    return;
  }
  throw std::logic_error(
      "DeviceSpec::set_channels: empty spec '" + name +
      "' (neither flat nor tiered is engaged)");
}

std::vector<std::string> known_devices() {
  return {"ddr3", "ddr3_3d", "ddr4", "ddr4_3d", "hbm",
          "epcm", "cosmos", "comet"};
}

std::vector<std::string> known_hybrid_devices() {
  std::vector<std::string> tokens;
  for (const auto& variant : kHybridVariants) tokens.push_back(variant.token);
  return tokens;
}

memsim::DeviceModel make_device(const std::string& token) {
  if (auto model = try_make_device(token)) return *std::move(model);
  throw unknown_token(token, /*include_hybrid=*/false);
}

bool parse_cache_policy(const std::string& policy) {
  if (policy == "write-allocate") return true;
  if (policy == "write-no-allocate") return false;
  throw std::invalid_argument("unknown cache policy '" + policy +
                              "'; expected write-allocate or "
                              "write-no-allocate");
}

DeviceSpec make_device_spec(const std::string& token,
                            const HybridOverrides& overrides) {
  for (const auto& variant : kHybridVariants) {
    if (token != variant.token) continue;
    hybrid::DramCacheConfig cache;
    cache.capacity_bytes =
        (overrides.cache_mb ? overrides.cache_mb : variant.cache_mb) << 20;
    if (overrides.cache_ways) cache.ways = overrides.cache_ways;
    if (!overrides.cache_policy.empty()) {
      cache.write_allocate = parse_cache_policy(overrides.cache_policy);
    }
    return DeviceSpec(hybrid::make_tiered_config(
        token, make_device(variant.backend), cache));
  }
  if (auto model = try_make_device(token)) {
    return DeviceSpec(*std::move(model));
  }
  throw unknown_token(token, /*include_hybrid=*/true);
}

std::vector<DeviceSpec> resolve_device_specs(const std::string& spec,
                                             const HybridOverrides& overrides) {
  std::vector<DeviceSpec> specs;
  if (spec == "all") {
    for (auto& model : resolve_devices(spec)) {
      specs.push_back(DeviceSpec(std::move(model)));
    }
  } else if (spec == "hybrid-all") {
    for (const auto& token : known_hybrid_devices()) {
      specs.push_back(make_device_spec(token, overrides));
    }
  } else {
    specs.push_back(make_device_spec(spec, overrides));
  }
  return specs;
}

std::vector<memsim::DeviceModel> resolve_devices(const std::string& spec) {
  std::vector<memsim::DeviceModel> models;
  if (spec == "all") {
    for (const auto& token : known_devices()) {
      if (token == "hbm") continue;
      models.push_back(make_device(token));
    }
  } else {
    models.push_back(make_device(spec));
  }
  return models;
}

}  // namespace comet::driver
