#include "driver/registry.hpp"

#include <sstream>
#include <stdexcept>

#include "core/comet_config.hpp"
#include "core/comet_memory.hpp"
#include "cosmos/cosmos_config.hpp"
#include "cosmos/cosmos_memory.hpp"
#include "dram/dram_device.hpp"
#include "dram/epcm.hpp"
#include "photonics/losses.hpp"

namespace comet::driver {

std::vector<std::string> known_devices() {
  return {"ddr3", "ddr3_3d", "ddr4", "ddr4_3d", "hbm",
          "epcm", "cosmos", "comet"};
}

memsim::DeviceModel make_device(const std::string& token) {
  if (token == "ddr3") return dram::ddr3_2d();
  if (token == "ddr3_3d") return dram::ddr3_3d();
  if (token == "ddr4") return dram::ddr4_2d();
  // The 3D-stacked DDR4 baseline is the HBM-class part (see
  // dram/dram_device.hpp); `hbm` is an alias users expect.
  if (token == "ddr4_3d" || token == "hbm") return dram::ddr4_3d();
  if (token == "epcm") return dram::epcm_mm();
  if (token == "cosmos") {
    return cosmos::cosmos_device_model(cosmos::CosmosConfig::paper(),
                                       photonics::LossParameters::paper());
  }
  if (token == "comet") {
    return core::CometMemory::device_model(core::CometConfig::comet_4b(),
                                           photonics::LossParameters::paper());
  }
  std::ostringstream msg;
  msg << "unknown device '" << token << "'; expected one of: all";
  for (const auto& name : known_devices()) msg << ", " << name;
  throw std::invalid_argument(msg.str());
}

std::vector<memsim::DeviceModel> resolve_devices(const std::string& spec) {
  std::vector<memsim::DeviceModel> models;
  if (spec == "all") {
    // `hbm` is an alias for ddr4_3d; skip it so `all` has no duplicates.
    for (const auto& token : known_devices()) {
      if (token == "hbm") continue;
      models.push_back(make_device(token));
    }
  } else {
    models.push_back(make_device(spec));
  }
  return models;
}

}  // namespace comet::driver
