#include "driver/report.hpp"

#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>

#include "util/table.hpp"

namespace comet::driver {

namespace {

/// Shortest decimal form that round-trips a double (JSON-safe).
std::string json_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof candidate, "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == v) return candidate;
  }
  return buf;
}

std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void print_report(std::ostream& os, const std::vector<SweepJob>& jobs,
                  const std::vector<memsim::SimStats>& results, bool csv) {
  if (jobs.size() != results.size()) {
    throw std::invalid_argument("jobs/results size mismatch");
  }
  using util::Table;

  Table per_run({"device", "workload", "BW (GB/s)", "EPB (pJ/bit)",
                 "read lat (ns)", "write lat (ns)", "queue (ns)"});
  struct Agg {
    double bw = 0.0, epb = 0.0, latency = 0.0;
    int n = 0;
  };
  std::map<std::string, Agg> per_device;
  std::vector<std::string> device_order;

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& stats = results[i];
    per_run.add_row({jobs[i].device.name, jobs[i].profile.name,
                     Table::num(stats.bandwidth_gbps(), 2),
                     Table::num(stats.epb_pj_per_bit(), 2),
                     Table::num(stats.read_latency_ns.mean(), 1),
                     Table::num(stats.write_latency_ns.mean(), 1),
                     Table::num(stats.queue_delay_ns.mean(), 1)});
    if (per_device.find(jobs[i].device.name) == per_device.end()) {
      device_order.push_back(jobs[i].device.name);
    }
    auto& agg = per_device[jobs[i].device.name];
    agg.bw += stats.bandwidth_gbps();
    agg.epb += stats.epb_pj_per_bit();
    agg.latency += stats.avg_latency_ns();
    ++agg.n;
  }

  os << "=== Per-run results ===\n";
  if (csv) per_run.print_csv(os); else per_run.print(os);

  Table summary({"device", "avg BW (GB/s)", "avg EPB (pJ/bit)", "BW/EPB",
                 "avg latency (ns)"});
  for (const auto& name : device_order) {
    const auto& agg = per_device.at(name);
    const double bw = agg.bw / agg.n;
    const double epb = agg.epb / agg.n;
    summary.add_row({name, Table::num(bw, 2), Table::num(epb, 2),
                     Table::num(epb > 0 ? bw / epb : 0.0, 3),
                     Table::num(agg.latency / agg.n, 1)});
  }
  os << "\n=== Per-device averages over workloads ===\n";
  if (csv) summary.print_csv(os); else summary.print(os);

  // Hybrid runs get a tier breakdown: the flat columns above stay
  // comparable across all devices, and the cache behaviour lives here.
  Table hybrid({"device", "workload", "hit rate", "writebacks",
                "DRAM tier (pJ)", "backend tier (pJ)"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& stats = results[i];
    if (!stats.is_hybrid()) continue;
    hybrid.add_row({jobs[i].device.name, jobs[i].profile.name,
                    Table::num(stats.hit_rate(), 3),
                    std::to_string(stats.writebacks),
                    Table::sci(stats.dram_tier_energy_pj, 3),
                    Table::sci(stats.backend_tier_energy_pj, 3)});
  }
  if (hybrid.rows() > 0) {
    os << "\n=== Hybrid tier breakdown ===\n";
    if (csv) hybrid.print_csv(os); else hybrid.print(os);
  }

  // Scheduled runs get the controller breakdown: how much of the
  // end-to-end latency was controller-queue wait vs device service,
  // what the transaction queues held, and the write-drain activity.
  Table sched({"device", "workload", "policy", "queued (ns)", "service (ns)",
               "p95 read (ns)", "rd occ", "wr occ", "drains",
               "drain stalls", "admit stalls"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& stats = results[i];
    if (!stats.is_scheduled()) continue;
    sched.add_row({jobs[i].device.name, jobs[i].profile.name,
                   stats.sched_policy,
                   Table::num(stats.sched_queue_delay_ns.mean(), 1),
                   Table::num(stats.service_latency_ns.mean(), 1),
                   Table::num(stats.read_latency_ns.p95(), 1),
                   Table::num(stats.read_queue_occupancy.mean(), 2),
                   Table::num(stats.write_queue_occupancy.mean(), 2),
                   std::to_string(stats.write_drains),
                   std::to_string(stats.drain_stalls),
                   std::to_string(stats.admit_stalls)});
  }
  if (sched.rows() > 0) {
    os << "\n=== Scheduler breakdown ===\n";
    if (csv) sched.print_csv(os); else sched.print(os);
  }

  // Multi-tenant runs get the fairness breakdown: per-tenant latency
  // against its own run-alone baseline, plus each run's max slowdown
  // and Jain index over the per-tenant slowdowns.
  Table tenants({"device", "workload", "tenant", "reqs", "avg (ns)",
                 "p99 (ns)", "alone (ns)", "slowdown"});
  Table fairness({"device", "workload", "max slowdown", "Jain index"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& stats = results[i];
    if (!stats.is_multi_tenant()) continue;
    for (const auto& tenant : stats.tenants) {
      tenants.add_row({jobs[i].device.name, jobs[i].profile.name, tenant.name,
                       std::to_string(tenant.requests()),
                       Table::num(tenant.avg_latency_ns(), 1),
                       Table::num(tenant.latency_ns.p99(), 1),
                       Table::num(tenant.alone_avg_latency_ns, 1),
                       Table::num(tenant.slowdown, 3)});
    }
    fairness.add_row({jobs[i].device.name, jobs[i].profile.name,
                      Table::num(stats.max_slowdown, 3),
                      Table::num(stats.fairness_index, 3)});
  }
  if (tenants.rows() > 0) {
    os << "\n=== Tenant breakdown ===\n";
    if (csv) tenants.print_csv(os); else tenants.print(os);
    os << "\n=== Tenant fairness ===\n";
    if (csv) fairness.print_csv(os); else fairness.print(os);
  }
}

void print_host_profile(
    std::ostream& os, const std::vector<SweepJob>& jobs,
    const std::vector<std::unique_ptr<prof::Profiler>>* profilers, bool csv) {
  if (!profilers) return;
  if (profilers->size() != jobs.size()) {
    throw std::invalid_argument("jobs/profilers size mismatch");
  }
  using util::Table;

  Table host({"device", "workload", "wall (s)", "req/s", "pool util",
              "push stalls", "pop waits", "queue max"});
  Table stages({"device", "workload", "stage", "calls", "wall (s)", "share"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const prof::Profiler* profiler = (*profilers)[i].get();
    if (!profiler || !profiler->spec().profiling()) continue;

    // Pool pressure aggregated across this record's pools (a hybrid run
    // has one pool per tier stage): utilization weighted by worker-time.
    double busy_s = 0.0, capacity_s = 0.0;
    std::uint64_t push_stalls = 0, pop_waits = 0;
    std::size_t queue_high_water = 0;
    for (const auto& pool : profiler->pools()) {
      push_stalls += pool->push_stalls;
      if (pool->queue_high_water > queue_high_water) {
        queue_high_water = pool->queue_high_water;
      }
      for (const auto& worker : pool->workers) {
        busy_s += worker.busy_s;
        pop_waits += worker.pop_waits;
      }
      capacity_s +=
          pool->wall_s * static_cast<double>(pool->workers.size());
    }
    const double utilization = capacity_s > 0.0 ? busy_s / capacity_s : 0.0;
    host.add_row({jobs[i].device.name, jobs[i].profile.name,
                  Table::num(profiler->wall_seconds(), 3),
                  Table::sci(profiler->requests_per_second(), 3),
                  Table::num(utilization, 3),
                  std::to_string(push_stalls), std::to_string(pop_waits),
                  std::to_string(queue_high_water)});

    const double wall_s = profiler->wall_seconds();
    for (const auto& [name, stage] : profiler->stages()) {
      stages.add_row({jobs[i].device.name, jobs[i].profile.name, name,
                      std::to_string(stage.calls),
                      Table::num(stage.wall_s, 3),
                      Table::num(wall_s > 0.0 ? stage.wall_s / wall_s : 0.0,
                                 3)});
    }
  }
  if (host.rows() == 0) return;

  os << "\n=== Host profile (wall clock; peak RSS "
     << prof::peak_rss_bytes() / (1024 * 1024) << " MiB) ===\n";
  if (csv) host.print_csv(os); else host.print(os);
  if (stages.rows() > 0) {
    os << "\n=== Host stage timings ===\n";
    if (csv) stages.print_csv(os); else stages.print(os);
  }
}

namespace {

void write_timeline_json(std::ostream& os,
                         const telemetry::Collector& collector) {
  os << "[";
  bool first = true;
  for (const auto& point : collector.timeline()) {
    os << (first ? "" : ", ") << "{"
       << "\"epoch\": " << point.epoch
       << ", \"start_ps\": " << point.start_ps
       << ", \"end_ps\": " << point.end_ps
       << ", \"reads\": " << point.reads
       << ", \"writes\": " << point.writes
       << ", \"bytes\": " << point.bytes
       << ", \"bandwidth_gbps\": " << json_num(point.bandwidth_gbps)
       << ", \"avg_latency_ns\": " << json_num(point.avg_latency_ns)
       << ", \"p50_latency_ns\": " << json_num(point.p50_latency_ns)
       << ", \"p95_latency_ns\": " << json_num(point.p95_latency_ns)
       << ", \"p99_latency_ns\": " << json_num(point.p99_latency_ns)
       << ", \"avg_read_queue_occupancy\": "
       << json_num(point.avg_read_queue_occupancy)
       << ", \"avg_write_queue_occupancy\": "
       << json_num(point.avg_write_queue_occupancy)
       << ", \"write_drains\": " << point.write_drains
       << ", \"drained_writes\": " << point.drained_writes
       << ", \"admit_stalls\": " << point.admit_stalls
       << ", \"bank_busy_ns\": " << json_num(point.bank_busy_ns)
       << ", \"channel_requests\": [";
    for (std::size_t c = 0; c < point.channel_requests.size(); ++c) {
      os << (c ? ", " : "") << point.channel_requests[c];
    }
    os << "]}";
    first = false;
  }
  os << "]";
}

/// The per-stage recording summary and channel×bank request heatmap.
void write_telemetry_json(std::ostream& os,
                          const telemetry::Collector& collector) {
  os << "{\"recorded_events\": " << collector.recorded_events()
     << ", \"dropped_events\": " << collector.dropped_events()
     << ", \"truncated\": " << (collector.truncated() ? "true" : "false")
     << ", \"stages\": [";
  bool first_stage = true;
  for (const auto& stage : collector.stages()) {
    os << (first_stage ? "" : ", ")
       << "{\"stage\": " << json_str(stage->stage())
       << ", \"channels\": " << stage->channels()
       << ", \"banks\": " << stage->banks()
       << ", \"recorded_events\": " << stage->recorded_events()
       << ", \"dropped_events\": " << stage->dropped_events()
       << ", \"bank_requests\": [";
    for (int c = 0; c < stage->channels(); ++c) {
      const auto& lane = stage->lane(c);
      os << (c ? ", " : "") << "[";
      for (std::size_t b = 0; b < lane.bank_requests.size(); ++b) {
        os << (b ? ", " : "") << lane.bank_requests[b];
      }
      os << "]";
    }
    os << "]}";
    first_stage = false;
  }
  os << "]}";
}

/// The whole-job host profile: wall clock, throughput, RSS, stage
/// timings and one entry per LanePool.
void write_host_json(std::ostream& os, const prof::Profiler& profiler) {
  os << "{\"wall_s\": " << json_num(profiler.wall_seconds())
     << ", \"requests\": " << profiler.run_requests()
     << ", \"requests_per_s\": " << json_num(profiler.requests_per_second())
     << ", \"peak_rss_bytes\": " << prof::peak_rss_bytes()
     << ", \"stages\": [";
  bool first = true;
  for (const auto& [name, stage] : profiler.stages()) {
    os << (first ? "" : ", ") << "{\"stage\": " << json_str(name)
       << ", \"calls\": " << stage.calls
       << ", \"wall_s\": " << json_num(stage.wall_s) << "}";
    first = false;
  }
  os << "], \"pools\": [";
  bool first_pool = true;
  for (const auto& pool : profiler.pools()) {
    os << (first_pool ? "" : ", ") << "{\"stage\": " << json_str(pool->stage)
       << ", \"threads\": " << pool->threads
       << ", \"wall_s\": " << json_num(pool->wall_s)
       << ", \"utilization\": " << json_num(pool->utilization())
       << ", \"blocks_pushed\": " << pool->blocks_pushed
       << ", \"blocks_allocated\": " << pool->blocks_allocated
       << ", \"blocks_recycled\": " << pool->blocks_recycled
       << ", \"push_stalls\": " << pool->push_stalls
       << ", \"push_wait_s\": " << json_num(pool->push_wait_s)
       << ", \"queue_high_water\": " << pool->queue_high_water
       << ", \"lanes\": [";
    for (std::size_t l = 0; l < pool->lanes.size(); ++l) {
      const auto& lane = pool->lanes[l];
      os << (l ? ", " : "") << "{\"busy_s\": " << json_num(lane.busy_s)
         << ", \"blocks\": " << lane.blocks
         << ", \"requests\": " << lane.requests << "}";
    }
    os << "], \"workers\": [";
    for (std::size_t w = 0; w < pool->workers.size(); ++w) {
      const auto& worker = pool->workers[w];
      os << (w ? ", " : "") << "{\"busy_s\": " << json_num(worker.busy_s)
         << ", \"idle_s\": " << json_num(worker.idle_s)
         << ", \"pop_waits\": " << worker.pop_waits << "}";
    }
    os << "]}";
    first_pool = false;
  }
  os << "]}";
}

/// The SLO verdict: overall pass plus one check per predicate. A check
/// that was skipped (metric not applicable to this record) reports
/// applicable=false and pass=true so the reader can tell "held" from
/// "not measured".
void write_slo_json(std::ostream& os,
                    const std::vector<SloOutcome>& outcomes) {
  os << "{\"pass\": " << (slo_violated(outcomes) ? "false" : "true")
     << ", \"checks\": [";
  for (std::size_t c = 0; c < outcomes.size(); ++c) {
    const SloOutcome& outcome = outcomes[c];
    os << (c ? ", " : "")
       << "{\"predicate\": " << json_str(outcome.predicate.to_string())
       << ", \"metric\": " << json_str(outcome.predicate.metric)
       << ", \"threshold\": " << json_num(outcome.predicate.threshold)
       << ", \"value\": " << json_num(outcome.value)
       << ", \"applicable\": " << (outcome.applicable ? "true" : "false")
       << ", \"pass\": " << (outcome.pass ? "true" : "false") << "}";
  }
  os << "]}";
}

}  // namespace

void write_json(
    std::ostream& os, const std::vector<SweepJob>& jobs,
    const std::vector<memsim::SimStats>& results,
    const std::vector<std::unique_ptr<telemetry::Collector>>* collectors,
    const std::vector<std::unique_ptr<prof::Profiler>>* profilers,
    const std::vector<std::vector<SloOutcome>>* slo) {
  if (jobs.size() != results.size()) {
    throw std::invalid_argument("jobs/results size mismatch");
  }
  if (collectors && collectors->size() != jobs.size()) {
    throw std::invalid_argument("jobs/collectors size mismatch");
  }
  if (profilers && profilers->size() != jobs.size()) {
    throw std::invalid_argument("jobs/profilers size mismatch");
  }
  if (slo && slo->size() != jobs.size()) {
    throw std::invalid_argument("jobs/slo size mismatch");
  }
  os << "{\n  \"bench\": \"comet_sim_sweep\",\n  \"results\": [";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& job = jobs[i];
    const auto& stats = results[i];
    os << (i ? ",\n" : "\n") << "    {"
       << "\"device\": " << json_str(job.device.name)
       << ", \"workload\": " << json_str(job.profile.name)
       << ", \"channels\": " << job.device.channels()
       << ", \"requests\": " << job.requests
       << ", \"seed\": " << job.seed
       << ", \"line_bytes\": " << job.line_bytes
       << ", \"run_threads\": " << job.run_threads
       << ", \"trace_file\": " << json_str(job.trace_path)
       << ", \"experiment\": " << json_str(job.experiment)
       << ", \"config_file\": " << json_str(job.config_file)
       << ", \"reads\": " << stats.reads
       << ", \"writes\": " << stats.writes
       << ", \"span_ps\": " << stats.span_ps
       << ", \"avg_read_latency_ns\": "
       << json_num(stats.read_latency_ns.mean())
       << ", \"avg_write_latency_ns\": "
       << json_num(stats.write_latency_ns.mean())
       << ", \"p50_read_latency_ns\": " << json_num(stats.read_latency_ns.p50())
       << ", \"p95_read_latency_ns\": " << json_num(stats.read_latency_ns.p95())
       << ", \"p99_read_latency_ns\": " << json_num(stats.read_latency_ns.p99())
       << ", \"p50_write_latency_ns\": "
       << json_num(stats.write_latency_ns.p50())
       << ", \"p95_write_latency_ns\": "
       << json_num(stats.write_latency_ns.p95())
       << ", \"p99_write_latency_ns\": "
       << json_num(stats.write_latency_ns.p99())
       << ", \"avg_queue_delay_ns\": " << json_num(stats.queue_delay_ns.mean())
       << ", \"bandwidth_gbps\": " << json_num(stats.bandwidth_gbps())
       << ", \"energy_pj_per_bit\": " << json_num(stats.epb_pj_per_bit())
       << ", \"dynamic_energy_pj\": " << json_num(stats.dynamic_energy_pj)
       << ", \"background_energy_pj\": " << json_num(stats.background_energy_pj)
       << ", \"hybrid\": " << (stats.is_hybrid() ? "true" : "false")
       << ", \"cache_hits\": " << stats.cache_hits
       << ", \"cache_misses\": " << stats.cache_misses
       << ", \"hit_rate\": " << json_num(stats.hit_rate())
       << ", \"writebacks\": " << stats.writebacks
       << ", \"dram_tier_energy_pj\": " << json_num(stats.dram_tier_energy_pj)
       << ", \"backend_tier_energy_pj\": "
       << json_num(stats.backend_tier_energy_pj);
    // Every scheduler field lives under one "sched" object (null for
    // legacy runs), so a jq del(.results[].sched) compares a scheduled
    // run against the direct-replay path field for field.
    if (stats.is_scheduled() && job.controller) {
      const auto& c = *job.controller;
      os << ", \"sched\": {"
         << "\"policy\": " << json_str(stats.sched_policy)
         << ", \"read_queue_depth\": " << c.read_queue_depth
         << ", \"write_queue_depth\": " << c.write_queue_depth
         << ", \"drain_high_watermark\": " << c.drain_high_watermark
         << ", \"drain_low_watermark\": " << c.drain_low_watermark
         << ", \"avg_queue_delay_ns\": "
         << json_num(stats.sched_queue_delay_ns.mean())
         << ", \"p95_queue_delay_ns\": "
         << json_num(stats.sched_queue_delay_ns.p95())
         << ", \"avg_service_latency_ns\": "
         << json_num(stats.service_latency_ns.mean())
         << ", \"avg_read_queue_occupancy\": "
         << json_num(stats.read_queue_occupancy.mean())
         << ", \"avg_write_queue_occupancy\": "
         << json_num(stats.write_queue_occupancy.mean())
         << ", \"max_write_queue_occupancy\": "
         << json_num(stats.write_queue_occupancy.max())
         << ", \"write_drains\": " << stats.write_drains
         << ", \"drained_writes\": " << stats.drained_writes
         << ", \"drain_stalls\": " << stats.drain_stalls
         << ", \"admit_stalls\": " << stats.admit_stalls
         << "}";
    } else {
      os << ", \"sched\": null";
    }
    // Per-tenant fairness block, "sched"-style: null for single-stream
    // runs, so jq del(.results[].tenants) compares the two shapes.
    if (stats.is_multi_tenant()) {
      os << ", \"tenants\": {"
         << "\"mapping\": "
         << json_str(config::tenant_mapping_name(job.tenant_mapping))
         << ", \"max_slowdown\": " << json_num(stats.max_slowdown)
         << ", \"fairness_index\": " << json_num(stats.fairness_index)
         << ", \"streams\": [";
      for (std::size_t t = 0; t < stats.tenants.size(); ++t) {
        const auto& tenant = stats.tenants[t];
        os << (t ? ", " : "") << "{"
           << "\"name\": " << json_str(tenant.name)
           << ", \"reads\": " << tenant.reads
           << ", \"writes\": " << tenant.writes
           << ", \"bytes\": " << tenant.bytes_transferred
           << ", \"avg_latency_ns\": " << json_num(tenant.avg_latency_ns())
           << ", \"p50_latency_ns\": " << json_num(tenant.latency_ns.p50())
           << ", \"p95_latency_ns\": " << json_num(tenant.latency_ns.p95())
           << ", \"p99_latency_ns\": " << json_num(tenant.latency_ns.p99())
           << ", \"alone_avg_latency_ns\": "
           << json_num(tenant.alone_avg_latency_ns)
           << ", \"slowdown\": " << json_num(tenant.slowdown)
           << "}";
      }
      os << "]}";
    } else {
      os << ", \"tenants\": null";
    }
    // Telemetry provenance: null when the feature is disabled, so
    // jq del(...) diffs traced against untraced reports cleanly.
    if (job.telemetry.tracing()) {
      os << ", \"trace_out\": " << json_str(job.telemetry.trace_path)
         << ", \"trace_limit\": " << job.telemetry.trace_limit;
    } else {
      os << ", \"trace_out\": null, \"trace_limit\": null";
    }
    if (job.telemetry.sampling()) {
      os << ", \"metrics_interval_ns\": "
         << job.telemetry.metrics_interval_ps / 1000;
    } else {
      os << ", \"metrics_interval_ns\": null";
    }
    if (!job.telemetry.metrics_csv.empty()) {
      os << ", \"metrics_csv\": " << json_str(job.telemetry.metrics_csv);
    } else {
      os << ", \"metrics_csv\": null";
    }
    const telemetry::Collector* collector =
        collectors ? (*collectors)[i].get() : nullptr;
    if (collector) {
      os << ", \"telemetry\": ";
      write_telemetry_json(os, *collector);
    } else {
      os << ", \"telemetry\": null";
    }
    if (collector && job.telemetry.sampling()) {
      os << ", \"timeline\": ";
      write_timeline_json(os, *collector);
    } else {
      os << ", \"timeline\": null";
    }
    // Host profile and SLO verdict, same null contract: --profile off
    // (or a heartbeat/gate-only profiler) keeps "host" null, no
    // --assert-slo keeps "slo" null.
    const prof::Profiler* profiler =
        profilers ? (*profilers)[i].get() : nullptr;
    if (profiler && job.profile_spec.profiling()) {
      os << ", \"host\": ";
      write_host_json(os, *profiler);
    } else {
      os << ", \"host\": null";
    }
    if (slo && !(*slo)[i].empty()) {
      os << ", \"slo\": ";
      write_slo_json(os, (*slo)[i]);
    } else {
      os << ", \"slo\": null";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace comet::driver
