#pragma once

#include <vector>

#include "memsim/stats.hpp"
#include "prof/slo.hpp"

/// SLO health-gate evaluation: maps the metric *names* the prof layer's
/// grammar accepts (prof::known_slo_metrics) onto the *values* a
/// finished run produced. The split keeps the grammar reusable and
/// engine-agnostic while the driver — which owns SimStats and the host
/// wall clock — decides what each name means.
namespace comet::driver {

/// One predicate's result against one record.
struct SloOutcome {
  prof::SloPredicate predicate;

  /// False when the metric does not exist for this record (hit_rate on
  /// a flat device, max_slowdown without tenants, requests_per_s /
  /// wall_s without --profile). Skipped predicates never violate — a
  /// sweep mixing hybrid and flat cells can still gate on hit_rate.
  bool applicable = false;
  double value = 0.0;
  bool pass = true;  ///< True when skipped or when the predicate holds.
};

/// Evaluates every predicate against one record. `wall_s` is the job's
/// host wall time (0 when unprofiled — the host metrics are then not
/// applicable). Division-guarded throughout: a zero-request or
/// zero-time run yields zeros, never NaN.
std::vector<SloOutcome> evaluate_slo(
    const std::vector<prof::SloPredicate>& predicates,
    const memsim::SimStats& stats, double wall_s);

/// True when any outcome is an applicable failed predicate.
bool slo_violated(const std::vector<SloOutcome>& outcomes);

}  // namespace comet::driver
