#pragma once

#include <optional>
#include <string>
#include <vector>

#include "config/device_spec.hpp"
#include "config/serialize.hpp"
#include "memsim/device.hpp"

/// CLI-token → architecture registry for the comet_sim driver.
///
/// Tokens are the names users type on the command line (`--device
/// comet`, `--device hybrid-comet`). Flat tokens resolve to the
/// paper-configured DeviceModel factories from the dram/cosmos/core
/// layers; `hybrid-*` tokens are declarative specs — the same document
/// structure `--config` / `--device-file` accept — resolved through
/// config::parse_device, so built-ins and user files flow through one
/// code path. `all` expands to the seven Fig. 9 architectures in the
/// paper's presentation order; `hybrid-all` expands to every hybrid
/// design point.
namespace comet::driver {

/// The resolved-device type is shared with the config layer (it is what
/// config documents parse into).
using DeviceSpec = config::DeviceSpec;

/// Canonical flat device tokens accepted by `--device`, in expansion
/// order of `all`: ddr3, ddr3_3d, ddr4, ddr4_3d (alias: hbm), epcm,
/// cosmos, comet.
std::vector<std::string> known_devices();

/// Hybrid tokens, in expansion order of `hybrid-all`: hybrid-comet and
/// small/large cache variants, hybrid-epcm, hybrid-cosmos.
std::vector<std::string> known_hybrid_devices();

/// `--cache-*` CLI overrides applied on top of each hybrid variant's
/// defaults. Disengaged optionals keep the variant's own value — the
/// explicit form of "unset", so a literal 0 can never be conflated with
/// "keep the default". Flat devices ignore them.
struct HybridOverrides {
  std::optional<std::uint64_t> cache_mb;   ///< DRAM tier capacity [MiB].
  std::optional<int> cache_ways;           ///< Associativity.
  std::optional<std::string> cache_policy; ///< "write-allocate" |
                                           ///< "write-no-allocate".

  bool any() const {
    return cache_mb.has_value() || cache_ways.has_value() ||
           cache_policy.has_value();
  }
};

/// Builds the paper-configured model for one flat token; throws
/// std::invalid_argument naming the token and the valid flat set
/// otherwise (hybrid tokens resolve through make_device_spec).
memsim::DeviceModel make_device(const std::string& token);

/// Parses a `--cache-policy` value to the write_allocate flag; throws
/// std::invalid_argument on anything but "write-allocate" /
/// "write-no-allocate". Single source of truth for the CLI and the
/// registry.
bool parse_cache_policy(const std::string& policy);

/// Builds the spec for any token, flat or hybrid, applying the
/// overrides to hybrid ones. Throws std::invalid_argument on unknown
/// tokens or invalid override combinations.
DeviceSpec make_device_spec(const std::string& token,
                            const HybridOverrides& overrides = {});

/// Applies the `--cache-*` overrides to a hybrid spec, re-deriving the
/// DRAM tier model from the adjusted cache capacity; flat specs pass
/// through untouched. One path for registry tokens and --device-file
/// specs alike, so the flags are never silently ignored for
/// file-defined hybrids. Throws std::invalid_argument on an invalid
/// resulting geometry or policy.
DeviceSpec apply_hybrid_overrides(DeviceSpec spec,
                                  const HybridOverrides& overrides);

/// Expands a `--device` argument: `all` → every flat device,
/// `hybrid-all` → every hybrid design point, otherwise the single named
/// one. Throws std::invalid_argument on unknown tokens.
std::vector<DeviceSpec> resolve_device_specs(
    const std::string& spec, const HybridOverrides& overrides = {});

/// The registry as a config-layer base resolver: maps any single
/// flat/hybrid token to its spec (no CLI overrides). Hand this to
/// config::parse_device / parse_experiment so user documents can write
/// `base = "comet"`.
config::DeviceResolver registry_resolver();

}  // namespace comet::driver
