#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hybrid/tiered_system.hpp"
#include "memsim/device.hpp"
#include "memsim/engine.hpp"

/// CLI-token → architecture registry for the comet_sim driver.
///
/// Tokens are the names users type on the command line (`--device
/// comet`, `--device hybrid-comet`). Flat tokens resolve to the
/// paper-configured DeviceModel factories from the dram/cosmos/core
/// layers; `hybrid-*` tokens resolve to a hybrid::TieredConfig (a DRAM
/// cache tier in front of one of those backends). `all` expands to the
/// seven Fig. 9 architectures in the paper's presentation order;
/// `hybrid-all` expands to every hybrid design point.
namespace comet::driver {

/// Canonical flat device tokens accepted by `--device`, in expansion
/// order of `all`: ddr3, ddr3_3d, ddr4, ddr4_3d (alias: hbm), epcm,
/// cosmos, comet.
std::vector<std::string> known_devices();

/// Hybrid tokens, in expansion order of `hybrid-all`: hybrid-comet and
/// small/large cache variants, hybrid-epcm, hybrid-cosmos.
std::vector<std::string> known_hybrid_devices();

/// `--cache-*` CLI overrides applied on top of each hybrid variant's
/// defaults; zero / empty fields keep the variant's own value. Flat
/// devices ignore them.
struct HybridOverrides {
  std::uint64_t cache_mb = 0;  ///< DRAM tier capacity [MiB].
  int cache_ways = 0;          ///< Associativity.
  std::string cache_policy;    ///< "write-allocate" | "write-no-allocate".
};

/// One resolved `--device` entry: either a flat DeviceModel or a hybrid
/// TieredConfig, under one display name. A registry-built spec always
/// has exactly one of the two optionals engaged; call sites never read
/// them directly — make_engine() hands back the polymorphic
/// memsim::Engine that replays this architecture, and set_channels()
/// applies the one CLI override that reaches inside a model. (A
/// default-constructed spec has *neither* optional engaged; every
/// accessor below fails loudly on one rather than dereferencing an
/// empty optional.)
struct DeviceSpec {
  std::string name;
  std::optional<memsim::DeviceModel> flat;     ///< Engaged for flat tokens.
  std::optional<hybrid::TieredConfig> tiered;  ///< Engaged for hybrid-*.

  DeviceSpec() = default;
  explicit DeviceSpec(memsim::DeviceModel model);
  explicit DeviceSpec(hybrid::TieredConfig config);

  bool is_hybrid() const { return tiered.has_value(); }

  /// Channel count of the (backend) main-memory device.
  int channels() const;

  /// Instantiates the replay engine for this architecture: a
  /// memsim::MemorySystem for flat specs, a hybrid::TieredSystem for
  /// hybrid ones. Throws std::logic_error on a default-constructed spec
  /// with neither alternative engaged.
  std::unique_ptr<memsim::Engine> make_engine() const;

  /// Applies a channel-count override to the main-memory part (the
  /// backend behind the cache tier for hybrid specs) and re-validates
  /// the adjusted model. Throws std::logic_error on an empty spec.
  void set_channels(int channels);
};

/// Builds the paper-configured model for one flat token; throws
/// std::invalid_argument naming the token and the valid flat set
/// otherwise (hybrid tokens resolve through make_device_spec).
memsim::DeviceModel make_device(const std::string& token);

/// Parses a `--cache-policy` value to the write_allocate flag; throws
/// std::invalid_argument on anything but "write-allocate" /
/// "write-no-allocate". Single source of truth for the CLI and the
/// registry.
bool parse_cache_policy(const std::string& policy);

/// Builds the spec for any token, flat or hybrid, applying the
/// overrides to hybrid ones. Throws std::invalid_argument on unknown
/// tokens or invalid override combinations.
DeviceSpec make_device_spec(const std::string& token,
                            const HybridOverrides& overrides = {});

/// Expands a `--device` argument: `all` → every flat device,
/// `hybrid-all` → every hybrid design point, otherwise the single named
/// one. Throws std::invalid_argument on unknown tokens.
std::vector<DeviceSpec> resolve_device_specs(
    const std::string& spec, const HybridOverrides& overrides = {});

/// Flat-only expansion kept for the paper-figure benches: `all` → every
/// known flat device, otherwise the single named one.
std::vector<memsim::DeviceModel> resolve_devices(const std::string& spec);

}  // namespace comet::driver
