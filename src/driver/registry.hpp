#pragma once

#include <string>
#include <vector>

#include "memsim/device.hpp"

/// CLI-token → DeviceModel registry for the comet_sim driver.
///
/// Tokens are the architecture names users type on the command line
/// (`--device comet`); each resolves to the paper-configured DeviceModel
/// factory from the dram/cosmos/core layers. `all` expands to the seven
/// Fig. 9 architectures in the paper's presentation order.
namespace comet::driver {

/// Canonical device tokens accepted by `--device`, in expansion order of
/// `all`: ddr3, ddr3_3d, ddr4, ddr4_3d (alias: hbm), epcm, cosmos, comet.
std::vector<std::string> known_devices();

/// Builds the paper-configured model for one token; throws
/// std::invalid_argument naming the token and the valid set otherwise.
memsim::DeviceModel make_device(const std::string& token);

/// Expands a `--device` argument: `all` → every known device, otherwise
/// the single named one. Throws std::invalid_argument on unknown tokens.
std::vector<memsim::DeviceModel> resolve_devices(const std::string& spec);

}  // namespace comet::driver
