#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "config/experiment.hpp"
#include "driver/options.hpp"
#include "driver/registry.hpp"
#include "memsim/stats.hpp"
#include "memsim/trace_gen.hpp"
#include "prof/profiler.hpp"

/// Parallel sweep engine: fans the experiment matrix out across a
/// thread pool. Each job is fully independent — the request stream is
/// either synthesized lazily inside the worker from (profile, seed) or
/// streamed from an on-disk NVMain trace, and the polymorphic
/// memsim::Engine built per job (DeviceSpec::make_engine) is const — so
/// results are bit-identical for any thread count, and the Fig. 9 matrix
/// parallelises with near-linear speedup.
///
/// The matrix itself comes from a config::ExperimentSpec — either built
/// from the CLI flags (experiment_from_options) or parsed from a
/// `--config` document — so both entry points expand through one path.
namespace comet::driver {

/// One cell of the sweep matrix. `device` is either a flat architecture
/// or a hybrid DRAM-cache + backend design point. When `trace_path` is
/// empty the worker synthesizes `requests` requests from (profile,
/// seed); otherwise it streams the on-disk trace (profile.name then only
/// labels the run — by convention the trace file's basename) and
/// requests/seed are ignored.
struct SweepJob {
  DeviceSpec device;
  memsim::WorkloadProfile profile;
  std::size_t requests = 20000;
  std::uint64_t seed = 42;
  std::uint32_t line_bytes = 128;
  std::string trace_path;  ///< Non-empty: replay this NVMain trace file.
  double cpu_ghz = 2.0;    ///< Trace cycle -> time conversion.

  /// Engaged: run behind a sched::Controller front-end (the backend
  /// tier of hybrid devices); disengaged: legacy direct replay.
  std::optional<sched::ControllerConfig> controller;

  /// Per-channel replay worker threads inside this one job
  /// (memsim::resolve_run_threads semantics; orthogonal to the sweep's
  /// own job-level `--threads` pool). Results are bit-identical across
  /// values — the axis only moves wall-clock.
  int run_threads = 1;

  /// Observability for this cell (disabled by default — the replay
  /// results are identical either way; only the recording happens).
  comet::telemetry::TelemetrySpec telemetry;

  /// Host-side observability for this cell (wall-clock twin of
  /// `telemetry`): stage/LanePool profiling, heartbeat progress and SLO
  /// gating. Also never changes the replay results.
  comet::prof::ProfSpec profile_spec;

  /// Multi-tenant front-end: non-empty replaces the single stream with
  /// the interleaved tenant streams (tenant::run_multi_tenant —
  /// `requests` then serves as the per-tenant default and `profile`
  /// only labels the run). Empty = classic single-stream cell.
  std::vector<config::TenantSpec> tenants;
  config::TenantMapping tenant_mapping = config::TenantMapping::kPartition;

  // --- Provenance, echoed into the JSON report.
  std::string experiment;   ///< Experiment name ("cli" for flag runs).
  std::string config_file;  ///< The --config path; empty for flag runs.
};

/// Lifts the CLI flags into the declarative API: registry tokens are
/// resolved (with the --cache-* overrides applied), --device-file specs
/// are appended, and workload names become inline profiles — or, under
/// --config, the file is parsed as-is. Throws std::invalid_argument /
/// config::toml::ParseError on unknown names or malformed documents.
config::ExperimentSpec experiment_from_options(const Options& options);

/// Expands every registry token (`all`, `hybrid-all`, single names) and
/// workload name in the spec into inline definitions, in tokens-first
/// order. The result is registry-independent — what --dump-config
/// writes. Throws std::invalid_argument on unknown tokens/names.
config::ExperimentSpec resolve_experiment(config::ExperimentSpec spec);

/// Expands a spec into the job matrix: devices × channels × policies ×
/// run_threads × workloads × requests × seeds (resolving registry
/// tokens first). The channel override re-validates each adjusted
/// model.
std::vector<SweepJob> build_matrix(const config::ExperimentSpec& spec);

/// CLI shorthand: build_matrix(experiment_from_options(options)).
std::vector<SweepJob> build_matrix(const Options& options);

/// Runs one job serially (the reference path the tests compare against):
/// streams the job's source through the device's engine in O(1) memory.
/// A non-null `collector` is attached to the engine for the run (the
/// caller builds it from job.telemetry and reads it back afterwards).
/// A non-null `profiler` is likewise attached and additionally receives
/// the job's wall time and request total (set_run_totals) when the run
/// finishes; neither observer changes the simulated stats.
memsim::SimStats run_job(const SweepJob& job,
                         telemetry::Collector* collector = nullptr,
                         prof::Profiler* profiler = nullptr);

/// One Profiler per profiling-enabled job (indexed like `jobs`; null
/// entries otherwise), built eagerly on the calling thread — hoisted
/// out of run_sweep so the heartbeat can start watching the profilers'
/// progress counters *before* the sweep runs.
std::vector<std::unique_ptr<prof::Profiler>> make_profilers(
    const std::vector<SweepJob>& jobs);

/// Upper-bound request total for the whole sweep (the heartbeat's ETA
/// denominator): synthetic cells contribute `requests` (tenant cells
/// twice — the merged run plus the per-tenant baseline replays); trace
/// cells contribute 0 (stream length unknown until EOF), so a
/// trace-only sweep reports progress without an ETA.
std::uint64_t estimate_sweep_requests(const std::vector<SweepJob>& jobs);

/// Runs every job across `threads` workers (0 → hardware concurrency,
/// clamped to the job count; 1 → fully serial in the calling thread).
/// Results are indexed like `jobs` regardless of execution order. A
/// throwing job aborts the sweep and rethrows on the calling thread.
///
/// A non-null `collectors` receives one Collector per job (indexed like
/// `jobs`; null entries for jobs whose telemetry is disabled), built on
/// the calling thread before any worker starts and attached to each
/// job's engine — each job records into its own collector, so the sweep
/// pool needs no telemetry synchronization.
///
/// A non-null `profilers` (from make_profilers, indexed like `jobs`)
/// attaches each entry to its job's engine the same way. The caller
/// owns the vector so the heartbeat can poll the progress counters —
/// the only profiler state written while a job is still running.
std::vector<memsim::SimStats> run_sweep(
    const std::vector<SweepJob>& jobs, int threads,
    std::vector<std::unique_ptr<telemetry::Collector>>* collectors = nullptr,
    std::vector<std::unique_ptr<prof::Profiler>>* profilers = nullptr);

}  // namespace comet::driver
