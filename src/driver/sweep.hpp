#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "driver/options.hpp"
#include "driver/registry.hpp"
#include "memsim/stats.hpp"
#include "memsim/trace_gen.hpp"

/// Parallel sweep engine: fans the device × workload matrix out across a
/// thread pool. Each job is fully independent — the request stream is
/// either synthesized lazily inside the worker from (profile, seed) or
/// streamed from an on-disk NVMain trace, and the polymorphic
/// memsim::Engine built per job (DeviceSpec::make_engine) is const — so
/// results are bit-identical for any thread count, and the Fig. 9 matrix
/// parallelises with near-linear speedup.
namespace comet::driver {

/// One (device, workload) cell of the sweep matrix. `device` is either a
/// flat architecture or a hybrid DRAM-cache + backend design point.
/// When `trace_path` is empty the worker synthesizes `requests` requests
/// from (profile, seed); otherwise it streams the on-disk trace
/// (profile.name then only labels the run — by convention the trace
/// file's basename) and requests/seed are ignored.
struct SweepJob {
  DeviceSpec device;
  memsim::WorkloadProfile profile;
  std::size_t requests = 20000;
  std::uint64_t seed = 42;
  std::uint32_t line_bytes = 128;
  std::string trace_path;  ///< Non-empty: replay this NVMain trace file.
  double cpu_ghz = 2.0;    ///< Trace cycle -> time conversion.
};

/// Expands Options into the job matrix (devices × workloads in registry
/// and profile order, or devices × one trace-file job under
/// --trace-file). Applies the --channels override, re-validating the
/// adjusted model. Throws std::invalid_argument on unknown names.
std::vector<SweepJob> build_matrix(const Options& options);

/// Runs one job serially (the reference path the tests compare against):
/// streams the job's source through the device's engine in O(1) memory.
memsim::SimStats run_job(const SweepJob& job);

/// Runs every job across `threads` workers (0 → hardware concurrency,
/// clamped to the job count; 1 → fully serial in the calling thread).
/// Results are indexed like `jobs` regardless of execution order. A
/// throwing job aborts the sweep and rethrows on the calling thread.
std::vector<memsim::SimStats> run_sweep(const std::vector<SweepJob>& jobs,
                                        int threads);

}  // namespace comet::driver
