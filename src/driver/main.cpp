#include <chrono>
#include <cstdint>
#include <memory>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "config/experiment.hpp"
#include "driver/options.hpp"
#include "driver/registry.hpp"
#include "driver/report.hpp"
#include "driver/slo_eval.hpp"
#include "driver/sweep.hpp"
#include "memsim/trace.hpp"
#include "memsim/trace_gen.hpp"
#include "prof/heartbeat.hpp"
#include "prof/profiler.hpp"
#include "sched/controller.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace comet::driver;

  Options options;
  try {
    options = parse_args(std::vector<std::string>(argv + 1, argv + argc));
  } catch (const std::exception& e) {
    std::cerr << "comet_sim: " << e.what() << "\n\n" << usage();
    return 2;
  }
  if (options.help) {
    std::cout << usage();
    return 0;
  }
  if (options.list_devices) {
    for (const auto& name : known_devices()) std::cout << name << "\n";
    for (const auto& name : known_hybrid_devices()) std::cout << name << "\n";
    return 0;
  }
  if (options.list_workloads) {
    for (const auto& profile : comet::memsim::spec_like_profiles()) {
      std::cout << profile.name << "\n";
    }
    return 0;
  }
  if (options.list_policies) {
    for (const auto& info : comet::sched::known_policies()) {
      std::cout << info.name << "\n  " << info.summary << "\n  knobs: "
                << info.knobs << "\n";
    }
    return 0;
  }
  if (!options.dump_trace.empty()) {
    // Stream the synthesized workload straight to the NVMain text format
    // (no materialized vector), so even huge traces dump in O(1) memory.
    try {
      const auto profile = comet::memsim::profile_by_name(options.workload);
      auto source = comet::memsim::TraceGenerator(profile, options.seed)
                        .stream(options.requests, options.line_bytes);
      std::ofstream out(options.dump_trace);
      if (!out) {
        std::cerr << "comet_sim: cannot open '" << options.dump_trace
                  << "' for writing\n";
        return 1;
      }
      comet::memsim::write_trace(
          out, source,
          comet::memsim::TraceConfig{.cpu_clock_ghz = options.cpu_ghz,
                                     .line_bytes = options.line_bytes});
      out.close();
      if (out.fail()) {
        std::cerr << "comet_sim: error writing '" << options.dump_trace
                  << "' (disk full?)\n";
        return 1;
      }
      std::cout << "wrote " << options.dump_trace << " (" << options.requests
                << " requests, " << profile.name << ")\n";
    } catch (const std::exception& e) {
      std::cerr << "comet_sim: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }
  if (!options.dump_config.empty()) {
    // Round-trip the resolved experiment back to disk: registry tokens
    // and profile names are expanded to fully inline definitions, so the
    // dumped spec replays anywhere `--config` does — the config analogue
    // of --dump-trace.
    try {
      const auto spec =
          resolve_experiment(experiment_from_options(options));
      std::ofstream out(options.dump_config);
      if (!out) {
        std::cerr << "comet_sim: cannot open '" << options.dump_config
                  << "' for writing\n";
        return 1;
      }
      comet::config::write_experiment(out, spec);
      out.close();
      if (out.fail()) {
        std::cerr << "comet_sim: error writing '" << options.dump_config
                  << "' (disk full?)\n";
        return 1;
      }
      std::cout << "wrote " << options.dump_config << " ("
                << spec.devices.size() << " device(s), "
                << spec.workloads.size() << " workload(s))\n";
    } catch (const std::exception& e) {
      std::cerr << "comet_sim: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }

  try {
    // Write JSON to a sibling temp file and rename on success: an
    // unwritable path fails in milliseconds (not after a multi-minute
    // run), and a failed run never clobbers a previous results file.
    const std::string json_tmp =
        options.json_path.empty() ? "" : options.json_path + ".tmp";
    std::ofstream out;
    if (!json_tmp.empty()) {
      out.open(json_tmp);
      if (!out) {
        std::cerr << "comet_sim: cannot open '" << json_tmp
                  << "' for writing\n";
        return 1;
      }
    }

    const auto jobs = build_matrix(options);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::unique_ptr<comet::telemetry::Collector>> collectors;

    // Host observability: the profilers exist before the sweep starts so
    // the heartbeat can watch their progress counters live; the sweep
    // attaches them per job. Heartbeat-only runs still profile nothing —
    // the "host" JSON object stays null without --profile.
    auto profilers = make_profilers(jobs);
    std::unique_ptr<comet::prof::Heartbeat> heartbeat;
    const std::uint64_t heartbeat_ms =
        jobs.empty() ? 0 : jobs.front().profile_spec.progress_ms;
    if (heartbeat_ms > 0) {
      std::vector<const comet::prof::Profiler*> watched;
      watched.reserve(profilers.size());
      for (const auto& profiler : profilers) {
        if (profiler) watched.push_back(profiler.get());
      }
      if (!watched.empty()) {
        heartbeat = std::make_unique<comet::prof::Heartbeat>(
            std::cerr, heartbeat_ms, std::move(watched),
            estimate_sweep_requests(jobs));
      }
    }

    const auto results =
        run_sweep(jobs, options.threads, &collectors, &profilers);
    if (heartbeat) heartbeat->stop();
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start);

    print_report(std::cout, jobs, results, options.csv);
    print_host_profile(std::cout, jobs, &profilers, options.csv);
    std::cout << "\n" << jobs.size() << " run(s) in " << elapsed.count()
              << " s\n";

    // SLO health gates: evaluated per record against the finished stats
    // (plus each job's host wall clock). The report is still written in
    // full — exit 3 replaces exit 0 only after everything is on disk,
    // so CI can both archive the JSON and fail the build.
    std::vector<std::vector<SloOutcome>> slo_outcomes(jobs.size());
    bool slo_failed = false;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const auto& predicates = jobs[i].profile_spec.slo;
      if (predicates.empty()) continue;
      const double wall_s =
          profilers[i] ? profilers[i]->wall_seconds() : 0.0;
      slo_outcomes[i] = evaluate_slo(predicates, results[i], wall_s);
      for (const auto& outcome : slo_outcomes[i]) {
        if (outcome.pass) continue;
        slo_failed = true;
        std::cerr << "comet_sim: SLO violation: "
                  << outcome.predicate.to_string() << " (actual "
                  << outcome.value << ") on " << jobs[i].device.name << "/"
                  << jobs[i].profile.name << "\n";
      }
    }

    // Telemetry exports: every traced cell lands in one Chrome trace
    // (one process group per run × stage × channel) and one timeline
    // CSV, labelled run-by-run. All cells share one spec, so the paths
    // come from any job.
    std::vector<comet::telemetry::TraceRun> trace_runs;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (!collectors[i]) continue;
      std::string label = jobs[i].device.name + "/" + jobs[i].profile.name;
      if (jobs.size() > 1) label = "job" + std::to_string(i) + " " + label;
      trace_runs.push_back({std::move(label), collectors[i].get()});
    }
    if (!trace_runs.empty() && jobs.front().telemetry.tracing()) {
      const std::string& path = jobs.front().telemetry.trace_path;
      std::ofstream trace_out(path);
      if (!trace_out) {
        std::cerr << "comet_sim: cannot open '" << path << "' for writing\n";
        return 1;
      }
      comet::telemetry::write_chrome_trace(trace_out, trace_runs);
      trace_out.close();
      if (trace_out.fail()) {
        std::cerr << "comet_sim: error writing '" << path
                  << "' (disk full?)\n";
        return 1;
      }
      std::uint64_t events = 0;
      std::uint64_t dropped = 0;
      for (const auto& run : trace_runs) {
        events += run.collector->recorded_events();
        dropped += run.collector->dropped_events();
      }
      std::cout << "wrote " << path << " (" << events << " trace events";
      if (dropped > 0) std::cout << ", " << dropped << " dropped";
      std::cout << ")\n";
    }
    if (!trace_runs.empty() && !jobs.front().telemetry.metrics_csv.empty()) {
      const std::string& path = jobs.front().telemetry.metrics_csv;
      std::ofstream csv_out(path);
      if (!csv_out) {
        std::cerr << "comet_sim: cannot open '" << path << "' for writing\n";
        return 1;
      }
      comet::telemetry::write_timeline_csv(csv_out, trace_runs);
      csv_out.close();
      if (csv_out.fail()) {
        std::cerr << "comet_sim: error writing '" << path
                  << "' (disk full?)\n";
        return 1;
      }
      std::cout << "wrote " << path << "\n";
    }

    if (!json_tmp.empty()) {
      write_json(out, jobs, results, &collectors, &profilers, &slo_outcomes);
      out.close();
      if (out.fail() ||
          std::rename(json_tmp.c_str(), options.json_path.c_str()) != 0) {
        std::cerr << "comet_sim: error writing '" << options.json_path
                  << "' (disk full?)\n";
        std::remove(json_tmp.c_str());
        return 1;
      }
      std::cout << "wrote " << options.json_path << "\n";
    }
    if (slo_failed) return 3;
  } catch (const std::exception& e) {
    std::cerr << "comet_sim: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
