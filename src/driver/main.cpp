#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "config/experiment.hpp"
#include "driver/options.hpp"
#include "driver/registry.hpp"
#include "driver/report.hpp"
#include "driver/sweep.hpp"
#include "memsim/trace.hpp"
#include "memsim/trace_gen.hpp"

int main(int argc, char** argv) {
  using namespace comet::driver;

  Options options;
  try {
    options = parse_args(std::vector<std::string>(argv + 1, argv + argc));
  } catch (const std::exception& e) {
    std::cerr << "comet_sim: " << e.what() << "\n\n" << usage();
    return 2;
  }
  if (options.help) {
    std::cout << usage();
    return 0;
  }
  if (options.list_devices) {
    for (const auto& name : known_devices()) std::cout << name << "\n";
    for (const auto& name : known_hybrid_devices()) std::cout << name << "\n";
    return 0;
  }
  if (options.list_workloads) {
    for (const auto& profile : comet::memsim::spec_like_profiles()) {
      std::cout << profile.name << "\n";
    }
    return 0;
  }
  if (!options.dump_trace.empty()) {
    // Stream the synthesized workload straight to the NVMain text format
    // (no materialized vector), so even huge traces dump in O(1) memory.
    try {
      const auto profile = comet::memsim::profile_by_name(options.workload);
      auto source = comet::memsim::TraceGenerator(profile, options.seed)
                        .stream(options.requests, options.line_bytes);
      std::ofstream out(options.dump_trace);
      if (!out) {
        std::cerr << "comet_sim: cannot open '" << options.dump_trace
                  << "' for writing\n";
        return 1;
      }
      comet::memsim::write_trace(
          out, source,
          comet::memsim::TraceConfig{.cpu_clock_ghz = options.cpu_ghz,
                                     .line_bytes = options.line_bytes});
      out.close();
      if (out.fail()) {
        std::cerr << "comet_sim: error writing '" << options.dump_trace
                  << "' (disk full?)\n";
        return 1;
      }
      std::cout << "wrote " << options.dump_trace << " (" << options.requests
                << " requests, " << profile.name << ")\n";
    } catch (const std::exception& e) {
      std::cerr << "comet_sim: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }
  if (!options.dump_config.empty()) {
    // Round-trip the resolved experiment back to disk: registry tokens
    // and profile names are expanded to fully inline definitions, so the
    // dumped spec replays anywhere `--config` does — the config analogue
    // of --dump-trace.
    try {
      const auto spec =
          resolve_experiment(experiment_from_options(options));
      std::ofstream out(options.dump_config);
      if (!out) {
        std::cerr << "comet_sim: cannot open '" << options.dump_config
                  << "' for writing\n";
        return 1;
      }
      comet::config::write_experiment(out, spec);
      out.close();
      if (out.fail()) {
        std::cerr << "comet_sim: error writing '" << options.dump_config
                  << "' (disk full?)\n";
        return 1;
      }
      std::cout << "wrote " << options.dump_config << " ("
                << spec.devices.size() << " device(s), "
                << spec.workloads.size() << " workload(s))\n";
    } catch (const std::exception& e) {
      std::cerr << "comet_sim: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }

  try {
    // Write JSON to a sibling temp file and rename on success: an
    // unwritable path fails in milliseconds (not after a multi-minute
    // run), and a failed run never clobbers a previous results file.
    const std::string json_tmp =
        options.json_path.empty() ? "" : options.json_path + ".tmp";
    std::ofstream out;
    if (!json_tmp.empty()) {
      out.open(json_tmp);
      if (!out) {
        std::cerr << "comet_sim: cannot open '" << json_tmp
                  << "' for writing\n";
        return 1;
      }
    }

    const auto jobs = build_matrix(options);
    const auto start = std::chrono::steady_clock::now();
    const auto results = run_sweep(jobs, options.threads);
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start);

    print_report(std::cout, jobs, results, options.csv);
    std::cout << "\n" << jobs.size() << " run(s) in " << elapsed.count()
              << " s\n";

    if (!json_tmp.empty()) {
      write_json(out, jobs, results);
      out.close();
      if (out.fail() ||
          std::rename(json_tmp.c_str(), options.json_path.c_str()) != 0) {
        std::cerr << "comet_sim: error writing '" << options.json_path
                  << "' (disk full?)\n";
        std::remove(json_tmp.c_str());
        return 1;
      }
      std::cout << "wrote " << options.json_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "comet_sim: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
