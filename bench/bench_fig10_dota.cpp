// Regenerates paper Fig. 10: energy-per-bit of the DOTA photonic tensor
// accelerator when fed by each main-memory architecture, for DeiT-T and
// DeiT-B. Photonic memories (COMET, COSMOS) inject light directly into
// the tensor core; electronic memories pay an electro-optic conversion
// on every bit.

#include <iostream>

#include "accel/dota.hpp"
#include "accel/transformer.hpp"
#include "core/comet_memory.hpp"
#include "cosmos/cosmos_memory.hpp"
#include "dram/dram_device.hpp"
#include "dram/epcm.hpp"
#include "util/table.hpp"

int main() {
  using comet::util::Table;
  namespace accel = comet::accel;

  const auto models = {accel::TransformerModel::deit_tiny(),
                       accel::TransformerModel::deit_base()};

  std::cout << "=== Workload models ===\n";
  Table workloads({"model", "params (M)", "GMACs/inf", "traffic (MB/inf)",
                   "intensity (MAC/B)"});
  for (const auto& m : models) {
    workloads.add_row(
        {m.name, Table::num(static_cast<double>(m.parameters()) / 1e6, 1),
         Table::num(static_cast<double>(m.macs_per_inference()) / 1e9, 2),
         Table::num(static_cast<double>(m.total_traffic_bytes()) / 1e6, 1),
         Table::num(m.arithmetic_intensity(), 1)});
  }
  workloads.print(std::cout);

  struct Entry {
    comet::memsim::DeviceModel device;
    bool photonic;
  };
  const auto losses = comet::photonics::LossParameters::paper();
  std::vector<Entry> memories;
  memories.push_back({comet::dram::ddr4_3d(), false});
  memories.push_back({comet::dram::epcm_mm(), false});
  memories.push_back({comet::cosmos::cosmos_device_model(
                          comet::cosmos::CosmosConfig::paper(), losses),
                      true});
  memories.push_back({comet::core::CometMemory::device_model(
                          comet::core::CometConfig::comet_4b(), losses),
                      true});

  std::cout << "\n=== Fig. 10: DOTA EPB by main memory ===\n";
  Table results({"memory", "model", "stream BW (GB/s)", "demanded (GB/s)",
                 "memory EPB", "conversion EPB", "total EPB (pJ/bit)"});
  double comet_epb[2] = {0, 0};
  double ddr4_epb[2] = {0, 0};
  double cosmos_epb[2] = {0, 0};
  for (const auto& entry : memories) {
    const accel::DotaSystem dota(accel::DotaConfig::paper(), entry.device,
                                 entry.photonic);
    int mi = 0;
    for (const auto& model : models) {
      const auto r = dota.evaluate(model);
      results.add_row({r.memory_name, r.model_name,
                       Table::num(r.achieved_bw_gbps, 1),
                       Table::num(r.demanded_bw_gbps, 1),
                       Table::num(r.memory_epb, 1),
                       Table::num(r.conversion_epb, 1),
                       Table::num(r.total_epb(), 1)});
      if (r.memory_name == "COMET-4b") comet_epb[mi] = r.total_epb();
      if (r.memory_name == "3D_DDR4") ddr4_epb[mi] = r.total_epb();
      if (r.memory_name == "COSMOS") cosmos_epb[mi] = r.total_epb();
      ++mi;
    }
  }
  results.print(std::cout);

  std::cout << "\n=== Paper ratios ===\n"
            << "COMET vs 3D_DDR4+DOTA: "
            << Table::num(ddr4_epb[0] / comet_epb[0], 2)
            << "x (DeiT-T, paper 1.3x), "
            << Table::num(ddr4_epb[1] / comet_epb[1], 2)
            << "x (DeiT-B, paper 2.06x)\n"
            << "COMET vs COSMOS+DOTA:  "
            << Table::num(cosmos_epb[0] / comet_epb[0], 2)
            << "x (DeiT-T, paper 2.7x), "
            << Table::num(cosmos_epb[1] / comet_epb[1], 2)
            << "x (DeiT-B, paper 1.45x)\n";
  return 0;
}
