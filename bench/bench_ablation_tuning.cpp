// Ablation (Section II.B design choice): electro-optic vs thermo-optic
// microring tuning for row access. Thermal tuning is microsecond-scale
// per access; EO tuning is 2 ns with higher insertion loss. The bench
// quantifies the end-to-end consequence: access latency and achieved
// bandwidth of a COMET whose MR access control were thermally tuned.

#include <iostream>

#include "core/comet_memory.hpp"
#include "memsim/system.hpp"
#include "memsim/trace_gen.hpp"
#include "photonics/microring.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using comet::util::Table;
  const auto losses = comet::photonics::LossParameters::paper();

  const comet::photonics::Microring eo(
      comet::photonics::Microring::comet_access_design(1550.0), losses);
  auto thermal_design =
      comet::photonics::Microring::comet_access_design(1550.0);
  thermal_design.mechanism = comet::photonics::TuningMechanism::kThermal;
  const comet::photonics::Microring thermal(thermal_design, losses);

  std::cout << "=== Device level: MR tuning mechanisms ===\n";
  Table dev({"mechanism", "tuning latency (ns)", "drop loss (dB)",
             "through loss (dB)", "tuning power (uW/nm)"});
  dev.add_row({"electro-optic (COMET)", Table::num(eo.tuning_latency_ns(), 1),
               Table::num(eo.drop_loss_db(), 2),
               Table::num(eo.through_loss_db(), 2),
               Table::num(eo.tuning_power_w(1.0) * 1e6, 1)});
  dev.add_row({"thermo-optic [24]", Table::num(thermal.tuning_latency_ns(), 1),
               Table::num(thermal.drop_loss_db(), 2),
               Table::num(thermal.through_loss_db(), 2),
               Table::num(thermal.tuning_power_w(1.0) * 1e6, 1)});
  dev.print(std::cout);

  // Architecture level: replace the 2 ns row-access tuning with the
  // thermal settling time and replay a mixed workload.
  std::cout << "\n=== Architecture level: COMET with each mechanism ===\n";
  Table arch({"variant", "read latency (ns)", "achieved BW (GB/s)"});
  auto profile = comet::memsim::profile_by_name("gcc_like");
  profile.avg_interarrival_ns = 0.5;  // saturating arrivals
  const comet::memsim::TraceGenerator gen(profile, 7);
  const auto trace = gen.generate(40000, 128);

  for (const bool use_thermal : {false, true}) {
    auto config = comet::core::CometConfig::comet_4b();
    config.mr_tuning_ns = use_thermal ? thermal.tuning_latency_ns()
                                      : eo.tuning_latency_ns();
    const auto device =
        comet::core::CometMemory::device_model(config, losses);
    const comet::memsim::MemorySystem system(device);
    const auto stats = system.run(trace, profile.name);
    arch.add_row({use_thermal ? "thermo-optic tuning" : "electro-optic tuning",
                  Table::num(
                      comet::util::ps_to_ns(device.timing.read_occupancy_ps) +
                          comet::util::ps_to_ns(device.timing.interface_ps),
                      1),
                  Table::num(stats.bandwidth_gbps(), 2)});
  }
  arch.print(std::cout);
  std::cout << "\nPaper argument (Section II.B): us-scale thermal tuning on\n"
               "every access would severely cut bandwidth, hence COMET's\n"
               "EO tuning despite its higher insertion losses.\n";
  return 0;
}
