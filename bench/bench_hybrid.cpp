// Hybrid-vs-flat study: how the COMET OPCM main memory behaves behind a
// DRAM cache tier (the HybridSim-style architecture question), swept
// across every trace_gen workload in one invocation.
//
// Compares flat COMET and flat EPCM against the registered hybrid design
// points (small/default/large cache in front of COMET, plus the EPCM and
// COSMOS backends), reporting demand bandwidth, energy-per-demand-bit,
// latency, tier hit rate, writeback volume and the per-tier energy split.
// Everything fans out through the driver's parallel sweep engine.

#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "driver/registry.hpp"
#include "driver/sweep.hpp"
#include "memsim/trace_gen.hpp"
#include "util/table.hpp"

namespace {

constexpr std::size_t kRequestsPerTrace = 40000;
constexpr std::uint32_t kLineBytes = 128;

struct Agg {
  double bw_sum = 0.0;
  double epb_sum = 0.0;
  double latency_sum = 0.0;
  double hit_sum = 0.0;
  int n = 0;
};

}  // namespace

int main() {
  using comet::util::Table;

  std::vector<comet::driver::DeviceSpec> devices;
  for (const char* token : {"comet", "epcm"}) {
    devices.push_back(comet::driver::make_device_spec(token));
  }
  for (const auto& token : comet::driver::known_hybrid_devices()) {
    devices.push_back(comet::driver::make_device_spec(token));
  }
  const auto profiles = comet::memsim::spec_like_profiles();

  std::vector<comet::driver::SweepJob> jobs;
  jobs.reserve(devices.size() * profiles.size());
  for (const auto& profile : profiles) {
    for (const auto& device : devices) {
      comet::driver::SweepJob job;
      job.device = device;
      job.profile = profile;
      job.requests = kRequestsPerTrace;
      job.seed = 42;
      job.line_bytes = kLineBytes;
      jobs.push_back(std::move(job));
    }
  }

  const auto stats = comet::driver::run_sweep(jobs, /*threads=*/0);

  Table per_run({"workload", "device", "BW (GB/s)", "EPB (pJ/bit)",
                 "avg latency (ns)", "hit rate", "writebacks",
                 "DRAM tier (pJ)", "backend tier (pJ)"});
  std::map<std::string, Agg> per_device;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& s = stats[i];
    const bool hybrid = s.is_hybrid();
    per_run.add_row({jobs[i].profile.name, jobs[i].device.name,
                     Table::num(s.bandwidth_gbps(), 2),
                     Table::num(s.epb_pj_per_bit(), 2),
                     Table::num(s.avg_latency_ns(), 1),
                     hybrid ? Table::num(s.hit_rate(), 3) : "-",
                     hybrid ? std::to_string(s.writebacks) : "-",
                     hybrid ? Table::sci(s.dram_tier_energy_pj, 3) : "-",
                     hybrid ? Table::sci(s.backend_tier_energy_pj, 3) : "-"});
    auto& agg = per_device[jobs[i].device.name];
    agg.bw_sum += s.bandwidth_gbps();
    agg.epb_sum += s.epb_pj_per_bit();
    agg.latency_sum += s.avg_latency_ns();
    agg.hit_sum += s.hit_rate();
    ++agg.n;
  }

  std::cout << "=== Hybrid vs flat, per workload ===\n";
  per_run.print(std::cout);

  Table summary({"device", "avg BW (GB/s)", "avg EPB (pJ/bit)",
                 "avg latency (ns)", "avg hit rate"});
  for (const auto& device : devices) {
    const auto& agg = per_device.at(device.name);
    summary.add_row({device.name, Table::num(agg.bw_sum / agg.n, 2),
                     Table::num(agg.epb_sum / agg.n, 2),
                     Table::num(agg.latency_sum / agg.n, 1),
                     device.is_hybrid() ? Table::num(agg.hit_sum / agg.n, 3)
                                        : "-"});
  }
  std::cout << "\n=== Averages over workloads ===\n";
  summary.print(std::cout);

  // The headline comparison: latency and energy of the default hybrid
  // point against its flat backend, per workload.
  Table gains({"workload", "flat", "hybrid", "latency gain",
               "EPB flat/hybrid"});
  // Flat models keep their paper display names (COMET-4b, EPCM-MM), so
  // pair them up via the specs built above: devices[0]/[1] are the flat
  // comet and epcm entries.
  for (const auto& [flat_name, hybrid_name] :
       std::vector<std::pair<std::string, std::string>>{
           {devices[0].name, "hybrid-comet"},
           {devices[1].name, "hybrid-epcm"}}) {
    for (std::size_t p = 0; p < profiles.size(); ++p) {
      const comet::memsim::SimStats* flat = nullptr;
      const comet::memsim::SimStats* hybrid = nullptr;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i].profile.name != profiles[p].name) continue;
        if (jobs[i].device.name == flat_name) flat = &stats[i];
        if (jobs[i].device.name == hybrid_name) hybrid = &stats[i];
      }
      if (flat == nullptr || hybrid == nullptr) continue;
      gains.add_row(
          {profiles[p].name, flat_name, hybrid_name,
           Table::num(flat->avg_latency_ns() / hybrid->avg_latency_ns(), 2) +
               "x",
           Table::num(flat->epb_pj_per_bit() / hybrid->epb_pj_per_bit(), 2) +
               "x"});
    }
  }
  std::cout << "\n=== Tiering gains (flat / hybrid, >1 favours hybrid) ===\n";
  gains.print(std::cout);
  return 0;
}
