// Multi-tenant fairness study: two adversarial tenants — a latency-
// sensitive gcc_like stream and a bursty mcf_like aggressor — share
// the COMET OPCM under every fairness-relevant controller policy and
// both address-space mappings.
//
// For every (policy, mapping) cell the bench runs the interleaved
// stream plus both run-alone baselines (tenant::run_multi_tenant) and
// reports per-tenant p99 latency, slowdown vs running alone, the run's
// max slowdown and Jain's fairness index — the partition mapping
// isolates address spaces (interference through shared queues only),
// the interleave mapping forces line-granular contention. Each cell is
// timed individually (serial execution, so wall clocks don't contend)
// and the matrix lands in BENCH_tenants.json (bench/bench_json.hpp
// schema); CI's perf lane diffs requests_per_s per cell against the
// committed baseline.
//
// Usage: bench_tenants [requests-per-tenant]   (default: 20,000)

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "config/tenant_spec.hpp"
#include "driver/registry.hpp"
#include "driver/sweep.hpp"
#include "memsim/sharded.hpp"
#include "memsim/trace_gen.hpp"
#include "sched/controller.hpp"
#include "util/table.hpp"

namespace {

constexpr std::uint32_t kLineBytes = 128;

std::vector<comet::config::TenantSpec> two_tenants() {
  namespace cf = comet::config;
  cf::TenantSpec batch;
  batch.name = "batch";
  batch.profile = comet::memsim::profile_by_name("mcf_like");
  batch.burstiness = 0.5;
  cf::TenantSpec web;
  web.name = "web";
  web.profile = comet::memsim::profile_by_name("gcc_like");
  return {batch, web};
}

}  // namespace

int main(int argc, char** argv) {
  namespace cf = comet::config;
  namespace sc = comet::sched;
  using comet::util::Table;

  std::size_t requests_per_tenant = 20000;
  if (argc > 1) {
    requests_per_tenant = static_cast<std::size_t>(std::atoll(argv[1]));
  }

  // frfcfs is the fairness-blind reference; the two fairness-aware
  // variants bound what one tenant can take from the other. No
  // controller-less cell: direct replay is so fast per cell that its
  // wall clock is all noise, and bench_streaming already gates it.
  const std::vector<std::optional<sc::Policy>> policies = {
      sc::Policy::kFrFcfs, sc::Policy::kTokenBudget, sc::Policy::kFrFcfsCap};
  const std::vector<cf::TenantMapping> mappings = {
      cf::TenantMapping::kPartition, cf::TenantMapping::kInterleave};

  std::vector<comet::driver::SweepJob> jobs;
  const auto device = comet::driver::make_device_spec("comet");
  for (const auto& policy : policies) {
    for (const auto mapping : mappings) {
      comet::driver::SweepJob job;
      job.device = device;
      job.profile.name = "batch+web";
      job.requests = requests_per_tenant;
      job.seed = 42;
      job.line_bytes = kLineBytes;
      if (policy) {
        job.controller = sc::ControllerConfig::with_depths(*policy, 32, 32);
      }
      job.tenants = two_tenants();
      job.tenant_mapping = mapping;
      jobs.push_back(std::move(job));
    }
  }

  // Serial per-cell timing: each cell's wall clock is uncontended, so
  // requests_per_s is a clean gated metric (scripts/check_perf.py).
  // Every cell processes 2x the shared stream (the run-alone baselines
  // replay each tenant once more), and that cost is part of the gate.
  std::vector<comet::memsim::SimStats> stats(jobs.size());
  std::vector<double> cell_seconds(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto start = std::chrono::steady_clock::now();
    stats[i] = comet::driver::run_job(jobs[i]);
    cell_seconds[i] = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  }

  const auto policy_label = [](const comet::driver::SweepJob& job) {
    return job.controller ? std::string(sc::policy_name(job.controller->policy))
                          : std::string("direct");
  };

  Table table({"policy", "mapping", "tenant", "BW (GB/s)", "avg (ns)",
               "p99 (ns)", "alone (ns)", "slowdown", "max slowdown",
               "Jain index"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& s = stats[i];
    for (const auto& tenant : s.tenants) {
      table.add_row({policy_label(jobs[i]),
                     cf::tenant_mapping_name(jobs[i].tenant_mapping),
                     tenant.name, Table::num(s.bandwidth_gbps(), 2),
                     Table::num(tenant.avg_latency_ns(), 1),
                     Table::num(tenant.latency_ns.p99(), 1),
                     Table::num(tenant.alone_avg_latency_ns, 1),
                     Table::num(tenant.slowdown, 3),
                     Table::num(s.max_slowdown, 3),
                     Table::num(s.fairness_index, 3)});
    }
  }
  std::cout << "=== Two-tenant fairness matrix (policy x mapping) ===\n";
  table.print(std::cout);

  std::ofstream json("BENCH_tenants.json");
  if (json) {
    namespace cb = comet::bench;
    const int hw_threads = comet::memsim::resolve_run_threads(0);
    const std::size_t shared_requests = 2 * requests_per_tenant;
    std::vector<cb::BenchResult> results;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      cb::BenchResult r;
      r.name = "comet/batch+web/" + policy_label(jobs[i]) + "/" +
               cf::tenant_mapping_name(jobs[i].tenant_mapping);
      r.requests = shared_requests;
      r.wall_s = cell_seconds[i];
      r.requests_per_s = double(shared_requests) / cell_seconds[i];
      r.config = {
          {"device", cb::json_str(jobs[i].device.name)},
          {"tenants", cb::json_str("batch,web")},
          {"policy", cb::json_str(policy_label(jobs[i]))},
          {"mapping",
           cb::json_str(cf::tenant_mapping_name(jobs[i].tenant_mapping))},
          {"requests_per_tenant", std::to_string(requests_per_tenant)},
          {"hw_threads", std::to_string(hw_threads)},
          {"line_bytes", std::to_string(kLineBytes)},
          {"seed", "42"}};
      results.push_back(std::move(r));
    }
    cb::write_bench_json(json, "bench_tenants", results);
    std::cout << "\nwrote BENCH_tenants.json (" << results.size()
              << " cells)\n";
  }
  return 0;
}
