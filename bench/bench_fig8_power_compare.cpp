// Regenerates paper Fig. 8: operating-power stacks of the corrected
// COSMOS vs COMET-4b, including the paper's headline "COMET consumes
// only 26 % of the power of the best-known prior OPCM architecture".

#include <iostream>

#include "core/comet_config.hpp"
#include "core/power_model.hpp"
#include "cosmos/cosmos_memory.hpp"
#include "photonics/losses.hpp"
#include "util/table.hpp"

int main() {
  using comet::util::Table;
  const auto losses = comet::photonics::LossParameters::paper();

  const comet::core::CometPowerModel comet_model(
      comet::core::CometConfig::comet_4b(), losses);
  const comet::cosmos::CosmosPowerModel cosmos_model(
      comet::cosmos::CosmosConfig::paper(), losses);

  const auto comet_stack = comet_model.breakdown();
  const auto cosmos_stack = cosmos_model.breakdown();

  std::cout << "=== COSMOS launch-path loss budget ===\n";
  {
    Table loss_table({"path element", "dB each", "count", "total dB"});
    const auto budget = cosmos_model.launch_path_budget();
    for (const auto& item : budget.items()) {
      loss_table.add_row({item.name, Table::num(item.db_each, 2),
                          Table::num(item.count, 0),
                          Table::num(item.total_db(), 2)});
    }
    loss_table.add_row({"TOTAL", "", "", Table::num(budget.total_db(), 2)});
    loss_table.print(std::cout);
  }

  std::cout << "\n=== Fig. 8: power stacks ===\n";
  Table stacks({"component", "COSMOS (W)", "COMET-4b (W)"});
  for (const auto& name : {"laser", "soa", "eo_tuning", "interface"}) {
    stacks.add_row({name, Table::num(cosmos_stack.component_w(name), 2),
                    Table::num(comet_stack.component_w(name), 2)});
  }
  stacks.add_row({"TOTAL", Table::num(cosmos_stack.total_w(), 2),
                  Table::num(comet_stack.total_w(), 2)});
  stacks.print(std::cout);

  const double ratio = comet_stack.total_w() / cosmos_stack.total_w();
  std::cout << "\nCOMET / COSMOS power = " << Table::num(ratio * 100.0, 1)
            << " %  (paper: ~26 %)\n";
  return 0;
}
