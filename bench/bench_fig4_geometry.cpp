// Regenerates paper Fig. 4: optical absorption contrast and optical
// transmission contrast of the GST cell versus film width and thickness
// (2 um cell, C-band centre), and marks the paper's selected geometry
// (480 nm x 20 nm, the "stars" in Fig. 4).

#include <iostream>

#include "materials/pcm_material.hpp"
#include "photonics/gst_cell.hpp"
#include "util/table.hpp"

int main() {
  using comet::photonics::GstCell;
  using comet::photonics::GstCellGeometry;
  using comet::util::Table;
  const auto& gst = comet::materials::PcmMaterial::get(
      comet::materials::Pcm::kGst);

  std::cout << "=== Fig. 4: contrast vs film thickness (width 480 nm) ===\n";
  Table thickness({"thickness (nm)", "absorption contrast",
                   "transmission contrast", "amorphous loss (dB)",
                   "crystalline extinction (dB)"});
  for (const double t : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
    const GstCell cell(gst, {.width_nm = 480.0, .thickness_nm = t,
                             .length_um = 2.0});
    std::string label = Table::num(t, 0);
    if (t == 20.0) label += " *";  // the paper's selected design point
    thickness.add_row({label, Table::num(cell.absorption_contrast(), 3),
                       Table::num(cell.transmission_contrast(), 3),
                       Table::num(cell.amorphous_insertion_loss_db(), 2),
                       Table::num(cell.crystalline_extinction_db(), 1)});
  }
  thickness.print(std::cout);

  std::cout << "\n=== Fig. 4: contrast vs width (thickness 20 nm) ===\n";
  Table width({"width (nm)", "absorption contrast", "transmission contrast"});
  for (const double w : {400.0, 440.0, 480.0, 520.0, 560.0, 600.0}) {
    const GstCell cell(gst, {.width_nm = w, .thickness_nm = 20.0,
                             .length_um = 2.0});
    std::string label = Table::num(w, 0);
    if (w == 480.0) label += " *";
    width.add_row({label, Table::num(cell.absorption_contrast(), 3),
                   Table::num(cell.transmission_contrast(), 3)});
  }
  width.print(std::cout);

  const GstCell star(gst, GstCellGeometry::paper());
  std::cout << "\nSelected geometry (480 nm, 20 nm, 2 um): transmission "
            << Table::num(star.transmission_contrast() * 100, 1)
            << " %, absorption "
            << Table::num(star.absorption_contrast() * 100, 1)
            << " %  (paper: both ~95 %; width effect negligible)\n";

  std::cout << "\n=== Section III.B: C-band wavelength dependence ===\n";
  Table wl({"lambda (nm)", "transmission contrast", "amorphous loss (dB)"});
  for (const double nm : {1530.0, 1540.0, 1550.0, 1560.0, 1565.0}) {
    wl.add_row({Table::num(nm, 0),
                Table::num(star.transmission_contrast(nm), 4),
                Table::num(star.amorphous_insertion_loss_db(nm), 3)});
  }
  wl.print(std::cout);
  return 0;
}
