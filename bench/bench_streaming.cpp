// Replay-throughput bench and the sharded-replay acceptance gate.
//
// One trace (gcc_like, seed 42) is materialized once, outside every
// timed region, so each phase times pure replay — no generator RNG in
// the loop. Serial and sharded replays of the same trace then run for
// the flat COMET device and the hybrid-comet design point:
//
//   - bit-identity between serial and sharded stats is ALWAYS enforced
//     (any mismatch exits 1) — the same invariant tests/test_sharded.cpp
//     proves on small traces, re-checked here at bench scale;
//   - the >= 3x sharded-vs-serial speedup gate on the 8-channel COMET
//     engages only when the machine has >= 4 hardware threads (a 1-2
//     vCPU runner cannot demonstrate parallel speedup, but it can still
//     prove correctness).
//
// Every phase lands in BENCH_streaming.json (bench/bench_json.hpp
// schema); CI's perf lane diffs requests_per_s against the committed
// baseline via scripts/check_perf.py.
//
// Usage: bench_streaming [requests]   (default: 10,000,000)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "driver/registry.hpp"
#include "memsim/sharded.hpp"
#include "memsim/trace_gen.hpp"
#include "prof/profiler.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

namespace {

namespace ms = comet::memsim;

struct Phase {
  std::string label;
  double seconds = 0.0;
  int threads = 1;
  ms::SimStats stats;
};

template <typename Fn>
Phase timed_phase(const std::string& label, int threads, Fn&& fn) {
  Phase phase;
  phase.label = label;
  phase.threads = threads;
  const auto start = std::chrono::steady_clock::now();
  phase.stats = fn();
  phase.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return phase;
}

/// Exact equality on every field that could drift if the sharded merge
/// diverged from the serial lane reduction.
bool identical(const ms::SimStats& a, const ms::SimStats& b) {
  const auto same_dist = [](const comet::util::RunningStats& x,
                            const comet::util::RunningStats& y) {
    return x.count() == y.count() && x.mean() == y.mean() &&
           x.stddev() == y.stddev() && x.min() == y.min() &&
           x.max() == y.max() && x.sum() == y.sum();
  };
  return a.reads == b.reads && a.writes == b.writes &&
         a.bytes_transferred == b.bytes_transferred &&
         a.span_ps == b.span_ps &&
         a.dynamic_energy_pj == b.dynamic_energy_pj &&
         a.background_energy_pj == b.background_energy_pj &&
         a.total_bank_busy_ns == b.total_bank_busy_ns &&
         a.cache_hits == b.cache_hits && a.cache_misses == b.cache_misses &&
         a.writebacks == b.writebacks &&
         a.dram_tier_energy_pj == b.dram_tier_energy_pj &&
         a.backend_tier_energy_pj == b.backend_tier_energy_pj &&
         same_dist(a.read_latency_ns, b.read_latency_ns) &&
         same_dist(a.write_latency_ns, b.write_latency_ns) &&
         same_dist(a.queue_delay_ns, b.queue_delay_ns);
}

}  // namespace

int main(int argc, char** argv) {
  using comet::util::Table;

  std::size_t requests = 10'000'000;
  if (argc > 1) requests = static_cast<std::size_t>(std::atoll(argv[1]));
  constexpr std::uint32_t kLineBytes = 128;
  const auto profile = ms::profile_by_name("gcc_like");
  const int hw_threads = ms::resolve_run_threads(0);
  // Sharded phases always shard: on hosts with fewer than 4 hardware
  // threads the pool still runs 4 workers — proving bit-identity
  // through the real parallel path instead of silently degenerating to
  // a second serial replay — it just cannot demonstrate speedup, which
  // is why the >= 3x gate below stays keyed on hw_threads.
  const int shard_threads = std::max(hw_threads, 4);

  const auto flat = comet::driver::make_device_spec("comet");
  const auto hybrid = comet::driver::make_device_spec("hybrid-comet");

  std::cout << "materializing " << requests << " requests of " << profile.name
            << " (outside every timed region)...\n";
  const auto trace =
      ms::TraceGenerator(profile, 42).generate(requests, kLineBytes);
  std::cout << "replaying through " << flat.name << " / " << hybrid.name
            << ", serial vs sharded x" << shard_threads << " ("
            << hw_threads << " hardware thread(s))\n\n";

  std::vector<Phase> phases;
  const auto run = [&](const comet::driver::DeviceSpec& spec,
                       const std::string& label, int threads) {
    phases.push_back(timed_phase(label, threads, [&] {
      return spec.make_engine(std::nullopt, threads)->run(trace, profile.name);
    }));
  };
  run(flat, "flat_serial", 1);
  run(flat, "flat_sharded", shard_threads);
  run(hybrid, "hybrid_serial", 1);
  run(hybrid, "hybrid_sharded", shard_threads);

  // Telemetry-on replay: the same serial flat run with full request
  // tracing (capped at 1M events) and a 1 µs epoch sampler attached.
  // A new, ungated cell — its req/s against flat_serial is the
  // recording overhead, and its stats must still be bit-identical.
  comet::telemetry::TelemetrySpec tspec;
  tspec.trace_path = "unused.json";
  tspec.trace_limit = 1'000'000;
  tspec.metrics_interval_ps = 1'000'000'000;
  comet::telemetry::Collector collector(tspec);
  phases.push_back(timed_phase("flat_serial_telemetry", 1, [&] {
    const auto engine = flat.make_engine(std::nullopt, 1);
    engine->attach_telemetry(&collector);
    return engine->run(trace, profile.name);
  }));

  // Profiler-on replay (PR 10): the same serial flat run with the host
  // run profiler attached. Its req/s against flat_serial is the
  // profiling overhead — gated < 2% below, since the profiler reads
  // two steady-clock samples per 1024-request block and nothing per
  // request — and its stats must still be bit-identical.
  comet::prof::ProfSpec pspec;
  pspec.profile = true;
  comet::prof::Profiler profiler(pspec);
  phases.push_back(timed_phase("flat_serial_profiled", 1, [&] {
    const auto engine = flat.make_engine(std::nullopt, 1);
    engine->attach_profiler(&profiler);
    return engine->run(trace, profile.name);
  }));

  Table table({"phase", "threads", "time (s)", "req/s", "BW (GB/s)",
               "EPB (pJ/bit)"});
  for (const auto& phase : phases) {
    table.add_row({phase.label, std::to_string(phase.threads),
                   Table::num(phase.seconds, 2),
                   Table::num(double(requests) / phase.seconds, 0),
                   Table::num(phase.stats.bandwidth_gbps(), 2),
                   Table::num(phase.stats.epb_pj_per_bit(), 2)});
  }
  std::cout << "=== Serial vs sharded replay ===\n";
  table.print(std::cout);

  bool ok = true;
  // Serial-vs-sharded pairs: (flat_serial, flat_sharded) and
  // (hybrid_serial, hybrid_sharded) — the observer phases after index 3
  // are checked against flat_serial individually below.
  for (std::size_t i = 0; i + 1 < 4; i += 2) {
    const bool match = identical(phases[i].stats, phases[i + 1].stats);
    std::cout << "\n" << phases[i].label << " vs " << phases[i + 1].label
              << ": " << (match ? "bit-identical" : "MISMATCH");
    ok = ok && match;
  }
  // Observation must not perturb: the instrumented replays reproduce
  // the uninstrumented stats exactly.
  for (const std::size_t observed : {std::size_t{4}, std::size_t{5}}) {
    const bool match = identical(phases[0].stats, phases[observed].stats);
    std::cout << "\nflat_serial vs " << phases[observed].label << ": "
              << (match ? "bit-identical" : "MISMATCH");
    ok = ok && match;
  }
  std::cout << "\n";
  std::cout << "telemetry-on overhead: "
            << Table::num(
                   (phases[4].seconds / phases[0].seconds - 1.0) * 100.0, 1)
            << "% serial (" << collector.recorded_events() << " events, "
            << collector.timeline().size() << " epochs recorded)\n";

  const double prof_overhead =
      (phases[5].seconds / phases[0].seconds - 1.0) * 100.0;
  std::cout << "profiler-on overhead: " << Table::num(prof_overhead, 1)
            << "% serial (" << profiler.stages().size()
            << " stages recorded)\n";
  // The overhead gate engages only at bench scale: on tiny smoke runs
  // (CI uses ~100k requests) the two serial replays finish in
  // milliseconds and scheduler noise swamps the comparison.
  if (requests >= 1'000'000) {
    if (prof_overhead >= 2.0) {
      std::cout << "FAIL: expected < 2% profiler overhead on flat_serial\n";
      ok = false;
    }
  } else {
    std::cout << "(profiler overhead gate skipped: needs >= 1M requests)\n";
  }

  const double speedup = phases[0].seconds / phases[1].seconds;
  std::cout << "flat sharded speedup: " << Table::num(speedup, 2) << "x on "
            << hw_threads << " hardware threads\n";
  if (hw_threads >= 4) {
    if (speedup < 3.0) {
      std::cout << "FAIL: expected >= 3x sharded speedup with >= 4 hardware "
                   "threads\n";
      ok = false;
    }
  } else {
    std::cout << "(speedup gate skipped: needs >= 4 hardware threads)\n";
  }

  std::ofstream json("BENCH_streaming.json");
  if (json) {
    namespace cb = comet::bench;
    std::vector<cb::BenchResult> results;
    for (const auto& phase : phases) {
      cb::BenchResult r;
      r.name = phase.label;
      r.requests = requests;
      r.wall_s = phase.seconds;
      r.requests_per_s = double(requests) / phase.seconds;
      r.config = {{"device", cb::json_str(phase.label.rfind("flat", 0) == 0
                                              ? flat.name
                                              : hybrid.name)},
                  {"workload", cb::json_str(profile.name)},
                  {"run_threads", std::to_string(phase.threads)},
                  {"hw_threads", std::to_string(hw_threads)},
                  {"line_bytes", std::to_string(kLineBytes)},
                  {"seed", "42"}};
      results.push_back(std::move(r));
    }
    cb::write_bench_json(json, "bench_streaming", results);
    std::cout << "wrote BENCH_streaming.json (" << results.size()
              << " phases)\n";
  }
  return ok ? 0 : 1;
}
