// Demonstrates the O(1)-memory streaming replay path: a 10M-request
// lazy-streamed run (GeneratorSource pulled straight through the engine)
// against the same replay with the trace materialized as a vector first.
// Both paths produce bit-identical SimStats; the difference is peak RSS
// — the materialized path holds the whole trace (~40 B/request) while
// the streamed one holds only scheduler state. The streamed phase runs
// first so the process high-water mark cleanly attributes the growth to
// materialization.
//
// Usage: bench_streaming [requests]   (default: 10,000,000)

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "driver/registry.hpp"
#include "memsim/trace_gen.hpp"
#include "util/table.hpp"

namespace {

/// Current and peak resident set size [MiB] from /proc/self/status
/// (VmRSS / VmHWM); zeros where the pseudo-file is unavailable.
struct Rss {
  double current_mib = 0.0;
  double peak_mib = 0.0;
};

Rss read_rss() {
  Rss rss;
  std::ifstream status("/proc/self/status");
  std::string key;
  while (status >> key) {
    if (key == "VmRSS:" || key == "VmHWM:") {
      double kib = 0.0;
      status >> kib;
      (key == "VmRSS:" ? rss.current_mib : rss.peak_mib) = kib / 1024.0;
    }
  }
  return rss;
}

struct PhaseResult {
  std::string label;
  double seconds = 0.0;
  Rss rss;
  comet::memsim::SimStats stats;
};

template <typename Fn>
PhaseResult timed_phase(const std::string& label, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  PhaseResult result;
  result.label = label;
  result.stats = fn();
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  result.rss = read_rss();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using comet::util::Table;

  std::size_t requests = 10'000'000;
  if (argc > 1) requests = static_cast<std::size_t>(std::atoll(argv[1]));
  constexpr std::uint32_t kLineBytes = 128;
  const auto profile = comet::memsim::profile_by_name("gcc_like");

  const auto flat = comet::driver::make_device_spec("comet");
  const auto hybrid = comet::driver::make_device_spec("hybrid-comet");

  std::cout << "replaying " << requests << " requests of " << profile.name
            << " through " << flat.name << " / " << hybrid.name << "\n\n";

  std::vector<PhaseResult> phases;

  phases.push_back(timed_phase("flat, streamed", [&] {
    auto source = comet::memsim::TraceGenerator(profile, 42)
                      .stream(requests, kLineBytes);
    return flat.make_engine()->run(source, profile.name);
  }));

  phases.push_back(timed_phase("hybrid, streamed", [&] {
    auto source = comet::memsim::TraceGenerator(profile, 42)
                      .stream(requests, kLineBytes);
    return hybrid.make_engine()->run(source, profile.name);
  }));

  phases.push_back(timed_phase("flat, materialized", [&] {
    const auto trace = comet::memsim::TraceGenerator(profile, 42)
                           .generate(requests, kLineBytes);
    return flat.make_engine()->run(trace, profile.name);
  }));

  Table table({"phase", "time (s)", "RSS after (MiB)", "peak RSS (MiB)",
               "BW (GB/s)", "EPB (pJ/bit)"});
  for (const auto& phase : phases) {
    table.add_row({phase.label, Table::num(phase.seconds, 2),
                   Table::num(phase.rss.current_mib, 1),
                   Table::num(phase.rss.peak_mib, 1),
                   Table::num(phase.stats.bandwidth_gbps(), 2),
                   Table::num(phase.stats.epb_pj_per_bit(), 2)});
  }
  std::cout << "=== Streamed vs materialized replay ===\n";
  table.print(std::cout);

  const bool identical =
      phases[0].stats.span_ps == phases[2].stats.span_ps &&
      phases[0].stats.dynamic_energy_pj == phases[2].stats.dynamic_energy_pj &&
      phases[0].stats.reads == phases[2].stats.reads;
  std::cout << "\nflat streamed vs materialized stats: "
            << (identical ? "bit-identical" : "MISMATCH") << "\n"
            << "peak-RSS growth attributable to materializing the trace: "
            << phases[2].rss.peak_mib - phases[1].rss.peak_mib << " MiB ("
            << requests << " x " << sizeof(comet::memsim::Request)
            << " B/request)\n";
  return identical ? 0 : 1;
}
