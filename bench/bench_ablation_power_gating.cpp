// Ablation of the paper's stated future work (Section IV.C): "Enabling
// dynamic laser power management, such as that discussed in [43], could
// significantly improve photonic memory energy consumption."
//
// We model an ideal run-time policy that gates the laser and the SOA
// stages while the banks are idle (the MR tuning and interface stay on),
// and replay the Fig. 9 workloads: the gated COMET's EPB approaches the
// 3D-DRAM class on low-utilization workloads, confirming the paper's
// expectation that laser power is the lever.

#include <iostream>

#include "core/comet_memory.hpp"
#include "core/power_model.hpp"
#include "memsim/system.hpp"
#include "memsim/trace_gen.hpp"
#include "util/table.hpp"

int main() {
  using comet::util::Table;
  const auto losses = comet::photonics::LossParameters::paper();
  const auto config = comet::core::CometConfig::comet_4b();

  const auto baseline =
      comet::core::CometMemory::device_model(config, losses);
  // Gated variant: laser + SOA become activity-proportional.
  const comet::core::CometPowerModel power(config, losses);
  const double gateable_w = power.laser_power_w() + power.soa_power_w();
  auto gated = baseline;
  gated.name = "COMET-4b+gating";
  gated.energy.background_power_w -= gateable_w;
  gated.energy.gateable_background_power_w = gateable_w;

  std::cout << "gateable power (laser + SOA): "
            << Table::num(gateable_w, 2) << " W of "
            << Table::num(baseline.energy.background_power_w, 2)
            << " W total\n\n";

  Table table({"workload", "util (%)", "EPB fixed (pJ/bit)",
               "EPB gated (pJ/bit)", "saving"});
  double sum_fixed = 0.0, sum_gated = 0.0;
  int n = 0;
  for (const auto& profile : comet::memsim::spec_like_profiles()) {
    const comet::memsim::TraceGenerator gen(profile, 42);
    const auto trace = gen.generate(40000, 128);
    const auto fixed_stats =
        comet::memsim::MemorySystem(baseline).run(trace, profile.name);
    const auto gated_stats =
        comet::memsim::MemorySystem(gated).run(trace, profile.name);
    const int banks = baseline.timing.channels *
                      baseline.timing.banks_per_channel;
    const double fixed_epb = fixed_stats.epb_pj_per_bit();
    const double gated_epb = gated_stats.epb_pj_per_bit();
    sum_fixed += fixed_epb;
    sum_gated += gated_epb;
    ++n;
    table.add_row({profile.name,
                   Table::num(fixed_stats.bank_utilization(banks) * 100, 1),
                   Table::num(fixed_epb, 1), Table::num(gated_epb, 1),
                   Table::num((1.0 - gated_epb / fixed_epb) * 100, 1) + " %"});
  }
  table.print(std::cout);
  std::cout << "\naverage EPB: " << Table::num(sum_fixed / n, 1)
            << " -> " << Table::num(sum_gated / n, 1)
            << " pJ/bit with ideal laser/SOA gating ("
            << Table::num((1.0 - sum_gated / sum_fixed) * 100, 1)
            << " % saving)\n"
            << "(paper, Section IV.C: dynamic laser power management is\n"
            << "left as future work but expected to significantly improve\n"
            << "photonic memory energy consumption — confirmed.)\n";
  return 0;
}
