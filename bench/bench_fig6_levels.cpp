// Regenerates paper Fig. 6: programming latency and optical transmission
// of the 16 crystalline-fraction levels of the 4-bit GST cell, for both
// programming case studies (crystalline reset / amorphous reset), plus
// the reset-pulse energies of Section III.B (880 pJ / 280 pJ).

#include <iostream>

#include "materials/mlc_levels.hpp"
#include "materials/pcm_material.hpp"
#include "materials/thermal_model.hpp"
#include "photonics/gst_cell.hpp"
#include "util/table.hpp"

int main() {
  using namespace comet::materials;
  using comet::util::Table;

  const auto& gst = PcmMaterial::get(Pcm::kGst);
  const comet::photonics::GstCell cell(
      gst, comet::photonics::GstCellGeometry::paper());
  const PcmThermalModel thermal(GstThermalCalibration::calibrated());

  for (const auto mode : {ProgrammingMode::kAmorphousReset,
                          ProgrammingMode::kCrystallineReset}) {
    const auto table =
        MlcLevelTable::build(4, mode, thermal, cell.transmission_curve());
    const bool amorphous = mode == ProgrammingMode::kAmorphousReset;
    std::cout << "=== Fig. 6 (" << (amorphous ? "case 2: amorphous reset"
                                              : "case 1: crystalline reset")
              << ") ===\n";
    Table rows({"level", "transmission", "crystalline fraction",
                "write latency (ns)", "write energy (pJ)"});
    for (const auto& level : table.levels()) {
      rows.add_row({std::to_string(level.index),
                    Table::num(level.transmission, 3),
                    Table::num(level.crystalline_fraction, 3),
                    Table::num(level.write_latency_ns, 1),
                    Table::num(level.write_energy_pj, 1)});
    }
    rows.print(std::cout);
    std::cout << "level spacing: " << Table::num(table.level_spacing(), 3)
              << " (paper: ~6 %)\n"
              << "reset pulse:   " << Table::num(table.reset().latency_ns, 1)
              << " ns, " << Table::num(table.reset().energy_pj, 1)
              << " pJ  (paper: "
              << (amorphous ? "~56 ns, 280 pJ" : "~210 ns, 880 pJ") << ")\n"
              << "max write:     "
              << Table::num(table.max_write_latency_ns(), 1)
              << " ns  (Table II max write: 170 ns)\n\n";
  }
  return 0;
}
