// Regenerates paper Fig. 3: refractive index n and extinction coefficient
// kappa of GST, GSST and Sb2Se3 in amorphous and crystalline phases over
// the optical C-band (1530-1565 nm), from the Lorentz oscillator models.
// The selection argument of Section III.A — GST shows both the largest
// index contrast and the largest extinction contrast — is printed last.

#include <iostream>

#include "materials/pcm_material.hpp"
#include "util/interp.hpp"
#include "util/table.hpp"

int main() {
  using comet::materials::PcmMaterial;
  using comet::materials::Pcm;
  using comet::materials::Phase;
  using comet::util::Table;

  const Pcm candidates[] = {Pcm::kGst, Pcm::kGsst, Pcm::kSb2Se3};
  const auto wavelengths = comet::util::linspace(1530.0, 1565.0, 8);

  Table series({"lambda (nm)", "material", "n (amorphous)", "n (crystalline)",
                "k (amorphous)", "k (crystalline)"});
  for (const double lambda : wavelengths) {
    for (const auto pcm : candidates) {
      const auto& m = PcmMaterial::get(pcm);
      series.add_row({Table::num(lambda, 1), std::string(m.name()),
                      Table::num(m.n(Phase::kAmorphous, lambda), 3),
                      Table::num(m.n(Phase::kCrystalline, lambda), 3),
                      Table::num(m.kappa(Phase::kAmorphous, lambda), 4),
                      Table::num(m.kappa(Phase::kCrystalline, lambda), 4)});
    }
  }
  std::cout << "=== Fig. 3: n and kappa over the C-band ===\n";
  series.print(std::cout);

  Table contrast({"material", "delta n @1550", "delta kappa @1550"});
  for (const auto pcm : candidates) {
    const auto& m = PcmMaterial::get(pcm);
    contrast.add_row({std::string(m.name()),
                      Table::num(m.index_contrast(1550.0), 3),
                      Table::num(m.kappa_contrast(1550.0), 4)});
  }
  std::cout << "\n=== Section III.A: phase contrast at 1550 nm ===\n";
  contrast.print(std::cout);
  std::cout << "\nPaper conclusion: GST exhibits the highest refractive\n"
               "index contrast and extinction-coefficient contrast across\n"
               "the C-band, so COMET builds its cells from GST.\n";
  return 0;
}
