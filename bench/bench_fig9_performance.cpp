// Regenerates paper Fig. 9: (a) average bandwidth, (b) energy-per-bit and
// (c) BW/EPB for seven memory architectures (2D/3D DDR3, 2D/3D DDR4,
// EPCM-MM, COSMOS, COMET-4b) across eight SPEC-like workloads, plus the
// cross-architecture ratios the paper quotes in Section IV.C.

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/comet_memory.hpp"
#include "cosmos/cosmos_memory.hpp"
#include "dram/dram_device.hpp"
#include "dram/epcm.hpp"
#include "memsim/system.hpp"
#include "memsim/trace_gen.hpp"
#include "util/table.hpp"

namespace {

constexpr std::size_t kRequestsPerTrace = 60000;
constexpr std::uint32_t kLineBytes = 128;

struct ArchResult {
  double bw_sum = 0.0;
  double epb_sum = 0.0;
  double latency_sum = 0.0;
  int n = 0;
  double bw() const { return bw_sum / n; }
  double epb() const { return epb_sum / n; }
  double latency() const { return latency_sum / n; }
  double bw_per_epb() const { return bw() / epb(); }
};

}  // namespace

int main() {
  using comet::util::Table;

  std::vector<comet::memsim::DeviceModel> devices;
  devices.push_back(comet::dram::ddr3_2d());
  devices.push_back(comet::dram::ddr3_3d());
  devices.push_back(comet::dram::ddr4_2d());
  devices.push_back(comet::dram::ddr4_3d());
  devices.push_back(comet::dram::epcm_mm());
  devices.push_back(comet::cosmos::cosmos_device_model(
      comet::cosmos::CosmosConfig::paper(),
      comet::photonics::LossParameters::paper()));
  devices.push_back(comet::core::CometMemory::device_model(
      comet::core::CometConfig::comet_4b(),
      comet::photonics::LossParameters::paper()));

  const auto profiles = comet::memsim::spec_like_profiles();

  std::map<std::string, ArchResult> results;
  Table per_workload({"workload", "architecture", "BW (GB/s)",
                      "EPB (pJ/bit)", "avg latency (ns)"});

  for (const auto& profile : profiles) {
    // Bandwidth/EPB: open-loop saturating replay (arrival intensity above
    // every architecture's service rate), as in the paper's NVMain setup.
    const comet::memsim::TraceGenerator gen(profile, /*seed=*/42);
    const auto trace = gen.generate(kRequestsPerTrace, kLineBytes);
    // Latency: a light-load replay of the same access pattern (x100
    // sparser arrivals) so queueing does not mask the service latency.
    auto light_profile = profile;
    light_profile.avg_interarrival_ns = 400.0;
    const comet::memsim::TraceGenerator light_gen(light_profile, 42);
    const auto light_trace = light_gen.generate(kRequestsPerTrace / 4,
                                                kLineBytes);
    for (const auto& device : devices) {
      const comet::memsim::MemorySystem system(device);
      const auto stats = system.run(trace, profile.name);
      const auto light = system.run(light_trace, profile.name);
      auto& agg = results[device.name];
      agg.bw_sum += stats.bandwidth_gbps();
      agg.epb_sum += stats.epb_pj_per_bit();
      agg.latency_sum += light.avg_latency_ns();
      ++agg.n;
      per_workload.add_row({profile.name, device.name,
                            Table::num(stats.bandwidth_gbps(), 2),
                            Table::num(stats.epb_pj_per_bit(), 1),
                            Table::num(light.avg_latency_ns(), 1)});
    }
  }

  std::cout << "=== Fig. 9 per-workload results ===\n";
  per_workload.print(std::cout);

  Table summary({"architecture", "avg BW (GB/s)", "avg EPB (pJ/bit)",
                 "BW/EPB", "avg latency (ns)"});
  for (const auto& device : devices) {
    const auto& r = results.at(device.name);
    summary.add_row({device.name, Table::num(r.bw(), 2),
                     Table::num(r.epb(), 1), Table::num(r.bw_per_epb(), 3),
                     Table::num(r.latency(), 1)});
  }
  std::cout << "\n=== Fig. 9 averages (a: BW, b: EPB, c: BW/EPB) ===\n";
  summary.print(std::cout);

  const auto& comet_r = results.at("COMET-4b");
  Table ratios({"baseline", "COMET BW gain (paper)", "COMET EPB gain (paper)",
                "COMET latency gain (paper)"});
  const std::map<std::string, std::array<const char*, 3>> paper_ratios = {
      {"2D_DDR3", {"100.3x", "4.1x", "-"}},
      {"3D_DDR3", {"47.2x", "-", "-"}},
      {"2D_DDR4", {"58.7x", "2.3x", "-"}},
      {"3D_DDR4", {"42.1x", "<1x (3D wins)", "-"}},
      {"EPCM-MM", {"40.6x", "<1x (EPCM wins)", "-"}},
      {"COSMOS", {"5.1x", "12.9x", "3x"}},
  };
  for (const auto& device : devices) {
    if (device.name == "COMET-4b") continue;
    const auto& r = results.at(device.name);
    const auto it = paper_ratios.find(device.name);
    ratios.add_row(
        {device.name,
         Table::num(comet_r.bw() / r.bw(), 1) + "x (" +
             (it != paper_ratios.end() ? it->second[0] : "?") + ")",
         Table::num(r.epb() / comet_r.epb(), 2) + "x (" +
             (it != paper_ratios.end() ? it->second[1] : "?") + ")",
         Table::num(r.latency() / comet_r.latency(), 2) + "x (" +
             (it != paper_ratios.end() ? it->second[2] : "?") + ")"});
  }
  std::cout << "\n=== Section IV.C ratios: COMET vs baselines ===\n";
  ratios.print(std::cout);
  return 0;
}
