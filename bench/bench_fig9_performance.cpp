// Regenerates paper Fig. 9: (a) average bandwidth, (b) energy-per-bit and
// (c) BW/EPB for seven memory architectures (2D/3D DDR3, 2D/3D DDR4,
// EPCM-MM, COSMOS, COMET-4b) across eight SPEC-like workloads, plus the
// cross-architecture ratios the paper quotes in Section IV.C.
//
// The device x workload matrix runs through the driver's parallel sweep
// engine (src/driver/sweep.hpp): each cell is an independent
// deterministic replay, so the bench fans out across hardware threads
// with results bit-identical to the old serial loops.

#include <array>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "driver/registry.hpp"
#include "driver/sweep.hpp"
#include "memsim/trace_gen.hpp"
#include "util/table.hpp"

namespace {

constexpr std::size_t kRequestsPerTrace = 60000;
constexpr std::uint32_t kLineBytes = 128;

struct ArchResult {
  double bw_sum = 0.0;
  double epb_sum = 0.0;
  double latency_sum = 0.0;
  int n = 0;
  double bw() const { return bw_sum / n; }
  double epb() const { return epb_sum / n; }
  double latency() const { return latency_sum / n; }
  double bw_per_epb() const { return bw() / epb(); }
};

}  // namespace

int main() {
  using comet::util::Table;

  const auto devices = comet::driver::resolve_device_specs("all");
  const auto profiles = comet::memsim::spec_like_profiles();

  // Two jobs per (profile, device) cell: a saturating open-loop replay
  // (arrival intensity above every architecture's service rate, as in the
  // paper's NVMain setup) for bandwidth/EPB, and a far sparser light-load
  // replay of the same access pattern for service latency, so queueing
  // does not mask it.
  std::vector<comet::driver::SweepJob> jobs;
  jobs.reserve(2 * profiles.size() * devices.size());
  for (const auto& profile : profiles) {
    auto light_profile = profile;
    light_profile.avg_interarrival_ns = 400.0;
    for (const auto& device : devices) {
      comet::driver::SweepJob heavy;
      heavy.device = device;
      heavy.profile = profile;
      heavy.requests = kRequestsPerTrace;
      heavy.seed = 42;
      heavy.line_bytes = kLineBytes;
      jobs.push_back(heavy);

      auto light = heavy;
      light.profile = light_profile;
      light.requests = kRequestsPerTrace / 4;
      jobs.push_back(light);
    }
  }

  const auto stats = comet::driver::run_sweep(jobs, /*threads=*/0);

  std::map<std::string, ArchResult> results;
  Table per_workload({"workload", "architecture", "BW (GB/s)",
                      "EPB (pJ/bit)", "avg latency (ns)"});
  for (std::size_t i = 0; i < jobs.size(); i += 2) {
    const auto& heavy = stats[i];
    const auto& light = stats[i + 1];
    auto& agg = results[jobs[i].device.name];
    agg.bw_sum += heavy.bandwidth_gbps();
    agg.epb_sum += heavy.epb_pj_per_bit();
    agg.latency_sum += light.avg_latency_ns();
    ++agg.n;
    per_workload.add_row({jobs[i].profile.name, jobs[i].device.name,
                          Table::num(heavy.bandwidth_gbps(), 2),
                          Table::num(heavy.epb_pj_per_bit(), 1),
                          Table::num(light.avg_latency_ns(), 1)});
  }

  std::cout << "=== Fig. 9 per-workload results ===\n";
  per_workload.print(std::cout);

  Table summary({"architecture", "avg BW (GB/s)", "avg EPB (pJ/bit)",
                 "BW/EPB", "avg latency (ns)"});
  for (const auto& device : devices) {
    const auto& r = results.at(device.name);
    summary.add_row({device.name, Table::num(r.bw(), 2),
                     Table::num(r.epb(), 1), Table::num(r.bw_per_epb(), 3),
                     Table::num(r.latency(), 1)});
  }
  std::cout << "\n=== Fig. 9 averages (a: BW, b: EPB, c: BW/EPB) ===\n";
  summary.print(std::cout);

  const auto& comet_r = results.at("COMET-4b");
  Table ratios({"baseline", "COMET BW gain (paper)", "COMET EPB gain (paper)",
                "COMET latency gain (paper)"});
  const std::map<std::string, std::array<const char*, 3>> paper_ratios = {
      {"2D_DDR3", {"100.3x", "4.1x", "-"}},
      {"3D_DDR3", {"47.2x", "-", "-"}},
      {"2D_DDR4", {"58.7x", "2.3x", "-"}},
      {"3D_DDR4", {"42.1x", "<1x (3D wins)", "-"}},
      {"EPCM-MM", {"40.6x", "<1x (EPCM wins)", "-"}},
      {"COSMOS", {"5.1x", "12.9x", "3x"}},
  };
  for (const auto& device : devices) {
    if (device.name == "COMET-4b") continue;
    const auto& r = results.at(device.name);
    const auto it = paper_ratios.find(device.name);
    ratios.add_row(
        {device.name,
         Table::num(comet_r.bw() / r.bw(), 1) + "x (" +
             (it != paper_ratios.end() ? it->second[0] : "?") + ")",
         Table::num(r.epb() / comet_r.epb(), 2) + "x (" +
             (it != paper_ratios.end() ? it->second[1] : "?") + ")",
         Table::num(r.latency() / comet_r.latency(), 2) + "x (" +
             (it != paper_ratios.end() ? it->second[2] : "?") + ")"});
  }
  std::cout << "\n=== Section IV.C ratios: COMET vs baselines ===\n";
  ratios.print(std::cout);
  return 0;
}
