// Regenerates paper Figs. 1(b) & 2: the crossbar crosstalk level, the
// per-write thermo-optic fraction shift, and the data-corruption sweep —
// a synthetic image stored in a COSMOS-style crossbar is degraded by
// writes to adjoining rows (the paper shows severe corruption after 4).
// COMET's MR-isolated cells run the same experiment through the real
// subarray machinery and stay clean.

#include <cstdint>
#include <iostream>
#include <vector>

#include "core/comet_memory.hpp"
#include "cosmos/crossbar.hpp"
#include "photonics/crosstalk.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

constexpr int kRows = 64;
constexpr int kCols = 64;
constexpr double kWriteEnergyPj = 750.0;  // GST transition energy [17]

}  // namespace

int main() {
  using comet::util::Table;

  const comet::photonics::CrosstalkModel crosstalk(
      comet::photonics::CrosstalkModel::paper());
  std::cout << "=== Fig. 1(b): crossbar crosstalk ===\n"
            << "row-to-row coupling:    "
            << Table::num(crosstalk.params().coupling_db, 2) << " dB\n"
            << "coupled energy (750 pJ): "
            << Table::num(crosstalk.coupled_energy_pj(kWriteEnergyPj), 1)
            << " pJ   (paper: ~12.6 pJ)\n"
            << "fraction shift per write: "
            << Table::num(crosstalk.fraction_shift(kWriteEnergyPj) * 100, 1)
            << " %    (paper: ~8 %)\n\n";

  // Store a deterministic synthetic "image" (4-bit pixels) in the
  // original COSMOS crossbar (4 bits/cell), then write pseudo-random
  // data to adjoining rows and track corruption after each pass.
  comet::util::Rng rng(2024);
  comet::cosmos::Crossbar crossbar(kRows, kCols, /*bits_per_cell=*/4);
  for (int r = 0; r < kRows; ++r) {
    for (int c = 0; c < kCols; ++c) {
      // Smooth gradient + texture: plausible image statistics. Deposited
      // as the ideal initial state (Fig. 2 left, "original image").
      const int value =
          ((r + c) / 8 + static_cast<int>(rng.next_below(3))) % 16;
      crossbar.set_state(r, c, value);
    }
  }
  std::cout << "=== Fig. 2: corruption vs adjacent-row writes (COSMOS "
               "crossbar, 4-bit cells) ===\n";
  Table sweep({"adjacent writes", "corrupted cells (%)",
               "mean |level error|"});
  sweep.add_row({"0 (original image)",
                 Table::num(crossbar.corrupted_fraction() * 100, 1),
                 Table::num(crossbar.mean_level_error(), 2)});
  std::vector<int> scratch(static_cast<std::size_t>(kCols));
  for (int pass = 1; pass <= 4; ++pass) {
    // Write every even row with new data: odd rows are "adjoining".
    for (int r = 0; r < kRows; r += 2) {
      for (auto& lvl : scratch) {
        lvl = static_cast<int>(rng.next_below(16));
      }
      crossbar.write_row(r, scratch, kWriteEnergyPj);
    }
    sweep.add_row({std::to_string(pass),
                   Table::num(crossbar.corrupted_fraction() * 100, 1),
                   Table::num(crossbar.mean_level_error(), 2)});
  }
  sweep.print(std::cout);
  std::cout << "(paper: the stored image is severely corrupted after 4 "
               "writes to adjoining rows)\n\n";

  // The same experiment against COMET's MR-isolated cells: write lines,
  // hammer neighbouring lines, read back through the full loss/gain/
  // classification chain.
  comet::core::CometMemory comet_mem;
  const auto line = comet_mem.config().line_bytes();
  std::vector<std::uint8_t> data(line), readback(line), hammer(line);
  for (std::size_t i = 0; i < line; ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 13);
  }
  comet_mem.write_line(0, data);
  int errors = 0;
  for (int pass = 0; pass < 4; ++pass) {
    for (auto& b : hammer) b = static_cast<std::uint8_t>(rng.next_u64());
    // Adjacent rows of the same subarray live one bank-interleave step
    // apart in the address space.
    comet_mem.write_line(line * comet_mem.config().channels *
                             comet_mem.config().banks,
                         hammer);
    const auto result = comet_mem.read_line(0, readback);
    if (!result.correct || readback != data) ++errors;
  }
  std::cout << "=== COMET (MR-isolated cells), same experiment ===\n"
            << "read errors after 4 adjacent-row writes: " << errors
            << "   (paper: crosstalk-free by construction)\n";
  return errors == 0 ? 0 : 1;
}
