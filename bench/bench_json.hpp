#pragma once

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

/// Shared result schema for the perf-lane benches (bench_streaming,
/// bench_sched). One document shape so scripts/check_perf.py can gate
/// any bench against its committed baseline without bench-specific
/// parsing:
///
///     {
///       "bench": "<bench name>",
///       "schema_version": 1,
///       "results": [
///         {"name": "<unique cell name>", "requests": N,
///          "wall_s": S, "requests_per_s": R,
///          "config": {"k": v, ...}},
///         ...
///       ]
///     }
///
/// `name` is the join key between baseline and current runs — keep cell
/// names stable across refactors or the gate will flag them as
/// missing. `requests_per_s` is the gated metric; `config` is
/// free-form provenance (device, threads, policy, ...) for humans
/// reading the artifact.
namespace comet::bench {

struct BenchResult {
  std::string name;
  std::uint64_t requests = 0;
  double wall_s = 0.0;
  double requests_per_s = 0.0;
  /// Provenance key → pre-formatted JSON value (use json_str for
  /// strings, std::to_string for numbers).
  std::vector<std::pair<std::string, std::string>> config;
};

inline std::string json_str(const std::string& value) {
  std::string out = "\"";
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}

inline void write_bench_json(std::ostream& os, const std::string& bench,
                             const std::vector<BenchResult>& results) {
  os << "{\n  \"bench\": " << json_str(bench)
     << ",\n  \"schema_version\": 1,\n  \"results\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    os << (i ? ",\n" : "\n") << "    {\"name\": " << json_str(r.name)
       << ", \"requests\": " << r.requests << ", \"wall_s\": " << r.wall_s
       << ", \"requests_per_s\": " << r.requests_per_s << ", \"config\": {";
    for (std::size_t k = 0; k < r.config.size(); ++k) {
      os << (k ? ", " : "") << json_str(r.config[k].first) << ": "
         << r.config[k].second;
    }
    os << "}}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace comet::bench
