// Memory-controller scheduling study: policy x queue-depth matrix on
// the COMET OPCM and the EPCM-MM electronic baseline, quantifying what
// the controller front-end buys on top of raw device timing.
//
// For every (device, policy, depth) cell the bench reports demand
// throughput, mean/p95 end-to-end read latency and the queueing-delay
// split (controller queue vs device service), plus per-cell deltas
// against the unbounded-fcfs baseline — which is bit-identical to the
// legacy arrival-order replay, so every delta is attributable to the
// scheduler alone. The full matrix also lands in BENCH_sched.json (the
// driver's sweep-JSON schema) to seed a perf trajectory.

#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "driver/registry.hpp"
#include "driver/report.hpp"
#include "driver/sweep.hpp"
#include "memsim/trace_gen.hpp"
#include "sched/controller.hpp"
#include "util/table.hpp"

namespace {

constexpr std::size_t kRequestsPerTrace = 40000;
constexpr std::uint32_t kLineBytes = 128;

const std::vector<int> kQueueDepths = {8, 32, 128};

}  // namespace

int main() {
  namespace sc = comet::sched;
  using comet::util::Table;

  const std::vector<std::string> device_tokens = {"comet", "epcm"};
  // fcfs never holds transactions, so queue depth cannot affect it —
  // its single cell is the unbounded baseline; only the reordering
  // policies sweep the depth axis.
  const std::vector<sc::Policy> policies = {sc::Policy::kFrFcfs,
                                            sc::Policy::kReadFirst};
  // lbm_like is write-heavy (write-drain territory), mcf_like is
  // pointer-chasing reads, omnetpp_like is a hot-set mix.
  const std::vector<std::string> workload_names = {"mcf_like", "lbm_like",
                                                   "omnetpp_like"};

  std::vector<comet::driver::SweepJob> jobs;
  for (const auto& token : device_tokens) {
    const auto device = comet::driver::make_device_spec(token);
    for (const auto& workload : workload_names) {
      const auto profile = comet::memsim::profile_by_name(workload);
      const auto add_job =
          [&](const std::optional<sc::ControllerConfig>& controller) {
            comet::driver::SweepJob job;
            job.device = device;
            job.profile = profile;
            job.requests = kRequestsPerTrace;
            job.seed = 42;
            job.line_bytes = kLineBytes;
            job.controller = controller;
            jobs.push_back(std::move(job));
          };
      // The baseline cell: unbounded fcfs (== legacy direct replay).
      add_job(sc::ControllerConfig::with_depths(sc::Policy::kFcfs, 0, 0));
      for (const auto policy : policies) {
        for (const int depth : kQueueDepths) {
          add_job(sc::ControllerConfig::with_depths(policy, depth, depth));
        }
      }
    }
  }

  const auto stats = comet::driver::run_sweep(jobs, /*threads=*/0);

  // Index the unbounded-fcfs baseline per (device, workload).
  std::map<std::string, const comet::memsim::SimStats*> baseline;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].controller->read_queue_depth == 0) {
      baseline[jobs[i].device.name + "/" + jobs[i].profile.name] = &stats[i];
    }
  }

  Table table({"device", "workload", "policy", "depth", "BW (GB/s)",
               "read lat (ns)", "p95 read (ns)", "queued (ns)",
               "service (ns)", "drains", "stalls", "BW vs fcfs",
               "queued vs fcfs (ns)"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& s = stats[i];
    const auto& c = *jobs[i].controller;
    const bool is_baseline = c.read_queue_depth == 0;
    const auto* base = baseline.at(jobs[i].device.name + "/" +
                                   jobs[i].profile.name);
    table.add_row(
        {jobs[i].device.name, jobs[i].profile.name, s.sched_policy,
         is_baseline ? "inf" : std::to_string(c.read_queue_depth),
         Table::num(s.bandwidth_gbps(), 2),
         Table::num(s.read_latency_ns.mean(), 1),
         Table::num(s.read_latency_ns.p95(), 1),
         Table::num(s.sched_queue_delay_ns.mean(), 1),
         Table::num(s.service_latency_ns.mean(), 1),
         std::to_string(s.write_drains), std::to_string(s.admit_stalls),
         Table::num(base->bandwidth_gbps() > 0.0
                        ? s.bandwidth_gbps() / base->bandwidth_gbps()
                        : 0.0,
                    3) +
             "x",
         Table::num(s.sched_queue_delay_ns.mean() -
                        base->sched_queue_delay_ns.mean(),
                    1)});
  }
  std::cout << "=== Controller policy x queue-depth matrix ===\n";
  table.print(std::cout);

  // Per-device policy averages over workloads at the default depth
  // (the unbounded baseline cell for fcfs).
  Table summary({"device", "policy", "avg BW (GB/s)", "avg read lat (ns)",
                 "avg queued (ns)"});
  for (const auto& token : device_tokens) {
    const std::string device_name =
        comet::driver::make_device_spec(token).name;
    for (const auto policy :
         {sc::Policy::kFcfs, sc::Policy::kFrFcfs, sc::Policy::kReadFirst}) {
      const int wanted_depth = policy == sc::Policy::kFcfs ? 0 : 32;
      double bw = 0.0, lat = 0.0, queued = 0.0;
      int n = 0;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto& c = *jobs[i].controller;
        if (jobs[i].device.name != device_name || c.policy != policy ||
            c.read_queue_depth != wanted_depth) {
          continue;
        }
        bw += stats[i].bandwidth_gbps();
        lat += stats[i].read_latency_ns.mean();
        queued += stats[i].sched_queue_delay_ns.mean();
        ++n;
      }
      if (n == 0) continue;
      summary.add_row({token, sc::policy_name(policy), Table::num(bw / n, 2),
                       Table::num(lat / n, 1), Table::num(queued / n, 1)});
    }
  }
  std::cout << "\n=== Policy averages (fcfs = unbounded baseline, "
               "reordering policies at depth 32) ===\n";
  summary.print(std::cout);

  std::ofstream json("BENCH_sched.json");
  if (json) {
    comet::driver::write_json(json, jobs, stats);
    std::cout << "\nwrote BENCH_sched.json (" << jobs.size() << " cells)\n";
  }
  return 0;
}
