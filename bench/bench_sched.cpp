// Memory-controller scheduling study: policy x queue-depth matrix on
// the COMET OPCM and the EPCM-MM electronic baseline, quantifying what
// the controller front-end buys on top of raw device timing.
//
// For every (device, policy, depth) cell the bench reports demand
// throughput, mean/p95 end-to-end read latency and the queueing-delay
// split (controller queue vs device service), plus per-cell deltas
// against the unbounded-fcfs baseline — which is bit-identical to the
// legacy arrival-order replay, so every delta is attributable to the
// scheduler alone. Each cell is timed individually (serial execution,
// so wall clocks don't contend) and the matrix lands in
// BENCH_sched.json (bench/bench_json.hpp schema); CI's perf lane diffs
// requests_per_s per cell against the committed baseline.
//
// Usage: bench_sched [requests-per-cell]   (default: 40,000)

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "driver/registry.hpp"
#include "driver/sweep.hpp"
#include "memsim/sharded.hpp"
#include "memsim/trace_gen.hpp"
#include "sched/controller.hpp"
#include "util/table.hpp"

namespace {

constexpr std::uint32_t kLineBytes = 128;

const std::vector<int> kQueueDepths = {8, 32, 128};

}  // namespace

int main(int argc, char** argv) {
  namespace sc = comet::sched;
  using comet::util::Table;

  std::size_t requests_per_cell = 40000;
  if (argc > 1) {
    requests_per_cell = static_cast<std::size_t>(std::atoll(argv[1]));
  }

  const std::vector<std::string> device_tokens = {"comet", "epcm"};
  // fcfs never holds transactions, so queue depth cannot affect it —
  // its single cell is the unbounded baseline; only the reordering
  // policies sweep the depth axis.
  const std::vector<sc::Policy> policies = {sc::Policy::kFrFcfs,
                                            sc::Policy::kReadFirst};
  // lbm_like is write-heavy (write-drain territory), mcf_like is
  // pointer-chasing reads, omnetpp_like is a hot-set mix.
  const std::vector<std::string> workload_names = {"mcf_like", "lbm_like",
                                                   "omnetpp_like"};

  std::vector<comet::driver::SweepJob> jobs;
  for (const auto& token : device_tokens) {
    const auto device = comet::driver::make_device_spec(token);
    for (const auto& workload : workload_names) {
      const auto profile = comet::memsim::profile_by_name(workload);
      const auto add_job =
          [&](const std::optional<sc::ControllerConfig>& controller) {
            comet::driver::SweepJob job;
            job.device = device;
            job.profile = profile;
            job.requests = requests_per_cell;
            job.seed = 42;
            job.line_bytes = kLineBytes;
            job.controller = controller;
            jobs.push_back(std::move(job));
          };
      // The baseline cell: unbounded fcfs (== legacy direct replay).
      add_job(sc::ControllerConfig::with_depths(sc::Policy::kFcfs, 0, 0));
      for (const auto policy : policies) {
        for (const int depth : kQueueDepths) {
          add_job(sc::ControllerConfig::with_depths(policy, depth, depth));
        }
      }
    }
  }

  // Serial per-cell timing: each cell's wall clock is uncontended, so
  // requests_per_s is a clean gated metric (scripts/check_perf.py).
  std::vector<comet::memsim::SimStats> stats(jobs.size());
  std::vector<double> cell_seconds(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto start = std::chrono::steady_clock::now();
    stats[i] = comet::driver::run_job(jobs[i]);
    cell_seconds[i] = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  }

  // Index the unbounded-fcfs baseline per (device, workload).
  std::map<std::string, const comet::memsim::SimStats*> baseline;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].controller->read_queue_depth == 0) {
      baseline[jobs[i].device.name + "/" + jobs[i].profile.name] = &stats[i];
    }
  }

  Table table({"device", "workload", "policy", "depth", "BW (GB/s)",
               "read lat (ns)", "p95 read (ns)", "queued (ns)",
               "service (ns)", "drains", "stalls", "BW vs fcfs",
               "queued vs fcfs (ns)"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& s = stats[i];
    const auto& c = *jobs[i].controller;
    const bool is_baseline = c.read_queue_depth == 0;
    const auto* base = baseline.at(jobs[i].device.name + "/" +
                                   jobs[i].profile.name);
    table.add_row(
        {jobs[i].device.name, jobs[i].profile.name, s.sched_policy,
         is_baseline ? "inf" : std::to_string(c.read_queue_depth),
         Table::num(s.bandwidth_gbps(), 2),
         Table::num(s.read_latency_ns.mean(), 1),
         Table::num(s.read_latency_ns.p95(), 1),
         Table::num(s.sched_queue_delay_ns.mean(), 1),
         Table::num(s.service_latency_ns.mean(), 1),
         std::to_string(s.write_drains), std::to_string(s.admit_stalls),
         Table::num(base->bandwidth_gbps() > 0.0
                        ? s.bandwidth_gbps() / base->bandwidth_gbps()
                        : 0.0,
                    3) +
             "x",
         Table::num(s.sched_queue_delay_ns.mean() -
                        base->sched_queue_delay_ns.mean(),
                    1)});
  }
  std::cout << "=== Controller policy x queue-depth matrix ===\n";
  table.print(std::cout);

  // Per-device policy averages over workloads at the default depth
  // (the unbounded baseline cell for fcfs).
  Table summary({"device", "policy", "avg BW (GB/s)", "avg read lat (ns)",
                 "avg queued (ns)"});
  for (const auto& token : device_tokens) {
    const std::string device_name =
        comet::driver::make_device_spec(token).name;
    for (const auto policy :
         {sc::Policy::kFcfs, sc::Policy::kFrFcfs, sc::Policy::kReadFirst}) {
      const int wanted_depth = policy == sc::Policy::kFcfs ? 0 : 32;
      double bw = 0.0, lat = 0.0, queued = 0.0;
      int n = 0;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto& c = *jobs[i].controller;
        if (jobs[i].device.name != device_name || c.policy != policy ||
            c.read_queue_depth != wanted_depth) {
          continue;
        }
        bw += stats[i].bandwidth_gbps();
        lat += stats[i].read_latency_ns.mean();
        queued += stats[i].sched_queue_delay_ns.mean();
        ++n;
      }
      if (n == 0) continue;
      summary.add_row({token, sc::policy_name(policy), Table::num(bw / n, 2),
                       Table::num(lat / n, 1), Table::num(queued / n, 1)});
    }
  }
  std::cout << "\n=== Policy averages (fcfs = unbounded baseline, "
               "reordering policies at depth 32) ===\n";
  summary.print(std::cout);

  std::ofstream json("BENCH_sched.json");
  if (json) {
    namespace cb = comet::bench;
    const int hw_threads = comet::memsim::resolve_run_threads(0);
    std::vector<cb::BenchResult> results;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const auto& c = *jobs[i].controller;
      const std::string depth = c.read_queue_depth == 0
                                    ? "inf"
                                    : std::to_string(c.read_queue_depth);
      cb::BenchResult r;
      r.name = jobs[i].device.name + "/" + jobs[i].profile.name + "/" +
               sc::policy_name(c.policy) + "/d" + depth;
      r.requests = requests_per_cell;
      r.wall_s = cell_seconds[i];
      r.requests_per_s = double(requests_per_cell) / cell_seconds[i];
      r.config = {{"device", cb::json_str(jobs[i].device.name)},
                  {"workload", cb::json_str(jobs[i].profile.name)},
                  {"policy", cb::json_str(sc::policy_name(c.policy))},
                  {"queue_depth", std::to_string(c.read_queue_depth)},
                  {"hw_threads", std::to_string(hw_threads)},
                  {"line_bytes", std::to_string(kLineBytes)},
                  {"seed", "42"}};
      results.push_back(std::move(r));
    }
    cb::write_bench_json(json, "bench_sched", results);
    std::cout << "\nwrote BENCH_sched.json (" << results.size()
              << " cells)\n";
  }
  return 0;
}
