// Regenerates paper Fig. 7: stacked operating-power breakdown of COMET at
// bit densities b = 1, 2 and 4 (COMET-1b / -2b / -4b), plus the Table I
// parameters and the itemized worst-case launch-path loss budget.

#include <iostream>

#include "core/comet_config.hpp"
#include "core/power_model.hpp"
#include "photonics/losses.hpp"
#include "util/table.hpp"

int main() {
  using comet::util::Table;
  const auto losses = comet::photonics::LossParameters::paper();

  Table table_i({"Table I parameter", "value"});
  table_i.add_row({"coupling loss", "1 dB"});
  table_i.add_row(
      {"MR drop loss", Table::num(losses.mr_drop_loss_db, 2) + " dB"});
  table_i.add_row(
      {"MR through loss", Table::num(losses.mr_through_loss_db, 2) + " dB"});
  table_i.add_row(
      {"EO MR drop loss", Table::num(losses.eo_mr_drop_loss_db, 2) + " dB"});
  table_i.add_row({"EO MR through loss",
                   Table::num(losses.eo_mr_through_loss_db, 2) + " dB"});
  table_i.add_row(
      {"propagation loss",
       Table::num(losses.propagation_loss_db_per_cm, 2) + " dB/cm"});
  table_i.add_row(
      {"bending loss",
       Table::num(losses.bending_loss_db_per_90deg, 2) + " dB/90deg"});
  table_i.add_row({"SOA gain", Table::num(losses.soa_gain_db, 1) + " dB"});
  table_i.add_row(
      {"laser wall-plug efficiency",
       Table::num(losses.laser_wall_plug_efficiency * 100, 0) + " %"});
  table_i.add_row(
      {"EO tuning power",
       Table::num(losses.eo_tuning_power_uw_per_nm, 1) + " uW/nm"});
  table_i.add_row({"max power at GST cell",
                   Table::num(losses.max_power_at_cell_mw, 1) + " mW"});
  table_i.add_row(
      {"intra-subarray SOA power",
       Table::num(losses.intra_subarray_soa_power_mw, 1) + " mW"});
  std::cout << "=== Table I: loss & power parameters ===\n";
  table_i.print(std::cout);

  const comet::core::CometConfig configs[] = {
      comet::core::CometConfig::comet_1b(),
      comet::core::CometConfig::comet_2b(),
      comet::core::CometConfig::comet_4b(),
  };

  std::cout << "\n=== Launch-path loss budget (COMET-4b) ===\n";
  {
    const comet::core::CometPowerModel model(configs[2], losses);
    const auto budget = model.launch_path_budget();
    Table loss_table({"path element", "dB each", "count", "total dB"});
    for (const auto& item : budget.items()) {
      loss_table.add_row({item.name, Table::num(item.db_each, 2),
                          Table::num(item.count, 0),
                          Table::num(item.total_db(), 2)});
    }
    loss_table.add_row({"TOTAL", "", "", Table::num(budget.total_db(), 2)});
    loss_table.print(std::cout);
  }

  std::cout << "\n=== Fig. 7: COMET power stacks ===\n";
  Table stacks({"config", "wavelengths", "laser (W)", "SOA (W)",
                "EO tuning (W)", "interface (W)", "TOTAL (W)"});
  for (const auto& config : configs) {
    const comet::core::CometPowerModel model(config, losses);
    const auto stack = model.breakdown();
    stacks.add_row({stack.label, std::to_string(config.wavelengths()),
                    Table::num(stack.component_w("laser"), 2),
                    Table::num(stack.component_w("soa"), 2),
                    Table::num(stack.component_w("eo_tuning"), 4),
                    Table::num(stack.component_w("interface"), 2),
                    Table::num(stack.total_w(), 2)});
  }
  stacks.print(std::cout);
  std::cout << "\nPaper shape: total power drops steeply from COMET-1b to\n"
               "COMET-4b (fewer wavelengths -> less laser + SOA power),\n"
               "which is why b = 4 is the chosen design point.\n";
  return 0;
}
