// Ablation (Sections III.E & IV.A design choices):
//  (1) SOA spacing: the 15.2 dB intra-subarray SOA gain covers 46 rows of
//      0.33 dB EO-MR through loss; sweeping the spacing shows the
//      power/feasibility tradeoff (sparser stages exceed the gain budget).
//  (2) Gain-LUT sizing across bit densities (paper: 5 / 12 / 46 entries).
//  (3) Hidden-vs-serialized write-erase and GST subarray steering — the
//      two controller assumptions COMET's Table II timing rests on.

#include <iostream>

#include "core/comet_memory.hpp"
#include "core/gain_lut.hpp"
#include "memsim/system.hpp"
#include "memsim/trace_gen.hpp"
#include "util/table.hpp"

int main() {
  using comet::util::Table;
  const auto losses = comet::photonics::LossParameters::paper();

  std::cout << "=== (1) SOA spacing sweep (COMET-4b) ===\n";
  Table spacing({"rows per SOA", "span loss (dB)", "within 15.2 dB gain?",
                 "active SOAs", "SOA power (W)"});
  for (const int rows : {23, 34, 46, 58, 69, 92}) {
    auto config = comet::core::CometConfig::comet_4b();
    config.rows_per_soa = rows;
    const double span_loss = rows * losses.eo_mr_through_loss_db;
    const comet::core::CometPowerModel power(config, losses);
    spacing.add_row({std::to_string(rows), Table::num(span_loss, 2),
                     span_loss <= losses.intra_subarray_soa_gain_db ? "yes"
                                                                    : "NO",
                     std::to_string(config.active_soas()),
                     Table::num(power.soa_power_w(), 2)});
  }
  spacing.print(std::cout);
  std::cout << "(paper: 46 rows x 0.33 dB = 15.18 dB, exactly one 15.2 dB "
               "SOA stage)\n\n";

  std::cout << "=== (2) Gain-LUT sizing vs bit density ===\n";
  Table lut_table({"b", "tolerance (dB)", "LUT entries", "paper entries"});
  const int paper_entries[] = {5, 12, 0, 46};
  for (const int b : {1, 2, 4}) {
    auto config = comet::core::CometConfig::comet_4b();
    config.bits_per_cell = b;
    const comet::core::GainLut lut(config, losses);
    lut_table.add_row({std::to_string(b), Table::num(lut.tolerance_db(), 2),
                       std::to_string(lut.entries()),
                       std::to_string(paper_entries[b - 1])});
  }
  lut_table.print(std::cout);

  std::cout << "\n=== (3) Controller assumptions (gcc_like pattern, "
               "saturating arrivals) ===\n";
  auto profile = comet::memsim::profile_by_name("gcc_like");
  profile.avg_interarrival_ns = 0.5;  // saturating arrivals
  const comet::memsim::TraceGenerator gen(profile, 7);
  const auto trace = gen.generate(40000, 128);
  Table assumptions({"variant", "BW (GB/s)", "vs baseline"});
  double baseline_bw = 0.0;
  struct Variant {
    const char* name;
    bool serialize_switch;
    bool serialize_erase;
  };
  const Variant variants[] = {
      {"baseline (both hidden)", false, false},
      {"serialized GST subarray switch", true, false},
      {"serialized write-erase", false, true},
      {"both serialized", true, true},
  };
  for (const auto& v : variants) {
    const auto device = comet::core::CometMemory::device_model(
        comet::core::CometConfig::comet_4b(), losses, v.serialize_switch,
        v.serialize_erase);
    const comet::memsim::MemorySystem system(device);
    const auto stats = system.run(trace, profile.name);
    const double bw = stats.bandwidth_gbps();
    if (baseline_bw == 0.0) baseline_bw = bw;
    assumptions.add_row({v.name, Table::num(bw, 2),
                         Table::num(bw / baseline_bw * 100, 1) + " %"});
  }
  assumptions.print(std::cout);
  std::cout << "\nThe hidden-erase (DyPhase-style pre-reset [19]) and\n"
               "speculative subarray steering assumptions are what let\n"
               "COMET sustain its Table II service rates under writes.\n";
  return 0;
}
