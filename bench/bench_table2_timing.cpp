// Verifies Table II of the paper (architectural timing of the photonic
// memory systems) against the models, then uses google-benchmark to time
// the functional COMET stack itself (line write/read through the full
// material + photonic machinery) — the host-side cost of simulating one
// access, useful for sizing large experiments.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <vector>

#include "core/comet_memory.hpp"
#include "cosmos/cosmos_memory.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

void print_table2() {
  using comet::util::Table;
  const auto losses = comet::photonics::LossParameters::paper();
  const auto comet_d = comet::core::CometMemory::device_model(
      comet::core::CometConfig::comet_4b(), losses);
  const auto cosmos_d = comet::cosmos::cosmos_device_model(
      comet::cosmos::CosmosConfig::paper(), losses);

  Table t({"parameter", "COMET (model)", "COMET (paper)", "COSMOS (model)",
           "COSMOS (paper)"});
  t.add_row({"banks", "4", "4", "16", "8 (Table II) / 16 (Sec IV.B)"});
  t.add_row({"bus width (bits)", "256", "256", "128", "128"});
  t.add_row({"burst length", "4", "4", "8", "8"});
  t.add_row(
      {"read occupancy (ns)",
       Table::num(comet::util::ps_to_ns(comet_d.timing.read_occupancy_ps), 0),
       "10 (+2 MR tuning)",
       Table::num(comet::util::ps_to_ns(cosmos_d.timing.read_occupancy_ps), 0),
       "25 (+ subtractive passes)"});
  t.add_row(
      {"write occupancy (ns)",
       Table::num(comet::util::ps_to_ns(comet_d.timing.write_occupancy_ps), 0),
       "170 (+2 MR tuning)",
       Table::num(comet::util::ps_to_ns(cosmos_d.timing.write_occupancy_ps), 0),
       "1600"});
  t.add_row({"interface delay (ns)",
             Table::num(comet::util::ps_to_ns(comet_d.timing.interface_ps), 0),
             "105",
             Table::num(comet::util::ps_to_ns(cosmos_d.timing.interface_ps), 0),
             "105"});
  t.add_row({"data burst (ns)",
             Table::num(comet::util::ps_to_ns(comet_d.timing.burst_ps), 0),
             "4 x 1",
             Table::num(comet::util::ps_to_ns(cosmos_d.timing.burst_ps), 0),
             "8 x 1"});
  std::cout << "=== Table II: architectural timing ===\n";
  t.print(std::cout);
  std::cout << '\n';
}

void bm_comet_write_line(benchmark::State& state) {
  comet::core::CometMemory memory;
  const auto line = memory.config().line_bytes();
  std::vector<std::uint8_t> data(line, 0xA5);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(memory.write_line(addr, data));
    addr += line;
    if (addr > (1ull << 22)) addr = 0;
  }
}
BENCHMARK(bm_comet_write_line);

void bm_comet_read_line(benchmark::State& state) {
  comet::core::CometMemory memory;
  const auto line = memory.config().line_bytes();
  std::vector<std::uint8_t> data(line, 0x5A), out(line);
  memory.write_line(0, data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(memory.read_line(0, out));
  }
}
BENCHMARK(bm_comet_read_line);

void bm_pack_levels(benchmark::State& state) {
  std::vector<std::uint8_t> data(128, 0xC3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        comet::core::CometMemory::pack_levels(data, 4));
  }
}
BENCHMARK(bm_pack_levels);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
