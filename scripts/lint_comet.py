#!/usr/bin/env python3
"""COMET invariant linter: mechanical enforcement of the repo's laws.

Every PR so far has defended a handful of cross-cutting invariants by
convention only — determinism of the engine layers (the bit-identity
test contract), thread containment (all threading lives in LanePool and
the driver sweep pool), console-silent library code, the PR 6 std::deque
ban on hot-path layers, header hygiene, and the CMake layer DAG. This
linter turns each of those conventions into a machine-checked rule with
file:line diagnostics, so a violation fails CI instead of waiting for a
reviewer to notice.

Rules (select a subset with --rules, list them with --list-rules):

  thread-containment  std::thread / std::jthread / std::async only in
                      memsim/sharded.cpp, driver/sweep.cpp and
                      prof/heartbeat.cpp.
  determinism         no rand()/srand()/std::random_device and no
                      wall-clock (system_clock, time(NULL), ...) inside
                      the engine layers (everything under src/ except
                      driver/): runs must be bit-identical across
                      machines and reruns.
  no-console-io       no std::cout/cerr/clog, printf, puts or
                      fprintf(stdout/stderr) outside src/driver/ —
                      library layers report through return values,
                      SimStats and exceptions, never the console.
  no-deque            no std::deque in the hot-path layers (util,
                      memsim, sched, hybrid, telemetry); PR 6 replaced
                      it with util::RingQueue for a reason.
  pragma-once         every header starts with #pragma once (first
                      non-comment, non-blank line).
  self-include        src/X/foo.cpp includes its own header "X/foo.hpp"
                      first, keeping headers self-contained (the header
                      must compile from what it includes itself).
  layering            #include edges between src/ layers must follow
                      the CMake link DAG (e.g. memsim/sched/hybrid
                      never include driver/).

A finding on one specific line can be waived — with a justification —
by a trailing marker comment on that same line:

    #include <deque>  // comet-lint: allow(no-deque) bounded at 4, cold

Exit status: 0 when clean, 1 when any rule fired, 2 on usage errors.
Stdlib only, so it runs on any CI image with a bare python3.

Usage:
    lint_comet.py                      # lint <repo>/src
    lint_comet.py --root tests/lint_fixture
    lint_comet.py --rules no-deque,layering
"""

import argparse
import os
import re
import sys

# --- The src/ layer DAG, mirroring the comet_layer() calls in
# --- CMakeLists.txt (direct dependencies; the checker takes the
# --- transitive closure, since static-library includes do).
LAYER_DEPS = {
    "util": [],
    "telemetry": ["util"],
    "prof": ["util"],
    "memsim": ["util", "telemetry", "prof"],
    "materials": ["util"],
    "photonics": ["materials"],
    "core": ["photonics", "memsim"],
    "cosmos": ["core"],
    "dram": ["memsim"],
    "sched": ["memsim"],
    "hybrid": ["memsim", "sched"],
    "config": ["memsim", "sched", "hybrid", "prof"],
    "tenant": ["memsim", "sched", "config"],
    "accel": ["memsim"],
    "driver": ["core", "cosmos", "dram", "sched", "hybrid", "config",
               "tenant", "accel"],
}

# Files allowed to spawn threads: the two sanctioned pools plus the
# progress-heartbeat thread (PR 10), which only ever reads atomics.
THREAD_ALLOWLIST = {"memsim/sharded.cpp", "driver/sweep.cpp",
                    "prof/heartbeat.cpp"}

# Layers where std::deque is banned (PR 6: RingQueue on the hot path).
DEQUE_BANNED_LAYERS = {"util", "memsim", "sched", "hybrid", "telemetry"}

# The one layer allowed to talk to the console and the wall clock.
FRONTEND_LAYER = "driver"

WAIVER_RE = re.compile(r"//\s*comet-lint:\s*allow\(([a-z0-9-]+)\)")

# `hardware_concurrency` is a pure query, not a thread spawn; strip it
# before matching so resolve_run_threads() stays legal everywhere.
THREAD_RE = re.compile(
    r"std::(thread|jthread|async)\b(?!::hardware_concurrency)")

DETERMINISM_RES = [
    (re.compile(r"\b(?:std::)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bsystem_clock\b"), "chrono::system_clock"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"), "time()"),
    (re.compile(r"\b(?:gettimeofday|clock_gettime|localtime|gmtime)\s*\("),
     "wall-clock syscall"),
]

CONSOLE_RES = [
    (re.compile(r"\bstd::(cout|cerr|clog)\b"), "std::{}"),
    (re.compile(r"(?<![\w:.])printf\s*\("), "printf"),
    (re.compile(r"\bfprintf\s*\(\s*std(out|err)\b"), "fprintf(std{})"),
    (re.compile(r"(?<![\w:.])puts\s*\("), "puts"),
]

DEQUE_RE = re.compile(r"std::deque\b|#\s*include\s*<deque>")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

# Lines that are entirely comment (the pragma-once scanner skips them).
LINE_COMMENT_RE = re.compile(r"^\s*(//|$)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def transitive_deps():
    closed = {}

    def close(layer):
        if layer not in closed:
            deps = set(LAYER_DEPS[layer])
            for dep in LAYER_DEPS[layer]:
                deps |= close(dep)
            closed[layer] = deps
        return closed[layer]

    for layer in LAYER_DEPS:
        close(layer)
    return closed


ALLOWED_INCLUDES = transitive_deps()


def waived(line, rule):
    return any(m.group(1) == rule for m in WAIVER_RE.finditer(line))


def strip_line_comment(line):
    """Drops a trailing // comment (good enough: the tree holds no
    string literals containing '//' on rule-relevant lines)."""
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


def relpath_in_src(path, src_root):
    return os.path.relpath(path, src_root).replace(os.sep, "/")


def layer_of(rel):
    head = rel.split("/", 1)[0]
    return head if head in LAYER_DEPS else None


def scan_file(path, src_root, rules, out):
    rel = relpath_in_src(path, src_root)
    layer = layer_of(rel)
    with open(path, encoding="utf-8", errors="replace") as f:
        lines = f.read().splitlines()

    def hit(lineno, rule, message):
        if rule in rules and not waived(lines[lineno - 1], rule):
            out.append(Finding(path, lineno, rule, message))

    first_include = None
    for i, raw in enumerate(lines, start=1):
        code = strip_line_comment(raw)
        if not code.strip():
            continue

        if rel not in THREAD_ALLOWLIST and THREAD_RE.search(code):
            hit(i, "thread-containment",
                "thread primitive outside LanePool (memsim/sharded.cpp), "
                "the driver sweep pool (driver/sweep.cpp) and the "
                "progress heartbeat (prof/heartbeat.cpp)")

        if layer != FRONTEND_LAYER:
            for pattern, what in DETERMINISM_RES:
                m = pattern.search(code)
                if m:
                    hit(i, "determinism",
                        f"{what.format(*m.groups('') )} in engine layer "
                        f"'{layer}': engine runs must be bit-identical "
                        "(seeded util::Rng, simulated clocks only)")
            for pattern, what in CONSOLE_RES:
                m = pattern.search(code)
                if m:
                    hit(i, "no-console-io",
                        f"{what.format(*m.groups(''))} in library layer "
                        f"'{layer}' (console output belongs to driver/, "
                        "bench/ and examples/)")

        if layer in DEQUE_BANNED_LAYERS and DEQUE_RE.search(code):
            hit(i, "no-deque",
                f"std::deque in hot-path layer '{layer}' "
                "(use util::RingQueue; see util/ring.hpp)")

        if layer is not None:
            m = INCLUDE_RE.match(code)
            if m:
                target = m.group(1)
                if first_include is None:
                    first_include = (i, target)
                target_layer = layer_of(target)
                if (target_layer is not None and target_layer != layer
                        and target_layer not in ALLOWED_INCLUDES[layer]):
                    hit(i, "layering",
                        f"layer '{layer}' must not include "
                        f"'{target_layer}/' (CMake DAG: {layer} -> "
                        f"{{{', '.join(sorted(ALLOWED_INCLUDES[layer])) or 'nothing'}}})")

    if path.endswith(".hpp") and "pragma-once" in rules:
        lineno, found = pragma_once_line(lines)
        if not found:
            out.append(Finding(path, lineno, "pragma-once",
                               "header must open with #pragma once"))

    if (path.endswith(".cpp") and layer is not None
            and "self-include" in rules):
        own = rel[:-len(".cpp")] + ".hpp"
        if os.path.exists(os.path.join(src_root, own)):
            if first_include is None or first_include[1] != own:
                out.append(Finding(
                    path, first_include[0] if first_include else 1,
                    "self-include",
                    f'first include must be its own header "{own}" '
                    "(keeps headers self-contained)"))


def pragma_once_line(lines):
    """Returns (line_number, ok) for the first non-comment line."""
    in_block = False
    for i, raw in enumerate(lines, start=1):
        line = raw.strip()
        if in_block:
            if "*/" in line:
                line = line.split("*/", 1)[1].strip()
                in_block = False
            else:
                continue
        if line.startswith("/*"):
            in_block = "*/" not in line
            continue
        if LINE_COMMENT_RE.match(line):
            continue
        return i, line.startswith("#pragma once")
    return 1, False


RULES = ["thread-containment", "determinism", "no-console-io", "no-deque",
         "pragma-once", "self-include", "layering"]


def main():
    parser = argparse.ArgumentParser(
        description="COMET invariant linter (see module docstring)")
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repo root containing src/ (default: the checkout this "
        "script lives in)")
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rules to run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule names and exit")
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0

    rules = set(RULES)
    if args.rules:
        rules = set(args.rules.split(","))
        unknown = rules - set(RULES)
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(sorted(unknown))} "
                         f"(use --list-rules)")

    src_root = os.path.join(args.root, "src")
    if not os.path.isdir(src_root):
        parser.error(f"{src_root}: no src/ directory under --root")

    findings = []
    for dirpath, dirnames, filenames in os.walk(src_root):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith((".cpp", ".hpp", ".h", ".cc")):
                scan_file(os.path.join(dirpath, name), src_root, rules,
                          findings)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_comet: {len(findings)} finding(s) across "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
