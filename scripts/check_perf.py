#!/usr/bin/env python3
"""Perf regression gate for the bench_json.hpp schema.

Compares a current bench run against a committed baseline, matching
results by their ``name`` key, and fails (exit 1) when any cell's
``requests_per_s`` dropped by more than the allowed fraction — or when
a baseline cell is missing from the current run (a silently dropped
cell would otherwise read as "no regression"). New cells that only
exist in the current run are reported but never fail: they get gated
once they land in the baseline. Cells that *improved* past the same
threshold are flagged informationally (never failing) — a stale
baseline under-gates every later change, so a refresh is suggested.

Thread-count guard (PR 10): every bench cell records the host's
resolved hardware thread count under ``config.hw_threads``. When the
baseline cell was generated on a host with a different thread count
than the current run, its throughput is not comparable (sharded cells
scale with the core count), so that cell is warned about and skipped
instead of gated. Cells whose baselines predate the field compare as
before.

Report mode (PR 10): ``--report [DIR]`` pairs every
``BASELINE_<x>.json`` with its ``BENCH_<x>.json`` in DIR (default: the
current directory — the layout the CI perf lane creates) and writes a
markdown perf-trajectory table to ``--out`` (default:
``PERF_REPORT.md``). Report mode never fails the build; it is the
visibility artifact, the pairwise gate above is the enforcement.

Usage:
    check_perf.py BASELINE.json CURRENT.json [--max-regression 0.15]
    check_perf.py --report [DIR] [--out PERF_REPORT.md]

Stdlib only, so it runs on any CI image with a bare python3.
"""

import argparse
import glob
import json
import os
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    for key in ("bench", "schema_version", "results"):
        if key not in doc:
            sys.exit(f"{path}: not a bench_json document (missing '{key}')")
    if doc["schema_version"] != 1:
        sys.exit(f"{path}: unsupported schema_version {doc['schema_version']}")
    by_name = {}
    for result in doc["results"]:
        name = result["name"]
        if name in by_name:
            sys.exit(f"{path}: duplicate result name '{name}'")
        by_name[name] = result
    return doc["bench"], by_name


def hw_threads_of(result):
    """The recorded host thread count, or None for pre-PR-10 cells."""
    return result.get("config", {}).get("hw_threads")


def compare_cells(baseline, current, max_regression):
    """Pairs baseline and current cells into comparison rows.

    Each row is a dict with name / base_rps / cur_rps / delta / status,
    where status is one of: ok, regression, improved, missing, new,
    skipped (hw_threads mismatch — note carries the detail).
    """
    rows = []
    for name in sorted(baseline):
        base = baseline[name]
        row = {"name": name, "base_rps": base["requests_per_s"],
               "cur_rps": None, "delta": None, "status": "missing",
               "note": ""}
        if name in current:
            cur = current[name]
            row["cur_rps"] = cur["requests_per_s"]
            base_hw = hw_threads_of(base)
            cur_hw = hw_threads_of(cur)
            if (base_hw is not None and cur_hw is not None
                    and base_hw != cur_hw):
                row["status"] = "skipped"
                row["note"] = (f"hw_threads {base_hw} -> {cur_hw}: "
                               "not comparable")
            else:
                base_rps = row["base_rps"]
                delta = ((row["cur_rps"] - base_rps) / base_rps
                         if base_rps > 0 else 0.0)
                row["delta"] = delta
                if delta < -max_regression:
                    row["status"] = "regression"
                elif delta > max_regression:
                    row["status"] = "improved"
                else:
                    row["status"] = "ok"
        rows.append(row)
    for name in sorted(set(current) - set(baseline)):
        rows.append({"name": name, "base_rps": None,
                     "cur_rps": current[name]["requests_per_s"],
                     "delta": None, "status": "new", "note": ""})
    return rows


def run_gate(args):
    bench_base, baseline = load(args.baseline)
    bench_cur, current = load(args.current)
    if bench_base != bench_cur:
        sys.exit(
            f"bench mismatch: baseline is '{bench_base}', "
            f"current is '{bench_cur}'"
        )

    rows = compare_cells(baseline, current, args.max_regression)
    failures = []
    improvements = []
    skips = []
    width = max((len(r["name"]) for r in rows), default=4)
    print(f"perf gate: {bench_base} "
          f"(max regression {args.max_regression:.0%})")
    print(f"{'cell':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}")
    for row in rows:
        name = row["name"]
        if row["status"] == "missing":
            print(f"{name:<{width}}  {row['base_rps']:>12.0f}  {'MISSING':>12}")
            failures.append(f"{name}: missing from current run")
            continue
        if row["status"] == "new":
            print(f"{name:<{width}}  {'(new)':>12}  {row['cur_rps']:>12.0f}")
            continue
        if row["status"] == "skipped":
            print(f"{name:<{width}}  {row['base_rps']:>12.0f}  "
                  f"{row['cur_rps']:>12.0f}  {'skipped':>8}  << {row['note']}")
            skips.append(f"{name}: {row['note']}")
            continue
        flag = ""
        if row["status"] == "regression":
            flag = "  << REGRESSION"
            failures.append(f"{name}: {row['delta']:+.1%} (allowed -"
                            f"{args.max_regression:.0%})")
        elif row["status"] == "improved":
            flag = "  << improved"
            improvements.append(f"{name}: {row['delta']:+.1%}")
        print(f"{name:<{width}}  {row['base_rps']:>12.0f}  "
              f"{row['cur_rps']:>12.0f}  {row['delta']:>+7.1%}{flag}")

    if skips:
        print(f"\nwarning: {len(skips)} cell(s) skipped — the baseline "
              "was recorded on a host with a different hardware thread "
              "count, so its throughput does not gate this run:")
        for skip in skips:
            print(f"  ~ {skip}")
    if improvements:
        # Informational only: a much-faster cell means the committed
        # baseline is stale, and a stale baseline masks future
        # regressions of the same size.
        print(f"\nnote: {len(improvements)} cell(s) improved past "
              f"{args.max_regression:.0%} — consider refreshing the baseline:")
        for improvement in improvements:
            print(f"  + {improvement}")

    if failures:
        print(f"\nFAIL: {len(failures)} cell(s) regressed past the gate:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: no cell regressed past the gate")
    return 0


def markdown_rps(value):
    return f"{value:,.0f}" if value is not None else "—"


STATUS_NOTES = {
    "ok": "",
    "regression": "**regression**",
    "improved": "improved",
    "missing": "**missing from current run**",
    "new": "new cell (ungated until committed)",
}


def run_report(args):
    report_dir = args.report_dir or "."
    pairs = []
    for base_path in sorted(glob.glob(os.path.join(report_dir,
                                                   "BASELINE_*.json"))):
        suffix = os.path.basename(base_path)[len("BASELINE_"):]
        cur_path = os.path.join(report_dir, "BENCH_" + suffix)
        if os.path.exists(cur_path):
            pairs.append((base_path, cur_path))
        else:
            print(f"note: {base_path} has no matching BENCH_{suffix}",
                  file=sys.stderr)
    if not pairs:
        sys.exit(f"{report_dir}: no BASELINE_*.json / BENCH_*.json pairs "
                 "(the CI perf lane renames committed baselines to "
                 "BASELINE_<x>.json before rerunning the benches)")

    lines = ["# COMET perf trajectory", "",
             f"Per-cell replay throughput vs the committed baseline "
             f"(gate threshold {args.max_regression:.0%}; rows whose "
             "baseline host had a different `hw_threads` are skipped, "
             "not gated).", ""]
    for base_path, cur_path in pairs:
        bench_base, baseline = load(base_path)
        bench_cur, current = load(cur_path)
        if bench_base != bench_cur:
            sys.exit(f"bench mismatch: {base_path} is '{bench_base}', "
                     f"{cur_path} is '{bench_cur}'")
        rows = compare_cells(baseline, current, args.max_regression)
        lines.append(f"## {bench_base}")
        lines.append("")
        lines.append("| cell | baseline req/s | current req/s | delta "
                     "| note |")
        lines.append("|---|---:|---:|---:|---|")
        for row in rows:
            delta = (f"{row['delta']:+.1%}" if row["delta"] is not None
                     else "—")
            note = row["note"] or STATUS_NOTES.get(row["status"], "")
            lines.append(f"| {row['name']} | {markdown_rps(row['base_rps'])} "
                         f"| {markdown_rps(row['cur_rps'])} | {delta} "
                         f"| {note} |")
        lines.append("")

    with open(args.out, "w") as f:
        f.write("\n".join(lines))
    print(f"wrote {args.out} ({len(pairs)} bench pair(s))")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="perf regression gate / report (see module docstring)")
    parser.add_argument("baseline", nargs="?",
                        help="baseline bench_json (gate mode)")
    parser.add_argument("current", nargs="?",
                        help="current bench_json (gate mode)")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="max allowed fractional throughput drop per cell "
        "(default: 0.15 = 15%%)",
    )
    parser.add_argument(
        "--report", nargs="?", const=".", default=None, metavar="DIR",
        dest="report_dir",
        help="aggregate BASELINE_*.json / BENCH_*.json pairs in DIR "
        "(default: .) into a markdown trajectory table instead of gating")
    parser.add_argument(
        "--out", default="PERF_REPORT.md",
        help="markdown output path for --report (default: PERF_REPORT.md)")
    args = parser.parse_args()

    if args.report_dir is not None:
        if args.baseline or args.current:
            parser.error("--report takes a directory, not baseline/current "
                         "files")
        return run_report(args)
    if not args.baseline or not args.current:
        parser.error("gate mode needs BASELINE.json and CURRENT.json "
                     "(or use --report)")
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main())
