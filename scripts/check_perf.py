#!/usr/bin/env python3
"""Perf regression gate for the bench_json.hpp schema.

Compares a current bench run against a committed baseline, matching
results by their ``name`` key, and fails (exit 1) when any cell's
``requests_per_s`` dropped by more than the allowed fraction — or when
a baseline cell is missing from the current run (a silently dropped
cell would otherwise read as "no regression"). New cells that only
exist in the current run are reported but never fail: they get gated
once they land in the baseline. Cells that *improved* past the same
threshold are flagged informationally (never failing) — a stale
baseline under-gates every later change, so a refresh is suggested.

Usage:
    check_perf.py BASELINE.json CURRENT.json [--max-regression 0.15]

Stdlib only, so it runs on any CI image with a bare python3.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    for key in ("bench", "schema_version", "results"):
        if key not in doc:
            sys.exit(f"{path}: not a bench_json document (missing '{key}')")
    if doc["schema_version"] != 1:
        sys.exit(f"{path}: unsupported schema_version {doc['schema_version']}")
    by_name = {}
    for result in doc["results"]:
        name = result["name"]
        if name in by_name:
            sys.exit(f"{path}: duplicate result name '{name}'")
        by_name[name] = result
    return doc["bench"], by_name


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="max allowed fractional throughput drop per cell "
        "(default: 0.15 = 15%%)",
    )
    args = parser.parse_args()

    bench_base, baseline = load(args.baseline)
    bench_cur, current = load(args.current)
    if bench_base != bench_cur:
        sys.exit(
            f"bench mismatch: baseline is '{bench_base}', "
            f"current is '{bench_cur}'"
        )

    failures = []
    improvements = []
    width = max((len(n) for n in baseline), default=4)
    print(f"perf gate: {bench_base} "
          f"(max regression {args.max_regression:.0%})")
    print(f"{'cell':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}")
    for name in sorted(baseline):
        base_rps = baseline[name]["requests_per_s"]
        if name not in current:
            print(f"{name:<{width}}  {base_rps:>12.0f}  {'MISSING':>12}")
            failures.append(f"{name}: missing from current run")
            continue
        cur_rps = current[name]["requests_per_s"]
        delta = (cur_rps - base_rps) / base_rps if base_rps > 0 else 0.0
        flag = ""
        if delta < -args.max_regression:
            flag = "  << REGRESSION"
            failures.append(f"{name}: {delta:+.1%} (allowed -"
                            f"{args.max_regression:.0%})")
        elif delta > args.max_regression:
            flag = "  << improved"
            improvements.append(f"{name}: {delta:+.1%}")
        print(f"{name:<{width}}  {base_rps:>12.0f}  {cur_rps:>12.0f}  "
              f"{delta:>+7.1%}{flag}")
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<{width}}  {'(new)':>12}  "
              f"{current[name]['requests_per_s']:>12.0f}")

    if improvements:
        # Informational only: a much-faster cell means the committed
        # baseline is stale, and a stale baseline masks future
        # regressions of the same size.
        print(f"\nnote: {len(improvements)} cell(s) improved past "
              f"{args.max_regression:.0%} — consider refreshing the baseline:")
        for improvement in improvements:
            print(f"  + {improvement}")

    if failures:
        print(f"\nFAIL: {len(failures)} cell(s) regressed past the gate:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: no cell regressed past the gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
