#!/usr/bin/env python3
"""Validate a comet_sim --trace-out Chrome trace-event JSON file.

Stdlib-only, used by the cli_telemetry ctest and the CI smoke step.
Checks the structural contract Perfetto / chrome://tracing rely on:

  * the file is well-formed JSON with "displayTimeUnit" and a
    non-empty "traceEvents" list;
  * every event carries a phase, and the phases are ones we emit
    (M metadata, X complete, b/e async queued spans, i instants);
  * "X" timestamps are monotonically non-decreasing per (pid, tid)
    track and every duration is non-negative;
  * every async "b" has a matching "e" with the same (pid, id) and a
    timestamp >= its begin;
  * the explicit truncation record is present exactly when expected
    (--expect-truncated), and absent otherwise.

Exit 0 on success; exit 1 with a diagnostic on the first violation.
"""

from __future__ import annotations

import argparse
import collections
import json
import sys


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to the Chrome trace JSON")
    parser.add_argument(
        "--expect-truncated",
        action="store_true",
        help="require the explicit trace-truncated record (a capped run)",
    )
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="minimum number of non-metadata events (default 1)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot load {args.trace}: {err}")

    if not isinstance(doc, dict):
        fail("top level is not a JSON object")
    if doc.get("displayTimeUnit") not in ("ns", "ms"):
        fail(f"bad displayTimeUnit: {doc.get('displayTimeUnit')!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing, not a list, or empty")

    allowed_phases = {"M", "X", "b", "e", "i"}
    last_ts = {}  # (pid, tid) -> last X ts
    open_spans = collections.Counter()  # (pid, id) -> balance
    span_begin_ts = {}  # (pid, id) -> ts of the open begin
    payload_events = 0
    truncated_records = []

    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            fail(f"{where}: not an object")
        phase = event.get("ph")
        if phase not in allowed_phases:
            fail(f"{where}: unexpected phase {phase!r}")
        if "pid" not in event:
            fail(f"{where}: missing pid")
        if phase == "M":
            continue
        payload_events += 1
        timestamp = event.get("ts")
        if not isinstance(timestamp, (int, float)) or timestamp < 0:
            fail(f"{where}: bad ts {timestamp!r}")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                fail(f"{where}: bad dur {duration!r}")
            track = (event["pid"], event.get("tid"))
            if timestamp < last_ts.get(track, 0):
                fail(
                    f"{where}: ts {timestamp} goes backwards on track "
                    f"pid={track[0]} tid={track[1]} (last {last_ts[track]})"
                )
            last_ts[track] = timestamp
        elif phase in ("b", "e"):
            key = (event["pid"], event.get("id"))
            if key[1] is None:
                fail(f"{where}: async event without id")
            if phase == "b":
                if open_spans[key] > 0:
                    fail(f"{where}: nested begin for pid={key[0]} id={key[1]}")
                open_spans[key] += 1
                span_begin_ts[key] = timestamp
            else:
                if open_spans[key] != 1:
                    fail(f"{where}: end without begin for pid={key[0]} id={key[1]}")
                open_spans[key] -= 1
                if timestamp < span_begin_ts[key]:
                    fail(
                        f"{where}: span pid={key[0]} id={key[1]} ends at "
                        f"{timestamp} before its begin {span_begin_ts[key]}"
                    )
        elif phase == "i":
            if event.get("name") == "trace-truncated":
                truncated_records.append(event)

    unbalanced = [key for key, balance in open_spans.items() if balance != 0]
    if unbalanced:
        fail(f"{len(unbalanced)} queued span(s) never ended: {unbalanced[:5]}")
    if payload_events < args.min_events:
        fail(f"only {payload_events} events, expected >= {args.min_events}")

    if args.expect_truncated:
        if not truncated_records:
            fail("expected a trace-truncated record, found none")
        record = truncated_records[0]
        dropped = record.get("args", {}).get("dropped_events")
        if not isinstance(dropped, int) or dropped <= 0:
            fail(f"trace-truncated record has bad dropped_events: {dropped!r}")
        if record.get("s") != "g":
            fail("trace-truncated record is not global scope")
    elif truncated_records:
        fail("unexpected trace-truncated record in an uncapped trace")

    print(
        f"validate_trace: OK: {payload_events} events, "
        f"{len(last_ts)} tracks, truncated={bool(truncated_records)}"
    )


if __name__ == "__main__":
    main()
