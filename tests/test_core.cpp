#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/address_mapping.hpp"
#include "core/bank.hpp"
#include "core/comet_config.hpp"
#include "core/comet_memory.hpp"
#include "core/gain_lut.hpp"
#include "core/opcm_cell.hpp"
#include "core/power_model.hpp"
#include "core/subarray.hpp"
#include "util/rng.hpp"

namespace cc = comet::core;
namespace cm = comet::materials;
namespace cp = comet::photonics;

// ------------------------------------------------------------- config

TEST(CometConfig, PaperGeometry4b) {
  const auto c = cc::CometConfig::comet_4b();
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.banks, 4);
  EXPECT_EQ(c.subarrays, 4096);
  EXPECT_EQ(c.rows_per_subarray, 512);
  EXPECT_EQ(c.cols_per_subarray, 256);
  EXPECT_EQ(c.bits_per_cell, 4);
  // (B x S_r x M_r x M_c x b) = 8.59 Gbit per chip.
  EXPECT_EQ(c.bits_per_chip(), 4ull * 4096 * 512 * 256 * 4);
}

TEST(CometConfig, BitDensitySweepKeepsLineCapacity) {
  // Section IV.A: M_c halves as b doubles, so a row always stores one
  // 128-byte line and the chip capacity stays constant.
  for (const auto& c :
       {cc::CometConfig::comet_1b(), cc::CometConfig::comet_2b(),
        cc::CometConfig::comet_4b()}) {
    EXPECT_EQ(std::uint64_t(c.cols_per_subarray) * c.bits_per_cell, 1024u);
    EXPECT_EQ(c.bits_per_chip(), cc::CometConfig::comet_4b().bits_per_chip());
  }
}

TEST(CometConfig, LineBytesFromBus) {
  EXPECT_EQ(cc::CometConfig::comet_4b().line_bytes(), 128u);  // 256 b x 4
}

TEST(CometConfig, ActiveSoasMatchPaperFormula) {
  // (B x M_r x M_c) / 46 = 4 x 512 x 256 / 46 = 11397.
  EXPECT_EQ(cc::CometConfig::comet_4b().active_soas(), 11397u);
}

TEST(CometConfig, TunedMrsPerAccess) {
  EXPECT_EQ(cc::CometConfig::comet_4b().tuned_mrs_per_access(),
            4ull * 2 * 256);
}

TEST(CometConfig, ValidateRejectsNonSquareSubarrays) {
  auto c = cc::CometConfig::comet_4b();
  c.subarrays = 4095;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(CometConfig, ValidateRejectsBadBits) {
  auto c = cc::CometConfig::comet_4b();
  c.bits_per_cell = 6;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

// ----------------------------------------------------- address mapping

class AddressMapperTest : public ::testing::Test {
 protected:
  cc::AddressMapper mapper_{cc::CometConfig::comet_4b()};
};

TEST_F(AddressMapperTest, PaperEquations) {
  // Row 1000, column 100 with M_r = 512, M_c = 256, sqrt(S_r) = 64:
  // ID1 = 1, ID2 = 0, SubarrayID = 1, ROW = 488, COL = 100.
  const auto m = mapper_.map({.channel = 0, .bank = 2, .row = 1000,
                              .column = 100});
  EXPECT_EQ(m.subarray_id, 1u);
  EXPECT_EQ(m.subarray_row, 488u);
  EXPECT_EQ(m.subarray_col, 100u);
  EXPECT_EQ(m.bank, 2);
}

TEST_F(AddressMapperTest, MapUnmapRoundTrip) {
  comet::util::Rng rng(3);
  const auto& config = mapper_.config();
  for (int i = 0; i < 200; ++i) {
    cc::FlatAddress flat;
    flat.channel = static_cast<int>(rng.next_below(config.channels));
    flat.bank = static_cast<int>(rng.next_below(config.banks));
    flat.row = rng.next_below(config.rows_per_bank());
    flat.column = rng.next_below(config.cols_per_subarray);
    const auto mapped = mapper_.map(flat);
    const auto back = mapper_.unmap(mapped);
    EXPECT_EQ(back.channel, flat.channel);
    EXPECT_EQ(back.bank, flat.bank);
    EXPECT_EQ(back.row, flat.row);
    EXPECT_EQ(back.column, flat.column);
  }
}

TEST_F(AddressMapperTest, DecodeEncodeRoundTrip) {
  comet::util::Rng rng(5);
  const auto line = mapper_.config().line_bytes();
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t addr = rng.next_below(1u << 30) / line * line;
    const auto flat = mapper_.decode(addr);
    EXPECT_EQ(mapper_.encode(flat), addr);
  }
}

TEST_F(AddressMapperTest, ConsecutiveLinesInterleaveChannels) {
  const auto line = mapper_.config().line_bytes();
  const auto a = mapper_.decode(0);
  const auto b = mapper_.decode(line);
  EXPECT_NE(a.channel, b.channel);
}

TEST_F(AddressMapperTest, RowRangeChecked) {
  EXPECT_THROW(
      mapper_.map({.channel = 0, .bank = 0,
                   .row = mapper_.config().rows_per_bank(), .column = 0}),
      std::out_of_range);
}

// ------------------------------------------------------------ gain LUT

class GainLutTest : public ::testing::TestWithParam<int> {};

TEST_P(GainLutTest, EntryCountMatchesPaper) {
  auto config = cc::CometConfig::comet_4b();
  config.bits_per_cell = GetParam();
  const cc::GainLut lut(config, cp::LossParameters::paper());
  // Paper Section IV.A: 5 entries (b=1), 12 (b=2), 46 (b=4).
  const int expected = GetParam() == 1 ? 5 : GetParam() == 2 ? 12 : 46;
  EXPECT_EQ(lut.entries(), expected);
}

TEST_P(GainLutTest, ResidualWithinTolerance) {
  auto config = cc::CometConfig::comet_4b();
  config.bits_per_cell = GetParam();
  const cc::GainLut lut(config, cp::LossParameters::paper());
  for (int row = 0; row < config.rows_per_subarray; ++row) {
    const double residual =
        std::abs(lut.gain_db_for_row(row) - lut.row_loss_db(row));
    EXPECT_LE(residual, lut.tolerance_db() * 0.75) << "row " << row;
  }
}

INSTANTIATE_TEST_SUITE_P(BitDensities, GainLutTest,
                         ::testing::Values(1, 2, 4));

TEST(GainLut, RowLossGrowsWithinSpanAndResets) {
  const cc::GainLut lut(cc::CometConfig::comet_4b(),
                        cp::LossParameters::paper());
  EXPECT_DOUBLE_EQ(lut.row_loss_db(0), 0.0);
  EXPECT_NEAR(lut.row_loss_db(45), 45 * 0.33, 1e-9);
  EXPECT_DOUBLE_EQ(lut.row_loss_db(46), 0.0);  // SOA stage resets the level
}

TEST(GainLut, RejectsOutOfRangeRow) {
  const cc::GainLut lut(cc::CometConfig::comet_4b(),
                        cp::LossParameters::paper());
  EXPECT_THROW(lut.row_loss_db(-1), std::out_of_range);
  EXPECT_THROW(lut.gain_db_for_row(512), std::out_of_range);
}

// ----------------------------------------------------------- power

TEST(PowerModel, Comet4bStack) {
  const cc::CometPowerModel model(cc::CometConfig::comet_4b(),
                                  cp::LossParameters::paper());
  const auto stack = model.breakdown();
  // SOA dominates (Section III.E), total ~ 22 W.
  EXPECT_NEAR(stack.total_w(), 22.4, 2.0);
  EXPECT_GT(stack.component_w("soa"), stack.component_w("laser"));
  EXPECT_NEAR(stack.component_w("soa"), 15.96, 0.5);
  EXPECT_LT(stack.component_w("eo_tuning"), 0.05);  // uW-scale per MR
}

TEST(PowerModel, PowerDropsWithBitDensity) {
  const cp::LossParameters losses = cp::LossParameters::paper();
  auto total_w = [&](const cc::CometConfig& cfg) {
    return cc::CometPowerModel(cfg, losses).breakdown().total_w();
  };
  const double p1 = total_w(cc::CometConfig::comet_1b());
  const double p2 = total_w(cc::CometConfig::comet_2b());
  const double p4 = total_w(cc::CometConfig::comet_4b());
  EXPECT_GT(p1, 1.8 * p2);
  EXPECT_GT(p2, 1.8 * p4);
}

TEST(PowerModel, UnknownComponentThrows) {
  const cc::CometPowerModel model(cc::CometConfig::comet_4b(),
                                  cp::LossParameters::paper());
  EXPECT_THROW(model.breakdown().component_w("flux_capacitor"),
               std::invalid_argument);
}

// ----------------------------------------------------------- OPCM cell

class OpcmCellTest : public ::testing::Test {
 protected:
  OpcmCellTest()
      : optics_(cm::PcmMaterial::get(cm::Pcm::kGst),
                cp::GstCellGeometry::paper()),
        thermal_(cm::GstThermalCalibration::calibrated()),
        table_(cm::MlcLevelTable::build(
            4, cm::ProgrammingMode::kAmorphousReset, thermal_,
            optics_.transmission_curve())) {}

  cp::GstCell optics_;
  cm::PcmThermalModel thermal_;
  cm::MlcLevelTable table_;
};

TEST_F(OpcmCellTest, ProgramReadRoundTrip) {
  cc::OpcmCell cell(&table_);
  for (int level = 0; level < 16; ++level) {
    const auto op = cell.program(level);
    EXPECT_GT(op.energy_pj, 0.0);
    EXPECT_EQ(cell.read(), level);
  }
}

TEST_F(OpcmCellTest, ReadSurvivesCompensatedLoss) {
  cc::OpcmCell cell(&table_);
  cell.program(7);
  // 5 dB of loss fully compensated by 5 dB of gain.
  EXPECT_EQ(cell.read(5.0, 5.0), 7);
}

TEST_F(OpcmCellTest, UncompensatedLossCorruptsRead) {
  cc::OpcmCell cell(&table_);
  cell.program(3);
  EXPECT_NE(cell.read(3.0, 0.0), 3);  // 3 dB >> 0.28 dB tolerance at b=4
}

TEST_F(OpcmCellTest, DriftWalksLevels) {
  cc::OpcmCell cell(&table_);
  cell.program(5);
  cell.drift(0.08);  // the paper's crosstalk-shift magnitude
  EXPECT_NE(cell.read(), 5);
}

TEST_F(OpcmCellTest, RejectsBadLevel) {
  cc::OpcmCell cell(&table_);
  EXPECT_THROW(cell.program(16), std::out_of_range);
  EXPECT_THROW(cell.program(-1), std::out_of_range);
}

// ----------------------------------------------------------- subarray

class SubarrayTest : public ::testing::Test {
 protected:
  SubarrayTest()
      : config_(small_config()),
        optics_(cm::PcmMaterial::get(cm::Pcm::kGst),
                cp::GstCellGeometry::paper()),
        thermal_(cm::GstThermalCalibration::calibrated()),
        table_(cm::MlcLevelTable::build(
            config_.bits_per_cell, cm::ProgrammingMode::kAmorphousReset,
            thermal_, optics_.transmission_curve())),
        lut_(config_, cp::LossParameters::paper()),
        subarray_(config_, &table_, &lut_) {}

  static cc::CometConfig small_config() {
    auto c = cc::CometConfig::comet_4b();
    c.rows_per_subarray = 64;
    c.cols_per_subarray = 16;
    c.subarrays = 16;  // 4 x 4 grid
    return c;
  }

  cc::CometConfig config_;
  cp::GstCell optics_;
  cm::PcmThermalModel thermal_;
  cm::MlcLevelTable table_;
  cc::GainLut lut_;
  cc::Subarray subarray_;
};

TEST_F(SubarrayTest, WriteReadRowRoundTrip) {
  comet::util::Rng rng(17);
  std::vector<int> levels(16);
  for (int row : {0, 13, 45, 63}) {
    for (auto& l : levels) l = static_cast<int>(rng.next_below(16));
    const auto wr = subarray_.write_row(row, levels);
    EXPECT_GT(wr.latency_ns, config_.mr_tuning_ns);
    const auto rd = subarray_.read_row(row);
    EXPECT_TRUE(rd.correct) << "row " << row;
    EXPECT_EQ(rd.levels, levels) << "row " << row;
  }
}

TEST_F(SubarrayTest, EveryRowReadsCorrectly) {
  // Property: the SOA/LUT chain keeps ALL rows inside tolerance.
  std::vector<int> levels(16);
  for (int row = 0; row < 64; ++row) {
    for (std::size_t c = 0; c < levels.size(); ++c) {
      levels[c] = static_cast<int>((row + c) % 16);
    }
    subarray_.write_row(row, levels);
    EXPECT_TRUE(subarray_.read_row(row).correct) << "row " << row;
  }
}

TEST_F(SubarrayTest, RowLatencyTracksSlowestLevel) {
  std::vector<int> fast(16, 0), slow(16, 0);
  slow[7] = 15;  // deepest level dominates the row write
  const auto t_fast = subarray_.write_row(0, fast).latency_ns;
  const auto t_slow = subarray_.write_row(1, slow).latency_ns;
  EXPECT_GT(t_slow, t_fast);
  // Row latency = MR tuning + reset pulse + slowest level's write pulse.
  EXPECT_NEAR(t_slow,
              config_.mr_tuning_ns + table_.reset().latency_ns +
                  table_.levels()[15].write_latency_ns,
              1e-9);
}

TEST_F(SubarrayTest, InjectedDriftDetected) {
  std::vector<int> levels(16, 8);
  subarray_.write_row(5, levels);
  subarray_.cell(5, 3).drift(0.08);
  const auto rd = subarray_.read_row(5);
  EXPECT_FALSE(rd.correct);
}

TEST_F(SubarrayTest, RejectsWrongRowWidth) {
  std::vector<int> too_few(3, 0);
  EXPECT_THROW(subarray_.write_row(0, too_few), std::invalid_argument);
}

// ----------------------------------------------------------- bank

TEST_F(SubarrayTest, BankSteeringChargesSwitchOnce) {
  cc::Bank bank(config_, &table_, &lut_, cp::LossParameters::paper());
  std::vector<int> levels(16, 4);
  const auto first = bank.write_row(0, 0, levels);   // cold steer: +100 ns
  const auto second = bank.write_row(0, 1, levels);  // already coupled
  EXPECT_NEAR(first.latency_ns - second.latency_ns, 100.0, 1e-9);
  const auto third = bank.write_row(3, 0, levels);   // re-steer: +100 ns
  EXPECT_NEAR(third.latency_ns, first.latency_ns, 1e-9);
  EXPECT_EQ(bank.coupled_subarray(), 3);
  EXPECT_EQ(bank.materialized_subarrays(), 2u);
}

TEST_F(SubarrayTest, BankRejectsBadSubarray) {
  cc::Bank bank(config_, &table_, &lut_, cp::LossParameters::paper());
  EXPECT_THROW(bank.subarray(16), std::out_of_range);
}

// ----------------------------------------------------------- memory

namespace {

cc::CometConfig tiny_memory_config() {
  auto c = cc::CometConfig::comet_4b();
  c.subarrays = 16;
  c.rows_per_subarray = 32;
  c.channels = 2;
  return c;
}

}  // namespace

TEST(CometMemory, PackUnpackRoundTrip) {
  comet::util::Rng rng(23);
  for (const int bits : {1, 2, 4}) {
    std::vector<std::uint8_t> bytes(64);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto levels = cc::CometMemory::pack_levels(bytes, bits);
    EXPECT_EQ(levels.size(), bytes.size() * (8u / bits));
    std::vector<std::uint8_t> back(bytes.size());
    cc::CometMemory::unpack_levels(levels, bits, back);
    EXPECT_EQ(back, bytes);
  }
}

TEST(CometMemory, PackRejectsBadBits) {
  std::vector<std::uint8_t> bytes(8);
  EXPECT_THROW(cc::CometMemory::pack_levels(bytes, 3), std::invalid_argument);
}

TEST(CometMemory, LineWriteReadRoundTrip) {
  cc::CometMemory memory(tiny_memory_config());
  const auto line = memory.config().line_bytes();
  comet::util::Rng rng(29);
  for (int i = 0; i < 16; ++i) {
    std::vector<std::uint8_t> data(line), out(line);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    const std::uint64_t addr = std::uint64_t(i) * line;
    const auto wr = memory.write_line(addr, data);
    EXPECT_GT(wr.latency_ns, memory.config().interface_ns);
    const auto rd = memory.read_line(addr, out);
    EXPECT_TRUE(rd.correct);
    EXPECT_EQ(out, data);
  }
}

TEST(CometMemory, RejectsUnalignedAndWrongSize) {
  cc::CometMemory memory(tiny_memory_config());
  const auto line = memory.config().line_bytes();
  std::vector<std::uint8_t> data(line), small(line - 1);
  EXPECT_THROW(memory.write_line(1, data), std::invalid_argument);
  EXPECT_THROW(memory.write_line(0, small), std::invalid_argument);
  std::vector<std::uint8_t> out(line - 1);
  EXPECT_THROW(memory.read_line(0, out), std::invalid_argument);
}

TEST(CometMemory, DeviceModelMatchesTableII) {
  const auto d = cc::CometMemory::device_model(
      cc::CometConfig::comet_4b(), cp::LossParameters::paper());
  EXPECT_EQ(d.name, "COMET-4b");
  EXPECT_EQ(d.timing.read_occupancy_ps, 12000u);   // 2 + 10 ns
  EXPECT_EQ(d.timing.write_occupancy_ps, 172000u); // 2 + 170 ns
  EXPECT_EQ(d.timing.interface_ps, 105000u);
  EXPECT_EQ(d.timing.burst_ps, 4000u);             // 4 x 1 ns
  EXPECT_EQ(d.timing.line_bytes, 128u);
  EXPECT_EQ(d.timing.refresh_interval_ps, 0u);     // non-volatile
  EXPECT_NO_THROW(d.validate());
}

TEST(CometMemory, DeviceModelAblationKnobs) {
  const auto losses = cp::LossParameters::paper();
  const auto base = cc::CometMemory::device_model(
      cc::CometConfig::comet_4b(), losses);
  const auto serialized = cc::CometMemory::device_model(
      cc::CometConfig::comet_4b(), losses, true, true);
  EXPECT_EQ(base.timing.region_switch_ps, 0u);
  EXPECT_EQ(base.timing.write_tail_ps, 0u);
  EXPECT_EQ(serialized.timing.region_switch_ps, 100000u);
  EXPECT_EQ(serialized.timing.write_tail_ps, 210000u);
}

TEST(CometMemory, DeviceModelEnergyFromDevicePhysics) {
  const auto d = cc::CometMemory::device_model(
      cc::CometConfig::comet_4b(), cp::LossParameters::paper());
  // Read pulse: 256 cells x 1 mW x 10 ns / 1024 bits = 2.5 pJ/bit.
  EXPECT_NEAR(d.energy.read_pj_per_bit, 2.5, 0.1);
  // Writes carry the reset + programming energy: order 100 pJ/bit.
  EXPECT_GT(d.energy.write_pj_per_bit, 50.0);
  EXPECT_LT(d.energy.write_pj_per_bit, 200.0);
  // Background = the Fig. 7 stack.
  EXPECT_NEAR(d.energy.background_power_w, 22.4, 2.0);
}
