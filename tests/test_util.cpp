#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/interp.hpp"
#include "util/ring.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace cu = comet::util;

// ---------------------------------------------------------------- units

TEST(Units, DbRoundTrip) {
  for (const double db : {-30.0, -3.0, 0.0, 0.2, 3.01, 15.2, 20.0}) {
    EXPECT_NEAR(cu::ratio_to_db(cu::db_to_ratio(db)), db, 1e-12);
  }
}

TEST(Units, DbmKnownValues) {
  EXPECT_NEAR(cu::mw_to_dbm(1.0), 0.0, 1e-12);
  EXPECT_NEAR(cu::mw_to_dbm(5.0), 6.9897, 1e-4);
  EXPECT_NEAR(cu::dbm_to_mw(10.0), 10.0, 1e-12);
  EXPECT_NEAR(cu::dbm_to_w(30.0), 1.0, 1e-12);
}

TEST(Units, LossTransmissionInverse) {
  EXPECT_NEAR(cu::transmission_to_loss_db(0.5), 3.0103, 1e-4);
  EXPECT_NEAR(cu::loss_db_to_transmission(3.0103), 0.5, 1e-4);
  EXPECT_NEAR(cu::loss_db_to_transmission(0.0), 1.0, 1e-12);
}

TEST(Units, WavelengthFrequency) {
  const double f = cu::wavelength_nm_to_hz(1550.0);
  EXPECT_NEAR(f, 193.414e12, 0.01e12);
  EXPECT_NEAR(cu::hz_to_wavelength_nm(f), 1550.0, 1e-9);
}

TEST(Units, PhotonEnergyAt1550) {
  // ~0.8 eV photon in the C-band.
  EXPECT_NEAR(cu::photon_energy_j(1550.0) / 1.602176634e-19, 0.8, 0.01);
}

TEST(Units, TimeConversions) {
  EXPECT_EQ(cu::ns_to_ps(2.0), 2000u);
  EXPECT_DOUBLE_EQ(cu::ps_to_ns(1500), 1.5);
  EXPECT_DOUBLE_EQ(cu::ps_to_s(1'000'000'000'000ULL), 1.0);
}

TEST(Units, EnergyHelpers) {
  EXPECT_DOUBLE_EQ(cu::energy_pj(5.0, 56.0), 280.0);  // 5 mW x 56 ns
  EXPECT_DOUBLE_EQ(cu::epb_pj_per_bit(1.0, 1e12), 1.0);
}

// ---------------------------------------------------------------- rng

TEST(Rng, Deterministic) {
  cu::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  cu::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  cu::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BoundedBelow) {
  cu::Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  cu::Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliMean) {
  cu::Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, GaussianMoments) {
  cu::Rng rng(17);
  cu::RunningStats st;
  for (int i = 0; i < 100000; ++i) st.add(rng.next_gaussian());
  EXPECT_NEAR(st.mean(), 0.0, 0.02);
  EXPECT_NEAR(st.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  cu::Rng rng(19);
  cu::RunningStats st;
  for (int i = 0; i < 100000; ++i) st.add(rng.next_exponential(4.0));
  EXPECT_NEAR(st.mean(), 4.0, 0.1);
}

TEST(Rng, ZipfSkewsLow) {
  cu::Rng rng(23);
  int first_bucket = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) first_bucket += (rng.next_zipf(100, 1.2) == 0);
  // Rank 0 should dominate under s = 1.2 (>= 15 % of mass for n=100).
  EXPECT_GT(first_bucket, n * 15 / 100);
}

TEST(Rng, ZipfZeroExponentIsUniformish) {
  cu::Rng rng(29);
  int first_bucket = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) first_bucket += (rng.next_zipf(10, 0.0) == 0);
  EXPECT_NEAR(first_bucket / double(n), 0.1, 0.02);
}

// ---------------------------------------------------------------- interp

TEST(LinearTable, InterpolatesAndClamps) {
  cu::LinearTable t({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
  EXPECT_DOUBLE_EQ(t(0.5), 5.0);
  EXPECT_DOUBLE_EQ(t(1.5), 25.0);
  EXPECT_DOUBLE_EQ(t(-1.0), 0.0);   // clamp low
  EXPECT_DOUBLE_EQ(t(3.0), 40.0);   // clamp high
}

TEST(LinearTable, RejectsBadInput) {
  EXPECT_THROW(cu::LinearTable({0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(cu::LinearTable({0.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(cu::LinearTable({0.0, 1.0}, {1.0}), std::invalid_argument);
}

TEST(LinearTable, Inverse) {
  cu::LinearTable t({0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
  EXPECT_DOUBLE_EQ(t.inverse(5.0), 0.5);
  EXPECT_DOUBLE_EQ(t.inverse(25.0), 1.5);
}

TEST(Rk4, ExponentialDecay) {
  // dy/dt = -y, y(0)=1 -> y(1) = 1/e.
  const double y = cu::rk4([](double, double v) { return -v; }, 1.0, 0.0,
                           0.01, 100);
  EXPECT_NEAR(y, std::exp(-1.0), 1e-8);
}

TEST(Linspace, EndpointsAndCount) {
  const auto v = cu::linspace(1530.0, 1565.0, 36);
  ASSERT_EQ(v.size(), 36u);
  EXPECT_DOUBLE_EQ(v.front(), 1530.0);
  EXPECT_DOUBLE_EQ(v.back(), 1565.0);
  EXPECT_NEAR(v[1] - v[0], 1.0, 1e-12);
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, KnownSequence) {
  cu::RunningStats st;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_DOUBLE_EQ(st.variance(), 4.0);
  EXPECT_DOUBLE_EQ(st.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
  EXPECT_DOUBLE_EQ(st.sum(), 40.0);
  EXPECT_EQ(st.count(), 8u);
}

TEST(RunningStats, EmptyIsSafe) {
  cu::RunningStats st;
  EXPECT_DOUBLE_EQ(st.mean(), 0.0);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
  EXPECT_DOUBLE_EQ(st.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(st.p95(), 0.0);
}

TEST(RunningStats, PercentileOfConstantStreamIsExact) {
  // Min/max clamping makes single-value and constant streams exact
  // despite the log bucketing.
  cu::RunningStats st;
  st.add(42.5);
  EXPECT_DOUBLE_EQ(st.p50(), 42.5);
  for (int i = 0; i < 100; ++i) st.add(42.5);
  EXPECT_DOUBLE_EQ(st.p50(), 42.5);
  EXPECT_DOUBLE_EQ(st.p99(), 42.5);
  EXPECT_DOUBLE_EQ(st.percentile(0.0), 42.5);
  EXPECT_DOUBLE_EQ(st.percentile(1.0), 42.5);
}

TEST(RunningStats, PercentilesApproximateUniformSamples) {
  cu::RunningStats st;
  for (int i = 1; i <= 1000; ++i) st.add(double(i));
  // Log-bucket resolution is 2^(1/8): ~±4.5% relative error.
  EXPECT_NEAR(st.p50(), 500.0, 500.0 * 0.05);
  EXPECT_NEAR(st.p95(), 950.0, 950.0 * 0.05);
  EXPECT_NEAR(st.p99(), 990.0, 990.0 * 0.05);
  EXPECT_LE(st.p50(), st.p95());
  EXPECT_LE(st.p95(), st.p99());
  EXPECT_GE(st.p50(), st.min());
  EXPECT_LE(st.p99(), st.max());
}

TEST(RunningStats, PercentileHandlesZerosAndUnderflow) {
  cu::RunningStats st;
  for (int i = 0; i < 10; ++i) st.add(0.0);
  st.add(100.0);
  // The underflow bucket collapses to min().
  EXPECT_DOUBLE_EQ(st.p50(), 0.0);
  EXPECT_DOUBLE_EQ(st.percentile(1.0), 100.0);
}

TEST(RunningStats, MergeCoversPercentiles) {
  // merge() must behave as if every sample of `other` had been added
  // here — including the percentile histogram.
  cu::RunningStats a, b, combined;
  for (int i = 1; i <= 400; ++i) {
    a.add(double(i));
    combined.add(double(i));
  }
  for (int i = 401; i <= 1000; ++i) {
    b.add(double(i));
    combined.add(double(i));
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.p50(), combined.p50());
  EXPECT_DOUBLE_EQ(a.p95(), combined.p95());
  EXPECT_DOUBLE_EQ(a.p99(), combined.p99());

  // Merging into an empty accumulator copies the histogram wholesale.
  cu::RunningStats empty;
  empty.merge(combined);
  EXPECT_DOUBLE_EQ(empty.p95(), combined.p95());
  // Merging an empty accumulator changes nothing.
  const double before = combined.p95();
  combined.merge(cu::RunningStats{});
  EXPECT_DOUBLE_EQ(combined.p95(), before);
}

TEST(Histogram, BucketsAndPercentile) {
  cu::Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.bucket_count(0), 10u);
  EXPECT_NEAR(h.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(0.95), 95.0, 1.5);
}

TEST(Histogram, OverUnderflow) {
  cu::Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(11.0);
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(cu::Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(cu::Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// ---------------------------------------------------------------- table

TEST(Table, AlignedOutputContainsCells) {
  cu::Table t({"arch", "bw"});
  t.add_row({"COMET", "123.4"});
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("COMET"), std::string::npos);
  EXPECT_NE(s.find("123.4"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, CsvQuotesCommas) {
  cu::Table t({"a"});
  t.add_row({"x,y"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  cu::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(cu::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(cu::Table::sci(12345.0, 2), "1.23e+04");
}

// ------------------------------------------------------ RingQueue

TEST(RingQueue, FifoAcrossWraparound) {
  comet::util::RingQueue<int> q(4);  // power-of-two rounding from ctor
  int next_in = 0;
  int next_out = 0;
  // Push/pop in a pattern that forces head_ to wrap many times without
  // ever growing the allocation.
  for (int round = 0; round < 100; ++round) {
    while (q.size() < 3) q.push_back(next_in++);
    while (q.size() > 1) {
      EXPECT_EQ(q.front(), next_out);
      q.pop_front();
      ++next_out;
    }
  }
  EXPECT_LE(q.capacity(), 8u);  // never grew past the initial reserve
}

TEST(RingQueue, GrowsPreservingOrder) {
  comet::util::RingQueue<int> q;
  // Offset the head first so the grow copy has to unwrap a wrapped run.
  for (int i = 0; i < 6; ++i) q.push_back(i);
  for (int i = 0; i < 5; ++i) q.pop_front();
  for (int i = 6; i < 40; ++i) q.push_back(i);  // forces several grows
  ASSERT_EQ(q.size(), 35u);
  for (int i = 0; i < 35; ++i) EXPECT_EQ(q[i], i + 5);
}

TEST(RingQueue, IndexingCountsFromFront) {
  comet::util::RingQueue<int> q;
  for (int i = 0; i < 4; ++i) q.push_back(i * 10);
  q.pop_front();
  EXPECT_EQ(q[0], 10);
  EXPECT_EQ(q[2], 30);
  q[1] = 99;
  q.pop_front();
  EXPECT_EQ(q.front(), 99);
}

TEST(RingQueue, EraseAtShiftsOnlyElementsAheadOfVictim) {
  comet::util::RingQueue<int> q;
  for (int i = 0; i < 6; ++i) q.push_back(i);
  q.erase_at(3);  // remove value 3
  ASSERT_EQ(q.size(), 5u);
  const int expected[] = {0, 1, 2, 4, 5};
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(q[i], expected[i]);
  q.erase_at(0);  // victim at the front degenerates to pop_front
  EXPECT_EQ(q.front(), 1);
}

TEST(RingQueue, ClearResetsToEmpty) {
  comet::util::RingQueue<int> q(2);
  q.push_back(1);
  q.push_back(2);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  q.push_back(7);
  EXPECT_EQ(q.front(), 7);
}
