// Sharded per-channel parallel replay tests. The load-bearing gate is
// bit-identity: for every registry device (flat and hybrid), every
// controller option (none, fcfs, frfcfs, read-first with bounded
// queues, so admit stalls and write drains actually fire) and thread
// counts {1, 2, 8}, the sharded engines must reproduce the serial
// result field for field — exact ==, no tolerances, on every counter,
// every latency distribution moment and every energy sum. Plus the
// LanePool mechanics: inline mode, worker-error propagation, and the
// run_threads resolution rules.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "config/device_spec.hpp"
#include "driver/registry.hpp"
#include "memsim/sharded.hpp"
#include "memsim/system.hpp"
#include "memsim/trace_gen.hpp"
#include "sched/controller.hpp"

namespace ms = comet::memsim;
namespace sc = comet::sched;
namespace cu = comet::util;
namespace dr = comet::driver;

namespace {

/// Exact comparison of every SimStats field, scheduler breakdown
/// included. Any drift — a reordered merge, a lost request, a
/// float-summation order change — fails here.
void expect_identical(const ms::SimStats& a, const ms::SimStats& b,
                      const std::string& label) {
  EXPECT_EQ(a.device_name, b.device_name) << label;
  EXPECT_EQ(a.workload_name, b.workload_name) << label;
  EXPECT_EQ(a.reads, b.reads) << label;
  EXPECT_EQ(a.writes, b.writes) << label;
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << label;
  EXPECT_EQ(a.span_ps, b.span_ps) << label;
  const auto same_dist = [&](const cu::RunningStats& x,
                             const cu::RunningStats& y, const char* which) {
    EXPECT_EQ(x.count(), y.count()) << label << " " << which;
    EXPECT_EQ(x.mean(), y.mean()) << label << " " << which;
    EXPECT_EQ(x.stddev(), y.stddev()) << label << " " << which;
    EXPECT_EQ(x.min(), y.min()) << label << " " << which;
    EXPECT_EQ(x.max(), y.max()) << label << " " << which;
    EXPECT_EQ(x.sum(), y.sum()) << label << " " << which;
    EXPECT_EQ(x.p50(), y.p50()) << label << " " << which;
    EXPECT_EQ(x.p95(), y.p95()) << label << " " << which;
    EXPECT_EQ(x.p99(), y.p99()) << label << " " << which;
  };
  same_dist(a.read_latency_ns, b.read_latency_ns, "read");
  same_dist(a.write_latency_ns, b.write_latency_ns, "write");
  same_dist(a.queue_delay_ns, b.queue_delay_ns, "queue");
  EXPECT_EQ(a.dynamic_energy_pj, b.dynamic_energy_pj) << label;
  EXPECT_EQ(a.background_energy_pj, b.background_energy_pj) << label;
  EXPECT_EQ(a.total_bank_busy_ns, b.total_bank_busy_ns) << label;
  EXPECT_EQ(a.hybrid, b.hybrid) << label;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << label;
  EXPECT_EQ(a.cache_misses, b.cache_misses) << label;
  EXPECT_EQ(a.cache_fills, b.cache_fills) << label;
  EXPECT_EQ(a.writebacks, b.writebacks) << label;
  EXPECT_EQ(a.dram_tier_energy_pj, b.dram_tier_energy_pj) << label;
  EXPECT_EQ(a.backend_tier_energy_pj, b.backend_tier_energy_pj) << label;
  EXPECT_EQ(a.scheduled, b.scheduled) << label;
  EXPECT_EQ(a.sched_policy, b.sched_policy) << label;
  same_dist(a.sched_queue_delay_ns, b.sched_queue_delay_ns, "sched-queue");
  same_dist(a.service_latency_ns, b.service_latency_ns, "service");
  same_dist(a.read_queue_occupancy, b.read_queue_occupancy, "read-occ");
  same_dist(a.write_queue_occupancy, b.write_queue_occupancy, "write-occ");
  EXPECT_EQ(a.write_drains, b.write_drains) << label;
  EXPECT_EQ(a.drained_writes, b.drained_writes) << label;
  EXPECT_EQ(a.drain_stalls, b.drain_stalls) << label;
  EXPECT_EQ(a.admit_stalls, b.admit_stalls) << label;
}

/// A shared demand trace: the mixed profile exercises bursts, Zipf-hot
/// jumps and both ops, so transaction queues, drains and both latency
/// distributions all see traffic.
const std::vector<ms::Request>& shared_trace() {
  static const std::vector<ms::Request> trace =
      ms::TraceGenerator(ms::profile_by_name("gcc_like"), 7).generate(2500,
                                                                      64);
  return trace;
}

/// The controller axis under test: no controller, plus every policy
/// with tightly bounded queues (depth 8) so backpressure paths —
/// admit stalls, write-drain hysteresis — execute, not just the happy
/// path.
std::vector<std::optional<sc::ControllerConfig>> controller_axis() {
  std::vector<std::optional<sc::ControllerConfig>> axis;
  axis.push_back(std::nullopt);
  for (const auto& info : sc::known_policies()) {
    axis.push_back(sc::ControllerConfig::with_depths(info.policy, 8, 8));
  }
  return axis;
}

std::string axis_name(const std::optional<sc::ControllerConfig>& controller) {
  return controller ? sc::policy_name(controller->policy) : "none";
}

ms::SimStats run_spec(const dr::DeviceSpec& spec,
                      const std::optional<sc::ControllerConfig>& controller,
                      int threads) {
  const auto engine = spec.make_engine(controller, threads);
  return engine->run(shared_trace(), "gcc_like");
}

void expect_sharded_matches_serial(const std::string& token) {
  const dr::DeviceSpec spec = dr::make_device_spec(token);
  for (const auto& controller : controller_axis()) {
    const ms::SimStats serial = run_spec(spec, controller, 1);
    for (const int threads : {1, 2, 8}) {
      const ms::SimStats sharded = run_spec(spec, controller, threads);
      expect_identical(serial, sharded,
                       token + "/" + axis_name(controller) + "/t" +
                           std::to_string(threads));
    }
  }
}

}  // namespace

// ------------------------------------------------ bit-identity matrix

TEST(ShardedBitIdentity, EveryFlatRegistryDeviceEveryPolicyEveryThreadCount) {
  for (const auto& token : dr::known_devices()) {
    expect_sharded_matches_serial(token);
  }
}

TEST(ShardedBitIdentity, EveryHybridRegistryDeviceEveryPolicyEveryThreadCount) {
  for (const auto& token : dr::known_hybrid_devices()) {
    expect_sharded_matches_serial(token);
  }
}

TEST(ShardedBitIdentity, ShardedEngineMatchesMemorySystemDirectly) {
  const ms::DeviceModel model = dr::make_device("comet");
  const ms::MemorySystem serial(model);
  const ms::SimStats reference = serial.run(shared_trace(), "gcc_like");
  for (const int threads : {1, 2, 8}) {
    const ms::ShardedEngine sharded(model, threads);
    expect_identical(reference, sharded.run(shared_trace(), "gcc_like"),
                     "comet/t" + std::to_string(threads));
  }
}

// --------------------------------------------------------- contracts

TEST(ShardedContract, UnsortedStreamThrowsWithSerialDiagnostics) {
  const ms::ShardedEngine sharded(dr::make_device("comet"), 2);
  std::vector<ms::Request> requests = {
      ms::Request{.id = 0, .arrival_ps = 100, .op = ms::Op::kRead,
                  .address = 0, .size_bytes = 64},
      ms::Request{.id = 1, .arrival_ps = 50, .op = ms::Op::kRead,
                  .address = 4096, .size_bytes = 64},
  };
  try {
    sharded.run(requests, "unsorted");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("index 1"), std::string::npos)
        << e.what();
  }
}

TEST(ShardedContract, ResolveRunThreads) {
  EXPECT_EQ(ms::resolve_run_threads(1), 1);
  EXPECT_EQ(ms::resolve_run_threads(7), 7);
  EXPECT_GE(ms::resolve_run_threads(0), 1);  // hardware concurrency
  EXPECT_THROW(ms::resolve_run_threads(-1), std::invalid_argument);
}

TEST(ShardedContract, RunShardedRejectsLaneCountMismatch) {
  const ms::MemorySystem system(dr::make_device("comet"));  // 8 channels
  std::vector<std::unique_ptr<ms::ShardLane>> lanes;
  lanes.push_back(std::make_unique<ms::SessionLane>(system, "w"));
  ms::VectorSource source(shared_trace());
  EXPECT_THROW(
      ms::run_sharded(system, std::move(lanes), 2, source),
      std::invalid_argument);
}

// ------------------------------------------------------ lane pool

namespace {

/// Lane that fails deterministically partway through its stream.
class ThrowingLane final : public ms::ShardLane {
 public:
  explicit ThrowingLane(std::uint64_t boom_at) : boom_at_(boom_at) {}
  void feed(const ms::Request&) override {
    if (++fed_ == boom_at_) throw std::runtime_error("lane boom");
  }
  ms::ReplaySlice finish_slice() override { return {}; }

 private:
  std::uint64_t boom_at_;
  std::uint64_t fed_ = 0;
};

}  // namespace

TEST(LanePool, WorkerExceptionReachesTheProducer) {
  for (const int threads : {1, 2}) {
    ms::LanePool pool(
        [] {
          std::vector<std::unique_ptr<ms::ShardLane>> lanes;
          lanes.push_back(std::make_unique<ThrowingLane>(100));
          lanes.push_back(std::make_unique<ThrowingLane>(1u << 30));
          return lanes;
        }(),
        threads);
    const auto drive = [&] {
      ms::Request req;
      req.size_bytes = 64;
      // Far more than the failure point, so the error surfaces either
      // during feed (bounded queues backpressure the producer) or at
      // the latest from finish().
      for (int i = 0; i < 200000; ++i) pool.feed(i % 2, req);
      pool.finish();
    };
    EXPECT_THROW(drive(), std::runtime_error) << "threads=" << threads;
  }
}

TEST(LanePool, RejectsEmptyLaneSet) {
  EXPECT_THROW(ms::LanePool({}, 2), std::invalid_argument);
}
