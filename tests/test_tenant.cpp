// Multi-tenant front-end tests: MultiSource merge semantics (borrowed
// and owned), PacedSource determinism and contracts, address-mapping
// disjointness, the fairness arithmetic edge cases from the issue
// (single tenant, zero-request tenants, saturated baselines), the
// two-tenant end-to-end acceptance run, and serial-vs-sharded
// bit-identity of tenant breakdowns for every controller policy —
// fairness variants included.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "config/tenant_spec.hpp"
#include "driver/registry.hpp"
#include "memsim/source.hpp"
#include "memsim/system.hpp"
#include "memsim/trace_gen.hpp"
#include "sched/controller.hpp"
#include "tenant/fairness.hpp"
#include "tenant/multi_source.hpp"
#include "tenant/runner.hpp"

namespace cf = comet::config;
namespace dr = comet::driver;
namespace ms = comet::memsim;
namespace sc = comet::sched;
namespace tn = comet::tenant;

namespace {

std::vector<ms::Request> drain(ms::RequestSource& source) {
  std::vector<ms::Request> out;
  while (auto r = source.next()) out.push_back(*r);
  return out;
}

ms::Request at(std::uint64_t arrival_ps, std::uint64_t id = 0) {
  ms::Request r;
  r.id = id;
  r.arrival_ps = arrival_ps;
  return r;
}

tn::MultiTenantJob two_tenant_job() {
  tn::MultiTenantJob job;
  cf::TenantSpec a;
  a.name = "web";
  a.profile = ms::profile_by_name("gcc_like");
  cf::TenantSpec b;
  b.name = "batch";
  b.profile = ms::profile_by_name("mcf_like");
  b.burstiness = 0.5;
  job.tenants = {a, b};
  job.default_requests = 2000;
  job.seed = 7;
  job.line_bytes = 64;
  return job;
}

}  // namespace

// ----------------------------------------------------- MultiSource

TEST(MultiSourceTest, MergesByArrivalAndRestampsIds) {
  const std::vector<ms::Request> a = {at(10, 100), at(30, 101), at(50, 102)};
  const std::vector<ms::Request> b = {at(20, 200), at(30, 201), at(60, 202)};
  ms::VectorSource sa(a);
  ms::VectorSource sb(b);
  tn::MultiSource merged(std::vector<ms::RequestSource*>{&sa, &sb});
  const auto out = drain(merged);
  ASSERT_EQ(out.size(), 6u);
  const std::vector<std::uint64_t> arrivals = {10, 20, 30, 30, 50, 60};
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].arrival_ps, arrivals[i]) << i;
    // Ids are re-stamped globally sequential, not inherited.
    EXPECT_EQ(out[i].id, i) << i;
  }
  // The arrival tie at 30 breaks by source order: a's request first.
  EXPECT_EQ(out[2].arrival_ps, 30u);
}

TEST(MultiSourceTest, BorrowedAndOwnedSourcesYieldIdenticalStreams) {
  const std::vector<ms::Request> a = {at(5), at(15), at(25)};
  const std::vector<ms::Request> b = {at(10), at(20)};

  ms::VectorSource borrowed_a(a);
  ms::VectorSource borrowed_b(b);
  tn::MultiSource borrowed(
      std::vector<ms::RequestSource*>{&borrowed_a, &borrowed_b});

  std::vector<std::unique_ptr<ms::RequestSource>> owned_sources;
  owned_sources.push_back(
      std::make_unique<ms::VectorSource>(std::vector<ms::Request>(a)));
  owned_sources.push_back(
      std::make_unique<ms::VectorSource>(std::vector<ms::Request>(b)));
  tn::MultiSource owned(std::move(owned_sources));

  const auto from_borrowed = drain(borrowed);
  const auto from_owned = drain(owned);
  ASSERT_EQ(from_borrowed.size(), from_owned.size());
  for (std::size_t i = 0; i < from_borrowed.size(); ++i) {
    EXPECT_EQ(from_borrowed[i].arrival_ps, from_owned[i].arrival_ps) << i;
    EXPECT_EQ(from_borrowed[i].id, from_owned[i].id) << i;
  }
}

TEST(MultiSourceTest, NextBatchMatchesRepeatedNext) {
  const auto make = [] {
    std::vector<std::unique_ptr<ms::RequestSource>> sources;
    sources.push_back(std::make_unique<ms::VectorSource>(
        std::vector<ms::Request>{at(1), at(4), at(9)}));
    sources.push_back(std::make_unique<ms::VectorSource>(
        std::vector<ms::Request>{at(2), at(3)}));
    return std::make_unique<tn::MultiSource>(std::move(sources));
  };
  auto one = make();
  const auto via_next = drain(*one);
  auto other = make();
  ms::Request block[4];
  std::vector<ms::Request> via_batch;
  for (;;) {
    const std::size_t n = other->next_batch(block, 4);
    if (n == 0) break;
    via_batch.insert(via_batch.end(), block, block + n);
  }
  ASSERT_EQ(via_next.size(), via_batch.size());
  for (std::size_t i = 0; i < via_next.size(); ++i) {
    EXPECT_EQ(via_next[i].arrival_ps, via_batch[i].arrival_ps) << i;
  }
}

TEST(MultiSourceTest, RejectsEmptySourceList) {
  EXPECT_THROW(tn::MultiSource(std::vector<ms::RequestSource*>{}),
               std::invalid_argument);
}

// ----------------------------------------------------- PacedSource

TEST(PacedSourceTest, DeterministicSortedAndTagged) {
  const auto make = [] {
    return tn::PacedSource(
        std::make_unique<ms::GeneratorSource>(
            ms::TraceGenerator(ms::profile_by_name("gcc_like"), 3)
                .stream(500, 64)),
        /*tenant=*/2, /*tenant_count=*/3, cf::TenantMapping::kPartition,
        /*mean_interarrival_ns=*/8.0, /*burstiness=*/0.4, /*seed=*/11,
        /*line_bytes=*/64);
  };
  auto first = make();
  auto second = make();
  const auto a = drain(first);
  const auto b = drain(second);
  ASSERT_EQ(a.size(), 500u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_ps, b[i].arrival_ps) << i;
    EXPECT_EQ(a[i].address, b[i].address) << i;
    EXPECT_EQ(a[i].tenant, 2) << i;
    if (i > 0) {
      EXPECT_GE(a[i].arrival_ps, a[i - 1].arrival_ps) << i;
    }
    // Partition mapping: every address inside tenant 2's slab.
    EXPECT_EQ(a[i].address >> 40, 2u) << i;
  }
}

TEST(PacedSourceTest, ZeroMeanKeepsInnerArrivals) {
  const std::vector<ms::Request> trace = {at(100), at(200), at(350)};
  auto paced = tn::PacedSource(
      std::make_unique<ms::VectorSource>(std::vector<ms::Request>(trace)),
      /*tenant=*/1, /*tenant_count=*/1, cf::TenantMapping::kPartition,
      /*mean_interarrival_ns=*/0.0, /*burstiness=*/0.0, /*seed=*/1,
      /*line_bytes=*/64);
  const auto out = drain(paced);
  ASSERT_EQ(out.size(), trace.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].arrival_ps, trace[i].arrival_ps) << i;
    EXPECT_EQ(out[i].tenant, 1) << i;
  }
}

TEST(PacedSourceTest, RejectsZeroTenantIdAndBadCount) {
  const auto inner = [] {
    return std::make_unique<ms::VectorSource>(std::vector<ms::Request>{});
  };
  EXPECT_THROW(tn::PacedSource(inner(), 0, 1, cf::TenantMapping::kPartition,
                               0.0, 0.0, 1, 64),
               std::invalid_argument);
  EXPECT_THROW(tn::PacedSource(inner(), 3, 2, cf::TenantMapping::kPartition,
                               0.0, 0.0, 1, 64),
               std::invalid_argument);
}

// ------------------------------------------------- address mappings

TEST(AddressMappingTest, PartitionSlabsAreDisjoint) {
  EXPECT_EQ(tn::map_partition(1, 0), 1ull << 40);
  EXPECT_EQ(tn::map_partition(2, 0), 2ull << 40);
  // High garbage in the tenant-private address is masked off, so no
  // tenant can escape its slab.
  EXPECT_EQ(tn::map_partition(1, (1ull << 40) + 64), (1ull << 40) + 64);
  EXPECT_EQ(tn::map_partition(3, ~0ull) >> 40, 3u);
}

TEST(AddressMappingTest, InterleaveAlternatesLines) {
  // Two tenants, 64-byte lines: tenant 1 owns even shared lines,
  // tenant 2 odd ones, offsets preserved.
  EXPECT_EQ(tn::map_interleave(1, 2, 0, 64), 0u);
  EXPECT_EQ(tn::map_interleave(2, 2, 0, 64), 64u);
  EXPECT_EQ(tn::map_interleave(1, 2, 64, 64), 128u);
  EXPECT_EQ(tn::map_interleave(2, 2, 64, 64), 192u);
  EXPECT_EQ(tn::map_interleave(1, 2, 7, 64), 7u);
}

// ----------------------------------------------------- fairness math

TEST(FairnessTest, JainIndexEdgeCases) {
  // Empty and all-zero are vacuously fair; the issue's "one tenant"
  // case is exactly fair by construction.
  EXPECT_DOUBLE_EQ(tn::jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(tn::jain_index({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(tn::jain_index({3.7}), 1.0);
  EXPECT_DOUBLE_EQ(tn::jain_index({2.0, 2.0, 2.0}), 1.0);
  // One tenant hogging everything: 1/n.
  EXPECT_DOUBLE_EQ(tn::jain_index({1.0, 0.0, 0.0, 0.0}), 0.25);
}

TEST(FairnessTest, ZeroRequestTenantsAreExcluded) {
  ms::SimStats stats;
  stats.tenants.resize(3);
  stats.tenants[0].name = "active";
  stats.tenants[0].reads = 10;
  stats.tenants[0].latency_ns.add(200.0);
  stats.tenants[0].alone_avg_latency_ns = 100.0;
  stats.tenants[1].name = "idle";  // No requests at all.
  stats.tenants[2].name = "unbaselined";
  stats.tenants[2].reads = 5;
  stats.tenants[2].latency_ns.add(50.0);
  stats.tenants[2].alone_avg_latency_ns = 0.0;  // Baseline recorded none.
  tn::apply_fairness(stats);
  EXPECT_DOUBLE_EQ(stats.tenants[0].slowdown, 2.0);
  EXPECT_DOUBLE_EQ(stats.tenants[1].slowdown, 0.0);
  EXPECT_DOUBLE_EQ(stats.tenants[2].slowdown, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_slowdown, 2.0);
  // Only the one baselined active tenant counts: vacuously fair.
  EXPECT_DOUBLE_EQ(stats.fairness_index, 1.0);
}

TEST(FairnessTest, SaturatedBaselineYieldsSubUnitySlowdown) {
  // A baseline that saturates (run-alone latency worse than shared —
  // e.g. a bursty tenant whose solo queue blows up while the shared
  // run smooths it) must produce slowdown < 1, not an error.
  ms::SimStats stats;
  stats.tenants.resize(2);
  stats.tenants[0].reads = 4;
  stats.tenants[0].latency_ns.add(100.0);
  stats.tenants[0].alone_avg_latency_ns = 400.0;
  stats.tenants[1].writes = 4;
  stats.tenants[1].latency_ns.add(300.0);
  stats.tenants[1].alone_avg_latency_ns = 100.0;
  tn::apply_fairness(stats);
  EXPECT_DOUBLE_EQ(stats.tenants[0].slowdown, 0.25);
  EXPECT_DOUBLE_EQ(stats.tenants[1].slowdown, 3.0);
  EXPECT_DOUBLE_EQ(stats.max_slowdown, 3.0);
  EXPECT_GT(stats.fairness_index, 0.0);
  EXPECT_LT(stats.fairness_index, 1.0);
}

// ------------------------------------------------------ spec checks

TEST(TenantSpecTest, ValidationRejectsBadSpecs) {
  cf::TenantSpec spec;
  spec.name = "a";
  spec.profile = ms::profile_by_name("gcc_like");
  spec.validate();  // Baseline: valid.

  cf::TenantSpec unnamed = spec;
  unnamed.name.clear();
  EXPECT_THROW(unnamed.validate(), std::invalid_argument);

  cf::TenantSpec sourceless = spec;
  sourceless.profile = {};
  EXPECT_THROW(sourceless.validate(), std::invalid_argument);

  cf::TenantSpec bursty = spec;
  bursty.burstiness = 1.0;
  EXPECT_THROW(bursty.validate(), std::invalid_argument);

  cf::TenantSpec negative = spec;
  negative.interarrival_ns = -1.0;
  EXPECT_THROW(negative.validate(), std::invalid_argument);

  cf::TenantSpec twin = spec;
  EXPECT_THROW(cf::validate_tenants({spec, twin}), std::invalid_argument);
}

TEST(TenantSpecTest, MappingNamesRoundTrip) {
  EXPECT_EQ(cf::tenant_mapping_from_name("partition"),
            cf::TenantMapping::kPartition);
  EXPECT_EQ(cf::tenant_mapping_from_name("interleave"),
            cf::TenantMapping::kInterleave);
  EXPECT_STREQ(cf::tenant_mapping_name(cf::TenantMapping::kInterleave),
               "interleave");
  EXPECT_THROW(cf::tenant_mapping_from_name("striped"),
               std::invalid_argument);
}

// ------------------------------------------------------- end to end

TEST(MultiTenantRunTest, TwoTenantRunReportsBreakdownsAndFairness) {
  const tn::MultiTenantJob job = two_tenant_job();
  auto engine = dr::make_device_spec("comet").make_engine(
      sc::ControllerConfig::with_depths(sc::Policy::kFrFcfs, 16, 16), 1);
  const ms::SimStats stats = tn::run_multi_tenant(*engine, job);

  ASSERT_TRUE(stats.is_multi_tenant());
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].name, "web");
  EXPECT_EQ(stats.tenants[1].name, "batch");
  std::uint64_t total = 0;
  for (const auto& tenant : stats.tenants) {
    EXPECT_EQ(tenant.requests(), 2000u);
    total += tenant.requests();
    EXPECT_GT(tenant.latency_ns.p99(), 0.0);
    EXPECT_GT(tenant.alone_avg_latency_ns, 0.0);
    EXPECT_GT(tenant.slowdown, 0.0);
  }
  // The breakdown tiles the run: every request belongs to one tenant.
  EXPECT_EQ(total, stats.reads + stats.writes);
  EXPECT_GT(stats.max_slowdown, 0.0);
  EXPECT_GT(stats.fairness_index, 0.0);
  EXPECT_LE(stats.fairness_index, 1.0);
}

TEST(MultiTenantRunTest, InterleaveMappingContendForTheSameLines) {
  tn::MultiTenantJob job = two_tenant_job();
  job.mapping = cf::TenantMapping::kInterleave;
  auto engine = dr::make_device_spec("comet").make_engine(std::nullopt, 1);
  const ms::SimStats stats = tn::run_multi_tenant(*engine, job);
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].requests() + stats.tenants[1].requests(),
            stats.reads + stats.writes);
}

TEST(MultiTenantRunTest, SharedRunMatchesMergedSubStreams) {
  // The merged stream is exactly the tenants' sub-streams interleaved:
  // replaying it twice is deterministic.
  const tn::MultiTenantJob job = two_tenant_job();
  auto engine = dr::make_device_spec("comet").make_engine(std::nullopt, 1);
  const ms::SimStats first = tn::run_multi_tenant(*engine, job);
  const ms::SimStats second = tn::run_multi_tenant(*engine, job);
  EXPECT_EQ(first.reads, second.reads);
  EXPECT_EQ(first.writes, second.writes);
  EXPECT_EQ(first.span_ps, second.span_ps);
  EXPECT_EQ(first.tenants[0].latency_ns.sum(),
            second.tenants[0].latency_ns.sum());
  EXPECT_EQ(first.fairness_index, second.fairness_index);
}

// ------------------------------------- sharded bit-identity (tenants)

TEST(MultiTenantShardingTest, SerialAndShardedBreakdownsAreBitIdentical) {
  const tn::MultiTenantJob job = two_tenant_job();
  const dr::DeviceSpec spec = dr::make_device_spec("comet");
  for (const auto& info : sc::known_policies()) {
    const auto config = sc::ControllerConfig::with_depths(info.policy, 8, 8);
    auto serial_engine = spec.make_engine(config, 1);
    auto sharded_engine = spec.make_engine(config, 8);
    const ms::SimStats serial = tn::run_multi_tenant(*serial_engine, job);
    const ms::SimStats sharded = tn::run_multi_tenant(*sharded_engine, job);
    const std::string label = info.name;
    ASSERT_EQ(serial.tenants.size(), sharded.tenants.size()) << label;
    EXPECT_EQ(serial.reads, sharded.reads) << label;
    EXPECT_EQ(serial.writes, sharded.writes) << label;
    EXPECT_EQ(serial.span_ps, sharded.span_ps) << label;
    EXPECT_EQ(serial.dynamic_energy_pj, sharded.dynamic_energy_pj) << label;
    for (std::size_t i = 0; i < serial.tenants.size(); ++i) {
      const auto& a = serial.tenants[i];
      const auto& b = sharded.tenants[i];
      EXPECT_EQ(a.name, b.name) << label;
      EXPECT_EQ(a.reads, b.reads) << label;
      EXPECT_EQ(a.writes, b.writes) << label;
      EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << label;
      EXPECT_EQ(a.latency_ns.count(), b.latency_ns.count()) << label;
      EXPECT_EQ(a.latency_ns.sum(), b.latency_ns.sum()) << label;
      EXPECT_EQ(a.latency_ns.p50(), b.latency_ns.p50()) << label;
      EXPECT_EQ(a.latency_ns.p95(), b.latency_ns.p95()) << label;
      EXPECT_EQ(a.latency_ns.p99(), b.latency_ns.p99()) << label;
      EXPECT_EQ(a.alone_avg_latency_ns, b.alone_avg_latency_ns) << label;
      EXPECT_EQ(a.slowdown, b.slowdown) << label;
    }
    EXPECT_EQ(serial.max_slowdown, sharded.max_slowdown) << label;
    EXPECT_EQ(serial.fairness_index, sharded.fairness_index) << label;
  }
}

// -------------------------------------------- fairness policy effects

TEST(FairnessPolicyTest, UntaggedStreamsMatchFrFcfsExactly) {
  // With one implicit tenant the fairness machinery must change
  // nothing: token-budget and frfcfs-cap degenerate to frfcfs.
  const auto trace = ms::TraceGenerator(ms::profile_by_name("mcf_like"), 13)
                         .generate(3000, 64);
  const dr::DeviceSpec spec = dr::make_device_spec("comet");
  const auto run = [&](sc::Policy policy) {
    auto engine =
        spec.make_engine(sc::ControllerConfig::with_depths(policy, 8, 8), 1);
    return engine->run(trace, "mcf_like");
  };
  const ms::SimStats frfcfs = run(sc::Policy::kFrFcfs);
  for (const auto policy :
       {sc::Policy::kTokenBudget, sc::Policy::kFrFcfsCap}) {
    const ms::SimStats fair = run(policy);
    EXPECT_EQ(fair.reads, frfcfs.reads);
    EXPECT_EQ(fair.span_ps, frfcfs.span_ps);
    EXPECT_EQ(fair.read_latency_ns.sum(), frfcfs.read_latency_ns.sum());
    EXPECT_EQ(fair.write_latency_ns.sum(), frfcfs.write_latency_ns.sum());
    EXPECT_EQ(fair.sched_queue_delay_ns.sum(),
              frfcfs.sched_queue_delay_ns.sum());
  }
}

TEST(FairnessPolicyTest, FairnessKnobsValidate) {
  sc::ControllerConfig config;
  config.tenant_tokens = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.tenant_tokens = 1;
  config.starvation_cap = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.starvation_cap = 1;
  config.validate();
}

TEST(FairnessPolicyTest, PolicyNamesRoundTrip) {
  EXPECT_EQ(sc::policy_from_name("token-budget"), sc::Policy::kTokenBudget);
  EXPECT_EQ(sc::policy_from_name("frfcfs-cap"), sc::Policy::kFrFcfsCap);
  EXPECT_STREQ(sc::policy_name(sc::Policy::kTokenBudget), "token-budget");
  EXPECT_STREQ(sc::policy_name(sc::Policy::kFrFcfsCap), "frfcfs-cap");
}
