// Streaming API tests: RequestSource implementations (vector, lazy
// generator, on-disk trace file), the polymorphic Engine seam, and the
// acceptance criterion that streamed replay is bit-identical to the
// materialized-vector path for every registry device, flat and hybrid.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/registry.hpp"
#include "memsim/engine.hpp"
#include "memsim/source.hpp"
#include "memsim/system.hpp"
#include "memsim/trace.hpp"
#include "memsim/trace_gen.hpp"

namespace ms = comet::memsim;

namespace {

/// Every stats field the engines populate, compared exactly.
void expect_identical(const ms::SimStats& a, const ms::SimStats& b,
                      const std::string& context) {
  EXPECT_EQ(a.device_name, b.device_name) << context;
  EXPECT_EQ(a.reads, b.reads) << context;
  EXPECT_EQ(a.writes, b.writes) << context;
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << context;
  EXPECT_EQ(a.span_ps, b.span_ps) << context;
  EXPECT_EQ(a.read_latency_ns.mean(), b.read_latency_ns.mean()) << context;
  EXPECT_EQ(a.read_latency_ns.max(), b.read_latency_ns.max()) << context;
  EXPECT_EQ(a.write_latency_ns.mean(), b.write_latency_ns.mean()) << context;
  EXPECT_EQ(a.queue_delay_ns.mean(), b.queue_delay_ns.mean()) << context;
  EXPECT_EQ(a.dynamic_energy_pj, b.dynamic_energy_pj) << context;
  EXPECT_EQ(a.background_energy_pj, b.background_energy_pj) << context;
  EXPECT_EQ(a.total_bank_busy_ns, b.total_bank_busy_ns) << context;
  EXPECT_EQ(a.hybrid, b.hybrid) << context;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << context;
  EXPECT_EQ(a.cache_misses, b.cache_misses) << context;
  EXPECT_EQ(a.cache_fills, b.cache_fills) << context;
  EXPECT_EQ(a.writebacks, b.writebacks) << context;
  EXPECT_EQ(a.dram_tier_energy_pj, b.dram_tier_energy_pj) << context;
  EXPECT_EQ(a.backend_tier_energy_pj, b.backend_tier_energy_pj) << context;
}

/// Writes `content` to a fresh temp file and deletes it on scope exit.
/// Pid-qualified so parallel ctest invocations never collide.
class TempTrace {
 public:
  explicit TempTrace(const std::string& content)
      : path_("test_source_tmp_" + std::to_string(::getpid()) + "_" +
              std::to_string(next_serial()++) + ".trace") {
    std::ofstream out(path_);
    out << content;
  }
  ~TempTrace() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static int& next_serial() {
    static int serial = 0;
    return serial;
  }
  std::string path_;
};

std::vector<std::string> all_registry_tokens() {
  std::vector<std::string> tokens = comet::driver::known_devices();
  for (const auto& token : comet::driver::known_hybrid_devices()) {
    tokens.push_back(token);
  }
  return tokens;
}

}  // namespace

// ------------------------------------------------------ VectorSource

TEST(VectorSource, DrainsInOrderThenStaysEmpty) {
  const auto trace =
      ms::TraceGenerator(ms::profile_by_name("gcc_like"), 1).generate(10, 64);
  ms::VectorSource source(trace);
  for (const auto& expected : trace) {
    const auto req = source.next();
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->id, expected.id);
    EXPECT_EQ(req->address, expected.address);
  }
  EXPECT_FALSE(source.next().has_value());
  EXPECT_FALSE(source.next().has_value());
}

TEST(VectorSource, OwningConstructorMovesTheVector) {
  auto trace =
      ms::TraceGenerator(ms::profile_by_name("gcc_like"), 2).generate(5, 64);
  const std::size_t count = trace.size();
  ms::VectorSource source(std::move(trace));
  std::size_t drained = 0;
  while (source.next()) ++drained;
  EXPECT_EQ(drained, count);
}

// --------------------------------------------------- GeneratorSource

TEST(GeneratorSource, BitIdenticalToMaterializedGenerate) {
  for (const auto& profile : ms::spec_like_profiles()) {
    const ms::TraceGenerator gen(profile, 7);
    const auto materialized = gen.generate(800, 128);
    auto source = gen.stream(800, 128);
    for (const auto& expected : materialized) {
      const auto req = source.next();
      ASSERT_TRUE(req.has_value()) << profile.name;
      EXPECT_EQ(req->id, expected.id) << profile.name;
      EXPECT_EQ(req->arrival_ps, expected.arrival_ps) << profile.name;
      EXPECT_EQ(req->op, expected.op) << profile.name;
      EXPECT_EQ(req->address, expected.address) << profile.name;
      EXPECT_EQ(req->size_bytes, expected.size_bytes) << profile.name;
    }
    EXPECT_FALSE(source.next().has_value()) << profile.name;
  }
}

TEST(GeneratorSource, RemainingCountsDown) {
  auto source = ms::TraceGenerator(ms::profile_by_name("lbm_like"), 3)
                    .stream(4, 128);
  EXPECT_EQ(source.remaining(), 4u);
  (void)source.next();
  EXPECT_EQ(source.remaining(), 3u);
  while (source.next()) {
  }
  EXPECT_EQ(source.remaining(), 0u);
}

TEST(GeneratorSource, RejectsBadLineSizeAndProfile) {
  const auto profile = ms::profile_by_name("gcc_like");
  EXPECT_THROW(ms::GeneratorSource(profile, 1, 10, 0), std::invalid_argument);
  EXPECT_THROW(ms::GeneratorSource(profile, 1, 10, 100),
               std::invalid_argument);
  auto bad = profile;
  bad.read_fraction = 1.5;
  EXPECT_THROW(ms::GeneratorSource(bad, 1, 10, 64), std::invalid_argument);
  // Degenerate geometries that would divide by zero inside next():
  // a line wider than the 4 KB row, or a working set below one line.
  EXPECT_THROW(ms::GeneratorSource(profile, 1, 10, 8192),
               std::invalid_argument);
  auto tiny = profile;
  tiny.working_set_bytes = 64;
  EXPECT_THROW(ms::GeneratorSource(tiny, 1, 10, 128), std::invalid_argument);
}

// ----------------------------------------------------- ReplaySession

TEST(ReplaySession, FeedAfterFinishThrows) {
  const ms::MemorySystem system(comet::driver::make_device("comet"));
  ms::ReplaySession session(system, "test");
  session.feed(ms::Request{});
  EXPECT_EQ(session.fed(), 1u);
  (void)session.finish();
  EXPECT_THROW(session.feed(ms::Request{}), std::logic_error);
  EXPECT_THROW(session.finish(), std::logic_error);
}

TEST(ReplaySession, RejectsOutOfOrderFeeds) {
  const ms::MemorySystem system(comet::driver::make_device("comet"));
  ms::ReplaySession session(system, "test");
  session.feed(ms::Request{.arrival_ps = 1000});
  try {
    session.feed(ms::Request{.arrival_ps = 500});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("index 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("500"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1000"), std::string::npos) << msg;
  }
}

// -------------------------------------- Engine: streamed == vector

// Acceptance criterion: streaming replay of a generator-backed source is
// bit-identical to the materialized-vector path for every registry
// device, flat and hybrid.
TEST(Engine, GeneratorSourceMatchesVectorPathForEveryRegistryDevice) {
  const auto profile = ms::profile_by_name("gcc_like");
  const ms::TraceGenerator gen(profile, 42);
  const auto trace = gen.generate(1500, 128);
  for (const auto& token : all_registry_tokens()) {
    const auto spec = comet::driver::make_device_spec(token);
    const auto engine = spec.make_engine();
    const auto materialized = engine->run(trace, profile.name);
    auto source = gen.stream(1500, 128);
    const auto streamed = engine->run(source, profile.name);
    expect_identical(materialized, streamed, token);
  }
}

TEST(Engine, VectorAdapterMatchesExplicitVectorSource) {
  const auto spec = comet::driver::make_device_spec("comet");
  const auto engine = spec.make_engine();
  const auto trace =
      ms::TraceGenerator(ms::profile_by_name("mcf_like"), 9).generate(600, 64);
  ms::VectorSource source(trace);
  expect_identical(engine->run(trace, "w"), engine->run(source, "w"),
                   "vector adapter");
}

// ----------------------------------------------------- TraceFileSource

TEST(TraceFileSource, MissingFileThrowsNamingThePath) {
  try {
    ms::TraceFileSource source("/no/such/dir/missing.trace",
                               ms::TraceConfig{});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/no/such/dir/missing.trace"),
              std::string::npos)
        << e.what();
  }
}

TEST(TraceFileSource, StreamsRecordsWithConfigApplied) {
  const TempTrace file(
      "# header comment\n"
      "100 R 0x1000\n"
      "\n"
      "200 W 0x2040 0xdeadbeef 3\n");  // NVMain data payload ignored
  ms::TraceFileSource source(file.path(),
                             ms::TraceConfig{.cpu_clock_ghz = 2.0,
                                             .line_bytes = 64});
  const auto first = source.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->op, ms::Op::kRead);
  EXPECT_EQ(first->address, 0x1000u);
  EXPECT_EQ(first->arrival_ps, 50000u);  // 100 cycles at 2 GHz
  EXPECT_EQ(first->size_bytes, 64u);
  const auto second = source.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->op, ms::Op::kWrite);
  EXPECT_FALSE(source.next().has_value());
}

TEST(TraceFileSource, MalformedLineNamesNumberAndText) {
  const TempTrace file("100 R 0x1000\nnot a record\n");
  ms::TraceFileSource source(file.path(), ms::TraceConfig{});
  ASSERT_TRUE(source.next().has_value());
  try {
    (void)source.next();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("not a record"), std::string::npos) << msg;
    EXPECT_NE(msg.find(file.path()), std::string::npos) << msg;
  }
}

TEST(TraceFileSource, NonMonotonicCycleRejectedIncrementally) {
  const TempTrace file("100 R 0x0\n200 R 0x40\n150 W 0x80\n");
  ms::TraceFileSource source(file.path(), ms::TraceConfig{});
  ASSERT_TRUE(source.next().has_value());
  ASSERT_TRUE(source.next().has_value());
  try {
    (void)source.next();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("non-monotonic"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("150"), std::string::npos) << msg;
    EXPECT_NE(msg.find("200"), std::string::npos) << msg;
  }
}

// Round-trip acceptance: a trace written to disk replays bit-identically
// whether materialized through read_trace or streamed through
// TraceFileSource — flat and hybrid.
TEST(TraceFileSource, RoundTrippedFileMatchesMaterializedReplay) {
  const ms::TraceConfig config{.cpu_clock_ghz = 3.0, .line_bytes = 64};
  const auto trace = ms::TraceGenerator(ms::profile_by_name("omnetpp_like"), 5)
                         .generate(2000, 64);
  std::ostringstream text;
  ms::write_trace(text, trace, config);
  const TempTrace file(text.str());

  std::ifstream in(file.path());
  const auto materialized = ms::read_trace(in, config);
  for (const char* token : {"comet", "hybrid-comet"}) {
    const auto engine = comet::driver::make_device_spec(token).make_engine();
    const auto from_vector = engine->run(materialized, "trace");
    ms::TraceFileSource source(file.path(), config);
    const auto streamed = engine->run(source, "trace");
    expect_identical(from_vector, streamed, token);
  }
}

// ------------------------------------------------- streaming write

TEST(WriteTrace, StreamingOverloadMatchesVectorOverload) {
  const ms::TraceGenerator gen(ms::profile_by_name("milc_like"), 11);
  const ms::TraceConfig config{};
  std::ostringstream from_vector;
  ms::write_trace(from_vector, gen.generate(300, 128), config);
  std::ostringstream from_stream;
  auto source = gen.stream(300, 128);
  ms::write_trace(from_stream, source, config);
  EXPECT_EQ(from_vector.str(), from_stream.str());
}

// ------------------------------------------------- next_batch contract

namespace {

/// Drains `batched` through next_batch with an awkward non-divisor
/// batch size (and one interleaved next() to prove mixing is safe) and
/// checks it yields exactly the `reference` stream of next() calls.
void expect_batches_match_next(ms::RequestSource& reference,
                               ms::RequestSource& batched,
                               const std::string& context) {
  std::vector<ms::Request> expected;
  while (const auto req = reference.next()) expected.push_back(*req);

  std::vector<ms::Request> got;
  ms::Request block[7];  // deliberately not a divisor of typical sizes
  bool interleaved = false;
  for (;;) {
    if (!interleaved && got.size() >= 3) {
      interleaved = true;  // one scalar pull mid-stream
      if (const auto req = batched.next()) got.push_back(*req);
      continue;
    }
    const std::size_t pulled = batched.next_batch(block, 7);
    if (pulled == 0) break;
    ASSERT_LE(pulled, 7u) << context;
    got.insert(got.end(), block, block + pulled);
  }
  EXPECT_EQ(batched.next_batch(block, 7), 0u) << context;  // stays drained

  ASSERT_EQ(got.size(), expected.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, expected[i].id) << context << " #" << i;
    EXPECT_EQ(got[i].arrival_ps, expected[i].arrival_ps)
        << context << " #" << i;
    EXPECT_EQ(got[i].op, expected[i].op) << context << " #" << i;
    EXPECT_EQ(got[i].address, expected[i].address) << context << " #" << i;
    EXPECT_EQ(got[i].size_bytes, expected[i].size_bytes)
        << context << " #" << i;
  }
}

}  // namespace

TEST(NextBatch, VectorSourceMatchesScalarPulls) {
  const auto trace =
      ms::TraceGenerator(ms::profile_by_name("gcc_like"), 13).generate(100, 64);
  ms::VectorSource reference(trace);
  ms::VectorSource batched(trace);
  expect_batches_match_next(reference, batched, "VectorSource");
}

TEST(NextBatch, GeneratorSourceMatchesScalarPulls) {
  for (const auto& profile : ms::spec_like_profiles()) {
    const ms::TraceGenerator gen(profile, 17);
    auto reference = gen.stream(100, 64);
    auto batched = gen.stream(100, 64);
    expect_batches_match_next(reference, batched, profile.name);
  }
}

TEST(NextBatch, TraceFileSourceMatchesScalarPulls) {
  const ms::TraceConfig config{.cpu_clock_ghz = 2.0, .line_bytes = 64};
  std::ostringstream text;
  ms::write_trace(
      text,
      ms::TraceGenerator(ms::profile_by_name("lbm_like"), 19).generate(100, 64),
      config);
  const TempTrace file(text.str());
  ms::TraceFileSource reference(file.path(), config);
  ms::TraceFileSource batched(file.path(), config);
  expect_batches_match_next(reference, batched, "TraceFileSource");
}

TEST(NextBatch, ZeroCapacityReturnsZeroWithoutConsuming) {
  const auto trace =
      ms::TraceGenerator(ms::profile_by_name("gcc_like"), 23).generate(5, 64);
  ms::VectorSource source(trace);
  EXPECT_EQ(source.next_batch(nullptr, 0), 0u);
  std::size_t drained = 0;
  while (source.next()) ++drained;
  EXPECT_EQ(drained, trace.size());  // nothing was lost
}
