#pragma once

namespace comet::memsim {

struct Widget {
  int id = 0;
};

}  // namespace comet::memsim
