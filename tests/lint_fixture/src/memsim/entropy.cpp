// Fixture: nondeterministic entropy source inside an engine layer.
#include <random>

namespace comet::memsim {

unsigned fresh_seed() {
  std::random_device entropy;
  return entropy();
}

}  // namespace comet::memsim
