// Fixture: a .cpp whose first include is not its own header.
#include "util/ring.hpp"

#include "memsim/widget.hpp"

namespace comet::memsim {

int widget_id(const Widget& w) { return w.id; }

}  // namespace comet::memsim
