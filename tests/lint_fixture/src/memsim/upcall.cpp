// Fixture: an engine layer reaching up into driver/ (layering break).
#include "driver/options.hpp"

namespace comet::memsim {

void upcall() {}

}  // namespace comet::memsim
