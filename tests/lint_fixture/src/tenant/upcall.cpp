// Fixture: the tenant front-end reaching up into driver/ (layering
// break — tenant feeds the driver, never the other way around).
#include "driver/sweep.hpp"

namespace comet::tenant {

void upcall() {}

}  // namespace comet::tenant
