// Fixture: the prof layer's thread allowance is per-file — only
// prof/heartbeat.cpp may spawn; any other prof file must still fire.
#include <thread>

namespace comet::prof {

void rogue() {
  std::thread watcher([] {});
  watcher.join();
}

}  // namespace comet::prof
