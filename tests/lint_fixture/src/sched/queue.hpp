#pragma once

// Fixture: std::deque in a hot-path layer (PR 6 ban).
#include <deque>

namespace comet::sched {

using FixtureQueue = std::deque<int>;  // comet-lint: allow(no-deque) the
// include above carries the planted finding; one per rule.

}  // namespace comet::sched
