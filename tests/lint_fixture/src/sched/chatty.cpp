// Fixture: console output from a library layer.
#include <iostream>

namespace comet::sched {

void report_progress(int done) {
  std::cout << "progress: " << done << "\n";
}

}  // namespace comet::sched
