// Fixture: a justified waiver — this violation must NOT be reported.
#include <deque>  // comet-lint: allow(no-deque) fixture: cold path, waiver demo

namespace comet::util {

using WaivedQueue = std::deque<int>;  // comet-lint: allow(no-deque) same demo

}  // namespace comet::util
