// Fixture: thread primitive outside the two sanctioned pools.
#include <thread>

namespace comet::util {

void spawn_helper() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace comet::util
