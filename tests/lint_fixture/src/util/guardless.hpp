// Fixture: header without #pragma once.
namespace comet::util {

struct Guardless {
  int value = 0;
};

}  // namespace comet::util
