// Cross-module integration tests: invariants that only hold if the
// material, photonic, architecture and simulator layers agree with each
// other end to end.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/comet_memory.hpp"
#include "core/power_model.hpp"
#include "cosmos/cosmos_memory.hpp"
#include "dram/dram_device.hpp"
#include "memsim/system.hpp"
#include "memsim/trace.hpp"
#include "memsim/trace_gen.hpp"
#include "photonics/gst_cell.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace cc = comet::core;
namespace cm = comet::materials;
namespace cp = comet::photonics;
namespace ms = comet::memsim;

namespace {

cc::CometConfig small_config() {
  auto c = cc::CometConfig::comet_4b();
  c.subarrays = 16;
  c.rows_per_subarray = 64;
  c.channels = 2;
  return c;
}

}  // namespace

// The device model's background power must be exactly the Fig. 7 power
// stack — the simulator and the power bench cannot disagree.
TEST(Integration, DeviceModelPowerEqualsPowerModel) {
  const auto losses = cp::LossParameters::paper();
  for (const auto& config : {cc::CometConfig::comet_1b(),
                             cc::CometConfig::comet_2b(),
                             cc::CometConfig::comet_4b()}) {
    const auto device = cc::CometMemory::device_model(config, losses);
    const double stack_w =
        cc::CometPowerModel(config, losses).breakdown().total_w();
    EXPECT_DOUBLE_EQ(device.energy.background_power_w, stack_w);
  }
}

// The functional memory's measured read latency must agree with the
// timing descriptor handed to the trace simulator.
TEST(Integration, FunctionalReadLatencyMatchesDeviceModel) {
  const auto config = cc::CometConfig::comet_4b();
  cc::CometMemory memory(small_config());
  const auto device = cc::CometMemory::device_model(
      config, cp::LossParameters::paper());

  std::vector<std::uint8_t> line(config.line_bytes(), 0x3C);
  std::vector<std::uint8_t> out(config.line_bytes());
  memory.write_line(0, line);
  const auto read = memory.read_line(0, out);

  const double model_read_ns =
      comet::util::ps_to_ns(device.timing.read_occupancy_ps) +
      comet::util::ps_to_ns(device.timing.burst_ps) +
      comet::util::ps_to_ns(device.timing.interface_ps);
  EXPECT_NEAR(read.latency_ns, model_read_ns, 1.0);
}

// The functional write latency is bounded by the architecture's write
// path: reset + slowest write + tuning + interface (+ cold steering).
TEST(Integration, FunctionalWriteLatencyWithinArchitectureBudget) {
  cc::CometMemory memory(small_config());
  const auto& table = memory.level_table();
  const auto& config = memory.config();
  std::vector<std::uint8_t> line(config.line_bytes(), 0xFF);
  const auto write = memory.write_line(0, line);
  const double budget = config.gst_switch_ns + config.mr_tuning_ns +
                        table.reset().latency_ns +
                        table.max_write_latency_ns() + config.interface_ns +
                        config.burst_ns * config.burst_length;
  EXPECT_LE(write.latency_ns, budget + 1.0);
  EXPECT_GE(write.latency_ns, table.reset().latency_ns);
}

// Worst-row readout through the *real* cell optics, LUT and classifier:
// every row of a subarray must classify exactly for every level. This is
// the paper's central reliability claim wired through all four layers.
TEST(Integration, AllLevelsSurviveWorstRowLossChain) {
  const auto config = small_config();
  cc::CometMemory memory(config);
  const auto& lut = memory.gain_lut();
  const auto& table = memory.level_table();
  const cp::GstCell cell(cm::PcmMaterial::get(cm::Pcm::kGst),
                         cp::GstCellGeometry::paper());
  for (int row = 0; row < config.rows_per_subarray; ++row) {
    const double net_db = lut.gain_db_for_row(row) - lut.row_loss_db(row);
    for (const auto& level : table.levels()) {
      const double seen = cell.transmission(level.crystalline_fraction) *
                          comet::util::db_to_ratio(net_db);
      EXPECT_EQ(table.classify(seen), level.index)
          << "row " << row << " level " << level.index;
    }
  }
}

// End-to-end determinism: generating a trace, writing it to the NVMain
// text format, reading it back and simulating must give bit-identical
// statistics to simulating the original.
TEST(Integration, TraceFileRoundTripPreservesSimulation) {
  const auto profile = ms::profile_by_name("xalancbmk_like");
  const ms::TraceGenerator gen(profile, 77);
  const auto original = gen.generate(5000, 64);

  const ms::TraceConfig tc{.cpu_clock_ghz = 2.0, .line_bytes = 64};
  std::stringstream buffer;
  ms::write_trace(buffer, original, tc);
  const auto reloaded = ms::read_trace(buffer, tc);
  ASSERT_EQ(reloaded.size(), original.size());

  const ms::MemorySystem system(comet::dram::ddr4_2d());
  const auto a = system.run(original);
  const auto b = system.run(reloaded);
  // The text format quantizes arrivals to CPU cycles (0.5 ns), so spans
  // may differ by sub-cycle amounts; everything else must be identical.
  EXPECT_NEAR(double(a.span_ps), double(b.span_ps), 1000.0);
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred);
  EXPECT_DOUBLE_EQ(a.dynamic_energy_pj, b.dynamic_energy_pj);
}

// Same seed, same device -> identical stats across MemorySystem
// instances (no hidden global state anywhere in the stack).
TEST(Integration, SimulationIsDeterministic) {
  const auto losses = cp::LossParameters::paper();
  const auto device = cc::CometMemory::device_model(
      cc::CometConfig::comet_4b(), losses);
  const ms::TraceGenerator gen(ms::profile_by_name("milc_like"), 123);
  const auto trace = gen.generate(8000, 128);
  const auto a = ms::MemorySystem(device).run(trace);
  const auto b = ms::MemorySystem(device).run(trace);
  EXPECT_EQ(a.span_ps, b.span_ps);
  EXPECT_DOUBLE_EQ(a.bandwidth_gbps(), b.bandwidth_gbps());
  EXPECT_DOUBLE_EQ(a.epb_pj_per_bit(), b.epb_pj_per_bit());
}

// Capacity bookkeeping: the simulator device, the config arithmetic and
// the paper's (B x S_r x M_r x M_c x b) formula must agree.
TEST(Integration, CapacityConsistentAcrossLayers) {
  const auto config = cc::CometConfig::comet_4b();
  const auto device = cc::CometMemory::device_model(
      config, cp::LossParameters::paper());
  EXPECT_EQ(device.capacity_bytes, config.capacity_bytes());
  // 8.59 Gbit/chip x 8 channels = 8.59 GB system (paper calls it 8 GB).
  EXPECT_NEAR(double(device.capacity_bytes) / double(1ull << 30), 8.0, 0.9);
}

// Fault injection through the whole stack: drift below half a level
// spacing must be absorbed; drift beyond a full spacing must be caught
// as a read error by the integrity flag.
class DriftSweep : public ::testing::TestWithParam<double> {};

TEST_P(DriftSweep, IntegrityFlagTracksDriftMagnitude) {
  const double drift = GetParam();
  cc::CometMemory memory(small_config());
  const auto line_bytes = memory.config().line_bytes();
  std::vector<std::uint8_t> data(line_bytes, 0x77), out(line_bytes);
  memory.write_line(0, data);

  // Inject fraction drift into every cell of the written row.
  auto& bank = memory.bank(0, 0);
  auto& subarray = bank.subarray(0);
  for (int col = 0; col < memory.config().cols_per_subarray; ++col) {
    subarray.cell(0, col).drift(drift);
  }
  const auto read = memory.read_line(0, out);
  // Half the level spacing in fraction terms is ~1/32 for 16 levels over
  // fraction range ~0..0.95; stay well inside/outside.
  if (drift < 0.005) {
    EXPECT_TRUE(read.correct) << "drift " << drift;
    EXPECT_EQ(out, data);
  } else if (drift > 0.08) {
    EXPECT_FALSE(read.correct) << "drift " << drift;
  }
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, DriftSweep,
                         ::testing::Values(0.0, 0.002, 0.004, 0.09, 0.15,
                                           0.3));

// The three photonic/electronic families must keep their Fig. 9 BW
// ordering on every workload class, not just on average.
TEST(Integration, OrderingHoldsPerWorkloadClass) {
  const auto losses = cp::LossParameters::paper();
  const auto comet = cc::CometMemory::device_model(
      cc::CometConfig::comet_4b(), losses);
  const auto cosmos = comet::cosmos::cosmos_device_model(
      comet::cosmos::CosmosConfig::paper(), losses);
  const auto ddr3 = comet::dram::ddr3_2d();
  for (const char* name : {"mcf_like", "lbm_like", "libquantum_like"}) {
    auto profile = ms::profile_by_name(name);
    profile.avg_interarrival_ns = 0.5;
    const ms::TraceGenerator gen(profile, 31);
    const auto trace = gen.generate(15000, 128);
    const double bw_comet = ms::MemorySystem(comet).run(trace).bandwidth_gbps();
    const double bw_cosmos =
        ms::MemorySystem(cosmos).run(trace).bandwidth_gbps();
    const double bw_ddr3 = ms::MemorySystem(ddr3).run(trace).bandwidth_gbps();
    EXPECT_GT(bw_comet, 3.0 * bw_cosmos) << name;
    // COSMOS beats DRAM on streaming classes; random pointer-chase is its
    // worst case (region switches + destructive-read restores), where it
    // sinks to DRAM levels — COMET's margin there comes from isolation.
    if (std::string(name) != "mcf_like") {
      EXPECT_GT(bw_cosmos, bw_ddr3) << name;
    }
    EXPECT_GT(bw_comet, 10.0 * bw_ddr3) << name;
  }
}

// COSMOS and COMET share the photonic substrate: their device models
// must both be internally consistent with their configs' line sizes.
TEST(Integration, PhotonicLineSizesMatchBusShapes) {
  const auto losses = cp::LossParameters::paper();
  const auto comet = cc::CometMemory::device_model(
      cc::CometConfig::comet_4b(), losses);
  const auto cosmos = comet::cosmos::cosmos_device_model(
      comet::cosmos::CosmosConfig::paper(), losses);
  EXPECT_EQ(comet.timing.line_bytes, 128u);   // 256 bit x 4
  EXPECT_EQ(cosmos.timing.line_bytes, 128u);  // 128 bit x 8
}
