// Host-side observability tests (src/prof + driver/slo_eval). The
// load-bearing gate mirrors test_sharded.cpp: attaching a Profiler must
// never change the simulated statistics — exact ==, every field, for
// every registry device (flat and hybrid), scheduled and direct, at
// thread counts {1, 2, 8}. Around it: the SLO grammar (parse errors,
// round-trip printing, registry/evaluator agreement), degenerate runs
// (zero and single-request sweeps with profiling and heartbeat on,
// empty-stats gating without division blowups) and the heartbeat
// thread's lifecycle including an unknown (0) request total.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/registry.hpp"
#include "driver/slo_eval.hpp"
#include "driver/sweep.hpp"
#include "memsim/sharded.hpp"
#include "memsim/stats.hpp"
#include "memsim/trace_gen.hpp"
#include "prof/heartbeat.hpp"
#include "prof/profiler.hpp"
#include "prof/slo.hpp"
#include "sched/controller.hpp"
#include "util/stats.hpp"

namespace ms = comet::memsim;
namespace pf = comet::prof;
namespace dr = comet::driver;
namespace sc = comet::sched;
namespace cu = comet::util;

namespace {

pf::ProfSpec profiling_spec() {
  pf::ProfSpec spec;
  spec.profile = true;
  return spec;
}

/// Exact comparison of every SimStats field (the test_sharded.cpp
/// contract, reused for the profiled-vs-unprofiled gate).
void expect_identical(const ms::SimStats& a, const ms::SimStats& b,
                      const std::string& label) {
  EXPECT_EQ(a.device_name, b.device_name) << label;
  EXPECT_EQ(a.workload_name, b.workload_name) << label;
  EXPECT_EQ(a.reads, b.reads) << label;
  EXPECT_EQ(a.writes, b.writes) << label;
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << label;
  EXPECT_EQ(a.span_ps, b.span_ps) << label;
  const auto same_dist = [&](const cu::RunningStats& x,
                             const cu::RunningStats& y, const char* which) {
    EXPECT_EQ(x.count(), y.count()) << label << " " << which;
    EXPECT_EQ(x.mean(), y.mean()) << label << " " << which;
    EXPECT_EQ(x.stddev(), y.stddev()) << label << " " << which;
    EXPECT_EQ(x.min(), y.min()) << label << " " << which;
    EXPECT_EQ(x.max(), y.max()) << label << " " << which;
    EXPECT_EQ(x.sum(), y.sum()) << label << " " << which;
    EXPECT_EQ(x.p50(), y.p50()) << label << " " << which;
    EXPECT_EQ(x.p95(), y.p95()) << label << " " << which;
    EXPECT_EQ(x.p99(), y.p99()) << label << " " << which;
  };
  same_dist(a.read_latency_ns, b.read_latency_ns, "read");
  same_dist(a.write_latency_ns, b.write_latency_ns, "write");
  same_dist(a.queue_delay_ns, b.queue_delay_ns, "queue");
  EXPECT_EQ(a.dynamic_energy_pj, b.dynamic_energy_pj) << label;
  EXPECT_EQ(a.background_energy_pj, b.background_energy_pj) << label;
  EXPECT_EQ(a.total_bank_busy_ns, b.total_bank_busy_ns) << label;
  EXPECT_EQ(a.hybrid, b.hybrid) << label;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << label;
  EXPECT_EQ(a.cache_misses, b.cache_misses) << label;
  EXPECT_EQ(a.writebacks, b.writebacks) << label;
  EXPECT_EQ(a.dram_tier_energy_pj, b.dram_tier_energy_pj) << label;
  EXPECT_EQ(a.backend_tier_energy_pj, b.backend_tier_energy_pj) << label;
  EXPECT_EQ(a.scheduled, b.scheduled) << label;
  EXPECT_EQ(a.sched_policy, b.sched_policy) << label;
  same_dist(a.sched_queue_delay_ns, b.sched_queue_delay_ns, "sched-queue");
  same_dist(a.service_latency_ns, b.service_latency_ns, "service");
  EXPECT_EQ(a.write_drains, b.write_drains) << label;
  EXPECT_EQ(a.drain_stalls, b.drain_stalls) << label;
  EXPECT_EQ(a.admit_stalls, b.admit_stalls) << label;
}

const std::vector<ms::Request>& shared_trace() {
  static const std::vector<ms::Request> trace =
      ms::TraceGenerator(ms::profile_by_name("gcc_like"), 7).generate(2000,
                                                                      64);
  return trace;
}

ms::SimStats run_spec(const dr::DeviceSpec& spec,
                      const std::optional<sc::ControllerConfig>& controller,
                      int threads, pf::Profiler* profiler) {
  const auto engine = spec.make_engine(controller, threads);
  if (profiler) engine->attach_profiler(profiler);
  return engine->run(shared_trace(), "gcc_like");
}

}  // namespace

// ----------------------------------------------------- SLO grammar

TEST(SloParse, AcceptsEveryOperatorAndScientificThresholds) {
  const auto slo = pf::parse_slo(
      " p99_read_ns <= 2500 , requests_per_s>=5e6, hit_rate>0.5,"
      "max_slowdown<3.0,wall_s==1.25e-1 ");
  ASSERT_EQ(slo.size(), 5u);
  EXPECT_EQ(slo[0].metric, "p99_read_ns");
  EXPECT_EQ(slo[0].op, pf::SloPredicate::Op::kLe);
  EXPECT_EQ(slo[0].threshold, 2500.0);
  EXPECT_EQ(slo[1].op, pf::SloPredicate::Op::kGe);
  EXPECT_EQ(slo[1].threshold, 5e6);
  EXPECT_EQ(slo[2].op, pf::SloPredicate::Op::kGt);
  EXPECT_EQ(slo[3].op, pf::SloPredicate::Op::kLt);
  EXPECT_EQ(slo[4].op, pf::SloPredicate::Op::kEq);
  EXPECT_EQ(slo[4].threshold, 0.125);
}

TEST(SloParse, RejectsMalformedPredicates) {
  EXPECT_THROW(pf::parse_slo("bogus_metric<=1"), std::invalid_argument);
  EXPECT_THROW(pf::parse_slo("p99_read_ns"), std::invalid_argument);
  EXPECT_THROW(pf::parse_slo("p99_read_ns<="), std::invalid_argument);
  EXPECT_THROW(pf::parse_slo("p99_read_ns<=abc"), std::invalid_argument);
  EXPECT_THROW(pf::parse_slo("p99_read_ns<=1e"), std::invalid_argument);
  EXPECT_THROW(pf::parse_slo("p99_read_ns<=nan"), std::invalid_argument);
  EXPECT_THROW(pf::parse_slo("<=1"), std::invalid_argument);
  EXPECT_THROW(pf::parse_slo("a<=1,,b>=2"), std::invalid_argument);
  EXPECT_THROW(pf::parse_slo("p99_read_ns<=1,"), std::invalid_argument);
}

TEST(SloParse, EmptyListMeansNoGating) {
  EXPECT_TRUE(pf::parse_slo("").empty());
}

TEST(SloParse, ToStringRoundTripsThroughTheParser) {
  const std::string text =
      "p99_read_ns<=2500,requests_per_s>=5e6,max_slowdown<3,hit_rate>0.55";
  const auto first = pf::parse_slo(text);
  const auto second = pf::parse_slo(pf::slo_to_string(first));
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].metric, second[i].metric);
    EXPECT_EQ(first[i].op, second[i].op);
    EXPECT_EQ(first[i].threshold, second[i].threshold);
  }
  // Integral thresholds print as integers, not scientific notation.
  EXPECT_EQ(first[0].to_string(), "p99_read_ns<=2500");
}

// ------------------------------------- registry/evaluator agreement

TEST(SloEval, EveryRegistryMetricHasAnEvaluatorMapping) {
  // A record where every metric class is live: hybrid + multi-tenant
  // stats and a nonzero host wall clock. Every name the grammar accepts
  // must then evaluate as applicable — a metric added to kMetrics
  // without a driver mapping fails here.
  ms::SimStats stats;
  stats.hybrid = true;
  stats.tenants.emplace_back();
  for (const auto& name : pf::known_slo_metrics()) {
    const auto slo = pf::parse_slo(name + "<=1e300");
    const auto outcomes = dr::evaluate_slo(slo, stats, /*wall_s=*/1.0);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].applicable) << name;
    EXPECT_TRUE(outcomes[0].pass) << name;
  }
}

TEST(SloEval, EmptyStatsNeverDivideByZero) {
  // Degenerate gating: zero requests, zero wall clock. Every metric
  // must produce a finite value (or be skipped), never NaN/inf.
  const ms::SimStats stats;
  for (const auto& name : pf::known_slo_metrics()) {
    const auto slo = pf::parse_slo(name + ">=0");
    const auto outcomes = dr::evaluate_slo(slo, stats, /*wall_s=*/0.0);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(std::isfinite(outcomes[0].value)) << name;
    if (outcomes[0].applicable) {
      EXPECT_TRUE(outcomes[0].pass) << name;
    }
  }
}

TEST(SloEval, InapplicableMetricsAreSkippedNotViolated) {
  // Flat single-stream record: hit_rate / max_slowdown / fairness and
  // the host metrics (wall_s == 0, unprofiled) must all skip — an
  // impossible threshold stays green because it was never measured.
  const ms::SimStats stats;
  const auto slo = pf::parse_slo(
      "hit_rate>=1,max_slowdown<=0,fairness_index>=1,"
      "requests_per_s>=1e12,wall_s<=0");
  const auto outcomes = dr::evaluate_slo(slo, stats, /*wall_s=*/0.0);
  for (const auto& outcome : outcomes) {
    EXPECT_FALSE(outcome.applicable) << outcome.predicate.metric;
    EXPECT_TRUE(outcome.pass) << outcome.predicate.metric;
  }
  EXPECT_FALSE(dr::slo_violated(outcomes));
}

TEST(SloEval, ViolationIsDetectedAndNamed) {
  ms::SimStats stats;
  stats.reads = 100;
  stats.read_latency_ns.add(5000.0);
  const auto slo = pf::parse_slo("p99_read_ns<=1,avg_queue_delay_ns>=0");
  const auto outcomes = dr::evaluate_slo(slo, stats, /*wall_s=*/0.5);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].pass);
  EXPECT_TRUE(outcomes[1].pass);
  EXPECT_TRUE(dr::slo_violated(outcomes));
  EXPECT_EQ(outcomes[0].predicate.to_string(), "p99_read_ns<=1");
}

// -------------------------------------------------- ProfSpec basics

TEST(ProfSpec, EnabledIsTheUnionOfTheThreeLegs) {
  pf::ProfSpec spec;
  EXPECT_FALSE(spec.enabled());
  spec.profile = true;
  EXPECT_TRUE(spec.profiling());
  EXPECT_TRUE(spec.enabled());
  spec = pf::ProfSpec{};
  spec.progress_ms = 250;
  EXPECT_TRUE(spec.heartbeat());
  EXPECT_TRUE(spec.enabled());
  spec = pf::ProfSpec{};
  spec.slo = pf::parse_slo("wall_s<=60");
  EXPECT_TRUE(spec.gating());
  EXPECT_TRUE(spec.enabled());
}

TEST(Profiler, RequestsPerSecondGuardsDegenerateRuns) {
  pf::Profiler profiler(profiling_spec());
  EXPECT_EQ(profiler.requests_per_second(), 0.0);
  profiler.set_run_totals(0.0, 0);
  EXPECT_EQ(profiler.requests_per_second(), 0.0);
  profiler.set_run_totals(2.0, 1000);
  EXPECT_EQ(profiler.requests_per_second(), 500.0);
}

// ------------------------------------------------- degenerate sweeps

TEST(DegenerateRuns, ZeroAndSingleRequestAcrossEngineShapes) {
  // Every engine shape (flat direct, scheduled, sharded, hybrid) at 0
  // and 1 requests with profiling AND heartbeat enabled: no hangs, no
  // division blowups, and the simulated counts still add up.
  pf::ProfSpec spec = profiling_spec();
  spec.progress_ms = 1;

  struct Shape {
    const char* token;
    std::optional<sc::ControllerConfig> controller;
    int run_threads;
  };
  const Shape shapes[] = {
      {"comet", std::nullopt, 1},
      {"comet", sc::ControllerConfig::with_depths(sc::Policy::kFrFcfs, 8, 8),
       1},
      {"comet", std::nullopt, 4},
      {"hybrid-comet", std::nullopt, 1},
  };
  for (const Shape& shape : shapes) {
    for (const std::size_t requests : {std::size_t{0}, std::size_t{1}}) {
      dr::SweepJob job;
      job.device = dr::make_device_spec(shape.token);
      job.profile = ms::profile_by_name("gcc_like");
      job.requests = requests;
      job.run_threads = shape.run_threads;
      job.controller = shape.controller;
      job.profile_spec = spec;

      pf::Profiler profiler(spec);
      std::ostringstream sink;
      std::vector<const pf::Profiler*> watched{&profiler};
      pf::Heartbeat heartbeat(sink, spec.progress_ms, watched, requests);
      const ms::SimStats stats = dr::run_job(job, nullptr, &profiler);
      heartbeat.stop();

      const std::string label = std::string(shape.token) + "/rt" +
                                std::to_string(shape.run_threads) + "/n" +
                                std::to_string(requests);
      EXPECT_EQ(stats.reads + stats.writes, requests) << label;
      EXPECT_EQ(profiler.progress(), requests) << label;
      EXPECT_EQ(profiler.run_requests(), requests) << label;
      EXPECT_GE(profiler.wall_seconds(), 0.0) << label;
      EXPECT_TRUE(std::isfinite(profiler.requests_per_second())) << label;

      // Gating an empty/near-empty record must not divide by zero.
      const auto outcomes =
          dr::evaluate_slo(pf::parse_slo("requests_per_s>=0,wall_s>=0"),
                           stats, profiler.wall_seconds());
      for (const auto& outcome : outcomes) {
        EXPECT_TRUE(std::isfinite(outcome.value)) << label;
      }
    }
  }
}

// ----------------------------------------------------- heartbeat

TEST(Heartbeat, UnknownTotalPrintsCountsWithoutEta) {
  pf::Profiler profiler(profiling_spec());
  profiler.add_progress(1234);
  std::ostringstream out;
  {
    pf::Heartbeat heartbeat(out, 1, {&profiler}, /*total_requests=*/0);
    heartbeat.stop();
    heartbeat.stop();  // Idempotent.
  }
  const std::string text = out.str();
  EXPECT_NE(text.find("req"), std::string::npos);
  EXPECT_EQ(text.find("ETA"), std::string::npos);
  EXPECT_EQ(text.find('%'), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Heartbeat, KnownTotalReportsPercentAndSurvivesZeroProgress) {
  pf::Profiler profiler(profiling_spec());
  std::ostringstream out;
  {
    pf::Heartbeat heartbeat(out, 1, {&profiler}, /*total_requests=*/1000);
  }  // Destructor stops; zero progress must not divide by zero.
  EXPECT_NE(out.str().find('%'), std::string::npos);
}

TEST(Heartbeat, SumsProgressAcrossProfilers) {
  pf::Profiler a(profiling_spec());
  pf::Profiler b(profiling_spec());
  a.add_progress(600);
  b.add_progress(400);
  std::ostringstream out;
  pf::Heartbeat heartbeat(out, 1, {&a, &b}, 1000);
  heartbeat.stop();
  EXPECT_NE(out.str().find("100.0%"), std::string::npos) << out.str();
}

// ------------------------------------- profiled-vs-unprofiled gate

TEST(ProfiledBitIdentity, EveryFlatRegistryDeviceEveryThreadCount) {
  for (const auto& token : dr::known_devices()) {
    const dr::DeviceSpec spec = dr::make_device_spec(token);
    const ms::SimStats plain = run_spec(spec, std::nullopt, 1, nullptr);
    for (const int threads : {1, 2, 8}) {
      pf::Profiler profiler(profiling_spec());
      expect_identical(plain, run_spec(spec, std::nullopt, threads, &profiler),
                       token + "/t" + std::to_string(threads));
      EXPECT_EQ(profiler.progress(), shared_trace().size()) << token;
    }
  }
}

TEST(ProfiledBitIdentity, EveryHybridRegistryDeviceEveryThreadCount) {
  for (const auto& token : dr::known_hybrid_devices()) {
    const dr::DeviceSpec spec = dr::make_device_spec(token);
    const ms::SimStats plain = run_spec(spec, std::nullopt, 1, nullptr);
    for (const int threads : {1, 2, 8}) {
      pf::Profiler profiler(profiling_spec());
      expect_identical(plain, run_spec(spec, std::nullopt, threads, &profiler),
                       token + "/t" + std::to_string(threads));
    }
  }
}

TEST(ProfiledBitIdentity, ScheduledEnginesMatchWithProfilingOn) {
  const dr::DeviceSpec spec = dr::make_device_spec("comet");
  const auto controller =
      sc::ControllerConfig::with_depths(sc::Policy::kReadFirst, 8, 8);
  const ms::SimStats plain = run_spec(spec, controller, 1, nullptr);
  for (const int threads : {1, 2, 8}) {
    pf::Profiler profiler(profiling_spec());
    expect_identical(plain, run_spec(spec, controller, threads, &profiler),
                     "sched/t" + std::to_string(threads));
  }
}

TEST(ProfiledBitIdentity, PoolProfileAccountsForEveryRequest) {
  const dr::DeviceSpec spec = dr::make_device_spec("comet");
  pf::Profiler profiler(profiling_spec());
  run_spec(spec, std::nullopt, 4, &profiler);
  ASSERT_EQ(profiler.pools().size(), 1u);
  const pf::PoolProfile& pool = *profiler.pools()[0];
  EXPECT_EQ(pool.threads, 4);
  std::uint64_t lane_requests = 0;
  for (const auto& lane : pool.lanes) lane_requests += lane.requests;
  EXPECT_EQ(lane_requests, shared_trace().size());
  EXPECT_EQ(pool.blocks_allocated + pool.blocks_recycled, pool.blocks_pushed);
  const double utilization = pool.utilization();
  EXPECT_GE(utilization, 0.0);
  EXPECT_LE(utilization, 1.0);
}
