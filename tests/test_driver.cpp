// Driver subsystem tests: CLI parsing (including rejection of unknown
// devices/workloads), registry expansion, sweep determinism across thread
// counts, and the JSON emission shape.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "driver/options.hpp"
#include "driver/registry.hpp"
#include "driver/report.hpp"
#include "driver/sweep.hpp"
#include "memsim/trace.hpp"

namespace {

using comet::driver::build_matrix;
using comet::driver::Options;
using comet::driver::parse_args;
using comet::driver::resolve_devices;
using comet::driver::run_sweep;

TEST(OptionsTest, DefaultsAreAllDevicesAllWorkloads) {
  const Options opt = parse_args({});
  EXPECT_EQ(opt.device, "all");
  EXPECT_EQ(opt.workload, "all");
  EXPECT_EQ(opt.channels, 0);
  EXPECT_FALSE(opt.help);
}

TEST(OptionsTest, ParsesEveryFlag) {
  const Options opt =
      parse_args({"--device", "comet", "--workload", "lbm_like",
                  "--channels", "4", "--requests", "1000", "--threads", "3",
                  "--seed", "7", "--line-bytes", "64", "--json", "out.json",
                  "--csv"});
  EXPECT_EQ(opt.device, "comet");
  EXPECT_EQ(opt.workload, "lbm_like");
  EXPECT_EQ(opt.channels, 4);
  EXPECT_EQ(opt.requests, 1000u);
  EXPECT_EQ(opt.threads, 3);
  EXPECT_EQ(opt.seed, 7u);
  EXPECT_EQ(opt.line_bytes, 64u);
  EXPECT_EQ(opt.json_path, "out.json");
  EXPECT_TRUE(opt.csv);
}

TEST(OptionsTest, RejectsUnknownDevice) {
  EXPECT_THROW(parse_args({"--device", "sram"}), std::invalid_argument);
}

TEST(OptionsTest, RejectsUnknownWorkload) {
  EXPECT_THROW(parse_args({"--workload", "no_such_profile"}),
               std::invalid_argument);
}

TEST(OptionsTest, RejectsUnknownFlagAndBadValues) {
  EXPECT_THROW(parse_args({"--bogus"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--requests"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--requests", "0"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--requests", "12abc"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--channels", "-2"}), std::invalid_argument);
  // stoull-style leniency must not leak through: no signs, no whitespace.
  EXPECT_THROW(parse_args({"--requests", " -1"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--requests", "+5"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--requests", " 5"}), std::invalid_argument);
  // Values that would wrap when narrowed must be rejected, not truncated.
  EXPECT_THROW(parse_args({"--channels", "4294967297"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"--threads", "4294967296"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--line-bytes", "4294967424"}),
               std::invalid_argument);
}

TEST(OptionsTest, HelpShortCircuits) {
  const Options opt = parse_args({"--help", "--device", "sram"});
  EXPECT_TRUE(opt.help);
}

TEST(OptionsTest, ListFlagsParse) {
  EXPECT_TRUE(parse_args({"--list-devices"}).list_devices);
  EXPECT_TRUE(parse_args({"--list-workloads"}).list_workloads);
  const Options opt = parse_args({});
  EXPECT_FALSE(opt.list_devices);
  EXPECT_FALSE(opt.list_workloads);
}

namespace {

/// Writes a small generated trace to a temp file, deleted on scope exit.
class TempTraceFile {
 public:
  TempTraceFile() {
    const auto trace = comet::memsim::TraceGenerator(
                           comet::memsim::profile_by_name("gcc_like"), 13)
                           .generate(400, 64);
    std::ofstream out(path_);
    comet::memsim::write_trace(out, trace, comet::memsim::TraceConfig{});
  }
  ~TempTraceFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  // Pid-qualified so parallel ctest invocations of this binary never
  // collide on the shared working directory.
  std::string path_ =
      "test_driver_tmp_" + std::to_string(::getpid()) + ".trace";
};

}  // namespace

TEST(OptionsTest, TraceFileMustExistAtParseTime) {
  // main() maps parse failures to exit 2: a bad path dies before any
  // simulation runs.
  EXPECT_THROW(parse_args({"--trace-file", "/no/such/file.trace"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"--trace-file", ""}), std::invalid_argument);
  // A directory opens but cannot be read; the parse-time probe must
  // catch it, not let it replay as a silently empty trace.
  EXPECT_THROW(parse_args({"--trace-file", "/tmp"}), std::invalid_argument);
  const TempTraceFile file;
  const Options opt = parse_args({"--trace-file", file.path()});
  EXPECT_EQ(opt.trace_file, file.path());
}

TEST(OptionsTest, CpuGhzParsesAndRejectsBadValues) {
  const TempTraceFile file;
  const Options opt =
      parse_args({"--trace-file", file.path(), "--cpu-ghz", "3.5"});
  EXPECT_DOUBLE_EQ(opt.cpu_ghz, 3.5);
  EXPECT_THROW(parse_args({"--cpu-ghz", "0"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--cpu-ghz", "-2"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--cpu-ghz", "2.0.0"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--cpu-ghz", "fast"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--cpu-ghz", "1e3"}), std::invalid_argument);
}

TEST(OptionsTest, DumpTraceNeedsASingleWorkload) {
  EXPECT_THROW(parse_args({"--dump-trace", "out.trace"}),
               std::invalid_argument);
  const Options opt =
      parse_args({"--dump-trace", "out.trace", "--workload", "lbm_like"});
  EXPECT_EQ(opt.dump_trace, "out.trace");
}

TEST(OptionsTest, DumpTraceAndTraceFileConflict) {
  const TempTraceFile file;
  EXPECT_THROW(parse_args({"--trace-file", file.path(), "--dump-trace",
                           "out.trace", "--workload", "lbm_like"}),
               std::invalid_argument);
}

TEST(RegistryTest, EmptyDeviceSpecFailsLoudly) {
  // The documented footgun: a default-constructed spec has neither
  // optional engaged; make_engine/set_channels must throw a clear
  // std::logic_error instead of dereferencing an empty optional.
  comet::driver::DeviceSpec spec;
  EXPECT_THROW((void)spec.make_engine(), std::logic_error);
  EXPECT_THROW(spec.set_channels(4), std::logic_error);
}

TEST(RegistryTest, MakeEngineCoversEveryToken) {
  for (const auto& token : comet::driver::known_devices()) {
    const auto engine = comet::driver::make_device_spec(token).make_engine();
    EXPECT_NE(engine, nullptr) << token;
  }
  for (const auto& token : comet::driver::known_hybrid_devices()) {
    const auto engine = comet::driver::make_device_spec(token).make_engine();
    const auto stats = engine->run(std::vector<comet::memsim::Request>{});
    EXPECT_TRUE(stats.is_hybrid()) << token;
  }
}

TEST(SweepTest, TraceFileModeBuildsOneJobPerDevice) {
  const TempTraceFile file;
  const Options opt = parse_args({"--trace-file", file.path()});
  const auto jobs = build_matrix(opt);
  EXPECT_EQ(jobs.size(), 7u);  // devices x one trace pseudo-workload
  for (const auto& job : jobs) {
    EXPECT_EQ(job.trace_path, file.path());
    EXPECT_EQ(job.profile.name, file.path());  // basename == path here
    EXPECT_DOUBLE_EQ(job.cpu_ghz, 2.0);
  }
}

TEST(SweepTest, TraceFileReplayThreadedMatchesSerial) {
  const TempTraceFile file;
  Options opt = parse_args({"--trace-file", file.path(), "--device", "all"});
  auto jobs = build_matrix(opt);
  // Mix a hybrid design point into the matrix.
  {
    Options hybrid_opt =
        parse_args({"--trace-file", file.path(), "--device", "hybrid-comet"});
    for (auto& job : build_matrix(hybrid_opt)) jobs.push_back(std::move(job));
  }
  const auto serial = run_sweep(jobs, 1);
  const auto threaded = run_sweep(jobs, 4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].reads, threaded[i].reads) << i;
    EXPECT_EQ(serial[i].span_ps, threaded[i].span_ps) << i;
    EXPECT_EQ(serial[i].dynamic_energy_pj, threaded[i].dynamic_energy_pj)
        << i;
    EXPECT_EQ(serial[i].cache_hits, threaded[i].cache_hits) << i;
    // Every device replayed the same 400-request demand stream.
    EXPECT_EQ(serial[i].reads + serial[i].writes, 400u) << i;
  }
}

TEST(ReportTest, JsonRecordsTraceFile) {
  const TempTraceFile file;
  Options opt = parse_args({"--trace-file", file.path(), "--device", "comet"});
  const auto jobs = build_matrix(opt);
  const auto results = run_sweep(jobs, 1);
  std::ostringstream os;
  comet::driver::write_json(os, jobs, results);
  EXPECT_NE(os.str().find("\"trace_file\": \"" + file.path() + "\""),
            std::string::npos)
      << os.str();
}

TEST(RegistryTest, HybridTokensAreDistinctFromFlatOnes) {
  for (const auto& token : comet::driver::known_hybrid_devices()) {
    for (const auto& flat : comet::driver::known_devices()) {
      EXPECT_NE(token, flat);
    }
  }
}

TEST(RegistryTest, AllExpandsToSevenUniqueModels) {
  const auto models = resolve_devices("all");
  EXPECT_EQ(models.size(), 7u);
  for (std::size_t i = 0; i < models.size(); ++i) {
    for (std::size_t j = i + 1; j < models.size(); ++j) {
      EXPECT_NE(models[i].name, models[j].name);
    }
  }
}

TEST(RegistryTest, HbmAliasesTheStackedDdr4Part) {
  EXPECT_EQ(comet::driver::make_device("hbm").name,
            comet::driver::make_device("ddr4_3d").name);
}

TEST(RegistryTest, UnknownTokenThrows) {
  EXPECT_THROW(resolve_devices("optane"), std::invalid_argument);
}

TEST(SweepTest, MatrixIsDevicesTimesWorkloads) {
  Options opt;
  const auto jobs = build_matrix(opt);
  EXPECT_EQ(jobs.size(), 7u * 8u);
}

TEST(SweepTest, ChannelOverrideAppliesToEveryDevice) {
  Options opt = parse_args({"--device", "comet", "--channels", "2"});
  const auto jobs = build_matrix(opt);
  ASSERT_FALSE(jobs.empty());
  for (const auto& job : jobs) EXPECT_EQ(job.device.channels(), 2);
}

// Acceptance criterion: the threaded sweep must be bit-identical to the
// serial path for a fixed seed. Compare every stats field exactly.
TEST(SweepTest, ThreadedMatchesSerialBitExactly) {
  Options opt = parse_args({"--requests", "2000"});
  const auto jobs = build_matrix(opt);
  const auto serial = run_sweep(jobs, 1);
  const auto threaded = run_sweep(jobs, 4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& a = serial[i];
    const auto& b = threaded[i];
    EXPECT_EQ(a.device_name, b.device_name) << i;
    EXPECT_EQ(a.workload_name, b.workload_name) << i;
    EXPECT_EQ(a.reads, b.reads) << i;
    EXPECT_EQ(a.writes, b.writes) << i;
    EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << i;
    EXPECT_EQ(a.span_ps, b.span_ps) << i;
    EXPECT_EQ(a.read_latency_ns.mean(), b.read_latency_ns.mean()) << i;
    EXPECT_EQ(a.read_latency_ns.max(), b.read_latency_ns.max()) << i;
    EXPECT_EQ(a.write_latency_ns.mean(), b.write_latency_ns.mean()) << i;
    EXPECT_EQ(a.queue_delay_ns.mean(), b.queue_delay_ns.mean()) << i;
    EXPECT_EQ(a.dynamic_energy_pj, b.dynamic_energy_pj) << i;
    EXPECT_EQ(a.background_energy_pj, b.background_energy_pj) << i;
    EXPECT_EQ(a.total_bank_busy_ns, b.total_bank_busy_ns) << i;
  }
}

TEST(SweepTest, RepeatedRunsAreDeterministic) {
  Options opt = parse_args({"--device", "comet", "--workload", "all",
                            "--requests", "1500"});
  const auto jobs = build_matrix(opt);
  const auto first = run_sweep(jobs, 2);
  const auto second = run_sweep(jobs, 3);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].span_ps, second[i].span_ps);
    EXPECT_EQ(first[i].dynamic_energy_pj, second[i].dynamic_energy_pj);
  }
}

TEST(ReportTest, JsonContainsOneRecordPerRunWithRequiredFields) {
  Options opt = parse_args({"--device", "comet", "--requests", "500"});
  const auto jobs = build_matrix(opt);
  const auto results = run_sweep(jobs, 1);
  std::ostringstream os;
  comet::driver::write_json(os, jobs, results);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"bench\": \"comet_sim_sweep\""), std::string::npos);
  for (const char* field :
       {"\"device\"", "\"workload\"", "\"avg_read_latency_ns\"",
        "\"bandwidth_gbps\"", "\"energy_pj_per_bit\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  std::size_t records = 0;
  for (std::size_t pos = json.find("\"device\""); pos != std::string::npos;
       pos = json.find("\"device\"", pos + 1)) {
    ++records;
  }
  EXPECT_EQ(records, jobs.size());
}

TEST(ReportTest, TableReportCoversEveryDevice) {
  Options opt = parse_args({"--workload", "lbm_like", "--requests", "500"});
  const auto jobs = build_matrix(opt);
  const auto results = run_sweep(jobs, 1);
  std::ostringstream os;
  comet::driver::print_report(os, jobs, results, /*csv=*/false);
  for (const auto& job : jobs) {
    EXPECT_NE(os.str().find(job.device.name), std::string::npos)
        << job.device.name;
  }
}

}  // namespace
