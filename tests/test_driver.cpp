// Driver subsystem tests: CLI parsing (including rejection of unknown
// devices/workloads), registry expansion, sweep determinism across thread
// counts, and the JSON emission shape.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/options.hpp"
#include "driver/registry.hpp"
#include "driver/report.hpp"
#include "driver/sweep.hpp"
#include "memsim/trace.hpp"
#include "sched/controller.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using comet::driver::build_matrix;
using comet::driver::Options;
using comet::driver::parse_args;
using comet::driver::resolve_device_specs;
using comet::driver::run_sweep;

TEST(OptionsTest, DefaultsAreAllDevicesAllWorkloads) {
  const Options opt = parse_args({});
  EXPECT_EQ(opt.device, "all");
  EXPECT_EQ(opt.workload, "all");
  EXPECT_EQ(opt.channels, 0);
  EXPECT_FALSE(opt.help);
}

TEST(OptionsTest, ParsesEveryFlag) {
  const Options opt =
      parse_args({"--device", "comet", "--workload", "lbm_like",
                  "--channels", "4", "--requests", "1000", "--threads", "3",
                  "--run-threads", "2", "--seed", "7", "--line-bytes", "64",
                  "--json", "out.json", "--csv"});
  EXPECT_EQ(opt.device, "comet");
  EXPECT_EQ(opt.workload, "lbm_like");
  EXPECT_EQ(opt.channels, 4);
  EXPECT_EQ(opt.requests, 1000u);
  EXPECT_EQ(opt.threads, 3);
  EXPECT_EQ(opt.run_threads, 2);
  EXPECT_EQ(opt.seed, 7u);
  EXPECT_EQ(opt.line_bytes, 64u);
  EXPECT_EQ(opt.json_path, "out.json");
  EXPECT_TRUE(opt.csv);
}

TEST(OptionsTest, RejectsUnknownDevice) {
  EXPECT_THROW(parse_args({"--device", "sram"}), std::invalid_argument);
}

TEST(OptionsTest, RejectsUnknownWorkload) {
  EXPECT_THROW(parse_args({"--workload", "no_such_profile"}),
               std::invalid_argument);
}

TEST(OptionsTest, RejectsUnknownFlagAndBadValues) {
  EXPECT_THROW(parse_args({"--bogus"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--requests"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--requests", "0"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--requests", "12abc"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--channels", "-2"}), std::invalid_argument);
  // stoull-style leniency must not leak through: no signs, no whitespace.
  EXPECT_THROW(parse_args({"--requests", " -1"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--requests", "+5"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--requests", " 5"}), std::invalid_argument);
  // Values that would wrap when narrowed must be rejected, not truncated.
  EXPECT_THROW(parse_args({"--channels", "4294967297"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"--threads", "4294967296"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--line-bytes", "4294967424"}),
               std::invalid_argument);
}

TEST(OptionsTest, HelpShortCircuits) {
  const Options opt = parse_args({"--help", "--device", "sram"});
  EXPECT_TRUE(opt.help);
}

TEST(OptionsTest, ListFlagsParse) {
  EXPECT_TRUE(parse_args({"--list-devices"}).list_devices);
  EXPECT_TRUE(parse_args({"--list-workloads"}).list_workloads);
  const Options opt = parse_args({});
  EXPECT_FALSE(opt.list_devices);
  EXPECT_FALSE(opt.list_workloads);
}

namespace {

/// Writes a small generated trace to a temp file, deleted on scope exit.
class TempTraceFile {
 public:
  TempTraceFile() {
    const auto trace = comet::memsim::TraceGenerator(
                           comet::memsim::profile_by_name("gcc_like"), 13)
                           .generate(400, 64);
    std::ofstream out(path_);
    comet::memsim::write_trace(out, trace, comet::memsim::TraceConfig{});
  }
  ~TempTraceFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  // Pid-qualified so parallel ctest invocations of this binary never
  // collide on the shared working directory.
  std::string path_ =
      "test_driver_tmp_" + std::to_string(::getpid()) + ".trace";
};

}  // namespace

TEST(OptionsTest, TraceFileMustExistAtParseTime) {
  // main() maps parse failures to exit 2: a bad path dies before any
  // simulation runs.
  EXPECT_THROW(parse_args({"--trace-file", "/no/such/file.trace"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"--trace-file", ""}), std::invalid_argument);
  // A directory opens but cannot be read; the parse-time probe must
  // catch it, not let it replay as a silently empty trace.
  EXPECT_THROW(parse_args({"--trace-file", "/tmp"}), std::invalid_argument);
  const TempTraceFile file;
  const Options opt = parse_args({"--trace-file", file.path()});
  EXPECT_EQ(opt.trace_file, file.path());
}

TEST(OptionsTest, CpuGhzParsesAndRejectsBadValues) {
  const TempTraceFile file;
  const Options opt =
      parse_args({"--trace-file", file.path(), "--cpu-ghz", "3.5"});
  EXPECT_DOUBLE_EQ(opt.cpu_ghz, 3.5);
  EXPECT_THROW(parse_args({"--cpu-ghz", "0"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--cpu-ghz", "-2"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--cpu-ghz", "2.0.0"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--cpu-ghz", "fast"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--cpu-ghz", "1e3"}), std::invalid_argument);
}

TEST(OptionsTest, DumpTraceNeedsASingleWorkload) {
  EXPECT_THROW(parse_args({"--dump-trace", "out.trace"}),
               std::invalid_argument);
  const Options opt =
      parse_args({"--dump-trace", "out.trace", "--workload", "lbm_like"});
  EXPECT_EQ(opt.dump_trace, "out.trace");
}

TEST(OptionsTest, DumpTraceAndTraceFileConflict) {
  const TempTraceFile file;
  EXPECT_THROW(parse_args({"--trace-file", file.path(), "--dump-trace",
                           "out.trace", "--workload", "lbm_like"}),
               std::invalid_argument);
}

namespace {

/// Writes TOML content to a pid-qualified temp file, deleted on exit.
class TempTomlFile {
 public:
  explicit TempTomlFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }
  ~TempTomlFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_ =
      "test_driver_tmp_" + std::to_string(::getpid()) + "_" +
      std::to_string(counter_++) + ".toml";
  static int counter_;
};

int TempTomlFile::counter_ = 0;

}  // namespace

TEST(OptionsTest, ConfigOwnsTheMatrix) {
  const TempTomlFile file(
      "[experiment]\ndevices = [\"comet\"]\nworkloads = [\"gcc_like\"]\n");
  const Options opt = parse_args({"--config", file.path()});
  EXPECT_EQ(opt.config, file.path());
  // Non-matrix flags still compose with --config...
  EXPECT_NO_THROW(parse_args(
      {"--config", file.path(), "--threads", "2", "--json", "o.json"}));
  // ...but every matrix-defining flag conflicts.
  for (const std::vector<std::string>& extra :
       {std::vector<std::string>{"--device", "comet"},
        {"--workload", "gcc_like"},
        {"--requests", "10"},
        {"--seed", "1"},
        {"--channels", "4"},
        {"--run-threads", "2"},
        {"--cache-mb", "32"}}) {
    std::vector<std::string> args{"--config", file.path()};
    args.insert(args.end(), extra.begin(), extra.end());
    EXPECT_THROW(parse_args(args), std::invalid_argument) << extra[0];
  }
}

TEST(OptionsTest, ConfigFileValidatedAtParseTime) {
  EXPECT_THROW(parse_args({"--config", "/no/such/file.toml"}),
               std::runtime_error);
  const TempTomlFile typo(
      "[experiment]\ndevices = [\"comet\"]\nworkloads = [\"gcc_like\"]\n"
      "requets = 5\n");
  try {
    parse_args({"--config", typo.path()});
    FAIL() << "expected a schema error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(typo.path() + ":4"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("requets"), std::string::npos)
        << e.what();
  }
  // Unknown tokens, profile names and a missing trace_file inside the
  // document are parse-time (exit 2) failures too, naming the file.
  const TempTomlFile bad_token(
      "[experiment]\ndevices = [\"optane\"]\nworkloads = [\"gcc_like\"]\n");
  try {
    parse_args({"--config", bad_token.path()});
    FAIL() << "expected an unknown-device error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(bad_token.path()),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("unknown device 'optane'"),
              std::string::npos)
        << e.what();
  }
  const TempTomlFile bad_workload(
      "[experiment]\ndevices = [\"comet\"]\nworkloads = [\"nope_like\"]\n");
  EXPECT_THROW(parse_args({"--config", bad_workload.path()}),
               std::invalid_argument);
  const TempTomlFile bad_trace(
      "[experiment]\ndevices = [\"comet\"]\n"
      "trace_file = \"/no/such.trace\"\n");
  EXPECT_THROW(parse_args({"--config", bad_trace.path()}),
               std::invalid_argument);
}

TEST(OptionsTest, DeviceFilesAddDevicesToTheMatrix) {
  const TempTomlFile custom(
      "[device]\nname = \"comet-2ch\"\nbase = \"comet\"\n"
      "[device.timing]\nchannels = 2\n");
  // Without an explicit --device, the file replaces the default `all`.
  const auto solo = build_matrix(
      parse_args({"--device-file", custom.path(), "--workload", "gcc_like"}));
  ASSERT_EQ(solo.size(), 1u);
  EXPECT_EQ(solo[0].device.name, "comet-2ch");
  EXPECT_EQ(solo[0].device.channels(), 2);
  // With one, tokens come first and the file's devices follow.
  const auto both = build_matrix(
      parse_args({"--device", "epcm", "--device-file", custom.path(),
                  "--workload", "gcc_like"}));
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[1].device.name, "comet-2ch");
  // A bad file fails at parse time.
  EXPECT_THROW(parse_args({"--device-file", "/no/such/device.toml"}),
               std::runtime_error);
}

TEST(OptionsTest, CacheOverridesReachDeviceFileHybrids) {
  // --cache-* must not be silently ignored for a file-defined hybrid:
  // the flags apply to every hybrid in the matrix, token- or
  // file-sourced, through the same apply_hybrid_overrides path.
  const TempTomlFile hybrid_file(
      "[device]\nname = \"hc\"\nbase = \"comet\"\n"
      "[device.cache]\ncapacity_mb = 32\n");
  const auto jobs = build_matrix(parse_args(
      {"--device-file", hybrid_file.path(), "--workload", "gcc_like",
       "--cache-mb", "64", "--cache-policy", "write-no-allocate"}));
  ASSERT_EQ(jobs.size(), 1u);
  ASSERT_TRUE(jobs[0].device.is_hybrid());
  EXPECT_EQ(jobs[0].device.tiered->cache.capacity_bytes, 64ull << 20);
  EXPECT_FALSE(jobs[0].device.tiered->cache.write_allocate);
  // The DRAM tier resized with the cache.
  EXPECT_EQ(jobs[0].device.tiered->dram.capacity_bytes, 64ull << 20);
}

TEST(OptionsTest, DumpConfigConflictsWithDumpTrace) {
  EXPECT_THROW(parse_args({"--dump-config", "a.toml", "--dump-trace",
                           "b.nvt", "--workload", "gcc_like"}),
               std::invalid_argument);
  const Options opt = parse_args({"--dump-config", "a.toml"});
  EXPECT_EQ(opt.dump_config, "a.toml");
}

TEST(SweepTest, CliOptionsLiftIntoExperimentSpec) {
  const auto spec = comet::driver::experiment_from_options(
      parse_args({"--device", "comet", "--workload", "lbm_like",
                  "--requests", "123", "--seed", "9", "--channels", "4"}));
  EXPECT_EQ(spec.name, "cli");
  EXPECT_TRUE(spec.device_tokens.empty());  // Resolved inline.
  ASSERT_EQ(spec.devices.size(), 1u);
  ASSERT_EQ(spec.workloads.size(), 1u);
  EXPECT_EQ(spec.workloads[0].name, "lbm_like");
  EXPECT_EQ(spec.requests, std::vector<std::uint64_t>{123});
  EXPECT_EQ(spec.seeds, std::vector<std::uint64_t>{9});
  EXPECT_EQ(spec.channels, std::vector<int>{4});
  EXPECT_TRUE(spec.source.empty());
}

TEST(RegistryTest, EmptyDeviceSpecFailsLoudly) {
  // The documented footgun: a default-constructed spec has neither
  // optional engaged; make_engine/set_channels must throw a clear
  // std::logic_error instead of dereferencing an empty optional.
  comet::driver::DeviceSpec spec;
  EXPECT_THROW((void)spec.make_engine(), std::logic_error);
  EXPECT_THROW(spec.set_channels(4), std::logic_error);
}

TEST(RegistryTest, MakeEngineCoversEveryToken) {
  for (const auto& token : comet::driver::known_devices()) {
    const auto engine = comet::driver::make_device_spec(token).make_engine();
    EXPECT_NE(engine, nullptr) << token;
  }
  for (const auto& token : comet::driver::known_hybrid_devices()) {
    const auto engine = comet::driver::make_device_spec(token).make_engine();
    const auto stats = engine->run(std::vector<comet::memsim::Request>{});
    EXPECT_TRUE(stats.is_hybrid()) << token;
  }
}

TEST(SweepTest, TraceFileModeBuildsOneJobPerDevice) {
  const TempTraceFile file;
  const Options opt = parse_args({"--trace-file", file.path()});
  const auto jobs = build_matrix(opt);
  EXPECT_EQ(jobs.size(), 7u);  // devices x one trace pseudo-workload
  for (const auto& job : jobs) {
    EXPECT_EQ(job.trace_path, file.path());
    EXPECT_EQ(job.profile.name, file.path());  // basename == path here
    EXPECT_DOUBLE_EQ(job.cpu_ghz, 2.0);
  }
}

TEST(SweepTest, TraceFileReplayThreadedMatchesSerial) {
  const TempTraceFile file;
  Options opt = parse_args({"--trace-file", file.path(), "--device", "all"});
  auto jobs = build_matrix(opt);
  // Mix a hybrid design point into the matrix.
  {
    Options hybrid_opt =
        parse_args({"--trace-file", file.path(), "--device", "hybrid-comet"});
    for (auto& job : build_matrix(hybrid_opt)) jobs.push_back(std::move(job));
  }
  const auto serial = run_sweep(jobs, 1);
  const auto threaded = run_sweep(jobs, 4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].reads, threaded[i].reads) << i;
    EXPECT_EQ(serial[i].span_ps, threaded[i].span_ps) << i;
    EXPECT_EQ(serial[i].dynamic_energy_pj, threaded[i].dynamic_energy_pj)
        << i;
    EXPECT_EQ(serial[i].cache_hits, threaded[i].cache_hits) << i;
    // Every device replayed the same 400-request demand stream.
    EXPECT_EQ(serial[i].reads + serial[i].writes, 400u) << i;
  }
}

TEST(ReportTest, JsonRecordsTraceFile) {
  const TempTraceFile file;
  Options opt = parse_args({"--trace-file", file.path(), "--device", "comet"});
  const auto jobs = build_matrix(opt);
  const auto results = run_sweep(jobs, 1);
  std::ostringstream os;
  comet::driver::write_json(os, jobs, results);
  EXPECT_NE(os.str().find("\"trace_file\": \"" + file.path() + "\""),
            std::string::npos)
      << os.str();
}

TEST(RegistryTest, HybridTokensAreDistinctFromFlatOnes) {
  for (const auto& token : comet::driver::known_hybrid_devices()) {
    for (const auto& flat : comet::driver::known_devices()) {
      EXPECT_NE(token, flat);
    }
  }
}

TEST(RegistryTest, AllExpandsToSevenUniqueModels) {
  // The flat-only resolve_devices() duplicate is retired: the single
  // expansion path serves flat and hybrid tokens alike.
  const auto specs = resolve_device_specs("all");
  EXPECT_EQ(specs.size(), 7u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_FALSE(specs[i].is_hybrid()) << specs[i].name;
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      EXPECT_NE(specs[i].name, specs[j].name);
    }
  }
}

TEST(RegistryTest, HbmAliasesTheStackedDdr4Part) {
  EXPECT_EQ(comet::driver::make_device("hbm").name,
            comet::driver::make_device("ddr4_3d").name);
}

TEST(RegistryTest, UnknownTokenThrows) {
  EXPECT_THROW(resolve_device_specs("optane"), std::invalid_argument);
}

TEST(SweepTest, MatrixIsDevicesTimesWorkloads) {
  Options opt;
  const auto jobs = build_matrix(opt);
  EXPECT_EQ(jobs.size(), 7u * 8u);
}

TEST(SweepTest, ChannelOverrideAppliesToEveryDevice) {
  Options opt = parse_args({"--device", "comet", "--channels", "2"});
  const auto jobs = build_matrix(opt);
  ASSERT_FALSE(jobs.empty());
  for (const auto& job : jobs) EXPECT_EQ(job.device.channels(), 2);
}

// Acceptance criterion: the threaded sweep must be bit-identical to the
// serial path for a fixed seed. Compare every stats field exactly.
TEST(SweepTest, ThreadedMatchesSerialBitExactly) {
  Options opt = parse_args({"--requests", "2000"});
  const auto jobs = build_matrix(opt);
  const auto serial = run_sweep(jobs, 1);
  const auto threaded = run_sweep(jobs, 4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& a = serial[i];
    const auto& b = threaded[i];
    EXPECT_EQ(a.device_name, b.device_name) << i;
    EXPECT_EQ(a.workload_name, b.workload_name) << i;
    EXPECT_EQ(a.reads, b.reads) << i;
    EXPECT_EQ(a.writes, b.writes) << i;
    EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << i;
    EXPECT_EQ(a.span_ps, b.span_ps) << i;
    EXPECT_EQ(a.read_latency_ns.mean(), b.read_latency_ns.mean()) << i;
    EXPECT_EQ(a.read_latency_ns.max(), b.read_latency_ns.max()) << i;
    EXPECT_EQ(a.write_latency_ns.mean(), b.write_latency_ns.mean()) << i;
    EXPECT_EQ(a.queue_delay_ns.mean(), b.queue_delay_ns.mean()) << i;
    EXPECT_EQ(a.dynamic_energy_pj, b.dynamic_energy_pj) << i;
    EXPECT_EQ(a.background_energy_pj, b.background_energy_pj) << i;
    EXPECT_EQ(a.total_bank_busy_ns, b.total_bank_busy_ns) << i;
  }
}

TEST(SweepTest, RepeatedRunsAreDeterministic) {
  Options opt = parse_args({"--device", "comet", "--workload", "all",
                            "--requests", "1500"});
  const auto jobs = build_matrix(opt);
  const auto first = run_sweep(jobs, 2);
  const auto second = run_sweep(jobs, 3);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].span_ps, second[i].span_ps);
    EXPECT_EQ(first[i].dynamic_energy_pj, second[i].dynamic_energy_pj);
  }
}

TEST(ReportTest, JsonContainsOneRecordPerRunWithRequiredFields) {
  Options opt = parse_args({"--device", "comet", "--requests", "500"});
  const auto jobs = build_matrix(opt);
  const auto results = run_sweep(jobs, 1);
  std::ostringstream os;
  comet::driver::write_json(os, jobs, results);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"bench\": \"comet_sim_sweep\""), std::string::npos);
  for (const char* field :
       {"\"device\"", "\"workload\"", "\"avg_read_latency_ns\"",
        "\"bandwidth_gbps\"", "\"energy_pj_per_bit\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  std::size_t records = 0;
  for (std::size_t pos = json.find("\"device\""); pos != std::string::npos;
       pos = json.find("\"device\"", pos + 1)) {
    ++records;
  }
  EXPECT_EQ(records, jobs.size());
}

TEST(ReportTest, TableReportCoversEveryDevice) {
  Options opt = parse_args({"--workload", "lbm_like", "--requests", "500"});
  const auto jobs = build_matrix(opt);
  const auto results = run_sweep(jobs, 1);
  std::ostringstream os;
  comet::driver::print_report(os, jobs, results, /*csv=*/false);
  for (const auto& job : jobs) {
    EXPECT_NE(os.str().find(job.device.name), std::string::npos)
        << job.device.name;
  }
}

// ----------------------------------------------------------- telemetry

TEST(OptionsTest, TelemetryFlagsParseAndConvert) {
  const Options opt = parse_args(
      {"--trace-out", "t.json", "--trace-limit", "500", "--metrics-interval",
       "1000000", "--metrics-csv", "t.csv"});
  EXPECT_EQ(opt.trace_out, "t.json");
  ASSERT_TRUE(opt.trace_limit.has_value());
  EXPECT_EQ(*opt.trace_limit, 500u);
  ASSERT_TRUE(opt.metrics_interval_ns.has_value());
  EXPECT_EQ(*opt.metrics_interval_ns, 1'000'000u);
  EXPECT_EQ(opt.metrics_csv, "t.csv");

  const auto spec = comet::driver::telemetry_from_options(opt);
  EXPECT_EQ(spec.trace_path, "t.json");
  EXPECT_EQ(spec.trace_limit, 500u);
  EXPECT_EQ(spec.metrics_interval_ps, 1'000'000'000u);  // ns -> ps.
  EXPECT_EQ(spec.metrics_csv, "t.csv");

  // Untraced default: a disabled spec, so jobs carry no collector.
  const auto off = comet::driver::telemetry_from_options(parse_args({}));
  EXPECT_FALSE(off.enabled());
}

TEST(OptionsTest, TelemetryFlagDependenciesRejectedAtParseTime) {
  // --trace-limit without --trace-out: no event budget to cap.
  EXPECT_THROW(parse_args({"--trace-limit", "100"}), std::invalid_argument);
  // --metrics-csv without --metrics-interval: no timeline to write.
  EXPECT_THROW(parse_args({"--metrics-csv", "t.csv"}), std::invalid_argument);
  // Degenerate values.
  EXPECT_THROW(parse_args({"--trace-out", ""}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--metrics-interval", "0"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"--metrics-interval", "abc"}),
               std::invalid_argument);
}

TEST(OptionsTest, TelemetryFlagsConflictWithConfig) {
  const TempTomlFile file(
      "[experiment]\ndevices = [\"comet\"]\nworkloads = [\"gcc_like\"]\n");
  for (const std::vector<std::string>& extra :
       {std::vector<std::string>{"--trace-out", "t.json"},
        {"--trace-out", "t.json", "--trace-limit", "5"},
        {"--metrics-interval", "1000"},
        {"--metrics-interval", "1000", "--metrics-csv", "t.csv"}}) {
    std::vector<std::string> args{"--config", file.path()};
    args.insert(args.end(), extra.begin(), extra.end());
    EXPECT_THROW(parse_args(args), std::invalid_argument) << extra[0];
  }
}

TEST(OptionsTest, ListPoliciesParsesAndRegistryIsComplete) {
  EXPECT_TRUE(parse_args({"--list-policies"}).list_policies);
  EXPECT_FALSE(parse_args({}).list_policies);
  const auto& policies = comet::sched::known_policies();
  ASSERT_EQ(policies.size(), 5u);
  for (const auto& info : policies) {
    // The printed token must round-trip through the scheduler's own
    // name mapping — the same token --schedule accepts.
    EXPECT_EQ(comet::sched::policy_name(info.policy), info.name);
    EXPECT_NE(std::string(info.summary), "");
    EXPECT_NE(std::string(info.knobs), "");
  }
}

TEST(SweepTest, TelemetrySpecRidesIntoEveryJob) {
  const Options opt = parse_args(
      {"--device", "comet", "--workload", "all", "--requests", "200",
       "--trace-out", "t.json", "--metrics-interval", "1000000"});
  const auto jobs = build_matrix(opt);
  ASSERT_FALSE(jobs.empty());
  for (const auto& job : jobs) {
    EXPECT_EQ(job.telemetry.trace_path, "t.json");
    EXPECT_EQ(job.telemetry.metrics_interval_ps, 1'000'000'000u);
    EXPECT_TRUE(job.telemetry.enabled());
  }
}

TEST(SweepTest, RunSweepBuildsOneCollectorPerEnabledJob) {
  Options opt = parse_args({"--device", "comet", "--workload", "gcc_like",
                            "--requests", "300", "--metrics-interval",
                            "1000000"});
  const auto jobs = build_matrix(opt);
  std::vector<std::unique_ptr<comet::telemetry::Collector>> collectors;
  const auto results = run_sweep(jobs, 1, &collectors);
  ASSERT_EQ(collectors.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_NE(collectors[i], nullptr);
    const auto timeline = collectors[i]->timeline();
    ASSERT_FALSE(timeline.empty());
    std::uint64_t total = 0;
    for (const auto& point : timeline) total += point.reads + point.writes;
    EXPECT_EQ(total, results[i].reads + results[i].writes);
  }

  // Disabled telemetry: the slots stay null and nothing is recorded.
  Options plain = parse_args({"--device", "comet", "--workload", "gcc_like",
                              "--requests", "300"});
  const auto plain_jobs = build_matrix(plain);
  run_sweep(plain_jobs, 1, &collectors);
  ASSERT_EQ(collectors.size(), plain_jobs.size());
  for (const auto& collector : collectors) EXPECT_EQ(collector, nullptr);
}

TEST(ReportTest, JsonCarriesTelemetryProvenanceAndTimeline) {
  Options opt = parse_args({"--device", "comet", "--workload", "gcc_like",
                            "--requests", "300", "--trace-out", "t.json",
                            "--metrics-interval", "1000000"});
  const auto jobs = build_matrix(opt);
  std::vector<std::unique_ptr<comet::telemetry::Collector>> collectors;
  const auto results = run_sweep(jobs, 1, &collectors);
  std::ostringstream os;
  comet::driver::write_json(os, jobs, results, &collectors);
  const std::string json = os.str();
  for (const char* field :
       {"\"trace_out\": \"t.json\"", "\"metrics_interval_ns\": 1000000",
        "\"metrics_csv\": null", "\"telemetry\": {", "\"timeline\": [",
        "\"bank_requests\"", "\"channel_requests\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }

  // Untraced: every telemetry field is the literal null, so a jq del()
  // of the telemetry keys diffs traced vs untraced reports cleanly.
  Options off = parse_args({"--device", "comet", "--workload", "gcc_like",
                            "--requests", "300"});
  const auto plain_jobs = build_matrix(off);
  std::ostringstream plain;
  comet::driver::write_json(plain, plain_jobs, results);
  for (const char* field :
       {"\"trace_out\": null", "\"trace_limit\": null",
        "\"metrics_interval_ns\": null", "\"telemetry\": null",
        "\"timeline\": null"}) {
    EXPECT_NE(plain.str().find(field), std::string::npos) << field;
  }
}

TEST(OptionsTest, TenantListParsesAndSortsByName) {
  const Options opt = parse_args(
      {"--device", "comet", "--tenants",
       "web=gcc_like,batch=mcf_like:40:0.5", "--tenant-mapping",
       "interleave"});
  const auto tenants = comet::driver::tenants_from_options(opt);
  ASSERT_EQ(tenants.size(), 2u);
  // Name order, not flag order: tenant ids and seeds must not depend
  // on how the user happened to type the list.
  EXPECT_EQ(tenants[0].name, "batch");
  EXPECT_EQ(tenants[0].profile.name, "mcf_like");
  EXPECT_DOUBLE_EQ(tenants[0].interarrival_ns, 40.0);
  EXPECT_DOUBLE_EQ(tenants[0].burstiness, 0.5);
  EXPECT_EQ(tenants[1].name, "web");
  EXPECT_EQ(tenants[1].profile.name, "gcc_like");
  EXPECT_DOUBLE_EQ(tenants[1].interarrival_ns, 0.0);
  EXPECT_EQ(opt.tenant_mapping, "interleave");
}

TEST(OptionsTest, TenantListDiagnostics) {
  // Malformed entries die at parse time (main() maps this to exit 2).
  EXPECT_THROW(parse_args({"--tenants", ""}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--tenants", "webgcc_like"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"--tenants", "web="}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--tenants", "=gcc_like"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"--tenants", "web=no_such_profile"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"--tenants", "web=gcc_like,web=mcf_like"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"--tenants", "web=gcc_like:abc"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"--tenants", "web=gcc_like:40:1.5"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"--tenants", "a b=gcc_like"}),
               std::invalid_argument);
  // A trace tenant's file must be readable at parse time.
  EXPECT_THROW(parse_args({"--tenants", "prod=@/no/such.nvt"}),
               std::invalid_argument);
}

TEST(OptionsTest, TenantFlagDependenciesRejectedAtParseTime) {
  EXPECT_THROW(parse_args({"--tenant-mapping", "interleave"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"--tenants", "web=gcc_like", "--tenant-mapping",
                           "striped"}),
               std::invalid_argument);
  EXPECT_THROW(
      parse_args({"--tenants", "web=gcc_like", "--workload", "gcc_like"}),
      std::invalid_argument);
  EXPECT_THROW(
      parse_args({"--tenants", "web=gcc_like", "--dump-trace", "x.nvt"}),
      std::invalid_argument);
  const TempTraceFile file;
  EXPECT_THROW(parse_args({"--tenants", "web=gcc_like", "--trace-file",
                           file.path()}),
               std::invalid_argument);
}

TEST(OptionsTest, FairnessKnobsDemandTheirPolicy) {
  using comet::driver::scheduler_from_options;
  // The knobs only mean something under their policy; anywhere else
  // they would silently gate nothing.
  EXPECT_THROW(
      scheduler_from_options(parse_args({"--tenant-tokens", "32"})),
      std::invalid_argument);
  EXPECT_THROW(scheduler_from_options(parse_args(
                   {"--schedule", "frfcfs", "--tenant-tokens", "32"})),
               std::invalid_argument);
  EXPECT_THROW(scheduler_from_options(parse_args(
                   {"--schedule", "token-budget", "--starvation-cap", "8"})),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"--tenant-tokens", "0"}), std::invalid_argument);

  const auto budget = scheduler_from_options(parse_args(
      {"--schedule", "token-budget", "--tenant-tokens", "32"}));
  ASSERT_TRUE(budget.has_value());
  EXPECT_EQ(budget->tenant_tokens, 32);
  const auto capped = scheduler_from_options(parse_args(
      {"--schedule", "frfcfs-cap", "--starvation-cap", "8"}));
  ASSERT_TRUE(capped.has_value());
  EXPECT_EQ(capped->starvation_cap, 8);
}

TEST(SweepTest, TenantSpecsRideIntoEveryJob) {
  const auto jobs = build_matrix(parse_args(
      {"--device", "comet", "--tenants", "web=gcc_like,batch=mcf_like",
       "--schedule", "frfcfs-cap", "--requests", "500"}));
  ASSERT_EQ(jobs.size(), 1u);
  ASSERT_EQ(jobs[0].tenants.size(), 2u);
  EXPECT_EQ(jobs[0].tenants[0].name, "batch");
  EXPECT_EQ(jobs[0].tenants[1].name, "web");
  EXPECT_EQ(jobs[0].profile.name, "batch+web");
  EXPECT_EQ(jobs[0].tenant_mapping, comet::config::TenantMapping::kPartition);
  ASSERT_TRUE(jobs[0].controller.has_value());
  EXPECT_EQ(jobs[0].controller->policy,
            comet::sched::Policy::kFrFcfsCap);
}

}  // namespace
