// Driver subsystem tests: CLI parsing (including rejection of unknown
// devices/workloads), registry expansion, sweep determinism across thread
// counts, and the JSON emission shape.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "driver/options.hpp"
#include "driver/registry.hpp"
#include "driver/report.hpp"
#include "driver/sweep.hpp"

namespace {

using comet::driver::build_matrix;
using comet::driver::Options;
using comet::driver::parse_args;
using comet::driver::resolve_devices;
using comet::driver::run_sweep;

TEST(OptionsTest, DefaultsAreAllDevicesAllWorkloads) {
  const Options opt = parse_args({});
  EXPECT_EQ(opt.device, "all");
  EXPECT_EQ(opt.workload, "all");
  EXPECT_EQ(opt.channels, 0);
  EXPECT_FALSE(opt.help);
}

TEST(OptionsTest, ParsesEveryFlag) {
  const Options opt =
      parse_args({"--device", "comet", "--workload", "lbm_like",
                  "--channels", "4", "--requests", "1000", "--threads", "3",
                  "--seed", "7", "--line-bytes", "64", "--json", "out.json",
                  "--csv"});
  EXPECT_EQ(opt.device, "comet");
  EXPECT_EQ(opt.workload, "lbm_like");
  EXPECT_EQ(opt.channels, 4);
  EXPECT_EQ(opt.requests, 1000u);
  EXPECT_EQ(opt.threads, 3);
  EXPECT_EQ(opt.seed, 7u);
  EXPECT_EQ(opt.line_bytes, 64u);
  EXPECT_EQ(opt.json_path, "out.json");
  EXPECT_TRUE(opt.csv);
}

TEST(OptionsTest, RejectsUnknownDevice) {
  EXPECT_THROW(parse_args({"--device", "sram"}), std::invalid_argument);
}

TEST(OptionsTest, RejectsUnknownWorkload) {
  EXPECT_THROW(parse_args({"--workload", "no_such_profile"}),
               std::invalid_argument);
}

TEST(OptionsTest, RejectsUnknownFlagAndBadValues) {
  EXPECT_THROW(parse_args({"--bogus"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--requests"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--requests", "0"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--requests", "12abc"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--channels", "-2"}), std::invalid_argument);
  // stoull-style leniency must not leak through: no signs, no whitespace.
  EXPECT_THROW(parse_args({"--requests", " -1"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--requests", "+5"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--requests", " 5"}), std::invalid_argument);
  // Values that would wrap when narrowed must be rejected, not truncated.
  EXPECT_THROW(parse_args({"--channels", "4294967297"}),
               std::invalid_argument);
  EXPECT_THROW(parse_args({"--threads", "4294967296"}), std::invalid_argument);
  EXPECT_THROW(parse_args({"--line-bytes", "4294967424"}),
               std::invalid_argument);
}

TEST(OptionsTest, HelpShortCircuits) {
  const Options opt = parse_args({"--help", "--device", "sram"});
  EXPECT_TRUE(opt.help);
}

TEST(OptionsTest, ListFlagsParse) {
  EXPECT_TRUE(parse_args({"--list-devices"}).list_devices);
  EXPECT_TRUE(parse_args({"--list-workloads"}).list_workloads);
  const Options opt = parse_args({});
  EXPECT_FALSE(opt.list_devices);
  EXPECT_FALSE(opt.list_workloads);
}

TEST(RegistryTest, HybridTokensAreDistinctFromFlatOnes) {
  for (const auto& token : comet::driver::known_hybrid_devices()) {
    for (const auto& flat : comet::driver::known_devices()) {
      EXPECT_NE(token, flat);
    }
  }
}

TEST(RegistryTest, AllExpandsToSevenUniqueModels) {
  const auto models = resolve_devices("all");
  EXPECT_EQ(models.size(), 7u);
  for (std::size_t i = 0; i < models.size(); ++i) {
    for (std::size_t j = i + 1; j < models.size(); ++j) {
      EXPECT_NE(models[i].name, models[j].name);
    }
  }
}

TEST(RegistryTest, HbmAliasesTheStackedDdr4Part) {
  EXPECT_EQ(comet::driver::make_device("hbm").name,
            comet::driver::make_device("ddr4_3d").name);
}

TEST(RegistryTest, UnknownTokenThrows) {
  EXPECT_THROW(resolve_devices("optane"), std::invalid_argument);
}

TEST(SweepTest, MatrixIsDevicesTimesWorkloads) {
  Options opt;
  const auto jobs = build_matrix(opt);
  EXPECT_EQ(jobs.size(), 7u * 8u);
}

TEST(SweepTest, ChannelOverrideAppliesToEveryDevice) {
  Options opt = parse_args({"--device", "comet", "--channels", "2"});
  const auto jobs = build_matrix(opt);
  ASSERT_FALSE(jobs.empty());
  for (const auto& job : jobs) EXPECT_EQ(job.device.channels(), 2);
}

// Acceptance criterion: the threaded sweep must be bit-identical to the
// serial path for a fixed seed. Compare every stats field exactly.
TEST(SweepTest, ThreadedMatchesSerialBitExactly) {
  Options opt = parse_args({"--requests", "2000"});
  const auto jobs = build_matrix(opt);
  const auto serial = run_sweep(jobs, 1);
  const auto threaded = run_sweep(jobs, 4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& a = serial[i];
    const auto& b = threaded[i];
    EXPECT_EQ(a.device_name, b.device_name) << i;
    EXPECT_EQ(a.workload_name, b.workload_name) << i;
    EXPECT_EQ(a.reads, b.reads) << i;
    EXPECT_EQ(a.writes, b.writes) << i;
    EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << i;
    EXPECT_EQ(a.span_ps, b.span_ps) << i;
    EXPECT_EQ(a.read_latency_ns.mean(), b.read_latency_ns.mean()) << i;
    EXPECT_EQ(a.read_latency_ns.max(), b.read_latency_ns.max()) << i;
    EXPECT_EQ(a.write_latency_ns.mean(), b.write_latency_ns.mean()) << i;
    EXPECT_EQ(a.queue_delay_ns.mean(), b.queue_delay_ns.mean()) << i;
    EXPECT_EQ(a.dynamic_energy_pj, b.dynamic_energy_pj) << i;
    EXPECT_EQ(a.background_energy_pj, b.background_energy_pj) << i;
    EXPECT_EQ(a.total_bank_busy_ns, b.total_bank_busy_ns) << i;
  }
}

TEST(SweepTest, RepeatedRunsAreDeterministic) {
  Options opt = parse_args({"--device", "comet", "--workload", "all",
                            "--requests", "1500"});
  const auto jobs = build_matrix(opt);
  const auto first = run_sweep(jobs, 2);
  const auto second = run_sweep(jobs, 3);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].span_ps, second[i].span_ps);
    EXPECT_EQ(first[i].dynamic_energy_pj, second[i].dynamic_energy_pj);
  }
}

TEST(ReportTest, JsonContainsOneRecordPerRunWithRequiredFields) {
  Options opt = parse_args({"--device", "comet", "--requests", "500"});
  const auto jobs = build_matrix(opt);
  const auto results = run_sweep(jobs, 1);
  std::ostringstream os;
  comet::driver::write_json(os, jobs, results);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"bench\": \"comet_sim_sweep\""), std::string::npos);
  for (const char* field :
       {"\"device\"", "\"workload\"", "\"avg_read_latency_ns\"",
        "\"bandwidth_gbps\"", "\"energy_pj_per_bit\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  std::size_t records = 0;
  for (std::size_t pos = json.find("\"device\""); pos != std::string::npos;
       pos = json.find("\"device\"", pos + 1)) {
    ++records;
  }
  EXPECT_EQ(records, jobs.size());
}

TEST(ReportTest, TableReportCoversEveryDevice) {
  Options opt = parse_args({"--workload", "lbm_like", "--requests", "500"});
  const auto jobs = build_matrix(opt);
  const auto results = run_sweep(jobs, 1);
  std::ostringstream os;
  comet::driver::print_report(os, jobs, results, /*csv=*/false);
  for (const auto& job : jobs) {
    EXPECT_NE(os.str().find(job.device.name), std::string::npos)
        << job.device.name;
  }
}

}  // namespace
