#include <gtest/gtest.h>

#include <cmath>

#include "materials/crystallization.hpp"
#include "materials/effective_medium.hpp"
#include "materials/lorentz_model.hpp"
#include "materials/mlc_levels.hpp"
#include "materials/pcm_material.hpp"
#include "materials/thermal_model.hpp"
#include "util/constants.hpp"
#include "util/interp.hpp"

namespace cm = comet::materials;
namespace cu = comet::util;

// ------------------------------------------------------------- Lorentz

TEST(Lorentz, FitHitsAnchor) {
  const auto osc = cm::LorentzOscillator::fit(4.0, 0.5, 1550.0, 800.0);
  const auto idx = osc.complex_index(1550.0);
  EXPECT_NEAR(idx.real(), 4.0, 1e-9);
  EXPECT_NEAR(idx.imag(), 0.5, 1e-9);
}

TEST(Lorentz, FitLosslessMaterial) {
  const auto osc = cm::LorentzOscillator::fit(3.3, 0.0, 1550.0, 700.0);
  EXPECT_NEAR(osc.kappa(1550.0), 0.0, 1e-12);
  EXPECT_NEAR(osc.n(1550.0), 3.3, 1e-9);
  EXPECT_DOUBLE_EQ(osc.gamma(), 0.0);
}

TEST(Lorentz, NormalDispersion) {
  // Resonance blue of the C-band: n decreases with wavelength.
  const auto osc = cm::LorentzOscillator::fit(4.0, 0.1, 1550.0, 800.0);
  EXPECT_GT(osc.n(1530.0), osc.n(1565.0));
}

TEST(Lorentz, RejectsBadFit) {
  EXPECT_THROW(cm::LorentzOscillator::fit(4.0, 0.1, 1550.0, 1600.0),
               std::invalid_argument);
  EXPECT_THROW(cm::LorentzOscillator::fit(0.5, 0.1, 1550.0, 800.0),
               std::invalid_argument);
  EXPECT_THROW(cm::LorentzOscillator::fit(4.0, -0.1, 1550.0, 800.0),
               std::invalid_argument);
}

TEST(Lorentz, PermittivityAbsorbingBranch) {
  const auto osc = cm::LorentzOscillator::fit(4.0, 0.3, 1550.0, 800.0);
  const auto eps = osc.permittivity(cm::omega_of_wavelength_nm(1550.0));
  EXPECT_GT(eps.imag(), 0.0);
}

// ------------------------------------------------------------- database

class MaterialContrastTest : public ::testing::TestWithParam<double> {};

TEST_P(MaterialContrastTest, GstHasHighestIndexContrast) {
  const double lambda = GetParam();
  const auto& gst = cm::PcmMaterial::get(cm::Pcm::kGst);
  const auto& gsst = cm::PcmMaterial::get(cm::Pcm::kGsst);
  const auto& sb2se3 = cm::PcmMaterial::get(cm::Pcm::kSb2Se3);
  EXPECT_GT(gst.index_contrast(lambda), gsst.index_contrast(lambda));
  EXPECT_GT(gsst.index_contrast(lambda), sb2se3.index_contrast(lambda));
}

TEST_P(MaterialContrastTest, GstHasHighestKappaContrast) {
  const double lambda = GetParam();
  const auto& gst = cm::PcmMaterial::get(cm::Pcm::kGst);
  const auto& gsst = cm::PcmMaterial::get(cm::Pcm::kGsst);
  const auto& sb2se3 = cm::PcmMaterial::get(cm::Pcm::kSb2Se3);
  EXPECT_GT(gst.kappa_contrast(lambda), gsst.kappa_contrast(lambda));
  EXPECT_GT(gsst.kappa_contrast(lambda), sb2se3.kappa_contrast(lambda));
}

TEST_P(MaterialContrastTest, CrystallineIndexAboveAmorphous) {
  const double lambda = GetParam();
  for (const auto pcm : {cm::Pcm::kGst, cm::Pcm::kGsst, cm::Pcm::kSb2Se3}) {
    const auto& m = cm::PcmMaterial::get(pcm);
    EXPECT_GT(m.n(cm::Phase::kCrystalline, lambda),
              m.n(cm::Phase::kAmorphous, lambda))
        << m.name();
    EXPECT_GE(m.kappa(cm::Phase::kCrystalline, lambda),
              m.kappa(cm::Phase::kAmorphous, lambda))
        << m.name();
  }
}

INSTANTIATE_TEST_SUITE_P(CBandSweep, MaterialContrastTest,
                         ::testing::Values(1530.0, 1540.0, 1550.0, 1557.5,
                                           1565.0));

TEST(Materials, GstAnchorValues) {
  const auto& gst = cm::PcmMaterial::get(cm::Pcm::kGst);
  EXPECT_NEAR(gst.n(cm::Phase::kAmorphous, 1550.0), 3.94, 0.01);
  EXPECT_NEAR(gst.n(cm::Phase::kCrystalline, 1550.0), 6.51, 0.01);
  EXPECT_NEAR(gst.kappa(cm::Phase::kCrystalline, 1550.0), 1.10, 0.01);
}

TEST(Materials, Names) {
  EXPECT_EQ(cm::to_string(cm::Pcm::kGst), "GST");
  EXPECT_EQ(cm::to_string(cm::Pcm::kGsst), "GSST");
  EXPECT_EQ(cm::to_string(cm::Pcm::kSb2Se3), "Sb2Se3");
  EXPECT_EQ(cm::to_string(cm::Phase::kAmorphous), "amorphous");
}

TEST(Materials, ThermalOrdering) {
  for (const auto pcm : {cm::Pcm::kGst, cm::Pcm::kGsst, cm::Pcm::kSb2Se3}) {
    const auto& t = cm::PcmMaterial::get(pcm).thermal();
    EXPECT_GT(t.melting_point_k, t.crystallization_point_k);
    EXPECT_GT(t.crystallization_point_k, cu::kAmbientTemperatureK);
  }
}

// ------------------------------------------------------- effective medium

TEST(EffectiveMedium, EndpointsMatchPhases) {
  const auto& gst = cm::PcmMaterial::get(cm::Pcm::kGst);
  const auto a = cm::effective_index(gst, 1550.0, 0.0);
  const auto c = cm::effective_index(gst, 1550.0, 1.0);
  EXPECT_NEAR(a.real(), gst.n(cm::Phase::kAmorphous, 1550.0), 1e-9);
  EXPECT_NEAR(c.imag(), gst.kappa(cm::Phase::kCrystalline, 1550.0), 1e-9);
}

class EffectiveMediumSweep : public ::testing::TestWithParam<double> {};

TEST_P(EffectiveMediumSweep, MonotoneBetweenPhases) {
  const double f = GetParam();
  const auto& gst = cm::PcmMaterial::get(cm::Pcm::kGst);
  const auto lo = cm::effective_index(gst, 1550.0, f);
  const auto hi = cm::effective_index(gst, 1550.0, std::min(1.0, f + 0.1));
  EXPECT_LE(lo.real(), hi.real() + 1e-12);
  EXPECT_LE(lo.imag(), hi.imag() + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Fractions, EffectiveMediumSweep,
                         ::testing::Values(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                           0.7, 0.8, 0.9));

TEST(EffectiveMedium, RejectsOutOfRange) {
  const auto& gst = cm::PcmMaterial::get(cm::Pcm::kGst);
  EXPECT_THROW(cm::effective_index(gst, 1550.0, -0.1), std::invalid_argument);
  EXPECT_THROW(cm::effective_index(gst, 1550.0, 1.1), std::invalid_argument);
}

// ----------------------------------------------------------- thermal RC

TEST(ThermalRC, SteadyState) {
  const cm::ThermalRC rc{.heat_capacity_j_per_k = 1e-13,
                         .thermal_resistance_k_per_w = 1e5,
                         .ambient_k = 300.0};
  EXPECT_DOUBLE_EQ(rc.steady_state_k(1e-3), 400.0);
  EXPECT_DOUBLE_EQ(rc.tau_s(), 1e-8);
}

TEST(ThermalRC, RiseMatchesClosedForm) {
  const cm::ThermalRC rc{.heat_capacity_j_per_k = 1e-13,
                         .thermal_resistance_k_per_w = 1e5,
                         .ambient_k = 300.0};
  // After one tau the rise covers 1 - 1/e of the step.
  const double t = rc.temperature_at(1e-3, rc.tau_s(), 300.0);
  EXPECT_NEAR(t, 300.0 + 100.0 * (1.0 - std::exp(-1.0)), 1e-9);
}

TEST(ThermalRC, TimeToTemperatureInvertsRise) {
  const cm::ThermalRC rc{.heat_capacity_j_per_k = 1e-13,
                         .thermal_resistance_k_per_w = 1e5,
                         .ambient_k = 300.0};
  const double t = rc.time_to_temperature(1e-3, 363.2);
  EXPECT_NEAR(rc.temperature_at(1e-3, t, 300.0), 363.2, 1e-9);
}

TEST(ThermalRC, UnreachableTargetIsInfinite) {
  const cm::ThermalRC rc{.heat_capacity_j_per_k = 1e-13,
                         .thermal_resistance_k_per_w = 1e5,
                         .ambient_k = 300.0};
  EXPECT_TRUE(std::isinf(rc.time_to_temperature(1e-3, 500.0)));
}

// ----------------------------------------------------------- kinetics

TEST(Kinetics, RateZeroOutsideWindow) {
  const cm::CrystallizationKinetics k(
      cm::GstThermalCalibration::calibrated().kinetics);
  EXPECT_DOUBLE_EQ(k.rate(300.0), 0.0);
  EXPECT_DOUBLE_EQ(k.rate(873.0), 0.0);
  EXPECT_GT(k.rate(650.0), 0.0);
}

TEST(Kinetics, RatePeaksAtPeakTemperature) {
  const cm::CrystallizationKinetics k(
      cm::GstThermalCalibration::calibrated().kinetics);
  EXPECT_GT(k.rate(650.0), k.rate(500.0));
  EXPECT_GT(k.rate(650.0), k.rate(800.0));
}

TEST(Kinetics, ClosedFormMatchesStepping) {
  const cm::CrystallizationKinetics k(
      cm::GstThermalCalibration::calibrated().kinetics);
  const double temp = 600.0;
  const double target = 0.5;
  const double t_closed = k.time_to_fraction(target, temp);
  double x = 0.0;
  const double dt = t_closed / 20000.0;
  double t = 0.0;
  while (x < target && t < 3.0 * t_closed) {
    x = k.step(x, temp, dt);
    t += dt;
  }
  EXPECT_NEAR(t, t_closed, 0.05 * t_closed);
}

TEST(Kinetics, TimeToFractionMonotone) {
  const cm::CrystallizationKinetics k(
      cm::GstThermalCalibration::calibrated().kinetics);
  double prev = 0.0;
  for (double x = 0.1; x <= 0.9; x += 0.1) {
    const double t = k.time_to_fraction(x, 600.0);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Kinetics, InfiniteOutsideWindow) {
  const cm::CrystallizationKinetics k(
      cm::GstThermalCalibration::calibrated().kinetics);
  EXPECT_TRUE(std::isinf(k.time_to_fraction(0.5, 300.0)));
}

// ------------------------------------------------------- thermal model

class ThermalModelTest : public ::testing::Test {
 protected:
  cm::PcmThermalModel model_{cm::GstThermalCalibration::calibrated()};
};

TEST_F(ThermalModelTest, AmorphousResetMatchesPaper) {
  // Paper case study 2: ~280 pJ reset pulse; Table II erase-side checks.
  const auto reset = model_.full_amorphization_reset();
  EXPECT_NEAR(reset.energy_pj, 280.0, 28.0);
  EXPECT_NEAR(model_.amorphous_reset_latency_ns(), 56.0, 8.0);
  EXPECT_DOUBLE_EQ(reset.final_fraction, 0.0);
}

TEST_F(ThermalModelTest, CrystallineResetMatchesPaper) {
  // Paper case study 1: ~880 pJ; Table II erase time 210 ns.
  const auto reset = model_.full_crystallization_reset();
  EXPECT_NEAR(reset.energy_pj, 880.0, 88.0);
  EXPECT_NEAR(model_.crystalline_reset_latency_ns(), 210.0, 21.0);
  EXPECT_GE(reset.final_fraction, 0.98);
}

TEST_F(ThermalModelTest, WritePowerSitsInGrowthWindow) {
  const auto& cal = model_.calibration();
  const double t_ss = cal.rc.steady_state_k(cal.write_power_mw * 1e-3);
  EXPECT_GT(t_ss, cal.kinetics.onset_temperature_k);
  EXPECT_LT(t_ss, cal.kinetics.melt_temperature_k);
}

TEST_F(ThermalModelTest, MaxCrystallizationLatencyNearPaperMaxWrite) {
  // Table II: max write time 170 ns. Deepest usable level is X = 0.95.
  const double t = model_.crystallization_latency_ns(0.95);
  EXPECT_GT(t, 120.0);
  EXPECT_LT(t, 180.0);
}

TEST_F(ThermalModelTest, CrystallizationLatencyMonotone) {
  double prev = 0.0;
  for (double x = 0.1; x <= 0.9; x += 0.1) {
    const double t = model_.crystallization_latency_ns(x);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_F(ThermalModelTest, AmorphizationFasterThanCrystallization) {
  // The melt is thermally limited (tens of ns); growth is kinetics
  // limited (up to ~170 ns): case 1 writes are faster than case 2 writes.
  EXPECT_LT(model_.amorphization_latency_ns(1.0),
            model_.crystallization_latency_ns(0.95));
}

TEST_F(ThermalModelTest, PulseSimulationMeltsAtResetPower) {
  const auto& cal = model_.calibration();
  const auto out = model_.apply_pulse(cal.reset_power_mw, 60.0, 0.9);
  EXPECT_GT(out.melt_fraction, 0.99);
  EXPECT_LT(out.final_fraction, 0.05);
}

TEST_F(ThermalModelTest, PulseSimulationCrystallizesAtWritePower) {
  const auto& cal = model_.calibration();
  const auto out = model_.apply_pulse(cal.write_power_mw, 170.0, 0.0);
  EXPECT_GT(out.final_fraction, 0.5);
  EXPECT_DOUBLE_EQ(out.melt_fraction, 0.0);
  EXPECT_LT(out.peak_temp_k, cal.kinetics.melt_temperature_k);
}

TEST_F(ThermalModelTest, PulseEnergyIsPowerTimesTime) {
  const auto out = model_.apply_pulse(2.0, 50.0, 0.0);
  EXPECT_DOUBLE_EQ(out.energy_pj, 100.0);
}

TEST_F(ThermalModelTest, RejectsBadFraction) {
  EXPECT_THROW(model_.apply_pulse(1.0, 10.0, -0.5), std::invalid_argument);
  EXPECT_THROW(model_.apply_pulse(1.0, 10.0, 1.5), std::invalid_argument);
}

// ----------------------------------------------------------- MLC levels

namespace {

/// Synthetic strictly-decreasing transmission curve used until the
/// photonic cell model enters the picture (tests stay module-local).
double stub_transmission(double fraction) {
  return 0.95 * std::exp(-3.0 * fraction) + 0.005;
}

}  // namespace

class MlcTableTest : public ::testing::TestWithParam<int> {
 protected:
  cm::PcmThermalModel model_{cm::GstThermalCalibration::calibrated()};
};

TEST_P(MlcTableTest, LevelCountAndSpacing) {
  const int bits = GetParam();
  const auto table =
      cm::MlcLevelTable::build(bits, cm::ProgrammingMode::kAmorphousReset,
                               model_, stub_transmission);
  ASSERT_EQ(table.levels().size(), std::size_t(1) << bits);
  // Uniform ladder: every adjacent gap equals the spacing.
  for (std::size_t i = 1; i < table.levels().size(); ++i) {
    EXPECT_NEAR(table.levels()[i - 1].transmission -
                    table.levels()[i].transmission,
                table.level_spacing(), 1e-9);
  }
}

TEST_P(MlcTableTest, FractionsMonotoneIncreasing) {
  const auto table = cm::MlcLevelTable::build(
      GetParam(), cm::ProgrammingMode::kAmorphousReset, model_,
      stub_transmission);
  for (std::size_t i = 1; i < table.levels().size(); ++i) {
    EXPECT_GT(table.levels()[i].crystalline_fraction,
              table.levels()[i - 1].crystalline_fraction);
  }
}

TEST_P(MlcTableTest, ClassifyRoundTrip) {
  const auto table = cm::MlcLevelTable::build(
      GetParam(), cm::ProgrammingMode::kAmorphousReset, model_,
      stub_transmission);
  for (const auto& level : table.levels()) {
    EXPECT_EQ(table.classify(level.transmission), level.index);
  }
}

TEST_P(MlcTableTest, ClassifyToleratesSmallDrift) {
  const auto table = cm::MlcLevelTable::build(
      GetParam(), cm::ProgrammingMode::kAmorphousReset, model_,
      stub_transmission);
  const double nudge = 0.4 * table.level_spacing();
  for (const auto& level : table.levels()) {
    EXPECT_EQ(table.classify(level.transmission - nudge), level.index);
  }
}

INSTANTIATE_TEST_SUITE_P(BitDensities, MlcTableTest,
                         ::testing::Values(1, 2, 4));

TEST(MlcTable, LossToleranceMatchesPaper) {
  cm::PcmThermalModel model(cm::GstThermalCalibration::calibrated());
  const auto b1 = cm::MlcLevelTable::build(
      1, cm::ProgrammingMode::kAmorphousReset, model, stub_transmission);
  const auto b2 = cm::MlcLevelTable::build(
      2, cm::ProgrammingMode::kAmorphousReset, model, stub_transmission);
  const auto b4 = cm::MlcLevelTable::build(
      4, cm::ProgrammingMode::kAmorphousReset, model, stub_transmission);
  EXPECT_NEAR(b1.loss_tolerance_db(), 3.01, 0.02);  // paper: 3.01 dB
  EXPECT_NEAR(b2.loss_tolerance_db(), 1.25, 0.06);  // paper: ~1.2 dB
  EXPECT_NEAR(b4.loss_tolerance_db(), 0.28, 0.03);  // paper: ~0.26 dB
}

TEST(MlcTable, AmorphousResetWriteLatencyMonotone) {
  cm::PcmThermalModel model(cm::GstThermalCalibration::calibrated());
  const auto table = cm::MlcLevelTable::build(
      4, cm::ProgrammingMode::kAmorphousReset, model, stub_transmission);
  for (std::size_t i = 2; i < table.levels().size(); ++i) {
    EXPECT_GE(table.levels()[i].write_latency_ns,
              table.levels()[i - 1].write_latency_ns);
  }
  EXPECT_LT(table.max_write_latency_ns(), 180.0);  // Table II: 170 ns
}

TEST(MlcTable, CrystallineResetWritesAreFast) {
  cm::PcmThermalModel model(cm::GstThermalCalibration::calibrated());
  const auto table = cm::MlcLevelTable::build(
      4, cm::ProgrammingMode::kCrystallineReset, model, stub_transmission);
  EXPECT_LT(table.max_write_latency_ns(), 60.0);
  // Brightest level requires the most melting -> slowest in this mode.
  EXPECT_GT(table.levels()[0].write_latency_ns,
            table.levels()[8].write_latency_ns);
}

TEST(MlcTable, ResetPulsesMatchMode) {
  cm::PcmThermalModel model(cm::GstThermalCalibration::calibrated());
  const auto amorphous = cm::MlcLevelTable::build(
      4, cm::ProgrammingMode::kAmorphousReset, model, stub_transmission);
  const auto crystalline = cm::MlcLevelTable::build(
      4, cm::ProgrammingMode::kCrystallineReset, model, stub_transmission);
  EXPECT_NEAR(amorphous.reset().energy_pj, 280.0, 28.0);
  EXPECT_NEAR(crystalline.reset().energy_pj, 880.0, 88.0);
  EXPECT_GT(crystalline.reset().latency_ns, amorphous.reset().latency_ns);
}

TEST(MlcTable, RejectsBadBits) {
  cm::PcmThermalModel model(cm::GstThermalCalibration::calibrated());
  EXPECT_THROW(cm::MlcLevelTable::build(
                   0, cm::ProgrammingMode::kAmorphousReset, model,
                   stub_transmission),
               std::invalid_argument);
  EXPECT_THROW(cm::MlcLevelTable::build(
                   6, cm::ProgrammingMode::kAmorphousReset, model,
                   stub_transmission),
               std::invalid_argument);
}

TEST(MlcTable, InvertTransmissionProperty) {
  for (double target = 0.1; target <= 0.9; target += 0.1) {
    const double f = cm::invert_transmission(stub_transmission, target);
    EXPECT_NEAR(stub_transmission(f), target, 1e-6);
  }
}

TEST(MlcTable, InvertRejectsNonDecreasingCurve) {
  EXPECT_THROW(
      cm::invert_transmission([](double f) { return f; }, 0.5),
      std::invalid_argument);
}
