#include <gtest/gtest.h>

#include <sstream>

#include "memsim/device.hpp"
#include "memsim/system.hpp"
#include "memsim/trace.hpp"
#include "memsim/trace_gen.hpp"
#include "util/units.hpp"

namespace ms = comet::memsim;
namespace cu = comet::util;

namespace {

/// Minimal single-channel, single-bank device: 10 ns reads, 20 ns writes,
/// 1 ns burst, 5 ns interface.
ms::DeviceModel simple_device(int channels = 1, int banks = 1,
                              int queue_depth = 8) {
  ms::DeviceModel d;
  d.name = "simple";
  d.capacity_bytes = 1ull << 30;
  d.timing.channels = channels;
  d.timing.banks_per_channel = banks;
  d.timing.line_bytes = 64;
  d.timing.read_occupancy_ps = cu::ns_to_ps(10);
  d.timing.write_occupancy_ps = cu::ns_to_ps(20);
  d.timing.burst_ps = cu::ns_to_ps(1);
  d.timing.interface_ps = cu::ns_to_ps(5);
  d.timing.queue_depth = queue_depth;
  d.energy.read_pj_per_bit = 1.0;
  d.energy.write_pj_per_bit = 2.0;
  d.energy.background_power_w = 0.0;
  return d;
}

ms::Request make_req(std::uint64_t id, std::uint64_t arrival_ns,
                     ms::Op op, std::uint64_t addr) {
  ms::Request r;
  r.id = id;
  r.arrival_ps = cu::ns_to_ps(double(arrival_ns));
  r.op = op;
  r.address = addr;
  r.size_bytes = 64;
  return r;
}

}  // namespace

// ------------------------------------------------------------- traces

TEST(Trace, ReadWellFormed) {
  std::istringstream in(
      "# comment line\n"
      "100 R 0x1000\n"
      "200 W 0x2040\n");
  const auto reqs = ms::read_trace(in, ms::TraceConfig{});
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].op, ms::Op::kRead);
  EXPECT_EQ(reqs[0].address, 0x1000u);
  // 100 cycles at 2 GHz = 50 ns = 50000 ps.
  EXPECT_EQ(reqs[0].arrival_ps, 50000u);
  EXPECT_EQ(reqs[1].op, ms::Op::kWrite);
}

TEST(Trace, RejectsMalformed) {
  std::istringstream bad_op("100 X 0x1000\n");
  EXPECT_THROW(ms::read_trace(bad_op, ms::TraceConfig{}), std::runtime_error);
  std::istringstream truncated("100\n");
  EXPECT_THROW(ms::read_trace(truncated, ms::TraceConfig{}),
               std::runtime_error);
  std::istringstream bad_addr("100 R 0x12zz\n");
  EXPECT_THROW(ms::read_trace(bad_addr, ms::TraceConfig{}),
               std::runtime_error);
}

TEST(Trace, MalformedErrorNamesLineNumberAndText) {
  std::istringstream in("100 R 0x1000\n# fine\n101 Q 0x2000\n");
  try {
    ms::read_trace(in, ms::TraceConfig{});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("101 Q 0x2000"), std::string::npos) << msg;
  }
}

TEST(Trace, RejectsNonMonotonicCyclesWithDiagnostic) {
  std::istringstream in("100 R 0x0\n250 W 0x40\n120 R 0x80\n");
  try {
    ms::read_trace(in, ms::TraceConfig{});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    // Same diagnostic style as require_sorted_by_arrival: the offending
    // position and both out-of-order values.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("non-monotonic"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("120"), std::string::npos) << msg;
    EXPECT_NE(msg.find("250"), std::string::npos) << msg;
  }
}

TEST(Trace, EqualCyclesAreAllowed) {
  std::istringstream in("100 R 0x0\n100 W 0x40\n");
  EXPECT_EQ(ms::read_trace(in, ms::TraceConfig{}).size(), 2u);
}

TEST(Trace, IgnoresTrailingNvmainFields) {
  std::istringstream in("100 R 0x1000 0123456789abcdef 2\n");
  const auto reqs = ms::read_trace(in, ms::TraceConfig{});
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].address, 0x1000u);
}

TEST(Trace, RoundTrip) {
  std::istringstream in("100 R 0x1000\n250 W 0xffc0\n");
  const ms::TraceConfig config{};
  const auto reqs = ms::read_trace(in, config);
  std::ostringstream out;
  ms::write_trace(out, reqs, config);
  std::istringstream in2(out.str());
  const auto reqs2 = ms::read_trace(in2, config);
  ASSERT_EQ(reqs2.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs2[i].address, reqs[i].address);
    EXPECT_EQ(reqs2[i].op, reqs[i].op);
    EXPECT_EQ(reqs2[i].arrival_ps, reqs[i].arrival_ps);
  }
}

// --------------------------------------------------------- trace gen

TEST(TraceGen, Deterministic) {
  const auto profile = ms::profile_by_name("mcf_like");
  const ms::TraceGenerator a(profile, 7), b(profile, 7);
  const auto ta = a.generate(500, 128);
  const auto tb = b.generate(500, 128);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].address, tb[i].address);
    EXPECT_EQ(ta[i].arrival_ps, tb[i].arrival_ps);
  }
}

TEST(TraceGen, ReadFractionRespected) {
  const auto profile = ms::profile_by_name("mcf_like");  // 92 % reads
  const ms::TraceGenerator gen(profile, 1);
  const auto trace = gen.generate(20000, 128);
  std::size_t reads = 0;
  for (const auto& r : trace) reads += (r.op == ms::Op::kRead);
  EXPECT_NEAR(double(reads) / trace.size(), 0.92, 0.02);
}

TEST(TraceGen, ArrivalsSortedAndLineAligned) {
  for (const auto& profile : ms::spec_like_profiles()) {
    const ms::TraceGenerator gen(profile, 3);
    const auto trace = gen.generate(2000, 128);
    std::uint64_t prev = 0;
    for (const auto& r : trace) {
      EXPECT_GE(r.arrival_ps, prev) << profile.name;
      EXPECT_EQ(r.address % 128, 0u) << profile.name;
      prev = r.arrival_ps;
    }
  }
}

TEST(TraceGen, StreamingIsSequential) {
  auto profile = ms::profile_by_name("lbm_like");
  profile.locality = 1.0;  // pure stream
  const ms::TraceGenerator gen(profile, 5);
  const auto trace = gen.generate(1000, 128);
  std::size_t sequential = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    sequential += (trace[i].address == trace[i - 1].address + 128);
  }
  EXPECT_GT(sequential, 990u);
}

TEST(TraceGen, WorkingSetBounded) {
  auto profile = ms::profile_by_name("mcf_like");
  profile.working_set_bytes = 1 << 20;
  const ms::TraceGenerator gen(profile, 9);
  for (const auto& r : gen.generate(5000, 128)) {
    EXPECT_LT(r.address, 1u << 20);
  }
}

TEST(TraceGen, EightProfiles) {
  EXPECT_EQ(ms::spec_like_profiles().size(), 8u);
  EXPECT_THROW(ms::profile_by_name("nope"), std::invalid_argument);
}

TEST(TraceGen, RejectsBadLineSize) {
  const ms::TraceGenerator gen(ms::profile_by_name("gcc_like"), 1);
  EXPECT_THROW(gen.generate(10, 0), std::invalid_argument);
  EXPECT_THROW(gen.generate(10, 100), std::invalid_argument);
}

// ------------------------------------------------------------- device

TEST(DeviceModel, ValidateCatchesBadness) {
  auto d = simple_device();
  EXPECT_NO_THROW(d.validate());
  auto bad = d;
  bad.name.clear();
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = d;
  bad.timing.line_bytes = 100;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = d;
  bad.timing.queue_depth = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = d;
  bad.timing.refresh_interval_ps = 100;
  bad.timing.refresh_duration_ps = 100;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = d;
  bad.capacity_bytes = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

// ------------------------------------------------------------- system

TEST(System, SingleReadLatency) {
  const ms::MemorySystem sys(simple_device());
  const auto stats = sys.run({make_req(0, 0, ms::Op::kRead, 0)});
  // 10 ns occupancy + 1 ns burst + 5 ns interface = 16 ns.
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_DOUBLE_EQ(stats.read_latency_ns.mean(), 16.0);
}

TEST(System, WriteSlowerThanRead) {
  const ms::MemorySystem sys(simple_device());
  const auto stats = sys.run({make_req(0, 0, ms::Op::kWrite, 0)});
  EXPECT_DOUBLE_EQ(stats.write_latency_ns.mean(), 26.0);
}

TEST(System, BankConflictSerializes) {
  const ms::MemorySystem sys(simple_device());
  // Same line twice: second read waits for the first's occupancy.
  const auto stats = sys.run({make_req(0, 0, ms::Op::kRead, 0),
                              make_req(1, 0, ms::Op::kRead, 0)});
  // The bank is held through the data beat: the second read waits the
  // full 11 ns (occupancy + burst) before its own 16 ns service.
  EXPECT_DOUBLE_EQ(stats.read_latency_ns.max(), 27.0);
  EXPECT_DOUBLE_EQ(stats.queue_delay_ns.max(), 11.0);
}

TEST(System, MultipleBanksOverlap) {
  // Two banks: two different lines can be served concurrently.
  const ms::MemorySystem sys(simple_device(1, 2));
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 16; ++i) {
    reqs.push_back(make_req(i, 0, ms::Op::kRead, std::uint64_t(i) * 64));
  }
  const auto stats = sys.run(reqs);
  // With hashing over 2 banks, span must be well below fully-serial
  // (16 x 10 ns) and at least the serial time of the busier bank.
  const double span_ns = double(stats.span_ps) * 1e-3;
  EXPECT_LT(span_ns, 160.0);
  EXPECT_GT(stats.bandwidth_gbps(),
            ms::MemorySystem(simple_device(1, 1)).run(reqs).bandwidth_gbps());
}

TEST(System, QueueDepthLimitsOverlap) {
  // Depth 1 forces full serialization even across banks.
  const ms::MemorySystem sys(simple_device(1, 4, /*queue_depth=*/1));
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 8; ++i) {
    reqs.push_back(make_req(i, 0, ms::Op::kRead, std::uint64_t(i) * 64));
  }
  const auto stats = sys.run(reqs);
  const double span_ns = double(stats.span_ps) * 1e-3;
  // Each request completes (16 ns) before the next starts.
  EXPECT_GE(span_ns, 8 * 16.0 - 1.0);
}

TEST(System, RowBufferHitFaster) {
  auto d = simple_device();
  d.timing.has_row_buffer = true;
  d.timing.row_size_bytes = 8192;
  d.timing.row_hit_saving_ps = cu::ns_to_ps(6);
  const ms::MemorySystem sys(d);
  // Both lines in the same 8 KB row; second is a row hit.
  const auto stats = sys.run({make_req(0, 0, ms::Op::kRead, 0),
                              make_req(1, 1000, ms::Op::kRead, 64)});
  EXPECT_DOUBLE_EQ(stats.read_latency_ns.min(), 10.0);  // 4+1+5 hit
}

TEST(System, RefreshBlocksBank) {
  auto d = simple_device();
  d.timing.refresh_interval_ps = cu::ns_to_ps(1000);
  d.timing.refresh_duration_ps = cu::ns_to_ps(100);
  const ms::MemorySystem sys(d);
  // Arrival at t = 1010 ns falls inside the second refresh window
  // [1000, 1100): service is pushed to 1100.
  const auto stats = sys.run({make_req(0, 1010, ms::Op::kRead, 0)});
  EXPECT_DOUBLE_EQ(stats.read_latency_ns.mean(), 90.0 + 16.0);
}

TEST(System, RegionSwitchCharged) {
  auto d = simple_device();
  d.timing.region_size_bytes = 4096;
  d.timing.region_switch_ps = cu::ns_to_ps(100);
  const ms::MemorySystem sys(d);
  // First access pays the switch (cold region), second stays within it.
  const auto stats = sys.run({make_req(0, 0, ms::Op::kRead, 0),
                              make_req(1, 500, ms::Op::kRead, 64)});
  EXPECT_DOUBLE_EQ(stats.read_latency_ns.max(), 116.0);
  EXPECT_DOUBLE_EQ(stats.read_latency_ns.min(), 16.0);
}

TEST(System, ReadTailOccupiesBankOffLatencyPath) {
  auto d = simple_device();
  d.timing.read_tail_ps = cu::ns_to_ps(50);
  const ms::MemorySystem sys(d);
  const auto stats = sys.run({make_req(0, 0, ms::Op::kRead, 0),
                              make_req(1, 0, ms::Op::kRead, 0)});
  // First read completes at 16 ns (tail hidden), but the second waits
  // for the 60 ns bank occupancy.
  EXPECT_DOUBLE_EQ(stats.read_latency_ns.min(), 16.0);
  EXPECT_DOUBLE_EQ(stats.read_latency_ns.max(), 60.0 + 16.0);
}

TEST(System, StripedAccessBlocksAllBanks) {
  auto d = simple_device(1, 4);
  d.timing.line_striped_across_banks = true;
  const ms::MemorySystem sys(d);
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 8; ++i) {
    reqs.push_back(make_req(i, 0, ms::Op::kRead, std::uint64_t(i) * 64));
  }
  const auto stats = sys.run(reqs);
  // Striping serializes: every line blocks all four banks for 10 ns.
  const double span_ns = double(stats.span_ps) * 1e-3;
  EXPECT_GE(span_ns, 8 * 10.0);
}

TEST(System, AccessesPerLineMultiplies) {
  auto d = simple_device();
  d.timing.accesses_per_line = 4;
  const ms::MemorySystem sys(d);
  const auto stats = sys.run({make_req(0, 0, ms::Op::kRead, 0)});
  // 4 x 10 ns occupancy + 4 x 1 ns burst + 5 ns interface.
  EXPECT_DOUBLE_EQ(stats.read_latency_ns.mean(), 49.0);
}

TEST(System, EnergyAccounting) {
  auto d = simple_device();
  d.energy.background_power_w = 1.0;
  const ms::MemorySystem sys(d);
  const auto stats = sys.run({make_req(0, 0, ms::Op::kRead, 0),
                              make_req(1, 0, ms::Op::kWrite, 64)});
  // Dynamic: 512 bits x 1 pJ/bit + 512 x 2 pJ/bit = 1536 pJ.
  EXPECT_DOUBLE_EQ(stats.dynamic_energy_pj, 1536.0);
  // Background: 1 W over the span (pJ = W x ps x 1e-12... 1 pJ per ps).
  EXPECT_DOUBLE_EQ(stats.background_energy_pj, double(stats.span_ps));
  EXPECT_GT(stats.epb_pj_per_bit(), 0.0);
}

TEST(System, RejectsUnsortedTrace) {
  const ms::MemorySystem sys(simple_device());
  EXPECT_THROW(sys.run({make_req(0, 100, ms::Op::kRead, 0),
                        make_req(1, 50, ms::Op::kRead, 64)}),
               std::invalid_argument);
}

TEST(System, UnsortedTraceErrorNamesIndexAndTimestamps) {
  const ms::MemorySystem sys(simple_device());
  try {
    sys.run({make_req(0, 10, ms::Op::kRead, 0),
             make_req(1, 100, ms::Op::kRead, 64),
             make_req(2, 50, ms::Op::kRead, 128)});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    // The offending index and both out-of-order arrival times (in ps).
    EXPECT_NE(msg.find("index 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("50000"), std::string::npos) << msg;
    EXPECT_NE(msg.find("100000"), std::string::npos) << msg;
  }
}

TEST(System, EmptyTraceIsSafe) {
  const ms::MemorySystem sys(simple_device());
  const auto stats = sys.run({});
  EXPECT_EQ(stats.reads, 0u);
  EXPECT_DOUBLE_EQ(stats.bandwidth_gbps(), 0.0);
  EXPECT_DOUBLE_EQ(stats.epb_pj_per_bit(), 0.0);
}

TEST(System, BandwidthMatchesHandComputation) {
  // Saturating single-bank reads: one line per 11 ns (occupancy+burst).
  const ms::MemorySystem sys(simple_device());
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 1000; ++i) {
    reqs.push_back(make_req(i, 0, ms::Op::kRead, std::uint64_t(i) * 64));
  }
  const auto stats = sys.run(reqs);
  EXPECT_NEAR(stats.bandwidth_gbps(), 64.0 / 11.0, 0.3);
}

TEST(System, UtilizationBounded) {
  const ms::MemorySystem sys(simple_device(2, 4));
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 2000; ++i) {
    reqs.push_back(make_req(i, i / 4, ms::Op::kRead, std::uint64_t(i) * 64));
  }
  const auto stats = sys.run(reqs);
  const double util = stats.bank_utilization(8);
  EXPECT_GT(util, 0.0);
  EXPECT_LE(util, 1.0);
}

// --------------------------------------------------------- stats maths

TEST(Stats, BwPerEpbDerived) {
  ms::SimStats s;
  s.bytes_transferred = 1000;
  s.span_ps = 1000000;  // 1 us -> 1 GB/s
  s.dynamic_energy_pj = 8000;  // 1 pJ/bit
  EXPECT_NEAR(s.bandwidth_gbps(), 1.0, 1e-9);
  EXPECT_NEAR(s.epb_pj_per_bit(), 1.0, 1e-9);
  EXPECT_NEAR(s.bw_per_epb(), 1.0, 1e-9);
}

TEST(System, GateablePowerScalesWithUtilization) {
  // Two devices identical except the split of background power: the
  // gated one must never consume more background energy, and must match
  // exactly at 100 % utilization.
  auto fixed = simple_device();
  fixed.energy.background_power_w = 2.0;
  auto gated = fixed;
  gated.energy.background_power_w = 1.0;
  gated.energy.gateable_background_power_w = 1.0;

  std::vector<ms::Request> reqs;
  for (int i = 0; i < 200; ++i) {
    reqs.push_back(make_req(i, i * 100, ms::Op::kRead, std::uint64_t(i) * 64));
  }
  const auto f = ms::MemorySystem(fixed).run(reqs);
  const auto g = ms::MemorySystem(gated).run(reqs);
  EXPECT_LT(g.background_energy_pj, f.background_energy_pj);
  // Sparse arrivals (100 ns apart, 11 ns busy): roughly 11 % utilization,
  // so the gated half of the power shrinks accordingly.
  const double util = f.bank_utilization(1);
  EXPECT_NEAR(g.background_energy_pj,
              f.background_energy_pj * (0.5 + 0.5 * util),
              f.background_energy_pj * 0.01);
}

TEST(System, GatedEpbNeverWorse) {
  auto fixed = simple_device();
  fixed.energy.background_power_w = 2.0;
  auto gated = fixed;
  gated.energy.background_power_w = 0.5;
  gated.energy.gateable_background_power_w = 1.5;
  const auto profile = ms::profile_by_name("gcc_like");
  const ms::TraceGenerator gen(profile, 19);
  const auto trace = gen.generate(5000, 64);
  EXPECT_LE(ms::MemorySystem(gated).run(trace).epb_pj_per_bit(),
            ms::MemorySystem(fixed).run(trace).epb_pj_per_bit());
}
