// Hybrid tiered-memory subsystem tests: the set-associative DRAM cache
// model (LRU, write-back, allocation policy, degenerate geometries), the
// TieredSystem stream split (hit/miss routing, writebacks, sorted-stream
// contract, stats merging) and the driver integration (hybrid registry
// tokens, cache CLI overrides, threaded-sweep determinism).

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "driver/options.hpp"
#include "driver/registry.hpp"
#include "driver/sweep.hpp"
#include "hybrid/dram_cache.hpp"
#include "hybrid/tiered_system.hpp"
#include "memsim/system.hpp"
#include "memsim/trace_gen.hpp"
#include "util/units.hpp"

namespace hy = comet::hybrid;
namespace ms = comet::memsim;
namespace cu = comet::util;

namespace {

hy::DramCacheConfig small_cache(std::uint64_t capacity = 16 << 10,
                                int ways = 4,
                                std::uint32_t line_bytes = 1024) {
  hy::DramCacheConfig config;
  config.capacity_bytes = capacity;
  config.ways = ways;
  config.line_bytes = line_bytes;
  return config;
}

/// A fast-read, slow-write backend so tier routing shows up in latency.
ms::DeviceModel simple_backend() {
  ms::DeviceModel d;
  d.name = "backend";
  d.capacity_bytes = 1ull << 30;
  d.timing.channels = 1;
  d.timing.banks_per_channel = 4;
  d.timing.line_bytes = 128;
  d.timing.read_occupancy_ps = cu::ns_to_ps(50);
  d.timing.write_occupancy_ps = cu::ns_to_ps(150);
  d.timing.burst_ps = cu::ns_to_ps(1);
  d.timing.interface_ps = cu::ns_to_ps(10);
  d.timing.queue_depth = 8;
  d.energy.read_pj_per_bit = 2.0;
  d.energy.write_pj_per_bit = 30.0;
  return d;
}

hy::TieredConfig tiered_config(hy::DramCacheConfig cache = small_cache()) {
  return hy::make_tiered_config("hybrid-test", simple_backend(), cache);
}

ms::Request make_req(std::uint64_t id, std::uint64_t arrival_ns, ms::Op op,
                     std::uint64_t addr, std::uint32_t size = 128) {
  ms::Request r;
  r.id = id;
  r.arrival_ps = cu::ns_to_ps(double(arrival_ns));
  r.op = op;
  r.address = addr;
  r.size_bytes = size;
  return r;
}

}  // namespace

// ------------------------------------------------------- cache config

TEST(DramCacheConfig, ValidatesGeometry) {
  EXPECT_NO_THROW(small_cache().validate());
  // Non-power-of-two line.
  auto bad = small_cache();
  bad.line_bytes = 1000;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  // Non-positive associativity.
  bad = small_cache();
  bad.ways = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  // Capacity not a multiple of line_bytes * ways.
  bad = small_cache();
  bad.capacity_bytes = 3 * 1024;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(DramCacheConfig, CapacitySmallerThanOneLineThrows) {
  auto bad = small_cache();
  bad.capacity_bytes = bad.line_bytes / 2;
  bad.ways = 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(DramCacheConfig, SingleSetFullyAssociative) {
  // ways == capacity / line: exactly one set.
  auto config = small_cache(8 << 10, 8, 1024);
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.sets(), 1u);

  // Any 8 distinct lines coexist regardless of address spread; the 9th
  // evicts the least recently used one.
  hy::DramCache cache(config);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(cache.access(i * 1024 * 7919, false).hit);
  }
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(cache.access(i * 1024 * 7919, false).hit) << i;
  }
}

// -------------------------------------------------------- cache model

TEST(DramCache, LruEvictsLeastRecentlyUsed) {
  // Direct-mapped-free setup: 1 set, 2 ways, 1 KB lines.
  hy::DramCache cache(small_cache(2 << 10, 2, 1024));
  EXPECT_FALSE(cache.access(0, false).hit);       // A
  EXPECT_FALSE(cache.access(1024, false).hit);    // B
  EXPECT_TRUE(cache.access(0, false).hit);        // touch A: B is LRU
  const auto fill = cache.access(2048, false);    // C evicts B
  EXPECT_FALSE(fill.hit);
  EXPECT_TRUE(fill.fill);
  EXPECT_TRUE(cache.access(0, false).hit);        // A survived
  EXPECT_FALSE(cache.access(1024, false).hit);    // B is gone
}

TEST(DramCache, DirtyEvictionReportsWritebackAddress) {
  hy::DramCache cache(small_cache(2 << 10, 1, 1024));  // 2 direct sets
  EXPECT_FALSE(cache.access(0, true).hit);   // set 0, dirty
  // Same set (stride = sets * line = 2048), clean fill evicts dirty line.
  const auto evict = cache.access(2048, false);
  EXPECT_TRUE(evict.fill);
  EXPECT_TRUE(evict.writeback);
  EXPECT_EQ(evict.writeback_address, 0u);
  // Clean line eviction produces no writeback.
  const auto clean = cache.access(4096, false);
  EXPECT_TRUE(clean.fill);
  EXPECT_FALSE(clean.writeback);
}

TEST(DramCache, WriteNoAllocateBypassesOnMiss) {
  auto config = small_cache(2 << 10, 2, 1024);
  config.write_allocate = false;
  hy::DramCache cache(config);
  const auto miss = cache.access(0, true);
  EXPECT_FALSE(miss.hit);
  EXPECT_FALSE(miss.fill);  // not installed
  // The next read still misses (the write left no trace) and fills.
  const auto read = cache.access(0, false);
  EXPECT_FALSE(read.hit);
  EXPECT_TRUE(read.fill);
  // A write to the now-resident line hits and dirties it in place.
  EXPECT_TRUE(cache.access(0, true).hit);
}

TEST(DramCache, ReadOnlyStreamNeverWritesBack) {
  // Thrash a tiny cache with far more clean lines than it can hold.
  hy::DramCache cache(small_cache(4 << 10, 4, 1024));
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto access = cache.access(i * 1024, false);
    EXPECT_FALSE(access.writeback) << i;
  }
}

// ----------------------------------------------------- tiered system

TEST(TieredSystem, ValidatesConfig) {
  EXPECT_NO_THROW(tiered_config().validate());
  // Cache at least as large as the backend is rejected.
  auto bad = tiered_config();
  bad.cache.capacity_bytes = bad.backend.capacity_bytes;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  auto unnamed = tiered_config();
  unnamed.name.clear();
  EXPECT_THROW(unnamed.validate(), std::invalid_argument);
}

TEST(TieredSystem, AllHitsAfterWarmupServeFromDramTier) {
  const hy::TieredSystem sys(tiered_config());
  std::vector<ms::Request> reqs;
  // Hammer one line: first access misses (fill), the rest hit.
  for (int i = 0; i < 10; ++i) {
    reqs.push_back(make_req(i, i * 1000, ms::Op::kRead, 0));
  }
  const auto stats = sys.run_tiered(reqs);
  EXPECT_EQ(stats.combined.cache_hits, 9u);
  EXPECT_EQ(stats.combined.cache_misses, 1u);
  EXPECT_EQ(stats.combined.cache_fills, 1u);
  EXPECT_EQ(stats.combined.writebacks, 0u);
  EXPECT_NEAR(stats.combined.hit_rate(), 0.9, 1e-12);
  // DRAM tier served the 9 hit reads plus the fill — installing the
  // fetched line is an array write even on a read miss.
  EXPECT_EQ(stats.dram.reads, 9u);
  EXPECT_EQ(stats.dram.writes, 1u);
  EXPECT_EQ(stats.backend.reads, 1u);
  EXPECT_EQ(stats.backend.writes, 0u);
  // Demand-level counts reflect the original stream.
  EXPECT_EQ(stats.combined.reads, 10u);
  EXPECT_EQ(stats.combined.writes, 0u);
}

TEST(TieredSystem, DirtyEvictionsReachTheBackendAsWrites) {
  // One-set, one-way cache: every new line evicts the previous one.
  const hy::TieredSystem sys(tiered_config(small_cache(1 << 10, 1, 1024)));
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 8; ++i) {
    reqs.push_back(
        make_req(i, i * 1000, ms::Op::kWrite, std::uint64_t(i) * 1024));
  }
  const auto stats = sys.run_tiered(reqs);
  // Every write allocates dirty; each subsequent fill evicts dirty: 7
  // writebacks (the 8th line is still resident at the end).
  EXPECT_EQ(stats.combined.cache_misses, 8u);
  EXPECT_EQ(stats.combined.writebacks, 7u);
  EXPECT_EQ(stats.backend.writes, 7u);
  // Write-allocate fetches accompany every miss.
  EXPECT_EQ(stats.backend.reads, 8u);
}

TEST(TieredSystem, WriteNoAllocateSendsMissesStraightDown) {
  auto cache = small_cache(1 << 10, 1, 1024);
  cache.write_allocate = false;
  const hy::TieredSystem sys(tiered_config(cache));
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 8; ++i) {
    reqs.push_back(
        make_req(i, i * 1000, ms::Op::kWrite, std::uint64_t(i) * 1024));
  }
  const auto stats = sys.run_tiered(reqs);
  EXPECT_EQ(stats.combined.cache_fills, 0u);
  EXPECT_EQ(stats.combined.writebacks, 0u);
  EXPECT_EQ(stats.backend.writes, 8u);   // all demand writes
  EXPECT_EQ(stats.backend.reads, 0u);    // no fetches
  EXPECT_EQ(stats.dram.reads + stats.dram.writes, 0u);
  // The idle DRAM tier still burns its always-on background power over
  // the whole demand span, not over its (empty) sub-stream span.
  EXPECT_GT(stats.combined.dram_tier_energy_pj, 0.0);
  EXPECT_NEAR(stats.dram.background_energy_pj,
              sys.config().dram.energy.background_power_w *
                  double(stats.combined.span_ps),
              1e-9);
}

TEST(TieredSystem, FullLineWriteMissSkipsTheFetch) {
  // A demand write covering the whole 1 KB cache line allocates dirty
  // without fetching from the backend — every byte would be overwritten.
  const hy::TieredSystem sys(tiered_config());
  const auto stats = sys.run_tiered(
      {make_req(0, 0, ms::Op::kWrite, 0, /*size=*/1024)});
  EXPECT_EQ(stats.combined.cache_fills, 1u);
  EXPECT_EQ(stats.backend.reads, 0u);
  EXPECT_EQ(stats.dram.writes, 1u);
  // A partial write miss still fetches the rest of the line.
  const auto partial = sys.run_tiered(
      {make_req(0, 0, ms::Op::kWrite, 0, /*size=*/128)});
  EXPECT_EQ(partial.backend.reads, 1u);
}

TEST(TieredSystem, EmptyStreamStillReportsHybrid) {
  const hy::TieredSystem sys(tiered_config());
  const auto stats = sys.run({});
  EXPECT_TRUE(stats.is_hybrid());
  EXPECT_EQ(stats.span_ps, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.0);
}

TEST(TieredSystem, RejectsUnsortedStreamWithContext) {
  const hy::TieredSystem sys(tiered_config());
  try {
    sys.run({make_req(0, 100, ms::Op::kRead, 0),
             make_req(1, 50, ms::Op::kRead, 4096)});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("index 1"), std::string::npos) << msg;
  }
}

TEST(TieredSystem, CombinedStatsMergeBothTiers) {
  const hy::TieredSystem sys(tiered_config(small_cache(1 << 10, 1, 1024)));
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 64; ++i) {
    // Alternate two conflicting lines: every access misses.
    reqs.push_back(make_req(i, i * 2000, i % 2 ? ms::Op::kWrite : ms::Op::kRead,
                            (i % 2) * 2048));
  }
  const auto stats = sys.run_tiered(reqs);
  const auto& c = stats.combined;
  EXPECT_EQ(c.read_latency_ns.count(),
            stats.dram.read_latency_ns.count() +
                stats.backend.read_latency_ns.count());
  EXPECT_DOUBLE_EQ(
      c.dynamic_energy_pj,
      stats.dram.dynamic_energy_pj + stats.backend.dynamic_energy_pj);
  EXPECT_DOUBLE_EQ(c.dram_tier_energy_pj, stats.dram.dynamic_energy_pj +
                                              stats.dram.background_energy_pj);
  EXPECT_DOUBLE_EQ(
      c.backend_tier_energy_pj,
      stats.backend.dynamic_energy_pj + stats.backend.background_energy_pj);
  // Demand wall-clock covers both tiers' completions.
  EXPECT_GE(c.span_ps, std::max(stats.dram.span_ps, stats.backend.span_ps));
  EXPECT_TRUE(c.is_hybrid());
}

TEST(TieredSystem, StreamedTieredReplayMatchesMaterialized) {
  // The streaming split (demand pulled one request at a time, derived
  // traffic fed into two incremental replays) must be bit-identical to
  // the materialized-vector adapter, tier by tier.
  const hy::TieredSystem sys(tiered_config(small_cache(1 << 12, 2, 1024)));
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 300; ++i) {
    reqs.push_back(make_req(i, i * 700,
                            i % 3 ? ms::Op::kRead : ms::Op::kWrite,
                            std::uint64_t(i % 11) * 1024));
  }
  const auto materialized = sys.run_tiered(reqs);
  ms::VectorSource source(reqs);
  const auto streamed = sys.run_tiered(source);
  const auto compare = [](const ms::SimStats& a, const ms::SimStats& b,
                          const char* tier) {
    EXPECT_EQ(a.reads, b.reads) << tier;
    EXPECT_EQ(a.writes, b.writes) << tier;
    EXPECT_EQ(a.span_ps, b.span_ps) << tier;
    EXPECT_EQ(a.read_latency_ns.mean(), b.read_latency_ns.mean()) << tier;
    EXPECT_EQ(a.dynamic_energy_pj, b.dynamic_energy_pj) << tier;
    EXPECT_EQ(a.background_energy_pj, b.background_energy_pj) << tier;
    EXPECT_EQ(a.cache_hits, b.cache_hits) << tier;
    EXPECT_EQ(a.writebacks, b.writebacks) << tier;
  };
  compare(materialized.combined, streamed.combined, "combined");
  compare(materialized.dram, streamed.dram, "dram");
  compare(materialized.backend, streamed.backend, "backend");
}

TEST(TieredSystem, HitsAreFasterThanFlatBackend) {
  // Hot-set workload almost entirely inside the cache: hybrid average
  // read latency must beat the slow flat backend's.
  const auto config = tiered_config();
  const hy::TieredSystem hybrid(config);
  const ms::MemorySystem flat(simple_backend());
  std::vector<ms::Request> reqs;
  for (int i = 0; i < 500; ++i) {
    reqs.push_back(
        make_req(i, i * 500, ms::Op::kRead, std::uint64_t(i % 4) * 4096));
  }
  const auto h = hybrid.run(reqs);
  const auto f = flat.run(reqs);
  EXPECT_GT(h.hit_rate(), 0.9);
  EXPECT_LT(h.read_latency_ns.mean(), f.read_latency_ns.mean());
}

// ------------------------------------------------- driver integration

TEST(HybridRegistry, TokensResolveAndAllExpands) {
  for (const auto& token : comet::driver::known_hybrid_devices()) {
    const auto spec = comet::driver::make_device_spec(token);
    EXPECT_TRUE(spec.is_hybrid()) << token;
    EXPECT_EQ(spec.name, token);
    EXPECT_NO_THROW(spec.tiered->validate()) << token;
  }
  const auto specs = comet::driver::resolve_device_specs("hybrid-all");
  EXPECT_EQ(specs.size(), comet::driver::known_hybrid_devices().size());
}

TEST(HybridRegistry, FlatAllIsUnchanged) {
  const auto specs = comet::driver::resolve_device_specs("all");
  EXPECT_EQ(specs.size(), 7u);
  for (const auto& spec : specs) EXPECT_FALSE(spec.is_hybrid());
}

TEST(HybridRegistry, OverridesApply) {
  comet::driver::HybridOverrides overrides;
  overrides.cache_mb = 32;
  overrides.cache_ways = 16;
  overrides.cache_policy = "write-no-allocate";
  const auto spec = comet::driver::make_device_spec("hybrid-comet", overrides);
  EXPECT_EQ(spec.tiered->cache.capacity_bytes, 32ull << 20);
  EXPECT_EQ(spec.tiered->cache.ways, 16);
  EXPECT_FALSE(spec.tiered->cache.write_allocate);
  EXPECT_EQ(spec.tiered->dram.capacity_bytes, 32ull << 20);

  overrides.cache_policy = "write-through";
  EXPECT_THROW(comet::driver::make_device_spec("hybrid-comet", overrides),
               std::invalid_argument);
}

TEST(HybridOptions, CacheFlagsParseAndValidate) {
  const auto opt = comet::driver::parse_args(
      {"--device", "hybrid-comet", "--cache-mb", "32", "--cache-ways", "4",
       "--cache-policy", "write-no-allocate"});
  EXPECT_EQ(opt.cache_mb, 32u);
  EXPECT_EQ(opt.cache_ways, 4);
  EXPECT_EQ(opt.cache_policy, "write-no-allocate");
  EXPECT_THROW(comet::driver::parse_args({"--cache-policy", "lru"}),
               std::invalid_argument);
  EXPECT_THROW(comet::driver::parse_args({"--cache-mb", "0"}),
               std::invalid_argument);
}

TEST(HybridSweep, EveryWorkloadHitsTheCache) {
  // Acceptance criterion: hybrid-comet reports a positive hit rate and a
  // per-tier energy split on each of the eight workloads.
  const auto opt = comet::driver::parse_args(
      {"--device", "hybrid-comet", "--requests", "4000"});
  const auto jobs = comet::driver::build_matrix(opt);
  EXPECT_EQ(jobs.size(), 8u);
  const auto results = comet::driver::run_sweep(jobs, 0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_GT(results[i].hit_rate(), 0.0) << jobs[i].profile.name;
    EXPECT_GT(results[i].dram_tier_energy_pj, 0.0) << jobs[i].profile.name;
    EXPECT_GT(results[i].backend_tier_energy_pj, 0.0) << jobs[i].profile.name;
  }
}

TEST(HybridSweep, ThreadedMatchesSerialBitExactly) {
  const auto opt = comet::driver::parse_args(
      {"--device", "hybrid-all", "--requests", "1500"});
  const auto jobs = comet::driver::build_matrix(opt);
  const auto serial = comet::driver::run_sweep(jobs, 1);
  const auto threaded = comet::driver::run_sweep(jobs, 4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& a = serial[i];
    const auto& b = threaded[i];
    EXPECT_EQ(a.cache_hits, b.cache_hits) << i;
    EXPECT_EQ(a.cache_misses, b.cache_misses) << i;
    EXPECT_EQ(a.writebacks, b.writebacks) << i;
    EXPECT_EQ(a.span_ps, b.span_ps) << i;
    EXPECT_EQ(a.read_latency_ns.mean(), b.read_latency_ns.mean()) << i;
    EXPECT_EQ(a.write_latency_ns.mean(), b.write_latency_ns.mean()) << i;
    EXPECT_EQ(a.dynamic_energy_pj, b.dynamic_energy_pj) << i;
    EXPECT_EQ(a.background_energy_pj, b.background_energy_pj) << i;
    EXPECT_EQ(a.dram_tier_energy_pj, b.dram_tier_energy_pj) << i;
    EXPECT_EQ(a.backend_tier_energy_pj, b.backend_tier_energy_pj) << i;
  }
}

TEST(HybridSweep, ChannelOverrideTargetsTheBackend) {
  const auto opt = comet::driver::parse_args(
      {"--device", "hybrid-comet", "--channels", "4"});
  const auto jobs = comet::driver::build_matrix(opt);
  ASSERT_FALSE(jobs.empty());
  for (const auto& job : jobs) {
    EXPECT_EQ(job.device.tiered->backend.timing.channels, 4);
    EXPECT_EQ(job.device.channels(), 4);
  }
}
