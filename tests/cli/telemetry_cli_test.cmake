# End-to-end CLI checks for the telemetry subsystem, run under ctest.
# Invoked as:
#
#   cmake -DCOMET_SIM=<path to comet_sim> -DWORK_DIR=<scratch dir>
#         -DPYTHON=<python3> -DVALIDATOR=<repo>/scripts/validate_trace.py
#         -P telemetry_cli_test.cmake
#
# Covers the ISSUE acceptance loop: a scheduled run with --trace-out +
# --metrics-interval writes a Perfetto-loadable Chrome trace (validated
# by scripts/validate_trace.py) and a non-empty timeline whose per-epoch
# request counts sum to the run's reads+writes, while the same run
# without telemetry flags produces bit-identical results. Plus the
# truncation record under --trace-limit, the timeline CSV, the
# [telemetry] --dump-config round-trip, --list-policies, and the
# flag-dependency diagnostics.

if(NOT DEFINED COMET_SIM OR NOT DEFINED WORK_DIR OR NOT DEFINED PYTHON
   OR NOT DEFINED VALIDATOR)
  message(FATAL_ERROR
          "pass -DCOMET_SIM=..., -DWORK_DIR=..., -DPYTHON=... and -DVALIDATOR=...")
endif()
file(MAKE_DIRECTORY ${WORK_DIR})

function(expect_rc label rc expected)
  if(NOT rc EQUAL expected)
    message(FATAL_ERROR "${label}: expected exit ${expected}, got ${rc}")
  endif()
endfunction()

function(expect_contains label haystack needle)
  string(FIND "${haystack}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "${label}: expected to find '${needle}' in:\n${haystack}")
  endif()
endfunction()

# --- 1. The acceptance run: scheduled, traced, epoch-sampled.
set(flags --device comet --workload gcc_like --requests 20000 --seed 11
    --schedule frfcfs)
execute_process(
  COMMAND ${COMET_SIM} ${flags}
          --trace-out ${WORK_DIR}/run.json --metrics-interval 1000000
          --metrics-csv ${WORK_DIR}/run.csv --json ${WORK_DIR}/traced.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc("traced run" "${rc}" 0)
expect_contains("traced run" "${out}" "wrote ${WORK_DIR}/run.json")
expect_contains("traced run" "${out}" "wrote ${WORK_DIR}/run.csv")

# --- 2. The trace is structurally valid (JSON shape, monotonic tracks,
# ---    balanced queued spans, no spurious truncation record).
execute_process(
  COMMAND ${PYTHON} ${VALIDATOR} ${WORK_DIR}/run.json --min-events 20000
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc("validate_trace" "${rc}" 0)

# --- 3. Timeline reconciliation: the JSON report's timeline epochs sum
# ---    to the run's reads+writes, and the CSV has one row per epoch.
execute_process(
  COMMAND ${PYTHON} -c "
import json, sys
report = json.load(open(sys.argv[1]))
record = report['results'][0]
timeline = record['timeline']
assert timeline, 'timeline is empty'
total = sum(p['reads'] + p['writes'] for p in timeline)
expected = record['reads'] + record['writes']
assert total == expected, f'timeline sums to {total}, run has {expected}'
for point in timeline:
    assert sum(point['channel_requests']) == point['reads'] + point['writes']
telemetry = record['telemetry']
assert telemetry['recorded_events'] == expected
assert telemetry['truncated'] is False
with open(sys.argv[2]) as handle:
    rows = handle.read().strip().splitlines()
assert rows[0].startswith('run,epoch,start_ns,end_ns,reads,writes')
assert len(rows) - 1 == len(timeline), (len(rows) - 1, len(timeline))
print('timeline OK:', len(timeline), 'epochs,', total, 'requests')
" ${WORK_DIR}/traced.json ${WORK_DIR}/run.csv
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "timeline reconciliation failed:\n${out}\n${err}")
endif()

# --- 4. Observation does not perturb: the same run without telemetry
# ---    flags is bit-identical once the telemetry report fields (null
# ---    in the untraced run) are deleted — the jq del() contract.
execute_process(
  COMMAND ${COMET_SIM} ${flags} --json ${WORK_DIR}/untraced.json
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
expect_rc("untraced run" "${rc}" 0)
execute_process(
  COMMAND ${PYTHON} -c "
import json, sys
telemetry_keys = ('trace_out', 'trace_limit', 'metrics_interval_ns',
                  'metrics_csv', 'telemetry', 'timeline')
def strip(path):
    report = json.load(open(path))
    for record in report['results']:
        for key in telemetry_keys:
            assert key in record, f'{path}: missing {key}'
            del record[key]
    return report
plain = json.load(open(sys.argv[1]))['results'][0]
assert plain['trace_out'] is None and plain['timeline'] is None
assert strip(sys.argv[1]) == strip(sys.argv[2]), 'results diverged'
print('bit-identity OK')
" ${WORK_DIR}/untraced.json ${WORK_DIR}/traced.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "traced-vs-untraced bit-identity failed:\n${out}\n${err}")
endif()

# --- 5. Truncation: a capped trace stays within the cap and carries
# ---    the explicit truncation record.
execute_process(
  COMMAND ${COMET_SIM} ${flags}
          --trace-out ${WORK_DIR}/capped.json --trace-limit 100
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc("capped run" "${rc}" 0)
expect_contains("capped run" "${out}" "dropped")
execute_process(
  COMMAND ${PYTHON} ${VALIDATOR} ${WORK_DIR}/capped.json --expect-truncated
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc("validate capped trace" "${rc}" 0)

# --- 6. The [telemetry] section round-trips through --dump-config and
# ---    replays from --config with telemetry still armed.
execute_process(
  COMMAND ${COMET_SIM} ${flags}
          --trace-out ${WORK_DIR}/cfg_run.json --metrics-interval 1000000
          --dump-config ${WORK_DIR}/telemetry.toml
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
expect_rc("dump-config" "${rc}" 0)
file(READ ${WORK_DIR}/telemetry.toml toml_text)
expect_contains("dumped toml" "${toml_text}" "[telemetry]")
expect_contains("dumped toml" "${toml_text}" "metrics_interval_ns = 1000000")
execute_process(
  COMMAND ${COMET_SIM} --config ${WORK_DIR}/telemetry.toml
          --json ${WORK_DIR}/from_config.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc("config replay" "${rc}" 0)
expect_contains("config replay" "${out}" "wrote ${WORK_DIR}/cfg_run.json")
execute_process(
  COMMAND ${PYTHON} ${VALIDATOR} ${WORK_DIR}/cfg_run.json --min-events 20000
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc("validate config-run trace" "${rc}" 0)

# --- 7. --list-policies prints every scheduler token and exits 0.
execute_process(
  COMMAND ${COMET_SIM} --list-policies
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
expect_rc("--list-policies" "${rc}" 0)
foreach(policy fcfs frfcfs read-first)
  expect_contains("--list-policies" "${out}" "${policy}")
endforeach()
expect_contains("--list-policies" "${out}" "knobs:")

# --- 8. Flag-dependency diagnostics exit 2 before any simulation.
execute_process(
  COMMAND ${COMET_SIM} --trace-limit 100
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
expect_rc("--trace-limit without --trace-out" "${rc}" 2)
expect_contains("--trace-limit diagnostic" "${err}" "--trace-out")
execute_process(
  COMMAND ${COMET_SIM} --metrics-csv nope.csv
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE err)
expect_rc("--metrics-csv without --metrics-interval" "${rc}" 2)
expect_contains("--metrics-csv diagnostic" "${err}" "--metrics-interval")

message(STATUS "telemetry CLI checks passed")
